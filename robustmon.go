// Package robustmon is a Go reproduction of "Run-time Fault Detection
// in Monitor Based Concurrent Programming" (Cao, Cheung, Chan — DSN
// 2001): an augmented monitor construct whose Enter / Wait /
// Signal-Exit primitives record scheduling events into a history
// database, checked periodically (and, for resource allocators, in real
// time) against the paper's fault-detection rules. The package is a
// facade over the implementation packages; everything needed to build
// monitors, run workloads, inject the 21 classified fault kinds and
// detect them is re-exported here.
//
// The hot path is built to scale with the number of monitors: the
// history database is sharded per monitor (each shard has its own lock
// and segment buffer; global event order is preserved by an atomic
// sequence counter), and the detector's checkpoints run as a parallel
// pipeline — each monitor's freeze → snapshot → drain-own-shard →
// replay → thaw is distributed across a bounded worker pool
// (DetectorConfig.Workers). NewDetector keeps the paper-faithful
// stop-the-world barrier; NewDetectorNoFreeze checks each monitor
// independently and never stops an unrelated one. Many monitors share
// one database: wire them all with WithRecorder(db) and hand them to a
// single detector.
//
// Checkpoint cost is governed by two further knobs. Batched replay
// (DetectorConfig.BatchSize) drains and replays segments in bounded
// batches with the checking-list seeding paid once per checkpoint, so
// a shard that buffered millions of events cannot stall a checkpoint
// (in the no-freeze mode the monitor is frozen only long enough to
// fix the checkpoint horizon). The adaptive scheduler
// (DetectorConfig.MinInterval/MaxInterval/TargetBatch) replaces the
// single fixed checking interval in Run: each monitor's interval is
// derived from its observed event rate, so hot monitors are checked
// often and idle ones back off — Detector.Intervals exposes the live
// values. Both knobs report the identical violation set as the
// fixed-interval serial path.
//
// Offline artefacts no longer require holding the run in memory
// (WithFullTrace): an Exporter (DetectorConfig.Exporter) streams every
// drained checkpoint segment through a bounded buffer to a pluggable
// sink — e.g. a WALSink directory of CRC-protected segment files —
// and ReadExportDir replays the run from disk in the exact <L order,
// recovering from a crash-truncated tail.
//
// Detection can also recover, not just report (the paper's §5 future
// work): a RecoveryManager with the ResetMonitor policy, attached to
// its detector via SetResetter, resets a faulty monitor online —
// shard-local and world-stop free. Only the offending monitor is
// frozen while its unchecked history is discarded, its queues, blocked
// processes and R# reinitialised and its checking/scheduler state
// reseeded; every other monitor keeps running and checkpointing, and a
// RecoveryMarker is streamed into the export so offline replay knows
// the reset horizon.
//
// # Quick start
//
//	spec := robustmon.Spec{
//	    Name:       "account",
//	    Kind:       robustmon.OperationManager,
//	    Conditions: []string{"nonZero"},
//	}
//	db := robustmon.NewHistory(robustmon.WithFullTrace())
//	mon, err := robustmon.NewMonitor(spec, robustmon.WithRecorder(db))
//	if err != nil { ... }
//	det := robustmon.NewDetector(db, robustmon.DetectorConfig{
//	    Tmax: 10 * time.Second,
//	    Tio:  10 * time.Second,
//	}, mon)
//
//	rt := robustmon.NewRuntime()
//	rt.Spawn("worker", func(p *robustmon.Process) {
//	    if err := mon.Enter(p, "Deposit"); err != nil { return }
//	    // ... operate on the shared state ...
//	    _ = mon.SignalExit(p, "Deposit", "nonZero")
//	})
//	rt.Join()
//
//	for _, v := range det.CheckNow() {
//	    fmt.Println(v)
//	}
//
// See the examples directory for complete programs and DESIGN.md for
// the mapping from the paper's concepts to packages.
package robustmon

import (
	"io"
	"time"

	"robustmon/internal/assert"
	"robustmon/internal/clock"
	"robustmon/internal/detect"
	"robustmon/internal/event"
	"robustmon/internal/experiment"
	"robustmon/internal/export"
	"robustmon/internal/export/compact"
	"robustmon/internal/export/index"
	"robustmon/internal/export/net"
	"robustmon/internal/external"
	"robustmon/internal/faults"
	"robustmon/internal/history"
	"robustmon/internal/mdl"
	"robustmon/internal/monitor"
	"robustmon/internal/obs"
	obsrules "robustmon/internal/obs/rules"
	"robustmon/internal/pathexpr"
	"robustmon/internal/proc"
	"robustmon/internal/recovery"
	"robustmon/internal/report"
	"robustmon/internal/rules"
	"robustmon/internal/state"
	"robustmon/internal/verify"
)

// Monitor construct.
type (
	// Monitor is the augmented monitor (Enter / Wait / SignalExit /
	// Exit primitives with instrumentation and checkpoint support).
	Monitor = monitor.Monitor
	// Spec is the visible part of a monitor declaration.
	Spec = monitor.Spec
	// MonitorKind classifies a monitor per §2.1.
	MonitorKind = monitor.Kind
	// MonitorOption configures NewMonitor.
	MonitorOption = monitor.Option
	// Hooks is the fault-injection surface of the monitor protocol.
	Hooks = monitor.Hooks
	// Recorder receives scheduling events (history databases and the
	// real-time checker implement it).
	Recorder = monitor.Recorder
)

// The three monitor classes.
const (
	CommunicationCoordinator = monitor.CommunicationCoordinator
	ResourceAllocator        = monitor.ResourceAllocator
	OperationManager         = monitor.OperationManager
)

// Monitor construction errors.
var (
	// ErrSpec reports an invalid monitor declaration.
	ErrSpec = monitor.ErrSpec
	// ErrUnknownCond reports a Wait/Signal-Exit on an undeclared
	// condition.
	ErrUnknownCond = monitor.ErrUnknownCond
	// ErrAborted reports that a blocked process was aborted.
	ErrAborted = monitor.ErrAborted
)

// NewMonitor validates the declaration and builds a monitor.
func NewMonitor(spec Spec, opts ...MonitorOption) (*Monitor, error) {
	return monitor.New(spec, opts...)
}

// WithRecorder attaches a history database (or checking tee) to a
// monitor. A monitor without a recorder runs bare — the paper's
// "without extension" baseline.
func WithRecorder(r Recorder) MonitorOption { return monitor.WithRecorder(r) }

// WithClock sets the monitor's time source.
func WithClock(c Clock) MonitorOption { return monitor.WithClock(c) }

// WithHooks installs protocol-deviation hooks (fault injection).
func WithHooks(h Hooks) MonitorOption { return monitor.WithHooks(h) }

// Processes.
type (
	// Process is one user process bound to a goroutine.
	Process = proc.P
	// Runtime spawns and tracks processes.
	Runtime = proc.Runtime
	// ProcessStatus is a process life-cycle state.
	ProcessStatus = proc.Status
)

// NewRuntime returns an empty process runtime.
func NewRuntime() *Runtime { return proc.NewRuntime() }

// Clocks.
type (
	// Clock abstracts time (real or virtual).
	Clock = clock.Clock
	// RealClock is the wall clock.
	RealClock = clock.Real
	// VirtualClock is a deterministic, manually advanced clock.
	VirtualClock = clock.Virtual
)

// NewVirtualClock returns a virtual clock at the given epoch.
func NewVirtualClock(epoch time.Time) *VirtualClock { return clock.NewVirtual(epoch) }

// History.
type (
	// History is the history-information database.
	History = history.DB
	// HistoryOption configures NewHistory.
	HistoryOption = history.Option
	// Event is one scheduling event.
	Event = event.Event
	// EventSeq is a scheduling event sequence L.
	EventSeq = event.Seq
	// Snapshot is a monitor scheduling state ⟨EQ, CQ[], R#⟩ + Running.
	Snapshot = state.Snapshot
	// BatchWriter stages one monitor's events in a lock-free local
	// buffer and publishes them in blocks — the raw-speed record path.
	// Construct with History.NewBatchWriter and wire it to a monitor via
	// monitor.WithRecorder; the detector's checkpoint handshake flushes
	// it automatically while the monitor is frozen.
	BatchWriter = history.BatchWriter
)

// DefaultBatchSize is the BatchWriter staging capacity used when
// History.NewBatchWriter is given a non-positive size.
const DefaultBatchSize = history.DefaultBatchSize

// NewHistory returns an empty history database, sharded per monitor:
// events from different monitors are recorded into independent shards
// under independent locks, while an atomic sequence counter keeps the
// global <L order for drains, exports and offline replay.
func NewHistory(opts ...HistoryOption) *History { return history.New(opts...) }

// WithFullTrace keeps the complete event trace for export and offline
// checking.
func WithFullTrace() HistoryOption { return history.WithFullTrace() }

// WithGlobalLock collapses the database to a single shard behind one
// mutex — the pre-sharding contention profile, retained only so the
// comparative benchmarks can measure what sharding buys.
func WithGlobalLock() HistoryOption { return history.WithGlobalLock() }

// Streaming trace export (the async pipeline replacing WithFullTrace
// for offline artefacts — see internal/export).
type (
	// Exporter streams drained history segments to a Sink off the hot
	// path through a bounded buffer.
	Exporter = export.Exporter
	// ExporterConfig parameterises NewExporter (buffer size,
	// backpressure policy).
	ExporterConfig = export.Config
	// ExporterStats counts exporter activity, including drops.
	ExporterStats = export.Stats
	// ExportPolicy is the backpressure policy when the buffer fills.
	ExportPolicy = export.Policy
	// ExportSegment is one drained per-monitor segment.
	ExportSegment = export.Segment
	// ExportSink persists exported segments.
	ExportSink = export.Sink
	// ExportMarkerSink is the optional ExportSink extension persisting
	// recovery markers (both built-in sinks implement it).
	ExportMarkerSink = export.MarkerSink
	// ExportHealthSink is the optional ExportSink extension persisting
	// health snapshots (both built-in sinks implement it).
	ExportHealthSink = export.HealthSink
	// ExportRecord is one trace record in standalone (wire) form.
	ExportRecord = export.Record
	// ExportSealedSink consumes sealed-file summaries
	// (WALConfig.OnSeal fan-out).
	ExportSealedSink = export.SealedSink
	// ExportSealedSinkFunc adapts a function to ExportSealedSink.
	ExportSealedSinkFunc = export.SealedSinkFunc
	// TeeExportSink fans every record out to several sinks.
	TeeExportSink = export.TeeSink
	// WALSink persists segments to a directory of CRC-protected,
	// fsync-on-rotate files.
	WALSink = export.WALSink
	// WALConfig parameterises NewWALSink.
	WALConfig = export.WALConfig
	// ExportReplay is a trace read back from an export directory.
	ExportReplay = export.Replay
	// MemoryExportSink collects exported segments in memory.
	MemoryExportSink = export.MemorySink
	// DrainTee observes drained segments (History.SetDrainTee).
	DrainTee = history.DrainTee
)

// Backpressure policies.
const (
	// ExportBlock stalls the drainer until the exporter has room —
	// lossless.
	ExportBlock = export.Block
	// ExportDrop discards segments when the buffer is full and counts
	// them.
	ExportDrop = export.Drop
)

// NewExporter starts an exporter writing to sink. Wire it to a
// detector via DetectorConfig.Exporter (checkpoints then stream their
// drained segments for free) or to a database directly via
// History.SetDrainTee(exp.Consume); Close it after the run.
func NewExporter(sink ExportSink, cfg ExporterConfig) *Exporter { return export.New(sink, cfg) }

// NewWALSink opens (creating if needed) an export directory for
// appending.
func NewWALSink(dir string, cfg WALConfig) (*WALSink, error) { return export.NewWALSink(dir, cfg) }

// NewTeeExportSink builds a tee over the given sinks; nil entries are
// dropped.
func NewTeeExportSink(sinks ...ExportSink) *TeeExportSink { return export.NewTeeSink(sinks...) }

// ReadExportDir replays an export directory back into the global <L
// order, recovering from a crash-truncated tail.
func ReadExportDir(dir string) (*ExportReplay, error) { return export.ReadDir(dir) }

// WithDrainTee installs a drain tee at database construction time.
func WithDrainTee(tee DrainTee) HistoryOption { return history.WithDrainTee(tee) }

// Trace store (the query/storage layer over export directories —
// internal/export/index and internal/export/compact): a sparse
// per-file index maintained by the WAL sink on rotation (or rebuilt
// from the files), a SeekReader answering windowed replay queries by
// opening only index-admitted files, and a compactor merging the
// rotated backlog per monitor.
type (
	// TraceIndex is the per-directory file-summary table.
	TraceIndex = index.Index
	// TraceIndexMaintainer keeps the index in step with a WALSink
	// (wire it into WALConfig.OnSeal).
	TraceIndexMaintainer = index.Maintainer
	// TraceSeekReader answers windowed replay queries through the
	// index.
	TraceSeekReader = index.SeekReader
	// TraceSeekStats accounts one windowed query (files opened vs
	// skipped).
	TraceSeekStats = index.Stats
	// TraceFileSummary describes one sealed WAL file (seq ranges,
	// monitor set, marker offsets, header-chain CRC).
	TraceFileSummary = export.FileSummary
	// CompactionConfig parameterises CompactExportDir.
	CompactionConfig = compact.Config
	// CompactionResult accounts one compaction.
	CompactionResult = compact.Result
)

// NewTraceIndexMaintainer returns a maintainer keeping dir's index
// file in step with the sink that writes dir.
func NewTraceIndexMaintainer(dir string) *TraceIndexMaintainer { return index.NewMaintainer(dir) }

// RebuildTraceIndex reconstructs dir's index by scanning its segment
// files' record headers (both WAL format versions). Call Write on the
// result to persist it.
func RebuildTraceIndex(dir string) (*TraceIndex, error) { return index.Rebuild(dir) }

// OpenTraceReader opens an export directory for windowed replay
// queries (ReplayRange); without an index every query scans every
// file, exactly like ReadExportDir.
func OpenTraceReader(dir string) (*TraceSeekReader, error) { return index.OpenDir(dir) }

// CompactExportDir merges dir's rotated segment files per monitor —
// never the active segment (Config.KeepNewest) — preserving recovery
// markers and replay equivalence, and brings the index in step. Wire
// it into ExporterConfig.Compact (with CompactEvery) to have a
// long-running detector bound its own on-disk footprint:
//
//	cfg := robustmon.ExporterConfig{
//	    CompactEvery: 64,
//	    Compact: func() error {
//	        _, err := robustmon.CompactExportDir(dir, robustmon.CompactionConfig{})
//	        return err
//	    },
//	}
func CompactExportDir(dir string, cfg CompactionConfig) (*CompactionResult, error) {
	return compact.Dir(dir, cfg)
}

// Fleet mode (internal/export/net): ship trace records from detector
// processes to a central collector over TCP instead of (or teed with)
// a local WAL directory. A NetSink implements ExportSink plus both
// extensions, so it slots anywhere a WALSink does; the collector
// lands every producer origin in its own subdirectory of a fleet
// root — each a plain export directory the offline tools (montrace,
// OpenTraceReader, CompactExportDir) understand unchanged. Delivery
// is at-least-once behind a resume handshake with bounded
// buffer-and-resume during partitions; replay on the collector is
// byte-identical and exactly-once.
type (
	// NetSink ships sealed trace records to a collector.
	NetSink = netexport.NetSink
	// NetSinkConfig parameterises NewNetSink (address, origin,
	// buffering, backpressure policy, retry bounds).
	NetSinkConfig = netexport.NetSinkConfig
	// NetSinkStats counts a sink's activity; Accepted = Acked +
	// Dropped + Buffered always holds.
	NetSinkStats = netexport.NetSinkStats
	// Collector is the fleet-mode server (cmd/moncollect wraps it).
	Collector = netexport.Collector
	// CollectorConfig parameterises NewCollector (fleet root,
	// flush-and-ack cadence, per-origin WAL knobs).
	CollectorConfig = netexport.CollectorConfig
)

// NewNetSink validates cfg and starts the background shipper. The
// collector does not need to be reachable yet: records buffer until
// the first successful resume handshake.
func NewNetSink(cfg NetSinkConfig) (*NetSink, error) { return netexport.NewNetSink(cfg) }

// NewCollector creates the fleet root and returns a collector ready
// to Serve on any number of listeners.
func NewCollector(cfg CollectorConfig) (*Collector, error) { return netexport.NewCollector(cfg) }

// ValidOrigin reports whether name is usable as a producer origin
// (portable filename charset, no path meaning).
func ValidOrigin(name string) bool { return netexport.ValidOrigin(name) }

// Self-observability (internal/obs): an allocation-free metrics
// registry instrumenting every layer of the pipeline. Pass one
// registry to the layers that accept it — NewHistory(WithObsMetrics
// (reg)), DetectorConfig.Obs, ExporterConfig.Obs,
// CompactionConfig.Obs — and read it back three ways: ObsRegistry.
// Snapshot() in process, StartObsServer for a Prometheus-text
// /metrics endpoint with the pprof suite on the same listener, and
// DetectorConfig.HealthEvery for periodic HealthRecord snapshots
// streamed into the export WAL (rendered by `montrace stats`).
// Instrumentation is strictly optional: a nil registry configures
// nil handles whose methods are no-ops, so an uninstrumented run
// pays only an untaken nil check per increment.
type (
	// ObsRegistry names and owns metrics. Handles (Counter, Gauge,
	// Histogram) are resolved once and then increment lock-free and
	// allocation-free.
	ObsRegistry = obs.Registry
	// ObsCounter is a monotone counter handle.
	ObsCounter = obs.Counter
	// ObsGauge is a set/add gauge handle.
	ObsGauge = obs.Gauge
	// ObsHistogram is a fixed-bucket (power-of-two) histogram handle.
	ObsHistogram = obs.Histogram
	// ObsSnapshot is the registry captured as plain, name-sorted data.
	ObsSnapshot = obs.Snapshot
	// ObsConfig parameterises StartObsServer.
	ObsConfig = obs.Config
	// ObsServer is a running /metrics + /healthz + /debug/pprof
	// endpoint.
	ObsServer = obs.Server
	// HealthRecord is one periodic health snapshot in the trace: the
	// registry's metrics pinned to a wall-clock instant and a history
	// sequence horizon. Exported through the WAL and returned by
	// ReadExportDir in ExportReplay.Healths.
	HealthRecord = obs.HealthRecord
	// ObsRule is one declarative threshold over the registry — an
	// absolute ceiling on a gauge or histogram quantile, or (with Rate)
	// on a counter's per-second slope — with FireAfter/ClearAfter
	// hysteresis. Attach rules via DetectorConfig.Rules and the
	// detector evaluates them at every HealthEvery snapshot, raising a
	// synthetic META violation and a WAL pipeline alert on each
	// transition; ResetMonitor additionally drives the shard-local
	// recovery path. The quiet (no-transition) evaluation walk is
	// allocation-free — gated by the E10 sweep.
	ObsRule = obsrules.Rule
	// ObsAlert is one rule transition (fired or cleared), streamed
	// through the export WAL and returned by ReadExportDir in
	// ExportReplay.Alerts; `montrace stats`/`dump`/`check` render
	// alerts alongside the application's violations.
	ObsAlert = obsrules.Alert
)

// MetaRule is the synthetic RuleID carried by violations that report
// pipeline degradation (a fired threshold rule) rather than an
// application fault.
const MetaRule = rules.Meta

// NewObsRegistry returns an empty metrics registry.
func NewObsRegistry() *ObsRegistry { return obs.NewRegistry() }

// StartObsServer binds cfg.Addr and serves /metrics (Prometheus text
// exposition of cfg.Registry), /healthz, and — unless disabled — the
// /debug/pprof suite, until Close.
func StartObsServer(cfg ObsConfig) (*ObsServer, error) { return obs.StartServer(cfg) }

// WritePrometheus renders a metrics snapshot in the Prometheus text
// exposition format.
func WritePrometheus(w io.Writer, s ObsSnapshot) error { return obs.WritePrometheus(w, s) }

// WithObsMetrics instruments the history database on reg: append and
// batch rates, slab-pool hit/miss/recycle counters and the drain-size
// histogram. The option form matches the database's other knobs; the
// detector, exporter and compactor take the same registry through
// their config structs.
func WithObsMetrics(reg *ObsRegistry) HistoryOption { return history.WithObs(reg) }

// Trace I/O.

// WriteTraceJSON writes a trace as JSON Lines.
func WriteTraceJSON(w io.Writer, s EventSeq) error { return event.WriteJSON(w, s) }

// ReadTraceJSON reads a JSON Lines trace.
func ReadTraceJSON(r io.Reader) (EventSeq, error) { return event.ReadJSON(r) }

// WriteTraceBinary writes a trace in the compact binary format.
func WriteTraceBinary(w io.Writer, s EventSeq) error { return event.WriteBinary(w, s) }

// ReadTraceBinary reads a binary trace.
func ReadTraceBinary(r io.Reader) (EventSeq, error) { return event.ReadBinary(r) }

// Detection.
type (
	// Detector is the periodic checking routine (Algorithms 1-3).
	Detector = detect.Detector
	// DetectorConfig parameterises a Detector.
	DetectorConfig = detect.Config
	// DetectorStats summarises detector activity.
	DetectorStats = detect.Stats
	// RealTime is the per-event calling-order checker for allocators.
	RealTime = detect.RealTime
	// Checker is an extra checkpoint-time check (assertions).
	Checker = detect.Checker
	// Violation is one detected rule violation.
	Violation = rules.Violation
	// RuleID names a violated rule (FD-* or ST-*).
	RuleID = rules.ID
	// TraceExporter is the one exporter seam the detector drives:
	// segments, recovery markers, health snapshots, pipeline alerts
	// and flush in a single interface (DetectorConfig.Exporter).
	// Exporter, WALSink and NetSink all satisfy it.
	TraceExporter = detect.TraceExporter

	// SegmentExporter is the segment-and-flush subset of the old
	// three-interface exporter seam.
	//
	// Deprecated: DetectorConfig.Exporter now requires the full
	// TraceExporter; implement it (with no-op
	// ConsumeMarker/ConsumeHealth where irrelevant) instead.
	SegmentExporter = detect.SegmentExporter
	// MarkerExporter is the old optional marker extension.
	//
	// Deprecated: ConsumeMarker is part of TraceExporter; the
	// detector no longer type-sniffs for this interface.
	MarkerExporter = detect.MarkerExporter
	// HealthExporter is the old optional health extension.
	//
	// Deprecated: ConsumeHealth is part of TraceExporter; the
	// detector no longer type-sniffs for this interface.
	HealthExporter = detect.HealthExporter
)

// NewDetector builds the periodic detector over the database and
// monitors, taking the initial checkpoint snapshots.
func NewDetector(db *History, cfg DetectorConfig, mons ...*Monitor) *Detector {
	cfg.HoldWorld = true
	return detect.New(db, cfg, mons...)
}

// NewDetectorNoFreeze is NewDetector without the stop-the-world hold
// during checking (the ablation configuration; the paper's prototype
// suspends all processes).
func NewDetectorNoFreeze(db *History, cfg DetectorConfig, mons ...*Monitor) *Detector {
	cfg.HoldWorld = false
	return detect.New(db, cfg, mons...)
}

// NewRealTime wraps a recorder with real-time calling-order checking
// for the allocator-kind monitors among specs.
func NewRealTime(next Recorder, specs []Spec, onViolation func(Violation)) (*RealTime, error) {
	return detect.NewRealTime(next, specs, onViolation)
}

// Fault taxonomy and injection.
type (
	// FaultKind identifies one fault from the §2.2 taxonomy.
	FaultKind = faults.Kind
	// FaultLevel is the taxonomy level.
	FaultLevel = faults.Level
	// Injector realises one fault kind.
	Injector = faults.Injector
)

// The twenty-one fault kinds (§2.2).
const (
	EnterMutexViolation      = faults.EnterMutexViolation
	EnterLostProcess         = faults.EnterLostProcess
	EnterNoResponse          = faults.EnterNoResponse
	EnterNotObserved         = faults.EnterNotObserved
	WaitNoBlock              = faults.WaitNoBlock
	WaitLostProcess          = faults.WaitLostProcess
	WaitNoHandoff            = faults.WaitNoHandoff
	WaitEntryStarved         = faults.WaitEntryStarved
	WaitMutexViolation       = faults.WaitMutexViolation
	WaitMonitorNotReleased   = faults.WaitMonitorNotReleased
	SignalNoResume           = faults.SignalNoResume
	SignalMonitorNotReleased = faults.SignalMonitorNotReleased
	SignalMutexViolation     = faults.SignalMutexViolation
	InternalTermination      = faults.InternalTermination
	SendSpuriousDelay        = faults.SendSpuriousDelay
	ReceiveSpuriousDelay     = faults.ReceiveSpuriousDelay
	ReceiveOvertake          = faults.ReceiveOvertake
	SendOverflow             = faults.SendOverflow
	ReleaseWithoutAcquire    = faults.ReleaseWithoutAcquire
	ResourceNeverReleased    = faults.ResourceNeverReleased
	SelfDeadlock             = faults.SelfDeadlock
)

// AllFaultKinds returns the taxonomy in the paper's order.
func AllFaultKinds() []FaultKind { return faults.AllKinds() }

// NewInjector returns a disarmed injector for one fault kind.
func NewInjector(kind FaultKind, opts ...faults.InjectorOption) *Injector {
	return faults.NewInjector(kind, opts...)
}

// Path expressions.
type (
	// Path is a compiled call-order declaration.
	Path = pathexpr.Path
	// PathMatcher tracks one process's position in a Path.
	PathMatcher = pathexpr.Matcher
	// OrderError reports a call violating the declared order.
	OrderError = pathexpr.OrderError
)

// ParsePath parses and compiles a path expression such as
// "path Acquire ; Release end".
func ParsePath(src string) (*Path, error) { return pathexpr.Parse(src) }

// Offline checking.
type (
	// VerifyOptions parameterises offline trace checking.
	VerifyOptions = verify.Options
	// VerifyResult holds both rule checkers' findings for one monitor.
	VerifyResult = verify.Result
)

// VerifyTrace re-checks a recorded trace offline with both independent
// rule implementations.
func VerifyTrace(trace EventSeq, opts VerifyOptions) ([]VerifyResult, error) {
	return verify.Trace(trace, opts)
}

// VerifyAgreement reports whether the two offline checkers agree.
func VerifyAgreement(results []VerifyResult) bool { return verify.Agreement(results) }

// Extensions (§5 future work).
type (
	// AssertionSet groups user-supplied assertions for one monitor.
	AssertionSet = assert.Set
	// RecoveryManager applies a recovery policy to violations.
	RecoveryManager = recovery.Manager
	// RecoveryPolicy selects the reaction to a violation.
	RecoveryPolicy = recovery.Policy
	// RecoveryAction records one step the recovery manager took.
	RecoveryAction = recovery.Action
	// RecoveryResetter performs shard-local online monitor resets; a
	// Detector implements it (RequestReset).
	RecoveryResetter = recovery.Resetter
	// RecoveryMarker records one shard-local online reset in the
	// history/export stream: the reset horizon and how many buffered,
	// never-checked events were discarded. Exported through the WAL
	// and returned by ReadExportDir in ExportReplay.Markers.
	RecoveryMarker = history.RecoveryMarker
)

// Recovery policies.
const (
	ReportOnly    = recovery.ReportOnly
	ResetMonitor  = recovery.ResetMonitor
	AbortOffender = recovery.AbortOffender
)

// NewAssertionSet returns an empty assertion set for the named monitor.
func NewAssertionSet(monitorName string) *AssertionSet { return assert.NewSet(monitorName) }

// NewRecoveryManager builds a recovery manager over the given monitors
// — the set the ResetMonitor policy may reset. Wire mgr.Handle into
// DetectorConfig.OnViolation, and call mgr.SetResetter(det) with the
// detector checking those monitors to make the ResetMonitor policy
// shard-local and online: a violation on monitor M then freezes and
// reinitialises only M (history segment, queues, blocked processes,
// R#, checking lists, adaptive interval) while every other monitor
// keeps running, and a RecoveryMarker is streamed through the exporter
// so offline replay knows the reset horizon. Without a resetter the
// policy falls back to the direct Monitor.Reset, which is only safe
// against a stopped world.
func NewRecoveryManager(p RecoveryPolicy, rt *Runtime, mons ...*Monitor) *RecoveryManager {
	return recovery.NewManager(p, rt, mons...)
}

// Experiments (the paper's evaluation, §4).
type (
	// CoverageResult is one row of the E1 robustness experiment.
	CoverageResult = experiment.CoverageResult
	// OverheadConfig parameterises the E2 overhead experiment.
	OverheadConfig = experiment.OverheadConfig
	// OverheadRow is one cell of Table 1.
	OverheadRow = experiment.OverheadRow
)

// RunCoverage injects the given fault kinds and reports detection
// results (E1: the paper's "all injected faults are detected").
func RunCoverage(kinds []FaultKind) []CoverageResult { return experiment.RunCoverage(kinds) }

// RunOverhead executes the Table 1 overhead sweep (E2).
func RunOverhead(cfg OverheadConfig) ([]OverheadRow, error) { return experiment.RunOverhead(cfg) }

// External consistency (§1's per-program sequential constraints,
// checked at run time across monitors).
type (
	// ExternalChecker enforces a program-wide calling order over
	// qualified "monitor_Procedure" names, per process.
	ExternalChecker = external.Checker
)

// NewExternalChecker compiles the external order declaration and wraps
// next with its enforcement.
func NewExternalChecker(next Recorder, order string, onViolation func(Violation)) (*ExternalChecker, error) {
	return external.NewChecker(next, order, onViolation)
}

// QualifyProc builds the qualified symbol for a (monitor, procedure)
// pair used in external order declarations.
func QualifyProc(monitorName, procName string) string {
	return external.Qualify(monitorName, procName)
}

// Reporting.
type (
	// ViolationSummary aggregates a violation batch by rule, fault,
	// monitor and phase.
	ViolationSummary = report.Summary
)

// SummarizeViolations aggregates a violation batch.
func SummarizeViolations(vs []Violation) ViolationSummary { return report.Summarize(vs) }

// DedupViolations collapses repeated reports of the same underlying
// problem (timer rules re-fire every checkpoint).
func DedupViolations(vs []Violation) []Violation { return report.Dedup(vs) }

// RenderViolations writes a grouped human-readable violation listing.
func RenderViolations(w io.Writer, vs []Violation) error { return report.Render(w, vs) }

// RenderRecoveryActions writes the recovery manager's action log as a
// human-readable listing.
func RenderRecoveryActions(w io.Writer, actions []RecoveryAction) error {
	return report.RenderRecovery(w, actions)
}

// Monitor declaration language (the §4 "general form of the monitor
// specification").

// ParseDeclarations parses textual monitor declarations such as
//
//	buffer: Monitor (communication-coordinator);
//	    cond notFull, notEmpty;
//	    proc Send, Receive;
//	    rmax 4;
//	    send Send;
//	    receive Receive;
//	end buffer.
//
// into validated Specs.
func ParseDeclarations(src string) ([]Spec, error) { return mdl.Parse(src) }

// FormatDeclaration renders a Spec back into declaration syntax.
func FormatDeclaration(spec Spec) string { return mdl.Format(spec) }
