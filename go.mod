module robustmon

go 1.23.0
