module robustmon

go 1.24
