// Benchmark harness regenerating the paper's evaluation artefacts:
//
//   - BenchmarkTable1_*      — E2, Table 1: overhead of the augmented
//     monitor vs the bare monitor per checking interval × workload.
//     The "ratio" metric is the paper's "ratio for overheads".
//     Intervals are scaled from the paper's 0.5-3 s down to 5-30 ms so
//     the suite stays fast; cmd/monbench runs the full-scale sweep.
//   - BenchmarkE1FaultCoverage — E1: the full 21-kind injection sweep;
//     the "coverage" metric must be 21.
//   - BenchmarkFigure1Architecture — E3: the structural wiring check.
//   - BenchmarkAblation*     — the design-choice ablations listed in
//     DESIGN.md §8 (stop-the-world gate, pruned segments vs full-trace
//     FD checking, real-time order checking).
//   - Primitive microbenches — per-operation cost of the monitor with
//     and without the extension, history appends, path-expression
//     steps, checkpoints by segment size.
//   - Sharding comparatives — BenchmarkHistoryGlobal vs
//     BenchmarkHistorySharded (single-mutex vs per-monitor-shard
//     recording under parallel load) and BenchmarkCheckNowManyMonitors
//     (the parallel checkpoint pipeline across N monitors, in both
//     hold-world and per-monitor modes).
package robustmon_test

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"robustmon/internal/checklists"
	"robustmon/internal/clock"
	"robustmon/internal/detect"
	"robustmon/internal/event"
	"robustmon/internal/experiment"
	"robustmon/internal/faults"
	"robustmon/internal/history"
	"robustmon/internal/monitor"
	"robustmon/internal/pathexpr"
	"robustmon/internal/proc"
	"robustmon/internal/rules"
	"robustmon/internal/state"
	"robustmon/internal/verify"
)

// benchIntervals are the Table 1 checking intervals, scaled 1:100 from
// the paper's 0.5s/1s/2s/3s.
var benchIntervals = []time.Duration{
	5 * time.Millisecond,
	10 * time.Millisecond,
	20 * time.Millisecond,
	30 * time.Millisecond,
}

const (
	benchOps   = 4000
	benchProcs = 4
)

// BenchmarkTable1 regenerates every cell of Table 1. Each sub-benchmark
// reports the extended run's wall time per op and the overhead ratio
// against a baseline measured in the same invocation.
func BenchmarkTable1(b *testing.B) {
	for _, w := range experiment.AllWorkloads() {
		w := w
		b.Run(string(w), func(b *testing.B) {
			base, _, err := experiment.MeasureWorkload(w, benchOps, benchProcs, 0)
			if err != nil {
				b.Fatalf("baseline: %v", err)
			}
			for _, ivl := range benchIntervals {
				ivl := ivl
				b.Run(fmt.Sprintf("T=%v", ivl), func(b *testing.B) {
					var total time.Duration
					var checks int
					for i := 0; i < b.N; i++ {
						d, st, err := experiment.MeasureWorkload(w, benchOps, benchProcs, ivl)
						if err != nil {
							b.Fatalf("extended: %v", err)
						}
						total += d
						checks += st.Checks
					}
					mean := total / time.Duration(b.N)
					b.ReportMetric(experiment.Ratio(mean, base), "ratio")
					b.ReportMetric(float64(checks)/float64(b.N), "checks/run")
					b.ReportMetric(float64(mean.Nanoseconds())/benchOps, "ns/monitor-op")
				})
			}
		})
	}
}

// BenchmarkE1FaultCoverage times the full robustness experiment and
// asserts the paper's 21/21 result as a metric.
func BenchmarkE1FaultCoverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := experiment.RunCoverage(faults.AllKinds())
		detected, total := experiment.Coverage(results)
		if detected != total {
			b.Fatalf("coverage %d/%d", detected, total)
		}
		b.ReportMetric(float64(detected), "coverage")
	}
}

// BenchmarkFigure1Architecture times the structural verification of the
// Figure 1 wiring.
func BenchmarkFigure1Architecture(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiment.VerifyFigure1(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- primitive microbenches -----------------------------------------

func managerSpec() monitor.Spec {
	return monitor.Spec{
		Name: "m", Kind: monitor.OperationManager,
		Conditions: []string{"ok"}, Procedures: []string{"Op"},
	}
}

// benchEnterExit measures one uncontended Enter+Exit pair.
func benchEnterExit(b *testing.B, opts ...monitor.Option) {
	m, err := monitor.New(managerSpec(), opts...)
	if err != nil {
		b.Fatal(err)
	}
	rt := proc.NewRuntime()
	done := make(chan struct{})
	rt.Spawn("bench", func(p *proc.P) {
		defer close(done)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := m.Enter(p, "Op"); err != nil {
				return
			}
			_ = m.Exit(p, "Op")
		}
	})
	<-done
	rt.Join()
}

// BenchmarkEnterExitBare is the no-extension baseline primitive cost.
func BenchmarkEnterExitBare(b *testing.B) {
	benchEnterExit(b)
}

// BenchmarkEnterExitRecorded adds history recording (the data-gathering
// routine) to every primitive.
func BenchmarkEnterExitRecorded(b *testing.B) {
	benchEnterExit(b, monitor.WithRecorder(history.New()))
}

// BenchmarkEnterExitRealtimeOrder adds the real-time calling-order
// checker in front of the database (allocator configuration).
func BenchmarkEnterExitRealtimeOrder(b *testing.B) {
	spec := monitor.Spec{
		Name: "m", Kind: monitor.ResourceAllocator,
		Conditions: []string{"ok"}, Procedures: []string{"Op", "Op2"},
		CallOrder: "path Op , Op2 end", AcquireProc: "Op", ReleaseProc: "Op2",
	}
	db := history.New()
	rt, err := detect.NewRealTime(db, []monitor.Spec{spec}, nil)
	if err != nil {
		b.Fatal(err)
	}
	m, err := monitor.New(spec, monitor.WithRecorder(rt))
	if err != nil {
		b.Fatal(err)
	}
	runtime := proc.NewRuntime()
	done := make(chan struct{})
	runtime.Spawn("bench", func(p *proc.P) {
		defer close(done)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := m.Enter(p, "Op"); err != nil {
				return
			}
			_ = m.Exit(p, "Op")
		}
	})
	<-done
	runtime.Join()
}

// BenchmarkHistoryAppend measures the raw event-recording cost.
func BenchmarkHistoryAppend(b *testing.B) {
	db := history.New()
	e := event.Event{Monitor: "m", Type: event.Enter, Pid: 1, Proc: "Op", Flag: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.Append(e)
		if i%4096 == 4095 {
			db.Drain() // keep the segment from growing unboundedly
		}
	}
}

// benchHistoryAppendParallel measures concurrent appends from many
// monitors into one database — the contention profile the sharding
// refactor targets. Each parallel worker writes its own monitor name,
// as distinct monitors wired to a shared database do.
func benchHistoryAppendParallel(b *testing.B, opts ...history.Option) {
	db := history.New(opts...)
	var worker int64
	b.RunParallel(func(pb *testing.PB) {
		id := atomic.AddInt64(&worker, 1)
		e := event.Event{
			Monitor: fmt.Sprintf("mon%02d", id),
			Type:    event.Enter, Pid: id, Proc: "Op", Flag: 1,
		}
		i := 0
		for pb.Next() {
			db.Append(e)
			if i++; i%4096 == 0 {
				db.DrainMonitor(e.Monitor) // keep the shard bounded
			}
		}
	})
}

// BenchmarkHistoryGlobal is the pre-sharding single-mutex profile:
// every monitor funnels through one lock.
func BenchmarkHistoryGlobal(b *testing.B) {
	benchHistoryAppendParallel(b, history.WithGlobalLock())
}

// BenchmarkHistorySharded is the same workload on per-monitor shards;
// the speedup over BenchmarkHistoryGlobal is what the sharding buys.
func BenchmarkHistorySharded(b *testing.B) {
	benchHistoryAppendParallel(b)
}

// BenchmarkHistoryAppendBatch is the block-publication fast path: the
// same parallel per-monitor workload as BenchmarkHistorySharded, but
// published DefaultBatchSize events at a time through AppendBatch —
// one lock acquire and one sequence claim per block. Run with
// -benchmem: the headline next to the speedup is allocs/op ≈ 0.
func BenchmarkHistoryAppendBatch(b *testing.B) {
	db := history.New()
	var worker int64
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		id := atomic.AddInt64(&worker, 1)
		mon := fmt.Sprintf("mon%02d", id)
		e := event.Event{
			Monitor: mon, Type: event.Enter, Pid: id, Proc: "Op", Flag: 1,
		}
		block := make([]event.Event, 0, history.DefaultBatchSize)
		i := 0
		for pb.Next() {
			block = append(block, e)
			if len(block) == cap(block) {
				db.AppendBatch(mon, block)
				block = block[:0]
			}
			if i++; i%4096 == 0 {
				db.Recycle(db.DrainMonitor(mon)) // keep the shard bounded
			}
		}
		db.AppendBatch(mon, block)
	})
}

// BenchmarkBatchWriter is the full batched record path as a monitor
// would drive it: per-goroutine BatchWriter staging, block publication
// on overflow, pooled slab recycling at the drain. Compare ns/op and
// allocs/op against BenchmarkHistorySharded for what the batching
// layer buys over singleton Appends.
func BenchmarkBatchWriter(b *testing.B) {
	db := history.New()
	var worker int64
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		id := atomic.AddInt64(&worker, 1)
		mon := fmt.Sprintf("mon%02d", id)
		w := db.NewBatchWriter(mon, 0)
		e := event.Event{
			Monitor: mon, Type: event.Enter, Pid: id, Proc: "Op", Flag: 1,
		}
		i := 0
		for pb.Next() {
			w.Append(e)
			if i++; i%4096 == 0 {
				db.Recycle(db.DrainMonitor(mon)) // keep the shard bounded
			}
		}
		w.Close()
	})
}

// BenchmarkCheckNowManyMonitors measures one checkpoint over N
// monitors with full segments, comparing the stop-the-world barrier
// against the per-monitor pipeline. The per-monitor work is
// distributed across the detector's worker pool in both modes.
func BenchmarkCheckNowManyMonitors(b *testing.B) {
	const perMonitorEvents = 256
	for _, nMons := range []int{4, 16} {
		for _, hold := range []bool{true, false} {
			name := fmt.Sprintf("monitors=%d/hold-world", nMons)
			if !hold {
				name = fmt.Sprintf("monitors=%d/per-monitor", nMons)
			}
			b.Run(name, func(b *testing.B) {
				db := history.New()
				clk := clock.NewVirtual(time.Date(2001, 7, 1, 0, 0, 0, 0, time.UTC))
				mons := make([]*monitor.Monitor, nMons)
				for i := range mons {
					spec := monitor.Spec{
						Name: fmt.Sprintf("mon%02d", i), Kind: monitor.OperationManager,
						Conditions: []string{"ok"}, Procedures: []string{"Op"},
					}
					m, err := monitor.New(spec, monitor.WithRecorder(db), monitor.WithClock(clk))
					if err != nil {
						b.Fatal(err)
					}
					mons[i] = m
				}
				det := detect.New(db, detect.Config{Clock: clk, HoldWorld: hold}, mons...)
				rt := proc.NewRuntime()
				fill := func() {
					for _, m := range mons {
						m := m
						rt.Spawn("filler", func(p *proc.P) {
							for j := 0; j < perMonitorEvents/2; j++ {
								if err := m.Enter(p, "Op"); err != nil {
									return
								}
								_ = m.Exit(p, "Op")
							}
						})
					}
					rt.Join()
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					fill()
					b.StartTimer()
					if vs := det.CheckNow(); len(vs) != 0 {
						b.Fatalf("violations: %v", vs)
					}
				}
				b.ReportMetric(float64(nMons*perMonitorEvents), "events/check")
			})
		}
	}
}

// BenchmarkPathExprStep measures one matcher step on a realistic order
// declaration.
func BenchmarkPathExprStep(b *testing.B) {
	p := pathexpr.MustParse("path Open ; { Read , Write } ; Close end")
	m := p.NewMatcher()
	word := []string{"Open", "Read", "Write", "Read", "Close"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Step(word[i%len(word)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheckpoint measures one CheckNow over segments of different
// sizes — the per-check cost whose amortisation produces the Table 1
// shape.
func BenchmarkCheckpoint(b *testing.B) {
	for _, segSize := range []int{0, 64, 512, 4096} {
		segSize := segSize
		b.Run(fmt.Sprintf("segment=%d", segSize), func(b *testing.B) {
			db := history.New()
			clk := clock.NewVirtual(time.Date(2001, 7, 1, 0, 0, 0, 0, time.UTC))
			m, err := monitor.New(managerSpec(),
				monitor.WithRecorder(db), monitor.WithClock(clk))
			if err != nil {
				b.Fatal(err)
			}
			det := detect.New(db, detect.Config{Clock: clk, HoldWorld: true}, m)
			rt := proc.NewRuntime()
			fill := func() {
				rt.Spawn("filler", func(p *proc.P) {
					for j := 0; j < segSize/2; j++ {
						if err := m.Enter(p, "Op"); err != nil {
							return
						}
						_ = m.Exit(p, "Op")
					}
				})
				rt.Join()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				fill()
				b.StartTimer()
				if vs := det.CheckNow(); len(vs) != 0 {
					b.Fatalf("violations: %v", vs)
				}
			}
		})
	}
}

// --- ablations (DESIGN.md §8) ----------------------------------------

// BenchmarkAblationHoldWorld compares checkpointing with the paper's
// stop-the-world suspension against the concurrent variant.
func BenchmarkAblationHoldWorld(b *testing.B) {
	for _, hold := range []bool{true, false} {
		hold := hold
		name := "suspend"
		if !hold {
			name = "concurrent"
		}
		b.Run(name, func(b *testing.B) {
			var total time.Duration
			for i := 0; i < b.N; i++ {
				d, err := measureManagerWithDetector(hold, 10*time.Millisecond)
				if err != nil {
					b.Fatal(err)
				}
				total += d
			}
			b.ReportMetric(float64(total.Nanoseconds())/float64(b.N)/benchOps, "ns/monitor-op")
		})
	}
}

func measureManagerWithDetector(hold bool, interval time.Duration) (time.Duration, error) {
	db := history.New()
	m, err := monitor.New(managerSpec(), monitor.WithRecorder(db))
	if err != nil {
		return 0, err
	}
	det := detect.New(db, detect.Config{
		Interval: interval, Clock: clock.Real{}, HoldWorld: hold,
		Tmax: time.Hour, Tio: time.Hour,
	}, m)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		det.Run(ctx)
	}()
	rt := proc.NewRuntime()
	start := time.Now()
	for w := 0; w < benchProcs; w++ {
		rt.Spawn("worker", func(p *proc.P) {
			for j := 0; j < benchOps/2/benchProcs; j++ {
				if err := m.Enter(p, "Op"); err != nil {
					return
				}
				_ = m.Exit(p, "Op")
			}
		})
	}
	rt.Join()
	elapsed := time.Since(start)
	cancel()
	<-done
	if st := det.Stats(); st.Violations > 0 {
		return 0, fmt.Errorf("fault-free ablation run reported %d violations", st.Violations)
	}
	return elapsed, nil
}

// BenchmarkAblationChecking compares the paper's pruned-segment
// strategy (checking lists over a drained segment) against keeping the
// full trace and running the FD-Rules directly — the accuracy/space
// trade-off §3.3 discusses.
func BenchmarkAblationChecking(b *testing.B) {
	const events = 2048
	mkTrace := func() (event.Seq, monitor.Spec) {
		spec := managerSpec()
		db := history.New(history.WithFullTrace())
		clk := clock.NewVirtual(time.Date(2001, 7, 1, 0, 0, 0, 0, time.UTC))
		m, err := monitor.New(spec, monitor.WithRecorder(db), monitor.WithClock(clk))
		if err != nil {
			b.Fatal(err)
		}
		rt := proc.NewRuntime()
		rt.Spawn("filler", func(p *proc.P) {
			for j := 0; j < events/2; j++ {
				if err := m.Enter(p, "Op"); err != nil {
					return
				}
				_ = m.Exit(p, "Op")
			}
		})
		rt.Join()
		return db.Full(), spec
	}
	trace, spec := mkTrace()

	b.Run("segment-replay", func(b *testing.B) {
		snap := emptyBenchSnapshot(spec)
		for i := 0; i < b.N; i++ {
			lists := benchSeedLists(spec, snap)
			for _, e := range trace {
				lists.Apply(e)
			}
			if vs := lists.Violations(); len(vs) != 0 {
				b.Fatalf("violations: %v", vs)
			}
		}
	})
	b.Run("fd-full-trace", func(b *testing.B) {
		cfg := rules.Config{Spec: spec}
		for i := 0; i < b.N; i++ {
			if vs := rules.Check(trace, cfg); len(vs) != 0 {
				b.Fatalf("violations: %v", vs)
			}
		}
	})
}

// BenchmarkVerifyTrace measures offline re-checking of a recorded
// trace with all three rule engines (the cmd/montrace check path).
func BenchmarkVerifyTrace(b *testing.B) {
	spec := managerSpec()
	db := history.New(history.WithFullTrace())
	clk := clock.NewVirtual(time.Date(2001, 7, 1, 0, 0, 0, 0, time.UTC))
	m, err := monitor.New(spec, monitor.WithRecorder(db), monitor.WithClock(clk))
	if err != nil {
		b.Fatal(err)
	}
	rt := proc.NewRuntime()
	rt.Spawn("filler", func(p *proc.P) {
		for j := 0; j < 1024; j++ {
			if err := m.Enter(p, "Op"); err != nil {
				return
			}
			_ = m.Exit(p, "Op")
		}
	})
	rt.Join()
	trace := db.Full()
	opts := verify.Options{Specs: []monitor.Spec{spec}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := verify.Trace(trace, opts)
		if err != nil {
			b.Fatal(err)
		}
		if !results[0].Clean() {
			b.Fatalf("clean trace flagged: %+v", results[0])
		}
	}
}

// BenchmarkEffective measures the §3.1 original-event-model
// reconstruction.
func BenchmarkEffective(b *testing.B) {
	// A trace with plenty of blocked entries to reposition.
	var trace event.Seq
	seq := int64(1)
	add := func(typ event.Type, pid int64, cond string, flag int) {
		trace = append(trace, event.Event{
			Seq: seq, Monitor: "m", Type: typ, Pid: pid, Proc: "Op",
			Cond: cond, Flag: flag,
		})
		seq++
	}
	add(event.Enter, 1, "", 1)
	for pid := int64(2); pid <= 64; pid++ {
		add(event.Enter, pid, "", 0)
	}
	for pid := int64(1); pid <= 64; pid++ {
		add(event.SignalExit, pid, "", 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if eff := rules.Effective(trace); len(eff) != len(trace) {
			b.Fatalf("effective length %d, want %d", len(eff), len(trace))
		}
	}
}

func emptyBenchSnapshot(spec monitor.Spec) state.Snapshot {
	cq := make(map[string][]state.QueueEntry, len(spec.Conditions))
	for _, c := range spec.Conditions {
		cq[c] = nil
	}
	return state.Snapshot{Monitor: spec.Name, CQ: cq, Resources: spec.Rmax}
}

func benchSeedLists(spec monitor.Spec, snap state.Snapshot) *checklists.Lists {
	return checklists.FromSnapshot(spec, snap, 0, 0)
}
