package robustmon_test

import (
	"bytes"
	"testing"
	"time"

	"robustmon"
)

var epoch = time.Date(2001, 7, 1, 0, 0, 0, 0, time.UTC)

// TestPublicAPIQuickstart exercises the full public surface the way the
// README's quick start does: build a monitor, run processes, record
// history, detect an injected fault, export and re-check the trace.
func TestPublicAPIQuickstart(t *testing.T) {
	t.Parallel()
	spec := robustmon.Spec{
		Name:       "account",
		Kind:       robustmon.OperationManager,
		Conditions: []string{"nonZero"},
		Procedures: []string{"Deposit", "Withdraw"},
	}
	db := robustmon.NewHistory(robustmon.WithFullTrace())
	clk := robustmon.NewVirtualClock(epoch)
	mon, err := robustmon.NewMonitor(spec,
		robustmon.WithRecorder(db), robustmon.WithClock(clk))
	if err != nil {
		t.Fatalf("NewMonitor: %v", err)
	}
	det := robustmon.NewDetector(db, robustmon.DetectorConfig{
		Tmax: 10 * time.Second, Tio: 10 * time.Second, Clock: clk,
	}, mon)

	rt := robustmon.NewRuntime()
	balance := 0
	for i := 0; i < 4; i++ {
		rt.Spawn("depositor", func(p *robustmon.Process) {
			if err := mon.Enter(p, "Deposit"); err != nil {
				return
			}
			balance += 10
			_ = mon.SignalExit(p, "Deposit", "nonZero")
		})
		rt.Join()
	}
	if vs := det.CheckNow(); len(vs) != 0 {
		t.Fatalf("clean run produced violations: %v", vs)
	}
	if balance != 40 {
		t.Fatalf("balance = %d, want 40", balance)
	}

	// Inject the internal-termination fault and detect it via Tmax.
	rt.Spawn("dier", func(p *robustmon.Process) {
		if err := mon.Enter(p, "Withdraw"); err != nil {
			return
		}
	})
	rt.Join()
	clk.Advance(time.Minute)
	vs := det.CheckNow()
	if len(vs) == 0 {
		t.Fatal("termination fault not detected")
	}

	// Export and offline-verify the trace: both checkers must flag it.
	var buf bytes.Buffer
	if err := robustmon.WriteTraceJSON(&buf, db.Full()); err != nil {
		t.Fatalf("WriteTraceJSON: %v", err)
	}
	trace, err := robustmon.ReadTraceJSON(&buf)
	if err != nil {
		t.Fatalf("ReadTraceJSON: %v", err)
	}
	results, err := robustmon.VerifyTrace(trace, robustmon.VerifyOptions{
		Specs: []robustmon.Spec{spec},
		Tmax:  10 * time.Second,
		End:   clk.Now(),
	})
	if err != nil {
		t.Fatalf("VerifyTrace: %v", err)
	}
	if len(results) != 1 || results[0].Clean() {
		t.Fatalf("offline check missed the fault: %+v", results)
	}
	if !robustmon.VerifyAgreement(results) {
		t.Fatal("offline checkers disagree")
	}
}

func TestPublicAPIInjectionAndRecovery(t *testing.T) {
	t.Parallel()
	spec := robustmon.Spec{
		Name: "m", Kind: robustmon.OperationManager,
		Conditions: []string{"ok"},
	}
	inj := robustmon.NewInjector(robustmon.SignalMonitorNotReleased)
	db := robustmon.NewHistory()
	clk := robustmon.NewVirtualClock(epoch)
	mon, err := robustmon.NewMonitor(spec,
		robustmon.WithRecorder(db), robustmon.WithClock(clk),
		robustmon.WithHooks(inj.Hooks()))
	if err != nil {
		t.Fatal(err)
	}
	rt := robustmon.NewRuntime()
	mgr := robustmon.NewRecoveryManager(robustmon.ResetMonitor, rt, mon)
	det := robustmon.NewDetector(db, robustmon.DetectorConfig{
		Clock: clk, OnViolation: mgr.Handle,
	}, mon)

	inj.Arm()
	rt.Spawn("p", func(p *robustmon.Process) {
		if err := mon.Enter(p, "Op"); err != nil {
			return
		}
		_ = mon.Exit(p, "Op")
	})
	rt.Join()
	if vs := det.CheckNow(); len(vs) == 0 {
		t.Fatal("keep-lock fault not detected")
	}
	if log := mgr.Log(); len(log) == 0 || log[0].Taken != "monitor reset" {
		t.Fatalf("recovery log = %+v", log)
	}
	if mon.InsideCount() != 0 {
		t.Fatal("monitor not reset")
	}
}

func TestPublicAPIPathExpressions(t *testing.T) {
	t.Parallel()
	p, err := robustmon.ParsePath("path Open ; { Use } ; Close end")
	if err != nil {
		t.Fatalf("ParsePath: %v", err)
	}
	m := p.NewMatcher()
	for _, call := range []string{"Open", "Use", "Use", "Close"} {
		if err := m.Step(call); err != nil {
			t.Fatalf("Step(%s): %v", call, err)
		}
	}
	if !m.AtCycleBoundary() {
		t.Fatal("complete cycle not at boundary")
	}
	if err := m.Step("Close"); err == nil {
		t.Fatal("Close after Close accepted")
	}
}

func TestPublicAPIAssertions(t *testing.T) {
	t.Parallel()
	set := robustmon.NewAssertionSet("m")
	bad := false
	set.Add("inv", func() error {
		if bad {
			return errTest
		}
		return nil
	})
	if vs := set.Check(epoch); len(vs) != 0 {
		t.Fatalf("holding assertion flagged: %v", vs)
	}
	bad = true
	if vs := set.Check(epoch); len(vs) != 1 {
		t.Fatalf("broken assertion not flagged: %v", vs)
	}
}

var errTest = errorString("invariant broken")

type errorString string

func (e errorString) Error() string { return string(e) }

func TestAllFaultKindsExported(t *testing.T) {
	t.Parallel()
	kinds := robustmon.AllFaultKinds()
	if len(kinds) != 21 {
		t.Fatalf("AllFaultKinds = %d, want 21", len(kinds))
	}
	if kinds[0] != robustmon.EnterMutexViolation || kinds[20] != robustmon.SelfDeadlock {
		t.Fatal("fault kind constants out of order")
	}
}

// TestPublicAPIStreamingExport drives the facade's export pipeline:
// a detector streams checkpoint segments through an Exporter into a
// WAL directory, and ReadExportDir replays the run without the
// database ever keeping a full trace.
func TestPublicAPIStreamingExport(t *testing.T) {
	t.Parallel()
	spec := robustmon.Spec{
		Name:       "account",
		Kind:       robustmon.OperationManager,
		Conditions: []string{"nonZero"},
		Procedures: []string{"Deposit"},
	}
	dir := t.TempDir()
	sink, err := robustmon.NewWALSink(dir, robustmon.WALConfig{})
	if err != nil {
		t.Fatalf("NewWALSink: %v", err)
	}
	exp := robustmon.NewExporter(sink, robustmon.ExporterConfig{Policy: robustmon.ExportBlock})
	db := robustmon.NewHistory() // no WithFullTrace: the WAL is the only copy
	mon, err := robustmon.NewMonitor(spec, robustmon.WithRecorder(db))
	if err != nil {
		t.Fatalf("NewMonitor: %v", err)
	}
	det := robustmon.NewDetector(db, robustmon.DetectorConfig{
		Tmax:     time.Hour,
		Tio:      time.Hour,
		Exporter: exp,
	}, mon)

	rt := robustmon.NewRuntime()
	rt.Spawn("worker", func(p *robustmon.Process) {
		for i := 0; i < 50; i++ {
			if err := mon.Enter(p, "Deposit"); err != nil {
				return
			}
			_ = mon.SignalExit(p, "Deposit", "nonZero")
		}
	})
	rt.Join()
	if vs := det.CheckNow(); len(vs) != 0 {
		t.Fatalf("fault-free run reported violations: %v", vs)
	}
	if err := exp.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if st := exp.Stats(); st.DroppedSegments != 0 || st.Written == 0 {
		t.Fatalf("exporter stats = %+v, want writes and no drops", st)
	}

	rep, err := robustmon.ReadExportDir(dir)
	if err != nil {
		t.Fatalf("ReadExportDir: %v", err)
	}
	if rep.Recovered {
		t.Fatal("clean run reported a recovered truncation")
	}
	if int64(len(rep.Events)) != 100 {
		t.Fatalf("replayed %d events, want 100", len(rep.Events))
	}
	results, err := robustmon.VerifyTrace(rep.Events, robustmon.VerifyOptions{
		Specs: []robustmon.Spec{spec},
	})
	if err != nil {
		t.Fatalf("VerifyTrace on replay: %v", err)
	}
	for _, r := range results {
		if !r.Clean() {
			t.Fatalf("replayed trace not clean: %+v", r)
		}
	}
}

func TestPublicAPITraceStore(t *testing.T) {
	t.Parallel()
	spec := robustmon.Spec{
		Name:       "account",
		Kind:       robustmon.OperationManager,
		Conditions: []string{"nonZero"},
		Procedures: []string{"Deposit"},
	}
	dir := t.TempDir()
	maint := robustmon.NewTraceIndexMaintainer(dir)
	sink, err := robustmon.NewWALSink(dir, robustmon.WALConfig{
		MaxFileBytes: 1 << 10, // rotate often: a real backlog to index
		OnSeal:       []robustmon.ExportSealedSink{maint},
	})
	if err != nil {
		t.Fatalf("NewWALSink: %v", err)
	}
	exp := robustmon.NewExporter(sink, robustmon.ExporterConfig{
		Policy:       robustmon.ExportBlock,
		CompactEvery: 4,
		Compact: func() error {
			_, err := robustmon.CompactExportDir(dir, robustmon.CompactionConfig{})
			return err
		},
	})
	db := robustmon.NewHistory()
	mon, err := robustmon.NewMonitor(spec, robustmon.WithRecorder(db))
	if err != nil {
		t.Fatalf("NewMonitor: %v", err)
	}
	det := robustmon.NewDetector(db, robustmon.DetectorConfig{
		Tmax:     time.Hour,
		Tio:      time.Hour,
		Exporter: exp,
	}, mon)

	rt := robustmon.NewRuntime()
	rt.Spawn("worker", func(p *robustmon.Process) {
		for i := 0; i < 400; i++ {
			if err := mon.Enter(p, "Deposit"); err != nil {
				return
			}
			_ = mon.SignalExit(p, "Deposit", "nonZero")
			if i%25 == 24 {
				det.CheckNow()
			}
		}
	})
	rt.Join()
	det.CheckNow()
	if err := exp.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	full, err := robustmon.ReadExportDir(dir)
	if err != nil {
		t.Fatalf("ReadExportDir: %v", err)
	}
	if len(full.Events) != 800 {
		t.Fatalf("replayed %d events, want 800", len(full.Events))
	}

	// Windowed query through the facade.
	r, err := robustmon.OpenTraceReader(dir)
	if err != nil {
		t.Fatalf("OpenTraceReader: %v", err)
	}
	rep, err := r.ReplayRange(101, 200)
	if err != nil {
		t.Fatalf("ReplayRange: %v", err)
	}
	if len(rep.Events) != 100 || rep.Events[0].Seq != 101 {
		t.Fatalf("window replayed %d events from seq %d", len(rep.Events), rep.Events[0].Seq)
	}

	// Rebuild must agree with whatever mix of sink maintenance and
	// background compaction left on disk.
	idx, err := robustmon.RebuildTraceIndex(dir)
	if err != nil {
		t.Fatalf("RebuildTraceIndex: %v", err)
	}
	if errs := idx.Verify(dir); len(errs) != 0 {
		t.Fatalf("rebuilt index fails Verify: %v", errs)
	}
}
