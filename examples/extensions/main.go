// Extensions: the paper's §5 future work and the §1 external-consistency
// concept, all running together —
//
//  1. user-supplied assertions evaluated at every checkpoint,
//
//  2. an external (cross-monitor, per-process) calling order checked in
//     real time,
//
//  3. a recovery policy that resets a wedged monitor.
//
//     go run ./examples/extensions
package main

import (
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	"robustmon"
)

func main() {
	clk := robustmon.NewVirtualClock(time.Date(2001, 7, 1, 0, 0, 0, 0, time.UTC))
	db := robustmon.NewHistory(robustmon.WithFullTrace())

	// External consistency: every process must take the lock before
	// touching the store, and release it afterwards.
	order := fmt.Sprintf("path %s ; { %s , %s } ; %s end",
		robustmon.QualifyProc("lock", "Acquire"),
		robustmon.QualifyProc("store", "Put"),
		robustmon.QualifyProc("store", "Get"),
		robustmon.QualifyProc("lock", "Release"),
	)
	ext, err := robustmon.NewExternalChecker(db, order, func(v robustmon.Violation) {
		fmt.Printf("  EXTERNAL %v\n", v)
	})
	if err != nil {
		log.Fatalf("extensions: %v", err)
	}

	lock, err := robustmon.NewMonitor(robustmon.Spec{
		Name: "lock", Kind: robustmon.OperationManager,
		Conditions: []string{"free"}, Procedures: []string{"Acquire", "Release"},
	}, robustmon.WithRecorder(ext), robustmon.WithClock(clk))
	if err != nil {
		log.Fatalf("extensions: %v", err)
	}
	store, err := robustmon.NewMonitor(robustmon.Spec{
		Name: "store", Kind: robustmon.OperationManager,
		Conditions: []string{"ok"}, Procedures: []string{"Put", "Get"},
	}, robustmon.WithRecorder(ext), robustmon.WithClock(clk))
	if err != nil {
		log.Fatalf("extensions: %v", err)
	}

	// Shared state plus a user-supplied assertion over it.
	var mu sync.Mutex
	items := 0
	asserts := robustmon.NewAssertionSet("store")
	asserts.Add("non-negative-items", func() error {
		mu.Lock()
		defer mu.Unlock()
		if items < 0 {
			return errors.New("item count went negative")
		}
		return nil
	})

	rt := robustmon.NewRuntime()
	mgr := robustmon.NewRecoveryManager(robustmon.ResetMonitor, rt, lock, store)
	det := robustmon.NewDetector(db, robustmon.DetectorConfig{
		Tmax: 10 * time.Second, Tio: 10 * time.Second,
		Clock:       clk,
		Extra:       []robustmon.Checker{asserts},
		OnViolation: mgr.Handle,
	}, lock, store)

	call := func(m *robustmon.Monitor, p *robustmon.Process, proc string, body func()) {
		if err := m.Enter(p, proc); err != nil {
			return
		}
		if body != nil {
			body()
		}
		_ = m.Exit(p, proc)
	}

	fmt.Println("well-behaved process (lock, put, get, unlock):")
	rt.Spawn("good", func(p *robustmon.Process) {
		call(lock, p, "Acquire", nil)
		call(store, p, "Put", func() { mu.Lock(); items++; mu.Unlock() })
		call(store, p, "Get", nil)
		call(lock, p, "Release", nil)
	})
	rt.Join()
	fmt.Printf("  checkpoint: %d violation(s)\n", len(det.CheckNow()))

	fmt.Println("process touching the store without the lock:")
	rt.Spawn("rogue", func(p *robustmon.Process) {
		call(store, p, "Get", nil) // EXTERNAL violation, reported live
	})
	rt.Join()
	det.CheckNow()

	fmt.Println("application bug breaking the declared assertion:")
	rt.Spawn("buggy", func(p *robustmon.Process) {
		call(lock, p, "Acquire", nil)
		call(store, p, "Put", func() { mu.Lock(); items = -5; mu.Unlock() })
		call(lock, p, "Release", nil)
	})
	rt.Join()
	for _, v := range det.CheckNow() {
		fmt.Printf("  ASSERT %v\n", v)
	}

	fmt.Println("a process dies inside the store; recovery resets the monitor:")
	rt.Spawn("dier", func(p *robustmon.Process) {
		_ = store.Enter(p, "Put") // never exits
	})
	rt.Join()
	clk.Advance(time.Minute)
	det.CheckNow()
	for _, a := range mgr.Log() {
		fmt.Printf("  RECOVERY %s → %s\n", a.Violation.Rule, a.Taken)
	}
	fmt.Printf("store serviceable again: occupancy=%d\n", store.InsideCount())
}
