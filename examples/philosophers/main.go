// Dining philosophers with one monitor per fork. The safe variant
// orders fork acquisition (no circular wait); the naive variant lets
// every philosopher grab the left fork first, which can deadlock — and
// the point of this example is that the detector then *reports* the
// deadlock: every philosopher sits on a fork's condition queue past
// Tmax and holds its other fork past Tlimit (§2.2 III.b/III.c family).
//
//	go run ./examples/philosophers
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"robustmon"
)

// fork is a single-unit allocator monitor.
type fork struct {
	mon *robustmon.Monitor

	mu   sync.Mutex
	held bool
}

func newFork(name string, rec robustmon.Recorder, clk robustmon.Clock) (*fork, error) {
	mon, err := robustmon.NewMonitor(robustmon.Spec{
		Name:        name,
		Kind:        robustmon.ResourceAllocator,
		Conditions:  []string{"free"},
		Procedures:  []string{"PickUp", "PutDown"},
		CallOrder:   "path PickUp ; PutDown end",
		AcquireProc: "PickUp",
		ReleaseProc: "PutDown",
	}, robustmon.WithRecorder(rec), robustmon.WithClock(clk))
	if err != nil {
		return nil, err
	}
	return &fork{mon: mon}, nil
}

func (f *fork) pickUp(p *robustmon.Process) error {
	if err := f.mon.Enter(p, "PickUp"); err != nil {
		return err
	}
	f.mu.Lock()
	busy := f.held
	f.mu.Unlock()
	if busy {
		if err := f.mon.Wait(p, "PickUp", "free"); err != nil {
			return err
		}
	}
	f.mu.Lock()
	f.held = true
	f.mu.Unlock()
	return f.mon.Exit(p, "PickUp")
}

func (f *fork) putDown(p *robustmon.Process) error {
	if err := f.mon.Enter(p, "PutDown"); err != nil {
		return err
	}
	f.mu.Lock()
	f.held = false
	f.mu.Unlock()
	return f.mon.SignalExit(p, "PutDown", "free")
}

func dine(ordered bool) {
	const seats = 4
	clk := robustmon.NewVirtualClock(time.Date(2001, 7, 1, 0, 0, 0, 0, time.UTC))
	db := robustmon.NewHistory()
	forks := make([]*fork, seats)
	mons := make([]*robustmon.Monitor, seats)
	for i := range forks {
		f, err := newFork(fmt.Sprintf("fork%d", i), db, clk)
		if err != nil {
			log.Fatalf("philosophers: %v", err)
		}
		forks[i] = f
		mons[i] = f.mon
	}
	det := robustmon.NewDetector(db, robustmon.DetectorConfig{
		Tmax: 10 * time.Second, Tio: 10 * time.Second, Tlimit: 10 * time.Second,
		Clock: clk,
	}, mons...)

	rt := robustmon.NewRuntime()
	var meals sync.WaitGroup
	// In naive mode, a barrier makes every philosopher hold its left
	// fork before any reaches for the right one, so the circular wait
	// forms deterministically.
	var leftForks sync.WaitGroup
	if !ordered {
		leftForks.Add(seats)
	}
	for seat := 0; seat < seats; seat++ {
		seat := seat
		meals.Add(1)
		rt.Spawn("philosopher", func(p *robustmon.Process) {
			defer meals.Done()
			first, second := forks[seat], forks[(seat+1)%seats]
			if ordered && seat == seats-1 {
				// Break the cycle: the last philosopher picks the
				// lower-numbered fork first.
				first, second = second, first
			}
			for m := 0; m < 3; m++ {
				if err := first.pickUp(p); err != nil {
					return
				}
				if !ordered && m == 0 {
					leftForks.Done()
					leftForks.Wait()
				}
				if err := second.pickUp(p); err != nil {
					return
				}
				// eat
				if err := second.putDown(p); err != nil {
					return
				}
				if err := first.putDown(p); err != nil {
					return
				}
			}
		})
	}

	if ordered {
		meals.Wait()
		fmt.Printf("ordered acquisition: all philosophers finished, violations=%d\n",
			len(det.CheckNow()))
		rt.Join()
		return
	}

	// Naive mode: give the table a moment to (very likely) deadlock,
	// then let the timers speak. The checkpoint reports the stuck
	// processes whether or not the full cycle formed.
	done := make(chan struct{})
	go func() { meals.Wait(); close(done) }()
	select {
	case <-done:
		fmt.Println("naive acquisition: got lucky, no deadlock this run")
	case <-time.After(200 * time.Millisecond):
		fmt.Println("naive acquisition: table stuck (circular wait)")
	}
	clk.Advance(time.Minute)
	vs := det.CheckNow()
	fmt.Printf("detector reports %d violation(s):\n", len(vs))
	seen := map[string]bool{}
	for _, v := range vs {
		key := string(v.Rule) + " " + v.Monitor
		if seen[key] {
			continue
		}
		seen[key] = true
		fmt.Printf("  %v\n", v)
	}
	rt.AbortAll()
	rt.Join()
}

func main() {
	dine(true)
	dine(false)
}
