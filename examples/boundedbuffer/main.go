// Bounded buffer: the paper's communication-coordinator class built
// directly on the public monitor API. A correct producer/consumer run
// passes checking; a buggy Send that skips the full-buffer test (fault
// II.d) violates the resource invariant 0 ≤ r ≤ s ≤ r+Rmax and is
// caught by Algorithm-2 (ST-7a).
//
//	go run ./examples/boundedbuffer
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"robustmon"
)

// buffer is a bounded buffer of ints behind an augmented monitor.
type buffer struct {
	mon      *robustmon.Monitor
	capacity int
	skipFull bool // the injected II.d bug

	mu    sync.Mutex
	items []int
}

func newBuffer(capacity int, skipFull bool, rec robustmon.Recorder, clk robustmon.Clock) (*buffer, error) {
	mon, err := robustmon.NewMonitor(robustmon.Spec{
		Name:        "buf",
		Kind:        robustmon.CommunicationCoordinator,
		Conditions:  []string{"notFull", "notEmpty"},
		Procedures:  []string{"Send", "Receive"},
		Rmax:        capacity,
		SendProc:    "Send",
		ReceiveProc: "Receive",
	}, robustmon.WithRecorder(rec), robustmon.WithClock(clk))
	if err != nil {
		return nil, err
	}
	return &buffer{mon: mon, capacity: capacity, skipFull: skipFull}, nil
}

func (b *buffer) len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.items)
}

func (b *buffer) send(p *robustmon.Process, v int) error {
	if err := b.mon.Enter(p, "Send"); err != nil {
		return err
	}
	if b.len() == b.capacity && !b.skipFull { // the bug drops this guard
		if err := b.mon.Wait(p, "Send", "notFull"); err != nil {
			return err
		}
	}
	b.mu.Lock()
	b.items = append(b.items, v)
	b.mu.Unlock()
	return b.mon.SignalExit(p, "Send", "notEmpty")
}

func (b *buffer) receive(p *robustmon.Process) (int, error) {
	if err := b.mon.Enter(p, "Receive"); err != nil {
		return 0, err
	}
	if b.len() == 0 {
		if err := b.mon.Wait(p, "Receive", "notEmpty"); err != nil {
			return 0, err
		}
	}
	b.mu.Lock()
	v := b.items[0]
	b.items = b.items[1:]
	b.mu.Unlock()
	return v, b.mon.SignalExit(p, "Receive", "notFull")
}

func runOnce(skipFull bool) {
	db := robustmon.NewHistory()
	clk := robustmon.NewVirtualClock(time.Date(2001, 7, 1, 0, 0, 0, 0, time.UTC))
	buf, err := newBuffer(2, skipFull, db, clk)
	if err != nil {
		log.Fatalf("boundedbuffer: %v", err)
	}
	det := robustmon.NewDetector(db, robustmon.DetectorConfig{Clock: clk}, buf.mon)

	rt := robustmon.NewRuntime()
	const items = 20
	if skipFull {
		// The buggy Send never blocks, so a solo producer burst
		// deterministically over-fills the two-slot buffer; the consumer
		// drains afterwards.
		rt.Spawn("producer", func(p *robustmon.Process) {
			for i := 0; i < 5; i++ {
				if err := buf.send(p, i); err != nil {
					return
				}
			}
		})
		rt.Join()
		rt.Spawn("consumer", func(p *robustmon.Process) {
			for i := 0; i < 5; i++ {
				if _, err := buf.receive(p); err != nil {
					return
				}
			}
		})
	} else {
		rt.Spawn("producer", func(p *robustmon.Process) {
			for i := 0; i < items; i++ {
				if err := buf.send(p, i); err != nil {
					return
				}
			}
		})
		rt.Spawn("consumer", func(p *robustmon.Process) {
			for i := 0; i < items; i++ {
				if _, err := buf.receive(p); err != nil {
					return
				}
			}
		})
	}
	rt.Join()

	vs := det.CheckNow()
	label := "correct Send"
	if skipFull {
		label = "buggy Send (skips the full-buffer check, fault II.d)"
	}
	fmt.Printf("%s: %d violation(s)\n", label, len(vs))
	for _, v := range vs {
		fmt.Printf("  %v\n", v)
	}
}

func main() {
	runOnce(false)
	runOnce(true)
}
