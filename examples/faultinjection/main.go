// Fault injection sweep: run the paper's robustness experiment (E1)
// through the public API — inject all twenty-one classified fault
// kinds and print what detected each one.
//
//	go run ./examples/faultinjection
package main

import (
	"fmt"
	"os"

	"robustmon"
)

func main() {
	kinds := robustmon.AllFaultKinds()
	fmt.Printf("injecting %d fault kinds from the taxonomy...\n\n", len(kinds))
	results := robustmon.RunCoverage(kinds)

	detected := 0
	for _, r := range results {
		status := "MISSED"
		if r.Err != nil {
			status = "ERROR: " + r.Err.Error()
		} else if r.Detected {
			status = "detected"
			detected++
		}
		phase := ""
		if r.Realtime {
			phase = " (incl. real-time phase)"
		}
		fmt.Printf("%-7s %-28s %s%s\n", r.Kind.Code(), r.Kind, status, phase)
		for _, id := range r.Rules {
			fmt.Printf("        └─ rule %s\n", id)
		}
	}
	fmt.Printf("\ncoverage: %d / %d\n", detected, len(kinds))
	if detected != len(kinds) {
		os.Exit(1)
	}
	fmt.Println("matches the paper: all injected faults are detected")
}
