// Quickstart: build an augmented monitor, run a correct workload, then
// inject the internal-termination fault (§2.2 I.d — a process dies
// inside the monitor) and watch the periodic detector catch it via the
// Tmax timer.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"robustmon"
)

func main() {
	// The visible part of the declaration: an operation-manager monitor
	// guarding a shared account.
	spec := robustmon.Spec{
		Name:       "account",
		Kind:       robustmon.OperationManager,
		Conditions: []string{"nonZero"},
		Procedures: []string{"Deposit", "Withdraw"},
	}

	// The invisible part: history database + periodic detector. The
	// virtual clock lets this demo "wait" for Tmax instantly.
	db := robustmon.NewHistory(robustmon.WithFullTrace())
	clk := robustmon.NewVirtualClock(time.Date(2001, 7, 1, 0, 0, 0, 0, time.UTC))
	mon, err := robustmon.NewMonitor(spec,
		robustmon.WithRecorder(db), robustmon.WithClock(clk))
	if err != nil {
		log.Fatalf("quickstart: %v", err)
	}
	det := robustmon.NewDetector(db, robustmon.DetectorConfig{
		Tmax:  10 * time.Second,
		Tio:   10 * time.Second,
		Clock: clk,
	}, mon)

	// A correct workload: deposits and withdrawals under the monitor.
	rt := robustmon.NewRuntime()
	balance := 0
	for i := 0; i < 5; i++ {
		rt.Spawn("depositor", func(p *robustmon.Process) {
			if err := mon.Enter(p, "Deposit"); err != nil {
				return
			}
			balance += 100
			_ = mon.SignalExit(p, "Deposit", "nonZero")
		})
	}
	rt.Join()
	fmt.Printf("after deposits: balance=%d, violations=%d\n",
		balance, len(det.CheckNow()))

	// The fault: a process enters and terminates without ever exiting.
	rt.Spawn("crasher", func(p *robustmon.Process) {
		if err := mon.Enter(p, "Withdraw"); err != nil {
			return
		}
		// ... crashes here, never calls Exit ...
	})
	rt.Join()

	// Within Tmax nothing is wrong yet; after it, ST-5 fires.
	fmt.Printf("immediately after the crash: violations=%d\n", len(det.CheckNow()))
	clk.Advance(time.Minute)
	vs := det.CheckNow()
	fmt.Printf("after Tmax elapsed: violations=%d\n", len(vs))
	for _, v := range vs {
		fmt.Printf("  %v\n", v)
	}
	fmt.Printf("history recorded %d scheduling events in total\n", db.Total())
}
