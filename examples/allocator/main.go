// Tape-drive allocator: the paper's resource-access-right-allocator
// class with a declared calling order "path Acquire ; Release end".
// User-process-level faults (§2.2 III) are caught in two phases:
// ordering bugs in real time by the path-expression checker, the
// never-released drive by the Tlimit timer at a checkpoint.
//
//	go run ./examples/allocator
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"robustmon"
)

// drives allocates up to n tape drives.
type drives struct {
	mon *robustmon.Monitor

	mu   sync.Mutex
	free int
}

func newDrives(n int, rec robustmon.Recorder, clk robustmon.Clock) (*drives, error) {
	mon, err := robustmon.NewMonitor(robustmon.Spec{
		Name:        "tapedrives",
		Kind:        robustmon.ResourceAllocator,
		Conditions:  []string{"free"},
		Procedures:  []string{"Acquire", "Release"},
		CallOrder:   "path Acquire ; Release end",
		AcquireProc: "Acquire",
		ReleaseProc: "Release",
	}, robustmon.WithRecorder(rec), robustmon.WithClock(clk))
	if err != nil {
		return nil, err
	}
	return &drives{mon: mon, free: n}, nil
}

func (d *drives) acquire(p *robustmon.Process) error {
	if err := d.mon.Enter(p, "Acquire"); err != nil {
		return err
	}
	d.mu.Lock()
	none := d.free == 0
	d.mu.Unlock()
	if none {
		if err := d.mon.Wait(p, "Acquire", "free"); err != nil {
			return err
		}
	}
	d.mu.Lock()
	d.free--
	d.mu.Unlock()
	return d.mon.Exit(p, "Acquire")
}

func (d *drives) release(p *robustmon.Process) error {
	if err := d.mon.Enter(p, "Release"); err != nil {
		return err
	}
	d.mu.Lock()
	d.free++
	d.mu.Unlock()
	return d.mon.SignalExit(p, "Release", "free")
}

func main() {
	clk := robustmon.NewVirtualClock(time.Date(2001, 7, 1, 0, 0, 0, 0, time.UTC))
	db := robustmon.NewHistory()

	spec := robustmon.Spec{
		Name: "tapedrives", Kind: robustmon.ResourceAllocator,
		Conditions: []string{"free"}, Procedures: []string{"Acquire", "Release"},
		CallOrder:   "path Acquire ; Release end",
		AcquireProc: "Acquire", ReleaseProc: "Release",
	}
	// Phase 1 of the paper's strategy: real-time calling-order checking.
	rt, err := robustmon.NewRealTime(db, []robustmon.Spec{spec}, func(v robustmon.Violation) {
		fmt.Printf("  REALTIME %v\n", v)
	})
	if err != nil {
		log.Fatalf("allocator: %v", err)
	}
	d, err := newDrives(2, rt, clk)
	if err != nil {
		log.Fatalf("allocator: %v", err)
	}
	// Phase 2: the periodic detector (here invoked manually).
	det := robustmon.NewDetector(db, robustmon.DetectorConfig{
		Tlimit: 10 * time.Second, Clock: clk,
	}, d.mon)

	procs := robustmon.NewRuntime()

	fmt.Println("well-behaved users:")
	for i := 0; i < 3; i++ {
		procs.Spawn("user", func(p *robustmon.Process) {
			for j := 0; j < 2; j++ {
				if err := d.acquire(p); err != nil {
					return
				}
				if err := d.release(p); err != nil {
					return
				}
			}
		})
	}
	procs.Join()
	fmt.Printf("  periodic check: %d violation(s)\n", len(det.CheckNow()))

	fmt.Println("user releasing a drive it never acquired (fault III.a):")
	procs.Spawn("confused", func(p *robustmon.Process) {
		_ = d.release(p)
	})
	procs.Join()
	for _, v := range det.CheckNow() {
		fmt.Printf("  PERIODIC %v\n", v)
	}

	fmt.Println("user that never releases its drive (fault III.b):")
	procs.Spawn("hog", func(p *robustmon.Process) {
		_ = d.acquire(p)
		// keeps it forever
	})
	procs.Join()
	clk.Advance(time.Minute)
	for _, v := range det.CheckNow() {
		fmt.Printf("  PERIODIC %v\n", v)
	}
}
