// Tracequery: the trace store end to end. A detector streams a
// multi-monitor run into a WAL export directory whose index the sink
// maintains as it rotates, while a segment-count trigger compacts the
// rotated backlog in the background. Afterwards the program asks the
// question the trace store exists for: "show me the window around this
// point, for this monitor" — answered by an index-backed SeekReader
// that opens only the files the window can touch, instead of decoding
// the entire directory the way a full replay must.
//
//	go run ./examples/tracequery
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"robustmon"
)

const (
	nMonitors   = 6
	procsPerMon = 2
	pairsPerMon = 600
)

func main() {
	dir, err := os.MkdirTemp("", "tracequery-*")
	if err != nil {
		log.Fatalf("tracequery: %v", err)
	}
	defer os.RemoveAll(dir)

	// The full production wiring: index maintenance on rotate, and a
	// background compaction every 24 sealed files so the run bounds its
	// own on-disk footprint while it is still recording.
	maint := robustmon.NewTraceIndexMaintainer(dir)
	sink, err := robustmon.NewWALSink(dir, robustmon.WALConfig{
		MaxFileBytes: 4 << 10,          // rotate often: a real backlog
		RotateEvery:  10 * time.Second, // idle monitors still seal segments
		OnSeal:       []robustmon.ExportSealedSink{maint},
	})
	if err != nil {
		log.Fatalf("tracequery: %v", err)
	}
	exp := robustmon.NewExporter(sink, robustmon.ExporterConfig{
		Policy:       robustmon.ExportBlock,
		CompactEvery: 24,
		Compact: func() error {
			_, err := robustmon.CompactExportDir(dir, robustmon.CompactionConfig{})
			return err
		},
	})

	db := robustmon.NewHistory() // no WithFullTrace: the WAL is the only copy
	mons := make([]*robustmon.Monitor, nMonitors)
	for i := range mons {
		spec := robustmon.Spec{
			Name:       fmt.Sprintf("cell-%02d", i),
			Kind:       robustmon.OperationManager,
			Conditions: []string{"ready"},
			Procedures: []string{"Op"},
		}
		m, err := robustmon.NewMonitor(spec, robustmon.WithRecorder(db))
		if err != nil {
			log.Fatalf("tracequery: %v", err)
		}
		mons[i] = m
	}
	det := robustmon.NewDetectorNoFreeze(db, robustmon.DetectorConfig{
		Tmax:     time.Hour,
		Tio:      time.Hour,
		Exporter: exp,
	}, mons...)

	rt := robustmon.NewRuntime()
	for _, m := range mons {
		m := m
		for w := 0; w < procsPerMon; w++ {
			rt.Spawn("driver", func(p *robustmon.Process) {
				for i := 0; i < pairsPerMon; i++ {
					if err := m.Enter(p, "Op"); err != nil {
						return
					}
					_ = m.SignalExit(p, "Op", "ready")
					if i%40 == 39 {
						det.CheckNow() // stream segments out as the run goes
					}
				}
			})
		}
	}
	rt.Join()
	det.CheckNow()
	if err := exp.Close(); err != nil {
		log.Fatalf("tracequery: %v", err)
	}
	st := exp.Stats()
	fmt.Printf("recorded %d events in %d segments; %d background compactions\n",
		st.Events, st.Written, st.Compactions)

	// The expensive baseline: decode everything.
	t0 := time.Now()
	full, err := robustmon.ReadExportDir(dir)
	if err != nil {
		log.Fatalf("tracequery: %v", err)
	}
	fullTook := time.Since(t0)
	fmt.Printf("full replay: %d events from %d files in %v\n",
		len(full.Events), full.Files, fullTook.Round(time.Microsecond))

	// The trace-store way: a window around the middle of the run, for
	// one monitor — the "what led up to this violation" query.
	mid := full.Events[len(full.Events)/2].Seq
	r, err := robustmon.OpenTraceReader(dir)
	if err != nil {
		log.Fatalf("tracequery: %v", err)
	}
	t0 = time.Now()
	win, err := r.ReplayRange(mid-200, mid+200, "cell-03")
	if err != nil {
		log.Fatalf("tracequery: %v", err)
	}
	seekTook := time.Since(t0)
	qs := r.LastStats()
	fmt.Printf("windowed query (seq %d..%d, cell-03): %d events, opened %d of %d files (%d skipped) in %v\n",
		mid-200, mid+200, len(win.Events), qs.Opened, qs.FilesTotal, qs.Skipped,
		seekTook.Round(time.Microsecond))
	if seekTook > 0 {
		fmt.Printf("the index made the window %.1fx cheaper than the full replay\n",
			float64(fullTook)/float64(seekTook))
	}

	// The index survives scrutiny: rebuild it from the files and verify
	// the header chains.
	idx, err := robustmon.RebuildTraceIndex(dir)
	if err != nil {
		log.Fatalf("tracequery: %v", err)
	}
	if errs := idx.Verify(dir); len(errs) != 0 {
		log.Fatalf("tracequery: index disagrees with files: %v", errs)
	}
	fmt.Printf("index verified: %d files, %d events indexed\n", len(idx.Files), idx.Events())
}
