// Online recovery: reset a faulty monitor without stopping the world.
//
// Four monitors share one sharded history database and one adaptive,
// per-monitor-mode detector streaming its checkpoints to a WAL export
// directory. A keep-lock fault wedges one monitor mid-run; the
// recovery manager's ResetMonitor policy — wired shard-local via
// SetResetter — freezes only that monitor, discards its unchecked
// history, reinitialises it and lets its workload resume, while the
// other three monitors never stop. The exported WAL carries a recovery
// marker recording the reset horizon, which the replay at the end
// reads back.
//
//	go run ./examples/onlinerecovery
package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"robustmon"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "onlinerecovery:", err)
		os.Exit(1)
	}
}

func run() error {
	db := robustmon.NewHistory()

	// The faulty monitor gets a keep-lock injector: one Exit will keep
	// the monitor occupied, wedging every later Enter behind a stale
	// occupant — fault I.c.2 of the taxonomy.
	inj := robustmon.NewInjector(robustmon.SignalMonitorNotReleased)
	spec := func(name string) robustmon.Spec {
		return robustmon.Spec{
			Name:       name,
			Kind:       robustmon.OperationManager,
			Conditions: []string{"ok"},
			Procedures: []string{"Op"},
		}
	}
	faulty, err := robustmon.NewMonitor(spec("faulty"),
		robustmon.WithRecorder(db), robustmon.WithHooks(inj.Hooks()))
	if err != nil {
		return err
	}
	mons := []*robustmon.Monitor{faulty}
	for i := 0; i < 3; i++ {
		m, err := robustmon.NewMonitor(spec(fmt.Sprintf("steady%d", i)), robustmon.WithRecorder(db))
		if err != nil {
			return err
		}
		mons = append(mons, m)
	}

	// Checkpoints stream to a WAL directory so the recovery marker has
	// somewhere durable to land.
	dir := filepath.Join(os.TempDir(), fmt.Sprintf("onlinerecovery-%d", os.Getpid()))
	defer os.RemoveAll(dir)
	sink, err := robustmon.NewWALSink(dir, robustmon.WALConfig{})
	if err != nil {
		return err
	}
	exp := robustmon.NewExporter(sink, robustmon.ExporterConfig{Policy: robustmon.ExportBlock})

	rt := robustmon.NewRuntime()
	mgr := robustmon.NewRecoveryManager(robustmon.ResetMonitor, rt, faulty)
	det := robustmon.NewDetectorNoFreeze(db, robustmon.DetectorConfig{
		MinInterval: 2 * time.Millisecond,
		MaxInterval: 25 * time.Millisecond,
		BatchSize:   64,
		Exporter:    exp,
		OnViolation: mgr.Handle,
	}, mons...)
	mgr.SetResetter(det) // this line is what makes the reset shard-local

	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan []robustmon.Violation, 1)
	go func() { runDone <- det.Run(ctx) }()

	// Steady monitors: one driver each, hammering enter/exit.
	stop := make(chan struct{})
	for _, m := range mons[1:] {
		m := m
		rt.Spawn(m.Name(), func(p *robustmon.Process) {
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := m.Enter(p, "Op"); err != nil {
					return
				}
				_ = m.Exit(p, "Op")
			}
		})
	}
	// The faulty driver: clean ops, then the armed fault wedges the
	// monitor. Recovery resets it online; the driver's parked Enter is
	// aborted and it retries into the freshly reset monitor.
	recoveredOps := make(chan int, 1)
	rt.Spawn("faulty", func(p *robustmon.Process) {
		for i := 0; i < 20; i++ {
			if err := faulty.Enter(p, "Op"); err != nil {
				return
			}
			_ = faulty.Exit(p, "Op")
		}
		inj.Arm()
		if err := faulty.Enter(p, "Op"); err != nil {
			return
		}
		_ = faulty.Exit(p, "Op") // keeps the lock: the monitor is now wedged
		ops := 0
		for i := 0; i < 20; i++ {
			// The first of these parks behind the stale occupant until the
			// online reset aborts it; retries then run against the
			// recovered monitor.
			if err := faulty.Enter(p, "Op"); err != nil {
				continue
			}
			_ = faulty.Exit(p, "Op")
			ops++
		}
		recoveredOps <- ops
	})

	ops := <-recoveredOps
	close(stop)
	cancel()
	<-runDone
	if err := exp.Close(); err != nil {
		return err
	}
	rt.AbortAll()
	rt.Join()

	st := det.Stats()
	fmt.Printf("checkpoints: %d   resets: %d (discarded %d unchecked events)\n",
		st.Checks, st.Resets, st.ResetDropped)
	fmt.Printf("faulty monitor served %d/20 ops after the wedge (recovered online)\n", ops)
	fmt.Println("\nrecovery actions:")
	if err := robustmon.RenderRecoveryActions(os.Stdout, mgr.Log()); err != nil {
		return err
	}

	rep, err := robustmon.ReadExportDir(dir)
	if err != nil {
		return err
	}
	fmt.Printf("\nexported %d events in %d segments; %d recovery marker(s):\n",
		len(rep.Events), rep.Segments, len(rep.Markers))
	for _, mk := range rep.Markers {
		fmt.Printf("  monitor %q reset at seq %d (rule %s, %d events discarded)\n",
			mk.Monitor, mk.Horizon, mk.Rule, mk.Dropped)
	}
	if st.Resets == 0 || ops == 0 || len(rep.Markers) == 0 {
		return fmt.Errorf("recovery did not engage (resets=%d ops=%d markers=%d)",
			st.Resets, ops, len(rep.Markers))
	}
	fmt.Println("\nthe three steady monitors were never frozen by the reset: no world stop")
	return nil
}
