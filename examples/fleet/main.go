// Fleet: the network export pipeline end to end, in one process. A
// Collector listens on loopback with a temporary directory as its
// fleet root; two independent detector pipelines ("producers") each
// stream their checkpoints through an Exporter into a NetSink — the
// network drop-in for WALSink — shipping sealed trace records over
// TCP with CRC-framed, acknowledged, at-least-once delivery. The
// collector lands each origin in its own subdirectory, an ordinary
// export directory: afterwards the program replays both origins with
// the stock offline reader, re-checks each trace, and prints the
// per-sink conservation law (accepted = acked + dropped + buffered)
// that the degraded-network tests enforce under fault injection.
//
//	go run ./examples/fleet
//
// Against a real collector the producers would run on other machines:
// `moncollect -addr :9190 -dir /var/robustmon/fleet` on the collector
// host, and NetSinkConfig.Addr pointed at it from each detector.
package main

import (
	"fmt"
	"log"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"

	"robustmon"
)

const (
	nMonitors   = 4
	procsPerMon = 2
	pairsPerOp  = 150
)

// producer runs one detector pipeline whose checkpoints ship to the
// collector at addr under the given origin, and returns the sink's
// final stats plus the spec set for the offline re-check.
func producer(addr, origin string) (robustmon.NetSinkStats, []robustmon.Spec) {
	sink, err := robustmon.NewNetSink(robustmon.NetSinkConfig{
		Addr:   addr,
		Origin: origin,
		// Policy defaults to ExportBlock: a partition backpressures the
		// detector once the un-acked buffer fills, and nothing is lost.
	})
	if err != nil {
		log.Fatalf("fleet: %v", err)
	}
	exp := robustmon.NewExporter(sink, robustmon.ExporterConfig{Policy: robustmon.ExportBlock})

	db := robustmon.NewHistory() // no WithFullTrace: the collector holds the only copy
	specs := make([]robustmon.Spec, 0, nMonitors)
	mons := make([]*robustmon.Monitor, nMonitors)
	for i := range mons {
		spec := robustmon.Spec{
			Name:       fmt.Sprintf("%s-svc%02d", origin, i),
			Kind:       robustmon.OperationManager,
			Conditions: []string{"ok"},
			Procedures: []string{"Op"},
		}
		m, err := robustmon.NewMonitor(spec, robustmon.WithRecorder(db))
		if err != nil {
			log.Fatalf("fleet: %v", err)
		}
		specs = append(specs, spec)
		mons[i] = m
	}
	det := robustmon.NewDetector(db, robustmon.DetectorConfig{
		Tmax:     time.Hour,
		Tio:      time.Hour,
		Exporter: exp,
	}, mons...)

	rt := robustmon.NewRuntime()
	for _, m := range mons {
		m := m
		for w := 0; w < procsPerMon; w++ {
			rt.Spawn("worker", func(p *robustmon.Process) {
				for j := 0; j < pairsPerOp; j++ {
					if err := m.Enter(p, "Op"); err != nil {
						return
					}
					_ = m.Exit(p, "Op")
					if j%25 == 24 {
						det.CheckNow()
					}
				}
			})
		}
	}
	rt.Join()
	det.CheckNow()
	// Close drains the exporter queue and then the NetSink, which
	// blocks until the collector has acknowledged every record as
	// durable — after this the origin's directory is complete.
	if err := exp.Close(); err != nil {
		log.Fatalf("fleet: close exporter for %s: %v", origin, err)
	}
	return sink.Stats(), specs
}

func main() {
	root, err := os.MkdirTemp("", "fleet-*")
	if err != nil {
		log.Fatalf("fleet: %v", err)
	}
	defer os.RemoveAll(root)

	// The collector: one listener, one goroutine per producer
	// connection, one WAL directory (with trace index) per origin.
	col, err := robustmon.NewCollector(robustmon.CollectorConfig{Dir: root})
	if err != nil {
		log.Fatalf("fleet: %v", err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatalf("fleet: %v", err)
	}
	go func() { _ = col.Serve(lis) }()
	addr := lis.Addr().String()
	fmt.Printf("collector on %s, fleet root %s\n", addr, root)

	// Two producers ship concurrently under distinct origins.
	origins := []string{"svc-east", "svc-west"}
	stats := make([]robustmon.NetSinkStats, len(origins))
	specsByOrigin := make([][]robustmon.Spec, len(origins))
	var wg sync.WaitGroup
	for i, origin := range origins {
		wg.Add(1)
		go func(i int, origin string) {
			defer wg.Done()
			stats[i], specsByOrigin[i] = producer(addr, origin)
		}(i, origin)
	}
	wg.Wait()
	if err := col.Close(); err != nil {
		log.Fatalf("fleet: close collector: %v", err)
	}
	fmt.Printf("collector landed origins: %v\n", col.Origins())

	// Each origin's subdirectory is a plain export directory: replay
	// and re-check both with the stock offline tooling.
	for i, origin := range origins {
		st := stats[i]
		fmt.Printf("%s: shipped %d records (%d acked, %d dropped, %d still buffered, %d reconnects) — conserved: %v\n",
			origin, st.Accepted, st.Acked, st.Dropped, st.Buffered,
			st.Reconnects, st.Accepted == st.Acked+st.Dropped+int64(st.Buffered))

		rep, err := robustmon.ReadExportDir(filepath.Join(root, origin))
		if err != nil {
			log.Fatalf("fleet: replay %s: %v", origin, err)
		}
		results, err := robustmon.VerifyTrace(rep.Events, robustmon.VerifyOptions{Specs: specsByOrigin[i]})
		if err != nil {
			log.Fatalf("fleet: verify %s: %v", origin, err)
		}
		clean := true
		for _, r := range results {
			if !r.Clean() {
				clean = false
			}
		}
		fmt.Printf("%s: replayed %d events from %d files; offline re-check clean=%v\n",
			origin, len(rep.Events), rep.Files, clean)
	}
}
