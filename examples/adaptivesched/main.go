// Adaptivesched: the adaptive checkpoint scheduler and batched replay
// at work. Eight monitors share one sharded history database, but the
// load is deliberately skewed — two "hot" monitors take a torrent of
// operations while six sit almost idle. A fixed checking interval
// would pay the same checkpoint cost for all eight; the adaptive
// detector derives each monitor's interval from its observed event
// rate, so the hot shards are checked often (keeping their segments
// near TargetBatch events) while the idle ones back off to
// MaxInterval. BatchSize bounds how much of a segment any single
// drain bites off, so even a shard that buffered a huge backlog
// replays in bounded slices.
//
//	go run ./examples/adaptivesched
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"time"

	"robustmon"
)

const (
	nMonitors = 8
	nHot      = 2
)

func main() {
	db := robustmon.NewHistory()
	mons := make([]*robustmon.Monitor, nMonitors)
	for i := range mons {
		role := "idle"
		if i < nHot {
			role = "hot"
		}
		spec := robustmon.Spec{
			Name:       fmt.Sprintf("%s%02d", role, i),
			Kind:       robustmon.OperationManager,
			Conditions: []string{"ok"},
			Procedures: []string{"Op"},
		}
		m, err := robustmon.NewMonitor(spec, robustmon.WithRecorder(db))
		if err != nil {
			log.Fatalf("adaptivesched: %v", err)
		}
		mons[i] = m
	}

	det := robustmon.NewDetectorNoFreeze(db, robustmon.DetectorConfig{
		Tmax: time.Hour, Tio: time.Hour,
		// Adaptive scheduling: per-monitor intervals in [2ms, 200ms],
		// each aimed at draining ≈512 events per checkpoint.
		MinInterval: 2 * time.Millisecond,
		MaxInterval: 200 * time.Millisecond,
		TargetBatch: 512,
		// Batched replay: no single drain bites off more than 256
		// events, so checkpoint latency stays bounded however much a
		// hot shard buffered.
		BatchSize: 256,
	}, mons...)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan []robustmon.Violation, 1)
	go func() { done <- det.Run(ctx) }()

	// Skewed load: the hot monitors hammer, the idle ones tick.
	rt := robustmon.NewRuntime()
	stop := make(chan struct{})
	for i, m := range mons {
		m := m
		hot := i < nHot
		rt.Spawn("worker", func(p *robustmon.Process) {
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := m.Enter(p, "Op"); err != nil {
					return
				}
				_ = m.SignalExit(p, "Op", "ok")
				if !hot {
					time.Sleep(20 * time.Millisecond)
				}
			}
		})
	}

	time.Sleep(1200 * time.Millisecond)
	ivs := det.Intervals()
	close(stop)
	rt.Join()
	cancel()
	vs := <-done

	names := make([]string, 0, len(ivs))
	for name := range ivs {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Println("per-monitor effective checking intervals after 1.2s of skewed load:")
	for _, name := range names {
		fmt.Printf("  %-8s %10v   (%7d events)\n", name, ivs[name], db.EventCount(name))
	}
	st := det.Stats()
	fmt.Printf("\n%d events replayed over %d checkpoints; checkpoint p50=%v p99=%v; %d violations\n",
		st.Events, st.Checks, st.CheckP50, st.CheckP99, len(vs))
	fmt.Println("hot monitors converge toward MinInterval-scale checking;")
	fmt.Println("idle monitors back off to MaxInterval and stop paying for empty checkpoints.")
}
