// Manymonitors: the sharded hot path at work. Sixteen independent
// monitors record into ONE history database — each monitor gets its
// own shard (own lock, own segment buffer), while an atomic sequence
// counter keeps the global event order for export and offline replay.
// A single detector checkpoints all of them through its parallel
// worker pool, first in the paper-faithful stop-the-world mode, then
// in the per-monitor mode that never stops an unrelated monitor, and
// finally one injected fault shows detection still works at scale.
//
//	go run ./examples/manymonitors
package main

import (
	"fmt"
	"log"
	"time"

	"robustmon"
)

const (
	nMonitors   = 16
	procsPerMon = 4
	pairsPerOp  = 200
)

func buildMonitors(db *robustmon.History, hooks map[int]robustmon.Hooks) []*robustmon.Monitor {
	mons := make([]*robustmon.Monitor, nMonitors)
	for i := range mons {
		spec := robustmon.Spec{
			Name:       fmt.Sprintf("shard%02d", i),
			Kind:       robustmon.OperationManager,
			Conditions: []string{"ok"},
			Procedures: []string{"Op"},
		}
		opts := []robustmon.MonitorOption{robustmon.WithRecorder(db)}
		if h, ok := hooks[i]; ok {
			opts = append(opts, robustmon.WithHooks(h))
		}
		m, err := robustmon.NewMonitor(spec, opts...)
		if err != nil {
			log.Fatalf("manymonitors: %v", err)
		}
		mons[i] = m
	}
	return mons
}

func drive(mons []*robustmon.Monitor) time.Duration {
	rt := robustmon.NewRuntime()
	start := time.Now()
	for _, m := range mons {
		m := m
		for w := 0; w < procsPerMon; w++ {
			rt.Spawn("worker", func(p *robustmon.Process) {
				for j := 0; j < pairsPerOp; j++ {
					if err := m.Enter(p, "Op"); err != nil {
						return
					}
					_ = m.SignalExit(p, "Op", "ok")
				}
			})
		}
	}
	rt.Join()
	return time.Since(start)
}

func run(mode string, newDet func(*robustmon.History, []*robustmon.Monitor) *robustmon.Detector) {
	db := robustmon.NewHistory()
	mons := buildMonitors(db, nil)
	det := newDet(db, mons)
	elapsed := drive(mons)
	vs := det.CheckNow()
	st := det.Stats()
	fmt.Printf("%-22s %d monitors, %d events in %v (%s events/sec), %d checks, %d violations\n",
		mode, len(mons), db.Total(), elapsed.Round(time.Microsecond),
		fmtRate(float64(db.Total())/elapsed.Seconds()), st.Checks, len(vs))
}

func fmtRate(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.0fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

func main() {
	cfg := robustmon.DetectorConfig{
		Tmax: time.Hour, Tio: time.Hour,
		Workers: 8,
	}

	// Paper-faithful: every checkpoint stops the whole world, but the
	// per-monitor replay work is spread across the worker pool.
	run("hold-world:", func(db *robustmon.History, mons []*robustmon.Monitor) *robustmon.Detector {
		return robustmon.NewDetector(db, cfg, mons...)
	})

	// Per-monitor: each monitor is frozen only for its own snapshot and
	// shard drain; the other fifteen keep running.
	run("per-monitor:", func(db *robustmon.History, mons []*robustmon.Monitor) *robustmon.Detector {
		return robustmon.NewDetectorNoFreeze(db, cfg, mons...)
	})

	// Detection still works at scale: arm one fault on one of the
	// sixteen monitors and find it. One pass per monitor is enough —
	// the injected "monitor not released" leaves shard07's lock stale,
	// so a longer workload there would just queue up behind it.
	inj := robustmon.NewInjector(robustmon.SignalMonitorNotReleased)
	db := robustmon.NewHistory()
	mons := buildMonitors(db, map[int]robustmon.Hooks{7: inj.Hooks()})
	det := robustmon.NewDetector(db, cfg, mons...)
	inj.Arm()
	rt := robustmon.NewRuntime()
	for _, m := range mons {
		m := m
		rt.Spawn("worker", func(p *robustmon.Process) {
			if err := m.Enter(p, "Op"); err != nil {
				return
			}
			_ = m.SignalExit(p, "Op", "ok")
		})
	}
	rt.Join()
	vs := det.CheckNow()
	fmt.Printf("\ninjected one fault on shard07 among %d monitors: %d violation(s) found\n", nMonitors, len(vs))
	for _, v := range robustmon.DedupViolations(vs) {
		fmt.Printf("  %v\n", v)
	}
}
