// Streamexport: the async trace-export pipeline end to end. Eight
// monitors record into one sharded history database configured WITHOUT
// WithFullTrace — nothing accumulates in memory. Instead the detector
// carries an Exporter: every checkpoint's drained segments stream
// through a bounded channel to a WAL sink, which persists them as
// CRC-protected, fsync-on-rotate segment files. Afterwards the program
// simulates a crash by tearing bytes off the newest WAL file, replays
// the directory, and re-checks the recovered trace offline — proving a
// run survives on disk without ever being held in memory.
//
//	go run ./examples/streamexport
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"time"

	"robustmon"
)

const (
	nMonitors   = 8
	procsPerMon = 2
	pairsPerOp  = 150
)

func main() {
	dir, err := os.MkdirTemp("", "streamexport-*")
	if err != nil {
		log.Fatalf("streamexport: %v", err)
	}
	defer os.RemoveAll(dir)

	// Sink + exporter: Block policy, so the export is lossless and the
	// replay below can be exact. Small MaxFileBytes forces rotations so
	// the crash simulation has sealed (durable) files behind it.
	sink, err := robustmon.NewWALSink(dir, robustmon.WALConfig{MaxFileBytes: 16 << 10})
	if err != nil {
		log.Fatalf("streamexport: %v", err)
	}
	exp := robustmon.NewExporter(sink, robustmon.ExporterConfig{Policy: robustmon.ExportBlock})

	db := robustmon.NewHistory() // no WithFullTrace: the WAL is the only copy
	specs := make([]robustmon.Spec, 0, nMonitors)
	mons := make([]*robustmon.Monitor, nMonitors)
	for i := range mons {
		spec := robustmon.Spec{
			Name:       fmt.Sprintf("svc%02d", i),
			Kind:       robustmon.OperationManager,
			Conditions: []string{"ok"},
			Procedures: []string{"Op"},
		}
		m, err := robustmon.NewMonitor(spec, robustmon.WithRecorder(db))
		if err != nil {
			log.Fatalf("streamexport: %v", err)
		}
		specs = append(specs, spec)
		mons[i] = m
	}
	det := robustmon.NewDetector(db, robustmon.DetectorConfig{
		Tmax:     time.Hour,
		Tio:      time.Hour,
		Exporter: exp, // checkpoints stream their drained segments for free
	}, mons...)

	rt := robustmon.NewRuntime()
	for _, m := range mons {
		m := m
		for w := 0; w < procsPerMon; w++ {
			rt.Spawn("worker", func(p *robustmon.Process) {
				for j := 0; j < pairsPerOp; j++ {
					if err := m.Enter(p, "Op"); err != nil {
						return
					}
					_ = m.Exit(p, "Op")
					if j%25 == 24 {
						det.CheckNow()
					}
				}
			})
		}
	}
	rt.Join()
	det.CheckNow()
	if err := exp.Close(); err != nil {
		log.Fatalf("streamexport: close exporter: %v", err)
	}
	st := exp.Stats()
	fmt.Printf("recorded %d events; exporter streamed %d segments (%d events) to %s, dropped %d\n",
		db.Total(), st.Written, st.Events, dir, st.DroppedSegments)

	// Simulate a crash mid-append: tear the tail off the newest file.
	names, err := filepath.Glob(filepath.Join(dir, "*.wal"))
	if err != nil || len(names) == 0 {
		log.Fatalf("streamexport: no wal files: %v", err)
	}
	sort.Strings(names)
	newest := names[len(names)-1]
	blob, err := os.ReadFile(newest)
	if err != nil {
		log.Fatalf("streamexport: %v", err)
	}
	if err := os.WriteFile(newest, blob[:len(blob)-9], 0o666); err != nil {
		log.Fatalf("streamexport: %v", err)
	}
	fmt.Printf("simulated crash: tore 9 bytes off %s\n", filepath.Base(newest))

	rep, err := robustmon.ReadExportDir(dir)
	if err != nil {
		log.Fatalf("streamexport: replay: %v", err)
	}
	fmt.Printf("replayed %d events from %d files (%d segments); recovered torn tail: %v\n",
		len(rep.Events), rep.Files, rep.Segments, rep.Recovered)

	results, err := robustmon.VerifyTrace(rep.Events, robustmon.VerifyOptions{Specs: specs})
	if err != nil {
		log.Fatalf("streamexport: verify: %v", err)
	}
	clean := true
	for _, r := range results {
		if !r.Clean() {
			clean = false
		}
	}
	fmt.Printf("offline re-check of the recovered trace: clean=%v agreement=%v\n",
		clean, robustmon.VerifyAgreement(results))
}
