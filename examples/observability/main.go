// Observability: the self-observability layer end to end. A sharded
// history database, a detector and a streaming WAL exporter all
// instrument themselves on one lock-free metrics registry; the
// detector additionally captures the whole registry as periodic
// health-snapshot records in the same WAL that carries the trace, and
// evaluates threshold rules over each snapshot (the self-watching
// pipeline — fired rules would surface as META violations and WAL
// alerts). The
// program then exposes the registry over HTTP — /metrics in Prometheus
// text exposition plus the standard /debug/pprof suite — scrapes its
// own endpoint once, and finally replays the export directory to show
// the health timeline that `montrace stats` renders after the fact.
//
//	go run ./examples/observability
//	go run ./examples/observability -addr 127.0.0.1:9188 -serve 30s
//
// With -serve the endpoint stays up after the workload so an external
// scraper (curl, Prometheus, go tool pprof) can pull from it.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"robustmon"
)

const (
	nMonitors   = 4
	procsPerMon = 2
	pairsPerOp  = 300
)

func main() {
	addr := flag.String("addr", "127.0.0.1:0", "observability endpoint listen address")
	serve := flag.Duration("serve", 0, "keep the endpoint up this long after the workload (0: exit immediately)")
	flag.Parse()

	dir, err := os.MkdirTemp("", "observability-*")
	if err != nil {
		log.Fatalf("observability: %v", err)
	}
	defer os.RemoveAll(dir)

	// One registry, wired through every layer: the history database
	// counts appends and slab-pool traffic, the detector its
	// checkpoints, violations and latency histograms, the exporter its
	// queue and drop accounting.
	reg := robustmon.NewObsRegistry()

	sink, err := robustmon.NewWALSink(dir, robustmon.WALConfig{MaxFileBytes: 16 << 10})
	if err != nil {
		log.Fatalf("observability: %v", err)
	}
	exp := robustmon.NewExporter(sink, robustmon.ExporterConfig{
		Policy: robustmon.ExportBlock,
		Obs:    reg,
	})

	db := robustmon.NewHistory(robustmon.WithObsMetrics(reg))
	mons := make([]*robustmon.Monitor, nMonitors)
	for i := range mons {
		m, err := robustmon.NewMonitor(robustmon.Spec{
			Name:       fmt.Sprintf("svc%02d", i),
			Kind:       robustmon.OperationManager,
			Conditions: []string{"ok"},
			Procedures: []string{"Op"},
		}, robustmon.WithRecorder(db))
		if err != nil {
			log.Fatalf("observability: %v", err)
		}
		mons[i] = m
	}
	det := robustmon.NewDetector(db, robustmon.DetectorConfig{
		Tmax:     time.Hour,
		Tio:      time.Hour,
		Exporter: exp,
		Obs:      reg,
		// Every checkpoint boundary at least 5ms after the last snapshot
		// captures the registry into the WAL — the health timeline.
		HealthEvery: 5 * time.Millisecond,
		// The pipeline also watches itself: each health snapshot is run
		// through these threshold rules, and a transition raises a META
		// violation plus a WAL pipeline alert. The ceilings here are far
		// above anything this workload produces, so the run stays quiet —
		// but the engine's obs_rule_* meters appear on /metrics either
		// way.
		Rules: []robustmon.ObsRule{
			{Name: "check-storm", Metric: "detect_checks_total", Rate: true, Ceiling: 1e9},
			{Name: "slow-checks", Metric: "detect_check_ns", Quantile: 0.99, Ceiling: float64(time.Hour)},
		},
	}, mons...)

	// The HTTP endpoint is up during the workload, so a scrape sees the
	// counters move. ":0" picks a free port; Addr reads it back.
	srv, err := robustmon.StartObsServer(robustmon.ObsConfig{Addr: *addr, Registry: reg})
	if err != nil {
		log.Fatalf("observability: %v", err)
	}
	defer srv.Close()
	fmt.Printf("observability endpoint: %s/metrics (pprof at %s/debug/pprof/)\n", srv.URL(), srv.URL())

	rt := robustmon.NewRuntime()
	for _, m := range mons {
		m := m
		for w := 0; w < procsPerMon; w++ {
			rt.Spawn("worker", func(p *robustmon.Process) {
				for j := 0; j < pairsPerOp; j++ {
					if err := m.Enter(p, "Op"); err != nil {
						return
					}
					_ = m.Exit(p, "Op")
					if j%50 == 49 {
						det.CheckNow()
						time.Sleep(time.Millisecond) // let the health cadence elapse
					}
				}
			})
		}
	}
	rt.Join()
	det.CheckNow()
	if err := exp.Close(); err != nil {
		log.Fatalf("observability: close exporter: %v", err)
	}

	// Scrape our own endpoint once: the exposition is plain Prometheus
	// text, one sample per line.
	resp, err := http.Get(srv.URL() + "/metrics")
	if err != nil {
		log.Fatalf("observability: scrape: %v", err)
	}
	shown := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		for _, prefix := range []string{"history_append_total", "detect_checks_total", "detect_violations_total", "export_written_total"} {
			if strings.HasPrefix(line, prefix) {
				fmt.Printf("  scrape: %s\n", line)
				shown++
			}
		}
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if shown == 0 {
		log.Fatal("observability: scrape returned none of the expected metrics")
	}

	// The same registry also went to disk: the WAL carries health
	// snapshots alongside the trace, each stamped with the sequence
	// horizon it was captured at.
	rep, err := robustmon.ReadExportDir(dir)
	if err != nil {
		log.Fatalf("observability: replay: %v", err)
	}
	fmt.Printf("replayed %d events, %d health snapshots and %d pipeline alerts from %s\n",
		len(rep.Events), len(rep.Healths), len(rep.Alerts), dir)
	if len(rep.Healths) == 0 {
		log.Fatal("observability: no health snapshots reached the WAL")
	}
	last := rep.Healths[len(rep.Healths)-1]
	checks, _ := last.Metrics.Counter("detect_checks_total")
	fmt.Printf("last snapshot: horizon seq %d, detect_checks_total %d (montrace stats -in <dir> renders the timeline)\n",
		last.Seq, checks)

	if *serve > 0 {
		fmt.Printf("serving for %v…\n", *serve)
		time.Sleep(*serve)
	}
}
