// Batchingest: the raw-speed record path end to end. Eight monitors
// record through per-monitor BatchWriters — each event lands in a
// lock-free local staging buffer and is published to the sharded
// history database in blocks, one lock acquire and one global-sequence
// claim per block instead of per event. The detector's checkpoints
// flush the staged blocks automatically (the handshake runs while each
// monitor is frozen, which is what makes the cross-goroutine flush
// safe), stream the drained segments to a WAL, and the program then
// replays the directory and proves the count: every recorded event
// reached the WAL exactly once, in global sequence order — batching
// changes the cost of recording, not the history recorded.
//
//	go run ./examples/batchingest
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"robustmon"
)

const (
	nMonitors   = 8
	procsPerMon = 2
	pairsPerOp  = 200
)

func main() {
	dir, err := os.MkdirTemp("", "batchingest-*")
	if err != nil {
		log.Fatalf("batchingest: %v", err)
	}
	defer os.RemoveAll(dir)

	sink, err := robustmon.NewWALSink(dir, robustmon.WALConfig{MaxFileBytes: 16 << 10})
	if err != nil {
		log.Fatalf("batchingest: %v", err)
	}
	exp := robustmon.NewExporter(sink, robustmon.ExporterConfig{Policy: robustmon.ExportBlock})

	db := robustmon.NewHistory()
	mons := make([]*robustmon.Monitor, nMonitors)
	writers := make([]*robustmon.BatchWriter, nMonitors)
	for i := range mons {
		spec := robustmon.Spec{
			Name:       fmt.Sprintf("svc%02d", i),
			Kind:       robustmon.OperationManager,
			Conditions: []string{"ok"},
			Procedures: []string{"Op"},
		}
		// The one-line switch from the serial path: record through a
		// BatchWriter instead of the database itself. Everything else —
		// monitors, detector, export — is wired exactly as before.
		writers[i] = db.NewBatchWriter(spec.Name, 0)
		m, err := robustmon.NewMonitor(spec, robustmon.WithRecorder(writers[i]))
		if err != nil {
			log.Fatalf("batchingest: %v", err)
		}
		mons[i] = m
	}
	det := robustmon.NewDetector(db, robustmon.DetectorConfig{
		Tmax:     time.Hour,
		Tio:      time.Hour,
		Exporter: exp,
	}, mons...)

	// Concurrent producers: procsPerMon goroutines per monitor hammer
	// Enter/Exit pairs while checkpoints fire mid-stream. A checkpoint
	// freezes each monitor, flushes its writers' staged blocks, then
	// drains and checks — so the staged tail is never invisible to a
	// check, and a producer never races its own flush.
	rt := robustmon.NewRuntime()
	for _, m := range mons {
		m := m
		for w := 0; w < procsPerMon; w++ {
			rt.Spawn("producer", func(p *robustmon.Process) {
				for j := 0; j < pairsPerOp; j++ {
					if err := m.Enter(p, "Op"); err != nil {
						return
					}
					_ = m.Exit(p, "Op")
					if j%50 == 49 {
						det.CheckNow()
					}
				}
			})
		}
	}
	rt.Join()
	det.CheckNow() // final checkpoint flushes and drains the tails
	if err := exp.Close(); err != nil {
		log.Fatalf("batchingest: close exporter: %v", err)
	}

	want := int64(nMonitors) * procsPerMon * pairsPerOp * 2 // Enter + Exit
	st := exp.Stats()
	fmt.Printf("recorded %d events through %d batch writers (staging %d each)\n",
		db.Total(), len(writers), robustmon.DefaultBatchSize)
	fmt.Printf("exporter streamed %d segments (%d events), dropped %d\n",
		st.Written, st.Events, st.DroppedSegments)

	rep, err := robustmon.ReadExportDir(dir)
	if err != nil {
		log.Fatalf("batchingest: replay: %v", err)
	}
	ordered := true
	for i, e := range rep.Events {
		if e.Seq != int64(i+1) {
			ordered = false
			break
		}
	}
	fmt.Printf("replayed %d events from %d files; want %d; global order intact: %v\n",
		len(rep.Events), rep.Files, want, ordered)
	if int64(len(rep.Events)) != want || db.Total() != want || !ordered {
		log.Fatalf("batchingest: count/order mismatch — recorded %d, exported %d, want %d",
			db.Total(), len(rep.Events), want)
	}
	fmt.Println("every batched event reached the WAL exactly once, in order")
}
