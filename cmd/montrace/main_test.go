package main

import (
	"path/filepath"
	"testing"
)

func TestRecordCheckCleanJSON(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "clean.jsonl")
	if code := record([]string{"-out", path, "-items", "20"}); code != 0 {
		t.Fatalf("record exit = %d", code)
	}
	trace, err := load(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	// 20 sends + 20 receives, two events each, plus schedule-dependent
	// Wait events when the buffer boundary is hit.
	if len(trace) < 80 {
		t.Fatalf("trace has %d events, want ≥ 80", len(trace))
	}
	if code := check([]string{"-in", path}); code != 0 {
		t.Fatalf("check on clean trace exit = %d, want 0", code)
	}
}

func TestRecordCheckFaultyBinary(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "faulty.bin")
	if code := record([]string{"-out", path, "-items", "10", "-faulty"}); code != 0 {
		t.Fatalf("record exit = %d", code)
	}
	if code := check([]string{"-in", path}); code != 3 {
		t.Fatalf("check on faulty trace exit = %d, want 3", code)
	}
}

func TestDumpBothModels(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "t.jsonl")
	if code := record([]string{"-out", path, "-items", "5"}); code != 0 {
		t.Fatalf("record exit = %d", code)
	}
	if code := dump([]string{"-in", path}); code != 0 {
		t.Fatalf("dump exit = %d", code)
	}
	if code := dump([]string{"-in", path, "-original"}); code != 0 {
		t.Fatalf("dump -original exit = %d", code)
	}
}

func TestCheckMissingInput(t *testing.T) {
	t.Parallel()
	if code := check([]string{}); code != 2 {
		t.Fatalf("check without -in exit = %d, want 2", code)
	}
	if code := check([]string{"-in", filepath.Join(t.TempDir(), "nope.jsonl")}); code != 1 {
		t.Fatalf("check on missing file exit = %d, want 1", code)
	}
}

func TestStatsSubcommand(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "s.jsonl")
	if code := record([]string{"-out", path, "-items", "10"}); code != 0 {
		t.Fatalf("record exit = %d", code)
	}
	if code := stats([]string{"-in", path}); code != 0 {
		t.Fatalf("stats exit = %d", code)
	}
	if code := stats([]string{}); code != 2 {
		t.Fatalf("stats without -in exit = %d, want 2", code)
	}
	if code := stats([]string{"-in", filepath.Join(t.TempDir(), "missing")}); code != 1 {
		t.Fatalf("stats on missing file exit = %d, want 1", code)
	}
}

func TestDumpMissingInput(t *testing.T) {
	t.Parallel()
	if code := dump([]string{}); code != 2 {
		t.Fatalf("dump without -in exit = %d, want 2", code)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.bin")
	if code := record([]string{"-out", filepath.Join(dir, "ok.jsonl"), "-items", "1"}); code != 0 {
		t.Fatal("setup record failed")
	}
	if _, err := load(bad); err == nil {
		t.Fatal("load of missing file succeeded")
	}
}
