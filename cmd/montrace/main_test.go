package main

import (
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"robustmon/internal/event"
	"robustmon/internal/export"
	"robustmon/internal/export/compact"
	"robustmon/internal/export/net"
	"robustmon/internal/history"
	"robustmon/internal/obs"
	obsrules "robustmon/internal/obs/rules"
)

// TestHelpTextGolden pins the documented command surface: `montrace
// help` (and every usage error) prints exactly testdata/help.golden.
// Regenerate deliberately with `go run ./cmd/montrace help >
// cmd/montrace/testdata/help.golden` when the surface changes.
func TestHelpTextGolden(t *testing.T) {
	t.Parallel()
	want, err := os.ReadFile(filepath.Join("testdata", "help.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if usageText != string(want) {
		t.Fatalf("usage text drifted from testdata/help.golden:\n--- got ---\n%s\n--- want ---\n%s", usageText, want)
	}
}

// TestLoadExportDirWithMarkers: an export directory holding recovery
// markers loads them alongside the events, and both dump and check
// accept it (check still exits clean — a marker is not a fault).
func TestLoadExportDirWithMarkers(t *testing.T) {
	t.Parallel()
	dir := filepath.Join(t.TempDir(), "run")
	sink, err := export.NewWALSink(dir, export.WALConfig{})
	if err != nil {
		t.Fatal(err)
	}
	at := time.Date(2001, 7, 1, 0, 0, 0, 0, time.UTC)
	seg := event.Seq{
		{Seq: 1, Monitor: "boundedbuffer", Type: event.Enter, Pid: 1, Proc: "Send", Flag: event.Completed, Time: at},
		{Seq: 2, Monitor: "boundedbuffer", Type: event.SignalExit, Pid: 1, Proc: "Send", Cond: "notEmpty", Time: at},
	}
	if err := sink.WriteSegment(export.Segment{Monitor: "boundedbuffer", Events: seg}); err != nil {
		t.Fatal(err)
	}
	mk := history.RecoveryMarker{Monitor: "boundedbuffer", Horizon: 2, Dropped: 3, Rule: "ST-R", At: at}
	if err := sink.WriteMarker(mk); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	ld, err := load(dir)
	if err != nil {
		t.Fatal(err)
	}
	trace, markers := ld.trace, ld.markers
	if len(trace) != 2 || len(markers) != 1 || markers[0] != mk {
		t.Fatalf("load: %d events, markers %+v", len(trace), markers)
	}
	if code := dump([]string{"-in", dir}); code != 0 {
		t.Fatalf("dump on marker dir exit = %d", code)
	}
	if code := check([]string{"-in", dir}); code != 0 {
		t.Fatalf("check on marker dir exit = %d, want 0 (markers are notes, not faults)", code)
	}
	if code := stats([]string{"-in", dir}); code != 0 {
		t.Fatalf("stats on marker dir exit = %d", code)
	}
}

func TestRecordCheckCleanJSON(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "clean.jsonl")
	if code := record([]string{"-out", path, "-items", "20"}); code != 0 {
		t.Fatalf("record exit = %d", code)
	}
	traceLd, err := load(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	trace := traceLd.trace
	// 20 sends + 20 receives, two events each, plus schedule-dependent
	// Wait events when the buffer boundary is hit.
	if len(trace) < 80 {
		t.Fatalf("trace has %d events, want ≥ 80", len(trace))
	}
	if code := check([]string{"-in", path}); code != 0 {
		t.Fatalf("check on clean trace exit = %d, want 0", code)
	}
}

func TestRecordCheckFaultyBinary(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "faulty.bin")
	if code := record([]string{"-out", path, "-items", "10", "-faulty"}); code != 0 {
		t.Fatalf("record exit = %d", code)
	}
	if code := check([]string{"-in", path}); code != 3 {
		t.Fatalf("check on faulty trace exit = %d, want 3", code)
	}
}

func TestDumpBothModels(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "t.jsonl")
	if code := record([]string{"-out", path, "-items", "5"}); code != 0 {
		t.Fatalf("record exit = %d", code)
	}
	if code := dump([]string{"-in", path}); code != 0 {
		t.Fatalf("dump exit = %d", code)
	}
	if code := dump([]string{"-in", path, "-original"}); code != 0 {
		t.Fatalf("dump -original exit = %d", code)
	}
}

func TestCheckMissingInput(t *testing.T) {
	t.Parallel()
	if code := check([]string{}); code != 2 {
		t.Fatalf("check without -in exit = %d, want 2", code)
	}
	if code := check([]string{"-in", filepath.Join(t.TempDir(), "nope.jsonl")}); code != 1 {
		t.Fatalf("check on missing file exit = %d, want 1", code)
	}
}

func TestStatsSubcommand(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "s.jsonl")
	if code := record([]string{"-out", path, "-items", "10"}); code != 0 {
		t.Fatalf("record exit = %d", code)
	}
	if code := stats([]string{"-in", path}); code != 0 {
		t.Fatalf("stats exit = %d", code)
	}
	if code := stats([]string{}); code != 2 {
		t.Fatalf("stats without -in exit = %d, want 2", code)
	}
	if code := stats([]string{"-in", filepath.Join(t.TempDir(), "missing")}); code != 1 {
		t.Fatalf("stats on missing file exit = %d, want 1", code)
	}
}

func TestDumpMissingInput(t *testing.T) {
	t.Parallel()
	if code := dump([]string{}); code != 2 {
		t.Fatalf("dump without -in exit = %d, want 2", code)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.bin")
	if code := record([]string{"-out", filepath.Join(dir, "ok.jsonl"), "-items", "1"}); code != 0 {
		t.Fatal("setup record failed")
	}
	if _, err := load(bad); err == nil {
		t.Fatal("load of missing file succeeded")
	}
}

func TestRecordToExportDirRoundTrip(t *testing.T) {
	t.Parallel()
	dir := filepath.Join(t.TempDir(), "run")
	if code := record([]string{"-outdir", dir, "-items", "20"}); code != 0 {
		t.Fatalf("record -outdir exit = %d", code)
	}
	traceLd, err := load(dir)
	if err != nil {
		t.Fatalf("load(dir): %v", err)
	}
	trace := traceLd.trace
	if len(trace) < 80 {
		t.Fatalf("directory trace has %d events, want ≥ 80", len(trace))
	}
	if err := trace.Validate(); err != nil {
		t.Fatalf("directory trace invalid: %v", err)
	}
	// The whole toolchain accepts the directory where a file would go.
	if code := check([]string{"-in", dir}); code != 0 {
		t.Fatalf("check on export dir exit = %d, want 0", code)
	}
	if code := dump([]string{"-in", dir}); code != 0 {
		t.Fatalf("dump on export dir exit = %d", code)
	}
	if code := stats([]string{"-in", dir}); code != 0 {
		t.Fatalf("stats on export dir exit = %d", code)
	}
}

func TestRecordExportDirFaulty(t *testing.T) {
	t.Parallel()
	dir := filepath.Join(t.TempDir(), "run")
	if code := record([]string{"-outdir", dir, "-items", "10", "-faulty"}); code != 0 {
		t.Fatalf("record -outdir -faulty exit = %d", code)
	}
	if code := check([]string{"-in", dir}); code != 3 {
		t.Fatalf("check on faulty export dir exit = %d, want 3", code)
	}
}

func TestLoadTruncatedExportDirRecovers(t *testing.T) {
	t.Parallel()
	dir := filepath.Join(t.TempDir(), "run")
	if code := record([]string{"-outdir", dir, "-items", "20"}); code != 0 {
		t.Fatalf("record -outdir exit = %d", code)
	}
	fullLd, err := load(dir)
	if err != nil {
		t.Fatalf("load(full): %v", err)
	}
	full := fullLd.trace
	// Simulate a crash mid-append: chop the tail off the newest file.
	names, err := filepath.Glob(filepath.Join(dir, "*.wal"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no wal files: %v", err)
	}
	sort.Strings(names)
	newest := names[len(names)-1]
	blob, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newest, blob[:len(blob)-5], 0o666); err != nil {
		t.Fatal(err)
	}
	gotLd, err := load(dir)
	if err != nil {
		t.Fatalf("load(truncated): %v", err)
	}
	got := gotLd.trace
	if len(got) == 0 || len(got) >= len(full) {
		t.Fatalf("recovered %d events from torn dir, want a strict non-empty prefix of %d", len(got), len(full))
	}
	for i, e := range got {
		if e.Seq != full[i].Seq {
			t.Fatalf("recovered trace diverges at %d: seq %d vs %d", i, e.Seq, full[i].Seq)
		}
	}
}

// TestTraceStoreWorkflow drives the whole trace-store surface through
// the CLI: record a streamed run, index it, query a window, compact
// it, and confirm the windowed query and the full check still agree.
func TestTraceStoreWorkflow(t *testing.T) {
	t.Parallel()
	dir := filepath.Join(t.TempDir(), "run")
	if code := record([]string{"-outdir", dir, "-items", "64"}); code != 0 {
		t.Fatalf("record exit = %d", code)
	}
	fullLd, err := load(dir)
	if err != nil {
		t.Fatal(err)
	}
	full := fullLd.trace
	if code := indexCmd([]string{"-in", dir}); code != 0 {
		t.Fatalf("index exit = %d", code)
	}
	if code := indexCmd([]string{"-in", dir, "-verify"}); code != 0 {
		t.Fatalf("index -verify exit = %d", code)
	}

	// A window in the middle, via the index-backed reader.
	mid := full[len(full)/2].Seq
	win := window{from: mid - 10, to: mid + 10}
	gotLd, err := loadWindowed(dir, win)
	if err != nil {
		t.Fatal(err)
	}
	got := gotLd.trace
	want := full.SubSeq(mid-10, mid+10)
	if len(got) != len(want) {
		t.Fatalf("windowed load returned %d events, want %d", len(got), len(want))
	}

	// Monitor filtering composes with the window.
	byMonLd, err := loadWindowed(dir, window{from: mid - 10, to: mid + 10, monitors: "boundedbuffer"})
	if err != nil {
		t.Fatal(err)
	}
	byMon := byMonLd.trace
	if len(byMon) != len(want.ByMonitor("boundedbuffer")) {
		t.Fatalf("monitor-filtered window returned %d events, want %d",
			len(byMon), len(want.ByMonitor("boundedbuffer")))
	}

	// The same flags work through the subcommands.
	if code := dump([]string{"-in", dir, "-from", fmt.Sprint(mid - 10), "-to", fmt.Sprint(mid + 10)}); code != 0 {
		t.Fatalf("windowed dump exit = %d", code)
	}

	// Compact everything (the recorder is closed, so -keep 0 is safe)
	// and the replay must be unchanged.
	if code := compactCmd([]string{"-in", dir, "-keep", "0"}); code != 0 {
		t.Fatalf("compact exit = %d", code)
	}
	afterLd, err := load(dir)
	if err != nil {
		t.Fatal(err)
	}
	after := afterLd.trace
	if len(after) != len(full) {
		t.Fatalf("compaction changed the trace: %d -> %d events", len(full), len(after))
	}
	if code := indexCmd([]string{"-in", dir, "-verify"}); code != 0 {
		t.Fatalf("index -verify after compact exit = %d (compaction must keep the index in step)", code)
	}
	if code := check([]string{"-in", dir}); code != 0 {
		t.Fatalf("check on compacted dir exit = %d", code)
	}
}

// TestFleetRootPerOrigin: a directory of origin subdirectories (a
// collector's fleet root) is detected and read per origin, never
// merged, with the worst per-origin exit code surfacing at the root.
func TestFleetRootPerOrigin(t *testing.T) {
	t.Parallel()
	root := filepath.Join(t.TempDir(), "fleet")
	// A fleet root is nothing but origin subdirectories, each an
	// ordinary export directory — so the plain recorder can build one.
	if code := record([]string{"-outdir", filepath.Join(root, "prod-a"), "-items", "10"}); code != 0 {
		t.Fatalf("record prod-a exit = %d", code)
	}
	if code := record([]string{"-outdir", filepath.Join(root, "prod-b"), "-items", "8", "-faulty"}); code != 0 {
		t.Fatalf("record prod-b exit = %d", code)
	}
	origins := fleetOrigins(root)
	if len(origins) != 2 || origins[0] != "prod-a" || origins[1] != "prod-b" {
		t.Fatalf("fleetOrigins = %v, want [prod-a prod-b]", origins)
	}
	if o := fleetOrigins(filepath.Join(root, "prod-a")); o != nil {
		t.Fatalf("an ordinary export dir claimed to be a fleet root: %v", o)
	}
	if code := dump([]string{"-in", root}); code != 0 {
		t.Fatalf("dump on fleet root exit = %d", code)
	}
	if code := stats([]string{"-in", root}); code != 0 {
		t.Fatalf("stats on fleet root exit = %d", code)
	}
	// prod-b's injected fault must surface through the root.
	if code := check([]string{"-in", root}); code != 3 {
		t.Fatalf("check on fleet root exit = %d, want 3 (faulty origin wins)", code)
	}
}

// TestRecordShipToCollector: record -ship streams the run to an
// in-process collector; the collected origin directory replays
// identically to the -outdir copy teed off the same run.
func TestRecordShipToCollector(t *testing.T) {
	t.Parallel()
	root := filepath.Join(t.TempDir(), "fleet")
	col, err := netexport.NewCollector(netexport.CollectorConfig{Dir: root})
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go col.Serve(lis)

	local := filepath.Join(t.TempDir(), "local")
	if code := record([]string{
		"-outdir", local, "-ship", lis.Addr().String(), "-origin", "prod-a", "-items", "20",
	}); code != 0 {
		t.Fatalf("record -ship exit = %d", code)
	}
	if err := col.Close(); err != nil {
		t.Fatalf("collector close: %v", err)
	}

	wantLd, err := load(local)
	if err != nil {
		t.Fatalf("load(local): %v", err)
	}
	want := wantLd.trace
	gotLd, err := load(filepath.Join(root, "prod-a"))
	if err != nil {
		t.Fatalf("load(collected): %v", err)
	}
	got := gotLd.trace
	if len(want) == 0 || !reflect.DeepEqual(want, got) {
		t.Fatalf("collected replay differs from local: %d events local, %d collected", len(want), len(got))
	}
	// The fleet root reads back through the normal toolchain.
	if code := check([]string{"-in", root}); code != 0 {
		t.Fatalf("check on collected fleet root exit = %d", code)
	}
}

// TestWindowFlagsOnFlatFile: windowing degrades gracefully on single
// trace files — filtered after load, no index involved.
func TestWindowFlagsOnFlatFile(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "t.jsonl")
	if code := record([]string{"-out", path, "-items", "16"}); code != 0 {
		t.Fatalf("record exit = %d", code)
	}
	fullLd, err := load(path)
	if err != nil {
		t.Fatal(err)
	}
	full := fullLd.trace
	gotLd, err := loadWindowed(path, window{from: 5, to: 14})
	if err != nil {
		t.Fatal(err)
	}
	got := gotLd.trace
	if want := full.SubSeq(5, 14); len(got) != len(want) {
		t.Fatalf("flat-file window returned %d events, want %d", len(got), len(want))
	}
}

// captureStdout runs fn with os.Stdout redirected into a pipe and
// returns everything it printed.
func captureStdout(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	outC := make(chan string)
	go func() {
		b, _ := io.ReadAll(r)
		outC <- string(b)
	}()
	fn()
	os.Stdout = old
	_ = w.Close()
	return <-outC
}

// buildRetainedDir writes a deterministic export directory (one record
// per file) and retention-compacts it below seq 10, leaving a
// tombstone. Returns the directory.
func buildRetainedDir(t *testing.T, dir string) {
	t.Helper()
	sink, err := export.NewWALSink(dir, export.WALConfig{MaxFileBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	write := func(mon string, from, to int64) {
		t.Helper()
		var s event.Seq
		for i := from; i <= to; i++ {
			s = append(s, event.Event{
				Seq: i, Monitor: mon, Type: event.Enter, Pid: i, Proc: "Send",
				Flag: event.Completed,
				Time: time.Date(2001, 7, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(i) * time.Millisecond),
			})
		}
		if err := sink.WriteSegment(export.Segment{Monitor: mon, Events: s}); err != nil {
			t.Fatal(err)
		}
	}
	write("alpha", 1, 4)
	write("beta", 5, 9)
	write("alpha", 10, 12)
	write("beta", 13, 15)
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := compact.Dir(dir, compact.Config{KeepNewest: -1, RetainSeq: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestDumpTombstoneGolden pins dump's tombstone rendering: the
// truncation banner and per-monitor dropped ranges lead the dump,
// ahead of the surviving events. Regenerate deliberately (the fixture
// is deterministic) by updating testdata/dump_tombstone.golden.
func TestDumpTombstoneGolden(t *testing.T) {
	dir := t.TempDir()
	buildRetainedDir(t, dir)
	got := captureStdout(t, func() {
		if code := dump([]string{"-in", dir}); code != 0 {
			t.Errorf("dump exit = %d", code)
		}
	})
	golden := filepath.Join("testdata", "dump_tombstone.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, []byte(got), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Fatalf("dump tombstone rendering drifted from testdata/dump_tombstone.golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestFleetRootUnderRetention: a fleet root whose origins were
// retention-compacted stays consistent per origin — dump, check and
// stats all run cleanly over the root, and each origin's output over
// the root is byte-identical to running the tool on the origin
// directory directly.
func TestFleetRootUnderRetention(t *testing.T) {
	root := t.TempDir()
	for _, origin := range []string{"prod-a", "prod-b"} {
		buildRetainedDir(t, filepath.Join(root, origin))
	}
	rootOut := captureStdout(t, func() {
		if code := dump([]string{"-in", root}); code != 0 {
			t.Errorf("dump on fleet root exit = %d", code)
		}
	})
	for _, origin := range []string{"prod-a", "prod-b"} {
		originOut := captureStdout(t, func() {
			if code := dump([]string{"-in", filepath.Join(root, origin)}); code != 0 {
				t.Errorf("dump on origin %s exit = %d", origin, code)
			}
		})
		if !strings.Contains(rootOut, originOut) {
			t.Fatalf("origin %s: per-origin dump output not byte-identical inside the fleet-root dump:\n--- origin ---\n%s\n--- root ---\n%s",
				origin, originOut, rootOut)
		}
		if !strings.Contains(originOut, "TRUNCATED below seq 10 by retention") {
			t.Fatalf("origin %s dump lacks the tombstone banner:\n%s", origin, originOut)
		}
	}
	statsOut := captureStdout(t, func() {
		if code := stats([]string{"-in", root}); code != 0 {
			t.Errorf("stats on fleet root exit = %d", code)
		}
	})
	if c := strings.Count(statsOut, "retention: truncated below seq 10"); c != 2 {
		t.Fatalf("stats over the fleet root reported the truncation %d times, want once per origin:\n%s", c, statsOut)
	}
	// The fixture's monitors are not the demo buffer spec, so check
	// needs declarations for them; it still must accept the truncated
	// store and surface the retention note per origin.
	const decl = `alpha: Monitor (coordinator);
    cond notFull, notEmpty;
    proc Send, Receive;
    rmax 4;
    send Send;
    receive Receive;
end alpha.

beta: Monitor (coordinator);
    cond notFull, notEmpty;
    proc Send, Receive;
    rmax 4;
    send Send;
    receive Receive;
end beta.
`
	spec := filepath.Join(t.TempDir(), "fixture.mdl")
	if err := os.WriteFile(spec, []byte(decl), 0o666); err != nil {
		t.Fatal(err)
	}
	checkOut := captureStdout(t, func() {
		if code := check([]string{"-in", root, "-spec", spec}); code != 0 && code != 3 {
			t.Errorf("check on fleet root exit = %d", code)
		}
	})
	if c := strings.Count(checkOut, "truncated by retention below seq 10"); c != 2 {
		t.Fatalf("check over the fleet root noted the truncation %d times, want once per origin:\n%s", c, checkOut)
	}
}

// buildAlertedDir writes a deterministic export directory holding a
// short trace, one health snapshot and a fire/clear alert pair — the
// store a self-watching detector leaves behind.
func buildAlertedDir(t *testing.T, dir string) {
	t.Helper()
	sink, err := export.NewWALSink(dir, export.WALConfig{})
	if err != nil {
		t.Fatal(err)
	}
	at := time.Date(2001, 7, 1, 12, 0, 0, 0, time.UTC)
	seg := event.Seq{
		{Seq: 1, Monitor: "boundedbuffer", Type: event.Enter, Pid: 1, Proc: "Send", Flag: event.Completed, Time: at},
		{Seq: 2, Monitor: "boundedbuffer", Type: event.SignalExit, Pid: 1, Proc: "Send", Cond: "notEmpty", Time: at},
	}
	if err := sink.WriteSegment(export.Segment{Monitor: "boundedbuffer", Events: seg}); err != nil {
		t.Fatal(err)
	}
	for seq := int64(1); seq <= 2; seq++ {
		h := obs.HealthRecord{
			At: at.Add(time.Duration(seq) * time.Second), Seq: seq,
			Metrics: obs.Snapshot{Counters: []obs.Metric{{Name: "history_append_total", Value: 10 * seq}}},
		}
		if err := sink.WriteHealth(h); err != nil {
			t.Fatal(err)
		}
	}
	fire := obsrules.Alert{
		At: at.Add(time.Second), Seq: 1, Rule: "slow-checks",
		Metric: "detect_check_ns", Value: 9, Ceiling: 5, Firing: true,
	}
	clear := fire
	clear.At, clear.Seq, clear.Value, clear.Firing = at.Add(2*time.Second), 2, 3, false
	for _, a := range []obsrules.Alert{fire, clear} {
		if err := sink.WriteAlert(a); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestAlertsSurfaceInSubcommands: a store holding threshold alerts
// shows them in every reading subcommand — stats lists the alert
// timeline (and -rates the delta view), dump interleaves ALERT lines
// at their horizons, check notes the degradation episode — and the
// alerts never turn a clean trace into a faulty exit code.
func TestAlertsSurfaceInSubcommands(t *testing.T) {
	t.Parallel()
	dir := filepath.Join(t.TempDir(), "run")
	buildAlertedDir(t, dir)

	statsOut := captureStdout(t, func() {
		if code := stats([]string{"-in", dir}); code != 0 {
			t.Errorf("stats exit = %d", code)
		}
	})
	if !strings.Contains(statsOut, "pipeline alerts: 2 (1 fired, 1 cleared)") ||
		!strings.Contains(statsOut, "FIRED slow-checks (detect_check_ns=9 > 5)") {
		t.Fatalf("stats does not render the alert timeline:\n%s", statsOut)
	}
	ratesOut := captureStdout(t, func() {
		if code := stats([]string{"-in", dir, "-rates"}); code != 0 {
			t.Errorf("stats -rates exit = %d", code)
		}
	})
	if !strings.Contains(ratesOut, "health timeline (rates): 2 snapshots, 1 intervals") ||
		!strings.Contains(ratesOut, "10.0") { // Δ10 appends over 1s
		t.Fatalf("stats -rates does not render the delta view:\n%s", ratesOut)
	}
	dumpOut := captureStdout(t, func() {
		if code := dump([]string{"-in", dir}); code != 0 {
			t.Errorf("dump exit = %d", code)
		}
	})
	if !strings.Contains(dumpOut, "ALERT at seq 1: FIRED slow-checks") ||
		!strings.Contains(dumpOut, "2 events, 2 pipeline alerts") {
		t.Fatalf("dump does not interleave the alerts:\n%s", dumpOut)
	}
	checkOut := captureStdout(t, func() {
		if code := check([]string{"-in", dir}); code != 0 {
			t.Errorf("check exit = %d, want 0 (alerts are notes, not faults)", code)
		}
	})
	if !strings.Contains(checkOut, "note: pipeline alert at seq 1: FIRED slow-checks") {
		t.Fatalf("check does not note the alert:\n%s", checkOut)
	}
}

// TestFleetStatsMergedTimeline: stats over a fleet root appends the
// merged cross-origin view — every origin's health snapshots in
// wall-clock order under an origin column, and every origin's alerts
// tagged with where they came from.
func TestFleetStatsMergedTimeline(t *testing.T) {
	t.Parallel()
	root := filepath.Join(t.TempDir(), "fleet")
	buildAlertedDir(t, filepath.Join(root, "prod-a"))
	buildAlertedDir(t, filepath.Join(root, "prod-b"))

	out := captureStdout(t, func() {
		if code := stats([]string{"-in", root}); code != 0 {
			t.Errorf("stats on fleet root exit = %d", code)
		}
	})
	if !strings.Contains(out, "== fleet timeline ==") ||
		!strings.Contains(out, "4 snapshots across 2 origins, 4 alerts") {
		t.Fatalf("fleet stats lacks the merged timeline header:\n%s", out)
	}
	// Each origin's two alerts appear under "fleet alerts:", each row
	// naming its origin in the column and the origin= tag (2 rows × 2).
	aIdx := strings.Index(out, "fleet alerts:")
	if aIdx < 0 || strings.Count(out[aIdx:], "prod-a") != 4 || strings.Count(out[aIdx:], "prod-b") != 4 {
		t.Fatalf("fleet alerts are not origin-tagged:\n%s", out)
	}
	ratesOut := captureStdout(t, func() {
		if code := stats([]string{"-in", root, "-rates"}); code != 0 {
			t.Errorf("stats -rates on fleet root exit = %d", code)
		}
	})
	if !strings.Contains(ratesOut, "Δappends") || !strings.Contains(ratesOut, "append/s") {
		t.Fatalf("fleet stats -rates lacks the delta columns:\n%s", ratesOut)
	}
}
