// Command montrace records and re-checks monitor execution traces.
//
//	montrace record -out trace.jsonl [-faulty]   # run a demo workload, export its trace
//	montrace check  -in  trace.jsonl             # offline-check a trace with both rule engines
//	montrace dump   -in  trace.jsonl             # print the events in the paper's notation
//
// Traces ending in .bin use the compact binary codec, anything else is
// JSON Lines. The demo workload is a bounded-buffer producer/consumer
// (the paper's communication-coordinator class); -faulty injects a
// send-overflow bug so the checkers have something to find.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"robustmon/internal/apps/boundedbuffer"
	"robustmon/internal/clock"
	"robustmon/internal/event"
	"robustmon/internal/faults"
	"robustmon/internal/history"
	"robustmon/internal/mdl"
	"robustmon/internal/monitor"
	"robustmon/internal/proc"
	"robustmon/internal/report"
	"robustmon/internal/rules"
	"robustmon/internal/tracestat"
	"robustmon/internal/verify"
)

const demoCapacity = 2

func main() {
	os.Exit(run())
}

func run() int {
	if len(os.Args) < 2 {
		usage()
		return 2
	}
	switch os.Args[1] {
	case "record":
		return record(os.Args[2:])
	case "check":
		return check(os.Args[2:])
	case "dump":
		return dump(os.Args[2:])
	case "stats":
		return stats(os.Args[2:])
	default:
		usage()
		return 2
	}
}

func stats(args []string) int {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	in := fs.String("in", "", "trace file to analyse")
	_ = fs.Parse(args)
	if *in == "" {
		usage()
		return 2
	}
	trace, err := load(*in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "montrace: %v\n", err)
		return 1
	}
	fmt.Print(tracestat.Compute(trace).String())
	return 0
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  montrace record -out <file> [-faulty]
  montrace check  -in  <file> [-spec decls.mdl] [-tmax 10s] [-tio 10s] [-tlimit 10s]
  montrace dump   -in  <file> [-original]
  montrace stats  -in  <file>`)
}

func record(args []string) int {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	out := fs.String("out", "trace.jsonl", "output trace file (.bin = binary)")
	faulty := fs.Bool("faulty", false, "inject a send-overflow fault into the workload")
	items := fs.Int("items", 50, "items to transfer through the buffer")
	_ = fs.Parse(args)

	db := history.New(history.WithFullTrace())
	clk := clock.NewVirtual(time.Date(2001, 7, 1, 0, 0, 0, 0, time.UTC))
	opts := []boundedbuffer.Option{
		boundedbuffer.WithMonitorOptions(monitor.WithRecorder(db), monitor.WithClock(clk)),
	}
	var inj *faults.Injector
	if *faulty {
		inj = faults.NewInjector(faults.SendOverflow)
		opts = append(opts, boundedbuffer.WithInjector(inj))
	}
	buf, err := boundedbuffer.New(demoCapacity, opts...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "montrace: %v\n", err)
		return 1
	}
	rt := proc.NewRuntime()
	if *faulty {
		// Fill the buffer, then arm so the next send overflows.
		rt.Spawn("prefill", func(p *proc.P) {
			for i := 0; i < demoCapacity; i++ {
				_ = buf.Send(p, i)
			}
		})
		rt.Join()
		inj.Arm()
		rt.Spawn("overflower", func(p *proc.P) { _ = buf.Send(p, 99) })
		rt.Join()
	}
	// The consumer must drain everything the producer sends plus any
	// items left over from the faulty phase, so totals balance and both
	// processes terminate.
	toConsume := *items + buf.Len()
	rt.Spawn("producer", func(p *proc.P) {
		for i := 0; i < *items; i++ {
			if err := buf.Send(p, i); err != nil {
				return
			}
		}
	})
	rt.Spawn("consumer", func(p *proc.P) {
		for i := 0; i < toConsume; i++ {
			if _, err := buf.Receive(p); err != nil {
				return
			}
		}
	})
	rt.Join()

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "montrace: %v\n", err)
		return 1
	}
	defer f.Close()
	trace := db.Full()
	if strings.HasSuffix(*out, ".bin") {
		err = event.WriteBinary(f, trace)
	} else {
		err = event.WriteJSON(f, trace)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "montrace: %v\n", err)
		return 1
	}
	fmt.Printf("recorded %d events to %s (faulty=%v)\n", len(trace), *out, *faulty)
	return 0
}

func load(path string) (event.Seq, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".bin") {
		return event.ReadBinary(f)
	}
	return event.ReadJSON(f)
}

func check(args []string) int {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	in := fs.String("in", "", "trace file to check")
	specFile := fs.String("spec", "", "monitor declaration file (mdl syntax); default: the demo buffer spec")
	tmax := fs.Duration("tmax", 10*time.Second, "Tmax (0 disables)")
	tio := fs.Duration("tio", 10*time.Second, "Tio (0 disables)")
	tlimit := fs.Duration("tlimit", 10*time.Second, "Tlimit (0 disables)")
	_ = fs.Parse(args)
	if *in == "" {
		usage()
		return 2
	}
	trace, err := load(*in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "montrace: %v\n", err)
		return 1
	}
	specs := []monitor.Spec{boundedbuffer.Spec("boundedbuffer", demoCapacity)}
	if *specFile != "" {
		src, err := os.ReadFile(*specFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "montrace: %v\n", err)
			return 1
		}
		specs, err = mdl.Parse(string(src))
		if err != nil {
			fmt.Fprintf(os.Stderr, "montrace: %v\n", err)
			return 1
		}
	}
	results, err := verify.Trace(trace, verify.Options{
		Specs:  specs,
		Tmax:   *tmax,
		Tio:    *tio,
		Tlimit: *tlimit,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "montrace: %v\n", err)
		return 1
	}
	clean := true
	var all []rules.Violation
	for _, r := range results {
		fmt.Printf("monitor %q: FD-rule violations %d, ST-rule violations %d, literal-rule violations %d\n",
			r.Monitor, len(r.FD), len(r.ST), len(r.Literal))
		all = append(all, r.FD...)
		all = append(all, r.ST...)
		all = append(all, r.Literal...)
		if !r.Clean() {
			clean = false
		}
	}
	if len(all) > 0 {
		if err := report.Render(os.Stdout, report.Dedup(all)); err != nil {
			fmt.Fprintf(os.Stderr, "montrace: %v\n", err)
			return 1
		}
		fmt.Println(report.Summarize(all))
	}
	if !verify.Agreement(results) {
		fmt.Println("WARNING: the two rule engines disagree (should be impossible, §3.3.2)")
		return 1
	}
	if clean {
		fmt.Println("trace is clean under both rule engines")
		return 0
	}
	fmt.Println("trace contains faults (both engines agree)")
	return 3
}

func dump(args []string) int {
	fs := flag.NewFlagSet("dump", flag.ExitOnError)
	in := fs.String("in", "", "trace file to dump")
	original := fs.Bool("original", false, "render the §3.1 original event model (resumption updates applied)")
	_ = fs.Parse(args)
	if *in == "" {
		usage()
		return 2
	}
	trace, err := load(*in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "montrace: %v\n", err)
		return 1
	}
	if *original {
		trace = rules.Effective(trace)
	}
	for _, e := range trace {
		fmt.Printf("%6d  %-13s  %s\n", e.Seq, e.Monitor, e)
	}
	fmt.Printf("%d events\n", len(trace))
	return 0
}
