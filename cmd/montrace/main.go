package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"robustmon/internal/apps/boundedbuffer"
	"robustmon/internal/clock"
	"robustmon/internal/detect"
	"robustmon/internal/event"
	"robustmon/internal/export"
	"robustmon/internal/export/compact"
	"robustmon/internal/export/index"
	"robustmon/internal/export/net"
	"robustmon/internal/faults"
	"robustmon/internal/history"
	"robustmon/internal/mdl"
	"robustmon/internal/monitor"
	"robustmon/internal/obs"
	obsrules "robustmon/internal/obs/rules"
	"robustmon/internal/proc"
	"robustmon/internal/report"
	"robustmon/internal/rules"
	"robustmon/internal/tracestat"
	"robustmon/internal/verify"
)

const demoCapacity = 2

func main() {
	os.Exit(run())
}

func run() int {
	if len(os.Args) < 2 {
		usage()
		return 2
	}
	switch os.Args[1] {
	case "record":
		return record(os.Args[2:])
	case "check":
		return check(os.Args[2:])
	case "dump":
		return dump(os.Args[2:])
	case "stats":
		return stats(os.Args[2:])
	case "index":
		return indexCmd(os.Args[2:])
	case "compact":
		return compactCmd(os.Args[2:])
	case "help", "-h", "-help", "--help":
		fmt.Fprint(os.Stdout, usageText)
		return 0
	default:
		usage()
		return 2
	}
}

func stats(args []string) int {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	in := fs.String("in", "", "trace file to analyse")
	rates := fs.Bool("rates", false, "render the health timeline as per-interval deltas and rates instead of cumulative counters")
	var win window
	win.addFlags(fs)
	_ = fs.Parse(args)
	if *in == "" {
		usage()
		return 2
	}
	rc := forEachInput(*in, func(path string) int { return statsOne(path, win, *rates) })
	if origins := fleetOrigins(*in); origins != nil {
		if frc := fleetStats(*in, origins, win, *rates); frc > rc {
			rc = frc
		}
	}
	return rc
}

func statsOne(in string, win window, rates bool) int {
	ld, err := loadWindowed(in, win)
	if err != nil {
		fmt.Fprintf(os.Stderr, "montrace: %v\n", err)
		return 1
	}
	fmt.Print(tracestat.Compute(ld.trace).String())
	if tb := newestTombstone(ld.tombs); tb != nil {
		fmt.Printf("retention: truncated below seq %d (%d events in %d files dropped)\n",
			tb.Horizon, tb.Events, tb.Files)
	}
	if rates {
		renderHealthRates(ld.healths)
	} else {
		renderHealthTimeline(ld.healths)
	}
	renderAlertTimeline(ld.alerts)
	return 0
}

// newestTombstone picks the live retention tombstone (the one with the
// highest horizon; compaction folds passes together, so a healthy
// store has at most one). Nil when the store was never truncated.
func newestTombstone(tombs []export.Tombstone) *export.Tombstone {
	var tb *export.Tombstone
	for i := range tombs {
		if tb == nil || tombs[i].Horizon > tb.Horizon {
			tb = &tombs[i]
		}
	}
	return tb
}

// fleetOrigins reports the origin subdirectories of a fleet root — a
// directory a collector (moncollect) filled: it holds no *.wal files
// of its own, but at least one immediate subdirectory does. nil means
// path is not a fleet root (a flat file, an ordinary export
// directory, or anything else). os.ReadDir's sorted order keeps the
// per-origin output stable.
func fleetOrigins(path string) []string {
	info, err := os.Stat(path)
	if err != nil || !info.IsDir() {
		return nil
	}
	if own, _ := filepath.Glob(filepath.Join(path, "*.wal")); len(own) > 0 {
		return nil
	}
	entries, err := os.ReadDir(path)
	if err != nil {
		return nil
	}
	var origins []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if wals, _ := filepath.Glob(filepath.Join(path, e.Name(), "*.wal")); len(wals) > 0 {
			origins = append(origins, e.Name())
		}
	}
	return origins
}

// forEachInput runs fn once per input: over a fleet root it iterates
// the origin subdirectories, a heading per origin, and returns the
// worst exit code; anything else runs fn on the path itself. Origins
// are never merged — every origin numbers its events independently,
// so a combined trace would interleave unrelated sequence spaces.
func forEachInput(path string, fn func(string) int) int {
	origins := fleetOrigins(path)
	if origins == nil {
		return fn(path)
	}
	fmt.Printf("fleet root %s: %d origins\n", path, len(origins))
	worst := 0
	for i, o := range origins {
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("== origin %s ==\n", o)
		if rc := fn(filepath.Join(path, o)); rc > worst {
			worst = rc
		}
	}
	return worst
}

// renderHealthTimeline prints the run's health snapshots (periodic
// obs-registry captures the detector streamed into the WAL) as a
// timeline: one row per snapshot at its sequence horizon, with the
// well-known pipeline metrics pulled out as columns. Snapshots outside
// the -from/-to window were already filtered (and their files never
// opened) by the trace-store index.
func renderHealthTimeline(healths []obs.HealthRecord) {
	if len(healths) == 0 {
		return
	}
	sort.SliceStable(healths, func(i, j int) bool { return healths[i].Seq < healths[j].Seq })
	fmt.Printf("\nhealth timeline: %d snapshots\n", len(healths))
	fmt.Printf("%-20s  %9s  %8s  %6s  %9s  %8s  %6s  %11s\n",
		"at", "seq", "appends", "checks", "viols", "exported", "queue", "check p99")
	counter := func(s obs.Snapshot, name string) string {
		if v, ok := s.Counter(name); ok {
			return fmt.Sprint(v)
		}
		return "-"
	}
	for _, h := range healths {
		queue := "-"
		if v, ok := h.Metrics.Gauge("export_queue_depth"); ok {
			queue = fmt.Sprint(v)
		}
		p99 := "-"
		if hist, ok := h.Metrics.Histogram("detect_check_ns"); ok && hist.Count > 0 {
			p99 = time.Duration(hist.Quantile(0.99)).Round(time.Microsecond).String()
		}
		fmt.Printf("%-20s  %9d  %8s  %6s  %9s  %8s  %6s  %11s\n",
			h.At.UTC().Format("2006-01-02T15:04:05Z"), h.Seq,
			counter(h.Metrics, "history_append_total"),
			counter(h.Metrics, "detect_checks_total"),
			counter(h.Metrics, "detect_violations_total"),
			counter(h.Metrics, "export_events_total"),
			queue, p99)
	}
}

// renderHealthRates prints the health timeline as per-interval deltas
// (obs.Snapshot.Delta between consecutive snapshots) with an
// appends-per-second rate and the checkpoint-latency p99 of each
// interval alone — the shape that makes a slowdown visible as a dip
// in one row instead of a bend in a cumulative curve.
func renderHealthRates(healths []obs.HealthRecord) {
	if len(healths) < 2 {
		if len(healths) == 1 {
			fmt.Printf("\nhealth timeline: 1 snapshot (need 2 for -rates; rerun without it)\n")
		}
		return
	}
	sort.SliceStable(healths, func(i, j int) bool { return healths[i].Seq < healths[j].Seq })
	fmt.Printf("\nhealth timeline (rates): %d snapshots, %d intervals\n", len(healths), len(healths)-1)
	fmt.Printf("%-20s  %9s  %9s  %7s  %6s  %9s  %9s  %11s\n",
		"at", "seq", "Δappends", "Δchecks", "Δviols", "Δexported", "append/s", "check p99")
	counter := func(s obs.Snapshot, name string) string {
		if v, ok := s.Counter(name); ok {
			return fmt.Sprint(v)
		}
		return "-"
	}
	for i := 1; i < len(healths); i++ {
		prev, cur := healths[i-1], healths[i]
		d := cur.Metrics.Delta(prev.Metrics)
		rate := "-"
		if secs := cur.At.Sub(prev.At).Seconds(); secs > 0 {
			if appends, ok := d.Counter("history_append_total"); ok {
				rate = fmt.Sprintf("%.1f", float64(appends)/secs)
			}
		}
		p99 := "-"
		if hist, ok := d.Histogram("detect_check_ns"); ok && hist.Count > 0 {
			p99 = time.Duration(hist.Quantile(0.99)).Round(time.Microsecond).String()
		}
		fmt.Printf("%-20s  %9d  %9s  %7s  %6s  %9s  %9s  %11s\n",
			cur.At.UTC().Format("2006-01-02T15:04:05Z"), cur.Seq,
			counter(d, "history_append_total"),
			counter(d, "detect_checks_total"),
			counter(d, "detect_violations_total"),
			counter(d, "export_events_total"),
			rate, p99)
	}
}

// renderAlertTimeline prints the store's threshold alerts — the
// pipeline's own degradation episodes, recorded when a self-watching
// rule fired or cleared — in horizon order.
func renderAlertTimeline(alerts []obsrules.Alert) {
	if len(alerts) == 0 {
		return
	}
	sort.SliceStable(alerts, func(i, j int) bool { return alerts[i].Seq < alerts[j].Seq })
	fired := 0
	for _, a := range alerts {
		if a.Firing {
			fired++
		}
	}
	fmt.Printf("\npipeline alerts: %d (%d fired, %d cleared)\n", len(alerts), fired, len(alerts)-fired)
	for _, a := range alerts {
		origin := ""
		if a.Origin != "" {
			origin = "  [" + a.Origin + "]"
		}
		fmt.Printf("  %-20s  %9d  %s%s\n",
			a.At.UTC().Format("2006-01-02T15:04:05Z"), a.Seq, a.String(), origin)
	}
}

// fleetStats renders the merged cross-origin view of a fleet root: one
// timeline of every origin's health snapshots in wall-clock order (an
// origin column tells them apart — sequence spaces are per-origin and
// never comparable), and one merged alert list, the collector's
// _fleet staleness alerts alongside every producer's own. With rates,
// each row deltas against the same origin's previous snapshot.
func fleetStats(root string, origins []string, win window, rates bool) int {
	type row struct {
		origin string
		h      obs.HealthRecord
	}
	var rows []row
	var alerts []obsrules.Alert
	for _, o := range origins {
		ld, err := loadWindowed(filepath.Join(root, o), win)
		if err != nil {
			fmt.Fprintf(os.Stderr, "montrace: fleet timeline: %s: %v\n", o, err)
			return 1
		}
		for _, h := range ld.healths {
			rows = append(rows, row{o, h})
		}
		for _, a := range ld.alerts {
			if a.Origin == "" {
				a.Origin = o
			}
			alerts = append(alerts, a)
		}
	}
	if len(rows) == 0 && len(alerts) == 0 {
		return 0
	}
	sort.SliceStable(rows, func(i, j int) bool {
		if !rows[i].h.At.Equal(rows[j].h.At) {
			return rows[i].h.At.Before(rows[j].h.At)
		}
		return rows[i].origin < rows[j].origin
	})
	fmt.Printf("\n== fleet timeline ==\n%d snapshots across %d origins, %d alerts\n",
		len(rows), len(origins), len(alerts))
	counter := func(s obs.Snapshot, name string) string {
		if v, ok := s.Counter(name); ok {
			return fmt.Sprint(v)
		}
		return "-"
	}
	if rates {
		fmt.Printf("%-20s  %-12s  %9s  %9s  %7s  %6s  %9s\n",
			"at", "origin", "seq", "Δappends", "Δchecks", "Δviols", "append/s")
		prev := make(map[string]obs.HealthRecord, len(origins))
		for _, r := range rows {
			p, ok := prev[r.origin]
			prev[r.origin] = r.h
			if !ok {
				continue // an origin's first snapshot anchors its deltas
			}
			d := r.h.Metrics.Delta(p.Metrics)
			rate := "-"
			if secs := r.h.At.Sub(p.At).Seconds(); secs > 0 {
				if appends, ok := d.Counter("history_append_total"); ok {
					rate = fmt.Sprintf("%.1f", float64(appends)/secs)
				}
			}
			fmt.Printf("%-20s  %-12s  %9d  %9s  %7s  %6s  %9s\n",
				r.h.At.UTC().Format("2006-01-02T15:04:05Z"), r.origin, r.h.Seq,
				counter(d, "history_append_total"),
				counter(d, "detect_checks_total"),
				counter(d, "detect_violations_total"),
				rate)
		}
	} else {
		fmt.Printf("%-20s  %-12s  %9s  %8s  %6s  %9s  %8s\n",
			"at", "origin", "seq", "appends", "checks", "viols", "exported")
		for _, r := range rows {
			fmt.Printf("%-20s  %-12s  %9d  %8s  %6s  %9s  %8s\n",
				r.h.At.UTC().Format("2006-01-02T15:04:05Z"), r.origin, r.h.Seq,
				counter(r.h.Metrics, "history_append_total"),
				counter(r.h.Metrics, "detect_checks_total"),
				counter(r.h.Metrics, "detect_violations_total"),
				counter(r.h.Metrics, "export_events_total"))
		}
	}
	if len(alerts) > 0 {
		fmt.Println("fleet alerts:")
	}
	sort.SliceStable(alerts, func(i, j int) bool { return alerts[i].At.Before(alerts[j].At) })
	for _, a := range alerts {
		fmt.Printf("  %-20s  %-12s  %s\n",
			a.At.UTC().Format("2006-01-02T15:04:05Z"), a.Origin, a.String())
	}
	return 0
}

// usageText is the full help text (montrace help); the golden test in
// main_test.go pins it so the documented surface cannot drift silently.
const usageText = `usage:
  montrace record  -out <file> | -outdir <dir> | -ship <addr> [-origin <name>]
                   [-faulty] [-items N]
  montrace check   -in  <file|dir> [-spec decls.mdl] [-tmax 10s] [-tio 10s] [-tlimit 10s]
                   [-from N] [-to N] [-monitor a,b]
  montrace dump    -in  <file|dir> [-original] [-from N] [-to N] [-monitor a,b]
  montrace stats   -in  <file|dir> [-rates] [-from N] [-to N] [-monitor a,b]
  montrace index   -in  <dir> [-verify]
  montrace compact -in  <dir> [-keep N] [-drop-reset] [-max-bytes N]
                   [-retain-seq N] [-retain-age D]
  montrace help

inputs and outputs:
  A <file> ending in .bin uses the compact binary trace codec; any
  other file is JSON Lines. A <dir> is a segmented WAL export
  directory (internal/export): numbered *.wal files of CRC-protected
  records, as written by a streaming recorder. Reading a directory
  merges every record back into the global event order and recovers
  from a crash-truncated tail of the newest file. With record -outdir
  no full trace is ever held in memory — a detector streams each
  drained checkpoint segment through the async exporter into the WAL.

recovery markers:
  An export directory may contain recovery markers: records written
  when a shard-local online reset discarded a faulty monitor's
  buffered, never-checked events. dump renders each marker at its
  horizon position; check prints a note per marker, because
  violations on the reset monitor at or below the marker's horizon
  can be artefacts of the deliberate trace gap rather than faults in
  the monitored program.

health timeline:
  An export directory may also contain health snapshots: periodic
  captures of the run's self-observability metrics (robustmon's obs
  registry, emitted by a detector configured with HealthEvery).
  stats renders them as a timeline — one row per snapshot at its
  sequence horizon, with append/check/violation/export counters, the
  exporter queue depth and the checkpoint-latency p99 — windowed by
  -from/-to through the trace-store index like everything else.
  stats -rates renders the same timeline as per-interval deltas with
  an appends-per-second rate and each interval's own latency p99,
  the shape that shows a slowdown as a dip in one row. Snapshots are
  per-process records, so -monitor does not filter them. Compaction
  preserves them byte-identically.

pipeline alerts (threshold rules):
  A detector configured with threshold rules (DetectorConfig.Rules)
  watches its own registry at the health cadence: a rule breaching
  its ceiling for long enough fires, raises a synthetic
  meta-violation (rule META, phase meta) through the ordinary
  violation path, optionally triggers a shard-local reset, and lands
  an alert record in the WAL. stats lists the store's alerts after
  the health timeline, dump interleaves "ALERT at seq H" lines at
  their horizons, and check prints a note per alert — a trace
  checked while the pipeline itself was degraded deserves less
  confidence than one checked clean.

fleet mode (ship, collector, fleet roots):
  record -ship streams the records a WAL directory would hold to a
  moncollect collector over TCP instead — at-least-once delivery
  behind a resume handshake, with replay on the collector
  byte-identical and exactly-once. -origin names the producer; the
  collector lands every origin in its own subdirectory of its fleet
  root, each a plain export directory. -ship composes with -outdir
  (the trace is teed to both). dump, check and stats detect a fleet
  root — a directory with no *.wal files of its own whose immediate
  subdirectories hold them — and run once per origin under a
  heading, reporting the worst exit code. Origins are never merged:
  each numbers its events independently. stats over a fleet root
  additionally renders the merged fleet timeline: every origin's
  health snapshots in wall-clock order under an origin column
  (per-origin deltas and rates with -rates), then every origin's
  alerts — including the per-origin staleness alerts a collector's
  fleet timer (moncollect -fleet-every) lands under _fleet.

trace store (windowing, index, compact):
  -from/-to restrict dump, check and stats to a sequence-number window and
  -monitor to a comma-separated monitor set. Over an export directory
  the window is answered through the trace-store index (wal.index):
  only the segment files whose indexed seq ranges intersect the
  window are opened; everything else is skipped. index rebuilds that
  index from the segment files (v1 and v2 alike) — or, with -verify,
  checks the existing one against the files (sizes and record-header
  chains). compact streams the rotated segment files through a
  per-monitor bounded-memory merge into dense records, preserving
  markers at their horizons; -keep N protects the N newest files
  (default 1 — the active segment of a live recorder), -drop-reset
  additionally discards events at or below each reset horizon
  (reported, never silent). Violations that pair across a window's
  edges can be artefacts of the cut; check prints the window it used.

retention (tombstones):
  compact -retain-seq N (a sequence floor) and -retain-age D (a
  file-age floor) drop whole segment files below the floor instead of
  merging them, bounding the store in bytes. The drop is never
  silent: a tombstone record lands in the store recording the
  retention horizon — every event at or above it is still present —
  and the cumulative files/records/events dropped, per monitor. dump
  renders the tombstone ahead of the surviving events, check notes
  that violations pairing against the missing prefix are retention
  artefacts, stats prints the truncation, and a -from/-to window that
  precedes the horizon reports "dropped by retention" instead of
  silently returning less.

exit codes: 0 clean, 1 error, 2 usage, 3 faults found (check)
`

func usage() {
	fmt.Fprint(os.Stderr, usageText)
}

// indexCmd rebuilds (default) or verifies an export directory's
// trace-store index.
func indexCmd(args []string) int {
	fs := flag.NewFlagSet("index", flag.ExitOnError)
	in := fs.String("in", "", "export directory to index")
	verifyIdx := fs.Bool("verify", false, "verify the existing index against the segment files instead of rebuilding")
	_ = fs.Parse(args)
	if *in == "" {
		usage()
		return 2
	}
	if *verifyIdx {
		idx, err := index.Load(*in)
		if err != nil {
			fmt.Fprintf(os.Stderr, "montrace: %v\n", err)
			return 1
		}
		if errs := idx.Verify(*in); len(errs) > 0 {
			for _, e := range errs {
				fmt.Fprintf(os.Stderr, "montrace: %v\n", e)
			}
			fmt.Printf("index DISAGREES with %d of %d files\n", len(errs), len(idx.Files))
			return 1
		}
		fmt.Printf("index verified: %d files, %d events\n", len(idx.Files), idx.Events())
		return 0
	}
	idx, err := index.Rebuild(*in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "montrace: %v\n", err)
		return 1
	}
	if err := idx.Write(*in); err != nil {
		fmt.Fprintf(os.Stderr, "montrace: %v\n", err)
		return 1
	}
	fmt.Printf("indexed %d files, %d events\n", len(idx.Files), idx.Events())
	for _, f := range idx.Files {
		mons := make([]string, 0, len(f.Monitors))
		for _, mr := range f.Monitors {
			mons = append(mons, mr.Monitor)
		}
		torn := ""
		if f.Torn {
			torn = "  (torn tail)"
		}
		fmt.Printf("  %s  v%d  seq %d..%d  %d events  %d markers  [%s]%s\n",
			f.Name, f.Version, f.MinSeq, f.MaxSeq, f.Events, len(f.Markers), strings.Join(mons, ","), torn)
	}
	return 0
}

// compactCmd merges an export directory's rotated segment files.
func compactCmd(args []string) int {
	fs := flag.NewFlagSet("compact", flag.ExitOnError)
	in := fs.String("in", "", "export directory to compact")
	keep := fs.Int("keep", 1, "newest files to leave untouched (use 0 only when no recorder is live)")
	dropReset := fs.Bool("drop-reset", false, "also drop events at or below each monitor's reset horizon (the superseded pre-reset life); the drop is reported")
	maxBytes := fs.Int64("max-bytes", 0, "output file rotation threshold (0 = default)")
	retainSeq := fs.Int64("retain-seq", 0, "retention floor: drop whole files below this sequence number behind a tombstone (0 = keep everything)")
	retainAge := fs.Duration("retain-age", 0, "drop whole files older than this (by mtime) behind a tombstone (0 = keep everything)")
	_ = fs.Parse(args)
	if *in == "" {
		usage()
		return 2
	}
	keepNewest := *keep
	if keepNewest == 0 {
		// The CLI's "-keep 0" means compact everything; the library
		// spells that opt-in as a negative (its zero value is the safe
		// default of 1).
		keepNewest = -1
	}
	cfg := compact.Config{
		KeepNewest:     keepNewest,
		DropBelowReset: *dropReset,
		MaxFileBytes:   *maxBytes,
		RetainSeq:      *retainSeq,
	}
	if *retainAge > 0 {
		cfg.RetainBefore = time.Now().Add(-*retainAge)
	}
	res, err := compact.Dir(*in, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "montrace: %v\n", err)
		return 1
	}
	fmt.Println(res)
	return 0
}

func record(args []string) int {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	out := fs.String("out", "trace.jsonl", "output trace file (.bin = binary)")
	outdir := fs.String("outdir", "", "stream the trace into a WAL export directory instead of a single file (no full trace is kept in memory)")
	ship := fs.String("ship", "", "stream the trace to a fleet collector (moncollect) at this address; composes with -outdir")
	origin := fs.String("origin", "montrace", "origin name for -ship: the collector's per-producer subdirectory and metric label")
	faulty := fs.Bool("faulty", false, "inject a send-overflow fault into the workload")
	items := fs.Int("items", 50, "items to transfer through the buffer")
	_ = fs.Parse(args)

	// Single-file mode keeps the full trace and serializes it at the
	// end; -outdir and -ship keep nothing: a detector checkpoint drains
	// the segments and the exporter streams them to the WAL, the
	// collector, or (teed) both as the run goes.
	streaming := *outdir != "" || *ship != ""
	var dbOpts []history.Option
	if !streaming {
		dbOpts = append(dbOpts, history.WithFullTrace())
	}
	db := history.New(dbOpts...)
	clk := clock.NewVirtual(time.Date(2001, 7, 1, 0, 0, 0, 0, time.UTC))
	opts := []boundedbuffer.Option{
		boundedbuffer.WithMonitorOptions(monitor.WithRecorder(db), monitor.WithClock(clk)),
	}
	var inj *faults.Injector
	if *faulty {
		inj = faults.NewInjector(faults.SendOverflow)
		opts = append(opts, boundedbuffer.WithInjector(inj))
	}
	buf, err := boundedbuffer.New(demoCapacity, opts...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "montrace: %v\n", err)
		return 1
	}
	var exp *export.Exporter
	var det *detect.Detector
	var netSink *netexport.NetSink
	if streaming {
		var sinks []export.Sink
		if *outdir != "" {
			wal, err := export.NewWALSink(*outdir, export.WALConfig{})
			if err != nil {
				fmt.Fprintf(os.Stderr, "montrace: %v\n", err)
				return 1
			}
			sinks = append(sinks, wal)
		}
		if *ship != "" {
			ns, err := netexport.NewNetSink(netexport.NetSinkConfig{Addr: *ship, Origin: *origin})
			if err != nil {
				fmt.Fprintf(os.Stderr, "montrace: %v\n", err)
				return 1
			}
			netSink = ns
			sinks = append(sinks, ns)
		}
		sink := sinks[0]
		if len(sinks) > 1 {
			sink = export.NewTeeSink(sinks...)
		}
		exp = export.New(sink, export.Config{Policy: export.Block})
		// The detector exists to drain checkpoints into the exporter;
		// its violations (if any, under -faulty) are the check
		// subcommand's business, not record's.
		det = detect.New(db, detect.Config{
			Clock:     clk,
			HoldWorld: true,
			Exporter:  exp,
		}, buf.Monitor())
	}
	rt := proc.NewRuntime()
	if *faulty {
		// Fill the buffer, then arm so the next send overflows.
		rt.Spawn("prefill", func(p *proc.P) {
			for i := 0; i < demoCapacity; i++ {
				_ = buf.Send(p, i)
			}
		})
		rt.Join()
		inj.Arm()
		rt.Spawn("overflower", func(p *proc.P) { _ = buf.Send(p, 99) })
		rt.Join()
	}
	// The consumer must drain everything the producer sends plus any
	// items left over from the faulty phase, so totals balance and both
	// processes terminate.
	toConsume := *items + buf.Len()
	rt.Spawn("producer", func(p *proc.P) {
		for i := 0; i < *items; i++ {
			if err := buf.Send(p, i); err != nil {
				return
			}
			if det != nil && i%8 == 7 {
				// Streaming mode: periodic checkpoints push the segments
				// recorded so far through the exporter, so the WAL grows
				// as the run goes instead of in one final burst.
				det.CheckNow()
			}
		}
	})
	rt.Spawn("consumer", func(p *proc.P) {
		for i := 0; i < toConsume; i++ {
			if _, err := buf.Receive(p); err != nil {
				return
			}
		}
	})
	rt.Join()

	if streaming {
		// Final checkpoint drains every remaining segment through the
		// exporter; mid-run violations are deliberately ignored here.
		// Close flushes the sink chain — for a NetSink that blocks
		// until the collector has acknowledged everything durable.
		det.CheckNow()
		if err := exp.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "montrace: %v\n", err)
			return 1
		}
		st := exp.Stats()
		if *outdir != "" {
			fmt.Printf("recorded %d events to %s in %d segments (faulty=%v)\n",
				st.Events, *outdir, st.Written, *faulty)
		}
		if netSink != nil {
			ss := netSink.Stats()
			fmt.Printf("shipped %d records to %s as origin %q (%d acked, %d dropped, faulty=%v)\n",
				ss.Accepted, *ship, *origin, ss.Acked, ss.Dropped, *faulty)
		}
		return 0
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "montrace: %v\n", err)
		return 1
	}
	defer f.Close()
	trace := db.Full()
	if strings.HasSuffix(*out, ".bin") {
		err = event.WriteBinary(f, trace)
	} else {
		err = event.WriteJSON(f, trace)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "montrace: %v\n", err)
		return 1
	}
	fmt.Printf("recorded %d events to %s (faulty=%v)\n", len(trace), *out, *faulty)
	return 0
}

// window carries the -from/-to/-monitor flags shared by dump and
// check.
type window struct {
	from, to int64
	monitors string
}

// addFlags registers the windowing flags on a subcommand's flag set.
func (w *window) addFlags(fs *flag.FlagSet) {
	fs.Int64Var(&w.from, "from", 0, "lowest sequence number to include (0 = from the start)")
	fs.Int64Var(&w.to, "to", 0, "highest sequence number to include (0 = to the end)")
	fs.StringVar(&w.monitors, "monitor", "", "comma-separated monitors to include (empty = all)")
}

// active reports whether any windowing was requested.
func (w window) active() bool { return w.from > 0 || w.to > 0 || w.monitors != "" }

// names returns the monitor filter as a slice (nil = all).
func (w window) names() []string {
	if w.monitors == "" {
		return nil
	}
	var out []string
	for _, s := range strings.Split(w.monitors, ",") {
		if s = strings.TrimSpace(s); s != "" {
			out = append(out, s)
		}
	}
	return out
}

// loaded is everything a reading subcommand gets back from a trace
// input: the events plus the side records that only exist in export
// directories (all nil for flat files).
type loaded struct {
	trace   event.Seq
	markers []history.RecoveryMarker
	healths []obs.HealthRecord
	tombs   []export.Tombstone
	alerts  []obsrules.Alert
}

// loadWindowed reads a trace applying the window. An export directory
// is answered through the trace-store SeekReader — only the files the
// index admits are opened, and the pruning is reported on stderr; a
// flat file is filtered after loading (there is nothing to prune).
// Health snapshots and threshold alerts window on their seq horizon
// but are per-process records, so the -monitor filter does not apply
// to them.
func loadWindowed(path string, w window) (loaded, error) {
	info, err := os.Stat(path)
	if err == nil && info.IsDir() && w.active() {
		r, err := index.OpenDir(path)
		if err != nil {
			return loaded{}, err
		}
		rep, err := r.ReplayRange(w.from, w.to, w.names()...)
		if err != nil {
			return loaded{}, err
		}
		st := r.LastStats()
		fmt.Fprintf(os.Stderr, "montrace: window opened %d of %d files (%d skipped via index, %d unindexed)\n",
			st.Opened, st.FilesTotal, st.Skipped, st.Unindexed)
		warnReplay(rep)
		if h := rep.RetentionHorizon(); h > 0 && w.to > 0 && w.to < h {
			fmt.Fprintf(os.Stderr, "montrace: the window precedes the retention horizon %d: the requested range was dropped by retention, not absent from the run\n", h)
		}
		return loaded{rep.Events, rep.Markers, rep.Healths, rep.Tombstones, rep.Alerts}, nil
	}
	ld, err := load(path)
	if err != nil || !w.active() {
		return ld, err
	}
	from, to := w.from, w.to
	if from <= 0 {
		from = 1
	}
	if to <= 0 {
		to = math.MaxInt64
	}
	ld.trace = ld.trace.SubSeq(from, to)
	keptHealths := ld.healths[:0]
	for _, h := range ld.healths {
		if h.Seq <= to && (h.Seq >= from || from <= 1) {
			keptHealths = append(keptHealths, h)
		}
	}
	ld.healths = keptHealths
	keptAlerts := ld.alerts[:0]
	for _, a := range ld.alerts {
		if a.Seq <= to && (a.Seq >= from || from <= 1) {
			keptAlerts = append(keptAlerts, a)
		}
	}
	ld.alerts = keptAlerts
	if names := w.names(); names != nil {
		keep := make(map[string]bool, len(names))
		for _, n := range names {
			keep[n] = true
		}
		filtered := make(event.Seq, 0, len(ld.trace))
		for _, e := range ld.trace {
			if keep[e.Monitor] {
				filtered = append(filtered, e)
			}
		}
		ld.trace = filtered
		kept := ld.markers[:0]
		for _, m := range ld.markers {
			if keep[m.Monitor] {
				kept = append(kept, m)
			}
		}
		ld.markers = kept
	}
	return ld, nil
}

// warnReplay surfaces a replay's damage accounting on stderr.
func warnReplay(rep *export.Replay) {
	if rep.Recovered {
		last := int64(0)
		if n := len(rep.Events); n > 0 {
			last = rep.Events[n-1].Seq
		}
		fmt.Fprintf(os.Stderr, "montrace: %s: torn tail recovered, trace ends at seq %d\n",
			rep.TruncatedFile, last)
	}
	if rep.CorruptRecords > 0 {
		fmt.Fprintf(os.Stderr, "montrace: %d corrupt records skipped (their events are missing from the trace)\n",
			rep.CorruptRecords)
	}
	if rep.DuplicateEvents > 0 {
		fmt.Fprintf(os.Stderr, "montrace: %d duplicate events collapsed (interrupted compaction leftovers; run montrace compact)\n",
			rep.DuplicateEvents)
	}
	if h := rep.RetentionHorizon(); h > 0 {
		fmt.Fprintf(os.Stderr, "montrace: store truncated by retention below seq %d (events below that horizon were dropped by compaction, not lost)\n", h)
	}
}

// load reads a trace from a file or an export directory. Recovery
// markers, health snapshots, retention tombstones and threshold
// alerts only exist in export directories; for flat files those
// slices are always nil.
func load(path string) (loaded, error) {
	if info, err := os.Stat(path); err == nil && info.IsDir() {
		rep, err := export.ReadDir(path)
		if err != nil {
			return loaded{}, err
		}
		warnReplay(rep)
		return loaded{rep.Events, rep.Markers, rep.Healths, rep.Tombstones, rep.Alerts}, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return loaded{}, err
	}
	defer f.Close()
	var trace event.Seq
	if strings.HasSuffix(path, ".bin") {
		trace, err = event.ReadBinary(f)
	} else {
		trace, err = event.ReadJSON(f)
	}
	return loaded{trace: trace}, err
}

func check(args []string) int {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	in := fs.String("in", "", "trace file to check")
	specFile := fs.String("spec", "", "monitor declaration file (mdl syntax); default: the demo buffer spec")
	tmax := fs.Duration("tmax", 10*time.Second, "Tmax (0 disables)")
	tio := fs.Duration("tio", 10*time.Second, "Tio (0 disables)")
	tlimit := fs.Duration("tlimit", 10*time.Second, "Tlimit (0 disables)")
	var win window
	win.addFlags(fs)
	_ = fs.Parse(args)
	if *in == "" {
		usage()
		return 2
	}
	return forEachInput(*in, func(path string) int {
		return checkOne(path, *specFile, *tmax, *tio, *tlimit, win)
	})
}

func checkOne(in, specFile string, tmax, tio, tlimit time.Duration, win window) int {
	ld, err := loadWindowed(in, win)
	if err != nil {
		fmt.Fprintf(os.Stderr, "montrace: %v\n", err)
		return 1
	}
	trace, markers := ld.trace, ld.markers
	if win.active() && len(trace) > 0 {
		fmt.Printf("note: checking the window seq %d..%d; calling-order or pairing violations at the window edges may be artefacts of the cut, not program faults\n",
			trace[0].Seq, trace[len(trace)-1].Seq)
	}
	if tb := newestTombstone(ld.tombs); tb != nil {
		fmt.Printf("note: the store was truncated by retention below seq %d (%d events dropped); pairing violations against the missing prefix are retention artefacts, not program faults\n",
			tb.Horizon, tb.Events)
	}
	for _, mk := range markers {
		fmt.Printf("note: monitor %q was reset online at seq %d (rule %s, %d unchecked events discarded); violations on it at or below that horizon may be reset artefacts, not program faults\n",
			mk.Monitor, mk.Horizon, mk.Rule, mk.Dropped)
	}
	// The pipeline's own degradation episodes sit next to the program's
	// faults: a trace checked while the detection pipeline was breaching
	// its thresholds deserves less confidence than one checked clean.
	for _, a := range ld.alerts {
		fmt.Printf("note: pipeline alert at seq %d: %s — detection itself was degraded around this horizon, so treat nearby results with care\n",
			a.Seq, a)
	}
	specs := []monitor.Spec{boundedbuffer.Spec("boundedbuffer", demoCapacity)}
	if specFile != "" {
		src, err := os.ReadFile(specFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "montrace: %v\n", err)
			return 1
		}
		specs, err = mdl.Parse(string(src))
		if err != nil {
			fmt.Fprintf(os.Stderr, "montrace: %v\n", err)
			return 1
		}
	}
	results, err := verify.Trace(trace, verify.Options{
		Specs:  specs,
		Tmax:   tmax,
		Tio:    tio,
		Tlimit: tlimit,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "montrace: %v\n", err)
		return 1
	}
	clean := true
	var all []rules.Violation
	for _, r := range results {
		fmt.Printf("monitor %q: FD-rule violations %d, ST-rule violations %d, literal-rule violations %d\n",
			r.Monitor, len(r.FD), len(r.ST), len(r.Literal))
		all = append(all, r.FD...)
		all = append(all, r.ST...)
		all = append(all, r.Literal...)
		if !r.Clean() {
			clean = false
		}
	}
	if len(all) > 0 {
		if err := report.Render(os.Stdout, report.Dedup(all)); err != nil {
			fmt.Fprintf(os.Stderr, "montrace: %v\n", err)
			return 1
		}
		fmt.Println(report.Summarize(all))
	}
	if !verify.Agreement(results) {
		fmt.Println("WARNING: the two rule engines disagree (should be impossible, §3.3.2)")
		return 1
	}
	if clean {
		fmt.Println("trace is clean under both rule engines")
		return 0
	}
	fmt.Println("trace contains faults (both engines agree)")
	return 3
}

func dump(args []string) int {
	fs := flag.NewFlagSet("dump", flag.ExitOnError)
	in := fs.String("in", "", "trace file to dump")
	original := fs.Bool("original", false, "render the §3.1 original event model (resumption updates applied)")
	var win window
	win.addFlags(fs)
	_ = fs.Parse(args)
	if *in == "" {
		usage()
		return 2
	}
	return forEachInput(*in, func(path string) int { return dumpOne(path, *original, win) })
}

func dumpOne(in string, original bool, win window) int {
	ld, err := loadWindowed(in, win)
	if err != nil {
		fmt.Fprintf(os.Stderr, "montrace: %v\n", err)
		return 1
	}
	trace := ld.trace
	if original {
		trace = rules.Effective(trace)
	}
	// The tombstone leads the dump: everything below its horizon was
	// dropped by retention, and the reader should know before the first
	// surviving event scrolls past.
	if tb := newestTombstone(ld.tombs); tb != nil {
		fmt.Printf("------  %-13s  TRUNCATED below seq %d by retention (%d events, %d records, %d files dropped)\n",
			"(retention)", tb.Horizon, tb.Events, tb.Records, tb.Files)
		for _, tr := range tb.Monitors {
			fmt.Printf("------  %-13s  dropped seq %d..%d (%d events)\n",
				tr.Monitor, tr.MinSeq, tr.MaxSeq, tr.Events)
		}
	}
	// Markers and pipeline alerts interleave at their horizon: every
	// event at or below the horizon precedes the reset (or the rule
	// transition), everything after follows it.
	type annotation struct {
		horizon int64
		line    string
	}
	var notes []annotation
	for _, mk := range ld.markers {
		notes = append(notes, annotation{mk.Horizon, fmt.Sprintf("------  %-13s  RESET at seq %d (rule %s, %d unchecked events discarded)",
			mk.Monitor, mk.Horizon, mk.Rule, mk.Dropped)})
	}
	for _, a := range ld.alerts {
		who := "(pipeline)"
		if a.Origin != "" {
			who = "(" + a.Origin + ")"
		}
		notes = append(notes, annotation{a.Seq, fmt.Sprintf("------  %-13s  ALERT at seq %d: %s", who, a.Seq, a)})
	}
	sort.SliceStable(notes, func(i, j int) bool { return notes[i].horizon < notes[j].horizon })
	next := 0
	for _, e := range trace {
		for next < len(notes) && notes[next].horizon < e.Seq {
			fmt.Println(notes[next].line)
			next++
		}
		fmt.Printf("%6d  %-13s  %s\n", e.Seq, e.Monitor, e)
	}
	for ; next < len(notes); next++ {
		fmt.Println(notes[next].line)
	}
	switch {
	case len(ld.markers) > 0 && len(ld.alerts) > 0:
		fmt.Printf("%d events, %d recovery markers, %d pipeline alerts\n", len(trace), len(ld.markers), len(ld.alerts))
	case len(ld.markers) > 0:
		fmt.Printf("%d events, %d recovery markers\n", len(trace), len(ld.markers))
	case len(ld.alerts) > 0:
		fmt.Printf("%d events, %d pipeline alerts\n", len(trace), len(ld.alerts))
	default:
		fmt.Printf("%d events\n", len(trace))
	}
	return 0
}
