// Command montrace records and re-checks monitor execution traces.
//
// # Usage
//
//	montrace record -out trace.jsonl [-faulty]   # run a demo workload, export its trace
//	montrace record -outdir run/     [-faulty]   # same, streamed to a WAL export directory
//	montrace record -ship host:9190 -origin a    # same, shipped to a moncollect collector
//	montrace check  -in  trace.jsonl             # offline-check a trace with both rule engines
//	montrace check  -in  run/                    # …directly from an export directory
//	montrace dump   -in  trace.jsonl             # print the events in the paper's notation
//	montrace stats  -in  run/                    # summarise a trace
//	montrace help                                # print the full usage text
//
// # Inputs: trace files and export directories
//
// Traces ending in .bin use the compact binary codec, anything else is
// JSON Lines. Wherever a trace file is accepted, a directory is
// accepted too and is read as a segmented WAL export directory
// (internal/export): numbered *.wal files of CRC-protected records as
// written by the streaming export pipeline, merged back into the
// global <L event order on read, with crash recovery — a torn record
// at the tail of the newest file (the signature of a crash mid-append)
// is dropped and reported, never mistaken for corruption. With
// record -outdir the recorder keeps no full trace in memory at all: a
// detector streams every drained checkpoint segment through the async
// exporter into the WAL as the run goes.
//
// # Recovery markers
//
// An export directory can also hold recovery markers — records written
// when a shard-local online reset (robustmon's ResetMonitor recovery
// policy wired to a detector) recovered a faulty monitor while the
// rest of the system kept running. A reset discards the monitor's
// buffered, never-checked events, so the exported trace has a
// deliberate gap for that monitor at or below the marker's horizon
// sequence number. montrace surfaces the markers instead of letting
// the gap masquerade as corruption or as program misbehaviour:
//
//   - dump interleaves a "RESET at seq H" line at the horizon position
//     so the monitor's two lives are visually separated;
//   - check prints a note per marker, because violations reported on
//     the reset monitor at or below the horizon (an Enter whose Exit
//     was discarded, a broken call-order pair, …) may be artefacts of
//     the gap rather than faults in the monitored program.
//
// # Health timeline
//
// An export directory can also hold health snapshots — records a
// detector writes at a configured cadence (DetectorConfig.HealthEvery
// with an obs registry) capturing the whole self-observability
// registry at a sequence horizon. stats renders them as a timeline
// after the trace statistics: one row per snapshot with the pipeline's
// well-known metrics (history appends, checkpoints, violations,
// exported events, exporter queue depth, checkpoint-latency p99)
// pulled out as columns, so a trace directory answers not only "what
// did the monitors do" but "how did the detection pipeline itself
// behave" — after the fact, from disk, windowed through the index.
// stats -rates re-renders the same snapshots as per-interval deltas —
// appends/checks/violations/exported per interval, appends-per-second
// and the interval-local check p99 — which is where a degradation
// trend is visible long before the cumulative counters show it.
//
//	montrace stats -in run/ -from 12000 -to 24000
//	montrace stats -in run/ -rates
//
// # Pipeline alerts: the pipeline watching itself
//
// An export directory can also hold pipeline alerts — records written
// when a threshold rule over the metrics registry
// (DetectorConfig.Rules, or a collector's fleet rules) fired or
// cleared: detection noticed its own degradation and said so in the
// same WAL that carries the trace. stats lists the alert timeline
// after the health timeline; dump interleaves "ALERT at seq H" lines
// at their horizons alongside the RESET markers; check prints a note
// per alert, because application violations near a horizon where
// detection itself was degraded deserve suspicion. In the live
// process the same transition also raised a synthetic META violation
// (and, for rules with ResetMonitor set, a shard-local reset).
//
// # Fleet mode: shipping, collectors, fleet roots
//
// record -ship streams the same records a WAL directory would hold to
// a moncollect collector over TCP (internal/export/net): at-least-once
// delivery behind a resume handshake, replayed on the collector
// byte-identically and exactly-once. -origin names the producer, and
// the collector lands each origin in its own subdirectory of its
// fleet root — every one an ordinary export directory. -ship composes
// with -outdir through a tee. The reading subcommands (dump, check,
// stats) detect a fleet root — a directory with no *.wal files of its
// own whose immediate subdirectories hold them — and run once per
// origin under a heading, reporting the worst exit code; origins are
// never merged, because each numbers its events independently. The
// exception is wall-clock health: after the per-origin sections,
// stats renders one fleet timeline — every origin's health snapshots
// and alerts (including the collector's own _fleet origin, where
// moncollect's watcher records per-origin staleness alerts) merged in
// wall-clock order, each row tagged with its origin — because "which
// producer went quiet, and when" is inherently a cross-origin
// question.
//
// # Trace store: windowed queries, index, compact
//
// A long run leaves hundreds of rotated segment files; decoding all of
// them to look at the neighbourhood of one violation is the cost the
// trace store removes. dump and check accept -from/-to (a global
// sequence-number window) and -monitor (a comma-separated monitor
// set); over an export directory the window is answered through the
// directory's index (wal.index) — a per-file table of seq ranges,
// monitor sets and marker offsets that admits only the files the
// window can touch, with the pruning reported on stderr. Over a flat
// trace file the same flags filter after loading.
//
//	montrace index   -in run/            # rebuild the index from the files
//	montrace index   -in run/ -verify    # check it against the files
//	montrace compact -in run/            # merge the rotated backlog per monitor
//	montrace dump    -in run/ -from 12000 -to 12400 -monitor buffer
//
// compact merges every rotated file's records into dense per-monitor
// segments (replay-identical to the original — recovery markers and
// their horizons included), leaving the -keep newest files untouched
// (default 1, the active segment of a live recorder); -drop-reset
// additionally discards events at or below each reset horizon and
// reports how many. A check over a window prints a note that pairing
// violations at the window edges may be artefacts of the cut.
//
// The demo workload is a bounded-buffer producer/consumer (the paper's
// communication-coordinator class); -faulty injects a send-overflow
// bug so the checkers have something to find.
//
// Exit codes: 0 clean, 1 error, 2 usage, 3 faults found (check).
package main
