package main

import (
	"strings"
	"testing"

	"robustmon/internal/faults"
)

func runTool(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errOut strings.Builder
	code := run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestSelectKindsDefaults(t *testing.T) {
	t.Parallel()
	kinds, code := selectKinds("", "", &strings.Builder{})
	if code != 0 || len(kinds) != 21 {
		t.Fatalf("default selection = %d kinds, code %d", len(kinds), code)
	}
}

func TestSelectKindsByLevel(t *testing.T) {
	t.Parallel()
	cases := map[string]int{"I": 14, "II": 4, "III": 3}
	for level, want := range cases {
		kinds, code := selectKinds(level, "", &strings.Builder{})
		if code != 0 || len(kinds) != want {
			t.Errorf("level %s: %d kinds (code %d), want %d", level, len(kinds), code, want)
		}
	}
}

func TestSelectKindsByCodeAndName(t *testing.T) {
	t.Parallel()
	kinds, code := selectKinds("", "III.c", &strings.Builder{})
	if code != 0 || len(kinds) != 1 || kinds[0] != faults.SelfDeadlock {
		t.Fatalf("by code = %v (code %d)", kinds, code)
	}
	kinds, code = selectKinds("", "self-deadlock", &strings.Builder{})
	if code != 0 || len(kinds) != 1 || kinds[0] != faults.SelfDeadlock {
		t.Fatalf("by name = %v (code %d)", kinds, code)
	}
}

func TestSelectKindsErrors(t *testing.T) {
	t.Parallel()
	var errOut strings.Builder
	if _, code := selectKinds("IV", "", &errOut); code != 2 {
		t.Fatalf("unknown level accepted (code %d)", code)
	}
	if _, code := selectKinds("", "IX.z", &errOut); code != 2 {
		t.Fatalf("unknown kind accepted (code %d)", code)
	}
	// Level and kind filters compose: II.c is not at level I.
	if _, code := selectKinds("I", "II.c", &errOut); code != 2 {
		t.Fatalf("cross-level selection accepted (code %d)", code)
	}
}

func TestRunSingleKindEndToEnd(t *testing.T) {
	t.Parallel()
	code, out, _ := runTool(t, "-kind", "I.c.2")
	if code != 0 {
		t.Fatalf("exit = %d\n%s", code, out)
	}
	for _, want := range []string{"injecting 1 fault kind", "I.c.2", "1 / 1", "matches the paper"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunUserLevelEndToEnd(t *testing.T) {
	t.Parallel()
	code, out, _ := runTool(t, "-level", "III")
	if code != 0 {
		t.Fatalf("exit = %d\n%s", code, out)
	}
	if !strings.Contains(out, "3 / 3") {
		t.Fatalf("output missing 3/3 coverage:\n%s", out)
	}
	if !strings.Contains(out, "realtime") {
		t.Fatalf("user-level run should show realtime detections:\n%s", out)
	}
}

func TestRunBadFlagExitCode(t *testing.T) {
	t.Parallel()
	code, _, _ := runTool(t, "-level", "IV")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}
