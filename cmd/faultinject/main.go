// Command faultinject regenerates the paper's robustness experiment
// (E1): it injects every fault kind from the §2.2 taxonomy into a
// matching workload and reports which were detected, by which rules,
// and in which detection phase. The paper's result — "all injected
// faults are detected" — corresponds to a 21/21 summary and exit
// status 0.
//
//	faultinject            # the full taxonomy
//	faultinject -level I   # one taxonomy level (I, II or III)
//	faultinject -kind III.c  # a single fault by taxonomy code
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"robustmon/internal/experiment"
	"robustmon/internal/faults"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the tool against args, writing to out/errOut; split from
// main for testability.
func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("faultinject", flag.ContinueOnError)
	fs.SetOutput(errOut)
	level := fs.String("level", "", "restrict to one taxonomy level: I, II or III")
	kind := fs.String("kind", "", "inject a single fault by taxonomy code (e.g. I.a.1) or name")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	kinds, code := selectKinds(*level, *kind, errOut)
	if code != 0 {
		return code
	}

	fmt.Fprintf(out, "E1 (robustness): injecting %d fault kind(s)\n\n", len(kinds))
	results := experiment.RunCoverage(kinds)
	fmt.Fprint(out, experiment.CoverageTable(results).String())
	fmt.Fprintln(out)
	fmt.Fprintln(out, experiment.CoverageSummary(results))

	detected, total := experiment.Coverage(results)
	if detected != total || total != len(kinds) {
		fmt.Fprintln(out, "RESULT: coverage incomplete")
		return 1
	}
	fmt.Fprintln(out, "RESULT: all injected faults are detected (matches the paper)")
	return 0
}

// selectKinds resolves the -level and -kind filters. A non-zero second
// result is the exit code for a selection error.
func selectKinds(level, kind string, errOut io.Writer) ([]faults.Kind, int) {
	kinds := faults.AllKinds()
	switch level {
	case "":
	case "I":
		kinds = faults.KindsAtLevel(faults.LevelImplementation)
	case "II":
		kinds = faults.KindsAtLevel(faults.LevelProcedure)
	case "III":
		kinds = faults.KindsAtLevel(faults.LevelUser)
	default:
		fmt.Fprintf(errOut, "faultinject: unknown level %q (want I, II or III)\n", level)
		return nil, 2
	}
	if kind == "" {
		return kinds, 0
	}
	var selected []faults.Kind
	for _, k := range kinds {
		if k.Code() == kind || k.String() == kind {
			selected = append(selected, k)
		}
	}
	if len(selected) == 0 {
		fmt.Fprintf(errOut, "faultinject: no fault kind matches %q\n", kind)
		return nil, 2
	}
	return selected, 0
}
