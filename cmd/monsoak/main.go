// Command monsoak runs generative long-horizon soak campaigns: each
// seed expands into a randomized composition of workload, fault
// injection, periodic detection, streaming export, background
// compaction and an advancing retention floor, all running
// concurrently, and the run passes only if the store's conservation
// invariants hold (see internal/soak).
//
//	monsoak -seed 42             # one campaign
//	monsoak -seeds 1,2,3         # a fixed list (the CI soak job)
//	monsoak -count 25 -from 100  # a consecutive block
//	monsoak -seed 42 -dir /tmp/s # keep the store for post-mortems
//
// A failing campaign prints its seed and the exact replay command, so
// a soak find anywhere reduces to a one-line local repro.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"robustmon/internal/soak"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("monsoak", flag.ExitOnError)
	seed := fs.Int64("seed", 0, "run exactly this campaign seed")
	seeds := fs.String("seeds", "", "comma-separated campaign seeds (overrides -seed)")
	from := fs.Int64("from", 1, "first seed of the -count block")
	count := fs.Int("count", 0, "run this many consecutive seeds starting at -from")
	ops := fs.Int("ops", 0, "approximate monitor operations per campaign (0 = default)")
	dir := fs.String("dir", "", "export directory to use and keep (single-seed runs only)")
	verbose := fs.Bool("v", false, "print per-campaign progress")
	_ = fs.Parse(args)

	var list []int64
	switch {
	case *seeds != "":
		for _, s := range strings.Split(*seeds, ",") {
			n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "monsoak: bad seed %q: %v\n", s, err)
				return 2
			}
			list = append(list, n)
		}
	case *count > 0:
		for i := 0; i < *count; i++ {
			list = append(list, *from+int64(i))
		}
	default:
		list = []int64{*seed}
	}
	if *dir != "" && len(list) != 1 {
		fmt.Fprintln(os.Stderr, "monsoak: -dir only makes sense with a single seed")
		return 2
	}

	failures := 0
	for _, s := range list {
		cfg := soak.Config{Seed: s, Ops: *ops, Dir: *dir}
		if *verbose {
			cfg.Log = os.Stderr
		}
		rep, err := soak.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "monsoak: FAIL %v\n", err)
			failures++
			continue
		}
		fmt.Printf("monsoak: PASS %s\n", rep)
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "monsoak: %d of %d campaigns failed\n", failures, len(list))
		return 1
	}
	return 0
}
