package main

import (
	"os"
	"testing"
)

// TestRunSingleSeed pins the CLI exit contract: a passing campaign
// exits 0.
func TestRunSingleSeed(t *testing.T) {
	if code := run([]string{"-seed", "20010704", "-ops", "400"}); code != 0 {
		t.Fatalf("run exit = %d, want 0", code)
	}
}

// TestRunSeedList pins the -seeds form the CI soak job uses.
func TestRunSeedList(t *testing.T) {
	if code := run([]string{"-seeds", "20010704, 20010705", "-ops", "400"}); code != 0 {
		t.Fatalf("run exit = %d, want 0", code)
	}
}

// TestRunBadSeedList pins the usage exit code.
func TestRunBadSeedList(t *testing.T) {
	if code := run([]string{"-seeds", "1,x"}); code != 2 {
		t.Fatalf("run exit = %d, want 2", code)
	}
}

// TestRunDirNeedsSingleSeed pins the -dir guard.
func TestRunDirNeedsSingleSeed(t *testing.T) {
	if code := run([]string{"-seeds", "1,2", "-dir", t.TempDir()}); code != 2 {
		t.Fatalf("run exit = %d, want 2", code)
	}
}

// TestRunKeepsDir pins that -dir keeps the store for post-mortems.
func TestRunKeepsDir(t *testing.T) {
	dir := t.TempDir()
	if code := run([]string{"-seed", "20010704", "-ops", "400", "-dir", dir}); code != 0 {
		t.Fatalf("run exit = %d, want 0", code)
	}
	ents, err := os.ReadDir(dir)
	if err != nil || len(ents) == 0 {
		t.Fatalf("store not kept in %s: %d entries, err=%v", dir, len(ents), err)
	}
}
