package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func row(eps float64, p99 time.Duration, extra map[string]any) map[string]any {
	r := map[string]any{
		"monitors": 4, "checkpoint": "hold-world", "scheduler": "fixed", "batch": 0,
		"events_per_sec": eps, "checkpoint_p99_ns": p99.Nanoseconds(),
	}
	for k, v := range extra {
		r[k] = v
	}
	return r
}

func normalized(t *testing.T, rows []map[string]any) []map[string]any {
	t.Helper()
	out, err := normalize(rows)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestCompareArtefactsPassesWithinTolerance(t *testing.T) {
	t.Parallel()
	base := normalized(t, []map[string]any{row(1000, 10*time.Millisecond, nil)})
	fresh := normalized(t, []map[string]any{row(900, 11*time.Millisecond, nil)})
	regs, err := compareArtefacts(base, fresh, 0.25)
	if err != nil || len(regs) != 0 {
		t.Fatalf("regs=%v err=%v, want clean pass", regs, err)
	}
}

func TestCompareArtefactsFlagsThroughputRegression(t *testing.T) {
	t.Parallel()
	base := normalized(t, []map[string]any{row(1000, 10*time.Millisecond, nil)})
	fresh := normalized(t, []map[string]any{row(500, 10*time.Millisecond, nil)})
	regs, err := compareArtefacts(base, fresh, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || !strings.Contains(regs[0], "events/sec") {
		t.Fatalf("regs = %v, want one events/sec regression", regs)
	}
}

func TestCompareArtefactsFlagsLatencyRegression(t *testing.T) {
	t.Parallel()
	base := normalized(t, []map[string]any{row(1000, 10*time.Millisecond, nil)})
	fresh := normalized(t, []map[string]any{row(1000, 40*time.Millisecond, nil)})
	regs, err := compareArtefacts(base, fresh, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || !strings.Contains(regs[0], "p99") {
		t.Fatalf("regs = %v, want one p99 regression", regs)
	}
}

func TestCompareArtefactsLatencyFloorAbsorbsNoise(t *testing.T) {
	t.Parallel()
	// 100µs → 300µs is +200% relative but far below the 10ms floor:
	// micro-latency jitter must not fail the gate.
	base := normalized(t, []map[string]any{row(1000, 100*time.Microsecond, nil)})
	fresh := normalized(t, []map[string]any{row(1000, 300*time.Microsecond, nil)})
	regs, err := compareArtefacts(base, fresh, 0.25)
	if err != nil || len(regs) != 0 {
		t.Fatalf("regs=%v err=%v, want floor to absorb sub-ms jitter", regs, err)
	}
}

func TestCompareArtefactsCollectorRowsGetWidenedBand(t *testing.T) {
	t.Parallel()
	// Collector (E8) throughput gates at twice the tolerance: −40%
	// passes where an ordinary sweep row would fail, −60% still fails.
	mk := func(eps float64) []map[string]any {
		return normalized(t, []map[string]any{
			{"bench": "collector", "mode": "fleet", "producers": 1, "events_per_sec": eps},
		})
	}
	regs, err := compareArtefacts(mk(1000), mk(600), 0.25)
	if err != nil || len(regs) != 0 {
		t.Fatalf("regs=%v err=%v, want −40%% absorbed by the widened band", regs, err)
	}
	regs, err = compareArtefacts(mk(1000), mk(400), 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || !strings.Contains(regs[0], "events/sec") || !strings.Contains(regs[0], "50%") {
		t.Fatalf("regs = %v, want one events/sec regression at the ±50%% band", regs)
	}
}

func TestCompareArtefactsAllocCeiling(t *testing.T) {
	t.Parallel()
	rpRow := func(eps, allocs float64) map[string]any {
		return map[string]any{
			"bench": "recordpath", "mode": "batch", "monitors": 8,
			"producers": 16, "batch": 256,
			"events_per_sec": eps, "allocs_per_event": allocs,
		}
	}
	// Steady-state noise — thousandths of an allocation per event —
	// stays under the absolute floor even when relatively large.
	base := normalized(t, []map[string]any{rpRow(1e7, 0.001)})
	fresh := normalized(t, []map[string]any{rpRow(1e7, 0.02)})
	regs, err := compareArtefacts(base, fresh, 0.25)
	if err != nil || len(regs) != 0 {
		t.Fatalf("regs=%v err=%v, want floor to absorb alloc noise", regs, err)
	}
	// A per-event allocation creeping back in (≈1 alloc/event) fails.
	fresh = normalized(t, []map[string]any{rpRow(1e7, 1.0)})
	regs, err = compareArtefacts(base, fresh, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || !strings.Contains(regs[0], "allocs/event") {
		t.Fatalf("regs = %v, want one allocs/event regression", regs)
	}
	// A zero baseline still gates via the floor alone.
	base = normalized(t, []map[string]any{rpRow(1e7, 0)})
	regs, err = compareArtefacts(base, fresh, 0.25)
	if err != nil || len(regs) != 1 {
		t.Fatalf("regs=%v err=%v, want zero baseline to gate via the floor", regs, err)
	}
}

func TestCompareArtefactsHeapCeiling(t *testing.T) {
	t.Parallel()
	soakRow := func(peak float64) map[string]any {
		return map[string]any{
			"bench": "soak", "backlog": 131072, "peak_heap_bytes": peak,
		}
	}
	// Sampler jitter of a few MiB stays under the absolute floor even
	// when relatively large.
	base := normalized(t, []map[string]any{soakRow(2 << 20)})
	fresh := normalized(t, []map[string]any{soakRow(6 << 20)})
	regs, err := compareArtefacts(base, fresh, 0.25)
	if err != nil || len(regs) != 0 {
		t.Fatalf("regs=%v err=%v, want floor to absorb heap-sampler jitter", regs, err)
	}
	// Whole-backlog buffering (tens of MiB over baseline) fails.
	fresh = normalized(t, []map[string]any{soakRow(40 << 20)})
	regs, err = compareArtefacts(base, fresh, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || !strings.Contains(regs[0], "peak heap") {
		t.Fatalf("regs = %v, want one peak-heap regression", regs)
	}
}

func TestCompareArtefactsKeyMatching(t *testing.T) {
	t.Parallel()
	// Different scheduler cells must never be compared to each other.
	base := normalized(t, []map[string]any{
		row(1000, 10*time.Millisecond, map[string]any{"scheduler": "fixed"}),
		row(5000, time.Millisecond, map[string]any{"scheduler": "adaptive"}),
	})
	fresh := normalized(t, []map[string]any{
		row(990, 10*time.Millisecond, map[string]any{"scheduler": "fixed"}),
	})
	regs, err := compareArtefacts(base, fresh, 0.25)
	if err != nil || len(regs) != 0 {
		t.Fatalf("regs=%v err=%v, want pass (adaptive baseline row ignored)", regs, err)
	}
	// No overlap at all is an error, not a silent pass.
	orphan := normalized(t, []map[string]any{
		row(10, time.Second, map[string]any{"monitors": 999}),
	})
	if _, err := compareArtefacts(base, orphan, 0.25); err == nil {
		t.Fatal("zero matched rows accepted")
	}
}

func TestGateEndToEndPassAndArtefactSchema(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.json")
	sweep := []string{
		"-monitors", "1,2",
		"-ops", "400",
		"-procs", "1",
		"-intervals", "2ms",
		"-adaptive",
		"-batch", "32",
	}
	code, _, errOut := runTool(t, append(sweep, "-json", basePath)...)
	if code != 0 {
		t.Fatalf("baseline sweep: exit %d, err=%q", code, errOut)
	}
	var art struct {
		Rows []map[string]any `json:"rows"`
	}
	blob, err := os.ReadFile(basePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(blob, &art); err != nil {
		t.Fatal(err)
	}
	// 2 monitor counts × 2 checkpoint modes × 2 scheduler modes.
	if len(art.Rows) != 8 {
		t.Fatalf("adaptive sweep produced %d rows, want 8", len(art.Rows))
	}
	for i, r := range art.Rows {
		for _, field := range []string{"scheduler", "batch", "checkpoint_p50_ns", "checkpoint_p99_ns", "events_per_sec"} {
			if _, ok := r[field]; !ok {
				t.Fatalf("row %d missing %q: %v", i, field, r)
			}
		}
	}

	// Re-running the same sweep against the fresh baseline passes the
	// gate (generous tolerance: this pins mechanics, not the hardware).
	code, out, errOut := runTool(t, append(sweep, "-baseline", basePath, "-tolerance", "0.95")...)
	if code != 0 {
		t.Fatalf("gate run: exit %d, err=%q", code, errOut)
	}
	if !strings.Contains(out, "perf gate passed") {
		t.Fatalf("gate verdict missing:\n%s", out)
	}
}

func TestGateRejectsMissingOrMismatchedBaseline(t *testing.T) {
	t.Parallel()
	code, _, errOut := runTool(t,
		"-monitors", "1", "-ops", "100", "-procs", "1",
		"-baseline", filepath.Join(t.TempDir(), "nope.json"))
	if code != 1 || !strings.Contains(errOut, "read baseline") {
		t.Fatalf("code=%d err=%q, want read failure", code, errOut)
	}

	// An E2 baseline cannot gate an E4 sweep.
	dir := t.TempDir()
	e2 := filepath.Join(dir, "e2.json")
	if err := os.WriteFile(e2, []byte(`{"kind":"E2-overhead","rows":[]}`), 0o666); err != nil {
		t.Fatal(err)
	}
	code, _, errOut = runTool(t,
		"-monitors", "1", "-ops", "100", "-procs", "1",
		"-baseline", e2)
	if code != 1 || !strings.Contains(errOut, "not comparable") {
		t.Fatalf("code=%d err=%q, want kind mismatch", code, errOut)
	}
}
