// Command monbench regenerates the paper's Table 1: the overhead ratio
// of the augmented monitor construct (history recording + periodic
// fault detection) over the bare monitor, swept across checking
// intervals and the three monitor-class workloads.
//
//	monbench                      # paper-scale sweep (0.5s, 1s, 2s, 3s)
//	monbench -quick               # scaled-down sweep for a fast look
//	monbench -intervals 250ms,1s  # custom intervals
//	monbench -arch                # print the Figure 1 architecture
//	monbench -monitors 1,4,16     # E4: many-monitor scaling sweep
//	monbench ... -json BENCH_scaling.json   # also write a machine-readable artefact
//
// Absolute ratios depend on the host; the paper's shape — the ratio
// falls as the checking interval grows — is what to compare. Every
// sweep also reports events/sec (recording throughput) so successive
// PRs can track the performance trajectory; -json persists the sweep
// (config, rows, events/sec) as a JSON artefact for exactly that
// tracking.
//
// The -monitors sweep drives N independent monitors into one sharded
// history database and one detector, comparing the paper-faithful
// stop-the-world checkpoint against the per-monitor pipeline;
// -globallock reruns it on the legacy single-mutex database to show
// the contention the sharding removed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"robustmon/internal/experiment"
)

// benchArtefact is the schema of the -json perf artefact tracked
// across PRs (e.g. BENCH_scaling.json).
type benchArtefact struct {
	// Kind is "E2-overhead" or "E4-scaling".
	Kind string `json:"kind"`
	// GeneratedAt is the RFC 3339 UTC instant the sweep finished.
	GeneratedAt string `json:"generated_at"`
	// Config echoes the sweep parameters so rows are comparable.
	Config map[string]any `json:"config"`
	// Rows hold one entry per sweep cell; events_per_sec is the
	// headline trajectory metric.
	Rows []map[string]any `json:"rows"`
}

// writeArtefact marshals the artefact to path (pretty-printed, so
// diffs between PRs stay reviewable).
func writeArtefact(path string, a benchArtefact) error {
	blob, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o666)
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the tool against args, writing to out/errOut; split from
// main for testability.
func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("monbench", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		arch      = fs.Bool("arch", false, "print the Figure 1 architecture and exit")
		quick     = fs.Bool("quick", false, "scaled-down sweep (ms intervals, fewer ops)")
		intervals = fs.String("intervals", "", "comma-separated checking intervals (e.g. 500ms,1s,2s,3s)")
		ops       = fs.Int("ops", 0, "monitor operations per measurement (0 = default)")
		procs     = fs.Int("procs", 0, "concurrent processes (0 = default)")
		repeats   = fs.Int("repeats", 0, "repetitions per cell (0 = default); E4 reports the per-metric median")
		workloads = fs.String("workloads", "", "comma-separated workloads: coordinator,allocator,manager")
		suspend   = fs.Duration("suspend", 0, "simulated per-checkpoint process-suspension cost (models the 2001 JVM prototype; 0 = native)")
		monitors  = fs.String("monitors", "", "comma-separated monitor counts for the E4 scaling sweep (e.g. 1,4,16); empty = run E2 instead. E4 honours -ops, -procs, a single -intervals value, -workers, -globallock, -adaptive and -batch; the other E2 flags do not apply")
		workers   = fs.Int("workers", 0, "checkpoint worker-pool bound for -monitors (0 = auto)")
		global    = fs.Bool("globallock", false, "run -monitors against the legacy single-mutex history database")
		adaptive  = fs.Bool("adaptive", false, "add adaptive-scheduler rows to the -monitors sweep (per-monitor intervals next to every fixed-T cell)")
		batch     = fs.Int("batch", 0, "batched-replay batch size for the -monitors sweep (0 = unbatched)")
		store     = fs.Bool("tracestore", false, "add the E5 trace-store rows (full ReadDir vs index-backed windowed SeekReader over a synthetic export directory); combines with -monitors into one artefact, or runs standalone")
		record    = fs.Bool("recordpath", false, "add the E6 record-path rows (singleton DB.Append vs BatchWriter ingest under concurrent producers: events/sec, ns/event, B/event, allocs/event); combines with -monitors into one artefact, or runs standalone")
		obsover   = fs.Bool("obsoverhead", false, "add the E7 self-observability rows (instrumented vs stripped ingest throughput, plus the bare-increment allocation profile); combines with -monitors into one artefact, or runs standalone")
		collector = fs.Bool("collector", false, "add the E8 collector rows (N NetSink producers over loopback into one fleet collector vs a single-process WALSink baseline); combines with -monitors into one artefact, or runs standalone")
		soakf     = fs.Bool("soak", false, "add the E9 long-horizon compaction rows (streaming retention pass over backlogs many times the chunk budget: peak heap, bytes reclaimed); combines with -monitors into one artefact, or runs standalone")
		obsrulesf = fs.Bool("obsrules", false, "add the E10 threshold-rule rows (rule-engine Eval cost per registry snapshot, quiet vs flapping, with the quiet path's zero-alloc claim gated); combines with -monitors into one artefact, or runs standalone")
		batchw    = fs.Bool("batchwriters", false, "wire the -monitors workload through lock-free BatchWriters instead of direct DB.Append (the raw-speed record path under the full monitor protocol)")
		jsonPath  = fs.String("json", "", "also write the sweep results as a JSON artefact to this path (e.g. BENCH_scaling.json)")
		baseline  = fs.String("baseline", "", "perf gate: compare the fresh sweep against this JSON artefact and exit non-zero on regression")
		tolerance = fs.Float64("tolerance", 0.25, "perf gate: relative tolerance for -baseline comparisons")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *arch {
		fmt.Fprint(out, experiment.Figure1().String())
		if err := experiment.VerifyFigure1(); err != nil {
			fmt.Fprintf(errOut, "monbench: architecture verification FAILED: %v\n", err)
			return 1
		}
		fmt.Fprintln(out, "\narchitecture verified: every edge carries data (E3)")
		return 0
	}

	if *monitors != "" {
		return runScaling(scalingFlags{
			monitorCounts: *monitors,
			ops:           *ops,
			procs:         *procs,
			repeats:       *repeats,
			intervals:     *intervals,
			workers:       *workers,
			global:        *global,
			adaptive:      *adaptive,
			batch:         *batch,
			batchwriters:  *batchw,
			tracestore:    *store,
			recordpath:    *record,
			obsoverhead:   *obsover,
			collector:     *collector,
			soak:          *soakf,
			obsrules:      *obsrulesf,
			jsonPath:      *jsonPath,
			baseline:      *baseline,
			tolerance:     *tolerance,
		}, out, errOut)
	}

	if *store || *record || *obsover || *collector || *soakf || *obsrulesf {
		// Standalone E5/E6/E7/E8/E9/E10: their own artefact kinds; several
		// flags at once share one artefact (the rows are keyed apart by
		// "bench").
		var kinds []string
		art := benchArtefact{
			GeneratedAt: time.Now().UTC().Format(time.RFC3339),
			Config:      map[string]any{},
		}
		if *store {
			rows, cfgEntries, code := runTraceStore(*repeats, out, errOut)
			if code != 0 {
				return code
			}
			kinds = append(kinds, "E5-tracestore")
			art.Rows = append(art.Rows, rows...)
			for k, v := range cfgEntries {
				art.Config[k] = v
			}
		}
		if *record {
			if *store {
				fmt.Fprintln(out)
			}
			rows, cfgEntries, code := runRecordPathSweep(*repeats, out, errOut)
			if code != 0 {
				return code
			}
			kinds = append(kinds, "E6-recordpath")
			art.Rows = append(art.Rows, rows...)
			for k, v := range cfgEntries {
				art.Config[k] = v
			}
		}
		if *obsover {
			if *store || *record {
				fmt.Fprintln(out)
			}
			rows, cfgEntries, code := runObsOverheadSweep(*repeats, out, errOut)
			if code != 0 {
				return code
			}
			kinds = append(kinds, "E7-obsoverhead")
			art.Rows = append(art.Rows, rows...)
			for k, v := range cfgEntries {
				art.Config[k] = v
			}
		}
		if *collector {
			if *store || *record || *obsover {
				fmt.Fprintln(out)
			}
			rows, cfgEntries, code := runCollectorSweep(*repeats, out, errOut)
			if code != 0 {
				return code
			}
			kinds = append(kinds, "E8-collector")
			art.Rows = append(art.Rows, rows...)
			for k, v := range cfgEntries {
				art.Config[k] = v
			}
		}
		if *soakf {
			if *store || *record || *obsover || *collector {
				fmt.Fprintln(out)
			}
			rows, cfgEntries, code := runSoakSweep(*repeats, out, errOut)
			if code != 0 {
				return code
			}
			kinds = append(kinds, "E9-soak")
			art.Rows = append(art.Rows, rows...)
			for k, v := range cfgEntries {
				art.Config[k] = v
			}
		}
		if *obsrulesf {
			if *store || *record || *obsover || *collector || *soakf {
				fmt.Fprintln(out)
			}
			rows, cfgEntries, code := runObsRulesSweep(*repeats, out, errOut)
			if code != 0 {
				return code
			}
			kinds = append(kinds, "E10-obsrules")
			art.Rows = append(art.Rows, rows...)
			for k, v := range cfgEntries {
				art.Config[k] = v
			}
		}
		art.Kind = strings.Join(kinds, "+")
		if *jsonPath != "" {
			if err := writeArtefact(*jsonPath, art); err != nil {
				fmt.Fprintf(errOut, "monbench: %v\n", err)
				return 1
			}
			fmt.Fprintf(out, "\nwrote %s\n", *jsonPath)
		}
		if *baseline != "" {
			return gateAgainstBaseline(*baseline, art, *tolerance, out, errOut)
		}
		return 0
	}

	cfg := experiment.DefaultOverheadConfig()
	if *quick {
		cfg.Intervals = []time.Duration{
			5 * time.Millisecond, 10 * time.Millisecond,
			20 * time.Millisecond, 30 * time.Millisecond,
		}
		cfg.Ops = 4000
		cfg.Repeats = 2
	}
	if *intervals != "" {
		cfg.Intervals = nil
		for _, s := range strings.Split(*intervals, ",") {
			d, err := time.ParseDuration(strings.TrimSpace(s))
			if err != nil {
				fmt.Fprintf(errOut, "monbench: bad interval %q: %v\n", s, err)
				return 2
			}
			cfg.Intervals = append(cfg.Intervals, d)
		}
	}
	if *workloads != "" {
		cfg.Workloads = nil
		for _, s := range strings.Split(*workloads, ",") {
			cfg.Workloads = append(cfg.Workloads, experiment.Workload(strings.TrimSpace(s)))
		}
	}
	if *ops > 0 {
		cfg.Ops = *ops
	}
	if *procs > 0 {
		cfg.Procs = *procs
	}
	if *repeats > 0 {
		cfg.Repeats = *repeats
	}
	cfg.SuspendOverhead = *suspend

	fmt.Fprintf(out, "E2 (Table 1): ops=%d procs=%d repeats=%d suspend=%v\n\n",
		cfg.Ops, cfg.Procs, cfg.Repeats, cfg.SuspendOverhead)
	rows, err := experiment.RunOverhead(cfg)
	if err != nil {
		fmt.Fprintf(errOut, "monbench: %v\n", err)
		return 1
	}
	fmt.Fprint(out, experiment.Table1(rows).String())
	fmt.Fprintln(out)
	detail := experiment.NewTable("workload", "interval", "checks", "events", "ratio", "events/sec")
	for _, r := range rows {
		// Events are summed over cfg.Repeats extended runs of mean
		// duration r.Extended, so throughput is Events/(Repeats·Extended).
		var eps float64
		if total := r.Extended.Seconds() * float64(cfg.Repeats); total > 0 {
			eps = float64(r.Events) / total
		}
		detail.AddRow(string(r.Workload), r.Interval.String(),
			fmt.Sprint(r.Checks), fmt.Sprint(r.Events),
			experiment.FormatRatio(r.Ratio), experiment.FormatEventsPerSec(eps))
	}
	fmt.Fprint(out, detail.String())
	fmt.Fprintln(out, "\npaper's shape check: ratio should fall as the interval grows;")
	fmt.Fprintln(out, "the paper reports ≈7x at 0.5s falling toward ≈4x at 3.0s (2001 JVM).")
	art := benchArtefact{
		Kind:        "E2-overhead",
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Config: map[string]any{
			"ops": cfg.Ops, "procs": cfg.Procs, "repeats": cfg.Repeats,
			"suspend_ns": cfg.SuspendOverhead.Nanoseconds(),
		},
	}
	for _, r := range rows {
		var eps float64
		if total := r.Extended.Seconds() * float64(cfg.Repeats); total > 0 {
			eps = float64(r.Events) / total
		}
		art.Rows = append(art.Rows, map[string]any{
			"workload": string(r.Workload), "interval_ns": r.Interval.Nanoseconds(),
			"ratio": r.Ratio, "checks": r.Checks, "events": r.Events,
			"events_per_sec": eps,
		})
	}
	if *jsonPath != "" {
		if err := writeArtefact(*jsonPath, art); err != nil {
			fmt.Fprintf(errOut, "monbench: %v\n", err)
			return 1
		}
		fmt.Fprintf(out, "\nwrote %s\n", *jsonPath)
	}
	if *baseline != "" {
		return gateAgainstBaseline(*baseline, art, *tolerance, out, errOut)
	}
	return 0
}

// scalingFlags carries the E4 sweep's command-line configuration.
type scalingFlags struct {
	monitorCounts string
	ops, procs    int
	repeats       int
	intervals     string
	workers       int
	global        bool
	adaptive      bool
	batch         int
	batchwriters  bool
	tracestore    bool
	recordpath    bool
	obsoverhead   bool
	collector     bool
	soak          bool
	obsrules      bool
	jsonPath      string
	baseline      string
	tolerance     float64
}

// runTraceStore executes the E5 trace-store sweep and returns its
// artefact rows and config entries (exit code non-zero on failure).
// The rows carry "bench":"tracestore" so they can share an artefact
// with E4 rows without colliding in the gate's key space.
func runTraceStore(repeats int, out, errOut io.Writer) ([]map[string]any, map[string]any, int) {
	cfg := experiment.DefaultTraceStoreConfig()
	if repeats > 0 {
		cfg.Repeats = repeats
	}
	fmt.Fprintf(out, "E5 (trace store): events=%d monitors=%d segment=%d window=%.0f%% repeats=%d\n\n",
		cfg.Events, cfg.Monitors, cfg.SegmentEvents, cfg.Window*100, cfg.Repeats)
	rows, err := experiment.RunTraceStore(cfg)
	if err != nil {
		fmt.Fprintf(errOut, "monbench: %v\n", err)
		return nil, nil, 1
	}
	fmt.Fprint(out, experiment.TraceStoreTable(rows).String())
	var full, seek time.Duration
	for _, r := range rows {
		switch r.Mode {
		case "full":
			full = r.Elapsed
		case "seek":
			seek = r.Elapsed
		}
	}
	if seek > 0 {
		fmt.Fprintf(out, "\nwindowed replay is %.1fx faster than a full ReadDir for a %.0f%% window\n",
			float64(full)/float64(seek), cfg.Window*100)
	}
	var artRows []map[string]any
	for _, r := range rows {
		artRows = append(artRows, map[string]any{
			"bench": "tracestore", "replay": r.Mode,
			"events": r.Events, "elapsed_ns": r.Elapsed.Nanoseconds(),
			"events_per_sec": r.EventsPerSec,
			"files_opened":   r.FilesOpened, "files_total": r.FilesTotal,
		})
	}
	cfgEntries := map[string]any{
		"store_events": cfg.Events, "store_monitors": cfg.Monitors,
		"store_segment_events": cfg.SegmentEvents,
		"store_max_file_bytes": cfg.MaxFileBytes,
		"store_window":         cfg.Window,
		"store_repeats":        cfg.Repeats,
	}
	return artRows, cfgEntries, 0
}

// runRecordPathSweep executes the E6 record-path sweep and returns its
// artefact rows and config entries (exit code non-zero on failure).
// The rows carry "bench":"recordpath" so they can share an artefact
// with E4/E5 rows without colliding in the gate's key space; the
// bytes/allocs-per-event measurements are gated alongside events/sec,
// so an allocation creeping back into the ingest hot loop fails CI
// like a throughput regression does.
func runRecordPathSweep(repeats int, out, errOut io.Writer) ([]map[string]any, map[string]any, int) {
	cfg := experiment.DefaultRecordPathConfig()
	if repeats > 0 {
		cfg.Repeats = repeats
	}
	fmt.Fprintf(out, "E6 (record path): producers/monitor=%d events/producer=%d batch=%d drain-every=%d repeats=%d\n\n",
		cfg.ProducersPerMonitor, cfg.EventsPerProducer, cfg.Batch, cfg.DrainEveryEvents, cfg.Repeats)
	rows, err := experiment.RunRecordPath(cfg)
	if err != nil {
		fmt.Fprintf(errOut, "monbench: %v\n", err)
		return nil, nil, 1
	}
	fmt.Fprint(out, experiment.RecordPathTable(rows).String())
	// Headline: batch speedup over singleton Append at the largest
	// monitor count (the acceptance shape).
	byMode := map[string]experiment.RecordPathRow{}
	maxMon := 0
	for _, r := range rows {
		if r.Monitors > maxMon {
			maxMon = r.Monitors
		}
	}
	for _, r := range rows {
		if r.Monitors == maxMon {
			byMode[r.Mode] = r
		}
	}
	if a, b := byMode["append"], byMode["batch"]; a.EventsPerSec > 0 {
		fmt.Fprintf(out, "\nbatched ingest is %.1fx the singleton-Append rate at %d monitors\n",
			b.EventsPerSec/a.EventsPerSec, maxMon)
	}
	var artRows []map[string]any
	for _, r := range rows {
		artRows = append(artRows, map[string]any{
			"bench": "recordpath", "mode": r.Mode,
			"monitors": r.Monitors, "producers": r.Producers, "batch": r.Batch,
			"events": r.Events, "elapsed_ns": r.Elapsed.Nanoseconds(),
			"events_per_sec": r.EventsPerSec, "ns_per_event": r.NsPerEvent,
			"bytes_per_event": r.BytesPerEvent, "allocs_per_event": r.AllocsPerEvent,
		})
	}
	cfgEntries := map[string]any{
		"recordpath_producers_per_monitor": cfg.ProducersPerMonitor,
		"recordpath_events_per_producer":   cfg.EventsPerProducer,
		"recordpath_batch":                 cfg.Batch,
		"recordpath_drain_every":           cfg.DrainEveryEvents,
		"recordpath_repeats":               cfg.Repeats,
	}
	return artRows, cfgEntries, 0
}

// obsOverheadSelfGatePct is the standalone sanity bound on the E7
// instrumented-vs-stripped throughput cost: an overhead past half the
// stripped rate means the "nil-check or one atomic" contract broke
// (a lock or allocation landed on the hot path), which no container
// noise produces. Finer regressions are the baseline gate's job.
const obsOverheadSelfGatePct = 50.0

// runObsOverheadSweep executes the E7 self-observability sweep and
// returns its artefact rows and config entries (exit code non-zero on
// failure). The rows carry "bench":"obsoverhead"; the increment row's
// allocs-per-event is the allocation-free claim and is self-gated
// against the gate's own noise floor — instrumentation that allocates
// per increment fails here even without a baseline. The instrumented
// row's events/sec rides the normal baseline gate, so creeping
// overhead fails CI like any throughput regression.
func runObsOverheadSweep(repeats int, out, errOut io.Writer) ([]map[string]any, map[string]any, int) {
	cfg := experiment.DefaultObsOverheadConfig()
	if repeats > 0 {
		cfg.Repeats = repeats
	}
	fmt.Fprintf(out, "E7 (obs overhead): monitors=%d producers/monitor=%d events/producer=%d increment-ops=%d repeats=%d\n\n",
		cfg.Monitors, cfg.ProducersPerMonitor, cfg.EventsPerProducer, cfg.IncrementOps, cfg.Repeats)
	rows, err := experiment.RunObsOverhead(cfg)
	if err != nil {
		fmt.Fprintf(errOut, "monbench: %v\n", err)
		return nil, nil, 1
	}
	fmt.Fprint(out, experiment.ObsOverheadTable(rows).String())
	for _, r := range rows {
		switch r.Mode {
		case "instrumented":
			fmt.Fprintf(out, "\ninstrumentation costs %.2f%% of stripped ingest throughput\n", r.OverheadPct)
			if r.OverheadPct > obsOverheadSelfGatePct {
				fmt.Fprintf(errOut, "monbench: obs overhead %.2f%% exceeds the %.0f%% sanity bound — instrumentation is no longer allocation- and lock-free\n",
					r.OverheadPct, obsOverheadSelfGatePct)
				return nil, nil, 1
			}
		case "increment":
			if r.AllocsPerEvent > allocFloorPerEvent {
				fmt.Fprintf(errOut, "monbench: obs increment path allocates %.3f/op (claim: 0, noise floor %.2f)\n",
					r.AllocsPerEvent, allocFloorPerEvent)
				return nil, nil, 1
			}
		}
	}
	var artRows []map[string]any
	for _, r := range rows {
		artRows = append(artRows, map[string]any{
			"bench": "obsoverhead", "mode": r.Mode, "monitors": r.Monitors,
			"events": r.Events, "elapsed_ns": r.Elapsed.Nanoseconds(),
			"events_per_sec": r.EventsPerSec, "ns_per_event": r.NsPerEvent,
			"allocs_per_event": r.AllocsPerEvent, "overhead_pct": r.OverheadPct,
		})
	}
	cfgEntries := map[string]any{
		"obsoverhead_monitors":              cfg.Monitors,
		"obsoverhead_producers_per_monitor": cfg.ProducersPerMonitor,
		"obsoverhead_events_per_producer":   cfg.EventsPerProducer,
		"obsoverhead_drain_every":           cfg.DrainEveryEvents,
		"obsoverhead_increment_ops":         cfg.IncrementOps,
		"obsoverhead_repeats":               cfg.Repeats,
	}
	return artRows, cfgEntries, 0
}

// runCollectorSweep executes the E8 collector sweep and returns its
// artefact rows and config entries (exit code non-zero on failure).
// The rows carry "bench":"collector" so they can share an artefact
// with the other sweeps; the fleet rows' events/sec ride the normal
// baseline gate, so a regression in the framing, ack or resume path
// fails CI like any throughput regression.
func runCollectorSweep(repeats int, out, errOut io.Writer) ([]map[string]any, map[string]any, int) {
	cfg := experiment.DefaultCollectorConfig()
	if repeats > 0 {
		cfg.Repeats = repeats
	}
	fmt.Fprintf(out, "E8 (collector): segments/producer=%d events/segment=%d repeats=%d\n\n",
		cfg.SegmentsPerProducer, cfg.EventsPerSegment, cfg.Repeats)
	rows, err := experiment.RunCollector(cfg)
	if err != nil {
		fmt.Fprintf(errOut, "monbench: %v\n", err)
		return nil, nil, 1
	}
	fmt.Fprint(out, experiment.CollectorTable(rows).String())
	// Headline: the wire-hop cost (1 fleet producer vs the local
	// baseline) and the largest fleet cell's share of local throughput.
	var local, one, widest experiment.CollectorRow
	for _, r := range rows {
		switch {
		case r.Mode == "local":
			local = r
		case r.Producers == 1:
			one = r
		}
		if r.Mode == "fleet" && r.Producers > widest.Producers {
			widest = r
		}
	}
	if local.EventsPerSec > 0 && one.EventsPerSec > 0 {
		fmt.Fprintf(out, "\none shipped producer runs at %.0f%% of local WALSink throughput; %d producers at %.0f%%\n",
			100*one.EventsPerSec/local.EventsPerSec, widest.Producers,
			100*widest.EventsPerSec/local.EventsPerSec)
	}
	var artRows []map[string]any
	for _, r := range rows {
		artRows = append(artRows, map[string]any{
			"bench": "collector", "mode": r.Mode, "producers": r.Producers,
			"records": r.Records, "events": r.Events,
			"elapsed_ns":     r.Elapsed.Nanoseconds(),
			"events_per_sec": r.EventsPerSec, "records_per_sec": r.RecordsPerSec,
		})
	}
	cfgEntries := map[string]any{
		"collector_segments_per_producer": cfg.SegmentsPerProducer,
		"collector_events_per_segment":    cfg.EventsPerSegment,
		"collector_repeats":               cfg.Repeats,
	}
	return artRows, cfgEntries, 0
}

// soakSelfGateRatio bounds how much the peak heap of the largest E9
// backlog may exceed the smallest one's. The streaming compactor's
// memory tracks the chunk budget, not the backlog, so the ratio should
// hover near 1; a 4x backlog growth pushing peak heap past this bound
// means the pass buffers the backlog again, which no sampler noise
// produces. Finer regressions are the baseline gate's job
// (peak_heap_bytes rides it like any other measurement).
const soakSelfGateRatio = 3.0

// runSoakSweep executes the E9 long-horizon compaction sweep and
// returns its artefact rows and config entries (exit code non-zero on
// failure). The rows carry "bench":"soak"; peak_heap_bytes is both
// self-gated (backlog-proportional growth fails standalone) and
// baseline-gated, so the bounded-memory claim regressing fails CI like
// a throughput regression.
func runSoakSweep(repeats int, out, errOut io.Writer) ([]map[string]any, map[string]any, int) {
	cfg := experiment.DefaultSoakBenchConfig()
	if repeats > 0 {
		cfg.Repeats = repeats
	}
	fmt.Fprintf(out, "E9 (long-horizon compaction): monitors=%d segment=%d chunk=%d retain=%.0f%% repeats=%d\n\n",
		cfg.Monitors, cfg.SegmentEvents, cfg.ChunkEvents, cfg.RetainFrac*100, cfg.Repeats)
	rows, err := experiment.RunSoakBench(cfg)
	if err != nil {
		fmt.Fprintf(errOut, "monbench: %v\n", err)
		return nil, nil, 1
	}
	fmt.Fprint(out, experiment.SoakBenchTable(rows).String())
	small, large := rows[0], rows[len(rows)-1]
	if large.Backlog > small.Backlog {
		// A fast pass can report a zero peak (GC keeps HeapAlloc at the
		// baseline); a 1 MiB denominator floor keeps the ratio meaningful.
		denom := float64(small.PeakHeapBytes)
		if denom < 1<<20 {
			denom = 1 << 20
		}
		ratio := float64(large.PeakHeapBytes) / denom
		fmt.Fprintf(out, "\na %dx larger backlog costs %.1fx the peak heap (streaming bound: ~1x)\n",
			large.Backlog/small.Backlog, ratio)
		if ratio > soakSelfGateRatio && float64(large.PeakHeapBytes-small.PeakHeapBytes) > heapFloorBytes {
			fmt.Fprintf(errOut, "monbench: peak heap grew %.1fx across a %dx backlog growth (bound %.1fx) — compaction memory tracks the backlog, not the chunk budget\n",
				ratio, large.Backlog/small.Backlog, soakSelfGateRatio)
			return nil, nil, 1
		}
	}
	var artRows []map[string]any
	for _, r := range rows {
		artRows = append(artRows, map[string]any{
			"bench": "soak", "backlog": r.Backlog,
			"bytes_in": r.BytesIn, "bytes_reclaimed": r.BytesReclaimed,
			"events": r.EventsOut, "events_dropped": r.EventsDropped,
			"peak_heap_bytes": r.PeakHeapBytes,
			"elapsed_ns":      r.Elapsed.Nanoseconds(),
			"files_in":        r.FilesIn, "files_out": r.FilesOut,
		})
	}
	cfgEntries := map[string]any{
		"soak_monitors":       cfg.Monitors,
		"soak_segment_events": cfg.SegmentEvents,
		"soak_max_file_bytes": cfg.MaxFileBytes,
		"soak_chunk_events":   cfg.ChunkEvents,
		"soak_retain_frac":    cfg.RetainFrac,
		"soak_repeats":        cfg.Repeats,
	}
	return artRows, cfgEntries, 0
}

// runObsRulesSweep executes the E10 threshold-rule sweep and returns
// its artefact rows and config entries (exit code non-zero on
// failure). The rows carry "bench":"obsrules"; the quiet row's
// allocs-per-event is the zero-alloc claim of the steady-state rule
// walk and is self-gated against the shared noise floor — a rule
// engine that allocates when nothing transitions fails here even
// without a baseline. Both rows' evals/sec ride the normal baseline
// gate, so a slowdown in the per-snapshot walk fails CI like any
// throughput regression.
func runObsRulesSweep(repeats int, out, errOut io.Writer) ([]map[string]any, map[string]any, int) {
	cfg := experiment.DefaultObsRulesConfig()
	if repeats > 0 {
		cfg.Repeats = repeats
	}
	fmt.Fprintf(out, "E10 (threshold rules): rules=%d metrics=%d evals=%d flap-every=%d repeats=%d\n\n",
		cfg.Rules, cfg.Metrics, cfg.Evals, cfg.FlapEvery, cfg.Repeats)
	rows, err := experiment.RunObsRules(cfg)
	if err != nil {
		fmt.Fprintf(errOut, "monbench: %v\n", err)
		return nil, nil, 1
	}
	fmt.Fprint(out, experiment.ObsRulesTable(rows).String())
	for _, r := range rows {
		if r.Mode == "quiet" && r.AllocsPerEval > allocFloorPerEvent {
			fmt.Fprintf(errOut, "monbench: obs-rules quiet path allocates %.3f/eval (claim: 0, noise floor %.2f)\n",
				r.AllocsPerEval, allocFloorPerEvent)
			return nil, nil, 1
		}
	}
	if q, f := rows[0], rows[1]; q.NsPerEval > 0 {
		fmt.Fprintf(out, "\nflapping churn costs %.1fx the quiet walk per eval\n", f.NsPerEval/q.NsPerEval)
	}
	var artRows []map[string]any
	for _, r := range rows {
		artRows = append(artRows, map[string]any{
			"bench": "obsrules", "mode": r.Mode,
			"rules": r.Rules, "metrics": r.Metrics,
			"events": r.Evals, "transitions": r.Transitions,
			"elapsed_ns":     r.Elapsed.Nanoseconds(),
			"events_per_sec": r.EvalsPerSec, "ns_per_event": r.NsPerEval,
			"allocs_per_event": r.AllocsPerEval,
		})
	}
	cfgEntries := map[string]any{
		"obsrules_rules":      cfg.Rules,
		"obsrules_metrics":    cfg.Metrics,
		"obsrules_evals":      cfg.Evals,
		"obsrules_flap_every": cfg.FlapEvery,
		"obsrules_repeats":    cfg.Repeats,
	}
	return artRows, cfgEntries, 0
}

// runScaling executes the E4 many-monitor sweep (-monitors).
func runScaling(f scalingFlags, out, errOut io.Writer) int {
	cfg := experiment.DefaultScalingConfig()
	cfg.Monitors = nil
	for _, s := range strings.Split(f.monitorCounts, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n <= 0 {
			fmt.Fprintf(errOut, "monbench: bad monitor count %q\n", s)
			return 2
		}
		cfg.Monitors = append(cfg.Monitors, n)
	}
	if f.intervals != "" {
		if strings.Contains(f.intervals, ",") {
			fmt.Fprintf(errOut, "monbench: -monitors sweeps monitor counts at one checking interval; give a single -intervals value (got %q)\n", f.intervals)
			return 2
		}
		d, err := time.ParseDuration(strings.TrimSpace(f.intervals))
		if err != nil {
			fmt.Fprintf(errOut, "monbench: bad interval %q: %v\n", f.intervals, err)
			return 2
		}
		cfg.Interval = d
	}
	if f.ops > 0 {
		cfg.OpsPerMonitor = f.ops
	}
	if f.procs > 0 {
		cfg.ProcsPerMonitor = f.procs
	}
	cfg.Workers = f.workers
	cfg.GlobalLock = f.global
	cfg.Adaptive = f.adaptive
	cfg.BatchSize = f.batch
	cfg.BatchWriters = f.batchwriters
	cfg.Repeats = f.repeats

	db := "sharded"
	if f.global {
		db = "global-lock"
	}
	recorder := "direct"
	if f.batchwriters {
		recorder = "batchwriter"
	}
	fmt.Fprintf(out, "E4 (scaling): ops/monitor=%d procs/monitor=%d interval=%v workers=%d db=%s adaptive=%v batch=%d recorder=%s\n\n",
		cfg.OpsPerMonitor, cfg.ProcsPerMonitor, cfg.Interval, cfg.Workers, db, cfg.Adaptive, cfg.BatchSize, recorder)
	rows, err := experiment.RunScaling(cfg)
	if err != nil {
		fmt.Fprintf(errOut, "monbench: %v\n", err)
		return 1
	}
	fmt.Fprint(out, experiment.ScalingTable(rows).String())
	fmt.Fprintln(out, "\nshape check: events/sec should hold (or grow) as monitors are added —")
	fmt.Fprintln(out, "per-monitor shards remove DB contention and the checkpoint worker pool")
	fmt.Fprintln(out, "spreads replay; compare against -globallock for the pre-sharding profile.")
	fmt.Fprintln(out, "check p99 is the batched-replay target: it should stay bounded as segments grow.")
	art := benchArtefact{
		Kind:        "E4-scaling",
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Config: map[string]any{
			"ops_per_monitor": cfg.OpsPerMonitor, "procs_per_monitor": cfg.ProcsPerMonitor,
			"interval_ns": cfg.Interval.Nanoseconds(), "workers": cfg.Workers,
			"db": db, "adaptive": cfg.Adaptive, "batch": cfg.BatchSize,
			"recorder": recorder, "repeats": cfg.Repeats,
		},
	}
	for _, r := range rows {
		art.Rows = append(art.Rows, map[string]any{
			"monitors": r.Monitors, "checkpoint": r.CheckpointName(),
			"scheduler": r.SchedName(), "batch": r.BatchSize,
			"elapsed_ns": r.Elapsed.Nanoseconds(), "events": r.Events,
			"checks": r.Checks, "events_per_sec": r.EventsPerSec,
			"checkpoint_p50_ns": r.CheckP50.Nanoseconds(),
			"checkpoint_p99_ns": r.CheckP99.Nanoseconds(),
		})
	}
	if f.tracestore {
		fmt.Fprintln(out)
		storeRows, storeCfg, code := runTraceStore(f.repeats, out, errOut)
		if code != 0 {
			return code
		}
		// One artefact for both sweeps: the E5 rows are keyed apart by
		// their "bench" field, the config blocks merge disjoint keys.
		art.Rows = append(art.Rows, storeRows...)
		for k, v := range storeCfg {
			art.Config[k] = v
		}
	}
	if f.recordpath {
		fmt.Fprintln(out)
		rpRows, rpCfg, code := runRecordPathSweep(f.repeats, out, errOut)
		if code != 0 {
			return code
		}
		art.Rows = append(art.Rows, rpRows...)
		for k, v := range rpCfg {
			art.Config[k] = v
		}
	}
	if f.obsoverhead {
		fmt.Fprintln(out)
		obsRows, obsCfg, code := runObsOverheadSweep(f.repeats, out, errOut)
		if code != 0 {
			return code
		}
		art.Rows = append(art.Rows, obsRows...)
		for k, v := range obsCfg {
			art.Config[k] = v
		}
	}
	if f.collector {
		fmt.Fprintln(out)
		colRows, colCfg, code := runCollectorSweep(f.repeats, out, errOut)
		if code != 0 {
			return code
		}
		art.Rows = append(art.Rows, colRows...)
		for k, v := range colCfg {
			art.Config[k] = v
		}
	}
	if f.soak {
		fmt.Fprintln(out)
		soakRows, soakCfg, code := runSoakSweep(f.repeats, out, errOut)
		if code != 0 {
			return code
		}
		art.Rows = append(art.Rows, soakRows...)
		for k, v := range soakCfg {
			art.Config[k] = v
		}
	}
	if f.obsrules {
		fmt.Fprintln(out)
		orRows, orCfg, code := runObsRulesSweep(f.repeats, out, errOut)
		if code != 0 {
			return code
		}
		art.Rows = append(art.Rows, orRows...)
		for k, v := range orCfg {
			art.Config[k] = v
		}
	}
	if f.jsonPath != "" {
		if err := writeArtefact(f.jsonPath, art); err != nil {
			fmt.Fprintf(errOut, "monbench: %v\n", err)
			return 1
		}
		fmt.Fprintf(out, "\nwrote %s\n", f.jsonPath)
	}
	if f.baseline != "" {
		return gateAgainstBaseline(f.baseline, art, f.tolerance, out, errOut)
	}
	return 0
}
