// Command monbench regenerates the paper's Table 1: the overhead ratio
// of the augmented monitor construct (history recording + periodic
// fault detection) over the bare monitor, swept across checking
// intervals and the three monitor-class workloads.
//
//	monbench                      # paper-scale sweep (0.5s, 1s, 2s, 3s)
//	monbench -quick               # scaled-down sweep for a fast look
//	monbench -intervals 250ms,1s  # custom intervals
//	monbench -arch                # print the Figure 1 architecture
//	monbench -monitors 1,4,16     # E4: many-monitor scaling sweep
//
// Absolute ratios depend on the host; the paper's shape — the ratio
// falls as the checking interval grows — is what to compare. Every
// sweep also reports events/sec (recording throughput) so successive
// PRs can track the performance trajectory.
//
// The -monitors sweep drives N independent monitors into one sharded
// history database and one detector, comparing the paper-faithful
// stop-the-world checkpoint against the per-monitor pipeline;
// -globallock reruns it on the legacy single-mutex database to show
// the contention the sharding removed.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"robustmon/internal/experiment"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the tool against args, writing to out/errOut; split from
// main for testability.
func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("monbench", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		arch      = fs.Bool("arch", false, "print the Figure 1 architecture and exit")
		quick     = fs.Bool("quick", false, "scaled-down sweep (ms intervals, fewer ops)")
		intervals = fs.String("intervals", "", "comma-separated checking intervals (e.g. 500ms,1s,2s,3s)")
		ops       = fs.Int("ops", 0, "monitor operations per measurement (0 = default)")
		procs     = fs.Int("procs", 0, "concurrent processes (0 = default)")
		repeats   = fs.Int("repeats", 0, "repetitions per cell (0 = default)")
		workloads = fs.String("workloads", "", "comma-separated workloads: coordinator,allocator,manager")
		suspend   = fs.Duration("suspend", 0, "simulated per-checkpoint process-suspension cost (models the 2001 JVM prototype; 0 = native)")
		monitors  = fs.String("monitors", "", "comma-separated monitor counts for the E4 scaling sweep (e.g. 1,4,16); empty = run E2 instead. E4 honours -ops, -procs, a single -intervals value, -workers and -globallock; the other E2 flags do not apply")
		workers   = fs.Int("workers", 0, "checkpoint worker-pool bound for -monitors (0 = auto)")
		global    = fs.Bool("globallock", false, "run -monitors against the legacy single-mutex history database")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *arch {
		fmt.Fprint(out, experiment.Figure1().String())
		if err := experiment.VerifyFigure1(); err != nil {
			fmt.Fprintf(errOut, "monbench: architecture verification FAILED: %v\n", err)
			return 1
		}
		fmt.Fprintln(out, "\narchitecture verified: every edge carries data (E3)")
		return 0
	}

	if *monitors != "" {
		return runScaling(*monitors, *ops, *procs, *intervals, *workers, *global, out, errOut)
	}

	cfg := experiment.DefaultOverheadConfig()
	if *quick {
		cfg.Intervals = []time.Duration{
			5 * time.Millisecond, 10 * time.Millisecond,
			20 * time.Millisecond, 30 * time.Millisecond,
		}
		cfg.Ops = 4000
		cfg.Repeats = 2
	}
	if *intervals != "" {
		cfg.Intervals = nil
		for _, s := range strings.Split(*intervals, ",") {
			d, err := time.ParseDuration(strings.TrimSpace(s))
			if err != nil {
				fmt.Fprintf(errOut, "monbench: bad interval %q: %v\n", s, err)
				return 2
			}
			cfg.Intervals = append(cfg.Intervals, d)
		}
	}
	if *workloads != "" {
		cfg.Workloads = nil
		for _, s := range strings.Split(*workloads, ",") {
			cfg.Workloads = append(cfg.Workloads, experiment.Workload(strings.TrimSpace(s)))
		}
	}
	if *ops > 0 {
		cfg.Ops = *ops
	}
	if *procs > 0 {
		cfg.Procs = *procs
	}
	if *repeats > 0 {
		cfg.Repeats = *repeats
	}
	cfg.SuspendOverhead = *suspend

	fmt.Fprintf(out, "E2 (Table 1): ops=%d procs=%d repeats=%d suspend=%v\n\n",
		cfg.Ops, cfg.Procs, cfg.Repeats, cfg.SuspendOverhead)
	rows, err := experiment.RunOverhead(cfg)
	if err != nil {
		fmt.Fprintf(errOut, "monbench: %v\n", err)
		return 1
	}
	fmt.Fprint(out, experiment.Table1(rows).String())
	fmt.Fprintln(out)
	detail := experiment.NewTable("workload", "interval", "checks", "events", "ratio", "events/sec")
	for _, r := range rows {
		// Events are summed over cfg.Repeats extended runs of mean
		// duration r.Extended, so throughput is Events/(Repeats·Extended).
		var eps float64
		if total := r.Extended.Seconds() * float64(cfg.Repeats); total > 0 {
			eps = float64(r.Events) / total
		}
		detail.AddRow(string(r.Workload), r.Interval.String(),
			fmt.Sprint(r.Checks), fmt.Sprint(r.Events),
			experiment.FormatRatio(r.Ratio), experiment.FormatEventsPerSec(eps))
	}
	fmt.Fprint(out, detail.String())
	fmt.Fprintln(out, "\npaper's shape check: ratio should fall as the interval grows;")
	fmt.Fprintln(out, "the paper reports ≈7x at 0.5s falling toward ≈4x at 3.0s (2001 JVM).")
	return 0
}

// runScaling executes the E4 many-monitor sweep (-monitors).
func runScaling(monitorCounts string, ops, procs int, intervals string, workers int, global bool, out, errOut io.Writer) int {
	cfg := experiment.DefaultScalingConfig()
	cfg.Monitors = nil
	for _, s := range strings.Split(monitorCounts, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n <= 0 {
			fmt.Fprintf(errOut, "monbench: bad monitor count %q\n", s)
			return 2
		}
		cfg.Monitors = append(cfg.Monitors, n)
	}
	if intervals != "" {
		if strings.Contains(intervals, ",") {
			fmt.Fprintf(errOut, "monbench: -monitors sweeps monitor counts at one checking interval; give a single -intervals value (got %q)\n", intervals)
			return 2
		}
		d, err := time.ParseDuration(strings.TrimSpace(intervals))
		if err != nil {
			fmt.Fprintf(errOut, "monbench: bad interval %q: %v\n", intervals, err)
			return 2
		}
		cfg.Interval = d
	}
	if ops > 0 {
		cfg.OpsPerMonitor = ops
	}
	if procs > 0 {
		cfg.ProcsPerMonitor = procs
	}
	cfg.Workers = workers
	cfg.GlobalLock = global

	db := "sharded"
	if global {
		db = "global-lock"
	}
	fmt.Fprintf(out, "E4 (scaling): ops/monitor=%d procs/monitor=%d interval=%v workers=%d db=%s\n\n",
		cfg.OpsPerMonitor, cfg.ProcsPerMonitor, cfg.Interval, cfg.Workers, db)
	rows, err := experiment.RunScaling(cfg)
	if err != nil {
		fmt.Fprintf(errOut, "monbench: %v\n", err)
		return 1
	}
	fmt.Fprint(out, experiment.ScalingTable(rows).String())
	fmt.Fprintln(out, "\nshape check: events/sec should hold (or grow) as monitors are added —")
	fmt.Fprintln(out, "per-monitor shards remove DB contention and the checkpoint worker pool")
	fmt.Fprintln(out, "spreads replay; compare against -globallock for the pre-sharding profile.")
	return 0
}
