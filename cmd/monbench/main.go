// Command monbench regenerates the paper's Table 1: the overhead ratio
// of the augmented monitor construct (history recording + periodic
// fault detection) over the bare monitor, swept across checking
// intervals and the three monitor-class workloads.
//
//	monbench                      # paper-scale sweep (0.5s, 1s, 2s, 3s)
//	monbench -quick               # scaled-down sweep for a fast look
//	monbench -intervals 250ms,1s  # custom intervals
//	monbench -arch                # print the Figure 1 architecture
//
// Absolute ratios depend on the host; the paper's shape — the ratio
// falls as the checking interval grows — is what to compare.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"robustmon/internal/experiment"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the tool against args, writing to out/errOut; split from
// main for testability.
func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("monbench", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		arch      = fs.Bool("arch", false, "print the Figure 1 architecture and exit")
		quick     = fs.Bool("quick", false, "scaled-down sweep (ms intervals, fewer ops)")
		intervals = fs.String("intervals", "", "comma-separated checking intervals (e.g. 500ms,1s,2s,3s)")
		ops       = fs.Int("ops", 0, "monitor operations per measurement (0 = default)")
		procs     = fs.Int("procs", 0, "concurrent processes (0 = default)")
		repeats   = fs.Int("repeats", 0, "repetitions per cell (0 = default)")
		workloads = fs.String("workloads", "", "comma-separated workloads: coordinator,allocator,manager")
		suspend   = fs.Duration("suspend", 0, "simulated per-checkpoint process-suspension cost (models the 2001 JVM prototype; 0 = native)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *arch {
		fmt.Fprint(out, experiment.Figure1().String())
		if err := experiment.VerifyFigure1(); err != nil {
			fmt.Fprintf(errOut, "monbench: architecture verification FAILED: %v\n", err)
			return 1
		}
		fmt.Fprintln(out, "\narchitecture verified: every edge carries data (E3)")
		return 0
	}

	cfg := experiment.DefaultOverheadConfig()
	if *quick {
		cfg.Intervals = []time.Duration{
			5 * time.Millisecond, 10 * time.Millisecond,
			20 * time.Millisecond, 30 * time.Millisecond,
		}
		cfg.Ops = 4000
		cfg.Repeats = 2
	}
	if *intervals != "" {
		cfg.Intervals = nil
		for _, s := range strings.Split(*intervals, ",") {
			d, err := time.ParseDuration(strings.TrimSpace(s))
			if err != nil {
				fmt.Fprintf(errOut, "monbench: bad interval %q: %v\n", s, err)
				return 2
			}
			cfg.Intervals = append(cfg.Intervals, d)
		}
	}
	if *workloads != "" {
		cfg.Workloads = nil
		for _, s := range strings.Split(*workloads, ",") {
			cfg.Workloads = append(cfg.Workloads, experiment.Workload(strings.TrimSpace(s)))
		}
	}
	if *ops > 0 {
		cfg.Ops = *ops
	}
	if *procs > 0 {
		cfg.Procs = *procs
	}
	if *repeats > 0 {
		cfg.Repeats = *repeats
	}
	cfg.SuspendOverhead = *suspend

	fmt.Fprintf(out, "E2 (Table 1): ops=%d procs=%d repeats=%d suspend=%v\n\n",
		cfg.Ops, cfg.Procs, cfg.Repeats, cfg.SuspendOverhead)
	rows, err := experiment.RunOverhead(cfg)
	if err != nil {
		fmt.Fprintf(errOut, "monbench: %v\n", err)
		return 1
	}
	fmt.Fprint(out, experiment.Table1(rows).String())
	fmt.Fprintln(out)
	detail := experiment.NewTable("workload", "interval", "checks", "events", "ratio")
	for _, r := range rows {
		detail.AddRow(string(r.Workload), r.Interval.String(),
			fmt.Sprint(r.Checks), fmt.Sprint(r.Events), experiment.FormatRatio(r.Ratio))
	}
	fmt.Fprint(out, detail.String())
	fmt.Fprintln(out, "\npaper's shape check: ratio should fall as the interval grows;")
	fmt.Fprintln(out, "the paper reports ≈7x at 0.5s falling toward ≈4x at 3.0s (2001 JVM).")
	return 0
}
