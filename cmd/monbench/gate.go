// The perf gate: compare a fresh sweep artefact against a committed
// baseline (BENCH_scaling.json) and fail on regression. CI builds
// monbench, reruns the baseline's sweep configuration and calls this
// via -baseline; a PR that slows recording throughput or inflates
// checkpoint tail latency beyond the tolerance fails its gate job.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"
)

// latencyFloorNs is the absolute slack applied to latency comparisons:
// p99 deltas below this are scheduler noise on any host (CI containers
// routinely jitter checkpoint tails by several ms, and p99 is
// nearest-rank — the worst observed checkpoint, the noisiest possible
// statistic), not regressions, however large they are relatively. The
// latency gate exists to catch order-of-magnitude stalls — an
// unbatched drain of a huge shard puts p99 tens to hundreds of ms
// over the baseline — while throughput stays the fine-grained
// ±tolerance signal, since it is averaged over the whole run and far
// more stable.
const latencyFloorNs = float64(10 * time.Millisecond)

// allocFloorPerEvent is the absolute slack applied to the E6
// allocs-per-event comparison. The record path's steady state is a few
// thousandths of an allocation per event (pooled slabs amortised over
// drains), so relative tolerance alone would flag GC-assist noise; the
// gate exists to catch an allocation creeping back into the per-event
// hot loop, which jumps the metric by ~1 (one heap object per event)
// or at least ~1/batch-size per staged block. A quarter of an
// allocation per event separates those decisively from noise.
const allocFloorPerEvent = 0.25

// heapFloorBytes is the absolute slack applied to the E9
// peak-heap comparison. The heap sampler observes live allocation
// through GC timing, so a few megabytes of jitter between runs is
// normal on any host; the gate exists to catch the streaming compactor
// regressing to whole-backlog buffering, which inflates the peak by
// the decoded backlog — tens of megabytes at the E9 sweep sizes.
const heapFloorBytes = float64(8 << 20)

// rowKey identifies a sweep cell across artefacts: every config-like
// field of the row, i.e. everything except the measurements.
func rowKey(row map[string]any) string {
	measurements := map[string]bool{
		"events_per_sec": true, "elapsed_ns": true, "checks": true,
		"events": true, "ratio": true,
		"checkpoint_p50_ns": true, "checkpoint_p99_ns": true,
		"files_opened": true, "files_total": true,
		"ns_per_event": true, "bytes_per_event": true, "allocs_per_event": true,
		"overhead_pct": true, "records": true, "records_per_sec": true,
		"peak_heap_bytes": true, "bytes_in": true, "bytes_reclaimed": true,
		"events_dropped": true, "files_in": true, "files_out": true,
		"transitions": true,
	}
	keys := make([]string, 0, len(row))
	for k := range row {
		if !measurements[k] {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		out += fmt.Sprintf("%s=%v|", k, row[k])
	}
	return out
}

// num extracts a numeric field from a normalized row (absent or
// non-numeric fields read as not-ok). Rows reach comparisons only
// after a JSON round-trip, so every number is a float64.
func num(row map[string]any, field string) (float64, bool) {
	v, ok := row[field].(float64)
	return v, ok
}

// normalize round-trips a value through JSON so in-memory artefacts
// (ints, time.Durations) and unmarshalled baselines (float64
// everywhere) compare under one type regime.
func normalize[T any](v T) (T, error) {
	var out T
	blob, err := json.Marshal(v)
	if err != nil {
		return out, err
	}
	if err := json.Unmarshal(blob, &out); err != nil {
		return out, err
	}
	return out, nil
}

// compareArtefacts matches fresh rows to baseline rows by key and
// returns one message per regression: events/sec dropping more than
// tol below the baseline, or checkpoint p99 rising more than tol (and
// more than latencyFloorNs) above it. Baseline rows with no fresh
// counterpart are ignored (sweep configs may shrink); zero matched
// rows is itself an error, since it means the gate compared nothing.
func compareArtefacts(baseline, fresh []map[string]any, tol float64) ([]string, error) {
	base := make(map[string]map[string]any, len(baseline))
	for _, row := range baseline {
		base[rowKey(row)] = row
	}
	matched := 0
	var regressions []string
	for _, row := range fresh {
		bRow, ok := base[rowKey(row)]
		if !ok {
			continue
		}
		matched++
		// Collector (E8) rows measure TCP-loopback shipping all the way
		// to fsynced-ack durability; their per-cell medians spread ~±15%
		// between runs on an idle host (more on shared runners), so the
		// fine-grained band would flake. They gate at twice the
		// tolerance — still catching the wire-path failure classes worth
		// gating (a per-record fsync, a busy-waiting shipper, handshake
		// storms), all of which cost well over half the throughput.
		epsTol := tol
		if kind, _ := row["bench"].(string); kind == "collector" {
			epsTol = 2 * tol
		}
		if bEPS, ok := num(bRow, "events_per_sec"); ok && bEPS > 0 {
			if fEPS, ok := num(row, "events_per_sec"); ok && fEPS < bEPS*(1-epsTol) {
				regressions = append(regressions, fmt.Sprintf(
					"%s events/sec %.0f < baseline %.0f −%d%%",
					rowKey(row), fEPS, bEPS, int(epsTol*100)))
			}
		}
		if bP99, ok := num(bRow, "checkpoint_p99_ns"); ok && bP99 > 0 {
			if fP99, ok := num(row, "checkpoint_p99_ns"); ok &&
				fP99 > bP99*(1+tol) && fP99-bP99 > latencyFloorNs {
				regressions = append(regressions, fmt.Sprintf(
					"%s checkpoint p99 %v > baseline %v +%d%%",
					rowKey(row), time.Duration(fP99), time.Duration(bP99), int(tol*100)))
			}
		}
		// The memory ceiling (E9 soak rows): the streaming compaction
		// pass's peak heap must not rise beyond both the relative
		// tolerance and the absolute sampler-noise floor — a regression
		// here means compaction memory started tracking the backlog.
		if bPeak, ok := num(bRow, "peak_heap_bytes"); ok && bPeak > 0 {
			if fPeak, ok := num(row, "peak_heap_bytes"); ok &&
				fPeak > bPeak*(1+tol) && fPeak-bPeak > heapFloorBytes {
				regressions = append(regressions, fmt.Sprintf(
					"%s peak heap %.1f MiB > baseline %.1f MiB +%d%%",
					rowKey(row), fPeak/(1<<20), bPeak/(1<<20), int(tol*100)))
			}
		}
		// The alloc ceiling (E6 record-path rows): allocations per event
		// must not rise beyond both the relative tolerance and the
		// absolute noise floor. Baselines at exactly zero still gate via
		// the floor — the relative band is degenerate there.
		if bAPE, ok := num(bRow, "allocs_per_event"); ok {
			if fAPE, ok := num(row, "allocs_per_event"); ok &&
				fAPE > bAPE*(1+tol) && fAPE-bAPE > allocFloorPerEvent {
				regressions = append(regressions, fmt.Sprintf(
					"%s allocs/event %.3f > baseline %.3f (ceiling %.3f)",
					rowKey(row), fAPE, bAPE, bAPE*(1+tol)+allocFloorPerEvent))
			}
		}
	}
	if matched == 0 {
		return nil, fmt.Errorf("no fresh row matched any baseline row — key schema drift? regenerate the baseline")
	}
	return regressions, nil
}

// gateAgainstBaseline loads the baseline artefact, compares the fresh
// sweep against it and reports the verdict. Returns a process exit
// code: 0 pass, 1 regression or error.
func gateAgainstBaseline(path string, fresh benchArtefact, tol float64, out, errOut io.Writer) int {
	blob, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(errOut, "monbench: read baseline: %v\n", err)
		return 1
	}
	var base benchArtefact
	if err := json.Unmarshal(blob, &base); err != nil {
		fmt.Fprintf(errOut, "monbench: parse baseline %s: %v\n", path, err)
		return 1
	}
	if base.Kind != fresh.Kind {
		fmt.Fprintf(errOut, "monbench: baseline kind %q, fresh sweep kind %q — not comparable\n",
			base.Kind, fresh.Kind)
		return 1
	}
	// Row keys carry only per-cell config (monitors, modes); the sweep
	// parameters live in the config block. A fresh sweep run with
	// different ops/procs/interval would silently key-match baseline
	// rows and gate apples against oranges — reject it instead. Keys
	// present on one side only are tolerated (schema evolution), but
	// every shared key must agree.
	freshCfg, err := normalize(fresh.Config)
	if err != nil {
		fmt.Fprintf(errOut, "monbench: %v\n", err)
		return 1
	}
	for k, bv := range base.Config {
		if fv, ok := freshCfg[k]; ok && fmt.Sprint(fv) != fmt.Sprint(bv) {
			fmt.Fprintf(errOut, "monbench: baseline config %s=%v but fresh sweep ran %s=%v — rerun with the baseline's configuration (or regenerate the baseline)\n",
				k, bv, k, fv)
			return 1
		}
	}
	freshRows, err := normalize(fresh.Rows)
	if err != nil {
		fmt.Fprintf(errOut, "monbench: %v\n", err)
		return 1
	}
	regressions, err := compareArtefacts(base.Rows, freshRows, tol)
	if err != nil {
		fmt.Fprintf(errOut, "monbench: perf gate: %v\n", err)
		return 1
	}
	if len(regressions) > 0 {
		fmt.Fprintf(errOut, "monbench: perf gate FAILED against %s (tolerance ±%d%%):\n",
			path, int(tol*100))
		for _, r := range regressions {
			fmt.Fprintf(errOut, "  %s\n", r)
		}
		return 1
	}
	fmt.Fprintf(out, "\nperf gate passed against %s (tolerance ±%d%%)\n", path, int(tol*100))
	return 0
}
