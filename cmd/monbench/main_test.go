package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runTool(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errOut strings.Builder
	code := run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestArchVerifies(t *testing.T) {
	t.Parallel()
	code, out, errOut := runTool(t, "-arch")
	if code != 0 {
		t.Fatalf("exit = %d, err=%q", code, errOut)
	}
	for _, want := range []string{"Figure 1", "data gathering", "architecture verified"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestTinySweepProducesTable(t *testing.T) {
	t.Parallel()
	code, out, errOut := runTool(t,
		"-intervals", "2ms,4ms",
		"-ops", "400",
		"-procs", "2",
		"-repeats", "1",
		"-workloads", "manager",
	)
	if code != 0 {
		t.Fatalf("exit = %d, err=%q\n%s", code, errOut, out)
	}
	for _, want := range []string{"checking interval", "2ms", "4ms", "manager ratio", "shape check"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestScalingSweepProducesTable(t *testing.T) {
	t.Parallel()
	code, out, errOut := runTool(t,
		"-monitors", "1,2",
		"-ops", "200",
		"-procs", "1",
		"-intervals", "2ms",
	)
	if code != 0 {
		t.Fatalf("exit = %d, err=%q\n%s", code, errOut, out)
	}
	for _, want := range []string{"E4 (scaling)", "hold-world", "per-monitor", "events/sec", "shape check"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestScalingGlobalLockFlag(t *testing.T) {
	t.Parallel()
	code, out, errOut := runTool(t,
		"-monitors", "1",
		"-ops", "100",
		"-procs", "1",
		"-globallock",
	)
	if code != 0 {
		t.Fatalf("exit = %d, err=%q\n%s", code, errOut, out)
	}
	if !strings.Contains(out, "db=global-lock") {
		t.Errorf("output missing global-lock marker:\n%s", out)
	}
}

func TestBadMonitorCountRejected(t *testing.T) {
	t.Parallel()
	code, _, errOut := runTool(t, "-monitors", "several")
	if code != 2 || !strings.Contains(errOut, "bad monitor count") {
		t.Fatalf("code=%d err=%q", code, errOut)
	}
}

func TestScalingRejectsIntervalSweep(t *testing.T) {
	t.Parallel()
	code, _, errOut := runTool(t, "-monitors", "1,2", "-intervals", "2ms,4ms")
	if code != 2 || !strings.Contains(errOut, "single -intervals") {
		t.Fatalf("code=%d err=%q, want rejection of multi-interval scaling sweep", code, errOut)
	}
}

func TestTable1ReportsThroughput(t *testing.T) {
	t.Parallel()
	code, out, errOut := runTool(t,
		"-intervals", "2ms",
		"-ops", "200",
		"-procs", "1",
		"-repeats", "1",
		"-workloads", "manager",
	)
	if code != 0 {
		t.Fatalf("exit = %d, err=%q\n%s", code, errOut, out)
	}
	if !strings.Contains(out, "events/sec") {
		t.Errorf("detail table missing events/sec column:\n%s", out)
	}
}

func TestBadIntervalRejected(t *testing.T) {
	t.Parallel()
	code, _, errOut := runTool(t, "-intervals", "soon")
	if code != 2 || !strings.Contains(errOut, "bad interval") {
		t.Fatalf("code=%d err=%q", code, errOut)
	}
}

func TestUnknownWorkloadRejected(t *testing.T) {
	t.Parallel()
	code, _, errOut := runTool(t,
		"-workloads", "blockchain",
		"-intervals", "2ms", "-ops", "100", "-procs", "1", "-repeats", "1")
	if code != 1 || !strings.Contains(errOut, "unknown workload") {
		t.Fatalf("code=%d err=%q", code, errOut)
	}
}

func TestBadFlagRejected(t *testing.T) {
	t.Parallel()
	code, _, _ := runTool(t, "-nonsense")
	if code != 2 {
		t.Fatalf("code=%d, want 2", code)
	}
}

func TestJSONArtefactWritten(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "BENCH_scaling.json")
	code, out, errOut := runTool(t,
		"-monitors", "1,2",
		"-ops", "200",
		"-procs", "1",
		"-intervals", "2ms",
		"-json", path,
	)
	if code != 0 {
		t.Fatalf("exit = %d, err=%q\n%s", code, errOut, out)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("artefact not written: %v", err)
	}
	var art struct {
		Kind        string           `json:"kind"`
		GeneratedAt string           `json:"generated_at"`
		Config      map[string]any   `json:"config"`
		Rows        []map[string]any `json:"rows"`
	}
	if err := json.Unmarshal(blob, &art); err != nil {
		t.Fatalf("artefact is not valid JSON: %v", err)
	}
	if art.Kind != "E4-scaling" || art.GeneratedAt == "" {
		t.Fatalf("artefact header = %q/%q", art.Kind, art.GeneratedAt)
	}
	if len(art.Rows) != 4 { // 2 monitor counts × 2 checkpoint modes
		t.Fatalf("artefact has %d rows, want 4", len(art.Rows))
	}
	for i, r := range art.Rows {
		if _, ok := r["events_per_sec"]; !ok {
			t.Fatalf("row %d missing events_per_sec: %v", i, r)
		}
	}
}

func TestJSONArtefactOverheadSweep(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "bench.json")
	code, _, errOut := runTool(t,
		"-intervals", "2ms",
		"-ops", "200",
		"-procs", "2",
		"-repeats", "1",
		"-workloads", "manager",
		"-json", path,
	)
	if code != 0 {
		t.Fatalf("exit = %d, err=%q", code, errOut)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("artefact not written: %v", err)
	}
	var art struct {
		Kind string           `json:"kind"`
		Rows []map[string]any `json:"rows"`
	}
	if err := json.Unmarshal(blob, &art); err != nil {
		t.Fatalf("artefact is not valid JSON: %v", err)
	}
	if art.Kind != "E2-overhead" || len(art.Rows) != 1 {
		t.Fatalf("artefact = kind %q with %d rows, want E2-overhead with 1", art.Kind, len(art.Rows))
	}
}

func TestTraceStoreStandaloneArtefactAndSelfGate(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "store.json")
	code, out, errOut := runTool(t, "-tracestore", "-repeats", "1", "-json", path)
	if code != 0 {
		t.Fatalf("exit = %d, err=%q\n%s", code, errOut, out)
	}
	for _, want := range []string{"E5 (trace store)", "full", "seek", "faster than a full ReadDir"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var art struct {
		Kind string           `json:"kind"`
		Rows []map[string]any `json:"rows"`
	}
	if err := json.Unmarshal(blob, &art); err != nil {
		t.Fatal(err)
	}
	if art.Kind != "E5-tracestore" || len(art.Rows) != 2 {
		t.Fatalf("artefact kind=%q rows=%d, want E5-tracestore with 2 rows", art.Kind, len(art.Rows))
	}
	for _, row := range art.Rows {
		if _, ok := row["events_per_sec"].(float64); !ok {
			t.Fatalf("row missing events_per_sec: %+v", row)
		}
		if row["bench"] != "tracestore" {
			t.Fatalf("row missing the bench key that separates E5 from E4 rows: %+v", row)
		}
	}
	// A sweep gated against its own artefact must pass (the CI gate's
	// happy path).
	code, _, errOut = runTool(t, "-tracestore", "-repeats", "1", "-baseline", path, "-tolerance", "0.99")
	if code != 0 {
		t.Fatalf("self-baseline gate failed: %s", errOut)
	}
}

func TestSoakStandaloneArtefactAndSelfGate(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "soak.json")
	code, out, errOut := runTool(t, "-soak", "-repeats", "1", "-json", path)
	if code != 0 {
		t.Fatalf("exit = %d, err=%q\n%s", code, errOut, out)
	}
	for _, want := range []string{"E9 (long-horizon compaction)", "peak heap", "larger backlog costs"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var art struct {
		Kind string           `json:"kind"`
		Rows []map[string]any `json:"rows"`
	}
	if err := json.Unmarshal(blob, &art); err != nil {
		t.Fatal(err)
	}
	// Default sweep: one row per backlog size.
	if art.Kind != "E9-soak" || len(art.Rows) != 2 {
		t.Fatalf("artefact kind=%q rows=%d, want E9-soak with 2 rows", art.Kind, len(art.Rows))
	}
	for _, row := range art.Rows {
		for _, field := range []string{"peak_heap_bytes", "bytes_reclaimed", "bytes_in", "events_dropped", "elapsed_ns"} {
			if _, ok := row[field].(float64); !ok {
				t.Fatalf("row missing %s: %+v", field, row)
			}
		}
		if row["bench"] != "soak" {
			t.Fatalf("row missing the bench key that separates E9 from the other rows: %+v", row)
		}
	}
	// A sweep gated against its own artefact must pass (the CI gate's
	// happy path, heap ceiling included).
	code, _, errOut = runTool(t, "-soak", "-repeats", "1", "-baseline", path, "-tolerance", "0.99")
	if code != 0 {
		t.Fatalf("self-baseline gate failed: %s", errOut)
	}
}

func TestRecordPathStandaloneArtefactAndSelfGate(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	path := filepath.Join(dir, "rp.json")
	code, out, errOut := runTool(t, "-recordpath", "-repeats", "1", "-json", path)
	if code != 0 {
		t.Fatalf("exit = %d, err=%q", code, errOut)
	}
	for _, want := range []string{"E6 (record path)", "allocs/event", "batched ingest is"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var art struct {
		Kind string           `json:"kind"`
		Rows []map[string]any `json:"rows"`
	}
	if err := json.Unmarshal(blob, &art); err != nil {
		t.Fatal(err)
	}
	// Default sweep: 2 monitor counts x 2 modes.
	if art.Kind != "E6-recordpath" || len(art.Rows) != 4 {
		t.Fatalf("artefact kind=%q rows=%d, want E6-recordpath with 4 rows", art.Kind, len(art.Rows))
	}
	for _, row := range art.Rows {
		for _, field := range []string{"events_per_sec", "ns_per_event", "bytes_per_event", "allocs_per_event"} {
			if _, ok := row[field].(float64); !ok {
				t.Fatalf("row missing %s: %+v", field, row)
			}
		}
		if row["bench"] != "recordpath" {
			t.Fatalf("row missing the bench key that separates E6 from E4/E5 rows: %+v", row)
		}
	}
	// A sweep gated against its own artefact must pass (the CI gate's
	// happy path, alloc ceiling included).
	code, _, errOut = runTool(t, "-recordpath", "-repeats", "1", "-baseline", path, "-tolerance", "0.99")
	if code != 0 {
		t.Fatalf("self-baseline gate failed: %s", errOut)
	}
}
