package main

import (
	"strings"
	"testing"
)

func runTool(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errOut strings.Builder
	code := run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestArchVerifies(t *testing.T) {
	t.Parallel()
	code, out, errOut := runTool(t, "-arch")
	if code != 0 {
		t.Fatalf("exit = %d, err=%q", code, errOut)
	}
	for _, want := range []string{"Figure 1", "data gathering", "architecture verified"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestTinySweepProducesTable(t *testing.T) {
	t.Parallel()
	code, out, errOut := runTool(t,
		"-intervals", "2ms,4ms",
		"-ops", "400",
		"-procs", "2",
		"-repeats", "1",
		"-workloads", "manager",
	)
	if code != 0 {
		t.Fatalf("exit = %d, err=%q\n%s", code, errOut, out)
	}
	for _, want := range []string{"checking interval", "2ms", "4ms", "manager ratio", "shape check"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestScalingSweepProducesTable(t *testing.T) {
	t.Parallel()
	code, out, errOut := runTool(t,
		"-monitors", "1,2",
		"-ops", "200",
		"-procs", "1",
		"-intervals", "2ms",
	)
	if code != 0 {
		t.Fatalf("exit = %d, err=%q\n%s", code, errOut, out)
	}
	for _, want := range []string{"E4 (scaling)", "hold-world", "per-monitor", "events/sec", "shape check"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestScalingGlobalLockFlag(t *testing.T) {
	t.Parallel()
	code, out, errOut := runTool(t,
		"-monitors", "1",
		"-ops", "100",
		"-procs", "1",
		"-globallock",
	)
	if code != 0 {
		t.Fatalf("exit = %d, err=%q\n%s", code, errOut, out)
	}
	if !strings.Contains(out, "db=global-lock") {
		t.Errorf("output missing global-lock marker:\n%s", out)
	}
}

func TestBadMonitorCountRejected(t *testing.T) {
	t.Parallel()
	code, _, errOut := runTool(t, "-monitors", "several")
	if code != 2 || !strings.Contains(errOut, "bad monitor count") {
		t.Fatalf("code=%d err=%q", code, errOut)
	}
}

func TestScalingRejectsIntervalSweep(t *testing.T) {
	t.Parallel()
	code, _, errOut := runTool(t, "-monitors", "1,2", "-intervals", "2ms,4ms")
	if code != 2 || !strings.Contains(errOut, "single -intervals") {
		t.Fatalf("code=%d err=%q, want rejection of multi-interval scaling sweep", code, errOut)
	}
}

func TestTable1ReportsThroughput(t *testing.T) {
	t.Parallel()
	code, out, errOut := runTool(t,
		"-intervals", "2ms",
		"-ops", "200",
		"-procs", "1",
		"-repeats", "1",
		"-workloads", "manager",
	)
	if code != 0 {
		t.Fatalf("exit = %d, err=%q\n%s", code, errOut, out)
	}
	if !strings.Contains(out, "events/sec") {
		t.Errorf("detail table missing events/sec column:\n%s", out)
	}
}

func TestBadIntervalRejected(t *testing.T) {
	t.Parallel()
	code, _, errOut := runTool(t, "-intervals", "soon")
	if code != 2 || !strings.Contains(errOut, "bad interval") {
		t.Fatalf("code=%d err=%q", code, errOut)
	}
}

func TestUnknownWorkloadRejected(t *testing.T) {
	t.Parallel()
	code, _, errOut := runTool(t,
		"-workloads", "blockchain",
		"-intervals", "2ms", "-ops", "100", "-procs", "1", "-repeats", "1")
	if code != 1 || !strings.Contains(errOut, "unknown workload") {
		t.Fatalf("code=%d err=%q", code, errOut)
	}
}

func TestBadFlagRejected(t *testing.T) {
	t.Parallel()
	code, _, _ := runTool(t, "-nonsense")
	if code != 2 {
		t.Fatalf("code=%d, want 2", code)
	}
}
