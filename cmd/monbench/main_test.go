package main

import (
	"strings"
	"testing"
)

func runTool(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errOut strings.Builder
	code := run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestArchVerifies(t *testing.T) {
	t.Parallel()
	code, out, errOut := runTool(t, "-arch")
	if code != 0 {
		t.Fatalf("exit = %d, err=%q", code, errOut)
	}
	for _, want := range []string{"Figure 1", "data gathering", "architecture verified"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestTinySweepProducesTable(t *testing.T) {
	t.Parallel()
	code, out, errOut := runTool(t,
		"-intervals", "2ms,4ms",
		"-ops", "400",
		"-procs", "2",
		"-repeats", "1",
		"-workloads", "manager",
	)
	if code != 0 {
		t.Fatalf("exit = %d, err=%q\n%s", code, errOut, out)
	}
	for _, want := range []string{"checking interval", "2ms", "4ms", "manager ratio", "shape check"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestBadIntervalRejected(t *testing.T) {
	t.Parallel()
	code, _, errOut := runTool(t, "-intervals", "soon")
	if code != 2 || !strings.Contains(errOut, "bad interval") {
		t.Fatalf("code=%d err=%q", code, errOut)
	}
}

func TestUnknownWorkloadRejected(t *testing.T) {
	t.Parallel()
	code, _, errOut := runTool(t,
		"-workloads", "blockchain",
		"-intervals", "2ms", "-ops", "100", "-procs", "1", "-repeats", "1")
	if code != 1 || !strings.Contains(errOut, "unknown workload") {
		t.Fatalf("code=%d err=%q", code, errOut)
	}
}

func TestBadFlagRejected(t *testing.T) {
	t.Parallel()
	code, _, _ := runTool(t, "-nonsense")
	if code != 2 {
		t.Fatalf("code=%d, want 2", code)
	}
}
