// Command pathcheck compiles a path expression (the paper's
// calling-order declaration notation) and checks call sequences against
// it.
//
//	pathcheck -expr "path Acquire ; Release end" Acquire Release Acquire
//
// Each argument is one procedure call, consumed in order; the first
// violating call is reported with the calls that would have been legal.
// With no call arguments, pathcheck just prints the canonical form and
// the declared symbols.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"robustmon/internal/pathexpr"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the tool against args, writing to out/errOut; split from
// main for testability.
func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("pathcheck", flag.ContinueOnError)
	fs.SetOutput(errOut)
	expr := fs.String("expr", "", "path expression, e.g. \"path Acquire ; Release end\"")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *expr == "" {
		fmt.Fprintln(errOut, "pathcheck: -expr is required")
		fs.Usage()
		return 2
	}
	p, err := pathexpr.Parse(*expr)
	if err != nil {
		fmt.Fprintf(errOut, "pathcheck: %v\n", err)
		return 1
	}
	fmt.Fprintf(out, "canonical: %s\n", p)
	fmt.Fprintf(out, "symbols:   %s\n", strings.Join(p.Symbols(), " "))

	calls := fs.Args()
	if len(calls) == 0 {
		return 0
	}
	m := p.NewMatcher()
	for i, call := range calls {
		if err := m.Step(call); err != nil {
			fmt.Fprintf(out, "step %d %-12s VIOLATION: %v\n", i+1, call, err)
			return 3
		}
		mark := " "
		if m.AtCycleBoundary() {
			mark = "*" // a whole number of traversals completed
		}
		fmt.Fprintf(out, "step %d %-12s ok %s expected next: %s\n",
			i+1, call, mark, strings.Join(m.Expected(), " | "))
	}
	if m.AtCycleBoundary() {
		fmt.Fprintln(out, "sequence complete: ends at a cycle boundary")
		return 0
	}
	fmt.Fprintf(out, "sequence incomplete: pending obligation, expected %s\n",
		strings.Join(m.Expected(), " | "))
	return 0
}
