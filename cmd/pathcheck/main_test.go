package main

import (
	"strings"
	"testing"
)

func runTool(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errOut strings.Builder
	code := run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestMissingExpr(t *testing.T) {
	t.Parallel()
	code, _, errOut := runTool(t)
	if code != 2 || !strings.Contains(errOut, "-expr is required") {
		t.Fatalf("code=%d err=%q", code, errOut)
	}
}

func TestBadExpr(t *testing.T) {
	t.Parallel()
	code, _, errOut := runTool(t, "-expr", "path ; end")
	if code != 1 || !strings.Contains(errOut, "syntax error") {
		t.Fatalf("code=%d err=%q", code, errOut)
	}
}

func TestCompileOnly(t *testing.T) {
	t.Parallel()
	code, out, _ := runTool(t, "-expr", "Acquire ; Release")
	if code != 0 {
		t.Fatalf("code=%d", code)
	}
	if !strings.Contains(out, "canonical: path Acquire ; Release end") {
		t.Fatalf("out=%q", out)
	}
	if !strings.Contains(out, "symbols:   Acquire Release") {
		t.Fatalf("out=%q", out)
	}
}

func TestCompleteSequence(t *testing.T) {
	t.Parallel()
	code, out, _ := runTool(t, "-expr", "path A ; B end", "A", "B", "A", "B")
	if code != 0 || !strings.Contains(out, "sequence complete") {
		t.Fatalf("code=%d out=%q", code, out)
	}
}

func TestIncompleteSequence(t *testing.T) {
	t.Parallel()
	code, out, _ := runTool(t, "-expr", "path A ; B end", "A")
	if code != 0 || !strings.Contains(out, "sequence incomplete") || !strings.Contains(out, "expected B") {
		t.Fatalf("code=%d out=%q", code, out)
	}
}

func TestViolationExitCode(t *testing.T) {
	t.Parallel()
	code, out, _ := runTool(t, "-expr", "path A ; B end", "B")
	if code != 3 || !strings.Contains(out, "VIOLATION") {
		t.Fatalf("code=%d out=%q", code, out)
	}
}

func TestCycleBoundaryMarker(t *testing.T) {
	t.Parallel()
	_, out, _ := runTool(t, "-expr", "path A ; B end", "A", "B")
	if !strings.Contains(out, "ok *") {
		t.Fatalf("cycle boundary not marked: %q", out)
	}
}
