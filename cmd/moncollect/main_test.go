package main

import "testing"

func TestRunRequiresDir(t *testing.T) {
	if code := run([]string{"-addr", "127.0.0.1:0"}); code != 2 {
		t.Fatalf("run without -dir exit = %d, want 2", code)
	}
}
