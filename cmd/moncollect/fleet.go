package main

import (
	"fmt"
	"time"

	"robustmon/internal/export"
	netexport "robustmon/internal/export/net"
	"robustmon/internal/obs"
	obsrules "robustmon/internal/obs/rules"
)

// fleetWatcher is the fleet timer's state: it folds the collector's
// per-origin liveness (Collector.Activity) into fleet_origin_* gauges
// on the registry, lets an obsrules engine judge them — one staleness
// rule per origin, grown as origins appear — and persists the result
// as the fleet-wide timeline: one health record per tick plus an
// origin-tagged alert per rule transition, in an ordinary WAL
// directory montrace reads like any origin's.
type fleetWatcher struct {
	col        *netexport.Collector
	reg        *obs.Registry
	sink       *export.WALSink
	engine     *obsrules.Engine
	staleAfter time.Duration
	start      time.Time

	// Per-origin gauge handles and rule-name → origin mapping, grown
	// on first sight of each origin so steady-state ticks do no
	// registry lookups.
	staleGa  map[string]*obs.Gauge
	seqGa    map[string]*obs.Gauge
	originOf map[string]string
	alerts   []obsrules.Alert
}

// staleRuleName names the staleness rule watching one origin.
func staleRuleName(origin string) string { return "origin-stale:" + origin }

func newFleetWatcher(col *netexport.Collector, reg *obs.Registry, sink *export.WALSink, staleAfter time.Duration) *fleetWatcher {
	engine, err := obsrules.New(reg)
	if err != nil {
		// Unreachable: an empty rule set cannot be invalid.
		panic(err)
	}
	return &fleetWatcher{
		col: col, reg: reg, sink: sink, engine: engine,
		staleAfter: staleAfter, start: time.Now(),
		staleGa:  make(map[string]*obs.Gauge),
		seqGa:    make(map[string]*obs.Gauge),
		originOf: make(map[string]string),
	}
}

// tick runs one fleet evaluation at now.
func (w *fleetWatcher) tick(now time.Time) {
	act := w.col.Activity()
	var maxSeq int64
	for _, a := range act {
		if _, ok := w.staleGa[a.Origin]; !ok {
			w.staleGa[a.Origin] = w.reg.Gauge(`fleet_origin_stale_ns{origin="` + a.Origin + `"}`)
			w.seqGa[a.Origin] = w.reg.Gauge(`fleet_origin_seq{origin="` + a.Origin + `"}`)
			if w.staleAfter > 0 {
				rn := staleRuleName(a.Origin)
				w.originOf[rn] = a.Origin
				if err := w.engine.Add(obsrules.Rule{
					Name:   rn,
					Metric: `fleet_origin_stale_ns{origin="` + a.Origin + `"}`,
					// Staleness is judged per evaluation, not per streak:
					// the gauge already integrates silence over time, so
					// one breaching reading means the origin has been
					// quiet for the whole horizon.
					Ceiling: float64(w.staleAfter.Nanoseconds()),
				}); err != nil {
					panic(err) // unreachable: names are unique by construction
				}
			}
		}
		last := a.LastRecord
		if last.IsZero() {
			// An origin resumed from disk that has shipped nothing this
			// process: silent since the collector started.
			last = w.start
		}
		w.staleGa[a.Origin].Set(now.Sub(last).Nanoseconds())
		w.seqGa[a.Origin].Set(a.LastHealthSeq)
		if a.LastHealthSeq > maxSeq {
			maxSeq = a.LastHealthSeq
		}
	}

	// One registry snapshot serves both the persisted fleet health
	// record and the rule evaluation — the same shared-snapshot
	// discipline the detector uses at its health cadence.
	snap := w.reg.Snapshot()
	w.alerts = w.engine.Eval(w.alerts[:0], now, maxSeq, snap)
	for i := range w.alerts {
		w.alerts[i].Origin = w.originOf[w.alerts[i].Rule]
		if err := w.sink.WriteAlert(w.alerts[i]); err != nil {
			fmt.Printf("moncollect: fleet alert write: %v\n", err)
			continue
		}
		fmt.Printf("moncollect: fleet %s\n", w.alerts[i])
	}
	if err := w.sink.WriteHealth(obs.HealthRecord{At: now, Seq: maxSeq, Metrics: snap}); err != nil {
		fmt.Printf("moncollect: fleet health write: %v\n", err)
		return
	}
	if err := w.sink.Flush(); err != nil {
		fmt.Printf("moncollect: fleet flush: %v\n", err)
	}
}
