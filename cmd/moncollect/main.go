// Command moncollect runs the fleet-mode trace collector: a TCP
// service that accepts NetSink producer connections, resume-handshakes
// each one, and lands every shipped record in a per-origin WAL export
// directory under the fleet root — with the trace index maintained as
// segments seal, so the offline tools (montrace dump/check/stats over
// the fleet root or any origin subdirectory, the compactor, the
// SeekReader) work on the collected store unchanged.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"

	"robustmon/internal/export/compact"
	"robustmon/internal/export/net"
	"robustmon/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("moncollect", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:9190", "listen address for producer connections (\":0\" picks a free port, printed on start)")
	dir := fs.String("dir", "", "fleet root directory; each origin lands in <dir>/<origin>/ (required)")
	metrics := fs.String("metrics", "", "observability endpoint address (/metrics, /healthz, pprof); empty = disabled")
	ackEvery := fs.Int("ack-every", 64, "flush the origin WAL and acknowledge after this many records (a producer Flush always forces it)")
	noIndex := fs.Bool("no-index", false, "skip maintaining the per-origin trace index as segments seal")
	compactEvery := fs.Int("compact-every", 0, "compact an origin's backlog in the background once this many rotated files pile up since its last pass; 0 = disabled")
	retainSeq := fs.Int64("retain-seq", 0, "retention floor for background compaction: drop origin files wholly below this sequence number behind a tombstone; 0 = keep everything")
	_ = fs.Parse(args)
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "moncollect: -dir is required")
		fs.Usage()
		return 2
	}

	reg := obs.NewRegistry()
	cfg := netexport.CollectorConfig{
		Dir:      *dir,
		AckEvery: *ackEvery,
		NoIndex:  *noIndex,
		Obs:      reg,
	}
	if *compactEvery > 0 {
		cfg.CompactEvery = *compactEvery
		floor := *retainSeq
		cfg.Compact = func(origin string) error {
			// KeepNewest defaults to 1: the origin's sink is live and the
			// newest file is the one it appends to.
			_, err := compact.Dir(origin, compact.Config{RetainSeq: floor, Obs: reg})
			return err
		}
	}
	col, err := netexport.NewCollector(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "moncollect: %v\n", err)
		return 1
	}

	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "moncollect: %v\n", err)
		return 1
	}
	fmt.Printf("moncollect: listening on %s, fleet root %s\n", lis.Addr(), *dir)

	var obsSrv *obs.Server
	if *metrics != "" {
		obsSrv, err = obs.StartServer(obs.Config{Addr: *metrics, Registry: reg})
		if err != nil {
			fmt.Fprintf(os.Stderr, "moncollect: %v\n", err)
			lis.Close()
			return 1
		}
		fmt.Printf("moncollect: metrics on %s\n", obsSrv.URL())
	}

	// A signal closes the collector: the accept loop and every live
	// producer connection unwind, each flushing its origin's WAL and
	// resume state on the way out, so a restarted collector welcomes
	// producers back at exactly the durable point.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- col.Serve(lis) }()

	rc := 0
	select {
	case s := <-sig:
		fmt.Printf("moncollect: %v, shutting down\n", s)
	case err := <-done:
		if err != nil {
			fmt.Fprintf(os.Stderr, "moncollect: %v\n", err)
			rc = 1
		}
	}
	if err := col.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "moncollect: %v\n", err)
		rc = 1
	}
	if obsSrv != nil {
		_ = obsSrv.Close()
	}
	fmt.Printf("moncollect: origins collected: %d\n", len(col.Origins()))
	return rc
}
