// Command moncollect runs the fleet-mode trace collector: a TCP
// service that accepts NetSink producer connections, resume-handshakes
// each one, and lands every shipped record in a per-origin WAL export
// directory under the fleet root — with the trace index maintained as
// segments seal, so the offline tools (montrace dump/check/stats over
// the fleet root or any origin subdirectory, the compactor, the
// SeekReader) work on the collected store unchanged.
//
// Two timers sit on top of the collector. The fleet timer
// (-fleet-every) folds every origin's liveness into a fleet-wide
// health timeline under <dir>/_fleet — a WAL directory like any
// origin's, holding one health record per tick (the collector's whole
// registry, including the per-origin fleet_origin_stale_ns and
// fleet_origin_seq gauges) — and evaluates fleet-level threshold
// rules over it: each origin gets a staleness rule (-stale-after), so
// a producer that stops shipping raises a persisted, origin-tagged
// alert exactly like a producer's own self-watching rules do. The
// retention timer (-retain-every) runs a background compaction pass
// over every origin on a wall-clock cadence, dropping files older
// than -retain-age (and/or wholly below -retain-seq) behind a
// tombstone — the knob that bounds a month-long fleet store.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"robustmon/internal/export"
	"robustmon/internal/export/compact"
	"robustmon/internal/export/net"
	"robustmon/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("moncollect", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:9190", "listen address for producer connections (\":0\" picks a free port, printed on start)")
	dir := fs.String("dir", "", "fleet root directory; each origin lands in <dir>/<origin>/ (required)")
	metrics := fs.String("metrics", "", "observability endpoint address (/metrics, /healthz, pprof); empty = disabled")
	ackEvery := fs.Int("ack-every", 64, "flush the origin WAL and acknowledge after this many records (a producer Flush always forces it)")
	noIndex := fs.Bool("no-index", false, "skip maintaining the per-origin trace index as segments seal")
	compactEvery := fs.Int("compact-every", 0, "compact an origin's backlog in the background once this many rotated files pile up since its last pass; 0 = disabled")
	retainSeq := fs.Int64("retain-seq", 0, "retention floor for background compaction: drop origin files wholly below this sequence number behind a tombstone; 0 = keep everything")
	retainEvery := fs.Duration("retain-every", 0, "run a wall-clock retention pass over every origin on this cadence (with -retain-age and/or -retain-seq as the floor); 0 = disabled")
	retainAge := fs.Duration("retain-age", 0, "with -retain-every: drop origin files whose mtime is older than this behind a tombstone; 0 = no age floor")
	fleetEvery := fs.Duration("fleet-every", 0, "fold origin liveness into the <dir>/_fleet health timeline and evaluate fleet rules on this cadence; 0 = disabled")
	staleAfter := fs.Duration("stale-after", 30*time.Second, "with -fleet-every: fire a per-origin staleness alert when an origin has shipped nothing for this long")
	_ = fs.Parse(args)
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "moncollect: -dir is required")
		fs.Usage()
		return 2
	}
	if *retainEvery > 0 && *retainAge <= 0 && *retainSeq <= 0 {
		fmt.Fprintln(os.Stderr, "moncollect: -retain-every needs a floor: set -retain-age and/or -retain-seq")
		return 2
	}

	reg := obs.NewRegistry()
	cfg := netexport.CollectorConfig{
		Dir:      *dir,
		AckEvery: *ackEvery,
		NoIndex:  *noIndex,
		Obs:      reg,
	}
	if *compactEvery > 0 {
		cfg.CompactEvery = *compactEvery
		floor := *retainSeq
		cfg.Compact = func(origin string) error {
			// KeepNewest defaults to 1: the origin's sink is live and the
			// newest file is the one it appends to.
			_, err := compact.Dir(origin, compact.Config{RetainSeq: floor, Obs: reg})
			return err
		}
	}
	col, err := netexport.NewCollector(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "moncollect: %v\n", err)
		return 1
	}

	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "moncollect: %v\n", err)
		return 1
	}
	fmt.Printf("moncollect: listening on %s, fleet root %s\n", lis.Addr(), *dir)

	var obsSrv *obs.Server
	if *metrics != "" {
		obsSrv, err = obs.StartServer(obs.Config{Addr: *metrics, Registry: reg})
		if err != nil {
			fmt.Fprintf(os.Stderr, "moncollect: %v\n", err)
			lis.Close()
			return 1
		}
		fmt.Printf("moncollect: metrics on %s\n", obsSrv.URL())
	}

	// The timers stop before the collector closes: stopTimers is
	// closed first on shutdown, and timersDone joined, so no fleet
	// tick or retention pass races the closing sinks.
	stopTimers := make(chan struct{})
	var timersDone []chan struct{}

	var fleetSink *export.WALSink
	if *fleetEvery > 0 {
		fleetSink, err = export.NewWALSink(filepath.Join(*dir, netexport.FleetDirName), export.WALConfig{Obs: reg})
		if err != nil {
			fmt.Fprintf(os.Stderr, "moncollect: fleet sink: %v\n", err)
			lis.Close()
			return 1
		}
		fleet := newFleetWatcher(col, reg, fleetSink, *staleAfter)
		ch := make(chan struct{})
		timersDone = append(timersDone, ch)
		go func() {
			defer close(ch)
			tick := time.NewTicker(*fleetEvery)
			defer tick.Stop()
			for {
				select {
				case <-stopTimers:
					return
				case <-tick.C:
					fleet.tick(time.Now())
				}
			}
		}()
		fmt.Printf("moncollect: fleet timeline in %s every %v (stale after %v)\n",
			filepath.Join(*dir, netexport.FleetDirName), *fleetEvery, *staleAfter)
	}

	if *retainEvery > 0 {
		ch := make(chan struct{})
		timersDone = append(timersDone, ch)
		go func() {
			defer close(ch)
			tick := time.NewTicker(*retainEvery)
			defer tick.Stop()
			for {
				select {
				case <-stopTimers:
					return
				case <-tick.C:
					// The age floor advances with the wall clock — this
					// pass's RetainBefore is this tick's now minus the
					// retention horizon, which is what makes the store's
					// footprint a function of age, not of operator-supplied
					// sequence numbers.
					rcfg := compact.Config{RetainSeq: *retainSeq, Obs: reg}
					if *retainAge > 0 {
						rcfg.RetainBefore = time.Now().Add(-*retainAge)
					}
					col.CompactOrigins(func(origin string) error {
						_, err := compact.Dir(origin, rcfg)
						return err
					})
				}
			}
		}()
	}

	// A signal closes the collector: the accept loop and every live
	// producer connection unwind, each flushing its origin's WAL and
	// resume state on the way out, so a restarted collector welcomes
	// producers back at exactly the durable point.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- col.Serve(lis) }()

	rc := 0
	select {
	case s := <-sig:
		fmt.Printf("moncollect: %v, shutting down\n", s)
	case err := <-done:
		if err != nil {
			fmt.Fprintf(os.Stderr, "moncollect: %v\n", err)
			rc = 1
		}
	}
	close(stopTimers)
	for _, ch := range timersDone {
		<-ch
	}
	if err := col.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "moncollect: %v\n", err)
		rc = 1
	}
	if fleetSink != nil {
		if err := fleetSink.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "moncollect: fleet sink: %v\n", err)
			rc = 1
		}
	}
	if obsSrv != nil {
		_ = obsSrv.Close()
	}
	fmt.Printf("moncollect: origins collected: %d\n", len(col.Origins()))
	return rc
}
