package robustmon_test

import (
	"errors"
	"testing"
	"time"

	"robustmon"
	"robustmon/internal/apps/allocator"
	"robustmon/internal/apps/boundedbuffer"
	"robustmon/internal/apps/bridge"
	"robustmon/internal/apps/kvstore"
	"robustmon/internal/clock"
	"robustmon/internal/detect"
	"robustmon/internal/external"
	"robustmon/internal/faults"
	"robustmon/internal/history"
	"robustmon/internal/monitor"
	"robustmon/internal/proc"
	"robustmon/internal/rules"
)

// TestSystemKitchenSink wires every layer of the system together —
// four applications across all three monitor classes, one shared
// history database, the real-time order checker, an external
// consistency rule, checkpoint assertions and the periodic detector —
// runs a mixed fault-free workload, verifies total silence, then
// injects one fault and verifies it is reported and attributed to the
// right monitor.
func TestSystemKitchenSink(t *testing.T) {
	t.Parallel()
	clk := clock.NewVirtual(time.Date(2001, 7, 1, 0, 0, 0, 0, time.UTC))
	db := history.New(history.WithFullTrace())

	allocSpec := allocator.Spec("tapes")
	bridgeSpec := bridge.Spec("bridge")
	// Recorder chain: external consistency → real-time orders → DB.
	rt, err := detect.NewRealTime(db, []monitor.Spec{allocSpec, bridgeSpec}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := external.NewChecker(rt,
		"path tapes_Acquire ; { kv_Put , kv_Get } ; tapes_Release end", nil)
	if err != nil {
		t.Fatal(err)
	}

	monOpts := []monitor.Option{monitor.WithRecorder(ext), monitor.WithClock(clk)}
	buf, err := boundedbuffer.New(2, boundedbuffer.WithName("buf"),
		boundedbuffer.WithMonitorOptions(monOpts...))
	if err != nil {
		t.Fatal(err)
	}
	tapes, err := allocator.New(2, allocator.WithName("tapes"),
		allocator.WithMonitorOptions(monOpts...))
	if err != nil {
		t.Fatal(err)
	}
	store, err := kvstore.New(kvstore.WithName("kv"),
		kvstore.WithMonitorOptions(monOpts...))
	if err != nil {
		t.Fatal(err)
	}
	span, err := bridge.New(bridge.WithMonitorOptions(monOpts...))
	if err != nil {
		t.Fatal(err)
	}

	asserts := robustmon.NewAssertionSet("buf")
	asserts.Add("len-within-capacity", func() error {
		if n := buf.Len(); n < 0 || n > buf.Capacity() {
			return errors.New("buffer length out of bounds")
		}
		return nil
	})
	det := detect.New(db, detect.Config{
		Tmax: 30 * time.Second, Tio: 30 * time.Second, Tlimit: 30 * time.Second,
		Clock: clk, HoldWorld: true,
		Extra: []detect.Checker{asserts},
	}, buf.Monitor(), tapes.Monitor(), store.Monitor(), span.Monitor())

	// Phase 1: a fault-free mixed workload.
	run := proc.NewRuntime()
	run.Spawn("producer", func(p *proc.P) {
		for i := 0; i < 25; i++ {
			if err := buf.Send(p, i); err != nil {
				return
			}
		}
	})
	run.Spawn("consumer", func(p *proc.P) {
		for i := 0; i < 25; i++ {
			if _, err := buf.Receive(p); err != nil {
				return
			}
		}
	})
	for i := 0; i < 2; i++ {
		run.Spawn("archiver", func(p *proc.P) {
			for j := 0; j < 10; j++ {
				if err := tapes.Acquire(p); err != nil {
					return
				}
				if err := store.Put(p, "job", "x"); err != nil {
					return
				}
				if _, _, err := store.Get(p, "job"); err != nil {
					return
				}
				if err := tapes.Release(p); err != nil {
					return
				}
			}
		})
	}
	for i := 0; i < 2; i++ {
		d := bridge.North
		if i == 1 {
			d = bridge.South
		}
		run.Spawn("car", func(p *proc.P) {
			for j := 0; j < 10; j++ {
				if err := span.Enter(p, d); err != nil {
					return
				}
				if err := span.Exit(p, d); err != nil {
					return
				}
			}
		})
	}
	run.Join()

	if vs := det.CheckNow(); len(vs) != 0 {
		t.Fatalf("fault-free system produced violations: %v", vs)
	}
	if vs := rt.Violations(); len(vs) != 0 {
		t.Fatalf("real-time phase flagged a clean system: %v", vs)
	}
	if vs := ext.Violations(); len(vs) != 0 {
		t.Fatalf("external checker flagged a clean system: %v", vs)
	}

	// Phase 2: one fault — a process dies holding a tape — must surface
	// at the right monitor once the timers elapse, in both detectors and
	// in the offline re-check of the exported trace.
	run.Spawn("crasher", func(p *proc.P) {
		_ = tapes.Acquire(p)
		// dies without releasing or touching the store
	})
	run.Join()
	clk.Advance(time.Minute)
	vs := det.CheckNow()
	if !rules.HasRule(vs, rules.ST8c) {
		t.Fatalf("violations = %v, want ST-8c for the unreleased tape", vs)
	}
	for _, v := range vs {
		if v.Monitor != "tapes" {
			t.Fatalf("violation attributed to %q, want tapes: %v", v.Monitor, v)
		}
	}

	results, err := robustmon.VerifyTrace(db.Full(), robustmon.VerifyOptions{
		Specs: []robustmon.Spec{
			boundedbuffer.Spec("buf", 2), allocSpec, kvstore.Spec("kv"), bridgeSpec,
		},
		Tlimit: 30 * time.Second,
		End:    clk.Now(),
	})
	if err != nil {
		t.Fatalf("VerifyTrace: %v", err)
	}
	flagged := false
	for _, r := range results {
		if r.Monitor == "tapes" && !r.Clean() {
			flagged = true
		} else if r.Monitor != "tapes" && !r.Clean() {
			t.Fatalf("offline check flagged innocent monitor %q: %+v", r.Monitor, r)
		}
	}
	if !flagged {
		t.Fatal("offline check missed the unreleased tape")
	}

	// The injected-fault path must also work through this full stack.
	inj := faults.NewInjector(faults.SignalMonitorNotReleased)
	m2, err := monitor.New(monitor.Spec{
		Name: "late", Kind: monitor.OperationManager, Conditions: []string{"c"},
	}, monitor.WithRecorder(db), monitor.WithClock(clk), monitor.WithHooks(inj.Hooks()))
	if err != nil {
		t.Fatal(err)
	}
	det2 := detect.New(db, detect.Config{Clock: clk, HoldWorld: true}, m2)
	inj.Arm()
	run.Spawn("p", func(p *proc.P) {
		if err := m2.Enter(p, "Op"); err != nil {
			return
		}
		_ = m2.Exit(p, "Op")
	})
	run.Join()
	if vs := det2.CheckNow(); !rules.HasRule(vs, rules.STrn) {
		t.Fatalf("late monitor violations = %v, want ST-R", vs)
	}
}
