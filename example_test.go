package robustmon_test

import (
	"fmt"
	"time"

	"robustmon"
)

// Example shows the full pipeline on a deliberately faulty run: a
// process terminates inside the monitor (fault I.d), and the periodic
// detector reports it once Tmax elapses.
func Example() {
	spec := robustmon.Spec{
		Name:       "account",
		Kind:       robustmon.OperationManager,
		Conditions: []string{"nonZero"},
		Procedures: []string{"Deposit"},
	}
	db := robustmon.NewHistory()
	clk := robustmon.NewVirtualClock(time.Date(2001, 7, 1, 0, 0, 0, 0, time.UTC))
	mon, err := robustmon.NewMonitor(spec,
		robustmon.WithRecorder(db), robustmon.WithClock(clk))
	if err != nil {
		fmt.Println(err)
		return
	}
	det := robustmon.NewDetector(db, robustmon.DetectorConfig{
		Tmax: 10 * time.Second, Clock: clk,
	}, mon)

	rt := robustmon.NewRuntime()
	rt.Spawn("crasher", func(p *robustmon.Process) {
		if err := mon.Enter(p, "Deposit"); err != nil {
			return
		}
		// terminates inside the monitor
	})
	rt.Join()

	clk.Advance(time.Minute)
	for _, v := range det.CheckNow() {
		fmt.Println(v)
	}
	// Output:
	// ST-5[account] P1: Timer(P1) = 1m0s ≥ Tmax on Running-List
}

// ExampleParsePath demonstrates the calling-order declaration language.
func ExampleParsePath() {
	p, err := robustmon.ParsePath("path Acquire ; Release end")
	if err != nil {
		fmt.Println(err)
		return
	}
	m := p.NewMatcher()
	fmt.Println(m.Step("Acquire"))
	fmt.Println(m.Step("Acquire"))
	// Output:
	// <nil>
	// pathexpr: call "Acquire" violates "path Acquire ; Release end" after [Acquire]; expected Release
}

// ExampleParseDeclarations parses the §4 textual monitor declaration
// form into a validated Spec.
func ExampleParseDeclarations() {
	specs, err := robustmon.ParseDeclarations(`
buffer: Monitor (communication-coordinator);
    cond notFull, notEmpty;
    proc Send, Receive;
    rmax 4;
    send Send;
    receive Receive;
end buffer.
`)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%s: %s, Rmax=%d\n", specs[0].Name, specs[0].Kind, specs[0].Rmax)
	// Output:
	// buffer: communication-coordinator, Rmax=4
}
