#!/usr/bin/env bash
# checklinks.sh — grep-based markdown link checker for the CI docs job.
#
# Usage: scripts/checklinks.sh README.md DESIGN.md ...
#
# Extracts every inline markdown link [text](target) from the given
# files and verifies that each relative target exists on disk (anchors
# are stripped; http(s) and mailto targets are skipped — this is an
# offline repo-consistency check, not a web crawler). Exits non-zero
# listing every broken link.
set -euo pipefail

if [ "$#" -eq 0 ]; then
  echo "usage: $0 <markdown file> ..." >&2
  exit 2
fi

fail=0
for doc in "$@"; do
  if [ ! -f "$doc" ]; then
    echo "MISSING DOC: $doc" >&2
    fail=1
    continue
  fi
  dir=$(dirname "$doc")
  # Inline links only; reference-style links are not used in this repo.
  grep -oE '\]\(([^)]+)\)' "$doc" | sed -E 's/^\]\(//; s/\)$//' |
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*) continue ;;
    esac
    path="${target%%#*}" # strip anchor
    [ -z "$path" ] && continue # pure in-page anchor
    if [ ! -e "$dir/$path" ]; then
      echo "BROKEN LINK in $doc: ($target) -> $dir/$path does not exist"
    fi
  done | sort -u > /tmp/broken.$$ || true
  if [ -s /tmp/broken.$$ ]; then
    cat /tmp/broken.$$ >&2
    fail=1
  fi
  rm -f /tmp/broken.$$
done

if [ "$fail" -ne 0 ]; then
  echo "link check FAILED" >&2
  exit 1
fi
echo "link check OK: $*"
