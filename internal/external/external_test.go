package external

import (
	"sort"
	"testing"
	"time"

	"robustmon/internal/clock"
	"robustmon/internal/history"
	"robustmon/internal/monitor"
	"robustmon/internal/proc"
	"robustmon/internal/rules"
)

var epoch = time.Date(2001, 7, 1, 0, 0, 0, 0, time.UTC)

// fixture: a lock monitor and a store monitor sharing one recorder
// chain with the external order "lock then store ops then unlock".
type fixture struct {
	chk   *Checker
	lock  *monitor.Monitor
	store *monitor.Monitor
	rt    *proc.Runtime
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	db := history.New()
	chk, err := NewChecker(db,
		"path lock_Acquire ; { store_Put , store_Get } ; lock_Release end", nil)
	if err != nil {
		t.Fatalf("NewChecker: %v", err)
	}
	clk := clock.NewVirtual(epoch)
	lock, err := monitor.New(monitor.Spec{
		Name: "lock", Kind: monitor.OperationManager,
		Conditions: []string{"free"}, Procedures: []string{"Acquire", "Release"},
	}, monitor.WithRecorder(chk), monitor.WithClock(clk))
	if err != nil {
		t.Fatal(err)
	}
	store, err := monitor.New(monitor.Spec{
		Name: "store", Kind: monitor.OperationManager,
		Conditions: []string{"ok"}, Procedures: []string{"Put", "Get"},
	}, monitor.WithRecorder(chk), monitor.WithClock(clk))
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{chk: chk, lock: lock, store: store, rt: proc.NewRuntime()}
}

func call(m *monitor.Monitor, p *proc.P, procName string) {
	if err := m.Enter(p, procName); err != nil {
		return
	}
	_ = m.Exit(p, procName)
}

func TestCleanCrossMonitorOrder(t *testing.T) {
	t.Parallel()
	f := newFixture(t)
	f.rt.Spawn("good", func(p *proc.P) {
		call(f.lock, p, "Acquire")
		call(f.store, p, "Put")
		call(f.store, p, "Get")
		call(f.lock, p, "Release")
	})
	f.rt.Join()
	if vs := f.chk.Violations(); len(vs) != 0 {
		t.Fatalf("clean cross-monitor order flagged: %v", vs)
	}
	if pending := f.chk.PendingProcesses(); len(pending) != 0 {
		t.Fatalf("pending = %v, want none", pending)
	}
}

func TestStoreAccessWithoutLockFlagged(t *testing.T) {
	t.Parallel()
	f := newFixture(t)
	f.rt.Spawn("bad", func(p *proc.P) {
		call(f.store, p, "Put") // never acquired the lock
	})
	f.rt.Join()
	vs := f.chk.Violations()
	if !rules.HasRule(vs, ID) {
		t.Fatalf("violations = %v, want EXT", vs)
	}
	if vs[0].Phase != "realtime" || vs[0].Monitor != "store" {
		t.Fatalf("violation = %+v", vs[0])
	}
}

func TestUnlockWithoutLockFlagged(t *testing.T) {
	t.Parallel()
	f := newFixture(t)
	f.rt.Spawn("bad", func(p *proc.P) {
		call(f.lock, p, "Release")
	})
	f.rt.Join()
	if vs := f.chk.Violations(); !rules.HasRule(vs, ID) {
		t.Fatalf("violations = %v, want EXT", vs)
	}
}

func TestPerProcessIsolationAcrossMonitors(t *testing.T) {
	t.Parallel()
	f := newFixture(t)
	gate := make(chan struct{})
	f.rt.Spawn("a", func(p *proc.P) {
		call(f.lock, p, "Acquire")
		<-gate
		call(f.store, p, "Put")
		call(f.lock, p, "Release")
	})
	f.rt.Spawn("b", func(p *proc.P) {
		call(f.lock, p, "Acquire")
		close(gate)
		call(f.store, p, "Get")
		call(f.lock, p, "Release")
	})
	f.rt.Join()
	if vs := f.chk.Violations(); len(vs) != 0 {
		t.Fatalf("interleaved clean processes flagged: %v", vs)
	}
}

func TestPendingProcessesReportsOpenTraversals(t *testing.T) {
	t.Parallel()
	f := newFixture(t)
	f.rt.Spawn("holder", func(p *proc.P) {
		call(f.lock, p, "Acquire")
		// never releases
	})
	f.rt.Spawn("clean", func(p *proc.P) {
		call(f.lock, p, "Acquire")
		call(f.lock, p, "Release")
	})
	f.rt.Join()
	pending := f.chk.PendingProcesses()
	sort.Slice(pending, func(i, j int) bool { return pending[i] < pending[j] })
	if len(pending) != 1 || pending[0] != 1 {
		t.Fatalf("pending = %v, want [1]", pending)
	}
}

func TestUnmentionedProceduresIgnored(t *testing.T) {
	t.Parallel()
	db := history.New()
	chk, err := NewChecker(db, "path lock_Acquire ; lock_Release end", nil)
	if err != nil {
		t.Fatal(err)
	}
	clk := clock.NewVirtual(epoch)
	other, err := monitor.New(monitor.Spec{
		Name: "other", Kind: monitor.OperationManager, Conditions: []string{"c"},
	}, monitor.WithRecorder(chk), monitor.WithClock(clk))
	if err != nil {
		t.Fatal(err)
	}
	rt := proc.NewRuntime()
	rt.Spawn("p", func(p *proc.P) { call(other, p, "Anything") })
	rt.Join()
	if vs := chk.Violations(); len(vs) != 0 {
		t.Fatalf("unmentioned monitor flagged: %v", vs)
	}
}

func TestCallbackFires(t *testing.T) {
	t.Parallel()
	db := history.New()
	var got []rules.Violation
	chk, err := NewChecker(db, "path m_A ; m_B end", func(v rules.Violation) {
		got = append(got, v)
	})
	if err != nil {
		t.Fatal(err)
	}
	clk := clock.NewVirtual(epoch)
	m, err := monitor.New(monitor.Spec{
		Name: "m", Kind: monitor.OperationManager, Conditions: []string{"c"},
		Procedures: []string{"A", "B"},
	}, monitor.WithRecorder(chk), monitor.WithClock(clk))
	if err != nil {
		t.Fatal(err)
	}
	rt := proc.NewRuntime()
	rt.Spawn("p", func(p *proc.P) { call(m, p, "B") })
	rt.Join()
	if len(got) != 1 {
		t.Fatalf("callback fired %d times, want 1", len(got))
	}
}

func TestRejectsBadDeclarations(t *testing.T) {
	t.Parallel()
	db := history.New()
	if _, err := NewChecker(db, "path ; end", nil); err == nil {
		t.Fatal("syntax error accepted")
	}
	if _, err := NewChecker(db, "path Acquire ; Release end", nil); err == nil {
		t.Fatal("unqualified symbols accepted")
	}
}

func TestQualify(t *testing.T) {
	t.Parallel()
	if got := Qualify("lock", "Acquire"); got != "lock_Acquire" {
		t.Fatalf("Qualify = %q", got)
	}
}
