// Package external implements external-consistency checking, an
// extension the paper motivates in §1: "the external consistency of a
// monitor, defined as the observation of a sequential constraint upon
// the order of procedure invocation that may be initiated by any
// individual user, must be proved separately for each program that
// uses the monitor." Run-time checking replaces that per-program proof.
//
// An external order is a path expression over qualified procedure
// names "monitor.Procedure", tracked per process across *all* monitors
// — e.g. a program rule like "a process must acquire the lock before
// touching the store and release it afterwards":
//
//	path lock.Acquire ; { store.Put , store.Get } ; lock.Release end
//
// Checker wraps the history recorder (like detect.RealTime) and steps
// each process's matcher on every Enter event, reporting violations in
// real time.
package external

import (
	"fmt"
	"sync"

	"robustmon/internal/event"
	"robustmon/internal/monitor"
	"robustmon/internal/pathexpr"
	"robustmon/internal/rules"
)

// ID is the rule identifier for external-consistency violations.
const ID rules.ID = "EXT"

// Checker enforces one program-wide external order. Construct with
// NewChecker; attach as (or chain into) the monitors' Recorder.
type Checker struct {
	next monitor.Recorder
	path *pathexpr.Path
	onV  func(rules.Violation)

	mu       sync.Mutex
	matchers map[int64]*pathexpr.Matcher
	found    []rules.Violation
}

// NewChecker compiles the external order declaration (a path
// expression over "monitor.Procedure" names) and wraps next with its
// enforcement. onViolation may be nil.
func NewChecker(next monitor.Recorder, order string, onViolation func(rules.Violation)) (*Checker, error) {
	p, err := pathexpr.Parse(order)
	if err != nil {
		return nil, fmt.Errorf("external: %w", err)
	}
	for _, sym := range p.Symbols() {
		if !validQualified(sym) {
			return nil, fmt.Errorf("external: symbol %q is not of the form monitor_Procedure or monitor.Procedure", sym)
		}
	}
	return &Checker{
		next:     next,
		path:     p,
		onV:      onViolation,
		matchers: make(map[int64]*pathexpr.Matcher, 8),
	}, nil
}

// Path identifiers cannot contain '.', so qualified names use '_' as
// the separator in the expression; Qualify builds the canonical symbol
// for a (monitor, procedure) pair.
func Qualify(monitorName, procName string) string {
	return monitorName + "_" + procName
}

func validQualified(sym string) bool {
	for i := 1; i < len(sym)-1; i++ {
		if sym[i] == '_' {
			return true
		}
	}
	return false
}

// Append implements monitor.Recorder: it forwards the event and steps
// the issuing process's matcher on Enter events.
func (c *Checker) Append(e event.Event) event.Event {
	stored := c.next.Append(e)
	if stored.Type != event.Enter {
		return stored
	}
	sym := Qualify(stored.Monitor, stored.Proc)
	if !c.path.Mentions(sym) {
		return stored
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	m := c.matchers[stored.Pid]
	if m == nil {
		m = c.path.NewMatcher()
		c.matchers[stored.Pid] = m
	}
	if err := m.Step(sym); err != nil {
		v := rules.Violation{
			Rule:    ID,
			Monitor: stored.Monitor,
			Pid:     stored.Pid,
			Proc:    stored.Proc,
			Seq:     stored.Seq,
			At:      stored.Time,
			Phase:   "realtime",
			Message: fmt.Sprintf("external consistency: %v", err),
		}
		c.found = append(c.found, v)
		if c.onV != nil {
			c.onV(v)
		}
	}
	return stored
}

// Violations returns the external-consistency violations found so far.
func (c *Checker) Violations() []rules.Violation {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]rules.Violation(nil), c.found...)
}

// PendingProcesses returns the pids that currently hold an unfinished
// traversal (e.g. acquired but not yet released), for end-of-program
// auditing.
func (c *Checker) PendingProcesses() []int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []int64
	for pid, m := range c.matchers {
		if !m.AtCycleBoundary() {
			out = append(out, pid)
		}
	}
	return out
}
