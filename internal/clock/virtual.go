package clock

import (
	"sort"
	"sync"
	"time"
)

// Virtual is a deterministic, manually advanced clock.
//
// Time only moves when Advance or AdvanceTo is called. Timers created
// with After fire synchronously inside Advance, in timestamp order, so a
// test can arrange "process P has been on the entry queue for longer
// than Tio" exactly, with no real sleeping.
//
// Construct with NewVirtual; the zero value is not usable because the
// epoch must be fixed up front to keep traces reproducible.
type Virtual struct {
	mu      sync.Mutex
	now     time.Time
	waiters []*virtualTimer
	seq     int // tie-breaker so equal deadlines fire FIFO
}

type virtualTimer struct {
	deadline time.Time
	seq      int
	ch       chan time.Time
}

var _ Clock = (*Virtual)(nil)

// NewVirtual returns a virtual clock whose current instant is epoch.
func NewVirtual(epoch time.Time) *Virtual {
	return &Virtual{now: epoch}
}

// Now returns the virtual instant.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// After returns a channel that fires when the virtual clock passes d
// from now. A non-positive d fires on the next Advance (or immediately
// if Advance(0) is called).
func (v *Virtual) After(d time.Duration) <-chan time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	t := &virtualTimer{
		deadline: v.now.Add(d),
		seq:      v.seq,
		ch:       make(chan time.Time, 1),
	}
	v.seq++
	v.waiters = append(v.waiters, t)
	return t.ch
}

// Sleep blocks until the virtual clock has advanced past d. It only
// returns once some other goroutine calls Advance far enough.
func (v *Virtual) Sleep(d time.Duration) {
	<-v.After(d)
}

// Advance moves the clock forward by d, firing every timer whose
// deadline is reached, in deadline order (FIFO among equal deadlines).
// It reports how many timers fired.
func (v *Virtual) Advance(d time.Duration) int {
	v.mu.Lock()
	target := v.now.Add(d)
	v.mu.Unlock()
	return v.AdvanceTo(target)
}

// AdvanceTo moves the clock forward to instant t (no-op if t is not
// after the current instant) and fires due timers. It reports how many
// timers fired.
func (v *Virtual) AdvanceTo(t time.Time) int {
	v.mu.Lock()
	defer v.mu.Unlock()
	if t.After(v.now) {
		v.now = t
	}
	due := v.waiters[:0:0]
	rest := v.waiters[:0]
	for _, w := range v.waiters {
		if !w.deadline.After(v.now) {
			due = append(due, w)
		} else {
			rest = append(rest, w)
		}
	}
	v.waiters = rest
	sort.Slice(due, func(i, j int) bool {
		if due[i].deadline.Equal(due[j].deadline) {
			return due[i].seq < due[j].seq
		}
		return due[i].deadline.Before(due[j].deadline)
	})
	for _, w := range due {
		w.ch <- v.now
	}
	return len(due)
}

// Pending reports how many timers have not fired yet. Useful for tests
// that assert a detector armed (or disarmed) its periodic tick.
func (v *Virtual) Pending() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.waiters)
}
