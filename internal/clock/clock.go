// Package clock abstracts time for the fault-detection machinery.
//
// The paper's detection model is parameterised by three durations — Tmax
// (the longest any process may stay inside a monitor), Tio (the timeout
// for interpreting starvation or deadlock on the entry queue) and Tlimit
// (the longest a resource may be held) — and by the checking interval T.
// All of them are measured against a Clock. Production code uses Real;
// tests and the deterministic coverage experiments use Virtual so that
// "waiting for Tio" is a single method call instead of a flaky sleep.
package clock

import "time"

// Clock supplies the current instant and timer channels.
//
// Implementations must be safe for concurrent use.
type Clock interface {
	// Now returns the current instant on this clock.
	Now() time.Time
	// After returns a channel that receives the then-current time once d
	// has elapsed on this clock.
	After(d time.Duration) <-chan time.Time
	// Sleep blocks the caller for d on this clock.
	Sleep(d time.Duration)
}

// Real is the wall clock. The zero value is ready to use.
type Real struct{}

var _ Clock = Real{}

// Now implements Clock using the system clock.
func (Real) Now() time.Time { return time.Now() }

// After implements Clock using time.After.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Sleep implements Clock using time.Sleep.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }
