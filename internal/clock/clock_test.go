package clock

import (
	"testing"
	"time"
)

var epoch = time.Date(2001, time.July, 1, 0, 0, 0, 0, time.UTC)

func TestRealNowMonotoneEnough(t *testing.T) {
	t.Parallel()
	c := Real{}
	a := c.Now()
	b := c.Now()
	if b.Before(a) {
		t.Fatalf("Real.Now went backwards: %v then %v", a, b)
	}
}

func TestRealAfterFires(t *testing.T) {
	t.Parallel()
	c := Real{}
	select {
	case <-c.After(time.Millisecond):
	case <-time.After(5 * time.Second):
		t.Fatal("Real.After(1ms) did not fire within 5s")
	}
}

func TestVirtualNowFixedUntilAdvance(t *testing.T) {
	t.Parallel()
	v := NewVirtual(epoch)
	if got := v.Now(); !got.Equal(epoch) {
		t.Fatalf("Now() = %v, want epoch %v", got, epoch)
	}
	v.Advance(3 * time.Second)
	if got, want := v.Now(), epoch.Add(3*time.Second); !got.Equal(want) {
		t.Fatalf("Now() after Advance = %v, want %v", got, want)
	}
}

func TestVirtualAdvanceToBackwardsIsNoop(t *testing.T) {
	t.Parallel()
	v := NewVirtual(epoch)
	v.Advance(time.Minute)
	v.AdvanceTo(epoch) // earlier than now
	if got, want := v.Now(), epoch.Add(time.Minute); !got.Equal(want) {
		t.Fatalf("Now() = %v, want %v (AdvanceTo must not rewind)", got, want)
	}
}

func TestVirtualAfterFiresAtDeadline(t *testing.T) {
	t.Parallel()
	v := NewVirtual(epoch)
	ch := v.After(10 * time.Second)
	if n := v.Advance(9 * time.Second); n != 0 {
		t.Fatalf("Advance(9s) fired %d timers, want 0", n)
	}
	select {
	case tm := <-ch:
		t.Fatalf("timer fired early at %v", tm)
	default:
	}
	if n := v.Advance(time.Second); n != 1 {
		t.Fatalf("Advance(1s) fired %d timers, want 1", n)
	}
	tm := <-ch
	if want := epoch.Add(10 * time.Second); !tm.Equal(want) {
		t.Fatalf("timer delivered %v, want %v", tm, want)
	}
}

func TestVirtualEqualDeadlinesFireFIFO(t *testing.T) {
	t.Parallel()
	v := NewVirtual(epoch)
	a := v.After(time.Second)
	b := v.After(time.Second)
	v.Advance(time.Second)
	ta := <-a
	tb := <-b
	if !ta.Equal(tb) {
		t.Fatalf("equal-deadline timers saw different times: %v vs %v", ta, tb)
	}
}

func TestVirtualPending(t *testing.T) {
	t.Parallel()
	v := NewVirtual(epoch)
	_ = v.After(time.Second)
	_ = v.After(2 * time.Second)
	if got := v.Pending(); got != 2 {
		t.Fatalf("Pending() = %d, want 2", got)
	}
	v.Advance(time.Second)
	if got := v.Pending(); got != 1 {
		t.Fatalf("Pending() after partial advance = %d, want 1", got)
	}
}

func TestVirtualSleepUnblocksOnAdvance(t *testing.T) {
	t.Parallel()
	v := NewVirtual(epoch)
	done := make(chan struct{})
	go func() {
		v.Sleep(5 * time.Second)
		close(done)
	}()
	// Let the sleeper register its timer before advancing. Poll Pending
	// instead of sleeping a guess.
	for v.Pending() == 0 {
		time.Sleep(time.Millisecond)
	}
	v.Advance(5 * time.Second)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Sleep did not unblock after Advance")
	}
}

func TestVirtualZeroAfterFiresOnNextAdvance(t *testing.T) {
	t.Parallel()
	v := NewVirtual(epoch)
	ch := v.After(0)
	if n := v.Advance(0); n != 1 {
		t.Fatalf("Advance(0) fired %d timers, want 1", n)
	}
	<-ch
}

func TestVirtualManyTimersFireInDeadlineOrder(t *testing.T) {
	t.Parallel()
	v := NewVirtual(epoch)
	const n = 50
	chans := make([]<-chan time.Time, n)
	// Register in reverse deadline order to make ordering non-trivial.
	for i := n - 1; i >= 0; i-- {
		chans[i] = v.After(time.Duration(i+1) * time.Second)
	}
	fired := v.Advance(time.Duration(n) * time.Second)
	if fired != n {
		t.Fatalf("Advance fired %d timers, want %d", fired, n)
	}
	for i, ch := range chans {
		select {
		case <-ch:
		default:
			t.Fatalf("timer %d did not fire", i)
		}
	}
}
