// Package tracestat computes descriptive statistics over recorded
// scheduling-event traces: event mix, contention (share of entries
// that blocked), queue high-water marks and per-process activity.
// Operators use it (via montrace stats) to understand a workload
// before or after checking it for faults.
package tracestat

import (
	"fmt"
	"sort"
	"strings"

	"robustmon/internal/event"
)

// MonitorStats describes one monitor's activity within a trace.
type MonitorStats struct {
	// Monitor names the monitor.
	Monitor string
	// Events counts all events on this monitor.
	Events int
	// Enters, Waits, SignalExits count events by type.
	Enters, Waits, SignalExits int
	// BlockedEnters counts Enter events with flag 0.
	BlockedEnters int
	// Signalled counts Signal-Exit events that resumed a condition
	// waiter (flag 1).
	Signalled int
	// Pids is the number of distinct processes seen.
	Pids int
	// MaxEntryQueue is the reconstructed entry-queue high-water mark.
	MaxEntryQueue int
	// MaxCondQueue maps each condition to its reconstructed queue
	// high-water mark.
	MaxCondQueue map[string]int
}

// Contention is the share of entries that had to block ([0,1]; 0 for a
// monitor with no Enter events).
func (m MonitorStats) Contention() float64 {
	if m.Enters == 0 {
		return 0
	}
	return float64(m.BlockedEnters) / float64(m.Enters)
}

// Stats describes a whole trace.
type Stats struct {
	// Events is the total event count.
	Events int
	// Monitors holds per-monitor statistics, sorted by monitor name.
	Monitors []MonitorStats
	// PerPid counts events per process.
	PerPid map[int64]int
}

// Compute scans the trace once and derives the statistics.
func Compute(trace event.Seq) Stats {
	type track struct {
		stats MonitorStats
		pids  map[int64]bool
		eq    int
		cq    map[string]int
	}
	byMon := make(map[string]*track)
	perPid := make(map[int64]int)
	get := func(name string) *track {
		t, ok := byMon[name]
		if !ok {
			t = &track{
				stats: MonitorStats{Monitor: name, MaxCondQueue: make(map[string]int)},
				pids:  make(map[int64]bool),
				cq:    make(map[string]int),
			}
			byMon[name] = t
		}
		return t
	}

	for _, e := range trace {
		t := get(e.Monitor)
		t.stats.Events++
		t.pids[e.Pid] = true
		perPid[e.Pid]++
		switch e.Type {
		case event.Enter:
			t.stats.Enters++
			if e.Flag == event.Blocked {
				t.stats.BlockedEnters++
				t.eq++
				if t.eq > t.stats.MaxEntryQueue {
					t.stats.MaxEntryQueue = t.eq
				}
			}
		case event.Wait:
			t.stats.Waits++
			t.cq[e.Cond]++
			if t.cq[e.Cond] > t.stats.MaxCondQueue[e.Cond] {
				t.stats.MaxCondQueue[e.Cond] = t.cq[e.Cond]
			}
			if t.eq > 0 {
				t.eq--
			}
		case event.SignalExit:
			t.stats.SignalExits++
			if e.Flag == event.Completed {
				t.stats.Signalled++
				if t.cq[e.Cond] > 0 {
					t.cq[e.Cond]--
				}
			} else if t.eq > 0 {
				t.eq--
			}
		}
	}

	out := Stats{Events: len(trace), PerPid: perPid}
	names := make([]string, 0, len(byMon))
	for n := range byMon {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		t := byMon[n]
		t.stats.Pids = len(t.pids)
		out.Monitors = append(out.Monitors, t.stats)
	}
	return out
}

// String renders a compact multi-line report.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "events: %d across %d monitor(s), %d process(es)\n",
		s.Events, len(s.Monitors), len(s.PerPid))
	for _, m := range s.Monitors {
		fmt.Fprintf(&b, "monitor %s: %d events (enter %d, wait %d, signal-exit %d)\n",
			m.Monitor, m.Events, m.Enters, m.Waits, m.SignalExits)
		fmt.Fprintf(&b, "  contention %.1f%% (%d blocked entries), max EQ depth %d\n",
			100*m.Contention(), m.BlockedEnters, m.MaxEntryQueue)
		conds := make([]string, 0, len(m.MaxCondQueue))
		for c := range m.MaxCondQueue {
			conds = append(conds, c)
		}
		sort.Strings(conds)
		for _, c := range conds {
			fmt.Fprintf(&b, "  max CQ[%s] depth %d\n", c, m.MaxCondQueue[c])
		}
	}
	return b.String()
}
