package tracestat

import (
	"strings"
	"testing"
	"time"

	"robustmon/internal/event"
)

var t0 = time.Date(2001, 7, 1, 0, 0, 0, 0, time.UTC)

func ev(seq int64, mon string, typ event.Type, pid int64, cond string, flag int) event.Event {
	return event.Event{
		Seq: seq, Monitor: mon, Type: typ, Pid: pid, Proc: "P", Cond: cond, Flag: flag,
		Time: t0.Add(time.Duration(seq) * time.Millisecond),
	}
}

func TestComputeCounts(t *testing.T) {
	t.Parallel()
	trace := event.Seq{
		ev(1, "m", event.Enter, 1, "", 1),
		ev(2, "m", event.Enter, 2, "", 0),        // blocked: EQ depth 1
		ev(3, "m", event.Enter, 3, "", 0),        // blocked: EQ depth 2
		ev(4, "m", event.Wait, 1, "ok", 0),       // CQ depth 1, hands off (EQ 1)
		ev(5, "m", event.SignalExit, 2, "ok", 1), // resumes waiter (CQ 0)
		ev(6, "m", event.SignalExit, 1, "", 0),   // hands off (EQ 0)
		ev(7, "m", event.SignalExit, 3, "", 0),
		ev(8, "other", event.Enter, 9, "", 1),
	}
	s := Compute(trace)
	if s.Events != 8 {
		t.Fatalf("Events = %d", s.Events)
	}
	if len(s.Monitors) != 2 || s.Monitors[0].Monitor != "m" || s.Monitors[1].Monitor != "other" {
		t.Fatalf("Monitors = %+v", s.Monitors)
	}
	m := s.Monitors[0]
	if m.Enters != 3 || m.Waits != 1 || m.SignalExits != 3 {
		t.Fatalf("event mix = %+v", m)
	}
	if m.BlockedEnters != 2 || m.MaxEntryQueue != 2 {
		t.Fatalf("EQ stats = %+v", m)
	}
	if m.MaxCondQueue["ok"] != 1 || m.Signalled != 1 {
		t.Fatalf("CQ stats = %+v", m)
	}
	if m.Pids != 3 {
		t.Fatalf("Pids = %d, want 3", m.Pids)
	}
	if got := m.Contention(); got < 0.66 || got > 0.67 {
		t.Fatalf("Contention = %v, want 2/3", got)
	}
	if s.PerPid[1] != 3 || s.PerPid[9] != 1 {
		t.Fatalf("PerPid = %v", s.PerPid)
	}
}

func TestContentionEmptyMonitor(t *testing.T) {
	t.Parallel()
	var m MonitorStats
	if m.Contention() != 0 {
		t.Fatal("contention of empty monitor should be 0")
	}
}

func TestStringReport(t *testing.T) {
	t.Parallel()
	trace := event.Seq{
		ev(1, "m", event.Enter, 1, "", 1),
		ev(2, "m", event.Wait, 1, "ok", 0),
		ev(3, "m", event.Enter, 2, "", 1),
		ev(4, "m", event.SignalExit, 2, "ok", 1),
		ev(5, "m", event.SignalExit, 1, "", 0),
	}
	out := Compute(trace).String()
	for _, want := range []string{
		"events: 5 across 1 monitor(s), 2 process(es)",
		"monitor m: 5 events",
		"max CQ[ok] depth 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestComputeEmptyTrace(t *testing.T) {
	t.Parallel()
	s := Compute(nil)
	if s.Events != 0 || len(s.Monitors) != 0 || len(s.PerPid) != 0 {
		t.Fatalf("empty trace stats = %+v", s)
	}
}
