// Package recovery implements the paper's second future-work extension
// (§5): "in order to make the monitor construct fault-tolerant, error
// recovery mechanisms should be incorporated into the model to handle
// the faults detected by recovering the errors."
//
// A Manager receives violations (wire Handle into detect.Config's
// OnViolation and the real-time checker's callback) and applies a
// policy: report only, reset the offending monitor, or abort the
// offending process. Every action is logged for inspection
// (report.RenderRecovery formats the log).
//
// # Shard-aware reset
//
// Calling Monitor.Reset directly is only safe against a stopped world:
// it does not coordinate with a detector's in-flight snapshot, drain
// or batched replay of the monitor. Attach the detector itself via
// SetResetter (detect.Detector implements Resetter) and the
// ResetMonitor policy becomes shard-local and online: the reset is
// linearised against checkpoints by the detector, freezes only the
// offending monitor, discards its unchecked history, reseeds its
// checking and scheduler state, and emits a recovery marker into the
// export stream — while every other monitor keeps running. Without a
// resetter the manager falls back to the direct Reset, preserving the
// pre-shard-aware behaviour for callers that stop the world themselves.
package recovery

import (
	"fmt"
	"sync"
	"time"

	"robustmon/internal/monitor"
	"robustmon/internal/proc"
	"robustmon/internal/rules"
)

// Policy selects the reaction to a detected violation.
type Policy int

// The recovery policies.
const (
	// ReportOnly records the violation and takes no action — the bare
	// detection behaviour of the paper's prototype.
	ReportOnly Policy = iota + 1
	// ResetMonitor reinitialises the monitor the violation occurred on:
	// queues cleared, blocked processes aborted, R# restored. With a
	// Resetter attached the reset is shard-local and online; without
	// one it calls Monitor.Reset directly (world-stop callers only).
	ResetMonitor
	// AbortOffender aborts the process the violation names — but only
	// when it names one and that process is currently blocked (parked
	// on a monitor queue). A named process that is running is left
	// alone and the violation is logged report-only: delivering an
	// abort to a running process would not stop it now, it would poison
	// its next blocking primitive at some arbitrary later point, which
	// is worse than doing nothing visibly.
	AbortOffender
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case ReportOnly:
		return "report-only"
	case ResetMonitor:
		return "reset-monitor"
	case AbortOffender:
		return "abort-offender"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Resetter performs shard-local online monitor resets.
// detect.Detector implements it (RequestReset): the reset is
// linearised against in-flight checkpoints and applied with only the
// offending monitor frozen. The interface lives here so recovery never
// imports detect.
type Resetter interface {
	// RequestReset schedules a localized reset of the named monitor,
	// triggered by the given violation, and reports whether the monitor
	// is covered by the resetter.
	RequestReset(monitor string, v rules.Violation) bool
}

// Action records one recovery step.
type Action struct {
	// At is when the action was taken.
	At time.Time
	// Violation is the triggering violation.
	Violation rules.Violation
	// Taken describes what the manager did.
	Taken string
}

// Manager applies a recovery policy to incoming violations.
// Construct with NewManager; safe for concurrent use.
type Manager struct {
	policy  Policy
	runtime *proc.Runtime

	mu       sync.Mutex
	resetter Resetter
	monitors map[string]*monitor.Monitor
	log      []Action
	handled  map[string]bool // dedup: one recovery per (rule, monitor, pid)
}

// NewManager builds a manager over the given monitors — the set the
// ResetMonitor policy is allowed to reset; violations on other
// monitors are logged report-only. runtime may be nil unless the
// AbortOffender policy is used.
func NewManager(policy Policy, runtime *proc.Runtime, mons ...*monitor.Monitor) *Manager {
	m := &Manager{
		policy:   policy,
		runtime:  runtime,
		monitors: make(map[string]*monitor.Monitor, len(mons)),
		handled:  make(map[string]bool),
	}
	for _, mon := range mons {
		m.monitors[mon.Name()] = mon
	}
	return m
}

// Policy returns the configured policy.
func (m *Manager) Policy() Policy { return m.policy }

// SetResetter routes the ResetMonitor policy through a shard-local
// online resetter — pass the detect.Detector the monitors are checked
// by. The manager still only resets the monitors it was constructed
// over, whatever wider set the resetter covers.
func (m *Manager) SetResetter(r Resetter) {
	m.mu.Lock()
	m.resetter = r
	m.mu.Unlock()
}

// Handle reacts to one violation according to the policy. It is safe to
// pass as a detector/realtime callback: the shard-local reset path
// never blocks on checkpoint progress (the detector applies it at a
// checkpoint boundary), so Handle can be called from inside a
// checkpoint or from a monitor's own critical section.
func (m *Manager) Handle(v rules.Violation) {
	m.mu.Lock()
	defer m.mu.Unlock()
	key := fmt.Sprintf("%s|%s|%d", v.Rule, v.Monitor, v.Pid)
	if m.handled[key] {
		return
	}
	m.handled[key] = true

	taken := "reported"
	switch m.policy {
	case ResetMonitor:
		switch mon, ok := m.monitors[v.Monitor]; {
		case !ok:
			taken = "reported (monitor unknown, no reset)"
		case m.resetter != nil && m.resetter.RequestReset(v.Monitor, v):
			taken = "monitor reset (shard-local)"
		default:
			// No resetter (or one that does not cover this monitor):
			// the direct world-stop-only reset.
			mon.Reset()
			taken = "monitor reset"
		}
	case AbortOffender:
		taken = "reported (no offender named)"
		if v.Pid != 0 && m.runtime != nil {
			switch p, ok := m.runtime.Get(v.Pid); {
			case !ok:
				taken = fmt.Sprintf("reported (P%d unknown, no abort)", v.Pid)
			case p.Status() != proc.Parked:
				// See the AbortOffender policy doc: aborting a process
				// that is not blocked would only poison its next Park.
				taken = fmt.Sprintf("reported (P%d not blocked, no abort)", v.Pid)
			default:
				p.Abort()
				taken = fmt.Sprintf("aborted P%d", v.Pid)
			}
		}
	}
	m.log = append(m.log, Action{At: v.At, Violation: v, Taken: taken})
}

// Log returns the actions taken so far.
func (m *Manager) Log() []Action {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Action(nil), m.log...)
}
