// Package recovery implements the paper's second future-work extension
// (§5): "in order to make the monitor construct fault-tolerant, error
// recovery mechanisms should be incorporated into the model to handle
// the faults detected by recovering the errors."
//
// A Manager receives violations (wire Handle into detect.Config's
// OnViolation and the real-time checker's callback) and applies a
// policy: report only, reset the offending monitor, or abort the
// offending process. Every action is logged for inspection.
package recovery

import (
	"fmt"
	"sync"
	"time"

	"robustmon/internal/monitor"
	"robustmon/internal/proc"
	"robustmon/internal/rules"
)

// Policy selects the reaction to a detected violation.
type Policy int

// The recovery policies.
const (
	// ReportOnly records the violation and takes no action — the bare
	// detection behaviour of the paper's prototype.
	ReportOnly Policy = iota + 1
	// ResetMonitor reinitialises the monitor the violation occurred on:
	// queues cleared, blocked processes aborted, R# restored.
	ResetMonitor
	// AbortOffender aborts the process the violation names (when it
	// names one and the process is blocked).
	AbortOffender
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case ReportOnly:
		return "report-only"
	case ResetMonitor:
		return "reset-monitor"
	case AbortOffender:
		return "abort-offender"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Action records one recovery step.
type Action struct {
	// At is when the action was taken.
	At time.Time
	// Violation is the triggering violation.
	Violation rules.Violation
	// Taken describes what the manager did.
	Taken string
}

// Manager applies a recovery policy to incoming violations.
// Construct with NewManager; safe for concurrent use.
type Manager struct {
	policy  Policy
	runtime *proc.Runtime

	mu       sync.Mutex
	monitors map[string]*monitor.Monitor
	log      []Action
	handled  map[string]bool // dedup: one recovery per (rule, monitor, pid)
}

// NewManager builds a manager over the given monitors. runtime may be
// nil unless the AbortOffender policy is used.
func NewManager(policy Policy, runtime *proc.Runtime, mons ...*monitor.Monitor) *Manager {
	m := &Manager{
		policy:   policy,
		runtime:  runtime,
		monitors: make(map[string]*monitor.Monitor, len(mons)),
		handled:  make(map[string]bool),
	}
	for _, mon := range mons {
		m.monitors[mon.Name()] = mon
	}
	return m
}

// Policy returns the configured policy.
func (m *Manager) Policy() Policy { return m.policy }

// Handle reacts to one violation according to the policy. It is safe to
// pass as a detector/realtime callback.
func (m *Manager) Handle(v rules.Violation) {
	m.mu.Lock()
	defer m.mu.Unlock()
	key := fmt.Sprintf("%s|%s|%d", v.Rule, v.Monitor, v.Pid)
	if m.handled[key] {
		return
	}
	m.handled[key] = true

	taken := "reported"
	switch m.policy {
	case ResetMonitor:
		if mon, ok := m.monitors[v.Monitor]; ok {
			mon.Reset()
			taken = "monitor reset"
		} else {
			taken = "reported (monitor unknown, no reset)"
		}
	case AbortOffender:
		taken = "reported (no offender named)"
		if v.Pid != 0 && m.runtime != nil {
			if p, ok := m.runtime.Get(v.Pid); ok {
				p.Abort()
				taken = fmt.Sprintf("aborted P%d", v.Pid)
			}
		}
	}
	m.log = append(m.log, Action{At: v.At, Violation: v, Taken: taken})
}

// Log returns the actions taken so far.
func (m *Manager) Log() []Action {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Action(nil), m.log...)
}
