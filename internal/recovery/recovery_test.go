package recovery

import (
	"strings"
	"testing"
	"time"

	"robustmon/internal/clock"
	"robustmon/internal/faults"
	"robustmon/internal/history"
	"robustmon/internal/monitor"
	"robustmon/internal/proc"
	"robustmon/internal/rules"
)

var epoch = time.Date(2001, 7, 1, 0, 0, 0, 0, time.UTC)

func newMonitor(t *testing.T) *monitor.Monitor {
	t.Helper()
	m, err := monitor.New(monitor.Spec{
		Name: "m", Kind: monitor.OperationManager,
		Conditions: []string{"ok"},
	}, monitor.WithRecorder(history.New()), monitor.WithClock(clock.NewVirtual(epoch)))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestPolicyString(t *testing.T) {
	t.Parallel()
	cases := map[Policy]string{
		ReportOnly:    "report-only",
		ResetMonitor:  "reset-monitor",
		AbortOffender: "abort-offender",
		Policy(9):     "Policy(9)",
	}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Errorf("Policy(%d).String() = %q, want %q", int(p), got, want)
		}
	}
}

func TestReportOnlyLogs(t *testing.T) {
	t.Parallel()
	m := newMonitor(t)
	mgr := NewManager(ReportOnly, nil, m)
	if mgr.Policy() != ReportOnly {
		t.Fatal("Policy() wrong")
	}
	mgr.Handle(rules.Violation{Rule: rules.ST5, Monitor: "m", Pid: 1, At: epoch})
	log := mgr.Log()
	if len(log) != 1 || log[0].Taken != "reported" {
		t.Fatalf("log = %+v", log)
	}
}

func TestDuplicateViolationsHandledOnce(t *testing.T) {
	t.Parallel()
	m := newMonitor(t)
	mgr := NewManager(ReportOnly, nil, m)
	v := rules.Violation{Rule: rules.ST5, Monitor: "m", Pid: 1, At: epoch}
	mgr.Handle(v)
	mgr.Handle(v)
	mgr.Handle(rules.Violation{Rule: rules.ST6, Monitor: "m", Pid: 1, At: epoch})
	if got := len(mgr.Log()); got != 2 {
		t.Fatalf("log has %d entries, want 2 (dedup by rule/monitor/pid)", got)
	}
}

func TestResetMonitorUnblocksStuckProcesses(t *testing.T) {
	t.Parallel()
	// A keep-lock fault leaves the monitor permanently held; the reset
	// policy must restore it to service.
	inj := faults.NewInjector(faults.SignalMonitorNotReleased)
	db := history.New()
	m, err := monitor.New(monitor.Spec{
		Name: "m", Kind: monitor.OperationManager, Conditions: []string{"ok"},
	}, monitor.WithRecorder(db), monitor.WithClock(clock.NewVirtual(epoch)), monitor.WithHooks(inj.Hooks()))
	if err != nil {
		t.Fatal(err)
	}
	inj.Arm()
	r := proc.NewRuntime()
	r.Spawn("faulty", func(p *proc.P) {
		if err := m.Enter(p, "Op"); err != nil {
			return
		}
		_ = m.Exit(p, "Op") // lock kept
	})
	r.Join()
	if m.InsideCount() != 1 {
		t.Fatal("fault did not leave a stale occupant")
	}
	// A second process is now stuck on the entry queue.
	stuck := r.Spawn("stuck", func(p *proc.P) { _ = m.Enter(p, "Op") })
	deadline := time.Now().Add(5 * time.Second)
	for stuck.Status() != proc.Parked {
		if time.Now().After(deadline) {
			t.Fatal("second process never queued")
		}
		time.Sleep(100 * time.Microsecond)
	}

	mgr := NewManager(ResetMonitor, r, m)
	mgr.Handle(rules.Violation{Rule: rules.STrn, Monitor: "m", At: epoch})
	r.Join() // the stuck process was aborted by the reset
	if m.InsideCount() != 0 || m.EntryLen() != 0 {
		t.Fatalf("monitor not reset: inside=%d eq=%d", m.InsideCount(), m.EntryLen())
	}
	log := mgr.Log()
	if len(log) != 1 || log[0].Taken != "monitor reset" {
		t.Fatalf("log = %+v", log)
	}
	// The monitor is serviceable again.
	r2 := proc.NewRuntime()
	done := false
	r2.Spawn("fresh", func(p *proc.P) {
		if err := m.Enter(p, "Op"); err != nil {
			return
		}
		done = true
		_ = m.Exit(p, "Op")
	})
	r2.Join()
	if !done {
		t.Fatal("monitor unusable after reset")
	}
}

func TestResetUnknownMonitorFallsBack(t *testing.T) {
	t.Parallel()
	mgr := NewManager(ResetMonitor, nil)
	mgr.Handle(rules.Violation{Rule: rules.ST5, Monitor: "ghost", At: epoch})
	log := mgr.Log()
	if len(log) != 1 || !strings.Contains(log[0].Taken, "no reset") {
		t.Fatalf("log = %+v", log)
	}
}

func TestAbortOffender(t *testing.T) {
	t.Parallel()
	m := newMonitor(t)
	r := proc.NewRuntime()
	hold := make(chan struct{})
	r.Spawn("holder", func(p *proc.P) { // pid 1
		if err := m.Enter(p, "Op"); err != nil {
			return
		}
		<-hold
		_ = m.Exit(p, "Op")
	})
	deadline := time.Now().Add(5 * time.Second)
	for m.InsideCount() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("holder never entered")
		}
		time.Sleep(100 * time.Microsecond)
	}
	victim := r.Spawn("victim", func(p *proc.P) { // pid 2
		_ = m.Enter(p, "Op")
	})
	for victim.Status() != proc.Parked {
		if time.Now().After(deadline) {
			t.Fatal("victim never parked")
		}
		time.Sleep(100 * time.Microsecond)
	}
	mgr := NewManager(AbortOffender, r, m)
	mgr.Handle(rules.Violation{Rule: rules.ST6, Monitor: "m", Pid: 2, At: epoch})
	close(hold)
	r.Join()
	log := mgr.Log()
	if len(log) != 1 || log[0].Taken != "aborted P2" {
		t.Fatalf("log = %+v", log)
	}
}

func TestAbortOffenderWithoutPid(t *testing.T) {
	t.Parallel()
	mgr := NewManager(AbortOffender, proc.NewRuntime())
	mgr.Handle(rules.Violation{Rule: rules.ST1, Monitor: "m", At: epoch})
	log := mgr.Log()
	if len(log) != 1 || !strings.Contains(log[0].Taken, "no offender") {
		t.Fatalf("log = %+v", log)
	}
}
