package recovery

import (
	"strings"
	"testing"
	"time"

	"robustmon/internal/clock"
	"robustmon/internal/faults"
	"robustmon/internal/history"
	"robustmon/internal/monitor"
	"robustmon/internal/proc"
	"robustmon/internal/rules"
)

var epoch = time.Date(2001, 7, 1, 0, 0, 0, 0, time.UTC)

func newMonitor(t *testing.T) *monitor.Monitor {
	t.Helper()
	m, err := monitor.New(monitor.Spec{
		Name: "m", Kind: monitor.OperationManager,
		Conditions: []string{"ok"},
	}, monitor.WithRecorder(history.New()), monitor.WithClock(clock.NewVirtual(epoch)))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestPolicyString(t *testing.T) {
	t.Parallel()
	cases := map[Policy]string{
		ReportOnly:    "report-only",
		ResetMonitor:  "reset-monitor",
		AbortOffender: "abort-offender",
		Policy(9):     "Policy(9)",
	}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Errorf("Policy(%d).String() = %q, want %q", int(p), got, want)
		}
	}
}

func TestReportOnlyLogs(t *testing.T) {
	t.Parallel()
	m := newMonitor(t)
	mgr := NewManager(ReportOnly, nil, m)
	if mgr.Policy() != ReportOnly {
		t.Fatal("Policy() wrong")
	}
	mgr.Handle(rules.Violation{Rule: rules.ST5, Monitor: "m", Pid: 1, At: epoch})
	log := mgr.Log()
	if len(log) != 1 || log[0].Taken != "reported" {
		t.Fatalf("log = %+v", log)
	}
}

func TestDuplicateViolationsHandledOnce(t *testing.T) {
	t.Parallel()
	m := newMonitor(t)
	mgr := NewManager(ReportOnly, nil, m)
	v := rules.Violation{Rule: rules.ST5, Monitor: "m", Pid: 1, At: epoch}
	mgr.Handle(v)
	mgr.Handle(v)
	mgr.Handle(rules.Violation{Rule: rules.ST6, Monitor: "m", Pid: 1, At: epoch})
	if got := len(mgr.Log()); got != 2 {
		t.Fatalf("log has %d entries, want 2 (dedup by rule/monitor/pid)", got)
	}
}

func TestResetMonitorUnblocksStuckProcesses(t *testing.T) {
	t.Parallel()
	// A keep-lock fault leaves the monitor permanently held; the reset
	// policy must restore it to service.
	inj := faults.NewInjector(faults.SignalMonitorNotReleased)
	db := history.New()
	m, err := monitor.New(monitor.Spec{
		Name: "m", Kind: monitor.OperationManager, Conditions: []string{"ok"},
	}, monitor.WithRecorder(db), monitor.WithClock(clock.NewVirtual(epoch)), monitor.WithHooks(inj.Hooks()))
	if err != nil {
		t.Fatal(err)
	}
	inj.Arm()
	r := proc.NewRuntime()
	r.Spawn("faulty", func(p *proc.P) {
		if err := m.Enter(p, "Op"); err != nil {
			return
		}
		_ = m.Exit(p, "Op") // lock kept
	})
	r.Join()
	if m.InsideCount() != 1 {
		t.Fatal("fault did not leave a stale occupant")
	}
	// A second process is now stuck on the entry queue.
	stuck := r.Spawn("stuck", func(p *proc.P) { _ = m.Enter(p, "Op") })
	deadline := time.Now().Add(5 * time.Second)
	for stuck.Status() != proc.Parked {
		if time.Now().After(deadline) {
			t.Fatal("second process never queued")
		}
		time.Sleep(100 * time.Microsecond)
	}

	mgr := NewManager(ResetMonitor, r, m)
	mgr.Handle(rules.Violation{Rule: rules.STrn, Monitor: "m", At: epoch})
	r.Join() // the stuck process was aborted by the reset
	if m.InsideCount() != 0 || m.EntryLen() != 0 {
		t.Fatalf("monitor not reset: inside=%d eq=%d", m.InsideCount(), m.EntryLen())
	}
	log := mgr.Log()
	if len(log) != 1 || log[0].Taken != "monitor reset" {
		t.Fatalf("log = %+v", log)
	}
	// The monitor is serviceable again.
	r2 := proc.NewRuntime()
	done := false
	r2.Spawn("fresh", func(p *proc.P) {
		if err := m.Enter(p, "Op"); err != nil {
			return
		}
		done = true
		_ = m.Exit(p, "Op")
	})
	r2.Join()
	if !done {
		t.Fatal("monitor unusable after reset")
	}
}

func TestResetUnknownMonitorFallsBack(t *testing.T) {
	t.Parallel()
	mgr := NewManager(ResetMonitor, nil)
	mgr.Handle(rules.Violation{Rule: rules.ST5, Monitor: "ghost", At: epoch})
	log := mgr.Log()
	if len(log) != 1 || !strings.Contains(log[0].Taken, "no reset") {
		t.Fatalf("log = %+v", log)
	}
}

func TestAbortOffender(t *testing.T) {
	t.Parallel()
	m := newMonitor(t)
	r := proc.NewRuntime()
	hold := make(chan struct{})
	r.Spawn("holder", func(p *proc.P) { // pid 1
		if err := m.Enter(p, "Op"); err != nil {
			return
		}
		<-hold
		_ = m.Exit(p, "Op")
	})
	deadline := time.Now().Add(5 * time.Second)
	for m.InsideCount() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("holder never entered")
		}
		time.Sleep(100 * time.Microsecond)
	}
	victim := r.Spawn("victim", func(p *proc.P) { // pid 2
		_ = m.Enter(p, "Op")
	})
	for victim.Status() != proc.Parked {
		if time.Now().After(deadline) {
			t.Fatal("victim never parked")
		}
		time.Sleep(100 * time.Microsecond)
	}
	mgr := NewManager(AbortOffender, r, m)
	mgr.Handle(rules.Violation{Rule: rules.ST6, Monitor: "m", Pid: 2, At: epoch})
	close(hold)
	r.Join()
	log := mgr.Log()
	if len(log) != 1 || log[0].Taken != "aborted P2" {
		t.Fatalf("log = %+v", log)
	}
}

// TestAbortOffenderNotBlocked pins the policy's documented restraint:
// a violation naming a process that exists but is NOT parked on a
// monitor queue is logged report-only — no abort is delivered, because
// an abort to a running process would only poison its next blocking
// primitive at some arbitrary later point. The second half proves the
// restraint mattered: the process's next Park resumes normally.
func TestAbortOffenderNotBlocked(t *testing.T) {
	t.Parallel()
	m := newMonitor(t)
	r := proc.NewRuntime()
	step := make(chan struct{})
	done := make(chan error, 1)
	runner := r.Spawn("runner", func(p *proc.P) { // pid 1, never parked yet
		<-step // running, not blocked, while the manager handles the violation
		// Now actually block: enter twice would deadlock, so park on the
		// condition queue and have the test signal us back in.
		if err := m.Enter(p, "Op"); err != nil {
			done <- err
			return
		}
		done <- m.Wait(p, "Op", "ok")
	})
	mgr := NewManager(AbortOffender, r, m)
	mgr.Handle(rules.Violation{Rule: rules.ST6, Monitor: "m", Pid: runner.ID(), At: epoch})
	log := mgr.Log()
	if len(log) != 1 || log[0].Taken != "reported (P1 not blocked, no abort)" {
		t.Fatalf("log = %+v, want the not-blocked report-only entry", log)
	}
	close(step)
	// The un-aborted process must block and resume cleanly: no poisoned
	// wake-up is pending from the handled violation.
	waitStatus(t, runner, proc.Parked)
	r2 := proc.NewRuntime()
	r2.Spawn("signaller", func(p *proc.P) {
		if err := m.Enter(p, "Op"); err != nil {
			return
		}
		_ = m.SignalExit(p, "Op", "ok")
	})
	r2.Join()
	if err := <-done; err != nil {
		t.Fatalf("runner's Wait returned %v, want nil (resumed by signal, not aborted)", err)
	}
	r.Spawn("exiter", func(p *proc.P) {})
	r.Join()
}

// TestAbortOffenderUnknownPid: a violation naming a pid the runtime
// never spawned is logged report-only.
func TestAbortOffenderUnknownPid(t *testing.T) {
	t.Parallel()
	mgr := NewManager(AbortOffender, proc.NewRuntime(), newMonitor(t))
	mgr.Handle(rules.Violation{Rule: rules.ST6, Monitor: "m", Pid: 42, At: epoch})
	log := mgr.Log()
	if len(log) != 1 || log[0].Taken != "reported (P42 unknown, no abort)" {
		t.Fatalf("log = %+v", log)
	}
}

func waitStatus(t *testing.T, p *proc.P, want proc.Status) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for p.Status() != want {
		if time.Now().After(deadline) {
			t.Fatalf("%v never reached status %v (now %v)", p, want, p.Status())
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// recordingResetter implements Resetter, recording requests and
// answering per a configured coverage set.
type recordingResetter struct {
	covered  map[string]bool
	requests []string
}

func (r *recordingResetter) RequestReset(monitor string, v rules.Violation) bool {
	r.requests = append(r.requests, monitor)
	return r.covered[monitor]
}

// TestResetMonitorRoutesThroughResetter: with a resetter attached the
// ResetMonitor policy goes shard-local instead of calling
// Monitor.Reset, and falls back to the direct reset when the resetter
// does not cover the monitor.
func TestResetMonitorRoutesThroughResetter(t *testing.T) {
	t.Parallel()
	m := newMonitor(t)
	rr := &recordingResetter{covered: map[string]bool{"m": true}}
	mgr := NewManager(ResetMonitor, nil, m)
	mgr.SetResetter(rr)
	mgr.Handle(rules.Violation{Rule: rules.STrn, Monitor: "m", At: epoch})
	log := mgr.Log()
	if len(log) != 1 || log[0].Taken != "monitor reset (shard-local)" {
		t.Fatalf("log = %+v, want shard-local reset", log)
	}
	if len(rr.requests) != 1 || rr.requests[0] != "m" {
		t.Fatalf("resetter saw requests %v, want [m]", rr.requests)
	}

	// A monitor the resetter does not cover falls back to the direct
	// reset path.
	rr.covered["m"] = false
	mgr2 := NewManager(ResetMonitor, nil, m)
	mgr2.SetResetter(rr)
	mgr2.Handle(rules.Violation{Rule: rules.ST1, Monitor: "m", At: epoch})
	log = mgr2.Log()
	if len(log) != 1 || log[0].Taken != "monitor reset" {
		t.Fatalf("fallback log = %+v, want direct reset", log)
	}

	// A monitor the MANAGER does not cover is never reset, resetter or
	// not.
	mgr3 := NewManager(ResetMonitor, nil)
	mgr3.SetResetter(&recordingResetter{covered: map[string]bool{"ghost": true}})
	mgr3.Handle(rules.Violation{Rule: rules.ST1, Monitor: "ghost", At: epoch})
	log = mgr3.Log()
	if len(log) != 1 || !strings.Contains(log[0].Taken, "no reset") {
		t.Fatalf("uncovered-monitor log = %+v", log)
	}
}

func TestAbortOffenderWithoutPid(t *testing.T) {
	t.Parallel()
	mgr := NewManager(AbortOffender, proc.NewRuntime())
	mgr.Handle(rules.Violation{Rule: rules.ST1, Monitor: "m", At: epoch})
	log := mgr.Log()
	if len(log) != 1 || !strings.Contains(log[0].Taken, "no offender") {
		t.Fatalf("log = %+v", log)
	}
}
