package checklists

import (
	"testing"
	"time"

	"robustmon/internal/event"
	"robustmon/internal/faults"
	"robustmon/internal/monitor"
	"robustmon/internal/rules"
	"robustmon/internal/state"
)

var t0 = time.Date(2001, 7, 1, 0, 0, 0, 0, time.UTC)

func managerSpec() monitor.Spec {
	return monitor.Spec{
		Name: "m", Kind: monitor.OperationManager,
		Conditions: []string{"ok"},
	}
}

func coordSpec() monitor.Spec {
	return monitor.Spec{
		Name: "buf", Kind: monitor.CommunicationCoordinator,
		Conditions:  []string{"notFull", "notEmpty"},
		Rmax:        2,
		SendProc:    "Send",
		ReceiveProc: "Receive",
	}
}

func allocSpec() monitor.Spec {
	return monitor.Spec{
		Name: "alloc", Kind: monitor.ResourceAllocator,
		CallOrder:   "path Acquire ; Release end",
		AcquireProc: "Acquire",
		ReleaseProc: "Release",
	}
}

func emptySnap(spec monitor.Spec) state.Snapshot {
	cq := make(map[string][]state.QueueEntry)
	for _, c := range spec.Conditions {
		cq[c] = nil
	}
	return state.Snapshot{Monitor: spec.Name, At: t0, CQ: cq, Resources: spec.Rmax}
}

func ev(seq int64, typ event.Type, pid int64, proc, cond string, flag int) event.Event {
	return event.Event{
		Seq: seq, Monitor: "m", Type: typ, Pid: pid, Proc: proc, Cond: cond, Flag: flag,
		Time: t0.Add(time.Duration(seq) * time.Millisecond),
	}
}

func apply(l *Lists, events ...event.Event) {
	for _, e := range events {
		l.Apply(e)
	}
}

func TestCleanReplayNoViolations(t *testing.T) {
	t.Parallel()
	l := FromSnapshot(managerSpec(), emptySnap(managerSpec()), 0, 0)
	apply(l,
		ev(1, event.Enter, 1, "Op", "", 1),
		ev(2, event.Wait, 1, "Op", "ok", 0),
		ev(3, event.Enter, 2, "Op", "", 1),
		ev(4, event.SignalExit, 2, "Op", "ok", 1),
		ev(5, event.SignalExit, 1, "Op", "", 0),
	)
	if vs := l.Violations(); len(vs) != 0 {
		t.Fatalf("clean replay produced %v", vs)
	}
	if len(l.Running) != 0 || len(l.EnterQ) != 0 || len(l.WaitCond["ok"]) != 0 {
		t.Fatal("lists not drained after clean replay")
	}
}

func TestCleanContendedReplay(t *testing.T) {
	t.Parallel()
	l := FromSnapshot(managerSpec(), emptySnap(managerSpec()), 0, 0)
	apply(l,
		ev(1, event.Enter, 1, "Op", "", 1),
		ev(2, event.Enter, 2, "Op", "", 0),
		ev(3, event.SignalExit, 1, "Op", "", 0), // hands off to P2
		ev(4, event.SignalExit, 2, "Op", "", 0),
	)
	if vs := l.Violations(); len(vs) != 0 {
		t.Fatalf("clean contended replay produced %v", vs)
	}
}

func TestSeedingFromSnapshot(t *testing.T) {
	t.Parallel()
	spec := managerSpec()
	snap := emptySnap(spec)
	snap.EQ = []state.QueueEntry{{Pid: 4, Proc: "Op", Since: t0}}
	snap.CQ["ok"] = []state.QueueEntry{{Pid: 5, Proc: "Op", Since: t0}}
	snap.Running = []state.RunningEntry{{Pid: 6, Since: t0}}
	l := FromSnapshot(spec, snap, 0, 0)
	if len(l.EnterQ) != 1 || l.EnterQ[0].Pid != 4 {
		t.Fatalf("EnterQ seed = %v", l.EnterQ)
	}
	if len(l.WaitCond["ok"]) != 1 || l.WaitCond["ok"][0].Pid != 5 {
		t.Fatalf("WaitCond seed = %v", l.WaitCond)
	}
	if len(l.Running) != 1 || l.Running[0].Pid != 6 {
		t.Fatalf("Running seed = %v", l.Running)
	}
	// P6 exits handing to P4 — the seeded state must replay cleanly.
	apply(l, ev(1, event.SignalExit, 6, "Op", "", 0))
	if vs := l.Violations(); len(vs) != 0 {
		t.Fatalf("seeded replay produced %v", vs)
	}
	if len(l.Running) != 1 || l.Running[0].Pid != 4 {
		t.Fatalf("Running after handoff = %v, want [4]", l.Running)
	}
}

func TestST3cEnterGrantedWhileOccupied(t *testing.T) {
	t.Parallel()
	l := FromSnapshot(managerSpec(), emptySnap(managerSpec()), 0, 0)
	apply(l,
		ev(1, event.Enter, 1, "Op", "", 1),
		ev(2, event.Enter, 2, "Op", "", 1),
	)
	vs := l.Violations()
	if !rules.HasRule(vs, rules.ST3c) || !rules.HasRule(vs, rules.ST3a) {
		t.Fatalf("violations = %v, want ST-3c and ST-3a", vs)
	}
	if !rules.HasFault(vs, faults.EnterMutexViolation) {
		t.Fatalf("violations = %v, want EnterMutexViolation", vs)
	}
}

func TestST3dEnterBlockedWhileFree(t *testing.T) {
	t.Parallel()
	l := FromSnapshot(managerSpec(), emptySnap(managerSpec()), 0, 0)
	apply(l, ev(1, event.Enter, 1, "Op", "", 0))
	vs := l.Violations()
	if !rules.HasRule(vs, rules.ST3d) || !rules.HasFault(vs, faults.EnterNoResponse) {
		t.Fatalf("violations = %v, want ST-3d/EnterNoResponse", vs)
	}
}

func TestST3bWaitByUnknownProcess(t *testing.T) {
	t.Parallel()
	l := FromSnapshot(managerSpec(), emptySnap(managerSpec()), 0, 0)
	apply(l, ev(1, event.Wait, 9, "Op", "ok", 0))
	vs := l.Violations()
	if !rules.HasRule(vs, rules.ST3b) || !rules.HasFault(vs, faults.EnterNotObserved) {
		t.Fatalf("violations = %v, want ST-3b/EnterNotObserved", vs)
	}
}

func TestST4EventWhileListed(t *testing.T) {
	t.Parallel()
	l := FromSnapshot(managerSpec(), emptySnap(managerSpec()), 0, 0)
	apply(l,
		ev(1, event.Enter, 1, "Op", "", 1),
		ev(2, event.Wait, 1, "Op", "ok", 0),     // P1 now on Wait-Cond-List
		ev(3, event.SignalExit, 1, "Op", "", 0), // …but acts anyway
	)
	vs := l.Violations()
	if !rules.HasRule(vs, rules.ST4) || !rules.HasFault(vs, faults.WaitNoBlock) {
		t.Fatalf("violations = %v, want ST-4/WaitNoBlock", vs)
	}
}

func TestST2SignalOnEmptyCondList(t *testing.T) {
	t.Parallel()
	l := FromSnapshot(managerSpec(), emptySnap(managerSpec()), 0, 0)
	apply(l,
		ev(1, event.Enter, 1, "Op", "", 1),
		ev(2, event.SignalExit, 1, "Op", "ok", 1), // flag 1 with nobody waiting
	)
	if !rules.HasRule(l.Violations(), rules.ST2) {
		t.Fatalf("violations = %v, want ST-2", l.Violations())
	}
}

func TestST7aSendOverflowCumulative(t *testing.T) {
	t.Parallel()
	spec := coordSpec()
	// Segment 1: two sends fill the buffer (clean).
	l1 := FromSnapshot(spec, emptySnap(spec), 0, 0)
	apply(l1,
		ev(1, event.Enter, 1, "Send", "", 1),
		ev(2, event.SignalExit, 1, "Send", "notEmpty", 0),
		ev(3, event.Enter, 2, "Send", "", 1),
		ev(4, event.SignalExit, 2, "Send", "notEmpty", 0),
	)
	if vs := l1.Violations(); len(vs) != 0 {
		t.Fatalf("segment 1 violations: %v", vs)
	}
	// Segment 2 carries the totals: a third send overflows.
	snap2 := emptySnap(spec)
	snap2.Resources = 0
	l2 := FromSnapshot(spec, snap2, l1.Sends, l1.Recvs)
	apply(l2,
		ev(5, event.Enter, 3, "Send", "", 1),
		ev(6, event.SignalExit, 3, "Send", "notEmpty", 0),
	)
	vs := l2.Violations()
	if !rules.HasRule(vs, rules.ST7a) || !rules.HasFault(vs, faults.SendOverflow) {
		t.Fatalf("violations = %v, want ST-7a/SendOverflow", vs)
	}
}

func TestST7aReceiveOvertake(t *testing.T) {
	t.Parallel()
	spec := coordSpec()
	l := FromSnapshot(spec, emptySnap(spec), 0, 0)
	apply(l,
		ev(1, event.Enter, 1, "Receive", "", 1),
		ev(2, event.SignalExit, 1, "Receive", "notFull", 0),
	)
	vs := l.Violations()
	if !rules.HasRule(vs, rules.ST7a) || !rules.HasFault(vs, faults.ReceiveOvertake) {
		t.Fatalf("violations = %v, want ST-7a/ReceiveOvertake", vs)
	}
}

func TestST7cSendWaitsWithFreeSlots(t *testing.T) {
	t.Parallel()
	spec := coordSpec()
	l := FromSnapshot(spec, emptySnap(spec), 0, 0)
	apply(l,
		ev(1, event.Enter, 1, "Send", "", 1),
		ev(2, event.Wait, 1, "Send", "notFull", 0),
	)
	vs := l.Violations()
	if !rules.HasRule(vs, rules.ST7c) || !rules.HasFault(vs, faults.SendSpuriousDelay) {
		t.Fatalf("violations = %v, want ST-7c/SendSpuriousDelay", vs)
	}
}

func TestST7dReceiveWaitsWithItems(t *testing.T) {
	t.Parallel()
	spec := coordSpec()
	snap := emptySnap(spec)
	snap.Resources = 1 // one item in the buffer
	l := FromSnapshot(spec, snap, 1, 0)
	apply(l,
		ev(1, event.Enter, 2, "Receive", "", 1),
		ev(2, event.Wait, 2, "Receive", "notEmpty", 0),
	)
	vs := l.Violations()
	if !rules.HasRule(vs, rules.ST7d) || !rules.HasFault(vs, faults.ReceiveSpuriousDelay) {
		t.Fatalf("violations = %v, want ST-7d/ReceiveSpuriousDelay", vs)
	}
}

func TestST7LegitimateBoundaryWaits(t *testing.T) {
	t.Parallel()
	spec := coordSpec()
	snap := emptySnap(spec)
	snap.Resources = 0 // buffer full
	l := FromSnapshot(spec, snap, 2, 0)
	apply(l,
		ev(1, event.Enter, 3, "Send", "", 1),
		ev(2, event.Wait, 3, "Send", "notFull", 0),
	)
	if vs := l.Violations(); len(vs) != 0 {
		t.Fatalf("legitimate full-buffer wait flagged: %v", vs)
	}
}

func TestCompareWithDetectsDivergence(t *testing.T) {
	t.Parallel()
	spec := managerSpec()
	l := FromSnapshot(spec, emptySnap(spec), 0, 0)
	apply(l,
		ev(1, event.Enter, 1, "Op", "", 1),
		ev(2, event.Enter, 2, "Op", "", 0),
	)
	// Actual monitor lost P2 from EQ and still holds P1.
	actual := emptySnap(spec)
	actual.Running = []state.RunningEntry{{Pid: 1, Since: t0}}
	vs := l.CompareWith(actual)
	if !rules.HasRule(vs, rules.ST1) {
		t.Fatalf("violations = %v, want ST-1 for the lost EQ entry", vs)
	}
}

func TestCompareWithAgreementSilent(t *testing.T) {
	t.Parallel()
	spec := managerSpec()
	l := FromSnapshot(spec, emptySnap(spec), 0, 0)
	apply(l,
		ev(1, event.Enter, 1, "Op", "", 1),
		ev(2, event.Enter, 2, "Op", "", 0),
	)
	actual := emptySnap(spec)
	actual.EQ = []state.QueueEntry{{Pid: 2, Proc: "Op", Since: t0}}
	actual.Running = []state.RunningEntry{{Pid: 1, Since: t0}}
	if vs := l.CompareWith(actual); len(vs) != 0 {
		t.Fatalf("agreeing snapshot produced %v", vs)
	}
}

func TestCompareWithResourceMismatch(t *testing.T) {
	t.Parallel()
	spec := coordSpec()
	l := FromSnapshot(spec, emptySnap(spec), 0, 0)
	actual := emptySnap(spec)
	actual.Resources = 1 // actual R# diverged
	vs := l.CompareWith(actual)
	if !rules.HasRule(vs, rules.STrs) {
		t.Fatalf("violations = %v, want ST-RS", vs)
	}
}

func TestCheckTimers(t *testing.T) {
	t.Parallel()
	spec := managerSpec()
	snap := emptySnap(spec)
	snap.Running = []state.RunningEntry{{Pid: 1, Since: t0}}
	snap.CQ["ok"] = []state.QueueEntry{{Pid: 2, Proc: "Op", Since: t0}}
	snap.EQ = []state.QueueEntry{{Pid: 3, Proc: "Op", Since: t0}}
	l := FromSnapshot(spec, snap, 0, 0)

	now := t0.Add(time.Minute)
	vs := l.CheckTimers(now, 30*time.Second, 45*time.Second)
	if !rules.HasRule(vs, rules.ST5) || !rules.HasRule(vs, rules.ST6) {
		t.Fatalf("violations = %v, want ST-5 and ST-6", vs)
	}
	var st5Running, st5Cond bool
	for _, v := range vs {
		if v.Rule == rules.ST5 && v.Pid == 1 {
			st5Running = true
		}
		if v.Rule == rules.ST5 && v.Pid == 2 {
			st5Cond = true
		}
	}
	if !st5Running || !st5Cond {
		t.Fatalf("ST-5 must cover Running and Wait-Cond lists: %v", vs)
	}
	// Inside the budget: silence.
	if vs := l.CheckTimers(t0.Add(time.Second), 30*time.Second, 45*time.Second); len(vs) != 0 {
		t.Fatalf("timers fired early: %v", vs)
	}
	// Disabled timers: silence.
	if vs := l.CheckTimers(now, 0, 0); len(vs) != 0 {
		t.Fatalf("disabled timers fired: %v", vs)
	}
}

func TestRequestListLifecycle(t *testing.T) {
	t.Parallel()
	rl := NewRequestList(allocSpec())
	if !rl.Enabled() {
		t.Fatal("request list should be enabled")
	}
	vs := rl.Apply(ev(1, event.Enter, 1, "Acquire", "", 1))
	vs = append(vs, rl.Apply(ev(2, event.SignalExit, 1, "Acquire", "", 0))...)
	if len(vs) != 0 {
		t.Fatalf("clean acquire produced %v", vs)
	}
	if pids := rl.Pids(); len(pids) != 1 || pids[0] != 1 {
		t.Fatalf("Pids = %v, want [1]", pids)
	}
	vs = rl.Apply(ev(3, event.Enter, 1, "Release", "", 1))
	vs = append(vs, rl.Apply(ev(4, event.SignalExit, 1, "Release", "", 0))...)
	if len(vs) != 0 {
		t.Fatalf("clean release produced %v", vs)
	}
	if len(rl.Pids()) != 0 {
		t.Fatalf("Pids = %v, want empty", rl.Pids())
	}
}

func TestRequestListST8aDuplicateAcquire(t *testing.T) {
	t.Parallel()
	rl := NewRequestList(allocSpec())
	rl.Apply(ev(1, event.Enter, 1, "Acquire", "", 1))
	vs := rl.Apply(ev(2, event.Enter, 1, "Acquire", "", 1))
	if !rules.HasRule(vs, rules.ST8a) || !rules.HasFault(vs, faults.SelfDeadlock) {
		t.Fatalf("violations = %v, want ST-8a/SelfDeadlock", vs)
	}
}

func TestRequestListST8bReleaseWithoutAcquire(t *testing.T) {
	t.Parallel()
	rl := NewRequestList(allocSpec())
	vs := rl.Apply(ev(1, event.Enter, 1, "Release", "", 1))
	if !rules.HasRule(vs, rules.ST8b) || !rules.HasFault(vs, faults.ReleaseWithoutAcquire) {
		t.Fatalf("violations = %v, want ST-8b/ReleaseWithoutAcquire", vs)
	}
}

func TestRequestListST8cTlimit(t *testing.T) {
	t.Parallel()
	rl := NewRequestList(allocSpec())
	rl.Apply(ev(1, event.Enter, 1, "Acquire", "", 1))
	vs := rl.CheckTimers(t0.Add(time.Hour), time.Minute)
	if !rules.HasRule(vs, rules.ST8c) || !rules.HasFault(vs, faults.ResourceNeverReleased) {
		t.Fatalf("violations = %v, want ST-8c/ResourceNeverReleased", vs)
	}
	if vs := rl.CheckTimers(t0.Add(time.Second), time.Minute); len(vs) != 0 {
		t.Fatalf("ST-8c fired early: %v", vs)
	}
}

func TestRequestListDisabledWithoutProcNames(t *testing.T) {
	t.Parallel()
	spec := allocSpec()
	spec.AcquireProc, spec.ReleaseProc = "", ""
	rl := NewRequestList(spec)
	if rl.Enabled() {
		t.Fatal("request list should be disabled")
	}
	if vs := rl.Apply(ev(1, event.Enter, 1, "Release", "", 1)); vs != nil {
		t.Fatalf("disabled list produced %v", vs)
	}
	if vs := rl.CheckTimers(t0.Add(time.Hour), time.Minute); vs != nil {
		t.Fatalf("disabled timers produced %v", vs)
	}
}

func TestRequestListOtherMonitorEventsIgnored(t *testing.T) {
	t.Parallel()
	rl := NewRequestList(allocSpec())
	if vs := rl.Apply(ev(1, event.Enter, 1, "Status", "", 1)); len(vs) != 0 {
		t.Fatalf("unrelated procedure produced %v", vs)
	}
	if len(rl.Pids()) != 0 {
		t.Fatal("unrelated procedure grew the list")
	}
}
