// Package checklists implements the pseudo-historical checking lists of
// §3.3.1 — Enter-0-List, the Wait-Cond-Lists, Running-List, Resource-No
// and Request-List — together with the per-event ST-Rule checks the
// detection algorithms perform while replaying a segment.
//
// A Lists value is seeded from the monitor snapshot taken at the
// previous checkpoint (s_p), replays the event segment L recorded since
// then, and is finally compared against the current snapshot (s_t).
// Any event that cannot be explained as a consistent state
// transformation, and any disagreement between the reconstructed lists
// and the actual monitor state, is a rule violation.
//
// Replay is incremental on purpose: the batched checkpoint path
// (detect.Config.BatchSize over history.DB.DrainMonitorUpTo) seeds a
// Lists once per checkpoint via FromSnapshot and then feeds it the
// segment in bounded slices through Lists.Replay (or Apply, event by
// event, for allocator monitors whose request list interleaves its
// findings with the replay). Splitting a segment across any number of
// Replay calls yields the same violations as one call over the whole
// segment — that invariant is what makes batched checkpoints
// detection-equivalent to the paper's single-drain Step 1, and it also
// means a shard-local recovery reset can simply throw a seeded Lists
// away and reseed from the post-reset snapshot.
//
// One deliberate deviation from the paper's literal text: §3.3.1 says
// every Wait or Signal-Exit deletes the head of Enter-0-List. Taken
// literally that double-counts Signal-Exit events that resumed a
// condition waiter (flag 1), which hand the monitor to the condition
// queue, not the entry queue. We pop Enter-0-List on Wait and on
// Signal-Exit with flag 0, and pop the Wait-Cond-List on Signal-Exit
// with flag 1, which is the transition the FD-Rules (1.b, 1.c) actually
// specify.
package checklists

import (
	"fmt"
	"time"

	"robustmon/internal/event"
	"robustmon/internal/faults"
	"robustmon/internal/monitor"
	"robustmon/internal/rules"
	"robustmon/internal/state"
)

// Entry is one element of a checking list: the paper's Pid(Pr) pairs
// plus the enqueue instant backing Timer(Pid).
type Entry struct {
	Pid   int64
	Proc  string
	Since time.Time
}

// Lists holds the checking lists for one monitor over one checking
// segment. Construct with FromSnapshot.
type Lists struct {
	spec monitor.Spec

	// EnterQ is Enter-0-List: processes awaiting entry.
	EnterQ []Entry
	// WaitCond maps each condition to its Wait-Cond-List.
	WaitCond map[string][]Entry
	// Running is Running-List: processes inside the monitor. Correct
	// operation keeps it at most a singleton.
	Running []Entry
	// ResourceNo is Resource-No, the reconstructed R#.
	ResourceNo int
	// Sends and Recvs are the cumulative successful Send/Receive counts
	// (the paper's s and r), seeded with the totals carried over from
	// previous segments.
	Sends, Recvs int

	violations []rules.Violation
}

// FromSnapshot seeds the checking lists from the previous checkpoint's
// snapshot, as Algorithm-1 Step 1 prescribes. prevSends/prevRecvs carry
// the cumulative r and s counters across checkpoints (ST-Rule 7a is an
// invariant over the whole run, not one segment).
func FromSnapshot(spec monitor.Spec, snap state.Snapshot, prevSends, prevRecvs int) *Lists {
	l := &Lists{
		spec:       spec,
		WaitCond:   make(map[string][]Entry, len(snap.CQ)),
		ResourceNo: snap.Resources,
		Sends:      prevSends,
		Recvs:      prevRecvs,
	}
	for _, e := range snap.EQ {
		l.EnterQ = append(l.EnterQ, Entry{Pid: e.Pid, Proc: e.Proc, Since: e.Since})
	}
	for cond, q := range snap.CQ {
		entries := make([]Entry, 0, len(q))
		for _, e := range q {
			entries = append(entries, Entry{Pid: e.Pid, Proc: e.Proc, Since: e.Since})
		}
		l.WaitCond[cond] = entries
	}
	for _, cond := range spec.Conditions {
		if _, ok := l.WaitCond[cond]; !ok {
			l.WaitCond[cond] = nil
		}
	}
	for _, r := range snap.Running {
		l.Running = append(l.Running, Entry{Pid: r.Pid, Since: r.Since})
	}
	return l
}

// Violations returns the violations found so far during replay.
func (l *Lists) Violations() []rules.Violation { return l.violations }

// Replay applies one batch of a checking segment, in order. A Lists
// value seeded once with FromSnapshot can Replay any number of
// consecutive batches before the final CompareWith/CheckTimers pass —
// this is the incremental seeding behind the detector's batched
// checkpoints: the per-checkpoint seeding cost is paid once per
// checkpoint, not once per batch, and a huge segment can be drained
// and replayed in bounded slices.
func (l *Lists) Replay(seg event.Seq) {
	for _, e := range seg {
		l.Apply(e)
	}
}

func (l *Lists) violate(rule rules.ID, e event.Event, fault faults.Kind, format string, args ...any) {
	l.violations = append(l.violations, rules.Violation{
		Rule:    rule,
		Monitor: l.spec.Name,
		Pid:     e.Pid,
		Proc:    e.Proc,
		Cond:    e.Cond,
		Seq:     e.Seq,
		At:      e.Time,
		Fault:   fault,
		Message: fmt.Sprintf(format, args...),
	})
}

// Apply replays one event through the lists, performing the Step-1
// checks of Algorithm-1 and Algorithm-2.
func (l *Lists) Apply(e event.Event) {
	l.checkST4(e)
	switch e.Type {
	case event.Enter:
		l.applyEnter(e)
	case event.Wait:
		l.applyWait(e)
	case event.SignalExit:
		l.applySignalExit(e)
	}
	if len(l.Running) > 1 {
		l.violate(rules.ST3a, e, l.mutexFault(e),
			"Running-List has %d processes: %v", len(l.Running), l.runningPids())
	}
}

// mutexFault classifies an ST-3a violation by the primitive that
// caused the double occupancy.
func (l *Lists) mutexFault(e event.Event) faults.Kind {
	switch e.Type {
	case event.Enter:
		return faults.EnterMutexViolation
	case event.Wait:
		return faults.WaitMutexViolation
	default:
		return faults.SignalMutexViolation
	}
}

// checkST4 enforces ST-Rule 4: the causing process of a new event must
// not be sitting on Enter-0-List or any Wait-Cond-List.
func (l *Lists) checkST4(e event.Event) {
	for _, w := range l.EnterQ {
		if w.Pid == e.Pid {
			l.violate(rules.ST4, e, faults.EnterLostProcess,
				"P%d emits %s while still on Enter-0-List", e.Pid, e.Type)
		}
	}
	for cond, q := range l.WaitCond {
		for _, w := range q {
			if w.Pid == e.Pid {
				l.violate(rules.ST4, e, faults.WaitNoBlock,
					"P%d emits %s while still on Wait-Cond-List[%s]", e.Pid, e.Type, cond)
			}
		}
	}
}

func (l *Lists) applyEnter(e event.Event) {
	if e.Flag == event.Completed {
		// ST-3c: immediately granted entry requires an empty Running-List.
		if len(l.Running) != 0 {
			l.violate(rules.ST3c, e, faults.EnterMutexViolation,
				"Enter(flag 1) while Running-List = %v", l.runningPids())
		}
		l.Running = append(l.Running, Entry{Pid: e.Pid, Proc: e.Proc, Since: e.Time})
		return
	}
	// ST-3d: a delayed entry requires exactly one running process.
	if len(l.Running) != 1 {
		l.violate(rules.ST3d, e, faults.EnterNoResponse,
			"Enter(flag 0) while Running-List = %v (monitor not in use)", l.runningPids())
	}
	l.EnterQ = append(l.EnterQ, Entry{Pid: e.Pid, Proc: e.Proc, Since: e.Time})
}

func (l *Lists) applyWait(e event.Event) {
	l.checkST3b(e)
	l.removeRunning(e.Pid)
	if l.spec.Kind == monitor.CommunicationCoordinator {
		// ST-7c / ST-7d: a coordinator procedure may only be delayed at
		// the matching buffer boundary.
		switch e.Proc {
		case l.spec.SendProc:
			if l.ResourceNo != 0 {
				l.violate(rules.ST7c, e, faults.SendSpuriousDelay,
					"Send waits although Resource-No=%d ≠ 0", l.ResourceNo)
			}
		case l.spec.ReceiveProc:
			if l.ResourceNo != l.spec.Rmax {
				l.violate(rules.ST7d, e, faults.ReceiveSpuriousDelay,
					"Receive waits although Resource-No=%d ≠ Rmax=%d", l.ResourceNo, l.spec.Rmax)
			}
		}
	}
	l.WaitCond[e.Cond] = append(l.WaitCond[e.Cond], Entry{Pid: e.Pid, Proc: e.Proc, Since: e.Time})
	l.popEnterQ(e)
}

func (l *Lists) applySignalExit(e event.Event) {
	l.checkST3b(e)
	l.removeRunning(e.Pid)
	if e.Flag == event.Completed {
		q := l.WaitCond[e.Cond]
		if len(q) == 0 {
			l.violate(rules.ST2, e, 0,
				"Signal-Exit(flag 1) but Wait-Cond-List[%s] is empty", e.Cond)
		} else {
			head := q[0]
			l.WaitCond[e.Cond] = q[1:]
			l.Running = append(l.Running, Entry{Pid: head.Pid, Proc: head.Proc, Since: e.Time})
		}
	} else {
		l.popEnterQ(e)
	}
	if l.spec.Kind == monitor.CommunicationCoordinator {
		switch e.Proc {
		case l.spec.SendProc:
			l.Sends++
			l.ResourceNo--
		case l.spec.ReceiveProc:
			l.Recvs++
			l.ResourceNo++
		}
		if !(0 <= l.Recvs && l.Recvs <= l.Sends && l.Sends <= l.Recvs+l.spec.Rmax) {
			fault := faults.SendOverflow
			if l.Recvs > l.Sends {
				fault = faults.ReceiveOvertake
			}
			l.violate(rules.ST7a, e, fault,
				"0 ≤ r ≤ s ≤ r+Rmax violated: r=%d s=%d Rmax=%d", l.Recvs, l.Sends, l.spec.Rmax)
		}
	}
}

// checkST3b enforces ST-Rule 3b: a Wait or Signal-Exit may only come
// from the single process in Running-List.
func (l *Lists) checkST3b(e event.Event) {
	if len(l.Running) == 1 && l.Running[0].Pid == e.Pid {
		return
	}
	l.violate(rules.ST3b, e, faults.EnterNotObserved,
		"%s by P%d but Running-List = %v", e.Type, e.Pid, l.runningPids())
}

func (l *Lists) removeRunning(pid int64) {
	for i, r := range l.Running {
		if r.Pid == pid {
			l.Running = append(l.Running[:i], l.Running[i+1:]...)
			return
		}
	}
}

// popEnterQ models the resumption of the entry-queue head caused by a
// Wait or a non-signalling Signal-Exit.
func (l *Lists) popEnterQ(e event.Event) {
	if len(l.EnterQ) == 0 {
		return
	}
	head := l.EnterQ[0]
	l.EnterQ = l.EnterQ[1:]
	l.Running = append(l.Running, Entry{Pid: head.Pid, Proc: head.Proc, Since: e.Time})
}

func (l *Lists) runningPids() []int64 {
	out := make([]int64, len(l.Running))
	for i, r := range l.Running {
		out[i] = r.Pid
	}
	return out
}

// CompareWith performs Step 2 of Algorithm-1/2: the reconstructed lists
// must equal the actual monitor state at the current checkpoint.
func (l *Lists) CompareWith(snap state.Snapshot) []rules.Violation {
	var out []rules.Violation
	eq := make([]int64, len(l.EnterQ))
	for i, w := range l.EnterQ {
		eq[i] = w.Pid
	}
	cq := make(map[string][]int64, len(l.WaitCond))
	for cond, q := range l.WaitCond {
		pids := make([]int64, len(q))
		for i, w := range q {
			pids[i] = w.Pid
		}
		cq[cond] = pids
	}
	wantRes := l.spec.Kind == monitor.CommunicationCoordinator
	for _, d := range snap.CompareLists(eq, cq, l.runningPids(), l.ResourceNo, wantRes) {
		v := rules.Violation{
			Monitor: l.spec.Name,
			At:      snap.At,
			Message: fmt.Sprintf("reconstructed %s = %s but actual = %s", d.Field, d.Got, d.Want),
		}
		switch {
		case d.Field == "EQ":
			v.Rule, v.Fault = rules.ST1, faults.EnterLostProcess
		case d.Field == "Running":
			v.Rule, v.Fault = rules.STrn, faults.SignalMonitorNotReleased
		case d.Field == "Resources":
			v.Rule = rules.STrs
		default: // CQ[...]
			v.Rule, v.Fault = rules.ST2, faults.WaitLostProcess
		}
		out = append(out, v)
	}
	return out
}

// CheckTimers performs the timer checks of Algorithm-1 Step 2: ST-Rule
// 5 (Tmax on Running-List and the Wait-Cond-Lists) and ST-Rule 6 (Tio
// on Enter-0-List). Zero durations disable the corresponding check.
func (l *Lists) CheckTimers(now time.Time, tmax, tio time.Duration) []rules.Violation {
	var out []rules.Violation
	if tmax > 0 {
		for _, r := range l.Running {
			if now.Sub(r.Since) >= tmax {
				out = append(out, rules.Violation{
					Rule: rules.ST5, Monitor: l.spec.Name, Pid: r.Pid, At: now,
					Fault:   faults.InternalTermination,
					Message: fmt.Sprintf("Timer(P%d) = %v ≥ Tmax on Running-List", r.Pid, now.Sub(r.Since)),
				})
			}
		}
		for cond, q := range l.WaitCond {
			for _, w := range q {
				if now.Sub(w.Since) >= tmax {
					out = append(out, rules.Violation{
						Rule: rules.ST5, Monitor: l.spec.Name, Pid: w.Pid, Cond: cond, At: now,
						Fault:   faults.SignalNoResume,
						Message: fmt.Sprintf("Timer(P%d) = %v ≥ Tmax on Wait-Cond-List[%s]", w.Pid, now.Sub(w.Since), cond),
					})
				}
			}
		}
	}
	if tio > 0 {
		for _, w := range l.EnterQ {
			if now.Sub(w.Since) >= tio {
				out = append(out, rules.Violation{
					Rule: rules.ST6, Monitor: l.spec.Name, Pid: w.Pid, At: now,
					Fault:   faults.EnterNoResponse,
					Message: fmt.Sprintf("Timer(P%d) = %v ≥ Tio on Enter-0-List", w.Pid, now.Sub(w.Since)),
				})
			}
		}
	}
	return out
}
