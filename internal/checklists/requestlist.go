package checklists

import (
	"fmt"
	"time"

	"robustmon/internal/event"
	"robustmon/internal/faults"
	"robustmon/internal/monitor"
	"robustmon/internal/rules"
)

// RequestList is the §3.3.1 Request-List for a resource-access-right
// allocator: the processes currently holding (or requesting) the
// resource. Unlike the other checking lists it is initialised once and
// persists across checkpoints (§3.3.2 — "No Pid can be in Request-List
// forever" only makes sense for a list that outlives one segment).
//
// ST-Rule 8 checks:
//
//	8a — no Pid appears twice (a process re-acquiring what it holds is
//	     deadlocked with itself);
//	8b — a Release must come from a Pid on the list;
//	8c — no Pid stays on the list past Tlimit.
type RequestList struct {
	spec    monitor.Spec
	entries []Entry
}

// NewRequestList returns an empty Request-List for the given allocator
// declaration. It is inert (Apply never flags anything) when the spec
// does not name AcquireProc/ReleaseProc.
func NewRequestList(spec monitor.Spec) *RequestList {
	return &RequestList{spec: spec}
}

// Enabled reports whether the declaration names the acquire/release
// procedures, i.e. whether Algorithm-3's Request-List mechanics apply.
func (r *RequestList) Enabled() bool {
	return r.spec.AcquireProc != "" && r.spec.ReleaseProc != ""
}

// Pids returns the pids currently on the list, in acquisition order.
func (r *RequestList) Pids() []int64 {
	out := make([]int64, len(r.entries))
	for i, e := range r.entries {
		out[i] = e.Pid
	}
	return out
}

// Apply replays one event, returning any ST-Rule 8 violations.
//
// Following the paper: the list grows at Enter(Pid, Acquire) — both
// flags, a queued request is still a request — and shrinks at
// Signal-Exit(Pid, Release). Membership for a Release is checked at its
// Enter so the violation is attributed to the offending call.
func (r *RequestList) Apply(e event.Event) []rules.Violation {
	if !r.Enabled() {
		return nil
	}
	var out []rules.Violation
	switch {
	case e.Type == event.Enter && e.Proc == r.spec.AcquireProc:
		for _, cur := range r.entries {
			if cur.Pid == e.Pid {
				out = append(out, rules.Violation{
					Rule: rules.ST8a, Monitor: r.spec.Name, Pid: e.Pid, Proc: e.Proc,
					Seq: e.Seq, At: e.Time, Fault: faults.SelfDeadlock,
					Message: fmt.Sprintf("P%d acquires again while already on Request-List", e.Pid),
				})
			}
		}
		r.entries = append(r.entries, Entry{Pid: e.Pid, Proc: e.Proc, Since: e.Time})
	case e.Type == event.Enter && e.Proc == r.spec.ReleaseProc:
		if !r.contains(e.Pid) {
			out = append(out, rules.Violation{
				Rule: rules.ST8b, Monitor: r.spec.Name, Pid: e.Pid, Proc: e.Proc,
				Seq: e.Seq, At: e.Time, Fault: faults.ReleaseWithoutAcquire,
				Message: fmt.Sprintf("P%d releases but is not on Request-List", e.Pid),
			})
		}
	case e.Type == event.SignalExit && e.Proc == r.spec.ReleaseProc:
		r.remove(e.Pid)
	}
	return out
}

// CheckTimers performs Algorithm-3 Step 2: no process may stay on the
// Request-List for Tlimit or longer. A zero tlimit disables the check.
func (r *RequestList) CheckTimers(now time.Time, tlimit time.Duration) []rules.Violation {
	if !r.Enabled() || tlimit <= 0 {
		return nil
	}
	var out []rules.Violation
	for _, e := range r.entries {
		if now.Sub(e.Since) >= tlimit {
			out = append(out, rules.Violation{
				Rule: rules.ST8c, Monitor: r.spec.Name, Pid: e.Pid, At: now,
				Fault:   faults.ResourceNeverReleased,
				Message: fmt.Sprintf("P%d on Request-List for %v ≥ Tlimit", e.Pid, now.Sub(e.Since)),
			})
		}
	}
	return out
}

func (r *RequestList) contains(pid int64) bool {
	for _, e := range r.entries {
		if e.Pid == pid {
			return true
		}
	}
	return false
}

func (r *RequestList) remove(pid int64) {
	for i, e := range r.entries {
		if e.Pid == pid {
			r.entries = append(r.entries[:i], r.entries[i+1:]...)
			return
		}
	}
}
