package event

import (
	"bytes"
	"runtime"
	"testing"
	"time"
)

// FuzzReadBinary throws corrupt, truncated and hostile inputs at the
// binary trace decoder. The contract: ReadBinary either returns a
// valid decode or an error — it must never panic, and a lying length
// field must never trigger a huge allocation before the decode loop
// has proven the stream real (the pre-size cap in ReadBinary).
func FuzzReadBinary(f *testing.F) {
	// Seed: a well-formed two-event trace, its truncations, and a few
	// classic liars.
	var good bytes.Buffer
	err := WriteBinary(&good, Seq{
		{Seq: 1, Monitor: "buf", Type: Enter, Pid: 3, Proc: "Send", Flag: Completed,
			Time: time.Date(2001, 7, 1, 0, 0, 0, 0, time.UTC)},
		{Seq: 2, Monitor: "buf", Type: SignalExit, Pid: 3, Proc: "Send", Cond: "notEmpty", Flag: Blocked,
			Time: time.Date(2001, 7, 1, 0, 0, 1, 0, time.UTC)},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good.Bytes())
	for _, cut := range []int{0, 3, 4, 5, 7, good.Len() / 2, good.Len() - 1} {
		if cut < good.Len() {
			f.Add(good.Bytes()[:cut])
		}
	}
	f.Add([]byte{'R', 'M', 'T', 1, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}) // absurd count
	f.Add([]byte{'R', 'M', 'T', 1, 0x02, 0x01})                                                 // count 2, garbage event
	f.Add([]byte("not a trace at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		trace, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successful decode must round-trip: re-encoding and
		// re-decoding yields the same events.
		var buf bytes.Buffer
		if err := WriteBinary(&buf, trace); err != nil {
			t.Fatalf("re-encode of accepted trace failed: %v", err)
		}
		again, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("re-decode of accepted trace failed: %v", err)
		}
		if len(again) != len(trace) {
			t.Fatalf("round trip changed length: %d → %d", len(trace), len(again))
		}
		for i := range trace {
			if !trace[i].Time.Equal(again[i].Time) {
				t.Fatalf("event %d time changed in round trip", i)
			}
			a, b := trace[i], again[i]
			a.Time, b.Time = time.Time{}, time.Time{}
			if a != b {
				t.Fatalf("event %d changed in round trip: %+v → %+v", i, trace[i], again[i])
			}
		}
	})
}

// TestReadBinaryLyingCountDoesNotOverAllocate pins the pre-size guard
// directly: a tiny stream whose header claims 2^29 events must fail
// with a decode error, not allocate gigabytes first.
func TestReadBinaryLyingCountDoesNotOverAllocate(t *testing.T) {
	// Not parallel: the allocation measurement below would absorb other
	// tests' allocations.
	var buf bytes.Buffer
	buf.Write([]byte{'R', 'M', 'T', 1})
	// uvarint 1<<29 = 0x80 0x80 0x80 0x80 0x02, then nothing: the
	// stream dies on the first event.
	buf.Write([]byte{0x80, 0x80, 0x80, 0x80, 0x02})
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	if _, err := ReadBinary(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("ReadBinary accepted a truncated stream claiming 2^29 events")
	}
	runtime.ReadMemStats(&after)
	// 2^29 events would be tens of GiB of Seq backing array; the guard
	// caps the speculative allocation to 4096 entries (< 1 MiB).
	if grew := after.TotalAlloc - before.TotalAlloc; grew > 1<<20 {
		t.Fatalf("ReadBinary allocated %d bytes on a lying 9-byte stream", grew)
	}
}

// FuzzAppendBinary pins the two encoders to each other: any trace the
// decoder accepts must produce byte-identical output through
// WriteBinary (the io.Writer path) and AppendBinary (the pooled-buffer
// path the batched WAL sink uses), and that encoding must round-trip.
// A divergence here would mean a WAL written by the pooled path reads
// back differently from one written by the legacy path.
func FuzzAppendBinary(f *testing.F) {
	var good bytes.Buffer
	err := WriteBinary(&good, Seq{
		{Seq: 1, Monitor: "buf", Type: Enter, Pid: 3, Proc: "Send", Flag: Completed,
			Time: time.Date(2001, 7, 1, 0, 0, 0, 0, time.UTC)},
		{Seq: 2, Monitor: "buf", Type: Wait, Pid: 3, Proc: "Send", Cond: "notEmpty", Flag: Blocked,
			Time: time.Date(2001, 7, 1, 0, 0, 1, 0, time.UTC)},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good.Bytes())
	f.Add(AppendBinary(nil, nil)) // empty trace header
	f.Add([]byte("junk"))

	f.Fuzz(func(t *testing.T, data []byte) {
		trace, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		var w bytes.Buffer
		if err := WriteBinary(&w, trace); err != nil {
			t.Fatalf("WriteBinary of accepted trace failed: %v", err)
		}
		appended := AppendBinary(nil, trace)
		if !bytes.Equal(appended, w.Bytes()) {
			t.Fatalf("encoders diverged for %d events:\n  append %x\n  write  %x",
				len(trace), appended, w.Bytes())
		}
		again, err := ReadBinary(bytes.NewReader(appended))
		if err != nil {
			t.Fatalf("decode of AppendBinary output failed: %v", err)
		}
		if len(again) != len(trace) {
			t.Fatalf("round trip changed length: %d → %d", len(trace), len(again))
		}
	})
}
