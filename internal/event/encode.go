package event

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"
)

// Codecs for exporting/importing history traces. Two formats are
// supported:
//
//   - JSON Lines (one event object per line), for human inspection and
//     interoperability with other tooling;
//   - a compact length-prefixed binary format, for large traces.
//
// Both round-trip every field including the timestamp at nanosecond
// resolution.

// ErrBadMagic reports that a binary stream does not start with the
// trace header.
var ErrBadMagic = errors.New("event: bad trace magic")

// binaryMagic identifies a binary trace stream; the trailing byte is a
// format version.
var binaryMagic = [4]byte{'R', 'M', 'T', 1}

// WriteJSON writes the sequence as JSON Lines.
func WriteJSON(w io.Writer, s Seq) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i, e := range s {
		if err := enc.Encode(e); err != nil {
			return fmt.Errorf("event: encode json event %d: %w", i, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("event: flush json trace: %w", err)
	}
	return nil
}

// ReadJSON reads a JSON Lines trace until EOF.
func ReadJSON(r io.Reader) (Seq, error) {
	dec := json.NewDecoder(r)
	var out Seq
	for {
		var e Event
		if err := dec.Decode(&e); err != nil {
			if errors.Is(err, io.EOF) {
				return out, nil
			}
			return nil, fmt.Errorf("event: decode json event %d: %w", len(out), err)
		}
		out = append(out, e)
	}
}

// WriteBinary writes the sequence in the compact binary trace format.
func WriteBinary(w io.Writer, s Seq) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return fmt.Errorf("event: write trace magic: %w", err)
	}
	var scratch [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}
	putVarint := func(v int64) error {
		n := binary.PutVarint(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}
	putString := func(v string) error {
		if err := putUvarint(uint64(len(v))); err != nil {
			return err
		}
		_, err := bw.WriteString(v)
		return err
	}
	if err := putUvarint(uint64(len(s))); err != nil {
		return fmt.Errorf("event: write trace length: %w", err)
	}
	for i, e := range s {
		err := errors.Join(
			putVarint(e.Seq),
			putString(e.Monitor),
			putUvarint(uint64(e.Type)),
			putVarint(e.Pid),
			putString(e.Proc),
			putString(e.Cond),
			putUvarint(uint64(e.Flag)),
			putVarint(e.Time.UnixNano()),
		)
		if err != nil {
			return fmt.Errorf("event: write binary event %d: %w", i, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("event: flush binary trace: %w", err)
	}
	return nil
}

// AppendBinary appends the sequence's binary trace encoding to dst and
// returns the extended slice, exactly the bytes WriteBinary would have
// written (pinned by TestAppendBinaryMatchesWriteBinary and
// FuzzAppendBinary). It is the allocation-free encode for the export
// hot path: callers hand it a pooled buffer (dst may be nil) and the
// only allocations are the amortised growth of dst itself.
func AppendBinary(dst []byte, s Seq) []byte {
	dst = append(dst, binaryMagic[:]...)
	var scratch [binary.MaxVarintLen64]byte
	dst = append(dst, scratch[:binary.PutUvarint(scratch[:], uint64(len(s)))]...)
	for i := range s {
		dst = appendEventBinary(dst, &s[i])
	}
	return dst
}

// appendEventBinary appends one event's binary encoding — the field
// order of WriteBinary's encode loop.
func appendEventBinary(dst []byte, e *Event) []byte {
	var scratch [binary.MaxVarintLen64]byte
	putVarint := func(v int64) {
		dst = append(dst, scratch[:binary.PutVarint(scratch[:], v)]...)
	}
	putUvarint := func(v uint64) {
		dst = append(dst, scratch[:binary.PutUvarint(scratch[:], v)]...)
	}
	putString := func(v string) {
		putUvarint(uint64(len(v)))
		dst = append(dst, v...)
	}
	putVarint(e.Seq)
	putString(e.Monitor)
	putUvarint(uint64(e.Type))
	putVarint(e.Pid)
	putString(e.Proc)
	putString(e.Cond)
	putUvarint(uint64(e.Flag))
	putVarint(e.Time.UnixNano())
	return dst
}

// ReadBinary reads a binary trace written by WriteBinary.
func ReadBinary(r io.Reader) (Seq, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("event: read trace magic: %w", err)
	}
	if magic != binaryMagic {
		return nil, ErrBadMagic
	}
	getString := func() (string, error) {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return "", err
		}
		if n > 1<<20 {
			return "", fmt.Errorf("event: implausible string length %d", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("event: read trace length: %w", err)
	}
	if count > 1<<30 {
		return nil, fmt.Errorf("event: implausible trace length %d", count)
	}
	// Pre-size from the declared count, but cap the speculative
	// allocation: the count field of a corrupt or truncated stream must
	// not make the reader balloon before the decode loop fails.
	out := make(Seq, 0, min(count, 4096))
	for i := uint64(0); i < count; i++ {
		var e Event
		if e.Seq, err = binary.ReadVarint(br); err != nil {
			return nil, fmt.Errorf("event: read event %d seq: %w", i, err)
		}
		if e.Monitor, err = getString(); err != nil {
			return nil, fmt.Errorf("event: read event %d monitor: %w", i, err)
		}
		typ, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("event: read event %d type: %w", i, err)
		}
		e.Type = Type(typ)
		if e.Pid, err = binary.ReadVarint(br); err != nil {
			return nil, fmt.Errorf("event: read event %d pid: %w", i, err)
		}
		if e.Proc, err = getString(); err != nil {
			return nil, fmt.Errorf("event: read event %d proc: %w", i, err)
		}
		if e.Cond, err = getString(); err != nil {
			return nil, fmt.Errorf("event: read event %d cond: %w", i, err)
		}
		flag, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("event: read event %d flag: %w", i, err)
		}
		e.Flag = int(flag)
		nanos, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("event: read event %d time: %w", i, err)
		}
		e.Time = time.Unix(0, nanos).UTC()
		out = append(out, e)
	}
	return out, nil
}
