package event

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func sampleSeq() Seq {
	return Seq{
		mk(1, Enter, 1, "Send", "", 1),
		mk(2, Wait, 1, "Send", "notFull", 0),
		mk(3, Enter, 2, "Receive", "", 1),
		mk(4, SignalExit, 2, "Receive", "notFull", 1),
		mk(5, SignalExit, 1, "Send", "", 0),
	}
}

func seqsEqual(a, b Seq) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.Seq != y.Seq || x.Monitor != y.Monitor || x.Type != y.Type ||
			x.Pid != y.Pid || x.Proc != y.Proc || x.Cond != y.Cond ||
			x.Flag != y.Flag || !x.Time.Equal(y.Time) {
			return false
		}
	}
	return true
}

func TestJSONRoundTrip(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	s := sampleSeq()
	if err := WriteJSON(&buf, s); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if !seqsEqual(s, got) {
		t.Fatalf("round trip mismatch:\n in: %v\nout: %v", s, got)
	}
}

func TestJSONIsLineOriented(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, sampleSeq()); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	lines := strings.Count(buf.String(), "\n")
	if lines != len(sampleSeq()) {
		t.Fatalf("got %d lines, want %d", lines, len(sampleSeq()))
	}
}

func TestJSONReadGarbage(t *testing.T) {
	t.Parallel()
	if _, err := ReadJSON(strings.NewReader("{not json")); err == nil {
		t.Fatal("ReadJSON accepted garbage")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	s := sampleSeq()
	if err := WriteBinary(&buf, s); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	if !seqsEqual(s, got) {
		t.Fatalf("round trip mismatch:\n in: %v\nout: %v", s, got)
	}
}

func TestBinaryEmptySeq(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, nil); err != nil {
		t.Fatalf("WriteBinary(nil): %v", err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("got %d events, want 0", len(got))
	}
}

func TestBinaryBadMagic(t *testing.T) {
	t.Parallel()
	if _, err := ReadBinary(strings.NewReader("XXXXgarbage")); err != ErrBadMagic {
		t.Fatalf("ReadBinary bad magic error = %v, want ErrBadMagic", err)
	}
}

func TestBinaryTruncated(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, sampleSeq()); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	raw := buf.Bytes()
	for _, cut := range []int{5, 10, len(raw) - 1} {
		if cut >= len(raw) {
			continue
		}
		if _, err := ReadBinary(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("ReadBinary accepted a trace truncated at %d bytes", cut)
		}
	}
}

func randomEvent(rng *rand.Rand, seq int64) Event {
	typs := []Type{Enter, Wait, SignalExit}
	typ := typs[rng.Intn(len(typs))]
	cond := ""
	if typ != Enter {
		cond = []string{"notFull", "notEmpty", "free", "c"}[rng.Intn(4)]
	}
	return Event{
		Seq:     seq,
		Monitor: []string{"buf", "alloc", "rw"}[rng.Intn(3)],
		Type:    typ,
		Pid:     rng.Int63n(100) + 1,
		Proc:    []string{"Send", "Receive", "Acquire", "Release"}[rng.Intn(4)],
		Cond:    cond,
		Flag:    rng.Intn(2),
		Time:    t0.Add(time.Duration(rng.Int63n(1e9))).UTC(),
	}
}

// TestCodecsQuickRoundTrip fuzzes both codecs with random traces.
func TestCodecsQuickRoundTrip(t *testing.T) {
	t.Parallel()
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := make(Seq, 0, n)
		for i := int64(1); i <= int64(n); i++ {
			s = append(s, randomEvent(rng, i))
		}
		var jb, bb bytes.Buffer
		if WriteJSON(&jb, s) != nil || WriteBinary(&bb, s) != nil {
			return false
		}
		js, err1 := ReadJSON(&jb)
		bs, err2 := ReadBinary(&bb)
		return err1 == nil && err2 == nil && seqsEqual(s, js) && seqsEqual(s, bs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAppendBinaryMatchesWriteBinary(t *testing.T) {
	t.Parallel()
	for _, s := range []Seq{nil, {}, sampleSeq()} {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, s); err != nil {
			t.Fatal(err)
		}
		got := AppendBinary(nil, s)
		if !bytes.Equal(got, buf.Bytes()) {
			t.Fatalf("AppendBinary diverged from WriteBinary for %d events:\n  append %x\n  write  %x",
				len(s), got, buf.Bytes())
		}
		// Appending onto an existing prefix must leave the prefix intact
		// and produce the same encoding after it — the pooled-buffer
		// contract the WAL sink relies on.
		withPrefix := AppendBinary([]byte("prefix"), s)
		if !bytes.HasPrefix(withPrefix, []byte("prefix")) || !bytes.Equal(withPrefix[6:], buf.Bytes()) {
			t.Fatalf("AppendBinary with prefix diverged")
		}
	}
}

func TestAppendBinaryIsAllocFreeIntoSizedBuffer(t *testing.T) {
	// Not parallel: AllocsPerRun measures the whole process heap.
	s := sampleSeq()
	dst := make([]byte, 0, 4096)
	if avg := testing.AllocsPerRun(100, func() {
		dst = AppendBinary(dst[:0], s)
	}); avg != 0 {
		t.Fatalf("AppendBinary into a sized buffer allocates %.1f times per call, want 0", avg)
	}
}
