package event

import (
	"testing"
	"time"
)

func seqOf(monitor string, seqs ...int64) Seq {
	out := make(Seq, 0, len(seqs))
	for _, n := range seqs {
		out = append(out, Event{
			Seq: n, Monitor: monitor, Type: Enter, Pid: n, Proc: "P",
			Flag: Completed, Time: time.Date(2001, 7, 1, 0, 0, 0, 0, time.UTC),
		})
	}
	return out
}

func TestMergeRestoresGlobalOrder(t *testing.T) {
	t.Parallel()
	merged := Merge(
		seqOf("a", 1, 4, 5, 9),
		seqOf("b", 2, 3, 8),
		seqOf("c", 6, 7),
	)
	if len(merged) != 9 {
		t.Fatalf("Merge returned %d events, want 9", len(merged))
	}
	if err := merged.Validate(); err != nil {
		t.Fatalf("merged sequence invalid: %v", err)
	}
	for i, e := range merged {
		if e.Seq != int64(i+1) {
			t.Fatalf("merged[%d].Seq = %d, want %d", i, e.Seq, i+1)
		}
	}
}

func TestMergeEdgeCases(t *testing.T) {
	t.Parallel()
	if got := Merge(); got != nil {
		t.Fatalf("Merge() = %v, want nil", got)
	}
	if got := Merge(nil, Seq{}, nil); got != nil {
		t.Fatalf("Merge of empties = %v, want nil", got)
	}
	one := seqOf("a", 1, 2, 3)
	got := Merge(nil, one, Seq{})
	if len(got) != 3 {
		t.Fatalf("single-input Merge = %v", got)
	}
	got[0].Pid = 99
	if one[0].Pid == 99 {
		t.Fatal("single-input Merge aliases its input")
	}
}

func TestMergeManyShards(t *testing.T) {
	t.Parallel()
	// Round-robin 16 shards over 1..1600, as a 16-monitor database would
	// produce under a strict rotation.
	const shards, per = 16, 100
	in := make([]Seq, shards)
	for s := 0; s < shards; s++ {
		for i := 0; i < per; i++ {
			in[s] = append(in[s], Event{
				Seq: int64(i*shards + s + 1), Monitor: "m", Type: Enter,
				Pid: 1, Proc: "P", Flag: Completed,
			})
		}
	}
	merged := Merge(in...)
	if len(merged) != shards*per {
		t.Fatalf("merged %d events, want %d", len(merged), shards*per)
	}
	for i, e := range merged {
		if e.Seq != int64(i+1) {
			t.Fatalf("merged[%d].Seq = %d, want %d", i, e.Seq, i+1)
		}
	}
}
