package event

import (
	"strings"
	"testing"
	"time"
)

var t0 = time.Date(2001, 7, 1, 12, 0, 0, 0, time.UTC)

func mk(seq int64, typ Type, pid int64, proc, cond string, flag int) Event {
	return Event{
		Seq: seq, Monitor: "buf", Type: typ, Pid: pid,
		Proc: proc, Cond: cond, Flag: flag,
		Time: t0.Add(time.Duration(seq) * time.Millisecond),
	}
}

func TestTypeString(t *testing.T) {
	t.Parallel()
	cases := []struct {
		typ  Type
		want string
	}{
		{Enter, "Enter"},
		{Wait, "Wait"},
		{SignalExit, "Signal-Exit"},
		{Type(99), "Type(99)"},
	}
	for _, tc := range cases {
		if got := tc.typ.String(); got != tc.want {
			t.Errorf("Type(%d).String() = %q, want %q", int(tc.typ), got, tc.want)
		}
	}
}

func TestEventStringPaperNotation(t *testing.T) {
	t.Parallel()
	cases := []struct {
		e    Event
		want string
	}{
		{mk(1, Enter, 3, "Send", "", 1), "Enter(P3, Send, 1)"},
		{mk(2, Wait, 3, "Send", "notFull", 0), "Wait(P3, Send, notFull)"},
		{mk(3, SignalExit, 3, "Send", "notEmpty", 0), "Signal-Exit(P3, Send, notEmpty, 0)"},
		{mk(4, Type(0), 3, "X", "", 0), "UnknownEvent(P3, X)"},
	}
	for _, tc := range cases {
		if got := tc.e.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}

func TestPrecedesMatchesSeqOrder(t *testing.T) {
	t.Parallel()
	a := mk(1, Enter, 1, "P", "", 1)
	b := mk(2, Wait, 1, "P", "c", 0)
	if !a.Precedes(b) || b.Precedes(a) || a.Precedes(a) {
		t.Fatal("Precedes is not the strict Seq order")
	}
}

func TestValidate(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name    string
		e       Event
		wantErr string
	}{
		{"ok enter", mk(1, Enter, 1, "P", "", 1), ""},
		{"ok wait", mk(1, Wait, 1, "P", "c", 0), ""},
		{"ok signal-exit no cond", mk(1, SignalExit, 1, "P", "", 0), ""},
		{"bad type", mk(1, Type(9), 1, "P", "", 0), "invalid type"},
		{"zero pid", mk(1, Enter, 0, "P", "", 1), "zero pid"},
		{"bad flag", mk(1, Enter, 1, "P", "", 7), "outside {0,1}"},
		{"wait without cond", mk(1, Wait, 1, "P", "", 0), "Wait without condition"},
		{"enter with cond", Event{Seq: 1, Type: Enter, Pid: 1, Proc: "P", Cond: "c", Flag: 1}, "Enter with condition"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			err := tc.e.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

func TestSeqSubSeq(t *testing.T) {
	t.Parallel()
	s := Seq{
		mk(1, Enter, 1, "P", "", 1),
		mk(2, Wait, 1, "P", "c", 0),
		mk(3, SignalExit, 2, "P", "c", 1),
		mk(4, SignalExit, 1, "P", "", 0),
	}
	sub := s.SubSeq(2, 3)
	if len(sub) != 2 || sub[0].Seq != 2 || sub[1].Seq != 3 {
		t.Fatalf("SubSeq(2,3) = %v", sub)
	}
	if got := s.SubSeq(10, 20); len(got) != 0 {
		t.Fatalf("SubSeq outside range = %v, want empty", got)
	}
}

func TestSeqFilters(t *testing.T) {
	t.Parallel()
	s := Seq{
		mk(1, Enter, 1, "Send", "", 1),
		mk(2, Wait, 2, "Receive", "empty", 0),
		mk(3, SignalExit, 1, "Send", "empty", 1),
	}
	s[1].Monitor = "other"
	if got := s.ByPid(1); len(got) != 2 {
		t.Fatalf("ByPid(1) returned %d events, want 2", len(got))
	}
	if got := s.ByMonitor("buf"); len(got) != 2 {
		t.Fatalf("ByMonitor(buf) returned %d events, want 2", len(got))
	}
	pids := s.Pids()
	if len(pids) != 2 || pids[0] != 1 || pids[1] != 2 {
		t.Fatalf("Pids = %v, want [1 2]", pids)
	}
	conds := s.Conds()
	if len(conds) != 1 || conds[0] != "empty" {
		t.Fatalf("Conds = %v, want [empty]", conds)
	}
}

func TestSeqValidate(t *testing.T) {
	t.Parallel()
	good := Seq{mk(1, Enter, 1, "P", "", 1), mk(2, Wait, 1, "P", "c", 0)}
	if err := good.Validate(); err != nil {
		t.Fatalf("Validate() = %v, want nil", err)
	}
	dup := Seq{mk(5, Enter, 1, "P", "", 1), mk(5, Wait, 1, "P", "c", 0)}
	if err := dup.Validate(); err == nil {
		t.Fatal("Validate accepted duplicate sequence numbers")
	}
	unregistered := Seq{mk(0, Enter, 1, "P", "", 1)}
	if err := unregistered.Validate(); err == nil {
		t.Fatal("Validate accepted a zero sequence number")
	}
}

func TestSeqCounts(t *testing.T) {
	t.Parallel()
	s := Seq{
		mk(1, Enter, 1, "Send", "", 1),
		mk(2, SignalExit, 1, "Send", "notEmpty", 0),
		mk(3, Enter, 2, "Receive", "", 1),
		mk(4, SignalExit, 2, "Receive", "notFull", 0),
		mk(5, SignalExit, 3, "Send", "notEmpty", 1),
	}
	sends, recvs := s.Counts("Send", "Receive")
	if sends != 2 || recvs != 1 {
		t.Fatalf("Counts = (%d,%d), want (2,1)", sends, recvs)
	}
}
