package event

import (
	"container/heap"
	"fmt"
)

// Seq is a scheduling event sequence L = l1 … ln. The slice order is
// the <L order; Seq values inside the events are consistent with it
// when the sequence came from the history database.
type Seq []Event

// SubSeq returns the paper's L_{i,j}: the subsequence of events whose
// sequence numbers lie in [i, j], preserving order. Events with Seq 0
// (never registered with a history database) are excluded.
func (s Seq) SubSeq(i, j int64) Seq {
	out := make(Seq, 0, len(s))
	for _, e := range s {
		if e.Seq >= i && e.Seq <= j && e.Seq != 0 {
			out = append(out, e)
		}
	}
	return out
}

// ByPid returns the subsequence of events caused by process pid.
func (s Seq) ByPid(pid int64) Seq {
	out := make(Seq, 0, len(s))
	for _, e := range s {
		if e.Pid == pid {
			out = append(out, e)
		}
	}
	return out
}

// ByMonitor returns the subsequence of events on the named monitor.
func (s Seq) ByMonitor(name string) Seq {
	out := make(Seq, 0, len(s))
	for _, e := range s {
		if e.Monitor == name {
			out = append(out, e)
		}
	}
	return out
}

// Pids returns the distinct pids appearing in the sequence, in order of
// first appearance.
func (s Seq) Pids() []int64 {
	seen := make(map[int64]bool, 8)
	var out []int64
	for _, e := range s {
		if !seen[e.Pid] {
			seen[e.Pid] = true
			out = append(out, e.Pid)
		}
	}
	return out
}

// Conds returns the distinct condition names appearing in the sequence,
// in order of first appearance (the empty condition is skipped).
func (s Seq) Conds() []string {
	seen := make(map[string]bool, 4)
	var out []string
	for _, e := range s {
		if e.Cond != "" && !seen[e.Cond] {
			seen[e.Cond] = true
			out = append(out, e.Cond)
		}
	}
	return out
}

// Validate checks every event and that sequence numbers are strictly
// increasing (events with Seq 0 are rejected here: a checked sequence
// must have been registered).
func (s Seq) Validate() error {
	var prev int64
	for idx, e := range s {
		if err := e.Validate(); err != nil {
			return fmt.Errorf("seq[%d]: %w", idx, err)
		}
		if e.Seq <= prev {
			return fmt.Errorf("seq[%d]: sequence number %d not increasing (previous %d)", idx, e.Seq, prev)
		}
		prev = e.Seq
	}
	return nil
}

// Merge interleaves already-ordered sequences into one sequence ordered
// by sequence number — the <L order. The sharded history database keeps
// one seq-sorted segment per monitor and merges them on global drains
// and full-trace exports, so the merged result is exactly the sequence
// a single global database would have recorded. Inputs must each be
// sorted by Seq (as database segments are); empty inputs are skipped.
func Merge(seqs ...Seq) Seq {
	n, nonEmpty := 0, 0
	var last Seq
	for _, s := range seqs {
		if len(s) == 0 {
			continue
		}
		n += len(s)
		nonEmpty++
		last = s
	}
	switch nonEmpty {
	case 0:
		return nil
	case 1:
		return append(Seq(nil), last...)
	}
	h := make(mergeHeap, 0, nonEmpty)
	for _, s := range seqs {
		if len(s) > 0 {
			h = append(h, s)
		}
	}
	heap.Init(&h)
	out := make(Seq, 0, n)
	for len(h) > 0 {
		s := h[0]
		out = append(out, s[0])
		if len(s) > 1 {
			h[0] = s[1:]
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
	}
	return out
}

// mergeHeap is a min-heap of non-empty sequences keyed by the Seq of
// their head event.
type mergeHeap []Seq

func (h mergeHeap) Len() int           { return len(h) }
func (h mergeHeap) Less(i, j int) bool { return h[i][0].Seq < h[j][0].Seq }
func (h mergeHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)        { *h = append(*h, x.(Seq)) }
func (h *mergeHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Counts tallies successful Send/Receive completions in the sequence
// for the resource-state invariants of FD-Rule 6 / ST-Rule 7: s is the
// number of Signal-Exit events issued from sendProc, r the number
// issued from recvProc.
func (s Seq) Counts(sendProc, recvProc string) (sends, recvs int) {
	for _, e := range s {
		if e.Type != SignalExit {
			continue
		}
		switch e.Proc {
		case sendProc:
			sends++
		case recvProc:
			recvs++
		}
	}
	return sends, recvs
}
