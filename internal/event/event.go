// Package event defines the monitor scheduling events of the paper's
// history model (§3.1, simplified per §3.3.1).
//
// The run-time operation of a monitor is modelled as a finite sequence
// of scheduling events L = l1 l2 … ln drawn from
//
//	EVENTset = { Enter(Pid, Pname, flag),
//	             Wait(Pid, Pname, Cond),
//	             Signal-Exit(Pid, Pname, Cond, flag) }
//
// Flags follow the paper: for Enter, flag 1 means the process entered
// immediately and flag 0 means it blocked on the entry queue (a later
// resume emits no new event — the checker models resumption as a
// deletion from Enter-0-List). For Signal-Exit, flag 1 means a process
// waiting on the named condition queue was resumed, flag 0 means none
// was (the monitor passed to an entry-queue waiter or became free).
//
// Events carry a timestamp and a monotonically increasing sequence
// number assigned by the history database; the precedence relation <L
// of the paper is exactly the order of sequence numbers.
package event

import (
	"fmt"
	"time"
)

// Type discriminates the three scheduling events.
type Type int

// The three monitor primitives whose invocations are scheduling events.
const (
	Enter Type = iota + 1
	Wait
	SignalExit
)

// String returns the paper's name for the event type.
func (t Type) String() string {
	switch t {
	case Enter:
		return "Enter"
	case Wait:
		return "Wait"
	case SignalExit:
		return "Signal-Exit"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Valid reports whether t is one of the three defined event types.
func (t Type) Valid() bool { return t >= Enter && t <= SignalExit }

// Flag values for Enter events.
const (
	// Blocked marks an Enter that queued the caller on EQ, or a
	// Signal-Exit that resumed no condition waiter.
	Blocked = 0
	// Completed marks an Enter that acquired the monitor immediately, or
	// a Signal-Exit that resumed a condition waiter.
	Completed = 1
)

// Event is one scheduling event l_i.
type Event struct {
	// Seq is the global position of this event in L; assigned by the
	// history database, strictly increasing. Seq numbering starts at 1.
	Seq int64 `json:"seq"`
	// Monitor names the monitor whose primitive was invoked.
	Monitor string `json:"monitor"`
	// Type is the primitive invoked.
	Type Type `json:"type"`
	// Pid identifies the invoking process.
	Pid int64 `json:"pid"`
	// Proc is Pname — the monitor procedure within which the primitive
	// ran (e.g. "Send", "Acquire").
	Proc string `json:"proc"`
	// Cond names the condition queue for Wait and Signal-Exit events;
	// empty for Enter, and empty for a pure Exit (Signal-Exit that
	// signals no condition).
	Cond string `json:"cond,omitempty"`
	// Flag is the completion flag (see Blocked, Completed). Meaningful
	// for Enter and Signal-Exit; always 0 for Wait in the simplified
	// event set.
	Flag int `json:"flag"`
	// Time is the instant the event occurred on the run's clock.
	Time time.Time `json:"time"`
}

// String renders the event in the paper's notation, e.g.
// "Enter(P3, Send, 1)" or "Signal-Exit(P3, Send, notEmpty, 0)".
func (e Event) String() string {
	switch e.Type {
	case Enter:
		return fmt.Sprintf("Enter(P%d, %s, %d)", e.Pid, e.Proc, e.Flag)
	case Wait:
		return fmt.Sprintf("Wait(P%d, %s, %s)", e.Pid, e.Proc, e.Cond)
	case SignalExit:
		return fmt.Sprintf("Signal-Exit(P%d, %s, %s, %d)", e.Pid, e.Proc, e.Cond, e.Flag)
	default:
		return fmt.Sprintf("UnknownEvent(P%d, %s)", e.Pid, e.Proc)
	}
}

// Precedes reports the paper's <L relation: e occurred strictly before
// o in the recorded sequence.
func (e Event) Precedes(o Event) bool { return e.Seq < o.Seq }

// Validate reports a non-nil error when the event is structurally
// malformed (unknown type, missing pid, a Wait without a condition, or
// a flag outside {0,1}).
func (e Event) Validate() error {
	if !e.Type.Valid() {
		return fmt.Errorf("event %d: invalid type %d", e.Seq, int(e.Type))
	}
	if e.Pid == 0 {
		return fmt.Errorf("event %d: zero pid", e.Seq)
	}
	if e.Flag != Blocked && e.Flag != Completed {
		return fmt.Errorf("event %d: flag %d outside {0,1}", e.Seq, e.Flag)
	}
	if e.Type == Wait && e.Cond == "" {
		return fmt.Errorf("event %d: Wait without condition", e.Seq)
	}
	if e.Type == Enter && e.Cond != "" {
		return fmt.Errorf("event %d: Enter with condition %q", e.Seq, e.Cond)
	}
	return nil
}
