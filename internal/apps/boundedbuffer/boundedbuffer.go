// Package boundedbuffer is the canonical communication-coordinator
// monitor (§2.1): producer/consumer pairs exchanging data through a
// bounded buffer guarded by Send and Receive procedures. It is the
// workload behind the paper's coordinator experiments and the carrier
// for the monitor-procedure-level faults (§2.2 II), which are injected
// as deliberate bugs in the Send/Receive condition checks.
package boundedbuffer

import (
	"fmt"
	"sync"

	"robustmon/internal/faults"
	"robustmon/internal/monitor"
	"robustmon/internal/proc"
)

// Procedure and condition names in the monitor declaration.
const (
	ProcSend     = "Send"
	ProcReceive  = "Receive"
	CondNotFull  = "notFull"
	CondNotEmpty = "notEmpty"
)

// Buffer is a bounded buffer of ints behind an augmented monitor.
// Construct with New; methods are safe for concurrent use by processes
// of one runtime.
type Buffer struct {
	mon      *monitor.Monitor
	capacity int
	inj      *faults.Injector

	mu    sync.Mutex
	items []int
}

// Option configures a Buffer.
type Option func(*config)

type config struct {
	name    string
	monOpts []monitor.Option
	inj     *faults.Injector
}

// WithName overrides the monitor name (default "boundedbuffer").
func WithName(name string) Option {
	return func(c *config) { c.name = name }
}

// WithMonitorOptions passes options (recorder, clock) to the underlying
// monitor.
func WithMonitorOptions(opts ...monitor.Option) Option {
	return func(c *config) { c.monOpts = append(c.monOpts, opts...) }
}

// WithInjector wires a fault injector into both the monitor protocol
// (implementation-level kinds) and the Send/Receive logic
// (procedure-level kinds).
func WithInjector(inj *faults.Injector) Option {
	return func(c *config) { c.inj = inj }
}

// Spec returns the monitor declaration a Buffer of the given name and
// capacity uses.
func Spec(name string, capacity int) monitor.Spec {
	return monitor.Spec{
		Name:        name,
		Kind:        monitor.CommunicationCoordinator,
		Conditions:  []string{CondNotFull, CondNotEmpty},
		Procedures:  []string{ProcSend, ProcReceive},
		Rmax:        capacity,
		SendProc:    ProcSend,
		ReceiveProc: ProcReceive,
	}
}

// New builds a bounded buffer with the given capacity.
func New(capacity int, opts ...Option) (*Buffer, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("boundedbuffer: capacity must be positive, got %d", capacity)
	}
	cfg := config{name: "boundedbuffer"}
	for _, o := range opts {
		o(&cfg)
	}
	monOpts := cfg.monOpts
	if cfg.inj != nil {
		monOpts = append(monOpts, monitor.WithHooks(cfg.inj.Hooks()))
	}
	mon, err := monitor.New(Spec(cfg.name, capacity), monOpts...)
	if err != nil {
		return nil, err
	}
	return &Buffer{
		mon:      mon,
		capacity: capacity,
		inj:      cfg.inj,
		items:    make([]int, 0, capacity),
	}, nil
}

// Monitor exposes the underlying monitor (for detectors and tests).
func (b *Buffer) Monitor() *monitor.Monitor { return b.mon }

// Capacity returns the buffer capacity (the declaration's Rmax).
func (b *Buffer) Capacity() int { return b.capacity }

// Len returns the current number of buffered items.
func (b *Buffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.items)
}

// Send deposits v, blocking while the buffer is full. The §2.1
// integrity constraint — "a process calling Send can be delayed if and
// only if the buffer is full" — is exactly what the injected
// procedure-level bugs subvert.
func (b *Buffer) Send(p *proc.P, v int) error {
	if err := b.mon.Enter(p, ProcSend); err != nil {
		return err
	}
	shouldWait := b.Len() == b.capacity
	switch b.bug() {
	case faults.BufSendSpuriousDelay:
		if !shouldWait && b.inj.TryFire() {
			shouldWait = true // fault II.a: delayed though not full
		}
	case faults.BufSendSkipFullCheck:
		if shouldWait && b.inj.TryFire() {
			shouldWait = false // fault II.d: proceeds though full
		}
	}
	if shouldWait {
		if err := b.mon.Wait(p, ProcSend, CondNotFull); err != nil {
			return err
		}
	}
	b.mu.Lock()
	b.items = append(b.items, v)
	b.mu.Unlock()
	return b.mon.SignalExit(p, ProcSend, CondNotEmpty)
}

// Receive removes and returns the oldest item, blocking while the
// buffer is empty.
func (b *Buffer) Receive(p *proc.P) (int, error) {
	if err := b.mon.Enter(p, ProcReceive); err != nil {
		return 0, err
	}
	shouldWait := b.Len() == 0
	switch b.bug() {
	case faults.BufReceiveSpuriousDelay:
		if !shouldWait && b.inj.TryFire() {
			shouldWait = true // fault II.b: delayed though not empty
		}
	case faults.BufReceiveSkipEmptyCheck:
		if shouldWait && b.inj.TryFire() {
			shouldWait = false // fault II.c: proceeds though empty
		}
	}
	if shouldWait {
		if err := b.mon.Wait(p, ProcReceive, CondNotEmpty); err != nil {
			return 0, err
		}
	}
	b.mu.Lock()
	var v int
	if len(b.items) > 0 {
		v = b.items[0]
		b.items = b.items[1:]
	}
	b.mu.Unlock()
	return v, b.mon.SignalExit(p, ProcReceive, CondNotFull)
}

func (b *Buffer) bug() faults.BufferBug {
	if b.inj == nil {
		return faults.BufNone
	}
	return b.inj.BufferBug()
}
