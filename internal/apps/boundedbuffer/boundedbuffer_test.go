package boundedbuffer

import (
	"testing"
	"time"

	"robustmon/internal/clock"
	"robustmon/internal/detect"
	"robustmon/internal/faults"
	"robustmon/internal/history"
	"robustmon/internal/monitor"
	"robustmon/internal/proc"
	"robustmon/internal/rules"
)

var epoch = time.Date(2001, 7, 1, 0, 0, 0, 0, time.UTC)

func TestNewValidation(t *testing.T) {
	t.Parallel()
	if _, err := New(0); err == nil {
		t.Fatal("capacity 0 accepted")
	}
	if _, err := New(-1); err == nil {
		t.Fatal("negative capacity accepted")
	}
	b, err := New(3, WithName("b3"))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if b.Capacity() != 3 || b.Monitor().Name() != "b3" {
		t.Fatalf("Capacity=%d Name=%q", b.Capacity(), b.Monitor().Name())
	}
}

func TestFIFOTransfer(t *testing.T) {
	t.Parallel()
	b, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	r := proc.NewRuntime()
	const n = 100
	got := make([]int, 0, n)
	done := make(chan struct{})
	r.Spawn("consumer", func(p *proc.P) {
		defer close(done)
		for i := 0; i < n; i++ {
			v, err := b.Receive(p)
			if err != nil {
				t.Errorf("Receive: %v", err)
				return
			}
			got = append(got, v)
		}
	})
	r.Spawn("producer", func(p *proc.P) {
		for i := 0; i < n; i++ {
			if err := b.Send(p, i); err != nil {
				t.Errorf("Send: %v", err)
				return
			}
		}
	})
	r.Join()
	<-done
	if len(got) != n {
		t.Fatalf("received %d items, want %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d, want %d (FIFO order)", i, v, i)
		}
	}
	if b.Len() != 0 {
		t.Fatalf("Len = %d after drain, want 0", b.Len())
	}
}

func TestManyProducersManyConsumers(t *testing.T) {
	t.Parallel()
	b, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	r := proc.NewRuntime()
	const producers, perProducer = 4, 25
	total := producers * perProducer
	sum := make(chan int, total)
	for c := 0; c < 2; c++ {
		r.Spawn("consumer", func(p *proc.P) {
			for i := 0; i < total/2; i++ {
				v, err := b.Receive(p)
				if err != nil {
					return
				}
				sum <- v
			}
		})
	}
	for pr := 0; pr < producers; pr++ {
		base := pr * perProducer
		r.Spawn("producer", func(p *proc.P) {
			for i := 0; i < perProducer; i++ {
				if err := b.Send(p, base+i); err != nil {
					return
				}
			}
		})
	}
	r.Join()
	close(sum)
	seen := make(map[int]bool, total)
	for v := range sum {
		if seen[v] {
			t.Fatalf("value %d delivered twice", v)
		}
		seen[v] = true
	}
	if len(seen) != total {
		t.Fatalf("delivered %d distinct values, want %d", len(seen), total)
	}
}

func TestSendBlocksWhenFull(t *testing.T) {
	t.Parallel()
	b, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	r := proc.NewRuntime()
	r.Spawn("filler", func(p *proc.P) {
		if err := b.Send(p, 1); err != nil {
			t.Errorf("Send: %v", err)
		}
	})
	r.Join()

	blocked := r.Spawn("blocked", func(p *proc.P) {
		_ = b.Send(p, 2)
	})
	deadline := time.Now().Add(5 * time.Second)
	for blocked.Status() != proc.Parked {
		if time.Now().After(deadline) {
			t.Fatal("second Send never blocked on a full buffer")
		}
		time.Sleep(100 * time.Microsecond)
	}
	if got := b.Monitor().CondLen(CondNotFull); got != 1 {
		t.Fatalf("CondLen(notFull) = %d, want 1", got)
	}
	// A receive unblocks it.
	r.Spawn("drain", func(p *proc.P) {
		if _, err := b.Receive(p); err != nil {
			t.Errorf("Receive: %v", err)
		}
	})
	r.Join()
	if b.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (the unblocked send completed)", b.Len())
	}
}

// newDetected builds a buffer wired to a detector with a virtual clock.
func newDetected(t *testing.T, capacity int, inj *faults.Injector) (*Buffer, *detect.Detector, *proc.Runtime) {
	t.Helper()
	db := history.New(history.WithFullTrace())
	clk := clock.NewVirtual(epoch)
	opts := []Option{WithMonitorOptions(monitor.WithRecorder(db), monitor.WithClock(clk))}
	if inj != nil {
		opts = append(opts, WithInjector(inj))
	}
	b, err := New(capacity, opts...)
	if err != nil {
		t.Fatal(err)
	}
	det := detect.New(db, detect.Config{Clock: clk, HoldWorld: true}, b.Monitor())
	return b, det, proc.NewRuntime()
}

func TestCleanRunPassesDetection(t *testing.T) {
	t.Parallel()
	b, det, r := newDetected(t, 2, nil)
	r.Spawn("producer", func(p *proc.P) {
		for i := 0; i < 10; i++ {
			if err := b.Send(p, i); err != nil {
				return
			}
		}
	})
	r.Spawn("consumer", func(p *proc.P) {
		for i := 0; i < 10; i++ {
			if _, err := b.Receive(p); err != nil {
				return
			}
		}
	})
	r.Join()
	if vs := det.CheckNow(); len(vs) != 0 {
		t.Fatalf("clean run produced violations: %v", vs)
	}
}

func TestInjectedSendOverflowDetected(t *testing.T) {
	t.Parallel()
	inj := faults.NewInjector(faults.SendOverflow)
	b, det, r := newDetected(t, 1, inj)
	// Fill the buffer, then arm: the next send must overflow.
	r.Spawn("filler", func(p *proc.P) { _ = b.Send(p, 1) })
	r.Join()
	inj.Arm()
	r.Spawn("overflower", func(p *proc.P) { _ = b.Send(p, 2) })
	r.Join()
	if inj.Fired() == 0 {
		t.Fatal("injection never fired")
	}
	vs := det.CheckNow()
	if !rules.HasRule(vs, rules.ST7a) || !rules.HasFault(vs, faults.SendOverflow) {
		t.Fatalf("violations = %v, want ST-7a/SendOverflow", vs)
	}
}

func TestInjectedReceiveOvertakeDetected(t *testing.T) {
	t.Parallel()
	inj := faults.NewInjector(faults.ReceiveOvertake)
	b, det, r := newDetected(t, 1, inj)
	inj.Arm()
	r.Spawn("thief", func(p *proc.P) { _, _ = b.Receive(p) }) // empty buffer
	r.Join()
	vs := det.CheckNow()
	if !rules.HasRule(vs, rules.ST7a) || !rules.HasFault(vs, faults.ReceiveOvertake) {
		t.Fatalf("violations = %v, want ST-7a/ReceiveOvertake", vs)
	}
}

func TestInjectedSendSpuriousDelayDetected(t *testing.T) {
	t.Parallel()
	inj := faults.NewInjector(faults.SendSpuriousDelay)
	b, det, r := newDetected(t, 2, inj)
	inj.Arm()
	victim := r.Spawn("victim", func(p *proc.P) { _ = b.Send(p, 1) })
	deadline := time.Now().Add(5 * time.Second)
	for victim.Status() != proc.Parked {
		if time.Now().After(deadline) {
			t.Fatal("spuriously delayed send never parked")
		}
		time.Sleep(100 * time.Microsecond)
	}
	vs := det.CheckNow()
	if !rules.HasRule(vs, rules.ST7c) || !rules.HasFault(vs, faults.SendSpuriousDelay) {
		t.Fatalf("violations = %v, want ST-7c/SendSpuriousDelay", vs)
	}
	r.AbortAll()
	r.Join()
}

func TestInjectedReceiveSpuriousDelayDetected(t *testing.T) {
	t.Parallel()
	inj := faults.NewInjector(faults.ReceiveSpuriousDelay)
	b, det, r := newDetected(t, 2, inj)
	r.Spawn("filler", func(p *proc.P) { _ = b.Send(p, 1) })
	r.Join()
	inj.Arm()
	victim := r.Spawn("victim", func(p *proc.P) { _, _ = b.Receive(p) })
	deadline := time.Now().Add(5 * time.Second)
	for victim.Status() != proc.Parked {
		if time.Now().After(deadline) {
			t.Fatal("spuriously delayed receive never parked")
		}
		time.Sleep(100 * time.Microsecond)
	}
	vs := det.CheckNow()
	if !rules.HasRule(vs, rules.ST7d) || !rules.HasFault(vs, faults.ReceiveSpuriousDelay) {
		t.Fatalf("violations = %v, want ST-7d/ReceiveSpuriousDelay", vs)
	}
	r.AbortAll()
	r.Join()
}
