// Package rwlock is a readers-writers monitor whose declaration uses a
// non-trivial path expression: each process alternates complete
// StartRead;EndRead or StartWrite;EndWrite cycles,
//
//	path (StartRead ; EndRead) , (StartWrite ; EndWrite) end
//
// so the real-time order checker catches a process that ends a read it
// never started, starts a write while reading, and so on. The monitor
// itself implements the classic writers-priority protocol.
package rwlock

import (
	"sync"

	"robustmon/internal/monitor"
	"robustmon/internal/proc"
)

// Procedure and condition names in the monitor declaration.
const (
	ProcStartRead  = "StartRead"
	ProcEndRead    = "EndRead"
	ProcStartWrite = "StartWrite"
	ProcEndWrite   = "EndWrite"
	CondOKToRead   = "okToRead"
	CondOKToWrite  = "okToWrite"
)

// CallOrder is the declared per-process partial order.
const CallOrder = "path (StartRead ; EndRead) , (StartWrite ; EndWrite) end"

// Lock is a readers-writers lock built on an augmented monitor.
// Construct with New.
type Lock struct {
	mon *monitor.Monitor

	mu             sync.Mutex
	readers        int
	writing        bool
	waitingWriters int
}

// Option configures a Lock.
type Option func(*config)

type config struct {
	name    string
	monOpts []monitor.Option
}

// WithName overrides the monitor name (default "rwlock").
func WithName(name string) Option {
	return func(c *config) { c.name = name }
}

// WithMonitorOptions passes options (recorder, clock, hooks) to the
// underlying monitor.
func WithMonitorOptions(opts ...monitor.Option) Option {
	return func(c *config) { c.monOpts = append(c.monOpts, opts...) }
}

// Spec returns the monitor declaration a Lock of the given name uses.
func Spec(name string) monitor.Spec {
	return monitor.Spec{
		Name:       name,
		Kind:       monitor.ResourceAllocator,
		Conditions: []string{CondOKToRead, CondOKToWrite},
		Procedures: []string{ProcStartRead, ProcEndRead, ProcStartWrite, ProcEndWrite},
		CallOrder:  CallOrder,
	}
}

// New builds an unlocked readers-writers lock.
func New(opts ...Option) (*Lock, error) {
	cfg := config{name: "rwlock"}
	for _, o := range opts {
		o(&cfg)
	}
	mon, err := monitor.New(Spec(cfg.name), cfg.monOpts...)
	if err != nil {
		return nil, err
	}
	return &Lock{mon: mon}, nil
}

// Monitor exposes the underlying monitor.
func (l *Lock) Monitor() *monitor.Monitor { return l.mon }

// Readers returns the number of active readers.
func (l *Lock) Readers() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.readers
}

// Writing reports whether a writer holds the lock.
func (l *Lock) Writing() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.writing
}

// StartRead blocks while a writer is active or waiting.
func (l *Lock) StartRead(p *proc.P) error {
	if err := l.mon.Enter(p, ProcStartRead); err != nil {
		return err
	}
	l.mu.Lock()
	blocked := l.writing || l.waitingWriters > 0
	l.mu.Unlock()
	if blocked {
		if err := l.mon.Wait(p, ProcStartRead, CondOKToRead); err != nil {
			return err
		}
	}
	l.mu.Lock()
	l.readers++
	l.mu.Unlock()
	// Cascade: one resumed reader admits the next waiting reader.
	return l.mon.SignalExit(p, ProcStartRead, CondOKToRead)
}

// EndRead releases a read hold; the last reader admits a writer.
func (l *Lock) EndRead(p *proc.P) error {
	if err := l.mon.Enter(p, ProcEndRead); err != nil {
		return err
	}
	l.mu.Lock()
	l.readers--
	last := l.readers == 0
	l.mu.Unlock()
	if last {
		return l.mon.SignalExit(p, ProcEndRead, CondOKToWrite)
	}
	return l.mon.Exit(p, ProcEndRead)
}

// StartWrite blocks until no reader or writer is active.
func (l *Lock) StartWrite(p *proc.P) error {
	if err := l.mon.Enter(p, ProcStartWrite); err != nil {
		return err
	}
	l.mu.Lock()
	blocked := l.writing || l.readers > 0
	if blocked {
		l.waitingWriters++
	}
	l.mu.Unlock()
	if blocked {
		if err := l.mon.Wait(p, ProcStartWrite, CondOKToWrite); err != nil {
			return err
		}
		l.mu.Lock()
		l.waitingWriters--
		l.mu.Unlock()
	}
	l.mu.Lock()
	l.writing = true
	l.mu.Unlock()
	return l.mon.Exit(p, ProcStartWrite)
}

// EndWrite releases the write hold, preferring a waiting writer, then
// readers.
func (l *Lock) EndWrite(p *proc.P) error {
	if err := l.mon.Enter(p, ProcEndWrite); err != nil {
		return err
	}
	l.mu.Lock()
	l.writing = false
	preferWriter := l.waitingWriters > 0
	l.mu.Unlock()
	if preferWriter {
		return l.mon.SignalExit(p, ProcEndWrite, CondOKToWrite)
	}
	return l.mon.SignalExit(p, ProcEndWrite, CondOKToRead)
}
