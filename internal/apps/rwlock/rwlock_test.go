package rwlock

import (
	"sync"
	"testing"
	"time"

	"robustmon/internal/clock"
	"robustmon/internal/detect"
	"robustmon/internal/history"
	"robustmon/internal/monitor"
	"robustmon/internal/proc"
	"robustmon/internal/rules"
)

var epoch = time.Date(2001, 7, 1, 0, 0, 0, 0, time.UTC)

func TestReadersShareWritersExclude(t *testing.T) {
	t.Parallel()
	l, err := New()
	if err != nil {
		t.Fatal(err)
	}
	r := proc.NewRuntime()
	var mu sync.Mutex
	var maxReaders, writesSeen int
	writerActive := false

	const readers, writers, rounds = 4, 2, 8
	for i := 0; i < readers; i++ {
		r.Spawn("reader", func(p *proc.P) {
			for j := 0; j < rounds; j++ {
				if err := l.StartRead(p); err != nil {
					return
				}
				mu.Lock()
				if writerActive {
					t.Error("reader active while writer holds the lock")
				}
				if got := l.Readers(); got > maxReaders {
					maxReaders = got
				}
				mu.Unlock()
				if err := l.EndRead(p); err != nil {
					return
				}
			}
		})
	}
	for i := 0; i < writers; i++ {
		r.Spawn("writer", func(p *proc.P) {
			for j := 0; j < rounds; j++ {
				if err := l.StartWrite(p); err != nil {
					return
				}
				mu.Lock()
				if writerActive {
					t.Error("two writers active at once")
				}
				writerActive = true
				writesSeen++
				mu.Unlock()
				mu.Lock()
				writerActive = false
				mu.Unlock()
				if err := l.EndWrite(p); err != nil {
					return
				}
			}
		})
	}
	r.Join()
	if writesSeen != writers*rounds {
		t.Fatalf("writesSeen = %d, want %d", writesSeen, writers*rounds)
	}
	if l.Readers() != 0 || l.Writing() {
		t.Fatalf("lock not quiescent: readers=%d writing=%v", l.Readers(), l.Writing())
	}
}

func TestCallOrderViolationCaught(t *testing.T) {
	t.Parallel()
	db := history.New()
	clk := clock.NewVirtual(epoch)
	spec := Spec("rwlock")
	rt, err := detect.NewRealTime(db, []monitor.Spec{spec}, nil)
	if err != nil {
		t.Fatal(err)
	}
	l, err := New(WithMonitorOptions(monitor.WithRecorder(rt), monitor.WithClock(clk)))
	if err != nil {
		t.Fatal(err)
	}
	r := proc.NewRuntime()
	r.Spawn("buggy", func(p *proc.P) {
		if err := l.StartRead(p); err != nil {
			return
		}
		// Ends a WRITE it never started: violates the declared path
		// (StartRead must pair with EndRead).
		_ = l.EndWrite(p)
	})
	r.Join()
	vs := rt.Violations()
	if !rules.HasRule(vs, rules.FD7a) {
		t.Fatalf("violations = %v, want FD-7a for mismatched end", vs)
	}
}

func TestCleanCyclesPassRealtime(t *testing.T) {
	t.Parallel()
	db := history.New()
	clk := clock.NewVirtual(epoch)
	rt, err := detect.NewRealTime(db, []monitor.Spec{Spec("rwlock")}, nil)
	if err != nil {
		t.Fatal(err)
	}
	l, err := New(WithMonitorOptions(monitor.WithRecorder(rt), monitor.WithClock(clk)))
	if err != nil {
		t.Fatal(err)
	}
	r := proc.NewRuntime()
	r.Spawn("mixed", func(p *proc.P) {
		// A process may alternate read and write cycles freely.
		for i := 0; i < 3; i++ {
			if err := l.StartRead(p); err != nil {
				return
			}
			if err := l.EndRead(p); err != nil {
				return
			}
			if err := l.StartWrite(p); err != nil {
				return
			}
			if err := l.EndWrite(p); err != nil {
				return
			}
		}
	})
	r.Join()
	if vs := rt.Violations(); len(vs) != 0 {
		t.Fatalf("clean cycles produced %v", vs)
	}
}

func TestWriterPriorityBlocksNewReaders(t *testing.T) {
	t.Parallel()
	l, err := New()
	if err != nil {
		t.Fatal(err)
	}
	r := proc.NewRuntime()

	readerIn := make(chan struct{})
	releaseReader := make(chan struct{})
	r.Spawn("reader1", func(p *proc.P) {
		if err := l.StartRead(p); err != nil {
			return
		}
		close(readerIn)
		<-releaseReader
		_ = l.EndRead(p)
	})
	<-readerIn

	// A writer queues behind the active reader.
	writerDone := make(chan struct{})
	r.Spawn("writer", func(p *proc.P) {
		if err := l.StartWrite(p); err != nil {
			return
		}
		_ = l.EndWrite(p)
		close(writerDone)
	})
	deadline := time.Now().Add(5 * time.Second)
	for l.Monitor().CondLen(CondOKToWrite) != 1 {
		if time.Now().After(deadline) {
			t.Fatal("writer never queued")
		}
		time.Sleep(100 * time.Microsecond)
	}

	// A second reader must now wait behind the writer.
	reader2Got := make(chan struct{})
	r.Spawn("reader2", func(p *proc.P) {
		if err := l.StartRead(p); err != nil {
			return
		}
		close(reader2Got)
		_ = l.EndRead(p)
	})
	for l.Monitor().CondLen(CondOKToRead) != 1 {
		if time.Now().After(deadline) {
			t.Fatal("second reader never queued behind the writer")
		}
		time.Sleep(100 * time.Microsecond)
	}
	select {
	case <-reader2Got:
		t.Fatal("second reader overtook the waiting writer")
	default:
	}

	close(releaseReader)
	r.Join()
	select {
	case <-writerDone:
	default:
		t.Fatal("writer never ran")
	}
	select {
	case <-reader2Got:
	default:
		t.Fatal("second reader never ran")
	}
}
