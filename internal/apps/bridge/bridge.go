// Package bridge is the classic single-lane bridge monitor: cars cross
// in one direction at a time; a car may enter when the bridge is empty
// or already flowing its way, and waits on its direction's condition
// otherwise. Like rwlock it is declared as a resource-access-right
// allocator with a selection path expression, so the order checker
// catches a car that exits a bridge it never entered or enters twice.
package bridge

import (
	"fmt"
	"sync"

	"robustmon/internal/monitor"
	"robustmon/internal/proc"
)

// Direction of travel.
type Direction int

// The two directions.
const (
	North Direction = iota + 1
	South
)

// String names the direction.
func (d Direction) String() string {
	switch d {
	case North:
		return "north"
	case South:
		return "south"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// Procedure and condition names in the monitor declaration.
const (
	ProcEnterNorth = "EnterNorth"
	ProcEnterSouth = "EnterSouth"
	ProcExitNorth  = "ExitNorth"
	ProcExitSouth  = "ExitSouth"
	CondNorthOK    = "northOK"
	CondSouthOK    = "southOK"
)

// CallOrder declares complete north or south crossings per process.
const CallOrder = "path (EnterNorth ; ExitNorth) , (EnterSouth ; ExitSouth) end"

// Bridge is the shared single-lane bridge. Construct with New.
type Bridge struct {
	mon *monitor.Monitor

	mu      sync.Mutex
	onSpan  int
	flowing Direction // meaningful while onSpan > 0
	waiting [2]int    // queued per direction (index Direction-1)
}

// Option configures a Bridge.
type Option func(*config)

type config struct {
	name    string
	monOpts []monitor.Option
}

// WithName overrides the monitor name (default "bridge").
func WithName(name string) Option {
	return func(c *config) { c.name = name }
}

// WithMonitorOptions passes options (recorder, clock, hooks) to the
// underlying monitor.
func WithMonitorOptions(opts ...monitor.Option) Option {
	return func(c *config) { c.monOpts = append(c.monOpts, opts...) }
}

// Spec returns the monitor declaration a Bridge of the given name uses.
func Spec(name string) monitor.Spec {
	return monitor.Spec{
		Name:       name,
		Kind:       monitor.ResourceAllocator,
		Conditions: []string{CondNorthOK, CondSouthOK},
		Procedures: []string{ProcEnterNorth, ProcExitNorth, ProcEnterSouth, ProcExitSouth},
		CallOrder:  CallOrder,
	}
}

// New builds an empty bridge.
func New(opts ...Option) (*Bridge, error) {
	cfg := config{name: "bridge"}
	for _, o := range opts {
		o(&cfg)
	}
	mon, err := monitor.New(Spec(cfg.name), cfg.monOpts...)
	if err != nil {
		return nil, err
	}
	return &Bridge{mon: mon}, nil
}

// Monitor exposes the underlying monitor.
func (b *Bridge) Monitor() *monitor.Monitor { return b.mon }

// OnSpan returns the number of cars currently crossing.
func (b *Bridge) OnSpan() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.onSpan
}

// Flowing returns the active direction (0 when the span is empty).
func (b *Bridge) Flowing() Direction {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.onSpan == 0 {
		return 0
	}
	return b.flowing
}

func dirNames(d Direction) (enterProc, exitProc, cond, otherCond string) {
	if d == North {
		return ProcEnterNorth, ProcExitNorth, CondNorthOK, CondSouthOK
	}
	return ProcEnterSouth, ProcExitSouth, CondSouthOK, CondNorthOK
}

// Enter blocks until the bridge is free or already flowing direction d,
// then drives onto the span.
func (b *Bridge) Enter(p *proc.P, d Direction) error {
	enterProc, _, cond, _ := dirNames(d)
	if err := b.mon.Enter(p, enterProc); err != nil {
		return err
	}
	b.mu.Lock()
	blocked := b.onSpan > 0 && b.flowing != d
	if blocked {
		b.waiting[d-1]++
	}
	b.mu.Unlock()
	if blocked {
		if err := b.mon.Wait(p, enterProc, cond); err != nil {
			return err
		}
		b.mu.Lock()
		b.waiting[d-1]--
		b.mu.Unlock()
	}
	b.mu.Lock()
	b.onSpan++
	b.flowing = d
	b.mu.Unlock()
	// Cascade: admit the next same-direction car, if any is waiting.
	return b.mon.SignalExit(p, enterProc, cond)
}

// Exit leaves the span; the last car of a platoon hands the bridge to
// the opposite direction.
func (b *Bridge) Exit(p *proc.P, d Direction) error {
	_, exitProc, _, otherCond := dirNames(d)
	if err := b.mon.Enter(p, exitProc); err != nil {
		return err
	}
	b.mu.Lock()
	b.onSpan--
	last := b.onSpan == 0
	b.mu.Unlock()
	if last {
		return b.mon.SignalExit(p, exitProc, otherCond)
	}
	return b.mon.Exit(p, exitProc)
}
