package bridge

import (
	"sync"
	"testing"
	"time"

	"robustmon/internal/clock"
	"robustmon/internal/detect"
	"robustmon/internal/history"
	"robustmon/internal/monitor"
	"robustmon/internal/proc"
	"robustmon/internal/rules"
)

var epoch = time.Date(2001, 7, 1, 0, 0, 0, 0, time.UTC)

func TestDirectionString(t *testing.T) {
	t.Parallel()
	if North.String() != "north" || South.String() != "south" {
		t.Fatal("direction names wrong")
	}
	if Direction(9).String() != "Direction(9)" {
		t.Fatal("unknown direction not handled")
	}
}

func TestNeverBothDirectionsOnSpan(t *testing.T) {
	t.Parallel()
	b, err := New()
	if err != nil {
		t.Fatal(err)
	}
	r := proc.NewRuntime()
	var mu sync.Mutex
	var northOn, southOn, crossings int
	cross := func(d Direction, n *int) func(p *proc.P) {
		return func(p *proc.P) {
			for i := 0; i < 15; i++ {
				if err := b.Enter(p, d); err != nil {
					return
				}
				mu.Lock()
				*n++
				if northOn > 0 && southOn > 0 {
					t.Error("cars crossing in both directions")
				}
				crossings++
				mu.Unlock()
				mu.Lock()
				*n--
				mu.Unlock()
				if err := b.Exit(p, d); err != nil {
					return
				}
			}
		}
	}
	for i := 0; i < 3; i++ {
		r.Spawn("northbound", cross(North, &northOn))
		r.Spawn("southbound", cross(South, &southOn))
	}
	r.Join()
	if crossings != 90 {
		t.Fatalf("crossings = %d, want 90 (no car starved)", crossings)
	}
	if b.OnSpan() != 0 || b.Flowing() != 0 {
		t.Fatalf("bridge not empty after run: onSpan=%d flowing=%v", b.OnSpan(), b.Flowing())
	}
}

func TestSameDirectionPlatoons(t *testing.T) {
	t.Parallel()
	b, err := New()
	if err != nil {
		t.Fatal(err)
	}
	r := proc.NewRuntime()
	// Two northbound cars enter; both must be on the span together
	// before either exits.
	var arrive, depart sync.WaitGroup
	arrive.Add(2)
	depart.Add(2)
	var maxOn int
	var mu sync.Mutex
	for i := 0; i < 2; i++ {
		r.Spawn("car", func(p *proc.P) {
			if err := b.Enter(p, North); err != nil {
				return
			}
			arrive.Done()
			arrive.Wait()
			mu.Lock()
			if on := b.OnSpan(); on > maxOn {
				maxOn = on
			}
			mu.Unlock()
			depart.Done()
			depart.Wait()
			_ = b.Exit(p, North)
		})
	}
	r.Join()
	if maxOn != 2 {
		t.Fatalf("max same-direction occupancy = %d, want 2", maxOn)
	}
}

func TestCleanRunPassesBothPhases(t *testing.T) {
	t.Parallel()
	db := history.New()
	clk := clock.NewVirtual(epoch)
	rt, err := detect.NewRealTime(db, []monitor.Spec{Spec("bridge")}, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(WithMonitorOptions(monitor.WithRecorder(rt), monitor.WithClock(clk)))
	if err != nil {
		t.Fatal(err)
	}
	det := detect.New(db, detect.Config{Clock: clk, HoldWorld: true}, b.Monitor())
	r := proc.NewRuntime()
	for i := 0; i < 4; i++ {
		d := North
		if i%2 == 1 {
			d = South
		}
		r.Spawn("car", func(p *proc.P) {
			for j := 0; j < 10; j++ {
				if err := b.Enter(p, d); err != nil {
					return
				}
				if err := b.Exit(p, d); err != nil {
					return
				}
			}
		})
	}
	r.Join()
	if vs := rt.Violations(); len(vs) != 0 {
		t.Fatalf("realtime violations on clean crossings: %v", vs)
	}
	if vs := det.CheckNow(); len(vs) != 0 {
		t.Fatalf("periodic violations on clean crossings: %v", vs)
	}
}

func TestWrongExitDirectionCaught(t *testing.T) {
	t.Parallel()
	db := history.New()
	clk := clock.NewVirtual(epoch)
	rt, err := detect.NewRealTime(db, []monitor.Spec{Spec("bridge")}, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(WithMonitorOptions(monitor.WithRecorder(rt), monitor.WithClock(clk)))
	if err != nil {
		t.Fatal(err)
	}
	r := proc.NewRuntime()
	r.Spawn("confused", func(p *proc.P) {
		if err := b.Enter(p, North); err != nil {
			return
		}
		_ = b.Exit(p, South) // wrong direction: violates the path
	})
	r.Join()
	vs := rt.Violations()
	if !rules.HasRule(vs, rules.FD7a) {
		t.Fatalf("violations = %v, want FD-7a for the wrong-direction exit", vs)
	}
}
