// Package allocator is the resource-access-right allocator monitor of
// §2.1: processes Acquire and Release units of a resource; the use of
// the resource happens outside the monitor. Its declaration carries the
// partial order "path Acquire ; Release end", which the real-time
// checking phase enforces per process — the carrier for the
// user-process-level faults (§2.2 III).
package allocator

import (
	"fmt"
	"sync"

	"robustmon/internal/monitor"
	"robustmon/internal/proc"
)

// Procedure and condition names in the monitor declaration.
const (
	ProcAcquire = "Acquire"
	ProcRelease = "Release"
	CondFree    = "free"
)

// Allocator hands out up to Units concurrent access rights.
// Construct with New.
type Allocator struct {
	mon   *monitor.Monitor
	units int

	// mu guards free. Monitor mutual exclusion already serialises
	// correct callers; the extra lock keeps the counter coherent (and
	// the race detector quiet) when implementation-level faults are
	// injected and two processes run inside at once.
	mu   sync.Mutex
	free int
}

// Option configures an Allocator.
type Option func(*config)

type config struct {
	name    string
	monOpts []monitor.Option
}

// WithName overrides the monitor name (default "allocator").
func WithName(name string) Option {
	return func(c *config) { c.name = name }
}

// WithMonitorOptions passes options (recorder, clock, hooks) to the
// underlying monitor.
func WithMonitorOptions(opts ...monitor.Option) Option {
	return func(c *config) { c.monOpts = append(c.monOpts, opts...) }
}

// Spec returns the monitor declaration an Allocator of the given name
// uses, including the calling-order path expression.
func Spec(name string) monitor.Spec {
	return monitor.Spec{
		Name:        name,
		Kind:        monitor.ResourceAllocator,
		Conditions:  []string{CondFree},
		Procedures:  []string{ProcAcquire, ProcRelease},
		CallOrder:   "path Acquire ; Release end",
		AcquireProc: ProcAcquire,
		ReleaseProc: ProcRelease,
	}
}

// New builds an allocator for the given number of resource units.
func New(units int, opts ...Option) (*Allocator, error) {
	if units <= 0 {
		return nil, fmt.Errorf("allocator: units must be positive, got %d", units)
	}
	cfg := config{name: "allocator"}
	for _, o := range opts {
		o(&cfg)
	}
	mon, err := monitor.New(Spec(cfg.name), cfg.monOpts...)
	if err != nil {
		return nil, err
	}
	return &Allocator{mon: mon, units: units, free: units}, nil
}

// Monitor exposes the underlying monitor.
func (a *Allocator) Monitor() *monitor.Monitor { return a.mon }

// Units returns the total number of resource units.
func (a *Allocator) Units() int { return a.units }

// Free returns the number of currently unallocated units.
func (a *Allocator) Free() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.free
}

// Acquire blocks until a unit is available and allocates it to p.
func (a *Allocator) Acquire(p *proc.P) error {
	if err := a.mon.Enter(p, ProcAcquire); err != nil {
		return err
	}
	if a.Free() == 0 {
		if err := a.mon.Wait(p, ProcAcquire, CondFree); err != nil {
			return err
		}
	}
	a.mu.Lock()
	a.free--
	a.mu.Unlock()
	return a.mon.Exit(p, ProcAcquire)
}

// Release returns p's unit and wakes one waiting acquirer.
//
// Release performs no membership bookkeeping of its own: catching a
// release-without-acquire is exactly the detector's job (ST-8b /
// FD-7b), so the allocator must not mask the user bug.
func (a *Allocator) Release(p *proc.P) error {
	if err := a.mon.Enter(p, ProcRelease); err != nil {
		return err
	}
	a.mu.Lock()
	if a.free < a.units {
		a.free++
	}
	a.mu.Unlock()
	return a.mon.SignalExit(p, ProcRelease, CondFree)
}
