package allocator

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"robustmon/internal/clock"
	"robustmon/internal/detect"
	"robustmon/internal/faults"
	"robustmon/internal/history"
	"robustmon/internal/monitor"
	"robustmon/internal/proc"
	"robustmon/internal/rules"
)

var epoch = time.Date(2001, 7, 1, 0, 0, 0, 0, time.UTC)

func TestNewValidation(t *testing.T) {
	t.Parallel()
	if _, err := New(0); err == nil {
		t.Fatal("0 units accepted")
	}
	a, err := New(2, WithName("disks"))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if a.Units() != 2 || a.Free() != 2 || a.Monitor().Name() != "disks" {
		t.Fatalf("Units=%d Free=%d Name=%q", a.Units(), a.Free(), a.Monitor().Name())
	}
}

func TestAcquireReleaseAccounting(t *testing.T) {
	t.Parallel()
	a, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	r := proc.NewRuntime()
	r.Spawn("user", func(p *proc.P) {
		if err := a.Acquire(p); err != nil {
			t.Errorf("Acquire: %v", err)
			return
		}
		if got := a.Free(); got != 1 {
			t.Errorf("Free = %d while holding, want 1", got)
		}
		if err := a.Release(p); err != nil {
			t.Errorf("Release: %v", err)
		}
	})
	r.Join()
	if got := a.Free(); got != 2 {
		t.Fatalf("Free = %d after release, want 2", got)
	}
}

func TestAcquireBlocksWhenExhausted(t *testing.T) {
	t.Parallel()
	a, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	r := proc.NewRuntime()
	release := make(chan struct{})
	r.Spawn("holder", func(p *proc.P) {
		if err := a.Acquire(p); err != nil {
			return
		}
		<-release
		_ = a.Release(p)
	})
	deadline := time.Now().Add(5 * time.Second)
	for a.Free() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("holder never acquired")
		}
		time.Sleep(100 * time.Microsecond)
	}
	var gotUnit atomic.Bool
	r.Spawn("waiter", func(p *proc.P) {
		if err := a.Acquire(p); err != nil {
			return
		}
		gotUnit.Store(true)
		_ = a.Release(p)
	})
	for a.Monitor().CondLen(CondFree) != 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never blocked on the free condition")
		}
		time.Sleep(100 * time.Microsecond)
	}
	if gotUnit.Load() {
		t.Fatal("waiter acquired while no unit was free")
	}
	close(release)
	r.Join()
	if !gotUnit.Load() {
		t.Fatal("waiter never acquired after release")
	}
}

func TestNeverOverAllocated(t *testing.T) {
	t.Parallel()
	const units, users, rounds = 2, 6, 10
	a, err := New(units)
	if err != nil {
		t.Fatal(err)
	}
	r := proc.NewRuntime()
	var mu sync.Mutex
	holding, maxHolding := 0, 0
	for u := 0; u < users; u++ {
		r.Spawn("user", func(p *proc.P) {
			for i := 0; i < rounds; i++ {
				if err := a.Acquire(p); err != nil {
					return
				}
				mu.Lock()
				holding++
				if holding > maxHolding {
					maxHolding = holding
				}
				mu.Unlock()
				mu.Lock()
				holding--
				mu.Unlock()
				if err := a.Release(p); err != nil {
					return
				}
			}
		})
	}
	r.Join()
	if maxHolding > units {
		t.Fatalf("max simultaneous holders = %d, want ≤ %d", maxHolding, units)
	}
	if a.Free() != units {
		t.Fatalf("Free = %d after run, want %d", a.Free(), units)
	}
}

// newChecked wires an allocator to both detection phases.
func newChecked(t *testing.T) (*Allocator, *detect.RealTime, *detect.Detector, *proc.Runtime, *clock.Virtual) {
	t.Helper()
	db := history.New(history.WithFullTrace())
	clk := clock.NewVirtual(epoch)
	spec := Spec("allocator")
	rt, err := detect.NewRealTime(db, []monitor.Spec{spec}, nil)
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(1, WithMonitorOptions(monitor.WithRecorder(rt), monitor.WithClock(clk)))
	if err != nil {
		t.Fatal(err)
	}
	det := detect.New(db, detect.Config{Clock: clk, HoldWorld: true, Tlimit: 30 * time.Second}, a.Monitor())
	return a, rt, det, proc.NewRuntime(), clk
}

func TestUserBugReleaseFirstCaughtRealtime(t *testing.T) {
	t.Parallel()
	a, rt, det, r, _ := newChecked(t)
	r.Spawn("buggy", func(p *proc.P) {
		_ = a.Release(p) // fault III.a
	})
	r.Join()
	vs := rt.Violations()
	if !rules.HasRule(vs, rules.FD7b) || !rules.HasFault(vs, faults.ReleaseWithoutAcquire) {
		t.Fatalf("realtime violations = %v, want FD-7b", vs)
	}
	// The periodic phase independently flags it via the Request-List.
	pvs := det.CheckNow()
	if !rules.HasRule(pvs, rules.ST8b) {
		t.Fatalf("periodic violations = %v, want ST-8b", pvs)
	}
}

func TestUserBugNeverReleaseCaughtByTlimit(t *testing.T) {
	t.Parallel()
	a, _, det, r, clk := newChecked(t)
	r.Spawn("hog", func(p *proc.P) {
		_ = a.Acquire(p) // never released
	})
	r.Join()
	if vs := det.CheckNow(); len(vs) != 0 {
		t.Fatalf("premature violations: %v", vs)
	}
	clk.Advance(time.Minute)
	vs := det.CheckNow()
	if !rules.HasRule(vs, rules.ST8c) || !rules.HasFault(vs, faults.ResourceNeverReleased) {
		t.Fatalf("violations = %v, want ST-8c/ResourceNeverReleased", vs)
	}
}

func TestUserBugDoubleAcquireCaughtRealtime(t *testing.T) {
	t.Parallel()
	a, rt, det, r, _ := newChecked(t)
	// Two units would be needed for the second acquire to return, but
	// the order violation is flagged at the Enter already.
	r.Spawn("buggy", func(p *proc.P) {
		if err := a.Acquire(p); err != nil {
			return
		}
		_ = a.Acquire(p) // fault III.c: blocks forever (self deadlock)
	})
	deadline := time.Now().Add(5 * time.Second)
	for len(rt.Violations()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("realtime checker never flagged the double acquire")
		}
		time.Sleep(100 * time.Microsecond)
	}
	vs := rt.Violations()
	if !rules.HasRule(vs, rules.FD7a) || !rules.HasFault(vs, faults.SelfDeadlock) {
		t.Fatalf("realtime violations = %v, want FD-7a/SelfDeadlock", vs)
	}
	pvs := det.CheckNow()
	if !rules.HasRule(pvs, rules.ST8a) {
		t.Fatalf("periodic violations = %v, want ST-8a", pvs)
	}
	r.AbortAll()
	r.Join()
}

func TestCleanUsersPassBothPhases(t *testing.T) {
	t.Parallel()
	a, rt, det, r, _ := newChecked(t)
	for i := 0; i < 3; i++ {
		r.Spawn("user", func(p *proc.P) {
			for j := 0; j < 5; j++ {
				if err := a.Acquire(p); err != nil {
					return
				}
				if err := a.Release(p); err != nil {
					return
				}
			}
		})
	}
	r.Join()
	if vs := rt.Violations(); len(vs) != 0 {
		t.Fatalf("realtime violations on clean users: %v", vs)
	}
	if vs := det.CheckNow(); len(vs) != 0 {
		t.Fatalf("periodic violations on clean users: %v", vs)
	}
}
