package barbershop

import (
	"testing"
	"time"

	"robustmon/internal/clock"
	"robustmon/internal/detect"
	"robustmon/internal/history"
	"robustmon/internal/monitor"
	"robustmon/internal/proc"
)

var epoch = time.Date(2001, 7, 1, 0, 0, 0, 0, time.UTC)

func TestNewValidation(t *testing.T) {
	t.Parallel()
	if _, err := New(0); err == nil {
		t.Fatal("0 chairs accepted")
	}
	s, err := New(3, WithName("mario"))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if s.Monitor().Name() != "mario" {
		t.Fatalf("Name = %q", s.Monitor().Name())
	}
}

func TestBarberSleepsUntilCustomer(t *testing.T) {
	t.Parallel()
	s, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	r := proc.NewRuntime()
	barber := r.Spawn("barber", func(p *proc.P) {
		if err := s.NextCustomer(p); err != nil {
			return
		}
	})
	deadline := time.Now().Add(5 * time.Second)
	for barber.Status() != proc.Parked {
		if time.Now().After(deadline) {
			t.Fatal("barber never slept on an empty shop")
		}
		time.Sleep(100 * time.Microsecond)
	}
	r.Spawn("customer", func(p *proc.P) {
		if err := s.GetHaircut(p); err != nil {
			t.Errorf("GetHaircut: %v", err)
		}
	})
	r.Join()
	if s.Served() != 1 || s.Waiting() != 0 {
		t.Fatalf("Served=%d Waiting=%d, want 1,0", s.Served(), s.Waiting())
	}
}

func TestAllCustomersServed(t *testing.T) {
	t.Parallel()
	const customers = 20
	s, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	r := proc.NewRuntime()
	r.Spawn("barber", func(p *proc.P) {
		for i := 0; i < customers; i++ {
			if err := s.NextCustomer(p); err != nil {
				return
			}
		}
	})
	for c := 0; c < customers; c++ {
		r.Spawn("customer", func(p *proc.P) {
			_ = s.GetHaircut(p)
		})
	}
	r.Join()
	if s.Served() != customers {
		t.Fatalf("Served = %d, want %d", s.Served(), customers)
	}
}

func TestCleanShopPassesDetection(t *testing.T) {
	t.Parallel()
	db := history.New()
	clk := clock.NewVirtual(epoch)
	s, err := New(2, WithMonitorOptions(monitor.WithRecorder(db), monitor.WithClock(clk)))
	if err != nil {
		t.Fatal(err)
	}
	det := detect.New(db, detect.Config{Clock: clk, HoldWorld: true}, s.Monitor())
	r := proc.NewRuntime()
	const customers = 10
	r.Spawn("barber", func(p *proc.P) {
		for i := 0; i < customers; i++ {
			if err := s.NextCustomer(p); err != nil {
				return
			}
		}
	})
	for c := 0; c < customers; c++ {
		r.Spawn("customer", func(p *proc.P) { _ = s.GetHaircut(p) })
	}
	r.Join()
	if vs := det.CheckNow(); len(vs) != 0 {
		t.Fatalf("clean shop produced violations: %v", vs)
	}
}
