// Package barbershop is the sleeping-barber problem as a second
// communication-coordinator monitor: customers "send" themselves into a
// bounded waiting room, the barber "receives" them. It exists to show
// the coordinator integrity constraints (§2.1) are not tied to the
// Send/Receive procedure names — the declaration maps GetHaircut and
// NextCustomer onto the coordinator roles.
package barbershop

import (
	"fmt"
	"sync"

	"robustmon/internal/monitor"
	"robustmon/internal/proc"
)

// Procedure and condition names in the monitor declaration.
const (
	ProcGetHaircut   = "GetHaircut"
	ProcNextCustomer = "NextCustomer"
	CondChairFree    = "chairFree"
	CondCustomer     = "customerArrived"
)

// Shop is a barbershop with a bounded waiting room. Construct with New.
type Shop struct {
	mon    *monitor.Monitor
	chairs int

	mu      sync.Mutex
	waiting int
	served  int
}

// Option configures a Shop.
type Option func(*config)

type config struct {
	name    string
	monOpts []monitor.Option
}

// WithName overrides the monitor name (default "barbershop").
func WithName(name string) Option {
	return func(c *config) { c.name = name }
}

// WithMonitorOptions passes options (recorder, clock, hooks) to the
// underlying monitor.
func WithMonitorOptions(opts ...monitor.Option) Option {
	return func(c *config) { c.monOpts = append(c.monOpts, opts...) }
}

// Spec returns the monitor declaration a Shop of the given name and
// waiting-room size uses.
func Spec(name string, chairs int) monitor.Spec {
	return monitor.Spec{
		Name:        name,
		Kind:        monitor.CommunicationCoordinator,
		Conditions:  []string{CondChairFree, CondCustomer},
		Procedures:  []string{ProcGetHaircut, ProcNextCustomer},
		Rmax:        chairs,
		SendProc:    ProcGetHaircut,
		ReceiveProc: ProcNextCustomer,
	}
}

// New builds a shop with the given number of waiting-room chairs.
func New(chairs int, opts ...Option) (*Shop, error) {
	if chairs <= 0 {
		return nil, fmt.Errorf("barbershop: chairs must be positive, got %d", chairs)
	}
	cfg := config{name: "barbershop"}
	for _, o := range opts {
		o(&cfg)
	}
	mon, err := monitor.New(Spec(cfg.name, chairs), cfg.monOpts...)
	if err != nil {
		return nil, err
	}
	return &Shop{mon: mon, chairs: chairs}, nil
}

// Monitor exposes the underlying monitor.
func (s *Shop) Monitor() *monitor.Monitor { return s.mon }

// Waiting returns the number of customers in the waiting room.
func (s *Shop) Waiting() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.waiting
}

// Served returns the number of completed haircuts.
func (s *Shop) Served() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.served
}

// GetHaircut seats the customer, blocking while the waiting room is
// full, and announces the arrival to the barber.
func (s *Shop) GetHaircut(p *proc.P) error {
	if err := s.mon.Enter(p, ProcGetHaircut); err != nil {
		return err
	}
	if s.Waiting() == s.chairs {
		if err := s.mon.Wait(p, ProcGetHaircut, CondChairFree); err != nil {
			return err
		}
	}
	s.mu.Lock()
	s.waiting++
	s.mu.Unlock()
	return s.mon.SignalExit(p, ProcGetHaircut, CondCustomer)
}

// NextCustomer takes the next customer, blocking (sleeping) while the
// waiting room is empty, and frees a chair.
func (s *Shop) NextCustomer(p *proc.P) error {
	if err := s.mon.Enter(p, ProcNextCustomer); err != nil {
		return err
	}
	if s.Waiting() == 0 {
		if err := s.mon.Wait(p, ProcNextCustomer, CondCustomer); err != nil {
			return err
		}
	}
	s.mu.Lock()
	s.waiting--
	s.served++
	s.mu.Unlock()
	return s.mon.SignalExit(p, ProcNextCustomer, CondChairFree)
}
