package kvstore

import (
	"testing"
	"time"

	"robustmon/internal/clock"
	"robustmon/internal/detect"
	"robustmon/internal/history"
	"robustmon/internal/monitor"
	"robustmon/internal/proc"
)

var epoch = time.Date(2001, 7, 1, 0, 0, 0, 0, time.UTC)

func TestBasicOps(t *testing.T) {
	t.Parallel()
	s, err := New(WithName("cfg"))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if s.Monitor().Name() != "cfg" {
		t.Fatalf("Name = %q", s.Monitor().Name())
	}
	r := proc.NewRuntime()
	r.Spawn("user", func(p *proc.P) {
		if err := s.Put(p, "k", "v"); err != nil {
			t.Errorf("Put: %v", err)
			return
		}
		v, ok, err := s.Get(p, "k")
		if err != nil || !ok || v != "v" {
			t.Errorf("Get = (%q,%v,%v), want (v,true,nil)", v, ok, err)
		}
		if _, ok, _ := s.Get(p, "missing"); ok {
			t.Error("Get(missing) reported ok")
		}
		if err := s.Delete(p, "k"); err != nil {
			t.Errorf("Delete: %v", err)
		}
		if _, ok, _ := s.Get(p, "k"); ok {
			t.Error("Get after Delete reported ok")
		}
	})
	r.Join()
	if s.Len() != 0 {
		t.Fatalf("Len = %d, want 0", s.Len())
	}
}

func TestTakeAnyBlocksUntilPut(t *testing.T) {
	t.Parallel()
	s, err := New()
	if err != nil {
		t.Fatal(err)
	}
	r := proc.NewRuntime()
	type kv struct{ k, v string }
	got := make(chan kv, 1)
	taker := r.Spawn("taker", func(p *proc.P) {
		k, v, err := s.TakeAny(p)
		if err != nil {
			return
		}
		got <- kv{k, v}
	})
	deadline := time.Now().Add(5 * time.Second)
	for taker.Status() != proc.Parked {
		if time.Now().After(deadline) {
			t.Fatal("TakeAny never blocked on empty store")
		}
		time.Sleep(100 * time.Microsecond)
	}
	r.Spawn("putter", func(p *proc.P) {
		if err := s.Put(p, "job1", "payload"); err != nil {
			t.Errorf("Put: %v", err)
		}
	})
	r.Join()
	select {
	case e := <-got:
		if e.k != "job1" || e.v != "payload" {
			t.Fatalf("TakeAny = %+v", e)
		}
	default:
		t.Fatal("TakeAny did not deliver after Put")
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after take, want 0", s.Len())
	}
}

func TestConcurrentMixPassesDetection(t *testing.T) {
	t.Parallel()
	db := history.New()
	clk := clock.NewVirtual(epoch)
	s, err := New(WithMonitorOptions(monitor.WithRecorder(db), monitor.WithClock(clk)))
	if err != nil {
		t.Fatal(err)
	}
	det := detect.New(db, detect.Config{Clock: clk, HoldWorld: true}, s.Monitor())
	r := proc.NewRuntime()
	keys := []string{"a", "b", "c", "d"}
	for w := 0; w < 4; w++ {
		w := w
		r.Spawn("writer", func(p *proc.P) {
			for i := 0; i < 20; i++ {
				key := keys[(w+i)%len(keys)]
				if err := s.Put(p, key, "x"); err != nil {
					return
				}
				if _, _, err := s.Get(p, key); err != nil {
					return
				}
				if i%3 == 0 {
					if err := s.Delete(p, key); err != nil {
						return
					}
				}
			}
		})
	}
	r.Join()
	if vs := det.CheckNow(); len(vs) != 0 {
		t.Fatalf("clean kvstore run produced violations: %v", vs)
	}
}
