// Package kvstore is a resource-operation-manager monitor (§2.1):
// synchronisation is implicit — the shared map and its operations live
// inside the monitor, so user processes just call Get/Put/Delete and
// never see a request/release pair. "This approach has the benefit of
// more modularity and preventing user processes from possible misuses
// of the resources."
package kvstore

import (
	"sync"

	"robustmon/internal/monitor"
	"robustmon/internal/proc"
)

// Procedure names in the monitor declaration.
const (
	ProcGet    = "Get"
	ProcPut    = "Put"
	ProcDelete = "Delete"
	// CondNonEmpty delays TakeAny callers on an empty store.
	CondNonEmpty = "nonEmpty"
	// ProcTakeAny is the blocking consumer procedure.
	ProcTakeAny = "TakeAny"
)

// Store is a string-keyed map behind an operation-manager monitor.
// Construct with New.
type Store struct {
	mon *monitor.Monitor

	mu   sync.Mutex
	data map[string]string
}

// Option configures a Store.
type Option func(*config)

type config struct {
	name    string
	monOpts []monitor.Option
}

// WithName overrides the monitor name (default "kvstore").
func WithName(name string) Option {
	return func(c *config) { c.name = name }
}

// WithMonitorOptions passes options (recorder, clock, hooks) to the
// underlying monitor.
func WithMonitorOptions(opts ...monitor.Option) Option {
	return func(c *config) { c.monOpts = append(c.monOpts, opts...) }
}

// Spec returns the monitor declaration a Store of the given name uses.
func Spec(name string) monitor.Spec {
	return monitor.Spec{
		Name:       name,
		Kind:       monitor.OperationManager,
		Conditions: []string{CondNonEmpty},
		Procedures: []string{ProcGet, ProcPut, ProcDelete, ProcTakeAny},
	}
}

// New builds an empty store.
func New(opts ...Option) (*Store, error) {
	cfg := config{name: "kvstore"}
	for _, o := range opts {
		o(&cfg)
	}
	mon, err := monitor.New(Spec(cfg.name), cfg.monOpts...)
	if err != nil {
		return nil, err
	}
	return &Store{mon: mon, data: make(map[string]string)}, nil
}

// Monitor exposes the underlying monitor.
func (s *Store) Monitor() *monitor.Monitor { return s.mon }

// Get returns the value for key and whether it exists.
func (s *Store) Get(p *proc.P, key string) (string, bool, error) {
	if err := s.mon.Enter(p, ProcGet); err != nil {
		return "", false, err
	}
	s.mu.Lock()
	v, ok := s.data[key]
	s.mu.Unlock()
	return v, ok, s.mon.Exit(p, ProcGet)
}

// Put stores value under key and wakes one TakeAny waiter.
func (s *Store) Put(p *proc.P, key, value string) error {
	if err := s.mon.Enter(p, ProcPut); err != nil {
		return err
	}
	s.mu.Lock()
	s.data[key] = value
	s.mu.Unlock()
	return s.mon.SignalExit(p, ProcPut, CondNonEmpty)
}

// Delete removes key (a no-op for a missing key).
func (s *Store) Delete(p *proc.P, key string) error {
	if err := s.mon.Enter(p, ProcDelete); err != nil {
		return err
	}
	s.mu.Lock()
	delete(s.data, key)
	s.mu.Unlock()
	return s.mon.Exit(p, ProcDelete)
}

// TakeAny blocks until the store is non-empty, then removes and returns
// an arbitrary entry — the conditional-synchronisation operation that
// exercises the manager's condition queue.
func (s *Store) TakeAny(p *proc.P) (key, value string, err error) {
	if err := s.mon.Enter(p, ProcTakeAny); err != nil {
		return "", "", err
	}
	if s.Len() == 0 {
		if err := s.mon.Wait(p, ProcTakeAny, CondNonEmpty); err != nil {
			return "", "", err
		}
	}
	s.mu.Lock()
	for k, v := range s.data {
		key, value = k, v
		break
	}
	delete(s.data, key)
	s.mu.Unlock()
	return key, value, s.mon.Exit(p, ProcTakeAny)
}

// Len returns the number of stored entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.data)
}
