package philosophers

import (
	"sync"
	"testing"
	"time"

	"robustmon/internal/clock"
	"robustmon/internal/detect"
	"robustmon/internal/history"
	"robustmon/internal/monitor"
	"robustmon/internal/proc"
	"robustmon/internal/rules"
)

var epoch = time.Date(2001, 7, 1, 0, 0, 0, 0, time.UTC)

func TestNewValidation(t *testing.T) {
	t.Parallel()
	if _, err := New(1); err == nil {
		t.Fatal("1 seat accepted")
	}
	tb, err := New(5, WithName("t5"))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if tb.Seats() != 5 || tb.Monitor().Name() != "t5" {
		t.Fatalf("Seats=%d Name=%q", tb.Seats(), tb.Monitor().Name())
	}
}

func TestSeatRangeChecked(t *testing.T) {
	t.Parallel()
	tb, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	r := proc.NewRuntime()
	r.Spawn("p", func(p *proc.P) {
		if err := tb.PickUp(p, -1); err == nil {
			t.Error("PickUp(-1) accepted")
		}
		if err := tb.PutDown(p, 3); err == nil {
			t.Error("PutDown(3) accepted")
		}
	})
	r.Join()
}

func TestNeighboursNeverEatTogether(t *testing.T) {
	t.Parallel()
	const seats, meals = 5, 20
	tb, err := New(seats)
	if err != nil {
		t.Fatal(err)
	}
	r := proc.NewRuntime()
	var mu sync.Mutex
	eating := make([]bool, seats)
	total := 0
	for seat := 0; seat < seats; seat++ {
		seat := seat
		r.Spawn("phil", func(p *proc.P) {
			for m := 0; m < meals; m++ {
				if err := tb.PickUp(p, seat); err != nil {
					return
				}
				mu.Lock()
				left := (seat + seats - 1) % seats
				right := (seat + 1) % seats
				if eating[left] || eating[right] {
					t.Errorf("seat %d eats while a neighbour eats", seat)
				}
				eating[seat] = true
				total++
				mu.Unlock()
				mu.Lock()
				eating[seat] = false
				mu.Unlock()
				if err := tb.PutDown(p, seat); err != nil {
					return
				}
			}
		})
	}
	r.Join()
	if total != seats*meals {
		t.Fatalf("total meals = %d, want %d (no starvation under this schedule)", total, seats*meals)
	}
	for seat := 0; seat < seats; seat++ {
		if tb.Eating(seat) {
			t.Fatalf("seat %d still marked eating after the run", seat)
		}
	}
}

func TestDoublePutDownCaughtRealtime(t *testing.T) {
	t.Parallel()
	db := history.New()
	clk := clock.NewVirtual(epoch)
	spec := Spec("table", 3)
	rt, err := detect.NewRealTime(db, []monitor.Spec{spec}, nil)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := New(3, WithMonitorOptions(monitor.WithRecorder(rt), monitor.WithClock(clk)))
	if err != nil {
		t.Fatal(err)
	}
	r := proc.NewRuntime()
	r.Spawn("clumsy", func(p *proc.P) {
		if err := tb.PickUp(p, 0); err != nil {
			return
		}
		if err := tb.PutDown(p, 0); err != nil {
			return
		}
		_ = tb.PutDown(p, 0) // fault III.a shape: release without acquire
	})
	r.Join()
	vs := rt.Violations()
	if !rules.HasRule(vs, rules.FD7b) {
		t.Fatalf("violations = %v, want FD-7b for the double put-down", vs)
	}
}

func TestCleanMealsPassDetection(t *testing.T) {
	t.Parallel()
	db := history.New()
	clk := clock.NewVirtual(epoch)
	tb, err := New(4, WithMonitorOptions(monitor.WithRecorder(db), monitor.WithClock(clk)))
	if err != nil {
		t.Fatal(err)
	}
	det := detect.New(db, detect.Config{Clock: clk, HoldWorld: true}, tb.Monitor())
	r := proc.NewRuntime()
	for seat := 0; seat < 4; seat++ {
		seat := seat
		r.Spawn("phil", func(p *proc.P) {
			for m := 0; m < 10; m++ {
				if err := tb.PickUp(p, seat); err != nil {
					return
				}
				if err := tb.PutDown(p, seat); err != nil {
					return
				}
			}
		})
	}
	r.Join()
	if vs := det.CheckNow(); len(vs) != 0 {
		t.Fatalf("clean meals produced violations: %v", vs)
	}
}
