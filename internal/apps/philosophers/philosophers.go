// Package philosophers is the dining-philosophers table as a
// resource-access-right allocator monitor: PickUp(i) grants philosopher
// i both forks atomically (waiting on a per-philosopher condition when
// a neighbour eats), PutDown(i) returns them and wakes hungry
// neighbours. The declaration's path expression "path PickUp ; PutDown
// end" lets the real-time checker catch a philosopher who puts down
// forks twice or picks up while already eating.
package philosophers

import (
	"fmt"
	"sync"

	"robustmon/internal/monitor"
	"robustmon/internal/proc"
)

// Procedure names in the monitor declaration.
const (
	ProcPickUp  = "PickUp"
	ProcPutDown = "PutDown"
)

// Table seats n philosophers. Construct with New.
type Table struct {
	mon *monitor.Monitor
	n   int

	mu     sync.Mutex
	eating []bool
	hungry []bool
}

// Option configures a Table.
type Option func(*config)

type config struct {
	name    string
	monOpts []monitor.Option
}

// WithName overrides the monitor name (default "table").
func WithName(name string) Option {
	return func(c *config) { c.name = name }
}

// WithMonitorOptions passes options (recorder, clock, hooks) to the
// underlying monitor.
func WithMonitorOptions(opts ...monitor.Option) Option {
	return func(c *config) { c.monOpts = append(c.monOpts, opts...) }
}

// Spec returns the monitor declaration a Table of the given name and
// size uses: one condition per seat plus the calling-order path.
func Spec(name string, n int) monitor.Spec {
	conds := make([]string, n)
	for i := range conds {
		conds[i] = condFor(i)
	}
	return monitor.Spec{
		Name:        name,
		Kind:        monitor.ResourceAllocator,
		Conditions:  conds,
		Procedures:  []string{ProcPickUp, ProcPutDown},
		CallOrder:   "path PickUp ; PutDown end",
		AcquireProc: ProcPickUp,
		ReleaseProc: ProcPutDown,
	}
}

func condFor(seat int) string { return fmt.Sprintf("self%d", seat) }

// New builds a table with n ≥ 2 seats.
func New(n int, opts ...Option) (*Table, error) {
	if n < 2 {
		return nil, fmt.Errorf("philosophers: need at least 2 seats, got %d", n)
	}
	cfg := config{name: "table"}
	for _, o := range opts {
		o(&cfg)
	}
	mon, err := monitor.New(Spec(cfg.name, n), cfg.monOpts...)
	if err != nil {
		return nil, err
	}
	return &Table{
		mon:    mon,
		n:      n,
		eating: make([]bool, n),
		hungry: make([]bool, n),
	}, nil
}

// Monitor exposes the underlying monitor.
func (t *Table) Monitor() *monitor.Monitor { return t.mon }

// Seats returns the number of seats.
func (t *Table) Seats() int { return t.n }

// Eating reports whether philosopher seat is currently eating.
func (t *Table) Eating(seat int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.eating[seat]
}

// PickUp blocks philosopher seat until both neighbouring forks are
// free, then marks it eating.
func (t *Table) PickUp(p *proc.P, seat int) error {
	if err := t.checkSeat(seat); err != nil {
		return err
	}
	if err := t.mon.Enter(p, ProcPickUp); err != nil {
		return err
	}
	t.mu.Lock()
	canEat := !t.eating[t.left(seat)] && !t.eating[t.right(seat)]
	if !canEat {
		t.hungry[seat] = true
	}
	t.mu.Unlock()
	if !canEat {
		if err := t.mon.Wait(p, ProcPickUp, condFor(seat)); err != nil {
			return err
		}
		// The signaller established the eating invariant before waking us.
	}
	t.mu.Lock()
	t.hungry[seat] = false
	t.eating[seat] = true
	t.mu.Unlock()
	return t.mon.Exit(p, ProcPickUp)
}

// PutDown returns philosopher seat's forks and feeds at most one hungry
// neighbour that can now eat.
func (t *Table) PutDown(p *proc.P, seat int) error {
	if err := t.checkSeat(seat); err != nil {
		return err
	}
	if err := t.mon.Enter(p, ProcPutDown); err != nil {
		return err
	}
	t.mu.Lock()
	t.eating[seat] = false
	wake := -1
	for _, nb := range []int{t.left(seat), t.right(seat)} {
		if t.hungry[nb] && !t.eating[t.left(nb)] && !t.eating[t.right(nb)] {
			wake = nb
			break
		}
	}
	if wake >= 0 {
		// Reserve the forks for the woken neighbour before it resumes so
		// no later PickUp can slip in between.
		t.eating[wake] = true
		t.hungry[wake] = false
	}
	t.mu.Unlock()
	if wake >= 0 {
		return t.mon.SignalExit(p, ProcPutDown, condFor(wake))
	}
	return t.mon.Exit(p, ProcPutDown)
}

func (t *Table) left(seat int) int  { return (seat + t.n - 1) % t.n }
func (t *Table) right(seat int) int { return (seat + 1) % t.n }

func (t *Table) checkSeat(seat int) error {
	if seat < 0 || seat >= t.n {
		return fmt.Errorf("philosophers: seat %d out of range [0,%d)", seat, t.n)
	}
	return nil
}
