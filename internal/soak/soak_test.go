package soak

import (
	"strings"
	"testing"
)

// The CI seeds: three campaigns that between them cover the three
// apps (the plan is seed-deterministic, so the coverage assertion
// below pins that). Chosen fixed, not random: a soak failure in CI
// must reproduce locally with the printed seed, byte for byte.
var ciSeeds = []int64{20010701, 20010704, 20010705}

// TestCampaignsFixedSeeds runs the CI campaigns — the short-mode soak
// job. Each seed composes workload × fault × detector × rotation ×
// compaction × retention × recovery concurrently and verifies the
// conservation invariants.
func TestCampaignsFixedSeeds(t *testing.T) {
	apps := map[string]bool{}
	for _, seed := range ciSeeds {
		seed := seed
		t.Run(ReplayCommand(seed), func(t *testing.T) {
			t.Parallel()
			rep, err := Run(Config{Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Accepted == 0 {
				t.Fatalf("campaign accepted no events: %s", rep)
			}
			if rep.Dropped > 0 && rep.Horizon == 0 {
				t.Fatalf("dropped events with no horizon: %s", rep)
			}
			t.Log(rep)
		})
		apps[plan(seed, 0).app] = true
	}
	for _, app := range []string{"coordinator", "allocator", "manager"} {
		if !apps[app] {
			t.Errorf("CI seeds no longer cover the %s app — re-pick ciSeeds", app)
		}
	}
}

// TestCampaignRetentionActuallyDrops pins that the harness is not
// vacuous: across the CI seeds, at least one campaign's final store
// was truncated by retention (dropped > 0 and a tombstone horizon
// recorded) and at least one background compaction ran somewhere.
func TestCampaignRetentionActuallyDrops(t *testing.T) {
	var dropped, compactions int64
	for _, seed := range ciSeeds {
		rep, err := Run(Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		dropped += rep.Dropped
		compactions += rep.Compactions
	}
	if dropped == 0 {
		t.Error("no CI campaign dropped anything by retention — the soak never exercises the horizon")
	}
	if compactions == 0 {
		t.Error("no CI campaign ran a background compaction — the cadence never fires")
	}
}

// TestCampaignSeedSweep widens the net: a block of consecutive seeds,
// so plan-space neighbours (every app × fault × config axis) get
// exercised. Skipped in -short; the CI soak job runs the fixed seeds
// above instead.
func TestCampaignSeedSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep is the long-mode soak")
	}
	for seed := int64(7000); seed < 7010; seed++ {
		seed := seed
		t.Run(ReplayCommand(seed), func(t *testing.T) {
			t.Parallel()
			if _, err := Run(Config{Seed: seed, Ops: 600}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestFailureMentionsReplayCommand pins the failure UX: any invariant
// error names the seed and the monsoak replay command.
func TestFailureMentionsReplayCommand(t *testing.T) {
	err := failf(42, "synthetic")
	if !strings.Contains(err.Error(), "seed 42") ||
		!strings.Contains(err.Error(), ReplayCommand(42)) {
		t.Fatalf("failure message lacks seed or replay command: %v", err)
	}
}

// TestPlanDeterministic pins that a seed fully determines the
// campaign: the replay contract depends on it.
func TestPlanDeterministic(t *testing.T) {
	for _, seed := range ciSeeds {
		a, b := plan(seed, 0), plan(seed, 0)
		if a.app != b.app || a.fault != b.fault || a.procs != b.procs ||
			a.maxFileBytes != b.maxFileBytes || a.chunkEvents != b.chunkEvents ||
			len(a.floorFracs) != len(b.floorFracs) || a.floorFracs[0] != b.floorFracs[0] {
			t.Fatalf("plan(%d) not deterministic:\n%+v\nvs\n%+v", seed, a, b)
		}
	}
}
