// Package soak is the generative long-horizon campaign harness: one
// seed expands into a randomized composition of a scripted workload
// (internal/workload over internal/apps), a periodic detector, a
// streaming WAL exporter with background compaction, and an advancing
// retention floor — all running concurrently — and the run is judged
// not by a golden output but by conservation invariants that must hold
// for every seed:
//
//   - every event the exporter accepted is either present in the final
//     replay byte-identically, or lies strictly below the store's
//     retention horizon (retention may drop, never corrupt);
//   - the newest tombstone's cumulative event count equals exactly the
//     number of accepted events missing from the replay (the tombstone
//     is an honest receipt, not an estimate);
//   - every recovery marker the detector emitted is either replayed or
//     below the horizon, and no marker at-or-above the horizon is
//     orphaned;
//   - replaying the final directory twice yields byte-identical traces
//     (the store is deterministic at rest).
//
// A failing campaign reports its seed and the exact command that
// replays it (cmd/monsoak), so soak failures found in CI reduce to a
// one-line local repro. The harness is deliberately built from the
// same public seams the production pipeline uses — detect.Config.
// Exporter, export.Config.CompactEvery, compact.Config.RetainSeq — so
// an invariant violation here is a bug in the shipped composition, not
// in test-only plumbing.
package soak

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"robustmon/internal/apps/allocator"
	"robustmon/internal/apps/boundedbuffer"
	"robustmon/internal/apps/kvstore"
	"robustmon/internal/detect"
	"robustmon/internal/event"
	"robustmon/internal/export"
	"robustmon/internal/export/compact"
	"robustmon/internal/export/index"
	"robustmon/internal/faults"
	"robustmon/internal/history"
	"robustmon/internal/monitor"
	"robustmon/internal/obs"
	obsrules "robustmon/internal/obs/rules"
	"robustmon/internal/proc"
	"robustmon/internal/rules"
	"robustmon/internal/workload"
)

// Config parameterises one campaign.
type Config struct {
	// Seed selects the campaign: app, fault, detector configuration,
	// rotation/compaction/retention cadence are all derived from it.
	Seed int64
	// Ops is the approximate number of monitor operations the workload
	// performs (default 1200). CI short mode uses the default; a
	// longer-running soak raises it.
	Ops int
	// Dir, when set, is the export directory to use — it is kept after
	// the run (for post-mortems). Empty means a temp dir, removed on
	// success and kept on failure.
	Dir string
	// Log, when set, receives one-line progress notes.
	Log io.Writer
}

// Report summarises a completed (passing) campaign.
type Report struct {
	// Seed is the campaign seed (echoed for logs).
	Seed int64
	// App is the workload the seed picked: coordinator, allocator or
	// manager.
	App string
	// Fault names the injected fault kind, or "none".
	Fault string
	// Procs is the number of scripted processes.
	Procs int
	// Accepted is the number of events the exporter accepted — the
	// conservation baseline.
	Accepted int64
	// Replayed is the number of events the final replay returned.
	Replayed int64
	// Dropped is Accepted − Replayed: events reclaimed by retention
	// (every one verified to lie below Horizon).
	Dropped int64
	// Horizon is the final retention horizon (0 when retention never
	// dropped anything).
	Horizon int64
	// Compactions counts background passes launched while the run was
	// live (the final offline pass is not included).
	Compactions int64
	// Resets is how many shard-local recovery resets were applied.
	Resets int
	// Violations is how many rule violations the detector reported.
	Violations int
	// Markers is how many recovery markers survived in the replay.
	Markers int
	// Dir is the export directory the campaign used (already removed
	// unless Config.Dir was set).
	Dir string
}

// String renders the one-line campaign summary monsoak prints.
func (r *Report) String() string {
	return fmt.Sprintf(
		"seed=%d app=%s fault=%s procs=%d accepted=%d replayed=%d dropped=%d horizon=%d compactions=%d resets=%d violations=%d",
		r.Seed, r.App, r.Fault, r.Procs, r.Accepted, r.Replayed, r.Dropped,
		r.Horizon, r.Compactions, r.Resets, r.Violations)
}

// ReplayCommand is the exact command that reruns one seed locally —
// printed alongside every failure so a CI soak find is a one-liner to
// reproduce.
func ReplayCommand(seed int64) string {
	return fmt.Sprintf("go run ./cmd/monsoak -seed %d", seed)
}

// failf wraps a campaign failure with its seed and replay command.
func failf(seed int64, format string, args ...any) error {
	return fmt.Errorf("soak: seed %d: %s\n  replay: %s",
		seed, fmt.Sprintf(format, args...), ReplayCommand(seed))
}

// ledger sits at the detect.TraceExporter seam: it records everything
// the detector hands to the export pipeline (the conservation
// baseline) and forwards to the real exporter. With the Block policy
// beneath it, every recorded event is durably written unless the sink
// errors — which the campaign checks separately.
type ledger struct {
	inner *export.Exporter

	// maxSeq is the highest accepted sequence number — the moving
	// anchor the advancing retention floors are computed from. Atomic:
	// the compaction goroutine reads it while Consume writes it.
	maxSeq atomic.Int64

	mu      sync.Mutex
	events  map[int64][]byte // seq → single-event binary encoding
	markers []history.RecoveryMarker
}

func newLedger(inner *export.Exporter) *ledger {
	return &ledger{inner: inner, events: make(map[int64][]byte)}
}

func (l *ledger) Consume(mon string, seg event.Seq) {
	l.mu.Lock()
	for _, ev := range seg {
		l.events[ev.Seq] = event.AppendBinary(nil, event.Seq{ev})
		if ev.Seq > l.maxSeq.Load() {
			l.maxSeq.Store(ev.Seq)
		}
	}
	l.mu.Unlock()
	l.inner.Consume(mon, seg)
}

func (l *ledger) ConsumeMarker(m history.RecoveryMarker) {
	l.mu.Lock()
	l.markers = append(l.markers, m)
	l.mu.Unlock()
	l.inner.ConsumeMarker(m)
}

func (l *ledger) ConsumeHealth(h obs.HealthRecord) { l.inner.ConsumeHealth(h) }
func (l *ledger) ConsumeAlert(a obsrules.Alert)    { l.inner.ConsumeAlert(a) }
func (l *ledger) Flush() error                     { return l.inner.Flush() }

// campaign is the seed-derived plan: everything random is drawn up
// front on one goroutine, so the concurrent phase touches no shared
// rng.
type campaign struct {
	app          string
	fault        faults.Kind // 0 = none
	procs        int
	opsPerProc   int
	capacity     int // buffer capacity / allocator units
	maxFileBytes int64
	chunkEvents  int
	compactEvery int
	interval     time.Duration
	holdWorld    bool
	batchSize    int
	healthEvery  time.Duration
	withIndex    bool
	resetBudget  int32
	// floorFracs are the retention-floor fractions consecutive
	// background passes apply against the ledger's current maxSeq.
	floorFracs []float64
	// finalFrac is the offline pass's retention fraction.
	finalFrac float64
}

// plan expands a seed into a campaign.
func plan(seed int64, ops int) campaign {
	rng := rand.New(rand.NewSource(seed))
	if ops <= 0 {
		ops = 1200
	}
	c := campaign{
		procs:        4 + rng.Intn(5),
		capacity:     2 + rng.Intn(5),
		maxFileBytes: int64(2<<10 + rng.Intn(14<<10)),
		chunkEvents:  64 << rng.Intn(5), // 64..1024
		compactEvery: 2 + rng.Intn(4),
		interval:     time.Duration(1+rng.Intn(4)) * time.Millisecond,
		holdWorld:    rng.Intn(2) == 0,
		withIndex:    rng.Intn(2) == 0,
		resetBudget:  int32(rng.Intn(4)),
		finalFrac:    0.25 + 0.5*rng.Float64(),
	}
	if rng.Intn(2) == 0 {
		c.batchSize = 64 << rng.Intn(3)
	}
	if rng.Intn(2) == 0 {
		c.healthEvery = time.Duration(2+rng.Intn(8)) * time.Millisecond
	}
	c.opsPerProc = ops / c.procs
	if c.opsPerProc < 1 {
		c.opsPerProc = 1
	}
	for i := 0; i < 64; i++ {
		c.floorFracs = append(c.floorFracs, 0.2+0.6*rng.Float64())
	}
	switch rng.Intn(3) {
	case 0:
		c.app = "coordinator"
		// Only the non-blocking procedure-level kinds: the spurious-delay
		// bugs park a process forever, which tests detection, not the
		// store — and the soak's subject is the store.
		c.fault = []faults.Kind{0, faults.ReceiveOvertake, faults.SendOverflow}[rng.Intn(3)]
	case 1:
		c.app = "allocator"
		c.capacity = c.procs + 2 // a leaked unit must not deadlock the rest
		c.fault = []faults.Kind{0, faults.ReleaseWithoutAcquire, faults.ResourceNeverReleased}[rng.Intn(3)]
	default:
		c.app = "manager"
	}
	return c
}

// Run executes one campaign and verifies the conservation invariants.
// A nil error means every invariant held; the error of a failing run
// carries the seed and the replay command.
func Run(cfg Config) (*Report, error) {
	c := plan(cfg.Seed, cfg.Ops)
	logf := func(format string, args ...any) {
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, format+"\n", args...)
		}
	}

	dir := cfg.Dir
	keep := dir != ""
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "robustmon-soak-*")
		if err != nil {
			return nil, err
		}
	}
	faultName := "none"
	if c.fault != 0 {
		faultName = c.fault.String()
	}
	logf("soak: seed=%d app=%s fault=%s procs=%d ops/proc=%d dir=%s",
		cfg.Seed, c.app, faultName, c.procs, c.opsPerProc, dir)

	reg := obs.NewRegistry()
	var seal []export.SealedSink
	var maint *index.Maintainer
	if c.withIndex {
		maint = index.NewMaintainer(dir)
		seal = append(seal, maint)
	}
	sink, err := export.NewWALSink(dir, export.WALConfig{
		MaxFileBytes: c.maxFileBytes,
		OnSeal:       seal,
	})
	if err != nil {
		return nil, err
	}

	var led *ledger
	var passIdx atomic.Int64
	exp := export.New(sink, export.Config{
		Policy:       export.Block,
		CompactEvery: c.compactEvery,
		Obs:          reg,
		Compact: func() error {
			// The floor advances with the run: each background pass
			// retains only the newest fraction of what has been accepted
			// so far, so rotation, compaction, retention and recovery all
			// overlap while the workload is still producing.
			i := int(passIdx.Add(1)-1) % len(c.floorFracs)
			floor := int64(float64(led.maxSeq.Load()) * c.floorFracs[i])
			_, err := compact.Dir(dir, compact.Config{
				RetainSeq:   floor,
				ChunkEvents: c.chunkEvents,
				Obs:         reg,
			})
			return err
		},
	})
	led = newLedger(exp)

	db := history.New()
	rec := monitor.WithRecorder(db)
	var mon *monitor.Monitor
	var buf *boundedbuffer.Buffer
	var alloc *allocator.Allocator
	var store *kvstore.Store
	var inj *faults.Injector
	if c.fault != 0 {
		inj = faults.NewInjector(c.fault, faults.FireEveryTime())
	}
	switch c.app {
	case "coordinator":
		opts := []boundedbuffer.Option{boundedbuffer.WithMonitorOptions(rec)}
		if inj != nil {
			opts = append(opts, boundedbuffer.WithInjector(inj))
		}
		buf, err = boundedbuffer.New(c.capacity, opts...)
		if err != nil {
			return nil, err
		}
		mon = buf.Monitor()
	case "allocator":
		alloc, err = allocator.New(c.capacity, allocator.WithMonitorOptions(rec))
		if err != nil {
			return nil, err
		}
		mon = alloc.Monitor()
	default:
		store, err = kvstore.New(kvstore.WithMonitorOptions(rec))
		if err != nil {
			return nil, err
		}
		mon = store.Monitor()
	}

	// Violations trigger real shard-local recovery, capped so a noisy
	// fault cannot thrash the store with resets faster than it refills.
	var det *detect.Detector
	resetsLeft := atomic.Int32{}
	resetsLeft.Store(c.resetBudget)
	det = detect.New(db, detect.Config{
		Interval:    c.interval,
		HoldWorld:   c.holdWorld,
		BatchSize:   c.batchSize,
		Exporter:    led,
		Obs:         reg,
		HealthEvery: c.healthEvery,
		OnViolation: func(v rules.Violation) {
			if resetsLeft.Add(-1) >= 0 {
				det.RequestReset(v.Monitor, v)
			}
		},
	}, mon)

	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan []rules.Violation, 1)
	go func() { runDone <- det.Run(ctx) }()

	gen := workload.NewGen(workload.Config{
		Seed: cfg.Seed, Procs: c.procs, OpsPerProc: c.opsPerProc, Think: 32,
	})
	rt := proc.NewRuntime()
	workDone := make(chan struct{})
	go func() {
		defer close(workDone)
		switch c.app {
		case "coordinator":
			if inj != nil {
				inj.Arm()
			}
			workload.RunCoordinator(rt, buf, gen.Coordinator())
		case "allocator":
			if inj != nil {
				inj.Arm()
				rt.Spawn("rogue", func(p *proc.P) {
					switch c.fault {
					case faults.ReleaseWithoutAcquire:
						if inj.TryFire() {
							_ = alloc.Release(p)
						}
					case faults.ResourceNeverReleased:
						if inj.TryFire() {
							_ = alloc.Acquire(p)
							return // never releases
						}
					}
				})
			}
			workload.RunAllocator(rt, alloc, gen.Allocator())
		default:
			workload.RunManager(rt, store, gen.Manager())
		}
	}()

	// A wedged workload — an injected fault starving the scripts, or a
	// recovery reset that aborted a producer and stranded its consumers
	// — is aborted, not failed: the store invariants are still checked
	// over whatever was produced. Wedge means no export progress for a
	// stretch (drains run at millisecond cadence, so a live workload
	// advances led.maxSeq constantly), with a hard cap as backstop.
	func() {
		hardStop := time.After(2 * time.Minute)
		tick := time.NewTicker(100 * time.Millisecond)
		defer tick.Stop()
		last, lastAt := int64(-1), time.Now()
		for {
			select {
			case <-workDone:
				return
			case <-hardStop:
			case <-tick.C:
				if cur := led.maxSeq.Load(); cur != last {
					last, lastAt = cur, time.Now()
					continue
				}
				if time.Since(lastAt) < 3*time.Second {
					continue
				}
			}
			logf("soak: seed=%d workload wedged, aborting stragglers", cfg.Seed)
			rt.AbortAll()
			<-workDone
			return
		}
	}()
	rt.AbortAll() // release any fault-parked process before the final checkpoint
	cancel()
	violations := <-runDone
	stats := det.Stats()
	if err := exp.Close(); err != nil {
		if keep {
			return nil, failf(cfg.Seed, "exporter close: %v (dir kept at %s)", err, dir)
		}
		return nil, failf(cfg.Seed, "exporter close: %v", err)
	}
	es := exp.Stats()
	if es.WriteErrors > 0 {
		return nil, failf(cfg.Seed, "%d sink write errors", es.WriteErrors)
	}
	if maint != nil {
		if err := maint.Err(); err != nil {
			return nil, failf(cfg.Seed, "index maintainer: %v", err)
		}
	}

	// One offline pass over the closed store: every file is eligible
	// (KeepNewest −1), so even a campaign whose background cadence never
	// fired still exercises retention before verification.
	finalFloor := int64(float64(led.maxSeq.Load()) * c.finalFrac)
	if _, err := compact.Dir(dir, compact.Config{
		KeepNewest:  -1,
		RetainSeq:   finalFloor,
		ChunkEvents: c.chunkEvents,
		Obs:         reg,
	}); err != nil {
		return nil, failf(cfg.Seed, "final compaction: %v", err)
	}

	rep := &Report{
		Seed: cfg.Seed, App: c.app, Fault: faultName, Procs: c.procs,
		Compactions: es.Compactions, Resets: stats.Resets,
		Violations: len(violations), Dir: dir,
	}
	if err := verify(cfg.Seed, dir, led, rep); err != nil {
		if !keep {
			err = fmt.Errorf("%w\n  store kept at %s", err, dir)
		}
		return nil, err
	}
	if !keep {
		os.RemoveAll(dir)
	}
	logf("soak: %s", rep)
	return rep, nil
}

// verify replays the finished store and checks every conservation
// invariant against the ledger.
func verify(seed int64, dir string, led *ledger, rep *Report) error {
	replay, err := export.ReadDir(dir)
	if err != nil {
		return failf(seed, "final replay: %v", err)
	}
	again, err := export.ReadDir(dir)
	if err != nil {
		return failf(seed, "second replay: %v", err)
	}
	// Determinism at rest: two replays of the same directory must be
	// byte-identical.
	if !bytes.Equal(event.AppendBinary(nil, replay.Events), event.AppendBinary(nil, again.Events)) {
		return failf(seed, "two replays of the final store differ")
	}
	if replay.CorruptRecords > 0 {
		return failf(seed, "replay skipped %d corrupt records", replay.CorruptRecords)
	}
	horizon := replay.RetentionHorizon()

	led.mu.Lock()
	defer led.mu.Unlock()
	got := make(map[int64][]byte, len(replay.Events))
	for _, ev := range replay.Events {
		if _, dup := got[ev.Seq]; dup {
			return failf(seed, "replay holds two events with seq %d", ev.Seq)
		}
		got[ev.Seq] = event.AppendBinary(nil, event.Seq{ev})
	}
	var missing int64
	for seq, want := range led.events {
		have, ok := got[seq]
		if !ok {
			if seq >= horizon {
				return failf(seed, "accepted event seq %d (>= horizon %d) missing from the replay", seq, horizon)
			}
			missing++
			continue
		}
		if !bytes.Equal(have, want) {
			return failf(seed, "event seq %d replayed with different bytes than accepted", seq)
		}
	}
	// No resurrection: the store may not contain events the exporter
	// never accepted.
	for seq := range got {
		if _, ok := led.events[seq]; !ok {
			return failf(seed, "replay holds event seq %d the exporter never accepted", seq)
		}
	}
	// The tombstone is an exact receipt for what retention removed.
	var tombEvents int64
	for _, t := range replay.Tombstones {
		if t.Horizon == horizon && t.Events > tombEvents {
			tombEvents = t.Events
		}
	}
	if missing != tombEvents {
		return failf(seed, "%d accepted events missing from the replay but the tombstone accounts for %d", missing, tombEvents)
	}
	if missing > 0 && horizon == 0 {
		return failf(seed, "%d events missing with no tombstone in the store", missing)
	}
	// Markers straddling the horizon are never orphaned: every marker
	// the detector emitted is replayed unless retention dropped it, and
	// retention may only drop markers wholly below the horizon.
	type mkey struct {
		mon     string
		horizon int64
	}
	replayed := make(map[mkey]bool, len(replay.Markers))
	for _, m := range replay.Markers {
		replayed[mkey{m.Monitor, m.Horizon}] = true
	}
	for _, m := range led.markers {
		if replayed[mkey{m.Monitor, m.Horizon}] {
			continue
		}
		if m.Horizon >= horizon {
			return failf(seed, "recovery marker %s@%d (>= horizon %d) missing from the replay",
				m.Monitor, m.Horizon, horizon)
		}
	}
	rep.Accepted = int64(len(led.events))
	rep.Replayed = int64(len(replay.Events))
	rep.Dropped = missing
	rep.Horizon = horizon
	rep.Markers = len(replay.Markers)
	return nil
}
