package report

import (
	"strings"
	"testing"

	"robustmon/internal/faults"
	"robustmon/internal/rules"
)

func sample() []rules.Violation {
	return []rules.Violation{
		{Rule: rules.ST5, Monitor: "buf", Pid: 1, Seq: 9, Phase: "periodic",
			Fault: faults.InternalTermination, Message: "stuck"},
		{Rule: rules.ST5, Monitor: "buf", Pid: 1, Seq: 4, Phase: "periodic",
			Fault: faults.InternalTermination, Message: "stuck earlier"},
		{Rule: rules.ST7a, Monitor: "buf", Pid: 2, Seq: 7, Phase: "periodic",
			Fault: faults.SendOverflow, Message: "overflow"},
		{Rule: rules.FD7b, Monitor: "alloc", Pid: 3, Seq: 2, Phase: "realtime",
			Fault: faults.ReleaseWithoutAcquire, Message: "release first"},
	}
}

func TestSummarize(t *testing.T) {
	t.Parallel()
	s := Summarize(sample())
	if s.Total != 4 {
		t.Fatalf("Total = %d", s.Total)
	}
	if s.ByRule[rules.ST5] != 2 || s.ByRule[rules.ST7a] != 1 || s.ByRule[rules.FD7b] != 1 {
		t.Fatalf("ByRule = %v", s.ByRule)
	}
	if s.ByMonitor["buf"] != 3 || s.ByMonitor["alloc"] != 1 {
		t.Fatalf("ByMonitor = %v", s.ByMonitor)
	}
	if s.ByPhase["realtime"] != 1 || s.ByPhase["periodic"] != 3 {
		t.Fatalf("ByPhase = %v", s.ByPhase)
	}
	if s.ByFault[faults.InternalTermination] != 2 {
		t.Fatalf("ByFault = %v", s.ByFault)
	}
}

func TestSummaryString(t *testing.T) {
	t.Parallel()
	got := Summarize(sample()).String()
	for _, want := range []string{"total=4", "ST-5:2", "buf:3", "alloc:1"} {
		if !strings.Contains(got, want) {
			t.Errorf("String() = %q, missing %q", got, want)
		}
	}
	if empty := Summarize(nil).String(); empty != "total=0" {
		t.Errorf("empty summary = %q", empty)
	}
}

func TestDedupKeepsEarliestPerProblem(t *testing.T) {
	t.Parallel()
	out := Dedup(sample())
	if len(out) != 3 {
		t.Fatalf("Dedup kept %d, want 3: %v", len(out), out)
	}
	for _, v := range out {
		if v.Rule == rules.ST5 && v.Seq != 4 {
			t.Fatalf("Dedup kept seq %d for ST-5, want the earliest (4)", v.Seq)
		}
	}
}

func TestDedupDistinguishesConditions(t *testing.T) {
	t.Parallel()
	vs := []rules.Violation{
		{Rule: rules.ST5, Monitor: "m", Pid: 1, Cond: "a", Seq: 1},
		{Rule: rules.ST5, Monitor: "m", Pid: 1, Cond: "b", Seq: 2},
	}
	if got := Dedup(vs); len(got) != 2 {
		t.Fatalf("Dedup merged distinct conditions: %v", got)
	}
}

func TestDedupZeroSeqDoesNotWin(t *testing.T) {
	t.Parallel()
	vs := []rules.Violation{
		{Rule: rules.ST1, Monitor: "m", Seq: 5, Message: "first"},
		{Rule: rules.ST1, Monitor: "m", Seq: 0, Message: "checkpoint-time"},
	}
	out := Dedup(vs)
	if len(out) != 1 || out[0].Seq != 5 {
		t.Fatalf("Dedup = %v, want the seq=5 entry", out)
	}
}

func TestRenderGroupsAndOrders(t *testing.T) {
	t.Parallel()
	var b strings.Builder
	if err := Render(&b, sample()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	allocIdx := strings.Index(out, "monitor alloc")
	bufIdx := strings.Index(out, "monitor buf")
	if allocIdx < 0 || bufIdx < 0 || allocIdx > bufIdx {
		t.Fatalf("monitors not grouped/sorted:\n%s", out)
	}
	// Within buf, the seq-4 ST-5 line must precede the seq-7 ST-7a line.
	if i, j := strings.Index(out, "stuck earlier"), strings.Index(out, "overflow"); i < 0 || j < 0 || i > j {
		t.Fatalf("violations not in sequence order:\n%s", out)
	}
	if !strings.Contains(out, "[I.d internal-termination]") {
		t.Fatalf("fault classification missing:\n%s", out)
	}
	if !strings.Contains(out, "realtime") {
		t.Fatalf("phase missing:\n%s", out)
	}
}

func TestRenderEmptyBatch(t *testing.T) {
	t.Parallel()
	var b strings.Builder
	if err := Render(&b, nil); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatalf("empty batch rendered %q", b.String())
	}
}
