// Package report aggregates and renders violation reports — the
// "reports" box of Figure 1. Detectors produce raw rule violations;
// this package deduplicates, groups and formats them for operators
// (the command-line tools and examples all render through it).
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"robustmon/internal/faults"
	"robustmon/internal/recovery"
	"robustmon/internal/rules"
)

// Summary aggregates a violation batch.
type Summary struct {
	// Total is the number of violations summarised.
	Total int
	// ByRule counts violations per rule ID.
	ByRule map[rules.ID]int
	// ByFault counts violations per classified fault kind (unclassified
	// violations count under kind 0).
	ByFault map[faults.Kind]int
	// ByMonitor counts violations per monitor.
	ByMonitor map[string]int
	// ByPhase counts violations per detection phase.
	ByPhase map[string]int
}

// Summarize aggregates the batch.
func Summarize(vs []rules.Violation) Summary {
	s := Summary{
		Total:     len(vs),
		ByRule:    make(map[rules.ID]int),
		ByFault:   make(map[faults.Kind]int),
		ByMonitor: make(map[string]int),
		ByPhase:   make(map[string]int),
	}
	for _, v := range vs {
		s.ByRule[v.Rule]++
		s.ByFault[v.Fault]++
		s.ByMonitor[v.Monitor]++
		s.ByPhase[v.Phase]++
	}
	return s
}

// String renders the summary as "total=N rules{...} monitors{...}".
func (s Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "total=%d", s.Total)
	if len(s.ByRule) > 0 {
		b.WriteString(" rules{")
		b.WriteString(joinCounts(ruleKeys(s.ByRule), func(k rules.ID) string {
			return fmt.Sprintf("%s:%d", k, s.ByRule[k])
		}))
		b.WriteString("}")
	}
	if len(s.ByMonitor) > 0 {
		b.WriteString(" monitors{")
		b.WriteString(joinCounts(stringKeys(s.ByMonitor), func(k string) string {
			return fmt.Sprintf("%s:%d", k, s.ByMonitor[k])
		}))
		b.WriteString("}")
	}
	return b.String()
}

func joinCounts[K any](keys []K, format func(K) string) string {
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = format(k)
	}
	return strings.Join(parts, " ")
}

func ruleKeys(m map[rules.ID]int) []rules.ID {
	out := make([]rules.ID, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func stringKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Dedup collapses violations that share (rule, monitor, pid, cond),
// keeping the earliest of each group by sequence number. Timer rules
// re-fire at every checkpoint while the condition persists; operators
// usually want one line per underlying problem.
func Dedup(vs []rules.Violation) []rules.Violation {
	type key struct {
		rule    rules.ID
		monitor string
		pid     int64
		cond    string
	}
	best := make(map[key]rules.Violation, len(vs))
	order := make([]key, 0, len(vs))
	for _, v := range vs {
		k := key{rule: v.Rule, monitor: v.Monitor, pid: v.Pid, cond: v.Cond}
		if cur, ok := best[k]; ok {
			if v.Seq != 0 && (cur.Seq == 0 || v.Seq < cur.Seq) {
				best[k] = v
			}
			continue
		}
		best[k] = v
		order = append(order, k)
	}
	out := make([]rules.Violation, 0, len(order))
	for _, k := range order {
		out = append(out, best[k])
	}
	return out
}

// RenderRecovery writes the recovery manager's action log as a
// human-readable listing — one line per action, in the order the
// manager took them, each naming what was done and the violation that
// demanded it. Render the violations themselves with Render; this is
// the "what did recovery do about them" half of the report.
func RenderRecovery(w io.Writer, actions []recovery.Action) error {
	for _, a := range actions {
		if _, err := fmt.Fprintf(w, "  %-28s ← %s\n", a.Taken, a.Violation); err != nil {
			return err
		}
	}
	return nil
}

// Render writes a grouped, human-readable listing: one section per
// monitor (sorted), violations in sequence order within each.
func Render(w io.Writer, vs []rules.Violation) error {
	byMon := make(map[string][]rules.Violation)
	for _, v := range vs {
		byMon[v.Monitor] = append(byMon[v.Monitor], v)
	}
	mons := make([]string, 0, len(byMon))
	for m := range byMon {
		mons = append(mons, m)
	}
	sort.Strings(mons)
	for _, mon := range mons {
		group := byMon[mon]
		sort.SliceStable(group, func(i, j int) bool { return group[i].Seq < group[j].Seq })
		if _, err := fmt.Fprintf(w, "monitor %s (%d violations)\n", mon, len(group)); err != nil {
			return err
		}
		for _, v := range group {
			fault := ""
			if v.Fault != 0 {
				fault = fmt.Sprintf("  [%s %s]", v.Fault.Code(), v.Fault)
			}
			phase := v.Phase
			if phase == "" {
				phase = "-"
			}
			if _, err := fmt.Fprintf(w, "  %-6s %-9s %s%s\n", v.Rule, phase, v.Message, fault); err != nil {
				return err
			}
		}
	}
	return nil
}
