package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Config parameterises the observability HTTP endpoint (the facade
// re-exports it as robustmon.ObsConfig).
type Config struct {
	// Addr is the listen address ("127.0.0.1:9188"; ":0" picks a free
	// port — read it back from Server.Addr).
	Addr string
	// Registry is the registry /metrics exposes. May be nil (the
	// endpoint then serves an empty exposition — useful when only pprof
	// is wanted).
	Registry *Registry
	// DisablePprof leaves the /debug/pprof/ handlers unmounted. The
	// default mounts them: profiling a live detector is half the point
	// of the endpoint, and the handlers cost nothing until scraped.
	DisablePprof bool
}

// Server is a running observability endpoint: /metrics in Prometheus
// text exposition, /healthz as a liveness probe, and (unless
// disabled) the standard /debug/pprof/ suite on the same listener.
type Server struct {
	lis net.Listener
	srv *http.Server
}

// Handler returns the exposition handler for a registry: GET /metrics
// renders Registry.Snapshot() as Prometheus text. Exported separately
// so a host application can mount it on its own mux instead of
// running a dedicated Server.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, r.Snapshot())
	})
}

// StartServer binds cfg.Addr and serves the endpoint until Close. The
// pprof handlers are mounted explicitly on the server's private mux —
// importing net/http/pprof for its DefaultServeMux side effect would
// leak profiling onto whatever mux the host application serves.
func StartServer(cfg Config) (*Server, error) {
	if cfg.Addr == "" {
		return nil, fmt.Errorf("obs: no listen address")
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(cfg.Registry))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	if !cfg.DisablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	lis, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", cfg.Addr, err)
	}
	s := &Server{
		lis: lis,
		srv: &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second},
	}
	go func() {
		// Serve returns http.ErrServerClosed on Close; any other error
		// means the listener died, which Close surfaces too.
		_ = s.srv.Serve(lis)
	}()
	return s, nil
}

// Addr returns the bound listen address ("127.0.0.1:43021") — the
// way to discover the port after Addr ":0".
func (s *Server) Addr() string { return s.lis.Addr().String() }

// URL returns the endpoint's base URL.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Close stops the listener and in-flight handlers.
func (s *Server) Close() error { return s.srv.Close() }
