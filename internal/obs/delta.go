package obs

// Delta returns the change from prev to cur as a snapshot of
// differences: counters and gauges as value deltas, histograms as
// Count/Sum deltas with per-bucket count deltas. A metric absent from
// prev deltas from zero (it is new); a metric absent from cur is
// omitted (its series ended — there is no current value to anchor a
// delta to). Zero-delta entries are kept for counters and gauges (a
// flat series is information) but zero-delta histogram buckets are
// dropped, matching Snapshot's only-non-zero-buckets shape.
//
// Both snapshots' sections are sorted by name (Snapshot guarantees
// this), so the merge is a single linear walk. Callers rendering rates
// divide by the wall-clock gap between the snapshots' capture instants
// — the health timeline carries that in HealthRecord.At.
func (cur Snapshot) Delta(prev Snapshot) Snapshot {
	return Snapshot{
		Counters:   deltaMetrics(cur.Counters, prev.Counters),
		Gauges:     deltaMetrics(cur.Gauges, prev.Gauges),
		Histograms: deltaHistograms(cur.Histograms, prev.Histograms),
	}
}

// deltaMetrics merges two sorted metric slices into cur−prev.
func deltaMetrics(cur, prev []Metric) []Metric {
	if len(cur) == 0 {
		return nil
	}
	out := make([]Metric, 0, len(cur))
	j := 0
	for _, m := range cur {
		for j < len(prev) && prev[j].Name < m.Name {
			j++
		}
		d := m
		if j < len(prev) && prev[j].Name == m.Name {
			d.Value -= prev[j].Value
		}
		out = append(out, d)
	}
	return out
}

// deltaHistograms merges two sorted histogram slices into cur−prev.
func deltaHistograms(cur, prev []HistogramSnapshot) []HistogramSnapshot {
	if len(cur) == 0 {
		return nil
	}
	out := make([]HistogramSnapshot, 0, len(cur))
	j := 0
	for _, h := range cur {
		for j < len(prev) && prev[j].Name < h.Name {
			j++
		}
		if j < len(prev) && prev[j].Name == h.Name {
			out = append(out, deltaHistogram(h, prev[j]))
		} else {
			out = append(out, h)
		}
	}
	return out
}

// deltaHistogram subtracts prev's buckets from cur's; both bucket
// lists are in ascending index order.
func deltaHistogram(cur, prev HistogramSnapshot) HistogramSnapshot {
	d := HistogramSnapshot{
		Name:  cur.Name,
		Count: cur.Count - prev.Count,
		Sum:   cur.Sum - prev.Sum,
	}
	j := 0
	for _, b := range cur.Buckets {
		for j < len(prev.Buckets) && prev.Buckets[j].Index < b.Index {
			j++
		}
		n := b.Count
		if j < len(prev.Buckets) && prev.Buckets[j].Index == b.Index {
			n -= prev.Buckets[j].Count
		}
		if n != 0 {
			d.Buckets = append(d.Buckets, Bucket{Index: b.Index, Count: n})
		}
	}
	return d
}
