package obs

import (
	"reflect"
	"testing"
)

func TestSnapshotDelta(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c")
	g := reg.Gauge("g")
	h := reg.Histogram("h")
	c.Add(10)
	g.Set(5)
	h.Observe(3)
	h.Observe(100)
	prev := reg.Snapshot()

	c.Add(7)
	g.Set(2)
	h.Observe(3)
	reg.Counter("new").Add(4)
	cur := reg.Snapshot()

	d := cur.Delta(prev)
	if v, ok := d.Counter("c"); !ok || v != 7 {
		t.Fatalf("counter delta = %d, want 7", v)
	}
	if v, ok := d.Counter("new"); !ok || v != 4 {
		t.Fatalf("new counter deltas from zero: got %d, want 4", v)
	}
	if v, ok := d.Gauge("g"); !ok || v != -3 {
		t.Fatalf("gauge delta = %d, want -3 (gauges go down)", v)
	}
	hd, ok := d.Histogram("h")
	if !ok {
		t.Fatal("histogram missing from delta")
	}
	if hd.Count != 1 || hd.Sum != 3 {
		t.Fatalf("histogram delta count=%d sum=%d, want 1/3", hd.Count, hd.Sum)
	}
	// Only the bucket that changed survives: one more observation of 3
	// (bucket index 2); the bucket holding 100 deltas to zero and drops.
	if !reflect.DeepEqual(hd.Buckets, []Bucket{{Index: 2, Count: 1}}) {
		t.Fatalf("bucket deltas = %v", hd.Buckets)
	}

	// Delta of a snapshot against itself is all zeros (and keeps the
	// scalar entries — a flat series is information).
	z := cur.Delta(cur)
	if v, _ := z.Counter("c"); v != 0 {
		t.Fatalf("self-delta counter = %d", v)
	}
	if zh, _ := z.Histogram("h"); zh.Count != 0 || len(zh.Buckets) != 0 {
		t.Fatalf("self-delta histogram = %+v", zh)
	}

	// Metrics absent from cur are omitted.
	if _, ok := (Snapshot{}).Delta(prev).Counter("c"); ok {
		t.Fatal("metric absent from cur survived the delta")
	}
}
