package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Metric is one named counter or gauge value in a snapshot.
type Metric struct {
	Name  string
	Value int64
}

// Bucket is one non-zero histogram bucket in a snapshot: Index is the
// power-of-two bucket index (bucket 0 holds v ≤ 0, bucket i>0 holds v
// in [2^(i-1), 2^i)), Count the observations in it.
type Bucket struct {
	Index int
	Count int64
}

// HistogramSnapshot is one histogram captured as plain data. Buckets
// holds only the non-zero buckets in ascending index order, so a
// snapshot's size tracks the value spread, not the 65-bucket layout.
type HistogramSnapshot struct {
	Name       string
	Count, Sum int64
	Buckets    []Bucket
}

// bucketBounds returns the [lo, hi] value range of bucket i.
func bucketBounds(i int) (lo, hi float64) {
	if i <= 0 {
		return 0, 0
	}
	lo = float64(int64(1) << (i - 1))
	if i >= 64 {
		return lo, 2 * lo
	}
	return lo, float64((int64(1) << i) - 1)
}

// Quantile returns the p-quantile (p in [0,1], clamped) of the
// snapshot's observations: nearest-rank bucket selection with linear
// interpolation inside the matched bucket.
func (h HistogramSnapshot) Quantile(p float64) float64 {
	if h.Count <= 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := p * float64(h.Count)
	if rank < 1 {
		rank = 1
	}
	var cum float64
	for _, b := range h.Buckets {
		next := cum + float64(b.Count)
		if rank <= next {
			lo, hi := bucketBounds(b.Index)
			frac := (rank - cum) / float64(b.Count)
			return lo + frac*(hi-lo)
		}
		cum = next
	}
	_, hi := bucketBounds(h.Buckets[len(h.Buckets)-1].Index)
	return hi
}

// Snapshot is the whole registry captured as plain data, each section
// sorted by name — deterministic, so two snapshots of identical state
// are identical values (the property the health-record codec and its
// byte-identical round-trip tests rely on).
type Snapshot struct {
	Counters   []Metric
	Gauges     []Metric
	Histograms []HistogramSnapshot
}

// Snapshot captures every registered metric. Nil registry → zero
// snapshot. Concurrent increments make the values mutually
// approximate (each individually exact), which is what a live scrape
// is.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		for name, c := range sh.counters {
			s.Counters = append(s.Counters, Metric{Name: name, Value: c.Value()})
		}
		for name, g := range sh.gauges {
			s.Gauges = append(s.Gauges, Metric{Name: name, Value: g.Value()})
		}
		for name, h := range sh.histograms {
			s.Histograms = append(s.Histograms, h.snapshot(name))
		}
		sh.mu.Unlock()
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// Counter returns the named counter's value from the snapshot.
func (s Snapshot) Counter(name string) (int64, bool) { return findMetric(s.Counters, name) }

// Gauge returns the named gauge's value from the snapshot.
func (s Snapshot) Gauge(name string) (int64, bool) { return findMetric(s.Gauges, name) }

// Histogram returns the named histogram from the snapshot.
func (s Snapshot) Histogram(name string) (HistogramSnapshot, bool) {
	for _, h := range s.Histograms {
		if h.Name == name {
			return h, true
		}
	}
	return HistogramSnapshot{}, false
}

func findMetric(ms []Metric, name string) (int64, bool) {
	for _, m := range ms {
		if m.Name == name {
			return m.Value, true
		}
	}
	return 0, false
}

// family splits a metric name into its Prometheus family (the part
// before any {label} suffix) and the label block (including braces,
// empty when none).
func family(name string) (fam, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], name[i:]
	}
	return name, ""
}

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format (version 0.0.4): counters and gauges as single
// samples (a {label} suffix in the name renders verbatim as the
// sample's labels; the # TYPE line is emitted once per family), and
// histograms as cumulative _bucket series with power-of-two le bounds
// plus _sum and _count.
func WritePrometheus(w io.Writer, s Snapshot) error {
	writeScalars := func(ms []Metric, typ string) error {
		lastFam := ""
		for _, m := range ms {
			fam, _ := family(m.Name)
			if fam != lastFam {
				if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam, typ); err != nil {
					return err
				}
				lastFam = fam
			}
			if _, err := fmt.Fprintf(w, "%s %d\n", m.Name, m.Value); err != nil {
				return err
			}
		}
		return nil
	}
	if err := writeScalars(s.Counters, "counter"); err != nil {
		return err
	}
	if err := writeScalars(s.Gauges, "gauge"); err != nil {
		return err
	}
	for _, h := range s.Histograms {
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", h.Name); err != nil {
			return err
		}
		var cum int64
		for _, b := range h.Buckets {
			cum += b.Count
			_, hi := bucketBounds(b.Index)
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%.0f\"} %d\n", h.Name, hi, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.Name, h.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", h.Name, h.Sum, h.Name, h.Count); err != nil {
			return err
		}
	}
	return nil
}
