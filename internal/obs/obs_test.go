package obs

import (
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("x_total") != c {
		t.Fatal("second lookup returned a different handle")
	}
	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	// None of these may panic; all reads are zero.
	c.Inc()
	c.Add(3)
	g.Set(9)
	g.Add(1)
	h.Observe(123)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil handles must read as zero")
	}
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	h := NewHistogram()
	// 100 observations of 1000ns and one of 1_000_000ns: p50 must land
	// in 1000's bucket [512,1024), p99+ must reach the outlier's.
	for i := 0; i < 100; i++ {
		h.Observe(1000)
	}
	h.Observe(1_000_000)
	if got := h.Count(); got != 101 {
		t.Fatalf("count = %d, want 101", got)
	}
	if got := h.Sum(); got != 100*1000+1_000_000 {
		t.Fatalf("sum = %d", got)
	}
	p50 := h.Quantile(0.50)
	if p50 < 512 || p50 > 1024 {
		t.Fatalf("p50 = %v, want within [512,1024)", p50)
	}
	p999 := h.Quantile(0.999)
	if p999 < 524288 || p999 > 1<<20 {
		t.Fatalf("p99.9 = %v, want within the outlier's bucket [2^19,2^20)", p999)
	}
	// Monotonicity across p.
	last := 0.0
	for _, p := range []float64{0, 0.1, 0.5, 0.9, 0.99, 1} {
		q := h.Quantile(p)
		if q < last {
			t.Fatalf("quantiles not monotone: q(%v)=%v < %v", p, q, last)
		}
		last = q
	}
	// Negative and zero observations land in bucket 0.
	h2 := NewHistogram()
	h2.Observe(-5)
	h2.Observe(0)
	if got := h2.Quantile(0.5); got != 0 {
		t.Fatalf("all-zero histogram p50 = %v, want 0", got)
	}
}

func TestSnapshotSortedAndDeterministic(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"zzz_total", "aaa_total", "mmm_total"} {
		r.Counter(name).Add(3)
	}
	r.Gauge("g2").Set(2)
	r.Gauge("g1").Set(1)
	r.Histogram("lat_ns").Observe(100)
	s1 := r.Snapshot()
	s2 := r.Snapshot()
	wantC := []string{"aaa_total", "mmm_total", "zzz_total"}
	for i, m := range s1.Counters {
		if m.Name != wantC[i] {
			t.Fatalf("counters not sorted: %v", s1.Counters)
		}
	}
	if len(s1.Gauges) != 2 || s1.Gauges[0].Name != "g1" {
		t.Fatalf("gauges not sorted: %v", s1.Gauges)
	}
	if v, ok := s1.Counter("mmm_total"); !ok || v != 3 {
		t.Fatalf("Counter lookup = %d,%v", v, ok)
	}
	if v, ok := s1.Gauge("g2"); !ok || v != 2 {
		t.Fatalf("Gauge lookup = %d,%v", v, ok)
	}
	hs, ok := s1.Histogram("lat_ns")
	if !ok || hs.Count != 1 {
		t.Fatalf("Histogram lookup = %+v,%v", hs, ok)
	}
	// Quiescent registry: snapshots must be deeply equal.
	if len(s1.Counters) != len(s2.Counters) || len(s1.Histograms) != len(s2.Histograms) {
		t.Fatal("snapshots of identical state differ")
	}
	for i := range s1.Counters {
		if s1.Counters[i] != s2.Counters[i] {
			t.Fatal("snapshots of identical state differ")
		}
	}
}

func TestIncrementPathDoesNotAllocate(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	g := r.Gauge("g")
	h := r.Histogram("h_ns")
	var nilC *Counter
	var nilH *Histogram
	cases := []struct {
		name string
		f    func()
	}{
		{"counter-inc", func() { c.Inc() }},
		{"counter-add", func() { c.Add(3) }},
		{"gauge-set", func() { g.Set(42) }},
		{"histogram-observe", func() { h.Observe(1234) }},
		{"nil-counter-inc", func() { nilC.Inc() }},
		{"nil-histogram-observe", func() { nilH.Observe(1) }},
	}
	for _, tc := range cases {
		if got := testing.AllocsPerRun(1000, tc.f); got != 0 {
			t.Errorf("%s: %v allocs/op, want 0", tc.name, got)
		}
	}
}

// TestConcurrentIncrementsAndSnapshots is the -race pin: handles are
// hammered from many goroutines while snapshots and registrations run
// concurrently, and the final counts must be exact.
func TestConcurrentIncrementsAndSnapshots(t *testing.T) {
	r := NewRegistry()
	const goroutines = 8
	const perG = 10_000
	stop := make(chan struct{})
	var scraper sync.WaitGroup
	scraper.Add(1)
	go func() { // concurrent scraper
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = r.Snapshot()
			}
		}
	}()
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared_total")
			h := r.Histogram("shared_ns")
			for j := 0; j < perG; j++ {
				c.Inc()
				h.Observe(int64(j))
				r.Gauge("last").Set(int64(j))
			}
		}()
	}
	wg.Wait()
	close(stop)
	scraper.Wait()
	if got := r.Counter("shared_total").Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := r.Histogram("shared_ns").Count(); got != goroutines*perG {
		t.Fatalf("histogram count = %d, want %d", got, goroutines*perG)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("history_append_total").Add(12)
	r.Counter(`detect_resets_total`).Add(1)
	r.Gauge(`detect_interval_ns{monitor="m1"}`).Set(5_000_000)
	r.Gauge(`detect_interval_ns{monitor="m2"}`).Set(7_000_000)
	h := r.Histogram("detect_check_ns")
	h.Observe(1000)
	h.Observe(3000)
	var b strings.Builder
	if err := WritePrometheus(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE history_append_total counter\nhistory_append_total 12\n",
		"# TYPE detect_interval_ns gauge\n",
		`detect_interval_ns{monitor="m1"} 5000000`,
		`detect_interval_ns{monitor="m2"} 7000000`,
		"# TYPE detect_check_ns histogram\n",
		`detect_check_ns_bucket{le="1023"} 1`,
		`detect_check_ns_bucket{le="4095"} 2`,
		`detect_check_ns_bucket{le="+Inf"} 2`,
		"detect_check_ns_sum 4000\ndetect_check_ns_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// The labeled family's TYPE line must appear exactly once.
	if got := strings.Count(out, "# TYPE detect_interval_ns gauge"); got != 1 {
		t.Errorf("labeled family TYPE line appears %d times, want 1", got)
	}
}

func TestServerServesMetricsAndPprof(t *testing.T) {
	r := NewRegistry()
	r.Counter("history_append_total").Add(99)
	srv, err := StartServer(Config{Addr: "127.0.0.1:0", Registry: r})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "history_append_total 99") {
		t.Fatalf("/metrics = %d:\n%s", code, body)
	}
	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("/debug/pprof/cmdline = %d", code)
	}
}
