package obsrules

import (
	"testing"
	"time"

	"robustmon/internal/obs"
)

func snapAt(reg *obs.Registry) obs.Snapshot { return reg.Snapshot() }

func at(sec int) time.Time {
	return time.Date(2001, 7, 1, 0, 0, sec, 0, time.UTC)
}

// TestCeilingFiresAndClears pins the basic transition contract: one
// alert on the fire edge, one on the clear edge, nothing in between.
func TestCeilingFiresAndClears(t *testing.T) {
	reg := obs.NewRegistry()
	g := reg.Gauge("export_queue_depth")
	e, err := New(reg, Rule{Name: "queue", Metric: "export_queue_depth", Ceiling: 10})
	if err != nil {
		t.Fatal(err)
	}

	g.Set(5)
	if got := e.Eval(nil, at(0), 1, snapAt(reg)); len(got) != 0 {
		t.Fatalf("below ceiling fired: %v", got)
	}
	g.Set(11)
	got := e.Eval(nil, at(1), 2, snapAt(reg))
	if len(got) != 1 || !got[0].Firing {
		t.Fatalf("want one firing alert, got %v", got)
	}
	a := got[0]
	if a.Rule != "queue" || a.Metric != "export_queue_depth" || a.Value != 11 || a.Ceiling != 10 || a.Seq != 2 {
		t.Fatalf("alert fields wrong: %+v", a)
	}
	// Still breaching: no repeat alert (transition-only emission).
	g.Set(50)
	if got := e.Eval(nil, at(2), 3, snapAt(reg)); len(got) != 0 {
		t.Fatalf("re-fired while already firing: %v", got)
	}
	if e.Firing() != 1 {
		t.Fatalf("Firing() = %d, want 1", e.Firing())
	}
	g.Set(3)
	got = e.Eval(nil, at(3), 4, snapAt(reg))
	if len(got) != 1 || got[0].Firing {
		t.Fatalf("want one clear alert, got %v", got)
	}
	if e.Firing() != 0 {
		t.Fatalf("Firing() = %d after clear, want 0", e.Firing())
	}
	if v, _ := reg.Snapshot().Counter("obs_rule_fired_total"); v != 1 {
		t.Fatalf("obs_rule_fired_total = %d, want 1", v)
	}
	if v, _ := reg.Snapshot().Counter("obs_rule_cleared_total"); v != 1 {
		t.Fatalf("obs_rule_cleared_total = %d, want 1", v)
	}
}

// TestHysteresisSuppressesFlapping is the satellite's named property: a
// series oscillating across the ceiling faster than FireAfter/
// ClearAfter never fires at all, and a sustained breach fires exactly
// once after K consecutive breaching evaluations.
func TestHysteresisSuppressesFlapping(t *testing.T) {
	reg := obs.NewRegistry()
	g := reg.Gauge("flappy")
	e, err := New(reg, Rule{Name: "flap", Metric: "flappy", Ceiling: 10, FireAfter: 3, ClearAfter: 2})
	if err != nil {
		t.Fatal(err)
	}

	// Flap: breach, breach, clear — never 3 consecutive breaches.
	var all []Alert
	seq := int64(0)
	for i := 0; i < 10; i++ {
		for _, v := range []int64{20, 20, 1} {
			g.Set(v)
			seq++
			all = e.Eval(all, at(int(seq)), seq, snapAt(reg))
		}
	}
	if len(all) != 0 {
		t.Fatalf("flapping series fired: %v", all)
	}

	// Sustained breach: fires exactly once, on the 3rd consecutive hit.
	g.Set(20)
	for i := 0; i < 2; i++ {
		seq++
		if all = e.Eval(all, at(int(seq)), seq, snapAt(reg)); len(all) != 0 {
			t.Fatalf("fired after only %d breaches: %v", i+1, all)
		}
	}
	seq++
	all = e.Eval(all, at(int(seq)), seq, snapAt(reg))
	if len(all) != 1 || !all[0].Firing {
		t.Fatalf("want fire on 3rd consecutive breach, got %v", all)
	}

	// One clear evaluation is not enough to clear (ClearAfter=2) —
	// and it resets nothing permanently: a breach in between restarts
	// the clear streak.
	g.Set(1)
	seq++
	if got := e.Eval(nil, at(int(seq)), seq, snapAt(reg)); len(got) != 0 {
		t.Fatalf("cleared after one clear evaluation: %v", got)
	}
	g.Set(20)
	seq++
	_ = e.Eval(nil, at(int(seq)), seq, snapAt(reg))
	g.Set(1)
	seq++
	if got := e.Eval(nil, at(int(seq)), seq, snapAt(reg)); len(got) != 0 {
		t.Fatalf("clear streak survived an interleaved breach: %v", got)
	}
	seq++
	got := e.Eval(nil, at(int(seq)), seq, snapAt(reg))
	if len(got) != 1 || got[0].Firing {
		t.Fatalf("want clear after 2 consecutive clears, got %v", got)
	}
}

// TestRateRule pins the slope semantics: the rule watches the
// per-second delta, skips the anchorless first snapshot, and fires on
// slope while the absolute value keeps climbing.
func TestRateRule(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("export_dropped_events_total")
	e, err := New(reg, Rule{Name: "droprate", Metric: "export_dropped_events_total", Rate: true, Ceiling: 100})
	if err != nil {
		t.Fatal(err)
	}

	c.Add(1000) // huge absolute value: irrelevant to a rate rule
	if got := e.Eval(nil, at(0), 1, snapAt(reg)); len(got) != 0 {
		t.Fatalf("rate rule fired on first snapshot (no anchor): %v", got)
	}
	c.Add(50) // +50 over 1s = 50/s, under the 100/s ceiling
	if got := e.Eval(nil, at(1), 2, snapAt(reg)); len(got) != 0 {
		t.Fatalf("fired under the rate ceiling: %v", got)
	}
	c.Add(500) // +500 over 1s = 500/s
	got := e.Eval(nil, at(2), 3, snapAt(reg))
	if len(got) != 1 || !got[0].Firing || got[0].Value != 500 {
		t.Fatalf("want fire at 500/s, got %v", got)
	}
	// Flat series clears it.
	if got := e.Eval(nil, at(3), 4, snapAt(reg)); len(got) != 1 || got[0].Firing {
		t.Fatalf("want clear on flat series, got %v", got)
	}
}

// TestQuantileRule evaluates a histogram tail against a ceiling.
func TestQuantileRule(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.Histogram("detect_check_ns")
	e, err := New(reg, Rule{Name: "p99", Metric: "detect_check_ns", Quantile: 0.99, Ceiling: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		h.Observe(1000)
	}
	if got := e.Eval(nil, at(0), 1, snapAt(reg)); len(got) != 0 {
		t.Fatalf("fast tail fired: %v", got)
	}
	for i := 0; i < 100; i++ {
		h.Observe(1 << 24)
	}
	got := e.Eval(nil, at(1), 2, snapAt(reg))
	if len(got) != 1 || !got[0].Firing {
		t.Fatalf("want fire on slow p99, got %v", got)
	}
}

// TestMissingMetricDoesNotFire: an idle pipeline that never registered
// the watched series must evaluate as not breaching (and a firing rule
// whose series vanishes clears).
func TestMissingMetricDoesNotFire(t *testing.T) {
	reg := obs.NewRegistry()
	e, err := New(reg, Rule{Name: "ghost", Metric: "never_registered", Ceiling: 0})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Eval(nil, at(0), 1, snapAt(reg)); len(got) != 0 {
		t.Fatalf("missing metric fired: %v", got)
	}
}

func TestAddValidation(t *testing.T) {
	e, err := New(nil, Rule{Name: "a", Metric: "m", Ceiling: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Rule{
		{Metric: "m"},
		{Name: "b"},
		{Name: "a", Metric: "m"},
		{Name: "c", Metric: "m", Rate: true, Quantile: 0.5},
	} {
		if err := e.Add(bad); err == nil {
			t.Fatalf("Add(%+v) accepted", bad)
		}
	}
	if !e.Has("a") || e.Has("zzz") {
		t.Fatal("Has is wrong")
	}
	// Add keeps existing state: arm "a" to firing, add a rule, confirm
	// "a" is still firing.
	reg := obs.NewRegistry()
	reg.Gauge("m").Set(5)
	_ = e.Eval(nil, at(0), 1, reg.Snapshot())
	if e.Firing() != 1 {
		t.Fatal("rule a did not fire")
	}
	if err := e.Add(Rule{Name: "late", Metric: "other", Ceiling: 1}); err != nil {
		t.Fatal(err)
	}
	if e.Firing() != 1 {
		t.Fatal("Add disturbed existing hysteresis state")
	}
}

// TestEvalNoFireAllocs pins the quiet-path claim E10 gates: evaluating
// a rule set that stays below its ceilings allocates nothing.
func TestEvalNoFireAllocs(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("c").Add(3)
	reg.Gauge("g").Set(3)
	h := reg.Histogram("hist")
	h.Observe(100)
	e, err := New(reg,
		Rule{Name: "r1", Metric: "c", Ceiling: 1e9},
		Rule{Name: "r2", Metric: "c", Rate: true, Ceiling: 1e9},
		Rule{Name: "r3", Metric: "g", Ceiling: 1e9},
		Rule{Name: "r4", Metric: "hist", Quantile: 0.99, Ceiling: 1e9},
	)
	if err != nil {
		t.Fatal(err)
	}
	s := reg.Snapshot()
	buf := make([]Alert, 0, 8)
	sec := 0
	allocs := testing.AllocsPerRun(1000, func() {
		sec++
		buf = e.Eval(buf[:0], at(sec), int64(sec), s)
	})
	if allocs != 0 {
		t.Fatalf("no-fire Eval allocates %.1f/op, want 0", allocs)
	}
}
