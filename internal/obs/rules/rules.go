// Package obsrules closes the self-observability loop: a threshold-
// rule engine over obs registry snapshots. PR 7 gave the pipeline eyes
// (internal/obs, health records in the WAL) but they were passive —
// nothing reacted when the drop counters climbed or checkpoint p99
// blew past budget. An Engine evaluates declarative rules against
// periodic snapshots: absolute ceilings on counters, gauges and
// histogram quantiles, and delta/slope rules over counters between
// snapshots, with per-rule hysteresis (fire-after-K, clear-after-K) so
// a flapping series raises one alert per episode, not one per scrape.
//
// The engine is deliberately snapshot-driven, not handle-driven: it
// evaluates plain obs.Snapshot values, so the same rules run against a
// live registry inside a detector (detect.Config.Rules, at health-
// cadence checkpoints) and against decoded health records from a WAL
// or a fleet collector (moncollect's per-origin staleness rules).
// Evaluation allocates nothing on the no-fire path — the E10 sweep
// (monbench -obsrules) gates that — so watching the watcher stays off
// the hot path, the same discipline the detectEr-overheads frame
// demands of every other layer.
//
// A transition (fire or clear) produces an Alert. Downstream the
// detector turns firing alerts into synthetic meta-violations through
// the ordinary report path, persists every alert as a WAL record
// (export record kind 4) so montrace shows pipeline degradation
// alongside application faults, and — when Rule.ResetMonitor is set —
// drives a shard-local RequestReset: the detector healing itself.
package obsrules

import (
	"fmt"
	"time"

	"robustmon/internal/obs"
)

// Rule is one declarative threshold over a registry series.
type Rule struct {
	// Name identifies the rule in alerts, meta-violations and logs.
	// Required, unique within an engine.
	Name string
	// Metric names the series to watch: a counter, a gauge, or (with
	// Quantile) a histogram. A snapshot that lacks the metric counts as
	// not breaching — an idle pipeline that never registered a series
	// must not fire the rule watching it.
	Metric string
	// Quantile, when > 0, evaluates that quantile of a histogram named
	// Metric (e.g. 0.99 over detect_check_ns) instead of a scalar.
	Quantile float64
	// Rate, when set, evaluates the per-second change of the series
	// between consecutive snapshots instead of its absolute value — the
	// slope rule for monotonic counters (e.g. export_dropped_*_total).
	// The first snapshot an engine sees has no predecessor, so rate
	// rules skip it. Incompatible with Quantile.
	Rate bool
	// Ceiling is the threshold: the rule breaches when the observed
	// value is strictly greater.
	Ceiling float64
	// FireAfter is how many consecutive breaching evaluations arm the
	// rule before it fires (hysteresis; default 1 — fire on the first
	// breach).
	FireAfter int
	// ClearAfter is how many consecutive non-breaching evaluations a
	// firing rule needs before it clears (default 1).
	ClearAfter int
	// ResetMonitor, when set, asks the detector hosting this rule to
	// apply a shard-local online reset of the named monitor each time
	// the rule fires — self-healing for rules whose breach a reset can
	// actually relieve (a monitor whose backlog stalls checkpoints).
	// Ignored outside a detector.
	ResetMonitor string
}

// Alert is one rule transition: Firing true when the rule crossed
// into the firing state, false when it cleared. Alerts are what the
// export pipeline persists (record kind 4) and what the collector's
// fleet rules emit; Origin is empty for in-process rules and names the
// producer for fleet-level ones.
type Alert struct {
	// At is the evaluation instant (UTC on the wire).
	At time.Time
	// Seq is the global sequence horizon of the snapshot evaluated —
	// what positions the alert inside the trace, exactly like a health
	// record's horizon.
	Seq int64
	// Rule is the transitioning rule's name.
	Rule string
	// Metric is the watched series.
	Metric string
	// Value is the observed value at the transition (for a clear: the
	// value that cleared it).
	Value float64
	// Ceiling echoes the rule's threshold.
	Ceiling float64
	// Firing is true for a fire transition, false for a clear.
	Firing bool
	// Origin names the producer a fleet-level rule judged ("" for
	// in-process rules).
	Origin string
}

// String renders "FIRED rule (metric=value > ceiling)" or the CLEARED
// equivalent.
func (a Alert) String() string {
	verb, cmp := "FIRED", ">"
	if !a.Firing {
		verb, cmp = "CLEARED", "<="
	}
	origin := ""
	if a.Origin != "" {
		origin = fmt.Sprintf(" origin=%s", a.Origin)
	}
	return fmt.Sprintf("%s %s%s (%s=%g %s %g)", verb, a.Rule, origin, a.Metric, a.Value, cmp, a.Ceiling)
}

// ruleState is one rule's hysteresis state: consecutive breach and
// clear streaks, and whether the rule is currently firing.
type ruleState struct {
	breaches int
	clears   int
	firing   bool
}

// Engine evaluates a rule set against successive snapshots, carrying
// per-rule hysteresis state between them. Construct with New; Eval is
// meant to be driven by one goroutine (the detector calls it under its
// checkpoint lock; the collector from its fleet ticker).
type Engine struct {
	rules []Rule
	state []ruleState

	prev    obs.Snapshot
	prevAt  time.Time
	hasPrev bool

	// fired/cleared count transitions; firing gauges how many rules
	// are currently in the firing state. All nil-safe, so an engine
	// without a registry costs nothing extra.
	fired   *obs.Counter
	cleared *obs.Counter
	firing  *obs.Gauge
}

// New validates the rules and returns an engine. reg, when non-nil,
// instruments the engine (obs_rule_fired_total, obs_rule_cleared_total
// and the obs_rules_firing gauge) — pass the same registry the rules
// watch and the engine's own activity lands in the next snapshot like
// any other series.
func New(reg *obs.Registry, rules ...Rule) (*Engine, error) {
	e := &Engine{
		fired:   reg.Counter("obs_rule_fired_total"),
		cleared: reg.Counter("obs_rule_cleared_total"),
		firing:  reg.Gauge("obs_rules_firing"),
	}
	for _, r := range rules {
		if err := e.Add(r); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// Add appends one rule with fresh hysteresis state; existing rules'
// state is untouched, which is what lets a fleet collector grow its
// per-origin staleness rules as origins appear.
func (e *Engine) Add(r Rule) error {
	if r.Name == "" {
		return fmt.Errorf("obsrules: rule with empty name")
	}
	if r.Metric == "" {
		return fmt.Errorf("obsrules: rule %q has no metric", r.Name)
	}
	if r.Rate && r.Quantile > 0 {
		return fmt.Errorf("obsrules: rule %q sets both Rate and Quantile", r.Name)
	}
	for _, have := range e.rules {
		if have.Name == r.Name {
			return fmt.Errorf("obsrules: duplicate rule %q", r.Name)
		}
	}
	if r.FireAfter <= 0 {
		r.FireAfter = 1
	}
	if r.ClearAfter <= 0 {
		r.ClearAfter = 1
	}
	e.rules = append(e.rules, r)
	e.state = append(e.state, ruleState{})
	return nil
}

// Rules returns the engine's rule set (shared backing array — treat as
// read-only). The detector uses it to map a firing alert back to its
// rule's ResetMonitor.
func (e *Engine) Rules() []Rule { return e.rules }

// Has reports whether a rule with the given name exists.
func (e *Engine) Has(name string) bool {
	for _, r := range e.rules {
		if r.Name == name {
			return true
		}
	}
	return false
}

// Eval evaluates every rule against one snapshot, appending an Alert
// to dst for each transition (fire or clear) and returning the slice.
// at and seq stamp the alerts; the caller passes the snapshot's
// capture instant and sequence horizon. When nothing transitions —
// the overwhelmingly common case — Eval performs no allocation, so a
// detector can run it at every health checkpoint for the cost of a
// few linear scans over the snapshot's sorted sections (E10 gates
// this). The snapshot is retained until the next Eval (rate rules
// difference against it) and must not be mutated by the caller.
func (e *Engine) Eval(dst []Alert, at time.Time, seq int64, s obs.Snapshot) []Alert {
	for i := range e.rules {
		r := &e.rules[i]
		st := &e.state[i]
		value, ok := e.observe(r, at, s)
		if !ok {
			// Unevaluable this round (a rate rule's first snapshot):
			// leave the hysteresis state exactly as it was.
			continue
		}
		if value > r.Ceiling {
			st.breaches++
			st.clears = 0
			if !st.firing && st.breaches >= r.FireAfter {
				st.firing = true
				e.fired.Inc()
				e.firing.Add(1)
				dst = append(dst, e.alert(r, at, seq, value, true))
			}
		} else {
			st.clears++
			st.breaches = 0
			if st.firing && st.clears >= r.ClearAfter {
				st.firing = false
				e.cleared.Inc()
				e.firing.Add(-1)
				dst = append(dst, e.alert(r, at, seq, value, false))
			}
		}
	}
	e.prev = s
	e.prevAt = at
	e.hasPrev = true
	return dst
}

// alert builds one transition alert.
func (e *Engine) alert(r *Rule, at time.Time, seq int64, value float64, firing bool) Alert {
	return Alert{
		At:      at,
		Seq:     seq,
		Rule:    r.Name,
		Metric:  r.Metric,
		Value:   value,
		Ceiling: r.Ceiling,
		Firing:  firing,
	}
}

// observe resolves one rule's current value from the snapshot. ok is
// false only when the rule cannot be evaluated at all this round (a
// rate rule with no previous snapshot, or no measurable elapsed time);
// a missing metric observes as zero — not breaching — because an idle
// pipeline that never registered the series must not fire.
func (e *Engine) observe(r *Rule, at time.Time, s obs.Snapshot) (float64, bool) {
	if r.Quantile > 0 {
		h, ok := s.Histogram(r.Metric)
		if !ok {
			return 0, true
		}
		return h.Quantile(r.Quantile), true
	}
	cur, _ := scalar(s, r.Metric)
	if !r.Rate {
		return float64(cur), true
	}
	if !e.hasPrev {
		return 0, false
	}
	elapsed := at.Sub(e.prevAt).Seconds()
	if elapsed <= 0 {
		return 0, false
	}
	prev, _ := scalar(e.prev, r.Metric)
	return float64(cur-prev) / elapsed, true
}

// scalar looks the metric up as a counter first, then a gauge.
func scalar(s obs.Snapshot, name string) (int64, bool) {
	if v, ok := s.Counter(name); ok {
		return v, true
	}
	return s.Gauge(name)
}

// Firing reports how many rules are currently in the firing state.
func (e *Engine) Firing() int {
	n := 0
	for _, st := range e.state {
		if st.firing {
			n++
		}
	}
	return n
}
