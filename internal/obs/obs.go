// Package obs is the detector's self-observability layer: an
// allocation-free metrics subsystem (atomic counters, gauges and
// fixed-bucket histograms in a sharded registry) that every layer of
// the pipeline — history, detect, export — instruments its hot paths
// with.
//
// The design follows the tension the detectEr-overheads line of work
// frames: monitoring must quantify its own cost without adding to it.
// Three rules keep the instrumentation honest:
//
//   - Zero locks and zero allocations on the increment path. A handle
//     (Counter, Gauge, Histogram) is looked up once — registration is
//     the cold path, a sharded mutex-protected map — and every
//     Inc/Add/Set/Observe after that is a single atomic operation on a
//     cache-line-padded word. The E7 sweep (monbench -obsoverhead)
//     gates this: 0 allocs/op on the increment path, ingest overhead
//     within the perf-gate tolerance of a stripped build.
//
//   - Nil-safety is the off switch. Every handle method no-ops on a
//     nil receiver and every Registry method returns a nil handle from
//     a nil receiver, so instrumented code calls its metrics
//     unconditionally — no "if enabled" branches scattered through hot
//     loops, no build tags. A layer wired without a registry pays one
//     predictable nil-check branch per increment.
//
//   - Fixed bucket layout, no configuration. Histograms bucket by the
//     bit length of the observed value (powers of two, 65 buckets
//     covering the whole int64 range), so observing is bits.Len64 plus
//     one atomic add — no per-histogram bound slices to allocate, walk
//     or mis-configure, and every histogram in the process is
//     mergeable with every other. Quantiles interpolate within the
//     matched bucket, which is exact to a factor of two by
//     construction — the right precision for latency tails, where the
//     gate's own noise floor is wider than that.
//
// Snapshot() captures the whole registry as plain data; the snapshot
// renders to Prometheus text exposition (WritePrometheus, served by
// Server alongside net/http/pprof) and travels with the trace as
// periodic health records the export WAL persists (see
// internal/export and HealthRecord).
package obs

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// pad keeps each metric on its own cache line: hot counters are
// incremented from many goroutines, and two counters sharing a line
// would ping-pong it between cores even though they never contend
// logically. 56 bytes of padding after the 8-byte atomic word fills a
// 64-byte line.
type pad [56]byte

// Counter is a monotonically increasing atomic counter. The zero
// value is ready to use; a nil Counter discards increments — the
// handle a nil Registry hands out, so instrumented code never
// branches on "metrics enabled".
type Counter struct {
	v atomic.Int64
	_ pad
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (n may be any sign, but counters are conventionally
// monotonic — use a Gauge for values that go down).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil Counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. The zero value is ready; a
// nil Gauge discards updates.
type Gauge struct {
	v atomic.Int64
	_ pad
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds n to the current value.
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value (0 on a nil Gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the fixed bucket count: bucket i holds observations
// whose bit length is i, i.e. bucket 0 holds v ≤ 0 and bucket i>0
// holds v in [2^(i-1), 2^i). bits.Len64 of an int64 is at most 64.
const histBuckets = 65

// Histogram is a fixed-bucket power-of-two histogram. Observe is one
// bits.Len64 plus two atomic adds — no locks, no allocation, no
// configured bounds. The zero value is ready; a nil Histogram
// discards observations. NewHistogram exists for standalone use
// (e.g. a detector without a registry still tracks its checkpoint
// latency).
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// NewHistogram returns an empty standalone histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one value. Negative values clamp to bucket zero
// (they cannot occur for the durations and sizes this package
// tracks, but must not index out of range).
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	var i int
	if v > 0 {
		i = bits.Len64(uint64(v))
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Quantile returns the p-quantile (p in [0,1]) of the observations,
// interpolated linearly within the matched power-of-two bucket — a
// factor-of-two bound on the true quantile by construction. Returns 0
// when the histogram is empty or nil. Concurrent observations make
// the result a snapshot approximation, which is all a quantile of a
// live histogram can be.
func (h *Histogram) Quantile(p float64) float64 {
	if h == nil {
		return 0
	}
	return h.snapshot("").Quantile(p)
}

// snapshot captures the histogram as plain data; buckets are read
// individually (no global pause), so under concurrent writes the
// counts are each exact but mutually approximate.
func (h *Histogram) snapshot(name string) HistogramSnapshot {
	s := HistogramSnapshot{Name: name}
	var total int64
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, Bucket{Index: i, Count: n})
			total += n
		}
	}
	// Count/Sum from the buckets' own totals where possible keeps the
	// snapshot self-consistent; Sum has no per-bucket source, so it is
	// the racy-but-exact atomic.
	s.Count = total
	s.Sum = h.sum.Load()
	return s
}

// regShards is the registry's shard count — registration is the cold
// path, but a process-wide registry is also snapshotted concurrently
// with registration, and sharding keeps that from serialising either.
const regShards = 8

// Registry is a named collection of metrics. Lookup (Counter, Gauge,
// Histogram) is get-or-create and returns a stable handle the caller
// should keep: the handle is the hot path, the registry map is not.
// A nil *Registry is the disabled mode — every lookup returns a nil
// handle and every handle method no-ops.
//
// Names are conventionally snake_case with a subsystem prefix
// ("history_append_total"); an optional {label="value"} suffix
// ("detect_interval_ns{monitor=\"m1\"}") renders as Prometheus
// labels. Histogram names must be label-free (the renderer splices
// _bucket/_sum/_count suffixes).
type Registry struct {
	shards [regShards]regShard
}

type regShard struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// shardFor hashes a metric name to its shard (FNV-1a).
func (r *Registry) shardFor(name string) *regShard {
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= 16777619
	}
	return &r.shards[h%regShards]
}

// Counter returns the named counter, creating it on first use. Nil
// registry → nil handle.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	s := r.shardFor(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.counters == nil {
		s.counters = make(map[string]*Counter)
	}
	c := s.counters[name]
	if c == nil {
		c = &Counter{}
		s.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Nil
// registry → nil handle.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	s := r.shardFor(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.gauges == nil {
		s.gauges = make(map[string]*Gauge)
	}
	g := s.gauges[name]
	if g == nil {
		g = &Gauge{}
		s.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
// Nil registry → nil handle (which a caller needing the histogram
// regardless replaces with NewHistogram()).
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	s := r.shardFor(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.histograms == nil {
		s.histograms = make(map[string]*Histogram)
	}
	h := s.histograms[name]
	if h == nil {
		h = NewHistogram()
		s.histograms[name] = h
	}
	return h
}
