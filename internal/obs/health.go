package obs

import "time"

// HealthRecord is one periodic health snapshot: the registry's
// metrics pinned to an instant and to a position in the global event
// order. The detector emits them at a configured cadence through the
// export pipeline's marker seam, so a trace carries its own health
// timeline — `montrace stats` over any export directory renders how
// checkpoint latency, queue depths and drop counters evolved across
// the run, windowed through the trace-store index like everything
// else.
type HealthRecord struct {
	// At is the wall-clock capture instant (UTC on the wire).
	At time.Time
	// Seq is the global history sequence horizon at capture time: every
	// event at or below it had been recorded when the snapshot was
	// taken. It is what orders the record inside the trace and what a
	// windowed query filters on.
	Seq int64
	// Metrics is the captured registry state.
	Metrics Snapshot
}
