// Package experiment implements the paper's evaluation (§4) plus this
// repository's scaling experiment: the robustness experiment E1
// (inject every fault kind from the §2.2 taxonomy, measure detection
// coverage — RunCoverage), the performance experiment E2 (Table 1 —
// overhead ratio of the augmented monitor versus the bare monitor at
// different checking intervals — RunOverhead), the structural
// reproduction E3 (Figure 1 — the wiring of the augmented monitor
// construct — Figure1), and the E4 scaling sweep (RunScaling): N
// monitors into one sharded history database and one detector,
// hold-world versus per-monitor checkpoints × fixed versus adaptive
// scheduling × batched replay, reporting events/sec throughput and
// checkpoint p50/p99 latency per cell, with -repeats taking the
// per-cell median throughput and minimum latency. E4's JSON artefact
// (BENCH_scaling.json via cmd/monbench -json) is the perf-trajectory
// baseline the CI perf gate compares against. Both the command-line
// tools and the benchmark suite call into this package so every
// reported number comes from one code path.
package experiment

import (
	"fmt"
	"math"
	"time"
)

// Sample accumulates duration observations for one measurement cell.
type Sample struct {
	values []time.Duration
}

// Add appends one observation.
func (s *Sample) Add(d time.Duration) { s.values = append(s.values, d) }

// N returns the number of observations.
func (s *Sample) N() int { return len(s.values) }

// Mean returns the arithmetic mean (0 for an empty sample).
func (s *Sample) Mean() time.Duration {
	if len(s.values) == 0 {
		return 0
	}
	var sum time.Duration
	for _, v := range s.values {
		sum += v
	}
	return sum / time.Duration(len(s.values))
}

// Stddev returns the sample standard deviation (0 for n < 2).
func (s *Sample) Stddev() time.Duration {
	n := len(s.values)
	if n < 2 {
		return 0
	}
	mean := float64(s.Mean())
	var acc float64
	for _, v := range s.values {
		d := float64(v) - mean
		acc += d * d
	}
	return time.Duration(math.Sqrt(acc / float64(n-1)))
}

// Min returns the smallest observation (0 for an empty sample).
func (s *Sample) Min() time.Duration {
	if len(s.values) == 0 {
		return 0
	}
	min := s.values[0]
	for _, v := range s.values[1:] {
		if v < min {
			min = v
		}
	}
	return min
}

// Max returns the largest observation (0 for an empty sample).
func (s *Sample) Max() time.Duration {
	if len(s.values) == 0 {
		return 0
	}
	max := s.values[0]
	for _, v := range s.values[1:] {
		if v > max {
			max = v
		}
	}
	return max
}

// Ratio returns a/b as a float (NaN-free: 0 when b is 0).
func Ratio(a, b time.Duration) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// FormatRatio renders a ratio with three decimals, as Table 1 does.
func FormatRatio(r float64) string { return fmt.Sprintf("%.3f", r) }
