package experiment

import (
	"fmt"
	"os"
	"slices"
	"time"

	"robustmon/internal/event"
	"robustmon/internal/export"
	"robustmon/internal/export/index"
)

// E5 — trace-store consumption cost. The export pipeline made the
// monitoring artefact cheap to produce; this sweep measures how cheap
// it is to consume: a full ReadDir replay of a many-file export
// directory versus an index-backed SeekReader answering a narrow
// window. The two rows land in the perf artefact (BENCH_scaling.json)
// so a regression in either path — or in the index's pruning — fails
// the perf gate like any throughput regression.

// TraceStoreConfig parameterises the E5 sweep.
type TraceStoreConfig struct {
	// Events is the total number of synthetic events written.
	Events int
	// Monitors is how many monitors the events round-robin over.
	Monitors int
	// SegmentEvents is the events per WAL record.
	SegmentEvents int
	// MaxFileBytes is the sink's rotation threshold; keep it small so
	// the directory holds many files (the shape the index exists for).
	MaxFileBytes int64
	// Window is the queried fraction of the sequence space, centred.
	Window float64
	// Repeats re-reads each mode this many times (after one untimed
	// warm-up read); the minimum elapsed is reported. Minimum, not
	// median: a replay is a pure read, so noise — scheduler
	// interference, cold page cache — is strictly one-sided, and the
	// fastest run is the best estimate of the code's actual cost (the
	// same reasoning ScalingConfig.Repeats documents for latency
	// percentiles). Zero or one means a single timed read.
	Repeats int
}

// DefaultTraceStoreConfig is the sweep cmd/monbench runs for
// -tracestore.
func DefaultTraceStoreConfig() TraceStoreConfig {
	return TraceStoreConfig{
		Events:        200_000,
		Monitors:      8,
		SegmentEvents: 256,
		MaxFileBytes:  64 << 10,
		Window:        0.05,
		Repeats:       3,
	}
}

// TraceStoreRow is one cell of the E5 sweep: one replay mode.
type TraceStoreRow struct {
	// Mode is "full" (ReadDir over everything) or "seek" (SeekReader
	// over the window).
	Mode string
	// Events is the number of events the replay returned.
	Events int64
	// Elapsed is the fastest replay wall time across the repeats.
	Elapsed time.Duration
	// EventsPerSec is Events/Elapsed — events delivered to the caller
	// per second of query time, the gated metric for both modes.
	EventsPerSec float64
	// FilesOpened of FilesTotal were fully decoded.
	FilesOpened, FilesTotal int
}

// RunTraceStore builds one synthetic export directory (WALSink with a
// sink-maintained index) and measures both replay modes over it.
func RunTraceStore(cfg TraceStoreConfig) ([]TraceStoreRow, error) {
	if cfg.Events <= 0 || cfg.Monitors <= 0 || cfg.SegmentEvents <= 0 ||
		cfg.Window <= 0 || cfg.Window > 1 {
		return nil, fmt.Errorf("experiment: bad trace-store config %+v", cfg)
	}
	dir, err := os.MkdirTemp("", "robustmon-tracestore-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	if err := buildTraceStoreDir(dir, cfg); err != nil {
		return nil, err
	}

	repeats := cfg.Repeats
	if repeats < 1 {
		repeats = 1
	}
	fastest := func(runs []time.Duration) time.Duration {
		return slices.Min(runs)
	}

	// Full replay: every record of every file. One untimed warm-up read
	// levels the page cache between the two modes.
	if _, err := export.ReadDir(dir); err != nil {
		return nil, err
	}
	var fullRow TraceStoreRow
	fullRuns := make([]time.Duration, 0, repeats)
	for i := 0; i < repeats; i++ {
		start := time.Now()
		rep, err := export.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		fullRuns = append(fullRuns, time.Since(start))
		fullRow = TraceStoreRow{
			Mode:        "full",
			Events:      int64(len(rep.Events)),
			FilesOpened: rep.Files,
			FilesTotal:  rep.Files,
		}
	}
	fullRow.Elapsed = fastest(fullRuns)

	// Windowed replay through the index.
	win := int64(float64(cfg.Events) * cfg.Window)
	if win < 1 {
		win = 1
	}
	from := int64(cfg.Events)/2 - win/2
	if from < 1 {
		from = 1
	}
	var seekRow TraceStoreRow
	seekRuns := make([]time.Duration, 0, repeats)
	for i := -1; i < repeats; i++ {
		r, err := index.OpenDir(dir)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		rep, err := r.ReplayRange(from, from+win-1)
		if err != nil {
			return nil, err
		}
		if i < 0 {
			continue // warm-up
		}
		seekRuns = append(seekRuns, time.Since(start))
		st := r.LastStats()
		seekRow = TraceStoreRow{
			Mode:        "seek",
			Events:      int64(len(rep.Events)),
			FilesOpened: st.Opened,
			FilesTotal:  st.FilesTotal,
		}
	}
	seekRow.Elapsed = fastest(seekRuns)

	for _, row := range []*TraceStoreRow{&fullRow, &seekRow} {
		if s := row.Elapsed.Seconds(); s > 0 {
			row.EventsPerSec = float64(row.Events) / s
		}
	}
	return []TraceStoreRow{fullRow, seekRow}, nil
}

// buildTraceStoreDir writes the synthetic directory: Events events
// round-robining over Monitors in SegmentEvents-sized records, index
// maintained by the sink.
func buildTraceStoreDir(dir string, cfg TraceStoreConfig) error {
	m := index.NewMaintainer(dir)
	sink, err := export.NewWALSink(dir, export.WALConfig{
		MaxFileBytes: cfg.MaxFileBytes,
		OnSeal:       []export.SealedSink{m},
	})
	if err != nil {
		return err
	}
	at := time.Date(2001, 7, 1, 0, 0, 0, 0, time.UTC)
	seq := int64(0)
	seg := 0
	for seq < int64(cfg.Events) {
		mon := fmt.Sprintf("m%d", seg%cfg.Monitors)
		n := cfg.SegmentEvents
		if rest := int(int64(cfg.Events) - seq); n > rest {
			n = rest
		}
		events := make(event.Seq, 0, n)
		for i := 0; i < n; i++ {
			seq++
			events = append(events, event.Event{
				Seq: seq, Monitor: mon, Type: event.Enter, Pid: seq%7 + 1,
				Proc: "Op", Flag: event.Completed,
				Time: at.Add(time.Duration(seq) * time.Microsecond),
			})
		}
		if err := sink.WriteSegment(export.Segment{Monitor: mon, Events: events}); err != nil {
			return err
		}
		seg++
	}
	if err := sink.Close(); err != nil {
		return err
	}
	return m.Err()
}

// TraceStoreTable renders the E5 sweep.
func TraceStoreTable(rows []TraceStoreRow) *Table {
	t := NewTable("replay", "events", "files", "elapsed", "events/sec")
	for _, r := range rows {
		t.AddRow(r.Mode, fmt.Sprint(r.Events),
			fmt.Sprintf("%d/%d", r.FilesOpened, r.FilesTotal),
			r.Elapsed.Round(time.Microsecond).String(),
			FormatEventsPerSec(r.EventsPerSec))
	}
	return t
}
