package experiment

import (
	"strings"
	"testing"
)

func TestRunCollectorRowsAndAccounting(t *testing.T) {
	t.Parallel()
	cfg := CollectorConfig{
		Producers:           []int{1, 2},
		SegmentsPerProducer: 16,
		EventsPerSegment:    8,
		Repeats:             1,
	}
	rows, err := RunCollector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// One local baseline row plus one fleet row per producer count.
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	if rows[0].Mode != "local" || rows[0].Producers != 2 {
		t.Fatalf("baseline row = %+v, want local at the largest producer count", rows[0])
	}
	for i, r := range rows[1:] {
		if r.Mode != "fleet" || r.Producers != cfg.Producers[i] {
			t.Fatalf("fleet row %d = %+v", i, r)
		}
	}
	for i, r := range rows {
		wantRecords := int64(r.Producers) * int64(cfg.SegmentsPerProducer)
		if r.Records != wantRecords || r.Events != wantRecords*int64(cfg.EventsPerSegment) {
			t.Fatalf("row %d accounting: %+v", i, r)
		}
		if r.Elapsed <= 0 || r.EventsPerSec <= 0 || r.RecordsPerSec <= 0 {
			t.Fatalf("row %d has empty measurements: %+v", i, r)
		}
	}
	table := CollectorTable(rows).String()
	for _, col := range []string{"mode", "producers", "records/sec", "local", "fleet"} {
		if !strings.Contains(table, col) {
			t.Fatalf("table missing %q:\n%s", col, table)
		}
	}
}

func TestRunCollectorRejectsBadConfig(t *testing.T) {
	t.Parallel()
	for _, cfg := range []CollectorConfig{
		{},
		{Producers: []int{1}, SegmentsPerProducer: 0, EventsPerSegment: 1},
		{Producers: []int{0}, SegmentsPerProducer: 1, EventsPerSegment: 1},
	} {
		if _, err := RunCollector(cfg); err == nil {
			t.Fatalf("config %+v accepted, want error", cfg)
		}
	}
}
