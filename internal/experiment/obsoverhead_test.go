package experiment

import (
	"strings"
	"testing"
)

func TestRunObsOverheadRowsAndAccounting(t *testing.T) {
	cfg := ObsOverheadConfig{
		Monitors:            2,
		ProducersPerMonitor: 2,
		EventsPerProducer:   2000,
		DrainEveryEvents:    512,
		IncrementOps:        50_000,
		Repeats:             2,
	}
	rows, err := RunObsOverhead(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want stripped/instrumented/increment", len(rows))
	}
	for i, wantMode := range []string{"stripped", "instrumented", "increment"} {
		if rows[i].Mode != wantMode {
			t.Fatalf("row %d mode = %q, want %q", i, rows[i].Mode, wantMode)
		}
	}
	workloadEvents := int64(cfg.Monitors) * int64(cfg.ProducersPerMonitor) * int64(cfg.EventsPerProducer)
	for i, r := range rows[:2] {
		if r.Events != workloadEvents || r.Monitors != cfg.Monitors {
			t.Fatalf("workload row %d accounting: %+v", i, r)
		}
	}
	if inc := rows[2]; inc.Events != int64(cfg.IncrementOps) || inc.Monitors != 0 {
		t.Fatalf("increment row accounting: %+v", inc)
	}
	for i, r := range rows {
		if r.Elapsed <= 0 || r.EventsPerSec <= 0 || r.NsPerEvent <= 0 {
			t.Fatalf("row %d has empty measurements: %+v", i, r)
		}
		if r.AllocsPerEvent < 0 {
			t.Fatalf("row %d has negative alloc profile: %+v", i, r)
		}
	}
	// OverheadPct lives on the instrumented row only, and must be
	// consistent with the two throughput readings it summarises.
	if rows[0].OverheadPct != 0 || rows[2].OverheadPct != 0 {
		t.Fatalf("overhead reported off the instrumented row: %+v", rows)
	}
	want := (rows[0].EventsPerSec - rows[1].EventsPerSec) / rows[0].EventsPerSec * 100
	if got := rows[1].OverheadPct; got != want {
		t.Fatalf("OverheadPct = %v, want %v from the row throughputs", got, want)
	}
	table := ObsOverheadTable(rows).String()
	for _, col := range []string{"mode", "overhead", "allocs/event", "stripped", "instrumented", "increment"} {
		if !strings.Contains(table, col) {
			t.Fatalf("table missing %q:\n%s", col, table)
		}
	}
}

func TestRunObsOverheadRejectsBadConfig(t *testing.T) {
	t.Parallel()
	for _, cfg := range []ObsOverheadConfig{
		{},
		{Monitors: 1, ProducersPerMonitor: 0, EventsPerProducer: 1},
		{Monitors: 0, ProducersPerMonitor: 1, EventsPerProducer: 1},
		{Monitors: 1, ProducersPerMonitor: 1, EventsPerProducer: 0},
	} {
		if _, err := RunObsOverhead(cfg); err == nil {
			t.Fatalf("config %+v accepted, want error", cfg)
		}
	}
}
