package experiment

import (
	"fmt"
	"net"
	"os"
	"slices"
	"sync"
	"time"

	"robustmon/internal/event"
	"robustmon/internal/export"
	"robustmon/internal/export/net"
)

// E8 — collector throughput. Fleet mode moves the WAL to the other
// side of a socket: N producers ship sealed records over loopback TCP
// to one collector, which lands every origin in its own server-side
// WAL. This sweep measures what the wire hop costs and how the
// collector scales as producers are added, against a single-process
// baseline writing the identical records straight into a local
// WALSink. Each fleet cell counts only fully durable work — every
// producer Flushes and Closes before the clock stops, so the measured
// rate includes the resume handshake, framing, CRCs, acks and the
// collector-side fsync cadence, not just socket buffering.

// CollectorConfig parameterises the E8 sweep.
type CollectorConfig struct {
	// Producers is the swept producer counts; each fleet cell runs that
	// many concurrent NetSinks against one collector. The baseline row
	// writes the same total records into a local WALSink.
	Producers []int
	// SegmentsPerProducer and EventsPerSegment size each producer's
	// workload: every producer ships SegmentsPerProducer segment
	// records of EventsPerSegment events each.
	SegmentsPerProducer int
	EventsPerSegment    int
	// AckEvery is the collector's flush-and-ack cadence (<= 0: the
	// collector default).
	AckEvery int
	// Repeats reruns each cell; the reported row takes the median
	// elapsed.
	Repeats int
}

// DefaultCollectorConfig is the sweep cmd/monbench runs for
// -collector: one producer (the pure wire-hop cost against the local
// baseline) and four (concurrent origins sharing one collector).
func DefaultCollectorConfig() CollectorConfig {
	return CollectorConfig{
		Producers:           []int{1, 4},
		SegmentsPerProducer: 256,
		EventsPerSegment:    128,
		Repeats:             3,
	}
}

// CollectorRow is one cell of the E8 sweep.
type CollectorRow struct {
	// Mode is "local" (single-process WALSink baseline) or "fleet"
	// (NetSink producers over loopback into one collector).
	Mode string
	// Producers is the concurrent producer count (1 for local: the
	// baseline is the single-process shape fleet mode replaces).
	Producers int
	// Records and Events are the totals shipped and made durable per
	// run.
	Records, Events int64
	// Elapsed is the median wall time from first write to full
	// durability (every producer flushed and closed).
	Elapsed time.Duration
	// EventsPerSec and RecordsPerSec are the throughput pair.
	EventsPerSec  float64
	RecordsPerSec float64
}

// RunCollector executes the E8 sweep.
func RunCollector(cfg CollectorConfig) ([]CollectorRow, error) {
	if len(cfg.Producers) == 0 || cfg.SegmentsPerProducer <= 0 || cfg.EventsPerSegment <= 0 {
		return nil, fmt.Errorf("experiment: bad collector config %+v", cfg)
	}
	repeats := cfg.Repeats
	if repeats < 1 {
		repeats = 1
	}
	maxProducers := slices.Max(cfg.Producers)

	var rows []CollectorRow
	addRow := func(mode string, producers int, run func() (time.Duration, error)) error {
		row := CollectorRow{
			Mode:      mode,
			Producers: producers,
			Records:   int64(producers) * int64(cfg.SegmentsPerProducer),
			Events:    int64(producers) * int64(cfg.SegmentsPerProducer) * int64(cfg.EventsPerSegment),
		}
		elapsed := make([]time.Duration, 0, repeats)
		for i := 0; i < repeats; i++ {
			e, err := run()
			if err != nil {
				return err
			}
			elapsed = append(elapsed, e)
		}
		slices.Sort(elapsed)
		row.Elapsed = elapsed[len(elapsed)/2]
		if s := row.Elapsed.Seconds(); s > 0 {
			row.EventsPerSec = float64(row.Events) / s
			row.RecordsPerSec = float64(row.Records) / s
		}
		rows = append(rows, row)
		return nil
	}

	// Baseline: the largest cell's record volume through a local
	// WALSink, one process, no wire. Comparing the 1-producer fleet
	// cell to this row is the wire-hop cost; comparing larger cells is
	// the scaling story.
	if err := addRow("local", maxProducers, func() (time.Duration, error) {
		return collectorLocalOnce(cfg, maxProducers)
	}); err != nil {
		return nil, err
	}
	for _, producers := range cfg.Producers {
		if producers <= 0 {
			return nil, fmt.Errorf("experiment: bad producer count %d", producers)
		}
		p := producers
		if err := addRow("fleet", p, func() (time.Duration, error) {
			return collectorFleetOnce(cfg, p)
		}); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// benchSegment builds one deterministic segment for a producer.
func benchSegment(monitor string, pid int64, first int64, events int) export.Segment {
	seq := make(event.Seq, events)
	at := time.Date(2001, 7, 1, 0, 0, 0, 0, time.UTC)
	for i := range seq {
		seq[i] = event.Event{
			Seq: first + int64(i), Monitor: monitor, Type: event.Enter,
			Pid: pid, Proc: "Op", Flag: event.Completed, Time: at,
		}
	}
	return export.Segment{Monitor: monitor, Events: seq}
}

// collectorLocalOnce writes producers' worth of records into one local
// WALSink — the single-process shape fleet mode replaces.
func collectorLocalOnce(cfg CollectorConfig, producers int) (time.Duration, error) {
	dir, err := os.MkdirTemp("", "robustmon-collector-*")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)
	sink, err := export.NewWALSink(dir, export.WALConfig{})
	if err != nil {
		return 0, err
	}
	start := time.Now()
	next := int64(1)
	for p := 0; p < producers; p++ {
		mon := fmt.Sprintf("m%d", p)
		for s := 0; s < cfg.SegmentsPerProducer; s++ {
			if err := sink.WriteSegment(benchSegment(mon, int64(p+1), next, cfg.EventsPerSegment)); err != nil {
				return 0, err
			}
			next += int64(cfg.EventsPerSegment)
		}
	}
	if err := sink.Flush(); err != nil {
		return 0, err
	}
	elapsed := time.Since(start)
	return elapsed, sink.Close()
}

// collectorFleetOnce ships the same records from `producers`
// concurrent NetSinks over loopback into one collector, stopping the
// clock only when every producer has flushed and closed — i.e. when
// the collector has made everything durable and said so.
func collectorFleetOnce(cfg CollectorConfig, producers int) (time.Duration, error) {
	dir, err := os.MkdirTemp("", "robustmon-collector-*")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)
	col, err := netexport.NewCollector(netexport.CollectorConfig{Dir: dir, AckEvery: cfg.AckEvery})
	if err != nil {
		return 0, err
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	go col.Serve(lis)
	addr := lis.Addr().String()

	errs := make([]error, producers)
	var wg sync.WaitGroup
	start := time.Now()
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			sink, err := netexport.NewNetSink(netexport.NetSinkConfig{
				Addr:   addr,
				Origin: fmt.Sprintf("p%d", p),
				Policy: export.Block,
			})
			if err != nil {
				errs[p] = err
				return
			}
			next := int64(1)
			for s := 0; s < cfg.SegmentsPerProducer; s++ {
				if err := sink.WriteSegment(benchSegment("m", int64(p+1), next, cfg.EventsPerSegment)); err != nil {
					errs[p] = err
					break
				}
				next += int64(cfg.EventsPerSegment)
			}
			if err := sink.Close(); err != nil && errs[p] == nil {
				errs[p] = err
			}
		}(p)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err := col.Close(); err != nil {
		return 0, err
	}
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return elapsed, nil
}

// CollectorTable renders the E8 sweep.
func CollectorTable(rows []CollectorRow) *Table {
	t := NewTable("mode", "producers", "records", "events", "elapsed", "events/sec", "records/sec")
	for _, r := range rows {
		t.AddRow(r.Mode, fmt.Sprint(r.Producers),
			fmt.Sprint(r.Records), fmt.Sprint(r.Events),
			r.Elapsed.Round(time.Microsecond).String(),
			FormatEventsPerSec(r.EventsPerSec),
			fmt.Sprintf("%.0f", r.RecordsPerSec))
	}
	return t
}
