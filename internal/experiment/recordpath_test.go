package experiment

import (
	"strings"
	"testing"
)

func TestRunRecordPathRowsAndAccounting(t *testing.T) {
	cfg := RecordPathConfig{
		Monitors:            []int{1, 2},
		ProducersPerMonitor: 2,
		EventsPerProducer:   3000,
		Batch:               64,
		DrainEveryEvents:    512,
		Repeats:             2,
	}
	rows, err := RunRecordPath(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 2 monitor counts x 2 modes, append first within each count.
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	for i, r := range rows {
		wantMode := []string{"append", "batch"}[i%2]
		if r.Mode != wantMode {
			t.Fatalf("row %d mode = %q, want %q", i, r.Mode, wantMode)
		}
		wantEvents := int64(cfg.Monitors[i/2]) * int64(cfg.ProducersPerMonitor) * int64(cfg.EventsPerProducer)
		if r.Events != wantEvents {
			t.Fatalf("row %d events = %d, want %d", i, r.Events, wantEvents)
		}
		if r.Producers != cfg.Monitors[i/2]*cfg.ProducersPerMonitor {
			t.Fatalf("row %d producers = %d", i, r.Producers)
		}
		if r.Mode == "batch" && r.Batch != 64 {
			t.Fatalf("batch row carries batch=%d, want 64", r.Batch)
		}
		if r.Mode == "append" && r.Batch != 0 {
			t.Fatalf("append row carries batch=%d, want 0", r.Batch)
		}
		if r.Elapsed <= 0 || r.EventsPerSec <= 0 || r.NsPerEvent <= 0 {
			t.Fatalf("row %d has empty measurements: %+v", i, r)
		}
		if r.BytesPerEvent < 0 || r.AllocsPerEvent < 0 {
			t.Fatalf("row %d has negative alloc profile: %+v", i, r)
		}
	}
	table := RecordPathTable(rows).String()
	for _, col := range []string{"mode", "allocs/event", "append", "batch"} {
		if !strings.Contains(table, col) {
			t.Fatalf("table missing %q:\n%s", col, table)
		}
	}
}

func TestRunRecordPathRejectsBadConfig(t *testing.T) {
	t.Parallel()
	for _, cfg := range []RecordPathConfig{
		{},
		{Monitors: []int{1}, ProducersPerMonitor: 0, EventsPerProducer: 1},
		{Monitors: []int{0}, ProducersPerMonitor: 1, EventsPerProducer: 1},
	} {
		if _, err := RunRecordPath(cfg); err == nil {
			t.Fatalf("config %+v accepted, want error", cfg)
		}
	}
}
