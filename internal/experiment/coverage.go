package experiment

import (
	"fmt"
	"sort"

	"robustmon/internal/faults"
	"robustmon/internal/rules"
)

// CoverageResult is the outcome of injecting one fault kind (one row of
// the E1 robustness experiment).
type CoverageResult struct {
	// Kind is the injected fault.
	Kind faults.Kind
	// Fired reports whether the deviation actually happened during the
	// scenario (a scenario whose injection never fired proves nothing).
	Fired bool
	// Detected reports whether at least one violation was raised.
	Detected bool
	// Realtime reports whether the real-time phase (calling-order
	// checking) contributed a violation.
	Realtime bool
	// Rules lists the distinct rule IDs that fired, sorted.
	Rules []rules.ID
	// Err records a scenario failure (nil on success).
	Err error
}

// RunCoverage injects every given fault kind (use faults.AllKinds() for
// the full experiment) and reports per-kind detection results.
func RunCoverage(kinds []faults.Kind) []CoverageResult {
	out := make([]CoverageResult, 0, len(kinds))
	for _, k := range kinds {
		out = append(out, runOne(k))
	}
	return out
}

func runOne(k faults.Kind) CoverageResult {
	vs, fired, err := RunScenario(k)
	res := CoverageResult{Kind: k, Fired: fired, Err: err}
	if err != nil {
		return res
	}
	seen := make(map[rules.ID]bool)
	for _, v := range vs {
		res.Detected = true
		if v.Phase == "realtime" {
			res.Realtime = true
		}
		if !seen[v.Rule] {
			seen[v.Rule] = true
			res.Rules = append(res.Rules, v.Rule)
		}
	}
	sort.Slice(res.Rules, func(i, j int) bool { return res.Rules[i] < res.Rules[j] })
	return res
}

// Coverage summarises results as (detected, total) over kinds whose
// injection fired.
func Coverage(results []CoverageResult) (detected, total int) {
	for _, r := range results {
		if r.Err != nil || !r.Fired {
			continue
		}
		total++
		if r.Detected {
			detected++
		}
	}
	return detected, total
}

// CoverageTable renders the E1 results in the layout of the paper's
// robustness discussion: one row per fault kind with its taxonomy code,
// level, whether it was detected, and the rules that caught it.
func CoverageTable(results []CoverageResult) *Table {
	t := NewTable("code", "fault", "level", "injected", "detected", "phase", "rules")
	for _, r := range results {
		detected := "no"
		if r.Detected {
			detected = "YES"
		}
		injected := "no"
		if r.Fired {
			injected = "yes"
		}
		phase := "periodic"
		if r.Realtime {
			phase = "realtime+periodic"
		}
		if !r.Detected {
			phase = "-"
		}
		ruleList := ""
		for i, id := range r.Rules {
			if i > 0 {
				ruleList += " "
			}
			ruleList += string(id)
		}
		if r.Err != nil {
			detected = "ERR"
			ruleList = r.Err.Error()
		}
		t.AddRow(r.Kind.Code(), r.Kind.String(), r.Kind.Level().String(),
			injected, detected, phase, ruleList)
	}
	return t
}

// CoverageSummary renders the headline the paper reports: "The results
// show that all injected faults are detected."
func CoverageSummary(results []CoverageResult) string {
	detected, total := Coverage(results)
	return fmt.Sprintf("detected %d / %d injected fault kinds", detected, total)
}
