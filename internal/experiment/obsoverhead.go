package experiment

import (
	"fmt"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"robustmon/internal/event"
	"robustmon/internal/history"
	"robustmon/internal/obs"
)

// E7 — self-observability overhead. The obs registry instruments the
// hottest loop in the system (every DB.Append bumps a counter; every
// drain feeds a histogram and the pool counters), so its cost must be
// measured where it hurts, not asserted. This sweep runs the E6-style
// ingest workload twice — "stripped" (no registry: the handles are nil
// and every increment is one untaken branch) and "instrumented" (a
// live registry wired through history.WithObs) — and reports the
// throughput delta as OverheadPct, which the perf gate bounds. A third
// "increment" row microbenchmarks the bare instrument primitives
// (Counter.Inc + Gauge.Set + Histogram.Observe per op) with a
// MemStats allocation profile, pinning the allocation-free claim:
// its gated ceiling is zero allocs/op (plus measurement-noise floor).

// ObsOverheadConfig parameterises the E7 sweep.
type ObsOverheadConfig struct {
	// Monitors is the shard count of the ingest workload; Producers =
	// Monitors × ProducersPerMonitor goroutines contend on it.
	Monitors            int
	ProducersPerMonitor int
	// EventsPerProducer is how many events each producer records per
	// run.
	EventsPerProducer int
	// DrainEveryEvents is the inline checkpoint rhythm (see
	// RecordPathConfig.DrainEveryEvents).
	DrainEveryEvents int
	// IncrementOps is the iteration count of the increment
	// microbenchmark.
	IncrementOps int
	// Repeats reruns each measurement; elapsed takes the minimum across
	// runs — both modes face the same one-sided scheduler noise, and an
	// overhead ratio of two minima is far more stable than a ratio of
	// two medians when the delta under test is a few percent. The
	// allocation profile also takes the minimum (additive noise).
	Repeats int
}

// DefaultObsOverheadConfig is the sweep cmd/monbench runs for
// -obsoverhead: the E6 acceptance shape (8 monitors, 4 producers
// each) so the overhead is measured under genuine shard contention.
func DefaultObsOverheadConfig() ObsOverheadConfig {
	return ObsOverheadConfig{
		Monitors:            8,
		ProducersPerMonitor: 4,
		EventsPerProducer:   50_000,
		DrainEveryEvents:    4096,
		IncrementOps:        2_000_000,
		Repeats:             3,
	}
}

// ObsOverheadRow is one cell of the E7 sweep.
type ObsOverheadRow struct {
	// Mode is "stripped" (no registry), "instrumented" (live registry
	// on the same workload) or "increment" (bare primitive loop).
	Mode string
	// Monitors is the shard count (0 for the increment row).
	Monitors int
	// Events is the operations measured: recorded events for the
	// workload rows, increment iterations for the increment row.
	Events int64
	// Elapsed is the minimum wall time across repeats.
	Elapsed time.Duration
	// EventsPerSec and NsPerEvent are the throughput pair.
	EventsPerSec float64
	NsPerEvent   float64
	// AllocsPerEvent is the heap allocations per operation. On the
	// increment row this is the gated allocation-free claim; on the
	// workload rows it tracks the record path's profile as in E6.
	AllocsPerEvent float64
	// OverheadPct is the instrumented row's throughput cost relative
	// to the stripped row: (strippedEPS − instrumentedEPS) /
	// strippedEPS × 100. Zero on the other rows. Negative values
	// (instrumented measured faster — pure noise) are reported as is;
	// the gate only bounds the positive direction.
	OverheadPct float64
}

// RunObsOverhead executes the E7 sweep: stripped workload,
// instrumented workload, increment microbenchmark.
func RunObsOverhead(cfg ObsOverheadConfig) ([]ObsOverheadRow, error) {
	if cfg.Monitors <= 0 || cfg.ProducersPerMonitor <= 0 || cfg.EventsPerProducer <= 0 {
		return nil, fmt.Errorf("experiment: bad obs-overhead config %+v", cfg)
	}
	repeats := cfg.Repeats
	if repeats < 1 {
		repeats = 1
	}
	drainEvery := cfg.DrainEveryEvents
	if drainEvery <= 0 {
		drainEvery = 4096
	}
	incOps := cfg.IncrementOps
	if incOps <= 0 {
		incOps = 2_000_000
	}

	workload := func(instrumented bool) (ObsOverheadRow, error) {
		row := ObsOverheadRow{
			Mode:     "stripped",
			Monitors: cfg.Monitors,
			Events:   int64(cfg.Monitors) * int64(cfg.ProducersPerMonitor) * int64(cfg.EventsPerProducer),
		}
		if instrumented {
			row.Mode = "instrumented"
		}
		elapsed := make([]time.Duration, 0, repeats)
		allocs := make([]float64, 0, repeats)
		for i := 0; i < repeats; i++ {
			e, ape, err := obsWorkloadOnce(cfg, drainEvery, instrumented)
			if err != nil {
				return ObsOverheadRow{}, err
			}
			elapsed = append(elapsed, e)
			allocs = append(allocs, ape)
		}
		row.Elapsed = slices.Min(elapsed)
		row.AllocsPerEvent = slices.Min(allocs)
		if s := row.Elapsed.Seconds(); s > 0 {
			row.EventsPerSec = float64(row.Events) / s
			row.NsPerEvent = float64(row.Elapsed.Nanoseconds()) / float64(row.Events)
		}
		return row, nil
	}

	stripped, err := workload(false)
	if err != nil {
		return nil, err
	}
	instrumented, err := workload(true)
	if err != nil {
		return nil, err
	}
	if stripped.EventsPerSec > 0 {
		instrumented.OverheadPct = (stripped.EventsPerSec - instrumented.EventsPerSec) /
			stripped.EventsPerSec * 100
	}

	increment := ObsOverheadRow{Mode: "increment", Events: int64(incOps)}
	{
		elapsed := make([]time.Duration, 0, repeats)
		allocs := make([]float64, 0, repeats)
		for i := 0; i < repeats; i++ {
			e, ape := obsIncrementOnce(incOps)
			elapsed = append(elapsed, e)
			allocs = append(allocs, ape)
		}
		increment.Elapsed = slices.Min(elapsed)
		increment.AllocsPerEvent = slices.Min(allocs)
		if s := increment.Elapsed.Seconds(); s > 0 {
			increment.EventsPerSec = float64(increment.Events) / s
			increment.NsPerEvent = float64(increment.Elapsed.Nanoseconds()) / float64(increment.Events)
		}
	}

	return []ObsOverheadRow{stripped, instrumented, increment}, nil
}

// obsWorkloadOnce runs the ingest workload once — the E6 singleton
// append shape, which is the worst case for instrumentation (one
// counter bump per event, a histogram observation and pool accounting
// per drain) — with or without a live registry.
func obsWorkloadOnce(cfg ObsOverheadConfig, drainEvery int, instrumented bool) (time.Duration, float64, error) {
	var opts []history.Option
	if instrumented {
		opts = append(opts, history.WithObs(obs.NewRegistry()))
	}
	db := history.New(opts...)
	names := make([]string, cfg.Monitors)
	for i := range names {
		names[i] = fmt.Sprintf("m%d", i)
	}
	want := int64(cfg.Monitors) * int64(cfg.ProducersPerMonitor) * int64(cfg.EventsPerProducer)
	var drained atomic.Int64

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)

	var wg sync.WaitGroup
	start := time.Now()
	for m := 0; m < cfg.Monitors; m++ {
		for p := 0; p < cfg.ProducersPerMonitor; p++ {
			wg.Add(1)
			go func(mon string, pid int64) {
				defer wg.Done()
				tmpl := event.Event{
					Monitor: mon, Type: event.Enter, Pid: pid,
					Proc: "Op", Flag: event.Completed,
					Time: time.Date(2001, 7, 1, 0, 0, 0, 0, time.UTC),
				}
				for i := 1; i <= cfg.EventsPerProducer; i++ {
					db.Append(tmpl)
					if i%drainEvery == 0 {
						seg := db.DrainMonitor(mon)
						drained.Add(int64(len(seg)))
						db.Recycle(seg)
					}
				}
			}(names[m], int64(m*cfg.ProducersPerMonitor+p+1))
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	for _, name := range names {
		seg := db.DrainMonitor(name)
		drained.Add(int64(len(seg)))
		db.Recycle(seg)
	}
	runtime.ReadMemStats(&after)

	if got := drained.Load(); got != want {
		return 0, 0, fmt.Errorf("experiment: obs-overhead drained %d of %d events", got, want)
	}
	return elapsed, float64(after.Mallocs-before.Mallocs) / float64(want), nil
}

// obsIncrementOnce measures the bare instrument primitives: per
// iteration one Counter.Inc, one Gauge.Set and one Histogram.Observe
// on pre-resolved handles — exactly the hot-path usage pattern every
// instrumented layer follows. The MemStats delta around the loop is
// the allocation claim under test: zero.
func obsIncrementOnce(ops int) (time.Duration, float64) {
	reg := obs.NewRegistry()
	c := reg.Counter("e7_increment_total")
	g := reg.Gauge("e7_increment_depth")
	h := reg.Histogram("e7_increment_ns")

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < ops; i++ {
		c.Inc()
		g.Set(int64(i))
		h.Observe(int64(i))
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return elapsed, float64(after.Mallocs-before.Mallocs) / float64(ops)
}

// ObsOverheadTable renders the E7 sweep.
func ObsOverheadTable(rows []ObsOverheadRow) *Table {
	t := NewTable("mode", "monitors", "events", "elapsed", "events/sec", "ns/event", "allocs/event", "overhead %")
	for _, r := range rows {
		t.AddRow(r.Mode, fmt.Sprint(r.Monitors),
			fmt.Sprint(r.Events), r.Elapsed.Round(time.Microsecond).String(),
			FormatEventsPerSec(r.EventsPerSec),
			fmt.Sprintf("%.1f", r.NsPerEvent),
			fmt.Sprintf("%.3f", r.AllocsPerEvent),
			fmt.Sprintf("%.2f", r.OverheadPct))
	}
	return t
}
