package experiment

import (
	"strings"
	"testing"
	"time"
)

func TestScalingSmokeRun(t *testing.T) {
	t.Parallel()
	cfg := ScalingConfig{
		Monitors:        []int{1, 3},
		OpsPerMonitor:   200,
		ProcsPerMonitor: 2,
		Interval:        2 * time.Millisecond,
	}
	rows, err := RunScaling(cfg)
	if err != nil {
		t.Fatalf("RunScaling: %v", err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4 (2 counts × 2 modes)", len(rows))
	}
	for _, r := range rows {
		wantEvents := int64(r.Monitors) * 200
		if r.Events != wantEvents {
			t.Fatalf("row %+v: events = %d, want %d", r, r.Events, wantEvents)
		}
		if r.Checks < 1 {
			t.Fatalf("row %+v: no checkpoints ran", r)
		}
		if r.EventsPerSec <= 0 {
			t.Fatalf("row %+v: non-positive throughput", r)
		}
	}
	table := ScalingTable(rows).String()
	for _, want := range []string{"hold-world", "per-monitor", "events/sec"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
}

func TestScalingAdaptiveBatchedVariant(t *testing.T) {
	t.Parallel()
	cfg := ScalingConfig{
		Monitors:        []int{2},
		OpsPerMonitor:   200,
		ProcsPerMonitor: 2,
		Interval:        2 * time.Millisecond,
		Adaptive:        true,
		BatchSize:       16,
	}
	rows, err := RunScaling(cfg)
	if err != nil {
		t.Fatalf("RunScaling(adaptive): %v", err)
	}
	// 1 count × 2 checkpoint modes × 2 scheduler modes.
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	seen := map[string]bool{}
	for _, r := range rows {
		seen[r.CheckpointName()+"/"+r.SchedName()] = true
		if r.BatchSize != 16 {
			t.Fatalf("row %+v: batch size not threaded through", r)
		}
		if r.Events != 400 {
			t.Fatalf("row %+v: events = %d, want 400", r, r.Events)
		}
		if r.Checks >= 1 && r.CheckP99 < r.CheckP50 {
			t.Fatalf("row %+v: latency quantiles inverted", r)
		}
	}
	for _, want := range []string{
		"hold-world/fixed", "hold-world/adaptive",
		"per-monitor/fixed", "per-monitor/adaptive",
	} {
		if !seen[want] {
			t.Fatalf("sweep missing cell %s (got %v)", want, seen)
		}
	}
	table := ScalingTable(rows).String()
	for _, want := range []string{"sched", "adaptive", "check p99"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
}

func TestScalingGlobalLockVariant(t *testing.T) {
	t.Parallel()
	cfg := ScalingConfig{
		Monitors:        []int{2},
		OpsPerMonitor:   100,
		ProcsPerMonitor: 1,
		Interval:        2 * time.Millisecond,
		GlobalLock:      true,
	}
	rows, err := RunScaling(cfg)
	if err != nil {
		t.Fatalf("RunScaling(global-lock): %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
}

func TestScalingConfigValidation(t *testing.T) {
	t.Parallel()
	if _, err := RunScaling(ScalingConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := RunScaling(ScalingConfig{
		Monitors: []int{0}, OpsPerMonitor: 10, ProcsPerMonitor: 1,
	}); err == nil {
		t.Fatal("zero monitor count accepted")
	}
}

func TestFormatEventsPerSec(t *testing.T) {
	t.Parallel()
	cases := []struct {
		in   float64
		want string
	}{
		{2_500_000, "2.50M"},
		{830_000, "830k"},
		{512, "512"},
	}
	for _, c := range cases {
		if got := FormatEventsPerSec(c.in); got != c.want {
			t.Errorf("FormatEventsPerSec(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}
