package experiment

import "testing"

func TestRunTraceStoreShape(t *testing.T) {
	t.Parallel()
	cfg := TraceStoreConfig{
		Events:        4000,
		Monitors:      4,
		SegmentEvents: 64,
		MaxFileBytes:  4 << 10,
		Window:        0.1,
		Repeats:       1,
	}
	rows, err := RunTraceStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Mode != "full" || rows[1].Mode != "seek" {
		t.Fatalf("rows = %+v, want a full row then a seek row", rows)
	}
	full, seek := rows[0], rows[1]
	if full.Events != 4000 {
		t.Fatalf("full replay returned %d events, want 4000", full.Events)
	}
	if want := int64(400); seek.Events != want {
		t.Fatalf("seek replay returned %d events, want the %d-event window", seek.Events, want)
	}
	if full.FilesOpened != full.FilesTotal {
		t.Fatalf("full replay opened %d of %d files", full.FilesOpened, full.FilesTotal)
	}
	if seek.FilesOpened >= seek.FilesTotal {
		t.Fatalf("seek replay opened %d of %d files — the index pruned nothing", seek.FilesOpened, seek.FilesTotal)
	}
	for _, r := range rows {
		if r.EventsPerSec <= 0 || r.Elapsed <= 0 {
			t.Fatalf("row %q has no measurement: %+v", r.Mode, r)
		}
	}
	if _, err := RunTraceStore(TraceStoreConfig{}); err == nil {
		t.Fatal("zero config accepted")
	}
}
