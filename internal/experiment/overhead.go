package experiment

import (
	"context"
	"fmt"
	"time"

	"robustmon/internal/apps/allocator"
	"robustmon/internal/apps/boundedbuffer"
	"robustmon/internal/apps/kvstore"
	"robustmon/internal/clock"
	"robustmon/internal/detect"
	"robustmon/internal/history"
	"robustmon/internal/monitor"
	"robustmon/internal/proc"
)

// Workload names one of the three monitor-class workloads of the E2
// overhead experiment (Table 1 measures the coordinator; we sweep all
// three classes).
type Workload string

// The three workloads, one per monitor class.
const (
	WorkloadCoordinator Workload = "coordinator"
	WorkloadAllocator   Workload = "allocator"
	WorkloadManager     Workload = "manager"
)

// AllWorkloads returns the three workloads in presentation order.
func AllWorkloads() []Workload {
	return []Workload{WorkloadCoordinator, WorkloadAllocator, WorkloadManager}
}

// OverheadConfig parameterises the E2 experiment.
type OverheadConfig struct {
	// Intervals are the checking intervals T to sweep (Table 1's
	// columns; the paper uses 0.5 s … 3.0 s).
	Intervals []time.Duration
	// Workloads selects the monitor classes to measure.
	Workloads []Workload
	// Ops is the number of monitor procedure calls per measurement run.
	Ops int
	// Procs is the number of concurrent processes driving them.
	Procs int
	// Repeats is the number of measurement repetitions averaged per
	// cell.
	Repeats int
	// SuspendOverhead, when positive, simulates the paper prototype's
	// fixed per-checkpoint process-suspension cost (see
	// detect.Config.SuspendOverhead). Zero measures the native Go cost.
	SuspendOverhead time.Duration
}

// DefaultOverheadConfig mirrors the paper's sweep at full scale; the
// benchmarks use a scaled-down copy.
func DefaultOverheadConfig() OverheadConfig {
	return OverheadConfig{
		Intervals: []time.Duration{
			500 * time.Millisecond, time.Second, 2 * time.Second, 3 * time.Second,
		},
		Workloads: AllWorkloads(),
		Ops:       20000,
		Procs:     8,
		Repeats:   3,
	}
}

// OverheadRow is one cell of Table 1.
type OverheadRow struct {
	Workload Workload
	Interval time.Duration
	// Base is the mean wall time of the workload on a bare monitor
	// (no recording, no checking) — the "without extension" column.
	Base time.Duration
	// Extended is the mean wall time with full history recording and
	// the periodic detector running at Interval.
	Extended time.Duration
	// Ratio is Extended/Base — the paper's "ratio for overheads".
	Ratio float64
	// Checks is the number of checkpoints that ran during the extended
	// runs (summed over repeats).
	Checks int
	// Events is the number of events replayed (summed over repeats).
	Events int
	// Violations must be zero: these are fault-free runs.
	Violations int
}

// RunOverhead executes the E2 sweep and returns one row per
// (workload, interval) cell. The baseline is measured once per
// workload and shared across that workload's rows.
func RunOverhead(cfg OverheadConfig) ([]OverheadRow, error) {
	if cfg.Ops <= 0 || cfg.Procs <= 0 || cfg.Repeats <= 0 {
		return nil, fmt.Errorf("experiment: bad overhead config %+v", cfg)
	}
	var rows []OverheadRow
	for _, w := range cfg.Workloads {
		var base Sample
		for r := 0; r < cfg.Repeats; r++ {
			d, err := runWorkload(w, cfg.Ops, cfg.Procs, nil)
			if err != nil {
				return nil, fmt.Errorf("experiment: baseline %s: %w", w, err)
			}
			base.Add(d)
		}
		for _, ivl := range cfg.Intervals {
			var ext Sample
			checks, events, viols := 0, 0, 0
			for r := 0; r < cfg.Repeats; r++ {
				ex := &extension{interval: ivl, suspend: cfg.SuspendOverhead}
				d, err := runWorkload(w, cfg.Ops, cfg.Procs, ex)
				if err != nil {
					return nil, fmt.Errorf("experiment: extended %s @%v: %w", w, ivl, err)
				}
				ext.Add(d)
				checks += ex.stats.Checks
				events += ex.stats.Events
				viols += ex.stats.Violations
			}
			rows = append(rows, OverheadRow{
				Workload:   w,
				Interval:   ivl,
				Base:       base.Mean(),
				Extended:   ext.Mean(),
				Ratio:      Ratio(ext.Mean(), base.Mean()),
				Checks:     checks,
				Events:     events,
				Violations: viols,
			})
		}
	}
	return rows, nil
}

// extension carries the detection stack of one extended measurement.
type extension struct {
	interval time.Duration
	suspend  time.Duration
	stats    detect.Stats
}

// MeasureWorkload runs one measurement cell and returns its wall time
// and detector stats. A non-positive interval measures the bare
// baseline (no recording, no checking; the returned stats are zero).
// The benchmark suite uses it to regenerate Table 1 cells one at a
// time.
func MeasureWorkload(w Workload, ops, procs int, interval time.Duration) (time.Duration, detect.Stats, error) {
	if interval <= 0 {
		d, err := runWorkload(w, ops, procs, nil)
		return d, detect.Stats{}, err
	}
	ex := &extension{interval: interval}
	d, err := runWorkload(w, ops, procs, ex)
	return d, ex.stats, err
}

// runWorkload runs one measurement: ops monitor operations across procs
// processes on the given workload's monitor class. ex == nil measures
// the bare baseline; otherwise the full recording+checking stack runs
// at ex.interval.
func runWorkload(w Workload, ops, procs int, ex *extension) (time.Duration, error) {
	var monOpts []monitor.Option
	var db *history.DB
	if ex != nil {
		db = history.New()
		monOpts = append(monOpts, monitor.WithRecorder(db))
	}

	var body func(r *proc.Runtime) error
	var mon *monitor.Monitor
	switch w {
	case WorkloadCoordinator:
		buf, err := boundedbuffer.New(4, boundedbuffer.WithMonitorOptions(monOpts...))
		if err != nil {
			return 0, err
		}
		mon = buf.Monitor()
		body = coordinatorBody(buf, ops, procs)
	case WorkloadAllocator:
		var recOpts []monitor.Option
		if ex != nil {
			// Allocators additionally get the real-time order checker in
			// front of the database, as the paper's strategy prescribes.
			rt, err := detect.NewRealTime(db, []monitor.Spec{allocator.Spec("allocator")}, nil)
			if err != nil {
				return 0, err
			}
			recOpts = append(recOpts, monitor.WithRecorder(rt))
		}
		alloc, err := allocator.New(2, allocator.WithMonitorOptions(recOpts...))
		if err != nil {
			return 0, err
		}
		mon = alloc.Monitor()
		body = allocatorBody(alloc, ops, procs)
	case WorkloadManager:
		store, err := kvstore.New(kvstore.WithMonitorOptions(monOpts...))
		if err != nil {
			return 0, err
		}
		mon = store.Monitor()
		body = managerBody(store, ops, procs)
	default:
		return 0, fmt.Errorf("experiment: unknown workload %q", w)
	}

	var det *detect.Detector
	var cancel context.CancelFunc
	detDone := make(chan struct{})
	if ex != nil {
		det = detect.New(db, detect.Config{
			Interval:        ex.interval,
			Tmax:            time.Hour,
			Tio:             time.Hour,
			Tlimit:          time.Hour,
			Clock:           clock.Real{},
			HoldWorld:       true,
			SuspendOverhead: ex.suspend,
		}, mon)
		var ctx context.Context
		ctx, cancel = context.WithCancel(context.Background())
		go func() {
			defer close(detDone)
			det.Run(ctx)
		}()
	} else {
		close(detDone)
	}

	r := proc.NewRuntime()
	start := time.Now()
	err := body(r)
	elapsed := time.Since(start)
	if cancel != nil {
		cancel()
		<-detDone
		ex.stats = det.Stats()
		if ex.stats.Violations > 0 {
			vs := det.Violations()
			return 0, fmt.Errorf("experiment: fault-free run reported %d violations (first: %v)",
				ex.stats.Violations, vs[0])
		}
	}
	return elapsed, err
}

func coordinatorBody(buf *boundedbuffer.Buffer, ops, procs int) func(*proc.Runtime) error {
	return func(r *proc.Runtime) error {
		pairs := ops / 2
		producers := procs / 2
		if producers == 0 {
			producers = 1
		}
		perProducer := pairs / producers
		for i := 0; i < producers; i++ {
			r.Spawn("producer", func(p *proc.P) {
				for j := 0; j < perProducer; j++ {
					if err := buf.Send(p, j); err != nil {
						return
					}
				}
			})
			r.Spawn("consumer", func(p *proc.P) {
				for j := 0; j < perProducer; j++ {
					if _, err := buf.Receive(p); err != nil {
						return
					}
				}
			})
		}
		r.Join()
		return nil
	}
}

func allocatorBody(alloc *allocator.Allocator, ops, procs int) func(*proc.Runtime) error {
	return func(r *proc.Runtime) error {
		cycles := ops / 2 / procs
		if cycles == 0 {
			cycles = 1
		}
		for i := 0; i < procs; i++ {
			r.Spawn("user", func(p *proc.P) {
				for j := 0; j < cycles; j++ {
					if err := alloc.Acquire(p); err != nil {
						return
					}
					if err := alloc.Release(p); err != nil {
						return
					}
				}
			})
		}
		r.Join()
		return nil
	}
}

func managerBody(store *kvstore.Store, ops, procs int) func(*proc.Runtime) error {
	keys := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	return func(r *proc.Runtime) error {
		per := ops / 2 / procs
		if per == 0 {
			per = 1
		}
		for i := 0; i < procs; i++ {
			i := i
			r.Spawn("user", func(p *proc.P) {
				for j := 0; j < per; j++ {
					key := keys[(i+j)%len(keys)]
					if err := store.Put(p, key, "v"); err != nil {
						return
					}
					if _, _, err := store.Get(p, key); err != nil {
						return
					}
				}
			})
		}
		r.Join()
		return nil
	}
}

// Table1 renders the rows in the paper's Table 1 layout: one row per
// checking interval, one ratio column per workload.
func Table1(rows []OverheadRow) *Table {
	byIvl := make(map[time.Duration]map[Workload]OverheadRow)
	var ivls []time.Duration
	var wls []Workload
	seenW := make(map[Workload]bool)
	for _, r := range rows {
		if byIvl[r.Interval] == nil {
			byIvl[r.Interval] = make(map[Workload]OverheadRow)
			ivls = append(ivls, r.Interval)
		}
		byIvl[r.Interval][r.Workload] = r
		if !seenW[r.Workload] {
			seenW[r.Workload] = true
			wls = append(wls, r.Workload)
		}
	}
	header := []string{"checking interval"}
	for _, w := range wls {
		header = append(header,
			string(w)+" base", string(w)+" ext", string(w)+" ratio")
	}
	t := NewTable(header...)
	for _, ivl := range ivls {
		row := []string{ivl.String()}
		for _, w := range wls {
			c := byIvl[ivl][w]
			row = append(row, c.Base.String(), c.Extended.String(), FormatRatio(c.Ratio))
		}
		t.AddRow(row...)
	}
	return t
}
