package experiment

import (
	"fmt"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"robustmon/internal/event"
	"robustmon/internal/history"
)

// E6 — raw-speed record path. E4 measures the whole monitor+detector
// pipeline; this sweep isolates the ingest hot loop the batching layer
// (history.AppendBatch / BatchWriter) exists for. Concurrent producers
// hammer one database while a background drainer empties it at
// checkpoint rhythm — the steady-state shape of a live deployment —
// and each cell reports throughput (events/sec, ns/event) alongside
// the allocation profile (bytes and heap allocations per event,
// testing.AllocsPerRun-style from runtime.MemStats deltas). The
// "append" rows publish every event through the singleton DB.Append;
// the "batch" rows stage through per-producer BatchWriters. Both land
// in BENCH_scaling.json, so the perf gate catches a throughput
// regression *or* an allocation creeping back into the hot loop.

// RecordPathConfig parameterises the E6 sweep.
type RecordPathConfig struct {
	// Monitors is the swept monitor counts; each cell runs both modes.
	Monitors []int
	// ProducersPerMonitor is the number of concurrent goroutines
	// recording into each monitor's shard (>1 exercises intra-shard
	// lock contention, not just the cross-shard sequence atomic).
	ProducersPerMonitor int
	// EventsPerProducer is how many events each producer records.
	EventsPerProducer int
	// Batch is the BatchWriter staging capacity for the batch rows
	// (<= 0 means history.DefaultBatchSize).
	Batch int
	// DrainEveryEvents makes each producer drain (and recycle) its
	// monitor's shard after recording this many events — the checkpoint
	// rhythm, expressed in events rather than time so the sweep is
	// deterministic and does not depend on a background goroutine
	// winning scheduler slices on a small machine.
	DrainEveryEvents int
	// Repeats reruns each cell; the reported row takes the median
	// elapsed (throughput noise is two-sided) and the minimum
	// bytes/allocs per event (allocation noise — GC assists, scheduler
	// bookkeeping — is strictly additive, so the smallest observation
	// is the best estimate of the code's own cost).
	Repeats int
}

// DefaultRecordPathConfig is the sweep cmd/monbench runs for
// -recordpath: 1 monitor (pure fast-path cost) and 8 monitors (the
// acceptance shape: contention across shards and on the global
// sequence atomic). Four producers per monitor keep every shard lock
// genuinely contended — the regime the batching layer exists for;
// with fewer producers the singleton path's lock is mostly uncontended
// and the comparison understates what batching buys a loaded system.
func DefaultRecordPathConfig() RecordPathConfig {
	return RecordPathConfig{
		Monitors:            []int{1, 8},
		ProducersPerMonitor: 4,
		EventsPerProducer:   50_000,
		Batch:               history.DefaultBatchSize,
		DrainEveryEvents:    4096,
		Repeats:             3,
	}
}

// RecordPathRow is one cell of the E6 sweep: one publication mode at
// one monitor count.
type RecordPathRow struct {
	// Mode is "append" (singleton DB.Append per event) or "batch"
	// (BatchWriter staging, AppendBatch publication).
	Mode string
	// Monitors and Producers describe the cell's concurrency: Producers
	// goroutines spread over Monitors shards.
	Monitors, Producers int
	// Batch is the staging capacity (0 for the append mode).
	Batch int
	// Events is the total number of events recorded per run.
	Events int64
	// Elapsed is the median wall time from first to last record call.
	Elapsed time.Duration
	// EventsPerSec and NsPerEvent are Events/Elapsed and its inverse —
	// the headline throughput pair.
	EventsPerSec float64
	NsPerEvent   float64
	// BytesPerEvent and AllocsPerEvent are the heap profile of the
	// whole run (producers + drainer) divided by Events: the gated
	// alloc ceiling.
	BytesPerEvent  float64
	AllocsPerEvent float64
}

// RunRecordPath executes the E6 sweep.
func RunRecordPath(cfg RecordPathConfig) ([]RecordPathRow, error) {
	if len(cfg.Monitors) == 0 || cfg.ProducersPerMonitor <= 0 || cfg.EventsPerProducer <= 0 {
		return nil, fmt.Errorf("experiment: bad record-path config %+v", cfg)
	}
	batch := cfg.Batch
	if batch <= 0 {
		batch = history.DefaultBatchSize
	}
	repeats := cfg.Repeats
	if repeats < 1 {
		repeats = 1
	}
	drainEvery := cfg.DrainEveryEvents
	if drainEvery <= 0 {
		drainEvery = 4096
	}

	var rows []RecordPathRow
	for _, monitors := range cfg.Monitors {
		if monitors <= 0 {
			return nil, fmt.Errorf("experiment: bad monitor count %d", monitors)
		}
		for _, mode := range []string{"append", "batch"} {
			row := RecordPathRow{
				Mode:      mode,
				Monitors:  monitors,
				Producers: monitors * cfg.ProducersPerMonitor,
				Events:    int64(monitors) * int64(cfg.ProducersPerMonitor) * int64(cfg.EventsPerProducer),
			}
			if mode == "batch" {
				row.Batch = batch
			}
			elapsed := make([]time.Duration, 0, repeats)
			bytesPer := make([]float64, 0, repeats)
			allocsPer := make([]float64, 0, repeats)
			for i := 0; i < repeats; i++ {
				e, bpe, ape, err := recordPathOnce(mode, monitors, batch, drainEvery, cfg)
				if err != nil {
					return nil, err
				}
				elapsed = append(elapsed, e)
				bytesPer = append(bytesPer, bpe)
				allocsPer = append(allocsPer, ape)
			}
			slices.Sort(elapsed)
			row.Elapsed = elapsed[len(elapsed)/2]
			row.BytesPerEvent = slices.Min(bytesPer)
			row.AllocsPerEvent = slices.Min(allocsPer)
			if s := row.Elapsed.Seconds(); s > 0 {
				row.EventsPerSec = float64(row.Events) / s
				row.NsPerEvent = float64(row.Elapsed.Nanoseconds()) / float64(row.Events)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// recordPathOnce runs one cell once: producers record, draining (and
// recycling) their own monitor's shard every drainEvery events — the
// checkpoint rhythm, inline so it cannot be starved on a small
// machine — and the run's MemStats delta (taken around everything,
// final sweep included) yields the allocation profile. Returns the
// producers' wall time and the bytes/allocs per event.
func recordPathOnce(mode string, monitors, batch, drainEvery int, cfg RecordPathConfig) (time.Duration, float64, float64, error) {
	db := history.New()
	names := make([]string, monitors)
	for i := range names {
		names[i] = fmt.Sprintf("m%d", i)
	}
	want := int64(monitors) * int64(cfg.ProducersPerMonitor) * int64(cfg.EventsPerProducer)
	var drained atomic.Int64

	// Settle the heap so the delta below is the run's own profile.
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)

	var wg sync.WaitGroup
	start := time.Now()
	for m := 0; m < monitors; m++ {
		for p := 0; p < cfg.ProducersPerMonitor; p++ {
			wg.Add(1)
			go func(mon string, pid int64) {
				defer wg.Done()
				tmpl := event.Event{
					Monitor: mon, Type: event.Enter, Pid: pid,
					Proc: "Op", Flag: event.Completed,
					Time: time.Date(2001, 7, 1, 0, 0, 0, 0, time.UTC),
				}
				// The producer is its own checkpoint loop: every
				// drainEvery records it sweeps its shard and recycles the
				// drained copy (the harness is the only consumer — no
				// tees — so the copy goes straight back to the segment
				// pool, the steady-state shape of a recycling consumer).
				drain := func() {
					seg := db.DrainMonitor(mon)
					drained.Add(int64(len(seg)))
					db.Recycle(seg)
				}
				if mode == "batch" {
					w := db.NewBatchWriter(mon, batch)
					for i := 1; i <= cfg.EventsPerProducer; i++ {
						w.Append(tmpl)
						if i%drainEvery == 0 {
							drain()
						}
					}
					w.Close()
				} else {
					for i := 1; i <= cfg.EventsPerProducer; i++ {
						db.Append(tmpl)
						if i%drainEvery == 0 {
							drain()
						}
					}
				}
			}(names[m], int64(m*cfg.ProducersPerMonitor+p+1))
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	for _, name := range names {
		seg := db.DrainMonitor(name)
		drained.Add(int64(len(seg)))
		db.Recycle(seg)
	}
	runtime.ReadMemStats(&after)

	if got := drained.Load(); got != want {
		return 0, 0, 0, fmt.Errorf("experiment: record-path %s/%d drained %d of %d events", mode, monitors, got, want)
	}
	bytesPer := float64(after.TotalAlloc-before.TotalAlloc) / float64(want)
	allocsPer := float64(after.Mallocs-before.Mallocs) / float64(want)
	return elapsed, bytesPer, allocsPer, nil
}

// RecordPathTable renders the E6 sweep.
func RecordPathTable(rows []RecordPathRow) *Table {
	t := NewTable("mode", "monitors", "batch", "events", "elapsed", "events/sec", "ns/event", "B/event", "allocs/event")
	for _, r := range rows {
		t.AddRow(r.Mode, fmt.Sprint(r.Monitors), fmt.Sprint(r.Batch),
			fmt.Sprint(r.Events), r.Elapsed.Round(time.Microsecond).String(),
			FormatEventsPerSec(r.EventsPerSec),
			fmt.Sprintf("%.1f", r.NsPerEvent),
			fmt.Sprintf("%.1f", r.BytesPerEvent),
			fmt.Sprintf("%.3f", r.AllocsPerEvent))
	}
	return t
}
