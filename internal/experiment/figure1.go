package experiment

import (
	"fmt"
	"strings"
	"time"

	"robustmon/internal/clock"
	"robustmon/internal/detect"
	"robustmon/internal/history"
	"robustmon/internal/monitor"
	"robustmon/internal/proc"
)

// Figure 1 of the paper is the structure of the augmented monitor
// construct: four functional units — the monitor (with its shared
// variables and condition queues), the data-gathering routine invoked
// by the three primitives, the history-information database, and the
// fault-detection routine — connected as
//
//	primitives → data gathering → database → fault detection → reports
//
// Architecture reproduces that wiring as data so documentation, the
// -arch tool output, and the structural test all derive from one
// source.

// Component is one functional unit of Figure 1.
type Component struct {
	Name string
	Role string
}

// Edge is one arrow of Figure 1.
type Edge struct {
	From, To string
	Carries  string
}

// Architecture lists Figure 1's units and arrows.
type Architecture struct {
	Components []Component
	Edges      []Edge
}

// Figure1 returns the paper's architecture.
func Figure1() Architecture {
	return Architecture{
		Components: []Component{
			{Name: "monitor", Role: "monitor procedures over shared variables and condition queues (Enter / Wait / Signal-Exit)"},
			{Name: "data-gathering", Role: "real-time routine invoked by the three primitives; records scheduling events"},
			{Name: "database", Role: "history information: event sequence segments and checkpoint states"},
			{Name: "fault-detection", Role: "periodic checking routine running Algorithms 1-3 over the segment"},
			{Name: "reports", Role: "rule violations classified against the fault taxonomy"},
		},
		Edges: []Edge{
			{From: "monitor", To: "data-gathering", Carries: "Enter(Pid,Pname,flag) / Wait(Pid,Pname,Cond) / Signal-Exit(Pid,Pname,Cond,flag)"},
			{From: "data-gathering", To: "database", Carries: "scheduling events with sequence numbers"},
			{From: "monitor", To: "fault-detection", Carries: "frozen scheduling-state snapshots ⟨EQ, CQ[], R#⟩"},
			{From: "database", To: "fault-detection", Carries: "the event segment since the last checkpoint"},
			{From: "fault-detection", To: "reports", Carries: "rule violations (ST-1..ST-8, timers)"},
		},
	}
}

// String renders the architecture as an ASCII block diagram.
func (a Architecture) String() string {
	var b strings.Builder
	b.WriteString("Figure 1 — structure of the augmented monitor construct\n\n")
	b.WriteString("  processes ──Enter/Wait/Signal-Exit──▶ ┌──────────────┐\n")
	b.WriteString("                                        │   monitor    │  shared variables,\n")
	b.WriteString("                                        │  procedures  │  condition queues\n")
	b.WriteString("                                        └──────┬───────┘\n")
	b.WriteString("                    events (real time)         │        frozen snapshots\n")
	b.WriteString("                   ┌───────────────────────────┤────────────────┐\n")
	b.WriteString("                   ▼                           ▼                │\n")
	b.WriteString("          ┌────────────────┐          ┌────────────────┐        │\n")
	b.WriteString("          │ data gathering │─events──▶│    database    │        │\n")
	b.WriteString("          │    routine     │          │ (event/state   │        │\n")
	b.WriteString("          └────────────────┘          │   history)     │        │\n")
	b.WriteString("                                      └───────┬────────┘        │\n")
	b.WriteString("                                              │ segment         │\n")
	b.WriteString("                                              ▼                 ▼\n")
	b.WriteString("                                      ┌─────────────────────────────┐\n")
	b.WriteString("                                      │   fault detection routine   │\n")
	b.WriteString("                                      │  (Algorithms 1-3, periodic) │\n")
	b.WriteString("                                      └──────────────┬──────────────┘\n")
	b.WriteString("                                                     │ violations\n")
	b.WriteString("                                                     ▼\n")
	b.WriteString("                                                  reports\n\n")
	for _, e := range a.Edges {
		fmt.Fprintf(&b, "  %s → %s: %s\n", e.From, e.To, e.Carries)
	}
	return b.String()
}

// VerifyFigure1 exercises a live system and confirms every Figure 1
// edge actually carries data: the primitives feed the data-gathering
// routine, events land in the database, the checker drains segments and
// snapshots the monitor, and violations reach the report sink. It
// returns a nil error when the wiring matches the figure.
func VerifyFigure1() error {
	db := history.New(history.WithFullTrace())
	clk := clock.NewVirtual(scenEpoch)
	spec := monitor.Spec{
		Name: "fig1", Kind: monitor.OperationManager,
		Conditions: []string{"ok"}, Procedures: []string{"Op"},
	}
	m, err := monitor.New(spec, monitor.WithRecorder(db), monitor.WithClock(clk))
	if err != nil {
		return err
	}
	det := detect.New(db, detect.Config{
		Tmax: scenTmax, Clock: clk, HoldWorld: true,
	}, m)

	rt := proc.NewRuntime()
	rt.Spawn("p", func(p *proc.P) {
		if err := m.Enter(p, "Op"); err != nil {
			return
		}
		_ = m.Exit(p, "Op")
	})
	rt.Join()

	// Edge: monitor → data gathering → database.
	if db.Total() != 2 {
		return fmt.Errorf("figure1: primitives recorded %d events, want 2", db.Total())
	}
	// Edge: database → fault detection (segment drained at checkpoint).
	if vs := det.CheckNow(); len(vs) != 0 {
		return fmt.Errorf("figure1: clean run produced violations: %v", vs)
	}
	if st := det.Stats(); st.Events != 2 || st.Checks != 1 {
		return fmt.Errorf("figure1: checker consumed %d events in %d checks, want 2 in 1", st.Events, st.Checks)
	}
	// Edge: fault detection → reports (inject a termination fault).
	rt2 := proc.NewRuntime()
	rt2.Spawn("dier", func(p *proc.P) {
		if err := m.Enter(p, "Op"); err != nil {
			return
		}
	})
	rt2.Join()
	clk.Advance(time.Minute)
	if vs := det.CheckNow(); len(vs) == 0 {
		return fmt.Errorf("figure1: injected fault produced no report")
	}
	return nil
}
