package experiment

import (
	"fmt"
	"time"

	"robustmon/internal/apps/allocator"
	"robustmon/internal/apps/boundedbuffer"
	"robustmon/internal/clock"
	"robustmon/internal/detect"
	"robustmon/internal/faults"
	"robustmon/internal/history"
	"robustmon/internal/monitor"
	"robustmon/internal/proc"
	"robustmon/internal/rules"
)

// The timer parameters every scenario runs with. The virtual clock is
// advanced past all of them before the final checkpoint, so
// timer-detected kinds (starvation, nontermination, unreleased
// resources) fire deterministically.
const (
	scenTmax   = 10 * time.Second
	scenTio    = 10 * time.Second
	scenTlimit = 10 * time.Second
	scenJump   = time.Minute
)

var scenEpoch = time.Date(2001, 7, 1, 0, 0, 0, 0, time.UTC)

// harness bundles the moving parts of one injection scenario.
type harness struct {
	db  *history.DB
	clk *clock.Virtual
	rt  *proc.Runtime
	det *detect.Detector
	rte *detect.RealTime
}

func newHarness() *harness {
	return &harness{
		db:  history.New(history.WithFullTrace()),
		clk: clock.NewVirtual(scenEpoch),
		rt:  proc.NewRuntime(),
	}
}

// attach builds the detector over the given monitors.
func (h *harness) attach(mons ...*monitor.Monitor) {
	h.det = detect.New(h.db, detect.Config{
		Tmax: scenTmax, Tio: scenTio, Tlimit: scenTlimit,
		Clock: h.clk, HoldWorld: true,
	}, mons...)
}

// finish advances virtual time past every timer, runs a final
// checkpoint, aborts stragglers and joins the runtime. It returns all
// violations from both phases.
func (h *harness) finish() []rules.Violation {
	h.det.CheckNow()
	h.clk.Advance(scenJump)
	h.det.CheckNow()
	h.rt.AbortAll()
	h.rt.Join()
	out := h.det.Violations()
	if h.rte != nil {
		out = append(out, h.rte.Violations()...)
	}
	return out
}

// waitUntil polls pred with a real-time budget; scenarios use it to
// sequence processes deterministically.
func waitUntil(what string, pred func() bool) error {
	deadline := time.Now().Add(10 * time.Second)
	for !pred() {
		if time.Now().After(deadline) {
			return fmt.Errorf("experiment: timeout waiting for %s", what)
		}
		time.Sleep(50 * time.Microsecond)
	}
	return nil
}

func managerSpec() monitor.Spec {
	return monitor.Spec{
		Name: "m", Kind: monitor.OperationManager,
		Conditions: []string{"ok"},
		Procedures: []string{"Op"},
	}
}

// newManager builds a plain operation-manager monitor with the
// injector's hooks installed.
func (h *harness) newManager(inj *faults.Injector) (*monitor.Monitor, error) {
	return monitor.New(managerSpec(),
		monitor.WithRecorder(h.db),
		monitor.WithClock(h.clk),
		monitor.WithHooks(inj.Hooks()),
	)
}

// enterHold spawns a process that enters and holds the monitor until
// the returned release function is called.
func (h *harness) enterHold(m *monitor.Monitor) (release func(), err error) {
	ch := make(chan struct{})
	h.rt.Spawn("holder", func(p *proc.P) {
		if err := m.Enter(p, "Op"); err != nil {
			return
		}
		<-ch
		_ = m.Exit(p, "Op")
	})
	if err := waitUntil("holder inside", func() bool { return m.InsideCount() == 1 }); err != nil {
		return nil, err
	}
	return func() { close(ch) }, nil
}

// RunScenario injects one fault kind into its matching workload and
// returns every violation the two detection phases reported, plus
// whether the injected deviation actually fired.
func RunScenario(kind faults.Kind) (vs []rules.Violation, fired bool, err error) {
	inj := faults.NewInjector(kind)
	h := newHarness()
	switch kind {
	case faults.EnterMutexViolation:
		err = scenarioEnterMutex(h, inj)
	case faults.EnterLostProcess:
		err = scenarioEnterLost(h, inj)
	case faults.EnterNoResponse:
		err = scenarioEnterNoResponse(h, inj)
	case faults.EnterNotObserved:
		err = scenarioBareEntry(h, inj)
	case faults.WaitNoBlock:
		err = scenarioWaitNoBlock(h, inj)
	case faults.WaitLostProcess:
		err = scenarioWaitLost(h, inj)
	case faults.WaitNoHandoff:
		err = scenarioWaitNoHandoff(h, inj)
	case faults.WaitEntryStarved:
		err = scenarioWaitStarved(h, inj)
	case faults.WaitMutexViolation:
		err = scenarioWaitMutex(h, inj)
	case faults.WaitMonitorNotReleased:
		err = scenarioWaitKeepLock(h, inj)
	case faults.SignalNoResume:
		err = scenarioSignalNoResume(h, inj)
	case faults.SignalMonitorNotReleased:
		err = scenarioSignalKeepLock(h, inj)
	case faults.SignalMutexViolation:
		err = scenarioSignalDoubleWake(h, inj)
	case faults.InternalTermination:
		err = scenarioInternalTermination(h, inj)
	case faults.SendSpuriousDelay, faults.ReceiveSpuriousDelay,
		faults.ReceiveOvertake, faults.SendOverflow:
		err = scenarioBufferBug(h, inj)
	case faults.ReleaseWithoutAcquire, faults.ResourceNeverReleased,
		faults.SelfDeadlock:
		err = scenarioUserBug(h, inj)
	default:
		return nil, false, fmt.Errorf("experiment: no scenario for fault kind %v", kind)
	}
	if err != nil {
		return nil, false, err
	}
	return h.finish(), injFired(inj, kind), nil
}

// injFired reports whether the deviation happened. Two kinds are
// driven by the workload itself and fire by construction.
func injFired(inj *faults.Injector, kind faults.Kind) bool {
	if kind == faults.EnterNotObserved || kind == faults.InternalTermination {
		return true
	}
	return inj.Fired() > 0
}

func scenarioEnterMutex(h *harness, inj *faults.Injector) error {
	m, err := h.newManager(inj)
	if err != nil {
		return err
	}
	h.attach(m)
	release, err := h.enterHold(m)
	if err != nil {
		return err
	}
	inj.Arm()
	h.rt.Spawn("intruder", func(p *proc.P) {
		if err := m.Enter(p, "Op"); err != nil {
			return
		}
		_ = m.Exit(p, "Op")
	})
	if err := waitUntil("intruder admitted", func() bool { return inj.Fired() > 0 }); err != nil {
		return err
	}
	if err := waitUntil("intruder gone", func() bool { return m.InsideCount() == 1 }); err != nil {
		return err
	}
	release()
	return nil
}

func scenarioEnterLost(h *harness, inj *faults.Injector) error {
	m, err := h.newManager(inj)
	if err != nil {
		return err
	}
	h.attach(m)
	release, err := h.enterHold(m)
	if err != nil {
		return err
	}
	inj.Arm()
	victim := h.rt.Spawn("victim", func(p *proc.P) { _ = m.Enter(p, "Op") })
	if err := waitUntil("victim lost", func() bool { return victim.Status() == proc.Parked }); err != nil {
		return err
	}
	release()
	return waitUntil("monitor free", func() bool { return m.InsideCount() == 0 })
}

func scenarioEnterNoResponse(h *harness, inj *faults.Injector) error {
	m, err := h.newManager(inj)
	if err != nil {
		return err
	}
	h.attach(m)
	inj.Arm()
	victim := h.rt.Spawn("victim", func(p *proc.P) { _ = m.Enter(p, "Op") })
	return waitUntil("victim blocked on free monitor", func() bool {
		return victim.Status() == proc.Parked && m.EntryLen() == 1
	})
}

func scenarioBareEntry(h *harness, inj *faults.Injector) error {
	m, err := h.newManager(inj)
	if err != nil {
		return err
	}
	h.attach(m)
	h.rt.Spawn("ghost", func(p *proc.P) {
		m.InjectBareEntry(p, "Op")
		_ = m.Exit(p, "Op")
	})
	h.rt.Join()
	return nil
}

func scenarioWaitNoBlock(h *harness, inj *faults.Injector) error {
	m, err := h.newManager(inj)
	if err != nil {
		return err
	}
	h.attach(m)
	inj.Arm()
	h.rt.Spawn("runner", func(p *proc.P) {
		if err := m.Enter(p, "Op"); err != nil {
			return
		}
		if err := m.Wait(p, "Op", "ok"); err != nil {
			return
		}
		_ = m.Exit(p, "Op") // runs on without any signal
	})
	h.rt.Join()
	return nil
}

func scenarioWaitLost(h *harness, inj *faults.Injector) error {
	m, err := h.newManager(inj)
	if err != nil {
		return err
	}
	h.attach(m)
	inj.Arm()
	victim := h.rt.Spawn("victim", func(p *proc.P) {
		if err := m.Enter(p, "Op"); err != nil {
			return
		}
		_ = m.Wait(p, "Op", "ok")
	})
	return waitUntil("victim lost", func() bool {
		return victim.Status() == proc.Parked && m.CondLen("ok") == 0
	})
}

func scenarioWaitNoHandoff(h *harness, inj *faults.Injector) error {
	m, err := h.newManager(inj)
	if err != nil {
		return err
	}
	h.attach(m)
	goWait := make(chan struct{})
	h.rt.Spawn("waiter", func(p *proc.P) {
		if err := m.Enter(p, "Op"); err != nil {
			return
		}
		<-goWait
		_ = m.Wait(p, "Op", "ok")
	})
	if err := waitUntil("waiter inside", func() bool { return m.InsideCount() == 1 }); err != nil {
		return err
	}
	h.rt.Spawn("queued", func(p *proc.P) { _ = m.Enter(p, "Op") })
	if err := waitUntil("queued on EQ", func() bool { return m.EntryLen() == 1 }); err != nil {
		return err
	}
	inj.Arm()
	close(goWait)
	return waitUntil("handoff skipped", func() bool {
		return m.InsideCount() == 0 && m.EntryLen() == 1
	})
}

func scenarioWaitStarved(h *harness, inj *faults.Injector) error {
	m, err := h.newManager(inj)
	if err != nil {
		return err
	}
	h.attach(m)
	release, err := h.enterHold(m) // pid 1
	if err != nil {
		return err
	}
	inj.Arm()
	inj.SetVictim(2)
	victim := h.rt.Spawn("victim", func(p *proc.P) { _ = m.Enter(p, "Op") }) // pid 2
	if err := waitUntil("victim queued", func() bool { return m.EntryLen() == 1 }); err != nil {
		return err
	}
	h.rt.Spawn("other", func(p *proc.P) { // pid 3
		if err := m.Enter(p, "Op"); err != nil {
			return
		}
		_ = m.Exit(p, "Op")
	})
	if err := waitUntil("both queued", func() bool { return m.EntryLen() == 2 }); err != nil {
		return err
	}
	release()
	if err := waitUntil("victim overtaken", func() bool { return m.InsideCount() == 0 }); err != nil {
		return err
	}
	return waitUntil("victim still parked", func() bool { return victim.Status() == proc.Parked })
}

func scenarioWaitMutex(h *harness, inj *faults.Injector) error {
	m, err := h.newManager(inj)
	if err != nil {
		return err
	}
	h.attach(m)
	goWait := make(chan struct{})
	h.rt.Spawn("waiter", func(p *proc.P) {
		if err := m.Enter(p, "Op"); err != nil {
			return
		}
		<-goWait
		_ = m.Wait(p, "Op", "ok")
	})
	if err := waitUntil("waiter inside", func() bool { return m.InsideCount() == 1 }); err != nil {
		return err
	}
	for i := 0; i < 2; i++ {
		h.rt.Spawn("queued", func(p *proc.P) {
			if err := m.Enter(p, "Op"); err != nil {
				return
			}
			_ = m.Exit(p, "Op")
		})
	}
	if err := waitUntil("two queued", func() bool { return m.EntryLen() == 2 }); err != nil {
		return err
	}
	inj.Arm()
	close(goWait)
	return waitUntil("deviation fired", func() bool { return inj.Fired() > 0 })
}

func scenarioWaitKeepLock(h *harness, inj *faults.Injector) error {
	m, err := h.newManager(inj)
	if err != nil {
		return err
	}
	h.attach(m)
	goWait := make(chan struct{})
	waiter := h.rt.Spawn("waiter", func(p *proc.P) {
		if err := m.Enter(p, "Op"); err != nil {
			return
		}
		<-goWait
		_ = m.Wait(p, "Op", "ok")
	})
	if err := waitUntil("waiter inside", func() bool { return m.InsideCount() == 1 }); err != nil {
		return err
	}
	h.rt.Spawn("queued", func(p *proc.P) { _ = m.Enter(p, "Op") })
	if err := waitUntil("queued on EQ", func() bool { return m.EntryLen() == 1 }); err != nil {
		return err
	}
	inj.Arm()
	close(goWait)
	return waitUntil("lock kept", func() bool {
		return waiter.Status() == proc.Parked && m.InsideCount() == 1
	})
}

func scenarioSignalNoResume(h *harness, inj *faults.Injector) error {
	m, err := h.newManager(inj)
	if err != nil {
		return err
	}
	h.attach(m)
	h.rt.Spawn("condWaiter", func(p *proc.P) {
		if err := m.Enter(p, "Op"); err != nil {
			return
		}
		_ = m.Wait(p, "Op", "ok")
	})
	if err := waitUntil("cond waiter queued", func() bool { return m.CondLen("ok") == 1 }); err != nil {
		return err
	}
	release, err := h.enterHold(m)
	if err != nil {
		return err
	}
	h.rt.Spawn("queued", func(p *proc.P) { _ = m.Enter(p, "Op") })
	if err := waitUntil("queued on EQ", func() bool { return m.EntryLen() == 1 }); err != nil {
		return err
	}
	inj.Arm()
	release() // the exit resumes nobody
	return waitUntil("nobody resumed", func() bool { return m.InsideCount() == 0 })
}

func scenarioSignalKeepLock(h *harness, inj *faults.Injector) error {
	m, err := h.newManager(inj)
	if err != nil {
		return err
	}
	h.attach(m)
	inj.Arm()
	h.rt.Spawn("p", func(p *proc.P) {
		if err := m.Enter(p, "Op"); err != nil {
			return
		}
		_ = m.Exit(p, "Op")
	})
	h.rt.Join()
	return nil
}

func scenarioSignalDoubleWake(h *harness, inj *faults.Injector) error {
	m, err := h.newManager(inj)
	if err != nil {
		return err
	}
	h.attach(m)
	// The replay only exposes the double wake when the entry-queue
	// waiter's exit is recorded while the condition waiter is still the
	// reconstructed occupant (§3.3: post-checking cannot see transient
	// states between events). Order the exits accordingly: the condition
	// waiter leaves only after the EQ waiter has finished.
	eqDone := make(chan struct{})
	h.rt.Spawn("condWaiter", func(p *proc.P) {
		if err := m.Enter(p, "Op"); err != nil {
			return
		}
		if err := m.Wait(p, "Op", "ok"); err != nil {
			return
		}
		<-eqDone
		_ = m.Exit(p, "Op")
	})
	if err := waitUntil("cond waiter queued", func() bool { return m.CondLen("ok") == 1 }); err != nil {
		return err
	}
	hold := make(chan struct{})
	h.rt.Spawn("signaler", func(p *proc.P) {
		if err := m.Enter(p, "Op"); err != nil {
			return
		}
		<-hold
		_ = m.SignalExit(p, "Op", "ok")
	})
	if err := waitUntil("signaler inside", func() bool { return m.InsideCount() == 1 }); err != nil {
		return err
	}
	h.rt.Spawn("eqWaiter", func(p *proc.P) {
		if err := m.Enter(p, "Op"); err != nil {
			return
		}
		_ = m.Exit(p, "Op")
		close(eqDone)
	})
	if err := waitUntil("eq waiter queued", func() bool { return m.EntryLen() == 1 }); err != nil {
		return err
	}
	inj.Arm()
	close(hold)
	if err := waitUntil("deviation fired", func() bool { return inj.Fired() > 0 }); err != nil {
		return err
	}
	h.rt.Join()
	return nil
}

func scenarioInternalTermination(h *harness, inj *faults.Injector) error {
	m, err := h.newManager(inj)
	if err != nil {
		return err
	}
	h.attach(m)
	h.rt.Spawn("dier", func(p *proc.P) {
		if err := m.Enter(p, "Op"); err != nil {
			return
		}
		// Returns without exiting: fault I.d.
	})
	h.rt.Join()
	return nil
}

func scenarioBufferBug(h *harness, inj *faults.Injector) error {
	buf, err := boundedbuffer.New(1,
		boundedbuffer.WithInjector(inj),
		boundedbuffer.WithMonitorOptions(monitor.WithRecorder(h.db), monitor.WithClock(h.clk)),
	)
	if err != nil {
		return err
	}
	h.attach(buf.Monitor())
	// Prepare the state the bug needs: a full buffer for overflow bugs,
	// one item for the spurious receive delay, empty otherwise.
	switch inj.Kind() {
	case faults.SendOverflow, faults.ReceiveSpuriousDelay:
		h.rt.Spawn("prefill", func(p *proc.P) { _ = buf.Send(p, 0) })
		h.rt.Join()
	}
	inj.Arm()
	switch inj.Kind() {
	case faults.SendSpuriousDelay, faults.SendOverflow:
		h.rt.Spawn("sender", func(p *proc.P) { _ = buf.Send(p, 1) })
	case faults.ReceiveSpuriousDelay, faults.ReceiveOvertake:
		h.rt.Spawn("receiver", func(p *proc.P) { _, _ = buf.Receive(p) })
	}
	return waitUntil("buffer bug fired", func() bool { return inj.Fired() > 0 })
}

func scenarioUserBug(h *harness, inj *faults.Injector) error {
	spec := allocator.Spec("allocator")
	rte, err := detect.NewRealTime(h.db, []monitor.Spec{spec}, nil)
	if err != nil {
		return err
	}
	h.rte = rte
	alloc, err := allocator.New(2,
		allocator.WithMonitorOptions(monitor.WithRecorder(rte), monitor.WithClock(h.clk)),
	)
	if err != nil {
		return err
	}
	h.attach(alloc.Monitor())
	inj.Arm()
	done := make(chan struct{})
	switch inj.UserBug() {
	case faults.UserReleaseFirst:
		h.rt.Spawn("buggy", func(p *proc.P) {
			defer close(done)
			if inj.TryFire() {
				_ = alloc.Release(p) // fault III.a
			}
		})
	case faults.UserNeverRelease:
		h.rt.Spawn("hog", func(p *proc.P) {
			defer close(done)
			if inj.TryFire() {
				_ = alloc.Acquire(p) // never released: fault III.b
			}
		})
	case faults.UserDoubleAcquire:
		h.rt.Spawn("buggy", func(p *proc.P) {
			defer close(done)
			if err := alloc.Acquire(p); err != nil {
				return
			}
			if inj.TryFire() {
				_ = alloc.Acquire(p) // fault III.c
			}
		})
	}
	<-done
	return nil
}
