package experiment

import (
	"fmt"
	"strings"
)

// Table is a minimal aligned-column text table used by the experiment
// tools to print paper-style result tables.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// String renders the table with a separator line under the header.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len([]rune(h))
	}
	for _, row := range t.rows {
		for i, c := range row {
			if n := len([]rune(c)); n > widths[i] {
				widths[i] = n
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(len(widths)-1)))
	b.WriteString("\n")
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
