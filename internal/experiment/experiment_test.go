package experiment

import (
	"strings"
	"testing"
	"time"

	"robustmon/internal/faults"
)

// TestCoverageAllFaultKindsDetected is the E1 robustness experiment:
// inject every fault kind from the §2.2 taxonomy and verify the paper's
// headline result — "all injected faults are detected".
func TestCoverageAllFaultKindsDetected(t *testing.T) {
	t.Parallel()
	results := RunCoverage(faults.AllKinds())
	if len(results) != 21 {
		t.Fatalf("ran %d scenarios, want 21", len(results))
	}
	for _, r := range results {
		if r.Err != nil {
			t.Errorf("%s (%s): scenario error: %v", r.Kind.Code(), r.Kind, r.Err)
			continue
		}
		if !r.Fired {
			t.Errorf("%s (%s): injection never fired", r.Kind.Code(), r.Kind)
			continue
		}
		if !r.Detected {
			t.Errorf("%s (%s): injected fault NOT detected", r.Kind.Code(), r.Kind)
		}
	}
	detected, total := Coverage(results)
	if detected != 21 || total != 21 {
		t.Fatalf("coverage = %d/%d, want 21/21", detected, total)
	}
}

// TestUserLevelFaultsCaughtInRealtime checks the paper's two-phase
// claim: user-process-level faults on allocator monitors are flagged by
// the real-time phase (except never-release, which only a timer can
// see).
func TestUserLevelFaultsCaughtInRealtime(t *testing.T) {
	t.Parallel()
	for _, k := range []faults.Kind{faults.ReleaseWithoutAcquire, faults.SelfDeadlock} {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			t.Parallel()
			res := runOne(k)
			if res.Err != nil {
				t.Fatalf("scenario error: %v", res.Err)
			}
			if !res.Realtime {
				t.Fatalf("fault %v not flagged by the real-time phase (rules: %v)", k, res.Rules)
			}
		})
	}
}

func TestCoverageTableRendersAllRows(t *testing.T) {
	t.Parallel()
	results := RunCoverage([]faults.Kind{faults.SignalMonitorNotReleased, faults.SelfDeadlock})
	tbl := CoverageTable(results).String()
	for _, want := range []string{"I.c.2", "III.c", "YES"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("table missing %q:\n%s", want, tbl)
		}
	}
	summary := CoverageSummary(results)
	if !strings.Contains(summary, "2 / 2") {
		t.Errorf("summary = %q, want 2 / 2", summary)
	}
}

func TestSampleStats(t *testing.T) {
	t.Parallel()
	var s Sample
	if s.Mean() != 0 || s.Stddev() != 0 || s.Min() != 0 || s.Max() != 0 || s.N() != 0 {
		t.Fatal("empty sample should be all zeros")
	}
	s.Add(10 * time.Millisecond)
	s.Add(20 * time.Millisecond)
	s.Add(30 * time.Millisecond)
	if got := s.Mean(); got != 20*time.Millisecond {
		t.Fatalf("Mean = %v, want 20ms", got)
	}
	if got := s.Min(); got != 10*time.Millisecond {
		t.Fatalf("Min = %v", got)
	}
	if got := s.Max(); got != 30*time.Millisecond {
		t.Fatalf("Max = %v", got)
	}
	if got := s.Stddev(); got != 10*time.Millisecond {
		t.Fatalf("Stddev = %v, want 10ms", got)
	}
	if s.N() != 3 {
		t.Fatalf("N = %d", s.N())
	}
}

func TestRatioHelpers(t *testing.T) {
	t.Parallel()
	if got := Ratio(30*time.Millisecond, 10*time.Millisecond); got != 3.0 {
		t.Fatalf("Ratio = %v, want 3", got)
	}
	if got := Ratio(time.Second, 0); got != 0 {
		t.Fatalf("Ratio with zero base = %v, want 0", got)
	}
	if got := FormatRatio(4.4904); got != "4.490" {
		t.Fatalf("FormatRatio = %q", got)
	}
}

func TestTableRendering(t *testing.T) {
	t.Parallel()
	tbl := NewTable("a", "long-header")
	tbl.AddRow("x")
	tbl.AddRow("yyyy", "z")
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Fatalf("missing separator: %q", lines[1])
	}
}

// TestOverheadSmokeRun runs a miniature E2 sweep and checks its
// structural invariants: ratios above 1 (the extension costs
// something), zero violations on fault-free runs, and at least one
// checkpoint executed at the smallest interval.
func TestOverheadSmokeRun(t *testing.T) {
	t.Parallel()
	rows, err := RunOverhead(OverheadConfig{
		Intervals: []time.Duration{5 * time.Millisecond, 50 * time.Millisecond},
		Workloads: AllWorkloads(),
		Ops:       4000,
		Procs:     4,
		Repeats:   1,
	})
	if err != nil {
		t.Fatalf("RunOverhead: %v", err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows, want 6 (3 workloads × 2 intervals)", len(rows))
	}
	for _, r := range rows {
		if r.Violations != 0 {
			t.Errorf("%s@%v: %d violations on a fault-free run", r.Workload, r.Interval, r.Violations)
		}
		if r.Base <= 0 || r.Extended <= 0 {
			t.Errorf("%s@%v: non-positive timings %v/%v", r.Workload, r.Interval, r.Base, r.Extended)
		}
		if r.Ratio <= 0 {
			t.Errorf("%s@%v: ratio %v", r.Workload, r.Interval, r.Ratio)
		}
	}
	tbl := Table1(rows).String()
	if !strings.Contains(tbl, "5ms") || !strings.Contains(tbl, "ratio") {
		t.Errorf("Table1 rendering missing expected cells:\n%s", tbl)
	}
}

func TestOverheadConfigValidation(t *testing.T) {
	t.Parallel()
	if _, err := RunOverhead(OverheadConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestDefaultOverheadConfigMatchesPaperSweep(t *testing.T) {
	t.Parallel()
	cfg := DefaultOverheadConfig()
	if len(cfg.Intervals) != 4 || cfg.Intervals[0] != 500*time.Millisecond {
		t.Fatalf("intervals = %v, want the paper's 0.5s..3s sweep", cfg.Intervals)
	}
	if len(cfg.Workloads) != 3 {
		t.Fatalf("workloads = %v", cfg.Workloads)
	}
}

// TestArchitectureFigure1 verifies the structural reproduction E3: the
// live system is wired exactly as the paper's Figure 1 draws it.
func TestArchitectureFigure1(t *testing.T) {
	t.Parallel()
	arch := Figure1()
	if len(arch.Components) != 5 {
		t.Fatalf("architecture has %d components, want 5", len(arch.Components))
	}
	names := make(map[string]bool, len(arch.Components))
	for _, c := range arch.Components {
		names[c.Name] = true
	}
	for _, e := range arch.Edges {
		if !names[e.From] && e.From != "reports" {
			t.Errorf("edge from unknown component %q", e.From)
		}
		if !names[e.To] {
			t.Errorf("edge to unknown component %q", e.To)
		}
	}
	diagram := arch.String()
	for _, want := range []string{"monitor", "data gathering", "database", "fault detection", "reports"} {
		if !strings.Contains(diagram, want) {
			t.Errorf("diagram missing %q", want)
		}
	}
	if err := VerifyFigure1(); err != nil {
		t.Fatalf("VerifyFigure1: %v", err)
	}
}
