package experiment

import (
	"fmt"
	"runtime"
	"slices"
	"time"

	"robustmon/internal/obs"
	obsrules "robustmon/internal/obs/rules"
)

// E10 — threshold-rule evaluation cost. The rule engine (internal/
// obs/rules) runs inside the detector at every health checkpoint and
// inside the collector's fleet timer, so its per-snapshot cost is paid
// on the monitoring path itself: a slow or allocating Eval would make
// watching the watcher a new overhead class. This sweep evaluates an
// engine of R rules against a registry snapshot of M series in two
// modes — "quiet" (no rule ever transitions: the steady state, which
// must stay allocation-free) and "flapping" (every rule fires and
// clears on a fixed rhythm: the worst-case transition churn) — and
// reports evals/sec, ns/eval and allocs/eval. The perf gate bounds
// the quiet row's allocs at zero (plus the shared noise floor).

// ObsRulesConfig parameterises the E10 sweep.
type ObsRulesConfig struct {
	// Rules is the engine's rule count; each watches its own gauge.
	Rules int
	// Metrics is the registry's total series count — the watched gauges
	// plus unwatched filler, so Eval pays realistic snapshot-lookup
	// costs, not best-case ones.
	Metrics int
	// Evals is how many Eval calls each mode times per run.
	Evals int
	// FlapEvery is the flapping mode's rhythm: the watched values swap
	// between breaching and clear every FlapEvery evals.
	FlapEvery int
	// Repeats reruns each mode; elapsed and allocs take the minimum
	// (one-sided noise, as in E7).
	Repeats int
}

// DefaultObsRulesConfig is the sweep cmd/monbench runs for -obsrules:
// enough rules and filler series that the per-snapshot walk dominates,
// enough evals that the timer resolution does not.
func DefaultObsRulesConfig() ObsRulesConfig {
	return ObsRulesConfig{
		Rules:     64,
		Metrics:   256,
		Evals:     50_000,
		FlapEvery: 50,
		Repeats:   3,
	}
}

// ObsRulesRow is one cell of the E10 sweep.
type ObsRulesRow struct {
	// Mode is "quiet" (no transitions) or "flapping" (every rule
	// transitions every FlapEvery evals).
	Mode string
	// Rules and Metrics echo the engine and snapshot shape.
	Rules, Metrics int
	// Evals is the Eval calls measured.
	Evals int64
	// Transitions is the alerts the engine emitted across the run
	// (zero on the quiet row by construction).
	Transitions int64
	// Elapsed is the minimum wall time across repeats.
	Elapsed time.Duration
	// EvalsPerSec and NsPerEval are the throughput pair.
	EvalsPerSec float64
	NsPerEval   float64
	// AllocsPerEval is heap allocations per Eval call — the gated
	// zero-alloc claim on the quiet row.
	AllocsPerEval float64
}

// RunObsRules executes the E10 sweep: quiet steady state, then
// flapping transition churn.
func RunObsRules(cfg ObsRulesConfig) ([]ObsRulesRow, error) {
	if cfg.Rules <= 0 || cfg.Metrics < cfg.Rules || cfg.Evals <= 0 {
		return nil, fmt.Errorf("experiment: bad obs-rules config %+v", cfg)
	}
	repeats := cfg.Repeats
	if repeats < 1 {
		repeats = 1
	}
	flapEvery := cfg.FlapEvery
	if flapEvery <= 0 {
		flapEvery = 50
	}

	var rows []ObsRulesRow
	for _, mode := range []string{"quiet", "flapping"} {
		row := ObsRulesRow{
			Mode: mode, Rules: cfg.Rules, Metrics: cfg.Metrics,
			Evals: int64(cfg.Evals),
		}
		elapsed := make([]time.Duration, 0, repeats)
		allocs := make([]float64, 0, repeats)
		for i := 0; i < repeats; i++ {
			e, ape, transitions, err := obsRulesOnce(cfg, mode == "flapping", flapEvery)
			if err != nil {
				return nil, err
			}
			elapsed = append(elapsed, e)
			allocs = append(allocs, ape)
			row.Transitions = transitions
		}
		row.Elapsed = slices.Min(elapsed)
		row.AllocsPerEval = slices.Min(allocs)
		if s := row.Elapsed.Seconds(); s > 0 {
			row.EvalsPerSec = float64(row.Evals) / s
			row.NsPerEval = float64(row.Elapsed.Nanoseconds()) / float64(row.Evals)
		}
		if mode == "quiet" && row.Transitions != 0 {
			return nil, fmt.Errorf("experiment: obs-rules quiet mode emitted %d transitions", row.Transitions)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// obsRulesOnce times one run: cfg.Evals Eval calls over pre-captured
// snapshots, so the measurement is the engine's walk alone — snapshot
// capture is the health path's cost, gated by E7, not this sweep's.
// Flapping alternates between a breaching and a clear snapshot every
// flapEvery evals, driving every rule through a full fire/clear cycle
// per period.
func obsRulesOnce(cfg ObsRulesConfig, flapping bool, flapEvery int) (time.Duration, float64, int64, error) {
	reg := obs.NewRegistry()
	rules := make([]obsrules.Rule, cfg.Rules)
	for i := range rules {
		name := fmt.Sprintf("e10_watched_%d", i)
		reg.Gauge(name).Set(1)
		rules[i] = obsrules.Rule{
			Name:   fmt.Sprintf("rule-%d", i),
			Metric: name,
			// Quiet keeps every value under the ceiling forever; flapping
			// swaps in a snapshot where every value breaches it.
			Ceiling: 5,
		}
	}
	for i := cfg.Rules; i < cfg.Metrics; i++ {
		reg.Counter(fmt.Sprintf("e10_filler_%d", i)).Add(int64(i))
	}
	engine, err := obsrules.New(reg, rules...)
	if err != nil {
		return 0, 0, 0, err
	}
	clear := reg.Snapshot()
	for i := range rules {
		reg.Gauge(rules[i].Metric).Set(9)
	}
	breaching := reg.Snapshot()

	at := time.Date(2001, 7, 1, 0, 0, 0, 0, time.UTC)
	var dst []obsrules.Alert
	var transitions int64
	// Two warm-up evals (a full fire/clear cycle) size dst's backing
	// array before the timed loop, so append growth is not billed to
	// the steady state; they leave every rule cleared.
	dst = engine.Eval(dst[:0], at, 0, breaching)
	dst = engine.Eval(dst[:0], at, 0, clear)

	snap, high := clear, false
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 1; i <= cfg.Evals; i++ {
		if flapping && i%flapEvery == 0 {
			high = !high
			if high {
				snap = breaching
			} else {
				snap = clear
			}
		}
		dst = engine.Eval(dst[:0], at.Add(time.Duration(i)*time.Millisecond), int64(i), snap)
		transitions += int64(len(dst))
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)

	return elapsed, float64(after.Mallocs-before.Mallocs) / float64(cfg.Evals), transitions, nil
}

// ObsRulesTable renders the E10 sweep.
func ObsRulesTable(rows []ObsRulesRow) *Table {
	t := NewTable("mode", "rules", "metrics", "evals", "transitions", "elapsed", "evals/sec", "ns/eval", "allocs/eval")
	for _, r := range rows {
		t.AddRow(r.Mode, fmt.Sprint(r.Rules), fmt.Sprint(r.Metrics),
			fmt.Sprint(r.Evals), fmt.Sprint(r.Transitions),
			r.Elapsed.Round(time.Microsecond).String(),
			FormatEventsPerSec(r.EvalsPerSec),
			fmt.Sprintf("%.1f", r.NsPerEval),
			fmt.Sprintf("%.3f", r.AllocsPerEval))
	}
	return t
}
