package experiment

import (
	"strings"
	"testing"
)

func TestRunObsRulesRowsAndAccounting(t *testing.T) {
	cfg := ObsRulesConfig{
		Rules:     8,
		Metrics:   32,
		Evals:     10_000,
		FlapEvery: 100,
		Repeats:   2,
	}
	rows, err := RunObsRules(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Mode != "quiet" || rows[1].Mode != "flapping" {
		t.Fatalf("got rows %+v, want quiet then flapping", rows)
	}
	for i, r := range rows {
		if r.Rules != cfg.Rules || r.Metrics != cfg.Metrics || r.Evals != int64(cfg.Evals) {
			t.Fatalf("row %d shape accounting: %+v", i, r)
		}
		if r.Elapsed <= 0 || r.EvalsPerSec <= 0 || r.NsPerEval <= 0 {
			t.Fatalf("row %d has empty measurements: %+v", i, r)
		}
		if r.AllocsPerEval < 0 {
			t.Fatalf("row %d has negative alloc profile: %+v", i, r)
		}
	}
	if rows[0].Transitions != 0 {
		t.Fatalf("quiet row emitted %d transitions, want 0", rows[0].Transitions)
	}
	// Flapping swaps the snapshot Evals/FlapEvery times; each swap
	// transitions every rule exactly once.
	wantTransitions := int64(cfg.Evals/cfg.FlapEvery) * int64(cfg.Rules)
	if rows[1].Transitions != wantTransitions {
		t.Fatalf("flapping row emitted %d transitions, want %d", rows[1].Transitions, wantTransitions)
	}
	// The steady-state walk allocates nothing: the claim the perf gate
	// bounds, pinned here without the gate's noise floor.
	if rows[0].AllocsPerEval > 0.01 {
		t.Fatalf("quiet eval path allocates %.4f/eval, want 0", rows[0].AllocsPerEval)
	}
	table := ObsRulesTable(rows).String()
	for _, col := range []string{"mode", "transitions", "allocs/eval", "quiet", "flapping"} {
		if !strings.Contains(table, col) {
			t.Fatalf("table missing %q:\n%s", col, table)
		}
	}
}

func TestRunObsRulesRejectsBadConfig(t *testing.T) {
	if _, err := RunObsRules(ObsRulesConfig{Rules: 0, Metrics: 8, Evals: 10}); err == nil {
		t.Fatal("zero rules accepted")
	}
	if _, err := RunObsRules(ObsRulesConfig{Rules: 8, Metrics: 4, Evals: 10}); err == nil {
		t.Fatal("metrics < rules accepted")
	}
}
