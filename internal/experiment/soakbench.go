package experiment

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"robustmon/internal/export/compact"
)

// E9 — long-horizon compaction cost. The streaming compactor's claim
// is bounded memory: a retention pass over a backlog many times the
// chunk budget must hold one decoded record per input file, never the
// decoded backlog. This sweep makes the claim a gated number — it
// compacts synthetic backlogs of increasing size under one fixed chunk
// budget, sampling the live heap throughout, and reports the peak heap
// growth plus the bytes the pass reclaimed. The rows land in the perf
// artefact (BENCH_scaling.json), so a change that regresses the
// compactor back to whole-backlog buffering — peak heap tracking
// backlog size instead of chunk budget — fails the perf gate exactly
// like a throughput regression.

// SoakBenchConfig parameterises the E9 sweep.
type SoakBenchConfig struct {
	// Monitors is how many monitors the synthetic events round-robin
	// over.
	Monitors int
	// SegmentEvents is the events per WAL record.
	SegmentEvents int
	// MaxFileBytes is the sink's rotation threshold; small, so the
	// backlog spans many files (the k-way-merge shape).
	MaxFileBytes int64
	// ChunkEvents is the compactor's output re-chunking budget — the
	// bound peak memory must track.
	ChunkEvents int
	// Backlogs are the event counts swept, each a multiple of
	// ChunkEvents (the acceptance floor is 4x).
	Backlogs []int
	// RetainFrac is the retention floor as a fraction of each backlog:
	// the pass both merges and drops, like a production pass.
	RetainFrac float64
	// Repeats re-runs each cell; the minimum peak and elapsed are
	// reported (noise — GC timing, scheduler — is one-sided, exactly
	// as TraceStoreConfig.Repeats documents).
	Repeats int
}

// DefaultSoakBenchConfig is the sweep cmd/monbench runs for -soak.
func DefaultSoakBenchConfig() SoakBenchConfig {
	return SoakBenchConfig{
		Monitors:      8,
		SegmentEvents: 256,
		MaxFileBytes:  32 << 10,
		ChunkEvents:   4096,
		Backlogs:      []int{32_768, 131_072}, // 8x and 32x the chunk budget
		RetainFrac:    0.5,
		Repeats:       3,
	}
}

// SoakBenchRow is one cell of the E9 sweep: one backlog size.
type SoakBenchRow struct {
	// Backlog is the events in the input backlog (the cell key).
	Backlog int
	// BytesIn is the input directory size; BytesReclaimed what the
	// pass shrank it by.
	BytesIn, BytesReclaimed int64
	// EventsOut survived the pass; EventsDropped fell below the
	// retention floor.
	EventsOut, EventsDropped int64
	// PeakHeapBytes is the peak live-heap growth observed during the
	// pass (minimum across repeats) — the bounded-memory claim.
	PeakHeapBytes int64
	// Elapsed is the fastest pass wall time across the repeats.
	Elapsed time.Duration
	// FilesIn inputs became FilesOut outputs.
	FilesIn, FilesOut int
}

// RunSoakBench builds one synthetic backlog per cell and measures a
// full streaming retention pass over it.
func RunSoakBench(cfg SoakBenchConfig) ([]SoakBenchRow, error) {
	if cfg.Monitors <= 0 || cfg.SegmentEvents <= 0 || cfg.ChunkEvents <= 0 ||
		len(cfg.Backlogs) == 0 || cfg.RetainFrac < 0 || cfg.RetainFrac >= 1 {
		return nil, fmt.Errorf("experiment: bad soak-bench config %+v", cfg)
	}
	repeats := cfg.Repeats
	if repeats < 1 {
		repeats = 1
	}
	var rows []SoakBenchRow
	for _, backlog := range cfg.Backlogs {
		if backlog < 4*cfg.ChunkEvents {
			return nil, fmt.Errorf("experiment: backlog %d below the 4x chunk budget floor (%d)",
				backlog, 4*cfg.ChunkEvents)
		}
		row := SoakBenchRow{Backlog: backlog}
		for i := 0; i < repeats; i++ {
			one, err := soakBenchPass(backlog, cfg)
			if err != nil {
				return nil, err
			}
			if i == 0 || one.PeakHeapBytes < row.PeakHeapBytes {
				row.PeakHeapBytes = one.PeakHeapBytes
			}
			if i == 0 || one.Elapsed < row.Elapsed {
				row.Elapsed = one.Elapsed
			}
			// The structural outputs are deterministic; keep the last.
			row.BytesIn, row.BytesReclaimed = one.BytesIn, one.BytesReclaimed
			row.EventsOut, row.EventsDropped = one.EventsOut, one.EventsDropped
			row.FilesIn, row.FilesOut = one.FilesIn, one.FilesOut
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// soakBenchPass builds one backlog directory and times one retention
// pass over it with the heap sampled throughout.
func soakBenchPass(backlog int, cfg SoakBenchConfig) (SoakBenchRow, error) {
	var row SoakBenchRow
	dir, err := os.MkdirTemp("", "robustmon-soakbench-*")
	if err != nil {
		return row, err
	}
	defer os.RemoveAll(dir)
	if err := buildTraceStoreDir(dir, TraceStoreConfig{
		Events:        backlog,
		Monitors:      cfg.Monitors,
		SegmentEvents: cfg.SegmentEvents,
		MaxFileBytes:  cfg.MaxFileBytes,
		Window:        1,
	}); err != nil {
		return row, err
	}

	// Live-heap peak during the pass, against a post-GC baseline. The
	// sampler's own cost is two words per tick; 200µs resolution is
	// far finer than any chunk's lifetime.
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	base := ms.HeapAlloc
	peak := base
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(200 * time.Microsecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				var s runtime.MemStats
				runtime.ReadMemStats(&s)
				if s.HeapAlloc > peak {
					peak = s.HeapAlloc
				}
			}
		}
	}()

	start := time.Now()
	res, err := compact.Dir(dir, compact.Config{
		KeepNewest:  -1,
		RetainSeq:   int64(float64(backlog) * cfg.RetainFrac),
		ChunkEvents: cfg.ChunkEvents,
	})
	elapsed := time.Since(start)
	close(stop)
	wg.Wait()
	if err != nil {
		return row, err
	}
	row = SoakBenchRow{
		Backlog:        backlog,
		BytesIn:        res.BytesReclaimed, // corrected below
		BytesReclaimed: res.BytesReclaimed,
		EventsOut:      res.Events,
		EventsDropped:  res.EventsDropped,
		Elapsed:        elapsed,
		FilesIn:        res.FilesIn,
		FilesOut:       res.FilesOut,
	}
	if peak > base {
		row.PeakHeapBytes = int64(peak - base)
	}
	// Input bytes = what survived on disk plus what the pass reclaimed.
	var after int64
	ents, err := os.ReadDir(dir)
	if err != nil {
		return row, err
	}
	for _, e := range ents {
		if info, err := e.Info(); err == nil {
			after += info.Size()
		}
	}
	row.BytesIn = after + res.BytesReclaimed
	return row, nil
}

// SoakBenchTable renders the E9 sweep.
func SoakBenchTable(rows []SoakBenchRow) *Table {
	t := NewTable("backlog", "files", "bytes in", "reclaimed", "dropped", "peak heap", "elapsed")
	for _, r := range rows {
		t.AddRow(fmt.Sprint(r.Backlog),
			fmt.Sprintf("%d→%d", r.FilesIn, r.FilesOut),
			fmt.Sprintf("%.1f MiB", float64(r.BytesIn)/(1<<20)),
			fmt.Sprintf("%.1f MiB", float64(r.BytesReclaimed)/(1<<20)),
			fmt.Sprint(r.EventsDropped),
			fmt.Sprintf("%.1f MiB", float64(r.PeakHeapBytes)/(1<<20)),
			r.Elapsed.Round(time.Millisecond).String())
	}
	return t
}
