package experiment

import (
	"context"
	"fmt"
	"sort"
	"time"

	"robustmon/internal/clock"
	"robustmon/internal/detect"
	"robustmon/internal/history"
	"robustmon/internal/monitor"
	"robustmon/internal/proc"
)

// ScalingConfig parameterises the many-monitor scaling experiment (E4):
// N independent operation-manager monitors, all recording into one
// shared (sharded) history database, checked by one detector whose
// checkpoint pipeline distributes the per-monitor work across a worker
// pool. The sweep compares the paper-faithful stop-the-world checkpoint
// (HoldWorld) against the per-monitor variant at each monitor count.
type ScalingConfig struct {
	// Monitors are the monitor counts N to sweep.
	Monitors []int
	// OpsPerMonitor is the number of monitor operations (Enter+Exit
	// pairs count as two) each monitor receives per run.
	OpsPerMonitor int
	// ProcsPerMonitor is the number of concurrent processes driving each
	// monitor.
	ProcsPerMonitor int
	// Interval is the checking period T of the detector.
	Interval time.Duration
	// Workers bounds the detector's checkpoint worker pool (0 = auto).
	Workers int
	// GlobalLock, when set, forces the single-mutex history database
	// (history.WithGlobalLock) so the sweep can expose the contention
	// the sharding removes.
	GlobalLock bool
	// BatchSize, when positive, makes checkpoints drain and replay in
	// batches of this many events (detect.Config.BatchSize) in every
	// cell of the sweep.
	BatchSize int
	// BatchWriters, when set, wires every monitor to the database
	// through a lock-free BatchWriter (history.DB.NewBatchWriter with
	// the default staging size) instead of recording directly — the
	// raw-speed record path under the full monitor protocol. The
	// detector's checkpoint handshake flushes each frozen monitor's
	// staged block before its shard is drained, so the violation set
	// and the final event count are unchanged; only the record-side
	// contention profile differs.
	BatchWriters bool
	// Adaptive, when set, doubles the sweep: next to every fixed-T cell
	// an adaptive-scheduler cell runs with per-monitor intervals in
	// [MinInterval, MaxInterval].
	Adaptive bool
	// MinInterval and MaxInterval bound the adaptive scheduler's
	// per-monitor intervals. Zero defaults to Interval and 8×Interval.
	MinInterval, MaxInterval time.Duration
	// Repeats re-runs every cell this many times and reports the
	// median throughput and the minimum latency percentiles. The
	// asymmetry is deliberate: container noise is one-sided — it can
	// only add latency — so the minimum across runs of each run's p99
	// estimates the clean-machine tail, where a median of maxima stays
	// hostage to whichever runs the scheduler interfered with.
	// Throughput noise is closer to symmetric, and its median is
	// robust where best-of-N is biased (the baseline captures a lucky
	// maximum later runs cannot reproduce). Zero or one means a single
	// run.
	Repeats int
}

// DefaultScalingConfig is the sweep cmd/monbench runs for -monitors.
func DefaultScalingConfig() ScalingConfig {
	return ScalingConfig{
		Monitors:        []int{1, 4, 16},
		OpsPerMonitor:   4000,
		ProcsPerMonitor: 2,
		Interval:        5 * time.Millisecond,
	}
}

// ScalingRow is one cell of the scaling sweep.
type ScalingRow struct {
	Monitors  int
	HoldWorld bool
	// Adaptive reports whether the cell ran the adaptive scheduler
	// instead of the fixed interval, and BatchSize the replay batch
	// size in force (0 = unbatched).
	Adaptive  bool
	BatchSize int
	// Elapsed is the wall time of the workload (recording side).
	Elapsed time.Duration
	// Events is the number of events recorded (= replayed: the final
	// checkpoint drains every shard).
	Events int64
	// Checks is the number of checkpoints completed.
	Checks int
	// EventsPerSec is the recording throughput Events/Elapsed — the
	// headline metric future PRs track.
	EventsPerSec float64
	// CheckP50 and CheckP99 are the per-checkpoint latency percentiles
	// (detect.Stats) — the perf gate's latency signal.
	CheckP50, CheckP99 time.Duration
}

// RunScaling executes the scaling sweep: for each monitor count it
// measures both checkpoint modes on the same workload shape (and, with
// cfg.Adaptive, both scheduler modes).
func RunScaling(cfg ScalingConfig) ([]ScalingRow, error) {
	if len(cfg.Monitors) == 0 || cfg.OpsPerMonitor <= 0 || cfg.ProcsPerMonitor <= 0 {
		return nil, fmt.Errorf("experiment: bad scaling config %+v", cfg)
	}
	scheds := []bool{false}
	if cfg.Adaptive {
		scheds = append(scheds, true)
	}
	var rows []ScalingRow
	for _, n := range cfg.Monitors {
		if n <= 0 {
			return nil, fmt.Errorf("experiment: bad monitor count %d", n)
		}
		for _, hold := range []bool{true, false} {
			for _, adaptive := range scheds {
				row, err := runScalingCellMedian(cfg, n, hold, adaptive)
				if err != nil {
					return nil, err
				}
				rows = append(rows, row)
			}
		}
	}
	return rows, nil
}

// runScalingCellMedian measures one cell cfg.Repeats times and
// reports median throughput + minimum latency percentiles (see
// ScalingConfig.Repeats).
func runScalingCellMedian(cfg ScalingConfig, monitors int, hold, adaptive bool) (ScalingRow, error) {
	repeats := cfg.Repeats
	if repeats < 1 {
		repeats = 1
	}
	runs := make([]ScalingRow, repeats)
	for i := range runs {
		row, err := runScalingCell(cfg, monitors, hold, adaptive)
		if err != nil {
			return ScalingRow{}, err
		}
		runs[i] = row
	}
	if repeats == 1 {
		return runs[0], nil
	}
	// The median run by throughput carries the row; the latency
	// percentiles take the minimum across runs (one-sided noise — see
	// ScalingConfig.Repeats).
	byEPS := append([]ScalingRow(nil), runs...)
	sort.Slice(byEPS, func(i, j int) bool { return byEPS[i].EventsPerSec < byEPS[j].EventsPerSec })
	row := byEPS[len(byEPS)/2]
	row.CheckP50 = minDuration(runs, func(r ScalingRow) time.Duration { return r.CheckP50 })
	row.CheckP99 = minDuration(runs, func(r ScalingRow) time.Duration { return r.CheckP99 })
	return row, nil
}

// minDuration extracts one duration per run and returns the smallest.
func minDuration(runs []ScalingRow, get func(ScalingRow) time.Duration) time.Duration {
	out := get(runs[0])
	for _, r := range runs[1:] {
		if d := get(r); d < out {
			out = d
		}
	}
	return out
}

// runScalingCell measures one (monitor count, checkpoint mode,
// scheduler mode) cell.
func runScalingCell(cfg ScalingConfig, monitors int, hold, adaptive bool) (ScalingRow, error) {
	var dbOpts []history.Option
	if cfg.GlobalLock {
		dbOpts = append(dbOpts, history.WithGlobalLock())
	}
	db := history.New(dbOpts...)
	mons := make([]*monitor.Monitor, monitors)
	var writers []*history.BatchWriter
	for i := range mons {
		spec := monitor.Spec{
			Name:       fmt.Sprintf("shard%03d", i),
			Kind:       monitor.OperationManager,
			Conditions: []string{"ok"},
			Procedures: []string{"Op"},
		}
		rec := monitor.Recorder(db)
		if cfg.BatchWriters {
			w := db.NewBatchWriter(spec.Name, 0)
			writers = append(writers, w)
			rec = w
		}
		m, err := monitor.New(spec, monitor.WithRecorder(rec))
		if err != nil {
			return ScalingRow{}, fmt.Errorf("experiment: scaling monitor %d: %w", i, err)
		}
		mons[i] = m
	}
	dcfg := detect.Config{
		Interval:  cfg.Interval,
		Tmax:      time.Hour,
		Tio:       time.Hour,
		Clock:     clock.Real{},
		HoldWorld: hold,
		Workers:   cfg.Workers,
		BatchSize: cfg.BatchSize,
	}
	if adaptive {
		dcfg.MinInterval = cfg.MinInterval
		if dcfg.MinInterval <= 0 {
			dcfg.MinInterval = cfg.Interval
		}
		dcfg.MaxInterval = cfg.MaxInterval
		if dcfg.MaxInterval <= 0 {
			dcfg.MaxInterval = 8 * cfg.Interval
		}
	}
	det := detect.New(db, dcfg, mons...)
	ctx, cancel := context.WithCancel(context.Background())
	detDone := make(chan struct{})
	go func() {
		defer close(detDone)
		det.Run(ctx)
	}()

	rt := proc.NewRuntime()
	pairs := cfg.OpsPerMonitor / 2 / cfg.ProcsPerMonitor
	if pairs == 0 {
		pairs = 1
	}
	start := time.Now()
	for _, m := range mons {
		m := m
		for w := 0; w < cfg.ProcsPerMonitor; w++ {
			rt.Spawn("driver", func(p *proc.P) {
				for j := 0; j < pairs; j++ {
					if err := m.Enter(p, "Op"); err != nil {
						return
					}
					_ = m.Exit(p, "Op")
				}
			})
		}
	}
	rt.Join()
	elapsed := time.Since(start)
	// Close before the detector's final checkpoint so every staged
	// block is published and db.Total counts the full workload.
	for _, w := range writers {
		w.Close()
	}
	cancel()
	<-detDone
	st := det.Stats()
	if st.Violations > 0 {
		vs := det.Violations()
		return ScalingRow{}, fmt.Errorf("experiment: fault-free scaling run reported %d violations (first: %v)",
			st.Violations, vs[0])
	}
	row := ScalingRow{
		Monitors:  monitors,
		HoldWorld: hold,
		Adaptive:  adaptive,
		BatchSize: cfg.BatchSize,
		Elapsed:   elapsed,
		Events:    db.Total(),
		Checks:    st.Checks,
		CheckP50:  st.CheckP50,
		CheckP99:  st.CheckP99,
	}
	if s := elapsed.Seconds(); s > 0 {
		row.EventsPerSec = float64(row.Events) / s
	}
	return row, nil
}

// SchedName renders a row's scheduler mode for tables and artefacts.
func (r ScalingRow) SchedName() string {
	if r.Adaptive {
		return "adaptive"
	}
	return "fixed"
}

// CheckpointName renders a row's checkpoint mode for tables and
// artefacts.
func (r ScalingRow) CheckpointName() string {
	if r.HoldWorld {
		return "hold-world"
	}
	return "per-monitor"
}

// ScalingTable renders the sweep with one row per (monitors,
// checkpoint mode, scheduler mode), the events/sec trajectory column
// and the checkpoint-latency percentiles.
func ScalingTable(rows []ScalingRow) *Table {
	t := NewTable("monitors", "checkpoint", "sched", "batch", "elapsed",
		"events", "checks", "events/sec", "check p50", "check p99")
	for _, r := range rows {
		t.AddRow(fmt.Sprint(r.Monitors), r.CheckpointName(), r.SchedName(),
			fmt.Sprint(r.BatchSize), r.Elapsed.Round(time.Microsecond).String(),
			fmt.Sprint(r.Events), fmt.Sprint(r.Checks), FormatEventsPerSec(r.EventsPerSec),
			r.CheckP50.Round(time.Microsecond).String(), r.CheckP99.Round(time.Microsecond).String())
	}
	return t
}

// FormatEventsPerSec renders a throughput figure compactly (e.g.
// "1.25M", "830k").
func FormatEventsPerSec(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.0fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}
