package experiment

import (
	"context"
	"fmt"
	"time"

	"robustmon/internal/clock"
	"robustmon/internal/detect"
	"robustmon/internal/history"
	"robustmon/internal/monitor"
	"robustmon/internal/proc"
)

// ScalingConfig parameterises the many-monitor scaling experiment (E4):
// N independent operation-manager monitors, all recording into one
// shared (sharded) history database, checked by one detector whose
// checkpoint pipeline distributes the per-monitor work across a worker
// pool. The sweep compares the paper-faithful stop-the-world checkpoint
// (HoldWorld) against the per-monitor variant at each monitor count.
type ScalingConfig struct {
	// Monitors are the monitor counts N to sweep.
	Monitors []int
	// OpsPerMonitor is the number of monitor operations (Enter+Exit
	// pairs count as two) each monitor receives per run.
	OpsPerMonitor int
	// ProcsPerMonitor is the number of concurrent processes driving each
	// monitor.
	ProcsPerMonitor int
	// Interval is the checking period T of the detector.
	Interval time.Duration
	// Workers bounds the detector's checkpoint worker pool (0 = auto).
	Workers int
	// GlobalLock, when set, forces the single-mutex history database
	// (history.WithGlobalLock) so the sweep can expose the contention
	// the sharding removes.
	GlobalLock bool
}

// DefaultScalingConfig is the sweep cmd/monbench runs for -monitors.
func DefaultScalingConfig() ScalingConfig {
	return ScalingConfig{
		Monitors:        []int{1, 4, 16},
		OpsPerMonitor:   4000,
		ProcsPerMonitor: 2,
		Interval:        5 * time.Millisecond,
	}
}

// ScalingRow is one cell of the scaling sweep.
type ScalingRow struct {
	Monitors  int
	HoldWorld bool
	// Elapsed is the wall time of the workload (recording side).
	Elapsed time.Duration
	// Events is the number of events recorded (= replayed: the final
	// checkpoint drains every shard).
	Events int64
	// Checks is the number of checkpoints completed.
	Checks int
	// EventsPerSec is the recording throughput Events/Elapsed — the
	// headline metric future PRs track.
	EventsPerSec float64
}

// RunScaling executes the scaling sweep: for each monitor count it
// measures both checkpoint modes on the same workload shape.
func RunScaling(cfg ScalingConfig) ([]ScalingRow, error) {
	if len(cfg.Monitors) == 0 || cfg.OpsPerMonitor <= 0 || cfg.ProcsPerMonitor <= 0 {
		return nil, fmt.Errorf("experiment: bad scaling config %+v", cfg)
	}
	var rows []ScalingRow
	for _, n := range cfg.Monitors {
		if n <= 0 {
			return nil, fmt.Errorf("experiment: bad monitor count %d", n)
		}
		for _, hold := range []bool{true, false} {
			row, err := runScalingCell(cfg, n, hold)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// runScalingCell measures one (monitor count, checkpoint mode) cell.
func runScalingCell(cfg ScalingConfig, monitors int, hold bool) (ScalingRow, error) {
	var dbOpts []history.Option
	if cfg.GlobalLock {
		dbOpts = append(dbOpts, history.WithGlobalLock())
	}
	db := history.New(dbOpts...)
	mons := make([]*monitor.Monitor, monitors)
	for i := range mons {
		spec := monitor.Spec{
			Name:       fmt.Sprintf("shard%03d", i),
			Kind:       monitor.OperationManager,
			Conditions: []string{"ok"},
			Procedures: []string{"Op"},
		}
		m, err := monitor.New(spec, monitor.WithRecorder(db))
		if err != nil {
			return ScalingRow{}, fmt.Errorf("experiment: scaling monitor %d: %w", i, err)
		}
		mons[i] = m
	}
	det := detect.New(db, detect.Config{
		Interval:  cfg.Interval,
		Tmax:      time.Hour,
		Tio:       time.Hour,
		Clock:     clock.Real{},
		HoldWorld: hold,
		Workers:   cfg.Workers,
	}, mons...)
	ctx, cancel := context.WithCancel(context.Background())
	detDone := make(chan struct{})
	go func() {
		defer close(detDone)
		det.Run(ctx)
	}()

	rt := proc.NewRuntime()
	pairs := cfg.OpsPerMonitor / 2 / cfg.ProcsPerMonitor
	if pairs == 0 {
		pairs = 1
	}
	start := time.Now()
	for _, m := range mons {
		m := m
		for w := 0; w < cfg.ProcsPerMonitor; w++ {
			rt.Spawn("driver", func(p *proc.P) {
				for j := 0; j < pairs; j++ {
					if err := m.Enter(p, "Op"); err != nil {
						return
					}
					_ = m.Exit(p, "Op")
				}
			})
		}
	}
	rt.Join()
	elapsed := time.Since(start)
	cancel()
	<-detDone
	st := det.Stats()
	if st.Violations > 0 {
		vs := det.Violations()
		return ScalingRow{}, fmt.Errorf("experiment: fault-free scaling run reported %d violations (first: %v)",
			st.Violations, vs[0])
	}
	row := ScalingRow{
		Monitors:  monitors,
		HoldWorld: hold,
		Elapsed:   elapsed,
		Events:    db.Total(),
		Checks:    st.Checks,
	}
	if s := elapsed.Seconds(); s > 0 {
		row.EventsPerSec = float64(row.Events) / s
	}
	return row, nil
}

// ScalingTable renders the sweep with one row per (monitors, mode) and
// the events/sec trajectory column.
func ScalingTable(rows []ScalingRow) *Table {
	t := NewTable("monitors", "checkpoint", "elapsed", "events", "checks", "events/sec")
	for _, r := range rows {
		mode := "hold-world"
		if !r.HoldWorld {
			mode = "per-monitor"
		}
		t.AddRow(fmt.Sprint(r.Monitors), mode, r.Elapsed.Round(time.Microsecond).String(),
			fmt.Sprint(r.Events), fmt.Sprint(r.Checks), FormatEventsPerSec(r.EventsPerSec))
	}
	return t
}

// FormatEventsPerSec renders a throughput figure compactly (e.g.
// "1.25M", "830k").
func FormatEventsPerSec(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.0fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}
