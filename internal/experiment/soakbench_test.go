package experiment

import "testing"

func TestRunSoakBenchShape(t *testing.T) {
	t.Parallel()
	cfg := SoakBenchConfig{
		Monitors:      4,
		SegmentEvents: 64,
		MaxFileBytes:  4 << 10,
		ChunkEvents:   256,
		Backlogs:      []int{2048, 4096},
		RetainFrac:    0.5,
		Repeats:       1,
	}
	rows, err := RunSoakBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Backlog != 2048 || rows[1].Backlog != 4096 {
		t.Fatalf("rows = %+v, want one per backlog", rows)
	}
	for _, r := range rows {
		if r.EventsDropped == 0 {
			t.Fatalf("backlog %d: retention dropped nothing: %+v", r.Backlog, r)
		}
		if r.EventsOut != int64(r.Backlog)-r.EventsDropped {
			t.Fatalf("backlog %d: out %d + dropped %d != backlog: %+v",
				r.Backlog, r.EventsOut, r.EventsDropped, r)
		}
		if r.BytesReclaimed <= 0 || r.BytesIn <= r.BytesReclaimed {
			t.Fatalf("backlog %d: byte accounting off: %+v", r.Backlog, r)
		}
		if r.FilesIn <= r.FilesOut || r.FilesOut == 0 {
			t.Fatalf("backlog %d: file accounting off: %+v", r.Backlog, r)
		}
		if r.Elapsed <= 0 {
			t.Fatalf("backlog %d: no elapsed time: %+v", r.Backlog, r)
		}
	}
	if SoakBenchTable(rows) == nil {
		t.Fatal("nil table")
	}

	for _, bad := range []SoakBenchConfig{
		{}, // zero
		{Monitors: 4, SegmentEvents: 64, ChunkEvents: 256,
			Backlogs: []int{512}, RetainFrac: 0.5}, // backlog under the 4x floor
		{Monitors: 4, SegmentEvents: 64, ChunkEvents: 256,
			Backlogs: []int{2048}, RetainFrac: 1.0}, // retain-everything frac
	} {
		if _, err := RunSoakBench(bad); err == nil {
			t.Fatalf("bad config accepted: %+v", bad)
		}
	}
}
