package queue

import "time"

// Waiter is one blocked process as the monitor's queues see it: the
// process identifier, the monitor procedure it was executing when it
// blocked, and the instant it joined the queue (for Timer(Pid)).
type Waiter struct {
	Pid   int64
	Proc  string
	Since time.Time
}

// TimedFIFO is a FIFO of Waiters with helpers keyed by Pid. It is the
// concrete type of the entry queue and of every condition queue.
type TimedFIFO struct {
	q FIFO[Waiter]
}

// Len reports the number of waiting processes.
func (t *TimedFIFO) Len() int { return t.q.Len() }

// Empty reports whether no process waits.
func (t *TimedFIFO) Empty() bool { return t.q.Empty() }

// Push enqueues pid (executing proc) at instant now.
func (t *TimedFIFO) Push(pid int64, proc string, now time.Time) {
	t.q.PushBack(Waiter{Pid: pid, Proc: proc, Since: now})
}

// Pop dequeues the longest-waiting process.
func (t *TimedFIFO) Pop() (Waiter, bool) { return t.q.PopFront() }

// Peek returns the head waiter without dequeuing.
func (t *TimedFIFO) Peek() (Waiter, bool) { return t.q.Front() }

// Remove removes the first waiter with the given pid, preserving order
// of the rest. It reports whether such a waiter existed.
func (t *TimedFIFO) Remove(pid int64) (Waiter, bool) {
	return t.q.RemoveFunc(func(w Waiter) bool { return w.Pid == pid })
}

// Contains reports whether some waiter has the given pid.
func (t *TimedFIFO) Contains(pid int64) bool {
	for i := 0; i < t.q.Len(); i++ {
		w, _ := t.q.At(i)
		if w.Pid == pid {
			return true
		}
	}
	return false
}

// Pids returns the queued pids head-first.
func (t *TimedFIFO) Pids() []int64 {
	ws := t.q.Snapshot()
	out := make([]int64, len(ws))
	for i, w := range ws {
		out[i] = w.Pid
	}
	return out
}

// Snapshot returns the queued waiters head-first.
func (t *TimedFIFO) Snapshot() []Waiter { return t.q.Snapshot() }

// Oldest returns the Since instant of the head waiter; ok is false when
// the queue is empty. The detector uses it to bound Timer(Pid) checks.
func (t *TimedFIFO) Oldest() (time.Time, bool) {
	w, ok := t.q.Front()
	if !ok {
		return time.Time{}, false
	}
	return w.Since, true
}

// Clear removes all waiters.
func (t *TimedFIFO) Clear() { t.q.Clear() }
