package queue

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestFIFOPushPopOrder(t *testing.T) {
	t.Parallel()
	var q FIFO[int]
	for i := 0; i < 100; i++ {
		q.PushBack(i)
	}
	for i := 0; i < 100; i++ {
		v, ok := q.PopFront()
		if !ok || v != i {
			t.Fatalf("PopFront = %d,%v, want %d,true", v, ok, i)
		}
	}
	if _, ok := q.PopFront(); ok {
		t.Fatal("PopFront on empty queue reported ok")
	}
}

func TestFIFOEmptyAccessors(t *testing.T) {
	t.Parallel()
	var q FIFO[string]
	if !q.Empty() || q.Len() != 0 {
		t.Fatalf("zero FIFO: Empty=%v Len=%d, want true,0", q.Empty(), q.Len())
	}
	if _, ok := q.Front(); ok {
		t.Fatal("Front on empty queue reported ok")
	}
	if _, ok := q.At(0); ok {
		t.Fatal("At(0) on empty queue reported ok")
	}
}

func TestFIFOWrapAround(t *testing.T) {
	t.Parallel()
	var q FIFO[int]
	// Force the head to travel around the ring several times.
	for round := 0; round < 10; round++ {
		for i := 0; i < 7; i++ {
			q.PushBack(round*7 + i)
		}
		for i := 0; i < 7; i++ {
			v, ok := q.PopFront()
			if !ok || v != round*7+i {
				t.Fatalf("round %d: PopFront = %d,%v, want %d", round, v, ok, round*7+i)
			}
		}
	}
}

func TestFIFOAt(t *testing.T) {
	t.Parallel()
	var q FIFO[int]
	for i := 0; i < 5; i++ {
		q.PushBack(i * 10)
	}
	q.PopFront() // head now at element 10
	for i := 0; i < 4; i++ {
		v, ok := q.At(i)
		if !ok || v != (i+1)*10 {
			t.Fatalf("At(%d) = %d,%v, want %d", i, v, ok, (i+1)*10)
		}
	}
	if _, ok := q.At(4); ok {
		t.Fatal("At(len) reported ok")
	}
	if _, ok := q.At(-1); ok {
		t.Fatal("At(-1) reported ok")
	}
}

func TestFIFORemoveFuncMiddle(t *testing.T) {
	t.Parallel()
	var q FIFO[int]
	for i := 0; i < 6; i++ {
		q.PushBack(i)
	}
	v, ok := q.RemoveFunc(func(x int) bool { return x == 3 })
	if !ok || v != 3 {
		t.Fatalf("RemoveFunc = %d,%v, want 3,true", v, ok)
	}
	want := []int{0, 1, 2, 4, 5}
	got := q.Snapshot()
	if len(got) != len(want) {
		t.Fatalf("Snapshot = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Snapshot = %v, want %v", got, want)
		}
	}
}

func TestFIFORemoveFuncAbsent(t *testing.T) {
	t.Parallel()
	var q FIFO[int]
	q.PushBack(1)
	if _, ok := q.RemoveFunc(func(x int) bool { return x == 9 }); ok {
		t.Fatal("RemoveFunc reported ok for absent element")
	}
	if q.Len() != 1 {
		t.Fatalf("Len = %d after failed remove, want 1", q.Len())
	}
}

func TestFIFORemoveFuncAcrossWrap(t *testing.T) {
	t.Parallel()
	var q FIFO[int]
	for i := 0; i < 8; i++ {
		q.PushBack(i)
	}
	for i := 0; i < 6; i++ {
		q.PopFront()
	}
	for i := 8; i < 13; i++ { // these wrap around the internal buffer
		q.PushBack(i)
	}
	if _, ok := q.RemoveFunc(func(x int) bool { return x == 9 }); !ok {
		t.Fatal("RemoveFunc failed across wrap")
	}
	want := []int{6, 7, 8, 10, 11, 12}
	got := q.Snapshot()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Snapshot = %v, want %v", got, want)
		}
	}
}

func TestFIFOClear(t *testing.T) {
	t.Parallel()
	var q FIFO[int]
	for i := 0; i < 20; i++ {
		q.PushBack(i)
	}
	q.Clear()
	if !q.Empty() {
		t.Fatal("queue not empty after Clear")
	}
	q.PushBack(42)
	if v, _ := q.Front(); v != 42 {
		t.Fatalf("Front after Clear+Push = %d, want 42", v)
	}
}

// TestFIFOQuickAgainstSlice model-checks the ring buffer against a
// plain slice under random operation sequences.
func TestFIFOQuickAgainstSlice(t *testing.T) {
	t.Parallel()
	f := func(seed int64, nOps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var q FIFO[int]
		var model []int
		for op := 0; op < int(nOps)+20; op++ {
			switch rng.Intn(4) {
			case 0, 1: // push (biased so the queue actually grows)
				v := rng.Int()
				q.PushBack(v)
				model = append(model, v)
			case 2: // pop
				v, ok := q.PopFront()
				if len(model) == 0 {
					if ok {
						return false
					}
					continue
				}
				if !ok || v != model[0] {
					return false
				}
				model = model[1:]
			case 3: // remove a random present value
				if len(model) == 0 {
					continue
				}
				target := model[rng.Intn(len(model))]
				v, ok := q.RemoveFunc(func(x int) bool { return x == target })
				if !ok {
					return false
				}
				for i, m := range model {
					if m == v {
						model = append(model[:i:i], model[i+1:]...)
						break
					}
				}
			}
			if q.Len() != len(model) {
				return false
			}
		}
		got := q.Snapshot()
		if len(got) != len(model) {
			return false
		}
		for i := range model {
			if got[i] != model[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTimedFIFOBasics(t *testing.T) {
	t.Parallel()
	var q TimedFIFO
	t0 := time.Date(2001, 7, 1, 0, 0, 0, 0, time.UTC)
	q.Push(1, "Send", t0)
	q.Push(2, "Receive", t0.Add(time.Second))
	if q.Len() != 2 || q.Empty() {
		t.Fatalf("Len=%d Empty=%v, want 2,false", q.Len(), q.Empty())
	}
	if !q.Contains(2) || q.Contains(3) {
		t.Fatal("Contains gave wrong answer")
	}
	since, ok := q.Oldest()
	if !ok || !since.Equal(t0) {
		t.Fatalf("Oldest = %v,%v, want %v,true", since, ok, t0)
	}
	w, ok := q.Pop()
	if !ok || w.Pid != 1 || w.Proc != "Send" {
		t.Fatalf("Pop = %+v, want pid 1 Send", w)
	}
	pids := q.Pids()
	if len(pids) != 1 || pids[0] != 2 {
		t.Fatalf("Pids = %v, want [2]", pids)
	}
}

func TestTimedFIFORemoveByPid(t *testing.T) {
	t.Parallel()
	var q TimedFIFO
	now := time.Now()
	for pid := int64(1); pid <= 4; pid++ {
		q.Push(pid, "P", now)
	}
	w, ok := q.Remove(3)
	if !ok || w.Pid != 3 {
		t.Fatalf("Remove(3) = %+v,%v", w, ok)
	}
	if _, ok := q.Remove(3); ok {
		t.Fatal("Remove(3) twice reported ok")
	}
	want := []int64{1, 2, 4}
	got := q.Pids()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Pids = %v, want %v", got, want)
		}
	}
}

func TestTimedFIFOPeekDoesNotConsume(t *testing.T) {
	t.Parallel()
	var q TimedFIFO
	q.Push(7, "Acquire", time.Now())
	w1, ok1 := q.Peek()
	w2, ok2 := q.Peek()
	if !ok1 || !ok2 || w1.Pid != 7 || w2.Pid != 7 || q.Len() != 1 {
		t.Fatal("Peek consumed the head")
	}
}

func TestTimedFIFOClearAndOldestEmpty(t *testing.T) {
	t.Parallel()
	var q TimedFIFO
	q.Push(1, "P", time.Now())
	q.Clear()
	if _, ok := q.Oldest(); ok {
		t.Fatal("Oldest on empty queue reported ok")
	}
	if _, ok := q.Peek(); ok {
		t.Fatal("Peek on empty queue reported ok")
	}
}
