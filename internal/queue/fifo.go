// Package queue provides the FIFO queues underlying monitor scheduling.
//
// Hoare monitors are specified over queues: the entry queue EQ holds
// processes blocked on Enter, and each condition variable owns a
// condition queue CQ[c] of processes blocked on Wait(c). The fault
// detector additionally needs to know *when* each process was enqueued
// (the paper's Timer(Pid)), so the monitor uses TimedFIFO rather than a
// bare list.
package queue

// FIFO is a growable ring-buffer queue. The zero value is an empty
// queue ready for use. FIFO is not safe for concurrent use; callers
// (the monitor, the checking lists) hold their own locks.
type FIFO[T any] struct {
	buf   []T
	head  int
	count int
}

// Len reports the number of queued elements.
func (q *FIFO[T]) Len() int { return q.count }

// Empty reports whether the queue has no elements.
func (q *FIFO[T]) Empty() bool { return q.count == 0 }

// PushBack appends v at the tail.
func (q *FIFO[T]) PushBack(v T) {
	q.grow(1)
	q.buf[(q.head+q.count)%len(q.buf)] = v
	q.count++
}

// PopFront removes and returns the head element. The second result is
// false when the queue is empty.
func (q *FIFO[T]) PopFront() (T, bool) {
	var zero T
	if q.count == 0 {
		return zero, false
	}
	v := q.buf[q.head]
	q.buf[q.head] = zero // release for GC
	q.head = (q.head + 1) % len(q.buf)
	q.count--
	return v, true
}

// Front returns the head element without removing it. The second
// result is false when the queue is empty.
func (q *FIFO[T]) Front() (T, bool) {
	var zero T
	if q.count == 0 {
		return zero, false
	}
	return q.buf[q.head], true
}

// At returns the i-th element from the head (0 = head). It reports
// false when i is out of range.
func (q *FIFO[T]) At(i int) (T, bool) {
	var zero T
	if i < 0 || i >= q.count {
		return zero, false
	}
	return q.buf[(q.head+i)%len(q.buf)], true
}

// RemoveFunc removes the first element (from the head) for which match
// returns true, preserving the order of the rest. It reports whether an
// element was removed.
func (q *FIFO[T]) RemoveFunc(match func(T) bool) (T, bool) {
	var zero T
	for i := 0; i < q.count; i++ {
		idx := (q.head + i) % len(q.buf)
		if !match(q.buf[idx]) {
			continue
		}
		v := q.buf[idx]
		// Shift the tail segment left by one to close the gap.
		for j := i; j < q.count-1; j++ {
			from := (q.head + j + 1) % len(q.buf)
			to := (q.head + j) % len(q.buf)
			q.buf[to] = q.buf[from]
		}
		q.buf[(q.head+q.count-1)%len(q.buf)] = zero
		q.count--
		return v, true
	}
	return zero, false
}

// Snapshot returns the queued elements head-first in a freshly
// allocated slice, so callers may retain it without aliasing the queue.
func (q *FIFO[T]) Snapshot() []T {
	out := make([]T, 0, q.count)
	for i := 0; i < q.count; i++ {
		out = append(out, q.buf[(q.head+i)%len(q.buf)])
	}
	return out
}

// Clear removes all elements.
func (q *FIFO[T]) Clear() {
	var zero T
	for i := 0; i < q.count; i++ {
		q.buf[(q.head+i)%len(q.buf)] = zero
	}
	q.head, q.count = 0, 0
}

func (q *FIFO[T]) grow(n int) {
	if q.count+n <= len(q.buf) {
		return
	}
	newCap := 2 * len(q.buf)
	if newCap < 8 {
		newCap = 8
	}
	for newCap < q.count+n {
		newCap *= 2
	}
	buf := make([]T, newCap)
	for i := 0; i < q.count; i++ {
		buf[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf = buf
	q.head = 0
}
