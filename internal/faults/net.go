package faults

import (
	"errors"
	"net"
	"sync"
)

// Network fault injection for the fleet-export path (internal/
// export/net): a controllable dialer that wraps every connection it
// hands out, so a test can sever the link mid-stream, black-hole the
// endpoint during a partition, and heal it again — the degraded-
// network conditions the shipper's buffer-and-resume machinery must
// survive. This deliberately lives outside the Kind taxonomy: those
// are the paper's monitor/program faults, injected into monitored
// code; a network fault is injected into the transport under the
// exporter, a different layer with different semantics (a severed
// link must cost no events, only latency).

// ErrPartitioned is the dial/write error while a NetFault is
// partitioned.
var ErrPartitioned = errors.New("faults: network partitioned")

// NetFault is a fault-injecting network control plane. Use Dial as
// the shipper's dial function; then Partition/Heal/CutAfter steer the
// connection's fate from the test. The zero value is not ready — use
// NewNetFault. Safe for concurrent use.
type NetFault struct {
	mu          sync.Mutex
	partitioned bool
	cutAfter    int64 // >0: sever the link after this many more written bytes
	cutArmed    bool
	conns       []*faultConn
	dials       int
	refused     int
	severed     int
}

// NewNetFault returns a healthy fault controller: connections pass
// bytes through untouched until a fault is injected.
func NewNetFault() *NetFault { return &NetFault{} }

// Dial opens a connection through the controller; it has the shape of
// net.Dial so it can slot straight into a shipper's Dial hook. While
// partitioned it refuses immediately with ErrPartitioned — the
// connection-refused shape of a black-holed endpoint, without the
// test paying real dial timeouts.
func (f *NetFault) Dial(network, addr string) (net.Conn, error) {
	f.mu.Lock()
	if f.partitioned {
		f.refused++
		f.mu.Unlock()
		return nil, ErrPartitioned
	}
	f.mu.Unlock()
	c, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	fc := &faultConn{Conn: c, ctl: f}
	f.mu.Lock()
	// A partition that raced the dial wins: the connection is severed
	// before the caller sees it.
	if f.partitioned {
		f.mu.Unlock()
		c.Close()
		return nil, ErrPartitioned
	}
	f.conns = append(f.conns, fc)
	f.dials++
	f.mu.Unlock()
	return fc, nil
}

// Partition severs every live connection and refuses new dials until
// Heal. The injected failure is abrupt — closed sockets, not graceful
// shutdowns — which is what a real partition looks like from the
// endpoints.
func (f *NetFault) Partition() {
	f.mu.Lock()
	f.partitioned = true
	conns := f.conns
	f.conns = nil
	f.severed += len(conns)
	f.mu.Unlock()
	for _, c := range conns {
		c.Conn.Close()
	}
}

// Heal lifts the partition: new dials succeed again. Connections
// severed while partitioned stay dead — recovering is the caller's
// job, exactly as on a real network.
func (f *NetFault) Heal() {
	f.mu.Lock()
	f.partitioned = false
	f.mu.Unlock()
}

// CutAfter arms a one-shot flaky-link fault: after n more bytes have
// been written across the controller's connections, the writing
// connection is severed mid-stream — so a frame can be torn at any
// byte boundary the test chooses. Unlike Partition, subsequent dials
// succeed; the fault models a dropped connection, not a dead network.
func (f *NetFault) CutAfter(n int64) {
	f.mu.Lock()
	f.cutAfter = n
	f.cutArmed = true
	f.mu.Unlock()
}

// Stats reports the controller's activity: successful dials, dials
// refused by a partition, and connections severed by faults.
func (f *NetFault) Stats() (dials, refused, severed int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dials, f.refused, f.severed
}

// consume accounts n written bytes against an armed cut; it reports
// whether the connection must be severed, and how many of the n bytes
// may still be written first.
func (f *NetFault) consume(n int) (allow int, sever bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.cutArmed {
		return n, false
	}
	if int64(n) < f.cutAfter {
		f.cutAfter -= int64(n)
		return n, false
	}
	allow = int(f.cutAfter)
	f.cutArmed = false
	f.cutAfter = 0
	f.severed++
	return allow, true
}

// faultConn wraps a real connection, consulting the controller on
// every write.
type faultConn struct {
	net.Conn
	ctl  *NetFault
	dead bool
	mu   sync.Mutex
}

func (c *faultConn) Write(b []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead {
		return 0, net.ErrClosed
	}
	allow, sever := c.ctl.consume(len(b))
	if !sever {
		return c.Conn.Write(b)
	}
	n := 0
	if allow > 0 {
		// Land the allowed prefix so the far side observes a torn frame,
		// not a clean boundary.
		n, _ = c.Conn.Write(b[:allow])
	}
	c.dead = true
	c.Conn.Close()
	if n < len(b) {
		return n, net.ErrClosed
	}
	return n, nil
}
