// Package faults enumerates the paper's taxonomy of twenty-one
// concurrency-control faults (§2.2) and provides the Injector used by
// the robustness experiment (§4): each fault kind maps to a deviation
// in the monitor protocol (via monitor.Hooks), a deliberate bug in the
// monitor procedures, or a misbehaving user process.
package faults

import "fmt"

// Level is the taxonomy level of a fault (§2.2 I/II/III).
type Level int

// The three taxonomy levels.
const (
	// LevelImplementation faults live in the monitor primitives
	// themselves (Enter/Wait/Signal-Exit protocol errors).
	LevelImplementation Level = iota + 1
	// LevelProcedure faults are monitor procedure operations that leave
	// shared-resource state inconsistent (coordinator integrity).
	LevelProcedure
	// LevelUser faults are logic errors in user processes (calling-order
	// violations on allocator monitors).
	LevelUser
)

// String names the level as in the paper.
func (l Level) String() string {
	switch l {
	case LevelImplementation:
		return "implementation"
	case LevelProcedure:
		return "monitor-procedure"
	case LevelUser:
		return "user-process"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Kind identifies one fault from the taxonomy.
type Kind int

// The twenty-one fault kinds of §2.2, in the paper's order.
const (
	// EnterMutexViolation — I.a.1: two or more processes have entered
	// the monitor at the same time.
	EnterMutexViolation Kind = iota + 1
	// EnterLostProcess — I.a.2: the requesting process is neither queued
	// nor admitted.
	EnterLostProcess
	// EnterNoResponse — I.a.3: the process is queued indefinitely, or
	// blocked although no process is inside the monitor.
	EnterNoResponse
	// EnterNotObserved — I.a.4: a process runs inside the monitor
	// without having invoked Enter.
	EnterNotObserved
	// WaitNoBlock — I.b.1: the caller is not blocked and keeps running
	// inside the monitor.
	WaitNoBlock
	// WaitLostProcess — I.b.2: the caller is neither queued on the
	// condition nor running.
	WaitLostProcess
	// WaitNoHandoff — I.b.3: no entry-queue waiter is resumed when the
	// caller blocks.
	WaitNoHandoff
	// WaitEntryStarved — I.b.4: a specific entry-queue waiter is never
	// resumed.
	WaitEntryStarved
	// WaitMutexViolation — I.b.5: more than one entry-queue waiter is
	// resumed when the caller blocks.
	WaitMutexViolation
	// WaitMonitorNotReleased — I.b.6: the caller blocks without
	// releasing the monitor.
	WaitMonitorNotReleased
	// SignalNoResume — I.c.1: no waiter (condition or entry) is resumed
	// when the caller exits.
	SignalNoResume
	// SignalMonitorNotReleased — I.c.2: the caller exits but the monitor
	// stays held.
	SignalMonitorNotReleased
	// SignalMutexViolation — I.c.3: more than one process is resumed
	// when the caller exits.
	SignalMutexViolation
	// InternalTermination — I.d: a process terminates inside the monitor
	// without ever exiting.
	InternalTermination
	// SendSpuriousDelay — II.a: Send is delayed although the buffer is
	// not full (or not delayed although it is; see SendOverflow).
	SendSpuriousDelay
	// ReceiveSpuriousDelay — II.b: Receive is delayed although the
	// buffer is not empty (or not delayed although it is; see
	// ReceiveOvertake).
	ReceiveSpuriousDelay
	// ReceiveOvertake — II.c: successful Receives exceed successful
	// Sends (a receive completed on an empty buffer).
	ReceiveOvertake
	// SendOverflow — II.d: successful Sends exceed Rmax plus successful
	// Receives (a send completed on a full buffer).
	SendOverflow
	// ReleaseWithoutAcquire — III.a: a process releases a resource it
	// never acquired.
	ReleaseWithoutAcquire
	// ResourceNeverReleased — III.b: a process never releases an
	// acquired resource.
	ResourceNeverReleased
	// SelfDeadlock — III.c: a process re-acquires a resource it already
	// holds.
	SelfDeadlock
)

// KindCount is the number of fault kinds in the taxonomy.
const KindCount = int(SelfDeadlock)

// info is the static metadata of one fault kind.
type info struct {
	name  string
	code  string // the paper's taxonomy index
	level Level
	desc  string
}

var kindInfo = map[Kind]info{
	EnterMutexViolation:      {"enter-mutex-violation", "I.a.1", LevelImplementation, "mutual exclusion not guaranteed on Enter"},
	EnterLostProcess:         {"enter-lost-process", "I.a.2", LevelImplementation, "requesting process lost (neither queued nor admitted)"},
	EnterNoResponse:          {"enter-no-response", "I.a.3", LevelImplementation, "requesting process receives no response"},
	EnterNotObserved:         {"enter-not-observed", "I.a.4", LevelImplementation, "process inside monitor without invoking Enter"},
	WaitNoBlock:              {"wait-no-block", "I.b.1", LevelImplementation, "synchronisation not guaranteed: Wait does not block"},
	WaitLostProcess:          {"wait-lost-process", "I.b.2", LevelImplementation, "waiting process lost (neither queued nor running)"},
	WaitNoHandoff:            {"wait-no-handoff", "I.b.3", LevelImplementation, "entry waiters not resumed on Wait"},
	WaitEntryStarved:         {"wait-entry-starved", "I.b.4", LevelImplementation, "entry waiter starved (never resumed)"},
	WaitMutexViolation:       {"wait-mutex-violation", "I.b.5", LevelImplementation, "mutual exclusion not guaranteed on Wait handoff"},
	WaitMonitorNotReleased:   {"wait-monitor-not-released", "I.b.6", LevelImplementation, "monitor not released when caller blocks"},
	SignalNoResume:           {"signal-no-resume", "I.c.1", LevelImplementation, "waiting processes not resumed on Signal-Exit"},
	SignalMonitorNotReleased: {"signal-monitor-not-released", "I.c.2", LevelImplementation, "monitor not released on Signal-Exit"},
	SignalMutexViolation:     {"signal-mutex-violation", "I.c.3", LevelImplementation, "mutual exclusion not guaranteed on Signal-Exit"},
	InternalTermination:      {"internal-termination", "I.d", LevelImplementation, "process terminated inside the monitor"},
	SendSpuriousDelay:        {"send-spurious-delay", "II.a", LevelProcedure, "Send delayed although the buffer is not full"},
	ReceiveSpuriousDelay:     {"receive-spurious-delay", "II.b", LevelProcedure, "Receive delayed although the buffer is not empty"},
	ReceiveOvertake:          {"receive-overtake", "II.c", LevelProcedure, "successful Receives exceed successful Sends"},
	SendOverflow:             {"send-overflow", "II.d", LevelProcedure, "successful Sends exceed capacity plus Receives"},
	ReleaseWithoutAcquire:    {"release-without-acquire", "III.a", LevelUser, "resource released before being acquired"},
	ResourceNeverReleased:    {"resource-never-released", "III.b", LevelUser, "acquired resource never released"},
	SelfDeadlock:             {"self-deadlock", "III.c", LevelUser, "resource re-acquired while already held"},
}

// String returns the kebab-case fault name.
func (k Kind) String() string {
	if in, ok := kindInfo[k]; ok {
		return in.name
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Code returns the paper's taxonomy index, e.g. "I.a.1".
func (k Kind) Code() string {
	if in, ok := kindInfo[k]; ok {
		return in.code
	}
	return "?"
}

// Level returns the taxonomy level.
func (k Kind) Level() Level {
	if in, ok := kindInfo[k]; ok {
		return in.level
	}
	return 0
}

// Description returns the one-line fault description from §2.2.
func (k Kind) Description() string {
	if in, ok := kindInfo[k]; ok {
		return in.desc
	}
	return "unknown fault kind"
}

// Valid reports whether k is in the taxonomy.
func (k Kind) Valid() bool {
	_, ok := kindInfo[k]
	return ok
}

// AllKinds returns the taxonomy in the paper's order.
func AllKinds() []Kind {
	out := make([]Kind, 0, KindCount)
	for k := EnterMutexViolation; k <= SelfDeadlock; k++ {
		out = append(out, k)
	}
	return out
}

// KindsAtLevel returns the kinds on one taxonomy level, in order.
func KindsAtLevel(l Level) []Kind {
	var out []Kind
	for _, k := range AllKinds() {
		if k.Level() == l {
			out = append(out, k)
		}
	}
	return out
}
