package faults

import (
	"testing"

	"robustmon/internal/monitor"
)

func TestTaxonomyHasTwentyOneKinds(t *testing.T) {
	t.Parallel()
	all := AllKinds()
	if len(all) != 21 || KindCount != 21 {
		t.Fatalf("taxonomy has %d kinds (KindCount=%d), want 21", len(all), KindCount)
	}
	seenCodes := make(map[string]bool)
	for _, k := range all {
		if !k.Valid() {
			t.Errorf("kind %d invalid", int(k))
		}
		if k.Code() == "?" || k.Description() == "unknown fault kind" {
			t.Errorf("kind %v missing metadata", k)
		}
		if seenCodes[k.Code()] {
			t.Errorf("duplicate taxonomy code %s", k.Code())
		}
		seenCodes[k.Code()] = true
	}
}

func TestLevelPartition(t *testing.T) {
	t.Parallel()
	impl := KindsAtLevel(LevelImplementation)
	procL := KindsAtLevel(LevelProcedure)
	user := KindsAtLevel(LevelUser)
	if len(impl) != 14 {
		t.Errorf("implementation level has %d kinds, want 14", len(impl))
	}
	if len(procL) != 4 {
		t.Errorf("procedure level has %d kinds, want 4", len(procL))
	}
	if len(user) != 3 {
		t.Errorf("user level has %d kinds, want 3", len(user))
	}
	if len(impl)+len(procL)+len(user) != 21 {
		t.Error("levels do not partition the taxonomy")
	}
}

func TestKindStringAndCodes(t *testing.T) {
	t.Parallel()
	cases := []struct {
		k    Kind
		name string
		code string
		lvl  Level
	}{
		{EnterMutexViolation, "enter-mutex-violation", "I.a.1", LevelImplementation},
		{InternalTermination, "internal-termination", "I.d", LevelImplementation},
		{SendOverflow, "send-overflow", "II.d", LevelProcedure},
		{SelfDeadlock, "self-deadlock", "III.c", LevelUser},
	}
	for _, tc := range cases {
		if tc.k.String() != tc.name || tc.k.Code() != tc.code || tc.k.Level() != tc.lvl {
			t.Errorf("kind %d = (%s,%s,%v), want (%s,%s,%v)",
				int(tc.k), tc.k.String(), tc.k.Code(), tc.k.Level(), tc.name, tc.code, tc.lvl)
		}
	}
	if Kind(99).String() != "Kind(99)" || Kind(99).Valid() {
		t.Error("unknown kind not handled")
	}
	if Level(9).String() != "Level(9)" {
		t.Error("unknown level not handled")
	}
}

func TestInjectorDisarmedByDefault(t *testing.T) {
	t.Parallel()
	i := NewInjector(WaitNoBlock)
	h := i.Hooks()
	if got := h.Wait(1, "P", "c"); got != monitor.WaitDefault {
		t.Fatalf("disarmed injector deviated: %v", got)
	}
	if i.Fired() != 0 {
		t.Fatalf("Fired = %d, want 0", i.Fired())
	}
}

func TestInjectorFiresOncePerArming(t *testing.T) {
	t.Parallel()
	i := NewInjector(WaitNoBlock)
	i.Arm()
	h := i.Hooks()
	if got := h.Wait(1, "P", "c"); got != monitor.WaitNoBlock {
		t.Fatalf("armed injector did not deviate: %v", got)
	}
	if got := h.Wait(1, "P", "c"); got != monitor.WaitDefault {
		t.Fatalf("once-only injector deviated twice: %v", got)
	}
	if i.Fired() != 1 {
		t.Fatalf("Fired = %d, want 1", i.Fired())
	}
	i.Arm() // re-arming resets the budget
	if got := h.Wait(1, "P", "c"); got != monitor.WaitNoBlock {
		t.Fatalf("re-armed injector did not deviate: %v", got)
	}
}

func TestInjectorFireEveryTime(t *testing.T) {
	t.Parallel()
	i := NewInjector(SignalNoResume, FireEveryTime())
	i.Arm()
	h := i.Hooks()
	for n := 0; n < 3; n++ {
		if got := h.SignalExit(1, "P", "c"); got != monitor.SignalNoWake {
			t.Fatalf("firing %d: got %v", n, got)
		}
	}
	if i.Fired() != 3 {
		t.Fatalf("Fired = %d, want 3", i.Fired())
	}
}

func TestInjectorDisarmStopsFiring(t *testing.T) {
	t.Parallel()
	i := NewInjector(EnterLostProcess, FireEveryTime())
	i.Arm()
	i.Disarm()
	h := i.Hooks()
	if got := h.Enter(1, "P", false); got != monitor.EnterDefault {
		t.Fatalf("disarmed injector deviated: %v", got)
	}
}

func TestEnterMutexViolationNeedsOccupancy(t *testing.T) {
	t.Parallel()
	i := NewInjector(EnterMutexViolation)
	i.Arm()
	h := i.Hooks()
	if got := h.Enter(1, "P", false); got != monitor.EnterDefault {
		t.Fatalf("deviated on a free monitor: %v", got)
	}
	if got := h.Enter(1, "P", true); got != monitor.EnterForceGrant {
		t.Fatalf("did not deviate on an occupied monitor: %v", got)
	}
}

func TestEnterNoResponseNeedsFreeMonitor(t *testing.T) {
	t.Parallel()
	i := NewInjector(EnterNoResponse)
	i.Arm()
	h := i.Hooks()
	if got := h.Enter(1, "P", true); got != monitor.EnterDefault {
		t.Fatalf("deviated on an occupied monitor: %v", got)
	}
	if got := h.Enter(1, "P", false); got != monitor.EnterForceBlock {
		t.Fatalf("did not deviate on a free monitor: %v", got)
	}
}

func TestVictimTargeting(t *testing.T) {
	t.Parallel()
	i := NewInjector(WaitEntryStarved, FireEveryTime())
	i.Arm()
	i.SetVictim(7)
	h := i.Hooks()
	if h.SkipHandoff(3) {
		t.Fatal("skipped a non-victim")
	}
	if !h.SkipHandoff(7) {
		t.Fatal("did not skip the victim")
	}
	if i.Fired() == 0 {
		t.Fatal("victim skip not counted as firing")
	}
}

func TestHookMapping(t *testing.T) {
	t.Parallel()
	hookKinds := map[Kind]bool{
		EnterMutexViolation: true, EnterLostProcess: true, EnterNoResponse: true,
		WaitNoBlock: true, WaitLostProcess: true, WaitNoHandoff: true,
		WaitEntryStarved: true, WaitMutexViolation: true, WaitMonitorNotReleased: true,
		SignalNoResume: true, SignalMonitorNotReleased: true, SignalMutexViolation: true,
	}
	for _, k := range AllKinds() {
		h := NewInjector(k).Hooks()
		hasHook := h.Enter != nil || h.Wait != nil || h.SignalExit != nil || h.SkipHandoff != nil
		if hasHook != hookKinds[k] {
			t.Errorf("kind %v: hook presence = %v, want %v", k, hasHook, hookKinds[k])
		}
	}
}

func TestBufferBugMapping(t *testing.T) {
	t.Parallel()
	cases := map[Kind]BufferBug{
		SendSpuriousDelay:    BufSendSpuriousDelay,
		ReceiveSpuriousDelay: BufReceiveSpuriousDelay,
		ReceiveOvertake:      BufReceiveSkipEmptyCheck,
		SendOverflow:         BufSendSkipFullCheck,
		WaitNoBlock:          BufNone,
	}
	for k, want := range cases {
		if got := NewInjector(k).BufferBug(); got != want {
			t.Errorf("kind %v BufferBug = %v, want %v", k, got, want)
		}
	}
}

func TestUserBugMapping(t *testing.T) {
	t.Parallel()
	cases := map[Kind]UserBug{
		ReleaseWithoutAcquire: UserReleaseFirst,
		ResourceNeverReleased: UserNeverRelease,
		SelfDeadlock:          UserDoubleAcquire,
		SendOverflow:          UserNone,
	}
	for k, want := range cases {
		if got := NewInjector(k).UserBug(); got != want {
			t.Errorf("kind %v UserBug = %v, want %v", k, got, want)
		}
	}
}

func TestWorkloadPredicates(t *testing.T) {
	t.Parallel()
	if !NewInjector(EnterNotObserved).WantsBareEntry() {
		t.Error("EnterNotObserved should want bare entry")
	}
	if !NewInjector(InternalTermination).WantsTermination() {
		t.Error("InternalTermination should want termination")
	}
	if NewInjector(WaitNoBlock).WantsBareEntry() || NewInjector(WaitNoBlock).WantsTermination() {
		t.Error("unrelated kind triggered workload predicates")
	}
}

func TestTryFireRespectsArming(t *testing.T) {
	t.Parallel()
	i := NewInjector(SendOverflow)
	if i.TryFire() {
		t.Fatal("TryFire fired while disarmed")
	}
	i.Arm()
	if !i.TryFire() {
		t.Fatal("TryFire did not fire while armed")
	}
	if i.TryFire() {
		t.Fatal("TryFire exceeded once-only budget")
	}
}
