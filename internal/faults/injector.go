package faults

import (
	"sync"
	"sync/atomic"

	"robustmon/internal/monitor"
)

// BufferBug selects a deliberate bug in a bounded-buffer implementation
// (the monitor-procedure-level faults, §2.2 II). The boundedbuffer app
// consults it on every Send/Receive.
type BufferBug int

// Buffer bugs.
const (
	// BufNone is a correct buffer.
	BufNone BufferBug = iota
	// BufSendSpuriousDelay makes Send wait although the buffer has room
	// — fault II.a.
	BufSendSpuriousDelay
	// BufReceiveSpuriousDelay makes Receive wait although the buffer has
	// items — fault II.b.
	BufReceiveSpuriousDelay
	// BufReceiveSkipEmptyCheck makes Receive proceed on an empty buffer
	// — fault II.c (r overtakes s).
	BufReceiveSkipEmptyCheck
	// BufSendSkipFullCheck makes Send proceed on a full buffer — fault
	// II.d (s exceeds r+Rmax).
	BufSendSkipFullCheck
)

// UserBug selects a misbehaving user process against an allocator
// monitor (the user-process-level faults, §2.2 III).
type UserBug int

// User bugs.
const (
	// UserNone is a correct user process.
	UserNone UserBug = iota
	// UserReleaseFirst releases before acquiring — fault III.a.
	UserReleaseFirst
	// UserNeverRelease acquires and never releases — fault III.b.
	UserNeverRelease
	// UserDoubleAcquire acquires twice without releasing — fault III.c.
	UserDoubleAcquire
)

// Injector realises one fault kind. It is safe for concurrent use.
//
// Implementation-level kinds surface as monitor Hooks (attach Hooks()
// to the monitor under test); procedure-level kinds surface as a
// BufferBug; user-level kinds as a UserBug; two kinds
// (EnterNotObserved, InternalTermination) are realised by the workload
// driver itself and surface as the WantsBareEntry / WantsTermination
// predicates.
//
// The injector is disarmed until Arm is called and, by default, fires
// its deviation exactly once per arming so a run contains one fault
// occurrence whose detection can be asserted.
type Injector struct {
	kind  Kind
	every bool // fire on every opportunity instead of once

	mu     sync.Mutex
	armed  bool
	victim int64
	fired  atomic.Int64
}

// InjectorOption configures an Injector.
type InjectorOption func(*Injector)

// FireEveryTime makes the deviation fire on every opportunity while
// armed, instead of once per arming.
func FireEveryTime() InjectorOption {
	return func(i *Injector) { i.every = true }
}

// NewInjector returns a disarmed injector for the given fault kind.
func NewInjector(kind Kind, opts ...InjectorOption) *Injector {
	i := &Injector{kind: kind}
	for _, o := range opts {
		o(i)
	}
	return i
}

// Kind returns the injected fault kind.
func (i *Injector) Kind() Kind { return i.kind }

// Arm enables the deviation (and resets the once-per-arming budget).
func (i *Injector) Arm() {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.armed = true
	i.fired.Store(0)
}

// Disarm disables the deviation.
func (i *Injector) Disarm() {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.armed = false
}

// SetVictim selects the pid targeted by victim-specific kinds
// (WaitEntryStarved starves exactly this process).
func (i *Injector) SetVictim(pid int64) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.victim = pid
}

// Fired reports how many times the deviation actually happened.
func (i *Injector) Fired() int64 { return i.fired.Load() }

// take consumes one firing opportunity. It returns false when disarmed
// or when the once-only budget is spent.
func (i *Injector) take() bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	if !i.armed {
		return false
	}
	if !i.every && i.fired.Load() > 0 {
		return false
	}
	i.fired.Add(1)
	return true
}

// Hooks returns the monitor hooks realising an implementation-level
// kind. For other levels it returns zero hooks (a correct monitor).
func (i *Injector) Hooks() monitor.Hooks {
	switch i.kind {
	case EnterMutexViolation:
		return monitor.Hooks{Enter: func(_ int64, _ string, occupied bool) monitor.EnterAction {
			if occupied && i.take() {
				return monitor.EnterForceGrant
			}
			return monitor.EnterDefault
		}}
	case EnterLostProcess:
		return monitor.Hooks{Enter: func(int64, string, bool) monitor.EnterAction {
			if i.take() {
				return monitor.EnterDrop
			}
			return monitor.EnterDefault
		}}
	case EnterNoResponse:
		return monitor.Hooks{Enter: func(_ int64, _ string, occupied bool) monitor.EnterAction {
			if !occupied && i.take() {
				return monitor.EnterForceBlock
			}
			return monitor.EnterDefault
		}}
	case WaitNoBlock:
		return monitor.Hooks{Wait: func(int64, string, string) monitor.WaitAction {
			if i.take() {
				return monitor.WaitNoBlock
			}
			return monitor.WaitDefault
		}}
	case WaitLostProcess:
		return monitor.Hooks{Wait: func(int64, string, string) monitor.WaitAction {
			if i.take() {
				return monitor.WaitDrop
			}
			return monitor.WaitDefault
		}}
	case WaitNoHandoff:
		return monitor.Hooks{Wait: func(int64, string, string) monitor.WaitAction {
			if i.take() {
				return monitor.WaitNoHandoff
			}
			return monitor.WaitDefault
		}}
	case WaitEntryStarved:
		return monitor.Hooks{SkipHandoff: func(pid int64) bool {
			i.mu.Lock()
			armed, victim := i.armed, i.victim
			i.mu.Unlock()
			if armed && pid == victim {
				i.fired.Add(1)
				return true
			}
			return false
		}}
	case WaitMutexViolation:
		return monitor.Hooks{Wait: func(int64, string, string) monitor.WaitAction {
			if i.take() {
				return monitor.WaitDoubleHandoff
			}
			return monitor.WaitDefault
		}}
	case WaitMonitorNotReleased:
		return monitor.Hooks{Wait: func(int64, string, string) monitor.WaitAction {
			if i.take() {
				return monitor.WaitKeepLock
			}
			return monitor.WaitDefault
		}}
	case SignalNoResume:
		return monitor.Hooks{SignalExit: func(int64, string, string) monitor.SignalAction {
			if i.take() {
				return monitor.SignalNoWake
			}
			return monitor.SignalDefault
		}}
	case SignalMonitorNotReleased:
		return monitor.Hooks{SignalExit: func(int64, string, string) monitor.SignalAction {
			if i.take() {
				return monitor.SignalKeepLock
			}
			return monitor.SignalDefault
		}}
	case SignalMutexViolation:
		return monitor.Hooks{SignalExit: func(int64, string, string) monitor.SignalAction {
			if i.take() {
				return monitor.SignalDoubleWake
			}
			return monitor.SignalDefault
		}}
	default:
		return monitor.Hooks{}
	}
}

// BufferBug returns the buffer bug realising a procedure-level kind
// (BufNone otherwise). The returned value is constant; the buffer app
// must still call TryFire at the faulting site so firing is counted and
// respects arming.
func (i *Injector) BufferBug() BufferBug {
	switch i.kind {
	case SendSpuriousDelay:
		return BufSendSpuriousDelay
	case ReceiveSpuriousDelay:
		return BufReceiveSpuriousDelay
	case ReceiveOvertake:
		return BufReceiveSkipEmptyCheck
	case SendOverflow:
		return BufSendSkipFullCheck
	default:
		return BufNone
	}
}

// UserBug returns the user-process bug realising a user-level kind
// (UserNone otherwise).
func (i *Injector) UserBug() UserBug {
	switch i.kind {
	case ReleaseWithoutAcquire:
		return UserReleaseFirst
	case ResourceNeverReleased:
		return UserNeverRelease
	case SelfDeadlock:
		return UserDoubleAcquire
	default:
		return UserNone
	}
}

// WantsBareEntry reports whether the workload should smuggle a process
// into the monitor without Enter (fault I.a.4).
func (i *Injector) WantsBareEntry() bool { return i.kind == EnterNotObserved }

// WantsTermination reports whether the workload should terminate a
// process inside the monitor (fault I.d).
func (i *Injector) WantsTermination() bool { return i.kind == InternalTermination }

// TryFire consumes a firing opportunity for workload- and app-level
// kinds (bare entry, termination, buffer bugs, user bugs). It returns
// true when the deviation should happen now.
func (i *Injector) TryFire() bool { return i.take() }
