package faults

import (
	"errors"
	"io"
	"net"
	"testing"
)

// echoListener accepts connections and copies every byte back,
// returning the listener's address.
func echoListener(t *testing.T) net.Listener {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func() { defer c.Close(); _, _ = io.Copy(c, c) }()
		}
	}()
	return l
}

func TestNetFaultPassThrough(t *testing.T) {
	t.Parallel()
	l := echoListener(t)
	f := NewNetFault()
	c, err := f.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(c, buf); err != nil || string(buf) != "hello" {
		t.Fatalf("echo = %q, %v; want hello", buf, err)
	}
	if dials, refused, severed := f.Stats(); dials != 1 || refused != 0 || severed != 0 {
		t.Fatalf("stats = %d/%d/%d, want 1/0/0", dials, refused, severed)
	}
}

func TestNetFaultPartitionAndHeal(t *testing.T) {
	t.Parallel()
	l := echoListener(t)
	f := NewNetFault()
	c, err := f.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	f.Partition()
	// The live connection is severed abruptly...
	if _, err := io.ReadFull(c, make([]byte, 1)); err == nil {
		t.Fatal("read from a severed connection succeeded")
	}
	// ...and new dials are refused while the partition holds.
	if _, err := f.Dial("tcp", l.Addr().String()); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("dial during partition: %v, want ErrPartitioned", err)
	}
	f.Heal()
	c2, err := f.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatalf("dial after heal: %v", err)
	}
	c2.Close()
	if dials, refused, severed := f.Stats(); dials != 2 || refused != 1 || severed != 1 {
		t.Fatalf("stats = %d/%d/%d, want 2/1/1", dials, refused, severed)
	}
}

func TestNetFaultCutAfterTearsMidWrite(t *testing.T) {
	t.Parallel()
	l := echoListener(t)
	f := NewNetFault()
	c, err := f.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	f.CutAfter(3)
	n, err := c.Write([]byte("hello"))
	if err == nil || n != 3 {
		t.Fatalf("torn write = %d, %v; want 3 bytes then an error", n, err)
	}
	// The prefix landed: the far side echoes exactly the allowed bytes.
	// (Read through a fresh connection is impossible — the echo conn
	// died — so just assert subsequent writes fail and dials succeed.)
	if _, err := c.Write([]byte("x")); err == nil {
		t.Fatal("write after a cut succeeded")
	}
	c2, err := f.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatalf("redial after cut: %v", err)
	}
	c2.Close()
}
