package export

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"robustmon/internal/obs"
)

// TestRecordCodecByteIdenticalToWAL: encoding a record with the
// standalone codec must produce exactly the bytes WALSink puts on
// disk for the same record — the property fleet replication rests on.
// One encoder exists structurally (appendRecordHeader + the payload
// codecs), but this pins it against refactors that fork the paths.
func TestRecordCodecByteIdenticalToWAL(t *testing.T) {
	t.Parallel()
	seg := Segment{Monitor: "a", Events: tseq("a", 1, 5)}
	marker := historyMarkerSeed()
	health := healthRecordSeed()

	dir := t.TempDir()
	sink, err := NewWALSink(dir, WALConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.WriteSegment(seg); err != nil {
		t.Fatal(err)
	}
	if err := sink.WriteMarker(marker); err != nil {
		t.Fatal(err)
	}
	if err := sink.WriteHealth(health); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	names, err := walFiles(dir)
	if err != nil || len(names) != 1 {
		t.Fatalf("walFiles = %v, %v; want one file", names, err)
	}
	disk, err := os.ReadFile(names[0])
	if err != nil {
		t.Fatal(err)
	}

	var wire []byte
	wire = append(wire, walMagicPrefix[:]...)
	wire = append(wire, walVersionLatest)
	if wire, err = AppendSegmentRecord(wire, seg); err != nil {
		t.Fatal(err)
	}
	if wire, err = AppendMarkerRecord(wire, marker); err != nil {
		t.Fatal(err)
	}
	if wire, err = AppendHealthRecord(wire, health); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(disk, wire) {
		t.Fatalf("standalone codec diverged from the WAL writer:\n disk %d bytes\n wire %d bytes", len(disk), len(wire))
	}
}

// TestRecordRoundTrip: Append*Record → DecodeRecord is the identity
// for each record kind, and Apply routes each kind to the right sink
// method.
func TestRecordRoundTrip(t *testing.T) {
	t.Parallel()
	records := []Record{
		{Segment: &Segment{Monitor: "m1", Events: tseq("m1", 3, 9)}},
		{Marker: ptr(historyMarkerSeed())},
		{Health: ptr(healthRecordSeed())},
	}
	mem := &MemorySink{}
	for _, want := range records {
		b, err := AppendRecord(nil, want)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeRecord(b)
		if err != nil {
			t.Fatalf("DecodeRecord: %v", err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("record round trip changed it:\n got %+v\nwant %+v", got, want)
		}
		if err := got.Apply(mem); err != nil {
			t.Fatalf("Apply: %v", err)
		}
	}
	if got := len(mem.Segments()); got != 1 {
		t.Fatalf("Apply stored %d segments, want 1", got)
	}
	if got := len(mem.Markers()); got != 1 {
		t.Fatalf("Apply stored %d markers, want 1", got)
	}
	if got := len(mem.Healths()); got != 1 {
		t.Fatalf("Apply stored %d health snapshots, want 1", got)
	}

	// Trailing bytes, truncation and emptiness are all errors.
	b, err := AppendRecord(nil, records[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeRecord(append(b, 0)); err == nil {
		t.Fatal("DecodeRecord accepted trailing bytes")
	}
	if _, err := DecodeRecord(b[:len(b)-1]); err == nil {
		t.Fatal("DecodeRecord accepted a truncated record")
	}
	if _, err := DecodeRecord(nil); err == nil {
		t.Fatal("DecodeRecord accepted empty input")
	}
	if _, err := AppendRecord(nil, Record{}); err == nil {
		t.Fatal("AppendRecord accepted an empty record")
	}
	if err := (Record{}).Apply(mem); err == nil {
		t.Fatal("Apply accepted an empty record")
	}
}

func ptr[T any](v T) *T { return &v }

// TestWALOnSealFanOut: every OnSeal consumer sees every seal in
// order, an erroring consumer never starves the ones after it, and
// the error is routed to OnSealError and counted — while the write
// path stays oblivious.
func TestWALOnSealFanOut(t *testing.T) {
	t.Parallel()
	reg := obs.NewRegistry()
	var first, second []FileSummary
	var reported []error
	boom := errors.New("boom")
	sink, err := NewWALSink(t.TempDir(), WALConfig{
		MaxFileBytes: 1, // rotate after every record
		Obs:          reg,
		OnSealError:  func(err error) { reported = append(reported, err) },
		OnSeal: []SealedSink{
			SealedSinkFunc(func(fs FileSummary) error {
				first = append(first, fs)
				return boom
			}),
			nil, // tolerated, skipped
			SealedSinkFunc(func(fs FileSummary) error {
				second = append(second, fs)
				return nil
			}),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 3; i++ {
		if err := sink.WriteSegment(Segment{Monitor: "a", Events: tseq("a", 3*i+1, 3*i+3)}); err != nil {
			t.Fatalf("write %d: the erroring seal consumer leaked into the write path: %v", i, err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if len(first) != 3 || len(second) != 3 {
		t.Fatalf("fan-out fed consumers %d and %d seals, want 3 each", len(first), len(second))
	}
	for i := range first {
		if first[i].Name != second[i].Name {
			t.Fatalf("seal %d: consumers saw different files %q vs %q", i, first[i].Name, second[i].Name)
		}
	}
	if len(reported) != 3 {
		t.Fatalf("OnSealError reported %d errors, want 3", len(reported))
	}
	for _, err := range reported {
		if !errors.Is(err, boom) {
			t.Fatalf("OnSealError got %v, want the consumer's error", err)
		}
	}
	if v, _ := reg.Snapshot().Counter("export_wal_seal_errors_total"); v != 3 {
		t.Fatalf("export_wal_seal_errors_total = %d, want 3", v)
	}
}

// TestWALOnSealAlongsideOnRotate: the deprecated single consumer and
// the fan-out coexist — both see the same summaries.
func TestWALOnSealAlongsideOnRotate(t *testing.T) {
	t.Parallel()
	var rotated, sealed []string
	sink, err := NewWALSink(t.TempDir(), WALConfig{
		MaxFileBytes: 1,
		OnRotate:     func(fs FileSummary) { rotated = append(rotated, fs.Name) },
		OnSeal: []SealedSink{SealedSinkFunc(func(fs FileSummary) error {
			sealed = append(sealed, fs.Name)
			return nil
		})},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 2; i++ {
		if err := sink.WriteSegment(Segment{Monitor: "a", Events: tseq("a", i, i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rotated, sealed) || len(sealed) != 2 {
		t.Fatalf("OnRotate saw %v, OnSeal saw %v; want the same 2 seals", rotated, sealed)
	}
}

// TestTeeSink: every record reaches every capable sink, markers and
// health snapshots skip sinks without the extension, and one sink's
// error doesn't stop delivery to the others.
func TestTeeSink(t *testing.T) {
	t.Parallel()
	a, b := &MemorySink{}, &MemorySink{}
	plain := &countingSegSink{}
	failing := &teeFailSink{}
	tee := NewTeeSink(a, nil, plain, failing, b)

	seg := Segment{Monitor: "m", Events: tseq("m", 1, 2)}
	if err := tee.WriteSegment(seg); err == nil {
		t.Fatal("WriteSegment swallowed the failing sink's error")
	}
	if err := tee.WriteMarker(historyMarkerSeed()); err != nil {
		t.Fatalf("WriteMarker: %v", err)
	}
	if err := tee.WriteHealth(healthRecordSeed()); err != nil {
		t.Fatalf("WriteHealth: %v", err)
	}
	if err := tee.Flush(); err == nil {
		t.Fatal("Flush swallowed the failing sink's error")
	}
	if err := tee.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	for name, m := range map[string]*MemorySink{"a": a, "b": b} {
		if len(m.Segments()) != 1 || len(m.Markers()) != 1 || len(m.Healths()) != 1 {
			t.Fatalf("sink %s got %d/%d/%d records, want 1 of each kind",
				name, len(m.Segments()), len(m.Markers()), len(m.Healths()))
		}
	}
	if plain.segments != 1 {
		t.Fatalf("segment-only sink got %d segments, want 1", plain.segments)
	}
}

// countingSegSink implements only the base Sink interface — the tee
// must route segments to it and silently skip markers/health.
type countingSegSink struct{ segments int }

func (s *countingSegSink) WriteSegment(Segment) error { s.segments++; return nil }
func (s *countingSegSink) Flush() error               { return nil }
func (s *countingSegSink) Close() error               { return nil }

// teeFailSink errors on the segment path and Flush but not Close.
type teeFailSink struct{}

func (s *teeFailSink) WriteSegment(Segment) error { return fmt.Errorf("tee: disk on fire") }
func (s *teeFailSink) Flush() error               { return fmt.Errorf("tee: still on fire") }
func (s *teeFailSink) Close() error               { return nil }

// TestMaintainerOnSeal: the index maintainer's OnSeal seam is
// exercised indirectly across the index package's tests; here we pin
// only that a WALSink wired through OnSeal and one wired through the
// deprecated OnRotate produce identical index files.
func TestMaintainerSeamEquivalence(t *testing.T) {
	t.Parallel()
	write := func(dir string, cfg WALConfig) {
		sink, err := NewWALSink(dir, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := int64(1); i <= 3; i++ {
			if err := sink.WriteSegment(Segment{Monitor: "a", Events: tseq("a", i, i)}); err != nil {
				t.Fatal(err)
			}
		}
		if err := sink.Close(); err != nil {
			t.Fatal(err)
		}
	}
	// The maintainer lives in the index package (which imports this
	// one), so stand in for it with equivalent SealedSinkFunc/OnRotate
	// consumers writing a sidecar file of sealed names.
	record := func(dir string) func(FileSummary) {
		return func(fs FileSummary) {
			f, err := os.OpenFile(filepath.Join(dir, "sealed.txt"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o666)
			if err != nil {
				t.Error(err)
				return
			}
			defer f.Close()
			fmt.Fprintln(f, fs.Name, fs.Records, fs.Size)
		}
	}
	dirA, dirB := t.TempDir(), t.TempDir()
	write(dirA, WALConfig{MaxFileBytes: 1, OnRotate: record(dirA)})
	fB := record(dirB)
	write(dirB, WALConfig{MaxFileBytes: 1, OnSeal: []SealedSink{
		SealedSinkFunc(func(fs FileSummary) error { fB(fs); return nil }),
	}})
	a, err := os.ReadFile(filepath.Join(dirA, "sealed.txt"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dirB, "sealed.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("OnRotate and OnSeal recorded different seals:\n%s\nvs\n%s", a, b)
	}
}
