package export

import (
	"errors"
	"sync"
	"sync/atomic"

	"robustmon/internal/event"
	"robustmon/internal/history"
	"robustmon/internal/obs"
	obsrules "robustmon/internal/obs/rules"
)

// Policy selects what Consume does when the exporter's buffer is full.
type Policy int

const (
	// Block stalls the caller until the writer frees a slot — lossless,
	// at the price of propagating sink latency back to the drainer.
	Block Policy = iota
	// Drop discards the segment and counts it — the drainer never
	// waits, at the price of gaps in the exported trace.
	Drop
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case Block:
		return "block"
	case Drop:
		return "drop"
	default:
		return "Policy(?)"
	}
}

// Config parameterises an Exporter.
type Config struct {
	// Buffer is the capacity of the pending-segment channel (default
	// 64). Together with Policy it is the explicit backpressure knob:
	// the exporter never queues more than Buffer segments.
	Buffer int
	// Policy is the backpressure policy when the buffer is full
	// (default Block).
	Policy Policy
	// OnError, when set, is called from the writer goroutine for each
	// sink write error.
	OnError func(error)
	// CompactEvery, together with Compact, turns on background
	// compaction: after each written segment the writer asks the sink
	// (if it implements SealedFileCounter; WALSink does) how many
	// rotated files have piled up, and once CompactEvery files have
	// accumulated *since the last compaction finished* it launches
	// Compact on its own goroutine. The "since" matters: compacted
	// output is still bounded by the sink's rotation threshold, so a
	// big trace has an incompressible file-count floor, and a naive
	// absolute threshold would re-trigger a futile full-directory
	// rewrite after every segment once the floor crossed it. At most
	// one compaction runs at a time; Close waits for an in-flight one.
	// This is how a long-running detector bounds its on-disk footprint
	// without anyone ever calling a CLI. Zero disables.
	CompactEvery int
	// Compact is the compaction to run when CompactEvery triggers —
	// typically a closure over compact.Dir for the sink's directory
	// (the export package cannot import its compact subpackage; the
	// robustmon facade wires the two for you). It runs concurrently
	// with the writer, which is safe because the compactor never
	// touches the active segment file. Errors are reported through
	// OnError and counted (Stats.CompactErrors) but are not sticky:
	// a failed background compaction must not fail a later Flush.
	Compact func() error
	// Obs, when set, instruments the exporter: accept/write/drop
	// counters mirroring Stats (drops split by reason — "full" vs
	// "closed") and the export_queue_depth gauge. The counters are
	// updated by the same atomics that feed Stats, so the two surfaces
	// can never disagree. Nil disables at zero cost (see internal/obs).
	Obs *obs.Registry
}

// expMetrics are the exporter's obs handles; the zero value (all nil)
// is the disabled mode.
type expMetrics struct {
	segments, events, written          *obs.Counter
	markers, markersWritten            *obs.Counter
	healths, healthsWritten            *obs.Counter
	alerts, alertsWritten              *obs.Counter
	droppedSegsFull, droppedSegsClosed *obs.Counter
	droppedEvsFull, droppedEvsClosed   *obs.Counter
	writeErrors                        *obs.Counter
	compactions, compactErrors         *obs.Counter
	queueDepth                         *obs.Gauge
}

func newExpMetrics(reg *obs.Registry) expMetrics {
	if reg == nil {
		return expMetrics{}
	}
	return expMetrics{
		segments:          reg.Counter("export_segments_total"),
		events:            reg.Counter("export_events_total"),
		written:           reg.Counter("export_written_total"),
		markers:           reg.Counter("export_markers_total"),
		markersWritten:    reg.Counter("export_markers_written_total"),
		healths:           reg.Counter("export_healths_total"),
		healthsWritten:    reg.Counter("export_healths_written_total"),
		alerts:            reg.Counter("export_alerts_total"),
		alertsWritten:     reg.Counter("export_alerts_written_total"),
		droppedSegsFull:   reg.Counter(`export_dropped_segments_total{reason="full"}`),
		droppedSegsClosed: reg.Counter(`export_dropped_segments_total{reason="closed"}`),
		droppedEvsFull:    reg.Counter(`export_dropped_events_total{reason="full"}`),
		droppedEvsClosed:  reg.Counter(`export_dropped_events_total{reason="closed"}`),
		writeErrors:       reg.Counter("export_write_errors_total"),
		compactions:       reg.Counter("export_compactions_total"),
		compactErrors:     reg.Counter("export_compact_errors_total"),
		queueDepth:        reg.Gauge("export_queue_depth"),
	}
}

// SealedFileCounter is the optional Sink extension the background-
// compaction trigger polls: how many rotated (sealed) files the sink
// has accumulated.
type SealedFileCounter interface {
	SealedFiles() int
}

// Stats counts exporter activity. Dropped counters stay zero under the
// Block policy.
type Stats struct {
	// Segments and Events were accepted into the buffer.
	Segments, Events int64
	// Written counts segments the sink persisted without error.
	Written int64
	// Markers counts recovery markers accepted; MarkersWritten those a
	// MarkerSink persisted without error (zero for a plain Sink).
	Markers, MarkersWritten int64
	// Healths counts health snapshots accepted; HealthsWritten those a
	// HealthSink persisted without error (zero for a plain Sink).
	Healths, HealthsWritten int64
	// Alerts counts threshold alerts accepted; AlertsWritten those an
	// AlertSink persisted without error (zero for a plain Sink).
	Alerts, AlertsWritten int64
	// DroppedSegments and DroppedEvents were discarded — the totals of
	// the by-reason split below.
	DroppedSegments, DroppedEvents int64
	// DroppedSegmentsFull/DroppedEventsFull were discarded because the
	// buffer was full under the Drop policy — the backpressure signal
	// an operator tunes Buffer against. DroppedSegmentsClosed/
	// DroppedEventsClosed arrived after Close — a shutdown-ordering
	// signal, not a capacity one.
	DroppedSegmentsFull, DroppedEventsFull     int64
	DroppedSegmentsClosed, DroppedEventsClosed int64
	// WriteErrors counts failed sink writes.
	WriteErrors int64
	// Compactions counts background compactions launched
	// (Config.CompactEvery); CompactErrors those that returned an
	// error.
	Compactions, CompactErrors int64
}

// ErrClosed reports an operation on a closed exporter.
var ErrClosed = errors.New("export: exporter closed")

// item is one unit of writer work: a segment, a recovery marker, a
// health snapshot, a threshold alert, or a flush request.
type item struct {
	seg    Segment
	marker *history.RecoveryMarker
	health *obs.HealthRecord
	alert  *obsrules.Alert
	flush  chan error
}

// Exporter streams drained history segments to a Sink off the hot
// path: Consume enqueues into a bounded channel, a single writer
// goroutine drains it. Construct with New; Consume, Flush and Close
// are safe for concurrent use.
type Exporter struct {
	cfg  Config
	sink Sink
	ch   chan item
	done chan struct{}

	// mu orders Consume/Flush sends (read side) against Close's channel
	// close (write side), so a send never races the close.
	mu     sync.RWMutex
	closed bool

	segments, events, written           atomic.Int64
	markers, markersWritten             atomic.Int64
	healths, healthsWritten             atomic.Int64
	alerts, alertsWritten               atomic.Int64
	droppedSegsFull, droppedEvsFull     atomic.Int64
	droppedSegsClosed, droppedEvsClosed atomic.Int64
	writeErrors                         atomic.Int64
	compactions, compactErrors          atomic.Int64
	met                                 expMetrics
	compacting                          atomic.Bool
	compactDone                         atomic.Bool
	compactWG                           sync.WaitGroup
	// compactFloor is the sealed-file count the last compaction could
	// not shrink below — the re-trigger baseline. Writer goroutine
	// only.
	compactFloor      int
	errMu             sync.Mutex
	lastErr, closeErr error
}

// New starts an exporter writing to sink. Close it to stop the writer
// and close the sink.
func New(sink Sink, cfg Config) *Exporter {
	if cfg.Buffer <= 0 {
		cfg.Buffer = 64
	}
	e := &Exporter{
		cfg:  cfg,
		sink: sink,
		ch:   make(chan item, cfg.Buffer),
		done: make(chan struct{}),
		met:  newExpMetrics(cfg.Obs),
	}
	go e.writer()
	return e
}

// writer is the single consumer of e.ch; it owns the sink.
func (e *Exporter) writer() {
	defer close(e.done)
	for it := range e.ch {
		// Depth after dequeue: what is still waiting. Drain-rhythm, not
		// event-rhythm, so the gauge write is cheap; a scrape between
		// updates sees the last drained depth, which is the queue's
		// steady-state signal.
		e.met.queueDepth.Set(int64(len(e.ch)))
		if it.flush != nil {
			it.flush <- e.sink.Flush()
			continue
		}
		if it.marker != nil {
			ms, ok := e.sink.(MarkerSink)
			if !ok {
				continue // sink has no marker support; nothing to persist
			}
			if err := ms.WriteMarker(*it.marker); err != nil {
				e.writeErrors.Add(1)
				e.met.writeErrors.Inc()
				e.setErr(err)
				if e.cfg.OnError != nil {
					e.cfg.OnError(err)
				}
			} else {
				e.markersWritten.Add(1)
				e.met.markersWritten.Inc()
			}
			continue
		}
		if it.health != nil {
			hs, ok := e.sink.(HealthSink)
			if !ok {
				continue // sink has no health support; nothing to persist
			}
			if err := hs.WriteHealth(*it.health); err != nil {
				e.writeErrors.Add(1)
				e.met.writeErrors.Inc()
				e.setErr(err)
				if e.cfg.OnError != nil {
					e.cfg.OnError(err)
				}
			} else {
				e.healthsWritten.Add(1)
				e.met.healthsWritten.Inc()
			}
			continue
		}
		if it.alert != nil {
			as, ok := e.sink.(AlertSink)
			if !ok {
				continue // sink has no alert support; nothing to persist
			}
			if err := as.WriteAlert(*it.alert); err != nil {
				e.writeErrors.Add(1)
				e.met.writeErrors.Inc()
				e.setErr(err)
				if e.cfg.OnError != nil {
					e.cfg.OnError(err)
				}
			} else {
				e.alertsWritten.Add(1)
				e.met.alertsWritten.Inc()
			}
			continue
		}
		if err := e.sink.WriteSegment(it.seg); err != nil {
			e.writeErrors.Add(1)
			e.met.writeErrors.Inc()
			e.setErr(err)
			if e.cfg.OnError != nil {
				e.cfg.OnError(err)
			}
			continue
		}
		e.written.Add(1)
		e.met.written.Inc()
		e.maybeCompact()
	}
	e.errMu.Lock()
	e.closeErr = e.sink.Close()
	e.errMu.Unlock()
}

func (e *Exporter) setErr(err error) {
	e.errMu.Lock()
	e.lastErr = err
	e.errMu.Unlock()
}

// maybeCompact launches the configured background compaction when the
// sink's rotated backlog reaches the threshold. Called from the writer
// goroutine after each written segment; the compaction itself runs on
// its own goroutine (the writer must keep draining the channel, or a
// long compaction would backpressure the detector), one at a time.
func (e *Exporter) maybeCompact() {
	if e.cfg.CompactEvery <= 0 || e.cfg.Compact == nil {
		return
	}
	fc, ok := e.sink.(SealedFileCounter)
	if !ok {
		return
	}
	sealed := fc.SealedFiles()
	if e.compactDone.CompareAndSwap(true, false) {
		// First look after a compaction finished: whatever is sealed now
		// is (approximately) its incompressible floor; only CompactEvery
		// NEW files on top of it justify another pass. Sampled here, on
		// the writer goroutine, because the sink is writer-owned and the
		// compaction goroutine must not touch it.
		e.compactFloor = sealed
	}
	if sealed-e.compactFloor < e.cfg.CompactEvery {
		return
	}
	if !e.compacting.CompareAndSwap(false, true) {
		return // one in flight already
	}
	e.compactions.Add(1)
	e.met.compactions.Inc()
	e.compactWG.Add(1)
	go func() {
		defer e.compactWG.Done()
		// LIFO: compactDone must be visible before compacting releases,
		// so the writer refreshes the floor before it can relaunch.
		defer e.compacting.Store(false)
		defer e.compactDone.Store(true)
		if err := e.cfg.Compact(); err != nil {
			e.compactErrors.Add(1)
			e.met.compactErrors.Inc()
			if e.cfg.OnError != nil {
				e.cfg.OnError(err)
			}
		}
	}()
}

// Consume accepts one drained per-monitor segment. It has the
// history.DrainTee signature, so an exporter is wired to a database
// with db.SetDrainTee(exp.Consume). Empty segments are ignored; a
// segment arriving after Close is counted as dropped. The events slice
// is retained until written and must not be mutated by the caller
// (drained segments never are).
func (e *Exporter) Consume(monitor string, events event.Seq) {
	if len(events) == 0 {
		return
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		e.dropClosed(events)
		return
	}
	it := item{seg: Segment{Monitor: monitor, Events: events}}
	if e.cfg.Policy == Drop {
		select {
		case e.ch <- it:
		default:
			e.dropFull(events)
			return
		}
	} else {
		e.ch <- it
	}
	e.segments.Add(1)
	e.events.Add(int64(len(events)))
	e.met.segments.Inc()
	e.met.events.Add(int64(len(events)))
	e.met.queueDepth.Set(int64(len(e.ch)))
}

// ConsumeMarker accepts one recovery marker (detect.MarkerExporter's
// signature, so a detector's shard-local resets reach the sink through
// the same pipeline as their segments). Markers are rare and
// load-bearing — a dropped marker would make a deliberate trace gap
// look like corruption — so the send always blocks for a free slot,
// even under the Drop policy, exactly like Flush. A marker arriving
// after Close is discarded.
func (e *Exporter) ConsumeMarker(m history.RecoveryMarker) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return
	}
	e.ch <- item{marker: &m}
	e.markers.Add(1)
	e.met.markers.Inc()
}

// ConsumeHealth accepts one health snapshot (detect.HealthExporter's
// signature). Like markers, health records are rare and cheap, and a
// gap in the health timeline is a diagnostic loss exactly when the
// system is under the pressure the timeline exists to explain — so the
// send always blocks for a free slot, even under the Drop policy. A
// snapshot arriving after Close is discarded.
func (e *Exporter) ConsumeHealth(h obs.HealthRecord) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return
	}
	e.ch <- item{health: &h}
	e.healths.Add(1)
	e.met.healths.Inc()
}

// ConsumeAlert accepts one threshold alert (detect.AlertExporter's
// signature). Alerts mark the pipeline's own degradation episodes —
// rare, small, and most valuable exactly when the system is under
// pressure — so like markers and health snapshots the send always
// blocks for a free slot, even under the Drop policy. An alert
// arriving after Close is discarded.
func (e *Exporter) ConsumeAlert(a obsrules.Alert) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return
	}
	e.ch <- item{alert: &a}
	e.alerts.Add(1)
	e.met.alerts.Inc()
}

// dropFull counts a segment discarded because the buffer was full
// under the Drop policy.
func (e *Exporter) dropFull(events event.Seq) {
	e.droppedSegsFull.Add(1)
	e.droppedEvsFull.Add(int64(len(events)))
	e.met.droppedSegsFull.Inc()
	e.met.droppedEvsFull.Add(int64(len(events)))
}

// dropClosed counts a segment discarded because it arrived after
// Close.
func (e *Exporter) dropClosed(events event.Seq) {
	e.droppedSegsClosed.Add(1)
	e.droppedEvsClosed.Add(int64(len(events)))
	e.met.droppedSegsClosed.Inc()
	e.met.droppedEvsClosed.Add(int64(len(events)))
}

// Flush blocks until every segment accepted before the call has been
// handed to the sink and the sink's own buffers are forced down, then
// reports the sink's flush error, or else the most recent write error
// (sticky: a failed export keeps reporting from Flush and Close until
// the exporter is rebuilt, so no caller path can lose it). A flush
// request is never dropped, even under the Drop policy.
func (e *Exporter) Flush() error {
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		if err := e.lastError(); err != nil {
			return err
		}
		return ErrClosed
	}
	reply := make(chan error, 1)
	e.ch <- item{flush: reply}
	e.mu.RUnlock()
	if err := <-reply; err != nil {
		e.setErr(err)
		return err
	}
	return e.lastError()
}

func (e *Exporter) lastError() error {
	e.errMu.Lock()
	defer e.errMu.Unlock()
	return e.lastErr
}

// Close drains the buffer, closes the sink and stops the writer. It
// is idempotent and reports the sticky write error (else the sink's
// close error). Segments consumed after Close are dropped, not
// written.
func (e *Exporter) Close() error {
	e.mu.Lock()
	if !e.closed {
		e.closed = true
		close(e.ch)
	}
	e.mu.Unlock()
	<-e.done
	e.compactWG.Wait()
	e.errMu.Lock()
	defer e.errMu.Unlock()
	if e.lastErr != nil {
		return e.lastErr
	}
	return e.closeErr
}

// Stats returns a snapshot of the exporter's counters.
func (e *Exporter) Stats() Stats {
	dsf, dsc := e.droppedSegsFull.Load(), e.droppedSegsClosed.Load()
	def, dec := e.droppedEvsFull.Load(), e.droppedEvsClosed.Load()
	return Stats{
		Segments:              e.segments.Load(),
		Events:                e.events.Load(),
		Written:               e.written.Load(),
		Markers:               e.markers.Load(),
		MarkersWritten:        e.markersWritten.Load(),
		Healths:               e.healths.Load(),
		HealthsWritten:        e.healthsWritten.Load(),
		Alerts:                e.alerts.Load(),
		AlertsWritten:         e.alertsWritten.Load(),
		DroppedSegments:       dsf + dsc,
		DroppedEvents:         def + dec,
		DroppedSegmentsFull:   dsf,
		DroppedEventsFull:     def,
		DroppedSegmentsClosed: dsc,
		DroppedEventsClosed:   dec,
		WriteErrors:           e.writeErrors.Load(),
		Compactions:           e.compactions.Load(),
		CompactErrors:         e.compactErrors.Load(),
	}
}
