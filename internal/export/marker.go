package export

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"robustmon/internal/history"
)

// Recovery markers in the export stream. A shard-local online reset
// (detect.Detector.RequestReset) discards a monitor's buffered,
// never-checked events; the exported trace therefore has a gap for
// that monitor at or below the reset horizon. The marker is the
// durable record of that gap: it flows through the exporter like a
// segment, is persisted by sinks implementing MarkerSink (WALSink as a
// typed WAL record, MemorySink in memory), and comes back from ReadDir
// in Replay.Markers so offline tooling (cmd/montrace) can tell a
// reset artefact from a genuine fault.

// MarkerSink is the optional Sink extension for recovery markers. A
// sink without it simply drops markers (the exporter counts them as
// accepted either way); both built-in sinks implement it.
type MarkerSink interface {
	// WriteMarker persists one recovery marker. Like WriteSegment it is
	// driven by the exporter's single writer goroutine.
	WriteMarker(m history.RecoveryMarker) error
}

// markerVersion versions the marker payload blob.
const markerVersion = 1

// appendMarker serialises a marker into the self-contained payload
// blob of a recMarker WAL record, appended to dst: a version byte
// followed by varint fields (horizon, dropped, pid, unix-nano instant)
// and the length-prefixed rule and monitor strings. Self-contained on
// purpose — a marker payload can be interpreted without its record
// header, mirroring how a segment payload is a well-formed trace on
// its own. Appending (rather than returning a fresh buffer) lets the
// WAL sink encode into its pooled payload buffers.
func appendMarker(dst []byte, m history.RecoveryMarker) []byte {
	var scratch [binary.MaxVarintLen64]byte
	putVarint := func(v int64) {
		dst = append(dst, scratch[:binary.PutVarint(scratch[:], v)]...)
	}
	putUvarint := func(v uint64) {
		dst = append(dst, scratch[:binary.PutUvarint(scratch[:], v)]...)
	}
	putString := func(s string) {
		putUvarint(uint64(len(s)))
		dst = append(dst, s...)
	}
	dst = append(dst, markerVersion)
	putVarint(m.Horizon)
	putUvarint(uint64(m.Dropped))
	putVarint(m.Pid)
	putVarint(m.At.UnixNano())
	putString(m.Rule)
	putString(m.Monitor)
	return dst
}

// encodeMarker is appendMarker into a fresh buffer (tests and
// non-pooled callers).
func encodeMarker(m history.RecoveryMarker) []byte {
	return appendMarker(nil, m)
}

// decodeMarker reverses encodeMarker.
func decodeMarker(payload []byte) (history.RecoveryMarker, error) {
	br := bytes.NewReader(payload)
	var m history.RecoveryMarker
	ver, err := br.ReadByte()
	if err != nil {
		return m, fmt.Errorf("marker version: %w", err)
	}
	if ver != markerVersion {
		return m, fmt.Errorf("unknown marker version %d", ver)
	}
	getString := func() (string, error) {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return "", err
		}
		if n > maxMonitorName {
			return "", fmt.Errorf("implausible marker string length %d", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}
	if m.Horizon, err = binary.ReadVarint(br); err != nil {
		return m, fmt.Errorf("marker horizon: %w", err)
	}
	dropped, err := binary.ReadUvarint(br)
	if err != nil {
		return m, fmt.Errorf("marker dropped count: %w", err)
	}
	m.Dropped = int(dropped)
	if m.Pid, err = binary.ReadVarint(br); err != nil {
		return m, fmt.Errorf("marker pid: %w", err)
	}
	nanos, err := binary.ReadVarint(br)
	if err != nil {
		return m, fmt.Errorf("marker instant: %w", err)
	}
	m.At = time.Unix(0, nanos).UTC()
	if m.Rule, err = getString(); err != nil {
		return m, fmt.Errorf("marker rule: %w", err)
	}
	if m.Monitor, err = getString(); err != nil {
		return m, fmt.Errorf("marker monitor: %w", err)
	}
	if br.Len() != 0 {
		return m, fmt.Errorf("%d trailing bytes after marker", br.Len())
	}
	return m, nil
}
