package export

import (
	"bufio"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
)

// File summaries — the per-file metadata the trace-store index is made
// of. A FileSummary is produced two ways that must agree byte for
// byte: incrementally by WALSink as it writes (handed to
// WALConfig.OnSeal consumers when the file is sealed), and by
// ScanFile reading
// an existing file's record headers back — which is what makes an
// index rebuildable from any v1/v2 directory, no matter who wrote it.

// MonitorRange is one monitor's slice of a WAL file: which sequence
// numbers of that monitor the file's segment records cover, and how
// many events that is. Ranges let a windowed reader skip a file even
// when the query filters by monitor, not just by sequence window.
type MonitorRange struct {
	// Monitor names the monitor.
	Monitor string
	// MinSeq and MaxSeq bound the monitor's event sequence numbers in
	// this file (inclusive).
	MinSeq, MaxSeq int64
	// Events counts the monitor's events in this file.
	Events int64
}

// MarkerInfo locates one recovery-marker record inside a WAL file. The
// byte offset lets a windowed reader collect a file's markers with a
// point read (ReadMarkerAt) instead of decoding the whole file.
type MarkerInfo struct {
	// Monitor names the reset monitor.
	Monitor string
	// Horizon is the marker's reset horizon (the record header carries
	// it, so no payload decode is needed to index it).
	Horizon int64
	// Offset is the record's byte offset from the start of the file.
	Offset int64
}

// HealthInfo locates one health-snapshot record inside a WAL file.
// Like MarkerInfo, the byte offset lets a windowed reader collect a
// skipped file's health timeline with a point read (ReadHealthAt)
// instead of decoding the whole file.
type HealthInfo struct {
	// Seq is the snapshot's global-sequence horizon (the record header
	// carries it, so no payload decode is needed to index it).
	Seq int64
	// Offset is the record's byte offset from the start of the file.
	Offset int64
}

// TombstoneInfo locates one retention-tombstone record inside a WAL
// file. The horizon rides in the record header, so the index can
// surface "this store was truncated below seq H" without any payload
// decode; the byte offset lets a windowed reader point-read the full
// accounting (ReadTombstoneAt) from an otherwise skipped file.
type TombstoneInfo struct {
	// Horizon is the tombstone's retention horizon.
	Horizon int64
	// Offset is the record's byte offset from the start of the file.
	Offset int64
}

// AlertInfo locates one threshold-alert record inside a WAL file. The
// sequence horizon rides in the record header, so the index places an
// alert without any payload decode; the byte offset lets a windowed
// reader point-read the full alert (ReadAlertAt) from an otherwise
// skipped file.
type AlertInfo struct {
	// Seq is the alert's global-sequence horizon.
	Seq int64
	// Offset is the record's byte offset from the start of the file.
	Offset int64
}

// FileSummary describes one sealed WAL segment file: everything a
// reader needs to decide whether the file can possibly matter to a
// windowed query, without opening it.
type FileSummary struct {
	// Name is the file's base name ("00000012.wal").
	Name string
	// Version is the file's WAL format version.
	Version byte
	// Size is the file's length in bytes. A reader compares it against
	// the file on disk as the cheap staleness check: a summary whose
	// size disagrees describes some earlier file of the same name
	// (compaction reuses names) and must not be trusted.
	Size int64
	// Records counts the file's valid records (segments + markers).
	Records int
	// Events counts events across all segment records.
	Events int64
	// MinSeq and MaxSeq bound the sequence numbers of the file's
	// segment records (both zero when the file holds only markers).
	MinSeq, MaxSeq int64
	// Monitors lists the per-monitor ranges, sorted by monitor name.
	Monitors []MonitorRange
	// Markers lists the file's recovery markers in record order.
	Markers []MarkerInfo
	// Healths lists the file's health-snapshot records in record order.
	Healths []HealthInfo
	// Tombstones lists the file's retention tombstones in record order.
	Tombstones []TombstoneInfo
	// Alerts lists the file's threshold-alert records in record order.
	Alerts []AlertInfo
	// HeaderCRC is the CRC-32 (IEEE) over the file's record headers,
	// concatenated in record order — the header chain. It pins the
	// file's record structure: verifying it needs only a header scan
	// (payloads are skipped), and a summary whose chain disagrees with
	// the file is stale even if the sizes happen to match.
	HeaderCRC uint32
	// Torn reports that a scan ended at a torn tail; the summary covers
	// the valid prefix. Sink-produced summaries are never torn.
	Torn bool
}

// Covers reports whether any of the file's segment events can fall in
// the sequence window [minSeq, maxSeq] restricted to the given
// monitors (no monitors = all monitors).
func (s FileSummary) Covers(minSeq, maxSeq int64, monitors map[string]bool) bool {
	if s.Events == 0 {
		return false
	}
	if len(monitors) == 0 {
		return s.MinSeq <= maxSeq && s.MaxSeq >= minSeq
	}
	for _, mr := range s.Monitors {
		if monitors[mr.Monitor] && mr.MinSeq <= maxSeq && mr.MaxSeq >= minSeq {
			return true
		}
	}
	return false
}

// summaryBuilder accumulates a FileSummary record by record. The zero
// value is not ready; use newSummaryBuilder.
type summaryBuilder struct {
	sum  FileSummary
	mons map[string]*MonitorRange
}

func newSummaryBuilder(name string, version byte) *summaryBuilder {
	return &summaryBuilder{
		sum:  FileSummary{Name: name, Version: version},
		mons: make(map[string]*MonitorRange, 4),
	}
}

// add folds one record (its decoded header and byte offset) into the
// summary.
func (b *summaryBuilder) add(h *recHeader, offset int64) {
	b.sum.Records++
	b.sum.HeaderCRC = crc32.Update(b.sum.HeaderCRC, crc32.IEEETable, h.raw)
	if h.typ == recMarker {
		b.sum.Markers = append(b.sum.Markers, MarkerInfo{
			Monitor: h.monitor, Horizon: h.first, Offset: offset,
		})
		return
	}
	if h.typ == recHealth {
		b.sum.Healths = append(b.sum.Healths, HealthInfo{
			Seq: h.first, Offset: offset,
		})
		return
	}
	if h.typ == recTombstone {
		b.sum.Tombstones = append(b.sum.Tombstones, TombstoneInfo{
			Horizon: h.first, Offset: offset,
		})
		return
	}
	if h.typ == recAlert {
		b.sum.Alerts = append(b.sum.Alerts, AlertInfo{
			Seq: h.first, Offset: offset,
		})
		return
	}
	if b.sum.Events == 0 {
		b.sum.MinSeq, b.sum.MaxSeq = h.first, h.last
	} else {
		b.sum.MinSeq = min(b.sum.MinSeq, h.first)
		b.sum.MaxSeq = max(b.sum.MaxSeq, h.last)
	}
	b.sum.Events += int64(h.count)
	mr := b.mons[h.monitor]
	if mr == nil {
		mr = &MonitorRange{Monitor: h.monitor, MinSeq: h.first, MaxSeq: h.last}
		b.mons[h.monitor] = mr
	} else {
		mr.MinSeq = min(mr.MinSeq, h.first)
		mr.MaxSeq = max(mr.MaxSeq, h.last)
	}
	mr.Events += int64(h.count)
}

// done finalises the summary at the given file size.
func (b *summaryBuilder) done(size int64, torn bool) FileSummary {
	s := b.sum
	s.Size = size
	s.Torn = torn
	if len(b.mons) == 0 {
		// Nil, not empty: the codec decodes an absent section to nil, and
		// the two producers of a summary must agree structurally too.
		return s
	}
	s.Monitors = make([]MonitorRange, 0, len(b.mons))
	for _, mr := range b.mons {
		s.Monitors = append(s.Monitors, *mr)
	}
	sort.Slice(s.Monitors, func(i, j int) bool {
		return s.Monitors[i].Monitor < s.Monitors[j].Monitor
	})
	return s
}

// ScanFile summarises one WAL file by reading record headers only —
// payloads are skipped, not decoded and not CRC-checked, so a scan
// costs a fraction of a replay. It is how an index is rebuilt from an
// existing directory (v1 and v2 files alike). A torn tail ends the
// scan with the valid prefix summarised and Torn set; the caller
// decides whether a torn file is acceptable. Note a CRC-corrupt record
// still contributes its header to the summary — the index admits the
// file, and the replaying reader skips the record. The index
// deliberately over-admits rather than under-admits.
func ScanFile(name string) (FileSummary, error) {
	fs, _, err := ScanFileRecords(name)
	return fs, err
}

// SegmentLocation locates one segment record inside a WAL file — the
// header fields a streaming merge needs to order and size the record,
// plus the byte offset to point-read it later (RecordReader.ReadAt).
// Locations stay out of FileSummary (and therefore out of the index)
// on purpose: they are per-pass scaffolding for the compactor, not
// durable metadata.
type SegmentLocation struct {
	// Monitor names the record's monitor.
	Monitor string
	// First and Last bound the record's sequence numbers (inclusive).
	First, Last int64
	// Count is the record's event count.
	Count uint32
	// Offset is the record's byte offset from the start of the file.
	Offset int64
}

// ScanFileRecords is ScanFile plus the byte locations of every segment
// record — the header-only discovery pass of the streaming compactor:
// one scan yields both the file's summary (markers, healths,
// tombstones, ranges) and the per-segment cursor table a bounded-RAM
// k-way merge reads through.
func ScanFileRecords(name string) (FileSummary, []SegmentLocation, error) {
	f, err := os.Open(name)
	if err != nil {
		return FileSummary{}, nil, fmt.Errorf("export: open wal file: %w", err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	var magic [5]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		// Torn magic (crash right after creation): an empty summary.
		b := newSummaryBuilder(baseName(name), 0)
		return b.done(0, true), nil, nil
	}
	version := magic[4]
	if [4]byte(magic[:4]) != walMagicPrefix || version < walVersion1 || version > walVersionLatest {
		return FileSummary{}, nil, fmt.Errorf("%w in %s", ErrBadWALMagic, name)
	}
	b := newSummaryBuilder(baseName(name), version)
	var locs []SegmentLocation
	offset := int64(len(magic))
	for {
		h, err := readHeader(br, version)
		if err != nil {
			if err == io.EOF {
				return b.done(offset, false), locs, nil // clean record boundary
			}
			return b.done(offset, true), locs, nil
		}
		if _, err := io.CopyN(io.Discard, br, int64(h.payloadLen)); err != nil {
			return b.done(offset, true), locs, nil
		}
		if h.typ == recSegment {
			locs = append(locs, SegmentLocation{
				Monitor: h.monitor, First: h.first, Last: h.last,
				Count: h.count, Offset: offset,
			})
		}
		b.add(h, offset)
		offset += int64(len(h.raw)) + int64(h.payloadLen)
	}
}
