package export

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"robustmon/internal/clock"
	"robustmon/internal/detect"
	"robustmon/internal/event"
	"robustmon/internal/history"
	"robustmon/internal/monitor"
	"robustmon/internal/proc"
)

// writeWAL writes the given segments through a WALSink and returns the
// directory.
func writeWAL(t *testing.T, cfg WALConfig, segs ...Segment) string {
	t.Helper()
	dir := t.TempDir()
	sink, err := NewWALSink(dir, cfg)
	if err != nil {
		t.Fatalf("NewWALSink: %v", err)
	}
	for _, s := range segs {
		if err := sink.WriteSegment(s); err != nil {
			t.Fatalf("WriteSegment: %v", err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return dir
}

func TestWALRoundTripMergesGlobalOrder(t *testing.T) {
	t.Parallel()
	// Interleaved drains from three monitors, deliberately written out
	// of global order across records — the reader's merge must restore
	// <L. Tiny MaxFileBytes forces rotation after every record, so the
	// trace also spans several files.
	dir := writeWAL(t, WALConfig{MaxFileBytes: 1},
		Segment{Monitor: "b", Events: event.Seq{tev("b", 2), tev("b", 4)}},
		Segment{Monitor: "a", Events: event.Seq{tev("a", 1), tev("a", 3)}},
		Segment{Monitor: "c", Events: event.Seq{tev("c", 5)}},
		Segment{Monitor: "a", Events: event.Seq{tev("a", 6), tev("a", 7)}},
	)
	rep, err := ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	if rep.Recovered {
		t.Fatal("clean WAL reported Recovered")
	}
	if rep.Segments != 4 || rep.Files != 4 {
		t.Fatalf("Replay = %d segments in %d files, want 4 in 4 (rotate-per-record)", rep.Segments, rep.Files)
	}
	if err := rep.Events.Validate(); err != nil {
		t.Fatalf("replayed trace invalid: %v", err)
	}
	if len(rep.Events) != 7 || rep.Events[0].Seq != 1 || rep.Events[6].Seq != 7 {
		t.Fatalf("replayed %d events (first %d, last %d), want 1..7 in order",
			len(rep.Events), rep.Events[0].Seq, rep.Events[len(rep.Events)-1].Seq)
	}
}

func TestWALResumesNumberingWithoutClobbering(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	for i := int64(0); i < 2; i++ {
		sink, err := NewWALSink(dir, WALConfig{})
		if err != nil {
			t.Fatalf("NewWALSink #%d: %v", i, err)
		}
		if err := sink.WriteSegment(Segment{Monitor: "m", Events: tseq("m", i*3+1, i*3+3)}); err != nil {
			t.Fatalf("WriteSegment #%d: %v", i, err)
		}
		if err := sink.Close(); err != nil {
			t.Fatalf("Close #%d: %v", i, err)
		}
	}
	names, err := walFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 {
		t.Fatalf("dir holds %d wal files after two sink sessions, want 2", len(names))
	}
	rep, err := ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	if len(rep.Events) != 6 {
		t.Fatalf("replayed %d events across sessions, want 6", len(rep.Events))
	}
}

func TestWALCrashTruncatedTailRecovers(t *testing.T) {
	t.Parallel()
	// Cut the newest file at every possible torn-write length and check
	// the reader always recovers exactly the records before the tear.
	full := writeWAL(t, WALConfig{},
		Segment{Monitor: "a", Events: tseq("a", 1, 4)},
		Segment{Monitor: "a", Events: tseq("a", 5, 8)},
	)
	names, err := walFiles(full)
	if err != nil || len(names) != 1 {
		t.Fatalf("walFiles = %v, %v", names, err)
	}
	blob, err := os.ReadFile(names[0])
	if err != nil {
		t.Fatal(err)
	}
	// Find the boundary of the first record by reading a one-record WAL.
	oneRec := writeWAL(t, WALConfig{}, Segment{Monitor: "a", Events: tseq("a", 1, 4)})
	oneNames, _ := walFiles(oneRec)
	one, err := os.ReadFile(oneNames[0])
	if err != nil {
		t.Fatal(err)
	}
	boundary := len(one)

	for cut := boundary; cut < len(blob); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "00000001.wal"), blob[:cut], 0o666); err != nil {
			t.Fatal(err)
		}
		rep, err := ReadDir(dir)
		if err != nil {
			t.Fatalf("cut=%d: ReadDir: %v", cut, err)
		}
		wantRecovered := cut != boundary // a cut exactly at the boundary is a clean EOF
		if rep.Recovered != wantRecovered {
			t.Fatalf("cut=%d: Recovered = %v, want %v", cut, rep.Recovered, wantRecovered)
		}
		if len(rep.Events) != 4 || rep.Events[3].Seq != 4 {
			t.Fatalf("cut=%d: recovered %d events, want the 4 of the intact record", cut, len(rep.Events))
		}
		if wantRecovered && rep.TruncatedFile == "" {
			t.Fatalf("cut=%d: TruncatedFile not set", cut)
		}
	}
}

func TestWALTruncationInOlderFileIsCorruption(t *testing.T) {
	t.Parallel()
	dir := writeWAL(t, WALConfig{MaxFileBytes: 1}, // rotate per record → 2 files
		Segment{Monitor: "a", Events: tseq("a", 1, 3)},
		Segment{Monitor: "a", Events: tseq("a", 4, 6)},
	)
	names, err := walFiles(dir)
	if err != nil || len(names) != 2 {
		t.Fatalf("walFiles = %v, %v", names, err)
	}
	blob, err := os.ReadFile(names[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(names[0], blob[:len(blob)-3], 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadDir(dir); err == nil {
		t.Fatal("ReadDir accepted a truncated non-newest file")
	}
}

func TestWALCRCMismatchSkipsOnlyThatRecord(t *testing.T) {
	t.Parallel()
	// A CRC-corrupt record mid-file is localised damage, not a torn
	// tail: the reader must skip it, count it, and keep reading the
	// intact records after it — losing one record's events, never the
	// rest of the file.
	dir := writeWAL(t, WALConfig{},
		Segment{Monitor: "a", Events: tseq("a", 1, 3)},
		Segment{Monitor: "a", Events: tseq("a", 4, 6)},
		Segment{Monitor: "b", Events: tseq("b", 7, 9)},
	)
	names, _ := walFiles(dir)
	blob, err := os.ReadFile(names[0])
	if err != nil {
		t.Fatal(err)
	}
	// Flip a bit well inside the first record's payload (past the file
	// magic and record header) so two intact records follow a corrupt —
	// not torn — one.
	blob[40] ^= 0x01
	if err := os.WriteFile(names[0], blob, 0o666); err != nil {
		t.Fatal(err)
	}
	rep, err := ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir abandoned the file over one corrupt record: %v", err)
	}
	if rep.CorruptRecords != 1 {
		t.Fatalf("CorruptRecords = %d, want 1", rep.CorruptRecords)
	}
	if rep.Recovered {
		t.Fatal("a corrupt record is not a crash tail; Recovered must stay false")
	}
	if rep.Segments != 2 || len(rep.Events) != 6 {
		t.Fatalf("replayed %d segments / %d events, want the 2 intact records' 6 events", rep.Segments, len(rep.Events))
	}
	if rep.Events[0].Seq != 4 || rep.Events[5].Seq != 9 {
		t.Fatalf("surviving events span %d..%d, want 4..9 (the corrupt record's 1..3 dropped)",
			rep.Events[0].Seq, rep.Events[5].Seq)
	}
}

func TestWALAgeBasedRotation(t *testing.T) {
	t.Parallel()
	clk := clock.NewVirtual(time.Date(2001, 7, 1, 0, 0, 0, 0, time.UTC))
	dir := t.TempDir()
	sink, err := NewWALSink(dir, WALConfig{
		RotateEvery: time.Minute,
		Clock:       clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.WriteSegment(Segment{Monitor: "m", Events: tseq("m", 1, 2)}); err != nil {
		t.Fatal(err)
	}
	// Within the age window: same file keeps growing.
	clk.Advance(30 * time.Second)
	if err := sink.WriteSegment(Segment{Monitor: "m", Events: tseq("m", 3, 4)}); err != nil {
		t.Fatal(err)
	}
	if got := sink.SealedFiles(); got != 0 {
		t.Fatalf("SealedFiles = %d before the age threshold, want 0", got)
	}
	// Past the threshold: the next write seals the stale file first and
	// lands in a fresh one — an idle monitor's trickle cannot pin one
	// open file forever.
	clk.Advance(time.Hour)
	if err := sink.WriteSegment(Segment{Monitor: "m", Events: tseq("m", 5, 6)}); err != nil {
		t.Fatal(err)
	}
	if got := sink.SealedFiles(); got != 1 {
		t.Fatalf("SealedFiles = %d after an age rotation, want 1", got)
	}
	// A stale file is sealed by Flush too, not only by the next write.
	clk.Advance(time.Hour)
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := sink.SealedFiles(); got != 2 {
		t.Fatalf("SealedFiles = %d after a stale Flush, want 2", got)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	names, err := walFiles(dir)
	if err != nil || len(names) != 2 {
		t.Fatalf("walFiles = %v, %v; want 2 files", names, err)
	}
	rep, err := ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	if len(rep.Events) != 6 {
		t.Fatalf("replayed %d events across age-rotated files, want 6", len(rep.Events))
	}
}

func TestWALOnRotateSummariesMatchScan(t *testing.T) {
	t.Parallel()
	// The sink's incrementally built summaries and ScanFile's header
	// scan are two producers of the same FileSummary; they must agree
	// exactly, or a sink-maintained index would diverge from a rebuilt
	// one.
	dir := t.TempDir()
	var sealed []FileSummary
	sink, err := NewWALSink(dir, WALConfig{
		MaxFileBytes: 1, // rotate after every record
		OnRotate:     func(fs FileSummary) { sealed = append(sealed, fs) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.WriteSegment(Segment{Monitor: "a", Events: tseq("a", 1, 4)}); err != nil {
		t.Fatal(err)
	}
	if err := sink.WriteMarker(historyMarkerSeed()); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	names, err := walFiles(dir)
	if err != nil || len(names) != 2 {
		t.Fatalf("walFiles = %v, %v; want 2 files", names, err)
	}
	if len(sealed) != 2 {
		t.Fatalf("OnRotate fired %d times, want 2", len(sealed))
	}
	for i, name := range names {
		scanned, err := ScanFile(name)
		if err != nil {
			t.Fatalf("ScanFile(%s): %v", name, err)
		}
		if !reflect.DeepEqual(sealed[i], scanned) {
			t.Fatalf("file %s: sink summary %+v != scanned summary %+v", name, sealed[i], scanned)
		}
	}
	seg := sealed[0]
	if seg.Events != 4 || seg.MinSeq != 1 || seg.MaxSeq != 4 || len(seg.Monitors) != 1 {
		t.Fatalf("segment-file summary wrong: %+v", seg)
	}
	mk := sealed[1]
	if mk.Events != 0 || len(mk.Markers) != 1 || mk.Markers[0].Horizon != historyMarkerSeed().Horizon {
		t.Fatalf("marker-file summary wrong: %+v", mk)
	}
}

// TestReplayMatchesFullTraceExport is the subsystem's acceptance
// criterion: the same HoldWorld workload is recorded twice at once —
// through WithFullTrace (the memory-unbounded baseline) and through
// the detector-fed exporter — and replaying the exporter's on-disk
// segments must be byte-identical to ExportBinary of the full trace.
func TestReplayMatchesFullTraceExport(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	sink, err := NewWALSink(dir, WALConfig{MaxFileBytes: 4 << 10}) // several rotations
	if err != nil {
		t.Fatal(err)
	}
	exp := New(sink, Config{Policy: Block})

	db := history.New(history.WithFullTrace())
	const monitors = 4
	mons := make([]*monitor.Monitor, monitors)
	for i := range mons {
		spec := monitor.Spec{
			Name:       "m" + string(rune('A'+i)),
			Kind:       monitor.OperationManager,
			Conditions: []string{"ok"},
			Procedures: []string{"Op"},
		}
		m, err := monitor.New(spec, monitor.WithRecorder(db))
		if err != nil {
			t.Fatal(err)
		}
		mons[i] = m
	}
	det := detect.New(db, detect.Config{
		Tmax:      time.Hour,
		Tio:       time.Hour,
		HoldWorld: true,
		Exporter:  exp,
	}, mons...)

	rt := proc.NewRuntime()
	for _, m := range mons {
		m := m
		for w := 0; w < 2; w++ {
			rt.Spawn("driver", func(p *proc.P) {
				for j := 0; j < 200; j++ {
					if err := m.Enter(p, "Op"); err != nil {
						return
					}
					_ = m.Exit(p, "Op")
					if j%50 == 25 {
						det.CheckNow() // mid-run checkpoints stream segments out
					}
				}
			})
		}
	}
	rt.Join()
	if vs := det.CheckNow(); len(vs) != 0 {
		t.Fatalf("fault-free workload reported violations: %v", vs)
	}
	if err := exp.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if err := exp.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	st := exp.Stats()
	if st.DroppedSegments != 0 {
		t.Fatalf("Block-policy exporter dropped segments: %+v", st)
	}

	var want bytes.Buffer
	if err := db.ExportBinary(&want); err != nil {
		t.Fatalf("ExportBinary: %v", err)
	}
	rep, err := ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	if rep.Recovered {
		t.Fatal("clean run reported Recovered")
	}
	var got bytes.Buffer
	if err := event.WriteBinary(&got, rep.Events); err != nil {
		t.Fatalf("WriteBinary(replay): %v", err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatalf("replayed export differs from WithFullTrace export: %d vs %d bytes, %d vs %d events",
			got.Len(), want.Len(), len(rep.Events), int(db.Total()))
	}
}
