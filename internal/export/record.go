package export

// The standalone record codec. A WAL file is a magic header followed
// by framed records; this file exposes the record framing itself —
// encode one record to bytes, decode one record from bytes — so the
// same encoding that lands on local disk can travel a wire (see
// internal/export/net) and be re-applied to a sink on the far side
// byte-for-byte identically. Sharing appendRecordHeader with
// WALSink.writeRecord is what makes that identity a structural
// property rather than a convention: there is exactly one encoder.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"robustmon/internal/event"
	"robustmon/internal/history"
	"robustmon/internal/obs"
	obsrules "robustmon/internal/obs/rules"
)

// appendRecordHeader appends the v2 record header (type byte, monitor,
// seq range, count, payload length, payload CRC) for the given payload.
// The single shared encoder behind both the WAL writer and the wire
// codec.
func appendRecordHeader(dst []byte, typ byte, monitor string, first, last int64, count uint32, payload []byte) []byte {
	dst = append(dst, typ)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(monitor)))
	dst = append(dst, monitor...)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(first))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(last))
	dst = binary.LittleEndian.AppendUint32(dst, count)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
	return dst
}

// Record is one trace record in standalone (wire) form — exactly one
// of the five kinds is set. The zero Record is invalid.
type Record struct {
	Segment   *Segment
	Marker    *history.RecoveryMarker
	Health    *obs.HealthRecord
	Tombstone *Tombstone
	Alert     *obsrules.Alert
}

// AppendSegmentRecord appends one fully framed segment record
// (header + payload, no file magic) and returns the extended buffer.
// The bytes are exactly what WALSink.WriteSegment would put on disk.
func AppendSegmentRecord(dst []byte, seg Segment) ([]byte, error) {
	if len(seg.Events) == 0 {
		return dst, fmt.Errorf("export: encode record: empty segment")
	}
	if len(seg.Monitor) > maxMonitorName {
		return dst, fmt.Errorf("export: monitor name %d bytes long (limit %d)", len(seg.Monitor), maxMonitorName)
	}
	p := getPayloadBuf(16 + 48*len(seg.Events))
	*p = event.AppendBinary((*p)[:0], seg.Events)
	dst = appendRecordHeader(dst, recSegment, seg.Monitor,
		seg.First(), seg.Last(), uint32(len(seg.Events)), *p)
	dst = append(dst, *p...)
	putPayloadBuf(p)
	return dst, nil
}

// AppendMarkerRecord appends one fully framed recovery-marker record;
// byte-identical to WALSink.WriteMarker's on-disk form.
func AppendMarkerRecord(dst []byte, m history.RecoveryMarker) ([]byte, error) {
	if len(m.Monitor) > maxMonitorName {
		return dst, fmt.Errorf("export: monitor name %d bytes long (limit %d)", len(m.Monitor), maxMonitorName)
	}
	p := getPayloadBuf(64 + len(m.Rule) + len(m.Monitor))
	*p = appendMarker((*p)[:0], m)
	dst = appendRecordHeader(dst, recMarker, m.Monitor,
		m.Horizon, m.Horizon, uint32(m.Dropped), *p)
	dst = append(dst, *p...)
	putPayloadBuf(p)
	return dst, nil
}

// AppendHealthRecord appends one fully framed health-snapshot record;
// byte-identical to WALSink.WriteHealth's on-disk form.
func AppendHealthRecord(dst []byte, h obs.HealthRecord) ([]byte, error) {
	p := getPayloadBuf(256)
	*p = appendHealth((*p)[:0], h)
	dst = appendRecordHeader(dst, recHealth, "", h.Seq, h.Seq, 0, *p)
	dst = append(dst, *p...)
	putPayloadBuf(p)
	return dst, nil
}

// AppendAlertRecord appends one fully framed threshold-alert record;
// byte-identical to WALSink.WriteAlert's on-disk form.
func AppendAlertRecord(dst []byte, a obsrules.Alert) ([]byte, error) {
	p := getPayloadBuf(64 + len(a.Rule) + len(a.Metric) + len(a.Origin))
	*p = appendAlert((*p)[:0], a)
	dst = appendRecordHeader(dst, recAlert, "", a.Seq, a.Seq, 0, *p)
	dst = append(dst, *p...)
	putPayloadBuf(p)
	return dst, nil
}

// AppendTombstoneRecord appends one fully framed retention-tombstone
// record; byte-identical to WALSink.WriteTombstone's on-disk form.
func AppendTombstoneRecord(dst []byte, t Tombstone) ([]byte, error) {
	p := getPayloadBuf(128 + 32*len(t.Monitors))
	*p = appendTombstone((*p)[:0], t)
	dst = appendRecordHeader(dst, recTombstone, "", t.Horizon, t.Horizon,
		saturatingUint32(t.Events), *p)
	dst = append(dst, *p...)
	putPayloadBuf(p)
	return dst, nil
}

// AppendRecord appends whichever kind r carries.
func AppendRecord(dst []byte, r Record) ([]byte, error) {
	switch {
	case r.Segment != nil:
		return AppendSegmentRecord(dst, *r.Segment)
	case r.Marker != nil:
		return AppendMarkerRecord(dst, *r.Marker)
	case r.Health != nil:
		return AppendHealthRecord(dst, *r.Health)
	case r.Tombstone != nil:
		return AppendTombstoneRecord(dst, *r.Tombstone)
	case r.Alert != nil:
		return AppendAlertRecord(dst, *r.Alert)
	}
	return dst, fmt.Errorf("export: encode record: empty record")
}

// DecodeRecord decodes exactly one framed record from b, applying the
// same CRC and header/payload-agreement validation the WAL reader
// applies on disk. Trailing bytes are an error: a frame carries one
// record.
func DecodeRecord(b []byte) (Record, error) {
	r := bytes.NewReader(b)
	br := bufio.NewReader(r)
	rec, terr, rerr := readRecord(br, walVersionLatest)
	if rerr != nil {
		return Record{}, fmt.Errorf("export: decode record: %w", rerr)
	}
	if terr != nil {
		return Record{}, fmt.Errorf("export: decode record: truncated: %w", terr)
	}
	if rest := br.Buffered() + r.Len(); rest > 0 {
		return Record{}, fmt.Errorf("export: decode record: %d trailing bytes", rest)
	}
	switch {
	case rec.marker != nil:
		return Record{Marker: rec.marker}, nil
	case rec.health != nil:
		return Record{Health: rec.health}, nil
	case rec.tomb != nil:
		return Record{Tombstone: rec.tomb}, nil
	case rec.alert != nil:
		return Record{Alert: rec.alert}, nil
	case len(rec.events) > 0:
		return Record{Segment: &Segment{Monitor: rec.events[0].Monitor, Events: rec.events}}, nil
	}
	return Record{}, fmt.Errorf("export: decode record: empty segment")
}

// Apply writes the record to sink, routing markers and health
// snapshots through the sink's optional extensions. Unlike the
// exporter's best-effort type sniffing, a record that the sink cannot
// store is an error: Apply exists for replication, where a silent drop
// would break the byte-identity of the replica.
func (r Record) Apply(sink Sink) error {
	switch {
	case r.Segment != nil:
		return sink.WriteSegment(*r.Segment)
	case r.Marker != nil:
		ms, ok := sink.(MarkerSink)
		if !ok {
			return fmt.Errorf("export: sink %T cannot store recovery markers", sink)
		}
		return ms.WriteMarker(*r.Marker)
	case r.Health != nil:
		hs, ok := sink.(HealthSink)
		if !ok {
			return fmt.Errorf("export: sink %T cannot store health snapshots", sink)
		}
		return hs.WriteHealth(*r.Health)
	case r.Tombstone != nil:
		ts, ok := sink.(TombstoneSink)
		if !ok {
			return fmt.Errorf("export: sink %T cannot store retention tombstones", sink)
		}
		return ts.WriteTombstone(*r.Tombstone)
	case r.Alert != nil:
		as, ok := sink.(AlertSink)
		if !ok {
			return fmt.Errorf("export: sink %T cannot store threshold alerts", sink)
		}
		return as.WriteAlert(*r.Alert)
	}
	return fmt.Errorf("export: apply record: empty record")
}
