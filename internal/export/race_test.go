package export

import (
	"fmt"
	"sync"
	"testing"

	"robustmon/internal/history"
)

// TestConcurrentDrainsNeverDupOrDropSeqs tails a live database with an
// exporter while appenders, global Drains and per-monitor
// DrainMonitors all race: every sequence number the database assigned
// must reach the sink exactly once. This is the correctness contract
// of the drain tee — each event is drained once (segments are swapped
// out under the shard lock) and teed once.
func TestConcurrentDrainsNeverDupOrDropSeqs(t *testing.T) {
	t.Parallel()
	for _, global := range []bool{false, true} {
		global := global
		t.Run(fmt.Sprintf("global=%v", global), func(t *testing.T) {
			t.Parallel()
			var opts []history.Option
			if global {
				opts = append(opts, history.WithGlobalLock())
			}
			db := history.New(opts...)
			sink := &MemorySink{}
			exp := New(sink, Config{Policy: Block, Buffer: 8})
			db.SetDrainTee(exp.Consume)

			const (
				monitors = 4
				appends  = 500
			)
			var wg sync.WaitGroup
			stop := make(chan struct{})
			// Appenders: one per monitor.
			for m := 0; m < monitors; m++ {
				name := fmt.Sprintf("m%d", m)
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < appends; i++ {
						db.Append(tev(name, 0)) // Seq assigned by the DB
					}
				}()
			}
			// A global drainer and a per-monitor drainer race the
			// appenders (and each other) until the appenders finish.
			var drainers sync.WaitGroup
			drainers.Add(2)
			go func() {
				defer drainers.Done()
				for {
					db.Drain()
					select {
					case <-stop:
						return
					default:
					}
				}
			}()
			go func() {
				defer drainers.Done()
				for {
					for m := 0; m < monitors; m++ {
						db.DrainMonitor(fmt.Sprintf("m%d", m))
					}
					select {
					case <-stop:
						return
					default:
					}
				}
			}()
			wg.Wait()
			close(stop)
			drainers.Wait()
			db.Drain() // final sweep for anything still buffered
			if err := exp.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}

			want := db.LastSeq()
			if want != monitors*appends {
				t.Fatalf("LastSeq = %d, want %d", want, monitors*appends)
			}
			seen := make(map[int64]int, want)
			for _, seg := range sink.Segments() {
				for _, e := range seg.Events {
					seen[e.Seq]++
				}
			}
			for seq := int64(1); seq <= want; seq++ {
				switch seen[seq] {
				case 1:
				case 0:
					t.Fatalf("seq %d was recorded but never exported (dropped)", seq)
				default:
					t.Fatalf("seq %d exported %d times (duplicated)", seq, seen[seq])
				}
			}
			if len(seen) != int(want) {
				t.Fatalf("exported %d distinct seqs, want %d", len(seen), want)
			}
		})
	}
}
