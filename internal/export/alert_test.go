package export

import (
	"os"
	"testing"
	"time"

	"robustmon/internal/event"
	obsrules "robustmon/internal/obs/rules"
)

func testAlert(seq int64, firing bool) obsrules.Alert {
	return obsrules.Alert{
		At:      time.Unix(1700000000, 123456789),
		Seq:     seq,
		Rule:    "detect-slow",
		Metric:  "detect_check_ns_p99",
		Value:   1.5e6,
		Ceiling: 1e6,
		Firing:  firing,
		Origin:  "node-a",
	}
}

func TestAlertCodecRoundTrip(t *testing.T) {
	for _, a := range []obsrules.Alert{
		testAlert(42, true),
		testAlert(43, false),             // a clear
		{At: time.Unix(0, 0), Rule: "r"}, // minimal
		{At: time.Unix(1, 1).Add(-3 * time.Second), Seq: -7, Rule: "neg", Value: -0.25, Ceiling: -1},
	} {
		got, err := decodeAlert(encodeAlert(a))
		if err != nil {
			t.Fatalf("decode %+v: %v", a, err)
		}
		if !got.At.Equal(a.At) {
			t.Fatalf("At = %v, want %v", got.At, a.At)
		}
		got.At = a.At // Equal but possibly different wall/monotonic repr
		if got != a {
			t.Fatalf("round trip = %+v, want %+v", got, a)
		}
	}
}

func TestAlertCodecRejectsDamage(t *testing.T) {
	good := encodeAlert(testAlert(9, true))
	if _, err := decodeAlert(good[:len(good)-1]); err == nil {
		t.Fatal("truncated payload decoded")
	}
	if _, err := decodeAlert(append(append([]byte(nil), good...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	bad := append([]byte(nil), good...)
	bad[0] = alertVersion + 1
	if _, err := decodeAlert(bad); err == nil {
		t.Fatal("unknown version accepted")
	}
	bad = append([]byte(nil), good...)
	bad[len(bad)-1] = 2 // firing byte must be 0 or 1
	if _, err := decodeAlert(bad); err == nil {
		t.Fatal("firing=2 accepted")
	}
}

func TestAlertKeyIdentity(t *testing.T) {
	a := testAlert(10, true)
	if AlertKey(a) != AlertKey(a) {
		t.Fatal("AlertKey not deterministic")
	}
	b := a
	b.Firing = false
	if AlertKey(a) == AlertKey(b) {
		t.Fatal("fired and cleared alerts share a key")
	}
}

// TestWALSinkAlertRoundTrip writes alerts interleaved with other record
// kinds through a WALSink and checks ReadDir surfaces them in record
// order, windowed replay included.
func TestWALSinkAlertRoundTrip(t *testing.T) {
	dir := t.TempDir()
	sink, err := NewWALSink(dir, WALConfig{})
	if err != nil {
		t.Fatal(err)
	}
	fired := testAlert(5, true)
	cleared := testAlert(12, false)
	at := time.Date(2001, 7, 1, 0, 0, 0, 0, time.UTC)
	seg := event.Seq{
		{Seq: 1, Monitor: "m", Type: event.Enter, Pid: 1, Proc: "Op", Flag: event.Completed, Time: at},
	}
	if err := sink.WriteSegment(Segment{Monitor: "m", Events: seg}); err != nil {
		t.Fatal(err)
	}
	if err := sink.WriteAlert(fired); err != nil {
		t.Fatal(err)
	}
	if err := sink.WriteAlert(cleared); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	rep, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Alerts) != 2 {
		t.Fatalf("got %d alerts, want 2", len(rep.Alerts))
	}
	if !rep.Alerts[0].Firing || rep.Alerts[1].Firing {
		t.Fatalf("alert order lost: %+v", rep.Alerts)
	}
	if rep.Alerts[0].Rule != fired.Rule || rep.Alerts[0].Origin != fired.Origin {
		t.Fatalf("alert fields lost: %+v", rep.Alerts[0])
	}
	if rep.DuplicateAlerts != 0 {
		t.Fatalf("DuplicateAlerts = %d, want 0", rep.DuplicateAlerts)
	}
}

func TestMergeReplayDedupsAlerts(t *testing.T) {
	a := testAlert(5, true)
	b := testAlert(12, false)
	merged, err := MergeReplay(nil, nil, nil, nil, []obsrules.Alert{a, b, a})
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Alerts) != 2 {
		t.Fatalf("got %d alerts, want 2", len(merged.Alerts))
	}
	if merged.Alerts[0] != a || merged.Alerts[1] != b {
		t.Fatalf("first-occurrence order lost: %+v", merged.Alerts)
	}
	if merged.DuplicateAlerts != 1 {
		t.Fatalf("DuplicateAlerts = %d, want 1", merged.DuplicateAlerts)
	}
}

// TestAlertCorruptPayloadSkipped damages an alert payload on disk and
// checks the reader skips the record rather than surfacing garbage.
func TestAlertCorruptPayloadSkipped(t *testing.T) {
	dir := t.TempDir()
	sink, err := NewWALSink(dir, WALConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.WriteAlert(testAlert(5, true)); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	names, err := WALFiles(dir)
	if err != nil || len(names) != 1 {
		t.Fatalf("WALFiles: %v %v", names, err)
	}
	// Flip the firing byte — the final payload byte of the file — so
	// the payload no longer matches the CRC in its header: the reader
	// skips the record and counts it corrupt instead of surfacing a
	// damaged alert.
	raw, err := os.ReadFile(names[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 1
	if err := os.WriteFile(names[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Alerts) != 0 || rep.CorruptRecords != 1 {
		t.Fatalf("corrupt alert record surfaced: %d alerts, %d corrupt", len(rep.Alerts), rep.CorruptRecords)
	}
}
