package export

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"robustmon/internal/event"
	"robustmon/internal/history"
)

// TestBatchedIngestExportBytesIdentical is the PR's acceptance pin: a
// deterministic workload recorded through BatchWriters (including
// batch sizes that do not divide the event count, so the final flush
// publishes a partial block) must export the *byte-identical* WAL a
// singleton-Append run exports. Sequence assignment, segment contents
// and the on-disk encoding all have to agree for this to hold — it is
// the end-to-end statement of "AppendBatch means N Appends".
func TestBatchedIngestExportBytesIdentical(t *testing.T) {
	t.Parallel()
	const (
		monitors       = 3
		perMonitor     = 100
		awkwardBatch   = 7 // 100 % 7 != 0: the tail flush is a partial block
		maxFileBytes   = 4 << 10
		segmentsPerMon = 4 // drain in several segments, mid-stream
	)
	names := make([]string, monitors)
	for i := range names {
		names[i] = fmt.Sprintf("m%d", i)
	}

	// run records the workload monitor-major (deterministic sequence
	// assignment), draining each monitor into the WAL every
	// perMonitor/segmentsPerMon events, and returns the WAL directory
	// plus the concatenated bytes of its sealed files.
	run := func(t *testing.T, batched bool) (string, []byte) {
		dir := t.TempDir()
		sink, err := NewWALSink(dir, WALConfig{MaxFileBytes: maxFileBytes})
		if err != nil {
			t.Fatal(err)
		}
		db := history.New()
		drainTo := func(mon string) {
			if seg := db.DrainMonitor(mon); len(seg) > 0 {
				if err := sink.WriteSegment(Segment{Monitor: mon, Events: seg}); err != nil {
					t.Fatal(err)
				}
			}
		}
		chunk := perMonitor / segmentsPerMon
		for _, mon := range names {
			var w *history.BatchWriter
			if batched {
				w = db.NewBatchWriter(mon, awkwardBatch)
			}
			for i := 1; i <= perMonitor; i++ {
				e := event.Event{
					Monitor: mon, Type: event.Enter, Pid: int64(i),
					Proc: "Op", Flag: event.Completed,
					Time: time.Date(2001, 7, 1, 0, 0, i, 0, time.UTC),
				}
				if batched {
					w.Append(e)
				} else {
					db.Append(e)
				}
				if i%chunk == 0 {
					// A mid-stream checkpoint: the handshake flushes the
					// monitor's writers, then drains — exactly what the
					// detector does with the monitor frozen.
					db.FlushMonitorWriters(mon)
					drainTo(mon)
				}
			}
			if batched {
				w.Close()
			}
			drainTo(mon)
		}
		if err := sink.Close(); err != nil {
			t.Fatal(err)
		}
		files, err := filepath.Glob(filepath.Join(dir, "*.wal"))
		if err != nil {
			t.Fatal(err)
		}
		if len(files) == 0 {
			t.Fatal("no WAL files written")
		}
		var all bytes.Buffer
		for _, f := range files {
			blob, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			fmt.Fprintf(&all, "-- %s --\n", filepath.Base(f))
			all.Write(blob)
		}
		return dir, all.Bytes()
	}

	_, serial := run(t, false)
	batchedDir, batched := run(t, true)
	if !bytes.Equal(serial, batched) {
		i := 0
		for i < len(serial) && i < len(batched) && serial[i] == batched[i] {
			i++
		}
		t.Fatalf("batched-ingest WAL diverges from singleton-Append WAL at byte %d (serial %d bytes, batched %d bytes)",
			i, len(serial), len(batched))
	}

	// And the batched WAL replays to exactly the recorded event count,
	// in global order.
	replay, err := ReadDir(batchedDir)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(replay.Events), monitors*perMonitor; got != want {
		t.Fatalf("replayed %d events, want %d", got, want)
	}
	for i, e := range replay.Events {
		if e.Seq != int64(i+1) {
			t.Fatalf("replay[%d].Seq = %d, want %d", i, e.Seq, i+1)
		}
	}
}
