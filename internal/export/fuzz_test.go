package export

import (
	"bytes"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"robustmon/internal/event"
)

// fuzzSeedWAL builds a well-formed single-file WAL (two records, two
// monitors) and returns its raw bytes.
func fuzzSeedWAL(f *testing.F) []byte {
	f.Helper()
	dir := f.TempDir()
	w, err := NewWALSink(dir, WALConfig{})
	if err != nil {
		f.Fatal(err)
	}
	at := time.Date(2001, 7, 1, 0, 0, 0, 0, time.UTC)
	if err := w.WriteSegment(Segment{Monitor: "a", Events: event.Seq{
		{Seq: 1, Monitor: "a", Type: event.Enter, Pid: 1, Proc: "Op", Flag: event.Completed, Time: at},
		{Seq: 3, Monitor: "a", Type: event.SignalExit, Pid: 1, Proc: "Op", Time: at.Add(time.Second)},
	}}); err != nil {
		f.Fatal(err)
	}
	if err := w.WriteSegment(Segment{Monitor: "b", Events: event.Seq{
		{Seq: 2, Monitor: "b", Type: event.Enter, Pid: 2, Proc: "Op", Flag: event.Blocked, Time: at},
	}}); err != nil {
		f.Fatal(err)
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	names, err := walFiles(dir)
	if err != nil || len(names) != 1 {
		f.Fatalf("seed wal: %v files, err=%v", names, err)
	}
	blob, err := os.ReadFile(names[0])
	if err != nil {
		f.Fatal(err)
	}
	return blob
}

// FuzzReadWALFile throws corrupt, truncated and hostile byte streams
// at the WAL segment-file reader. The contract mirrors the event
// decoder's: readWALFile either returns decoded records, a torn-tail
// report, or an error — it must never panic, and a lying header length
// field must never balloon the allocator. Whatever it does accept must
// round-trip through the WAL writer byte-identically.
func FuzzReadWALFile(f *testing.F) {
	seed := fuzzSeedWAL(f)
	magicLen := len(walMagicPrefix) + 1
	magicV1 := append(append([]byte{}, walMagicPrefix[:]...), walVersion1)
	magicV2 := append(append([]byte{}, walMagicPrefix[:]...), walVersion2)
	f.Add(seed)
	for _, cut := range []int{0, 1, magicLen, magicLen + 1, len(seed) / 2, len(seed) - 1} {
		if cut < len(seed) {
			f.Add(seed[:cut])
		}
	}
	// Zero-filled tail after a valid prefix: the filesystem crash shape.
	f.Add(append(append([]byte{}, seed...), make([]byte, 64)...))
	// Valid magic, absurd monitor-name length (v1: no record-type byte).
	f.Add(append(append([]byte{}, magicV1...), 0xff, 0xff, 0x01))
	// Same in the current format, behind a segment record-type byte.
	f.Add(append(append([]byte{}, magicV2...), recSegment, 0xff, 0xff, 0x01))
	// Unknown record type right after a valid v2 magic.
	f.Add(append(append([]byte{}, magicV2...), 0x7f))
	// Full v1 record header whose payload-length field lies just under
	// the 1 GiB plausibility cap, with nothing behind it: the reader
	// must report a torn record without ballooning (the io.CopyN guard).
	lyingHeader := append([]byte{}, magicV1...)
	lyingHeader = append(lyingHeader, 1, 0, 'a')              // monitor "a"
	lyingHeader = append(lyingHeader, make([]byte, 16)...)    // first/last seq
	lyingHeader = append(lyingHeader, 1, 0, 0, 0)             // count 1
	lyingHeader = append(lyingHeader, 0x00, 0x00, 0x00, 0x3f) // payload len ≈ 1 GiB − ε
	lyingHeader = append(lyingHeader, 0xde, 0xad, 0xbe, 0xef) // CRC (never reached)
	f.Add(lyingHeader)
	// A marker record (current format) so the fuzzer mutates that shape
	// too.
	mdir := f.TempDir()
	mw, err := NewWALSink(mdir, WALConfig{})
	if err != nil {
		f.Fatal(err)
	}
	if err := mw.WriteMarker(historyMarkerSeed()); err != nil {
		f.Fatal(err)
	}
	if err := mw.Close(); err != nil {
		f.Fatal(err)
	}
	if names, err := walFiles(mdir); err == nil && len(names) == 1 {
		if blob, err := os.ReadFile(names[0]); err == nil {
			f.Add(blob)
		}
	}
	// A tombstone record (the retention horizon, record kind 3) so the
	// fuzzer mutates that shape too: horizon fields, cumulative counts
	// and the per-monitor truncated ranges.
	tdir := f.TempDir()
	tw, err := NewWALSink(tdir, WALConfig{})
	if err != nil {
		f.Fatal(err)
	}
	if err := tw.WriteTombstone(Tombstone{
		Horizon: 10, Events: 9, Records: 3, Files: 1,
		Monitors: []TruncatedRange{
			{Monitor: "a", MinSeq: 1, MaxSeq: 4, Events: 4},
			{Monitor: "b", MinSeq: 5, MaxSeq: 9, Events: 5},
		},
		At: time.Date(2001, 7, 1, 0, 0, 0, 0, time.UTC),
	}); err != nil {
		f.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		f.Fatal(err)
	}
	if names, err := walFiles(tdir); err == nil && len(names) == 1 {
		if blob, err := os.ReadFile(names[0]); err == nil {
			f.Add(blob)
		}
	}
	f.Add([]byte("not a wal at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		name := filepath.Join(dir, "00000001.wal")
		if err := os.WriteFile(name, data, 0o666); err != nil {
			t.Fatal(err)
		}
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		fr, err := readWALFile(name)
		runtime.ReadMemStats(&after)
		// A hostile header may claim up to 1 GiB of payload; anything the
		// reader actually allocates must be backed by real input bytes,
		// not by the claim (generous slack for decode overhead).
		if grew := after.TotalAlloc - before.TotalAlloc; grew > uint64(len(data))*8+1<<20 {
			t.Fatalf("readWALFile allocated %d bytes on %d input bytes", grew, len(data))
		}
		if err != nil {
			return // corruption verdicts need no further checking
		}
		segs, markers, torn := fr.segs, fr.markers, fr.torn
		// Whatever the reader accepts, the header-only scanner must
		// accept too, and their structural views must agree — the index
		// is built from scans but admits files for the replaying reader.
		sum, serr := ScanFile(name)
		if serr != nil {
			t.Fatalf("ScanFile rejected what readWALFile accepted: %v", serr)
		}
		if want := len(segs) + len(markers) + len(fr.healths) + len(fr.tombs) + fr.corrupt; sum.Records != want {
			t.Fatalf("ScanFile saw %d records, reader decoded %d", sum.Records, want)
		}
		// Corrupt records keep their headers in the scan, so the scanner
		// may index more markers than the reader decoded — never fewer.
		if len(sum.Markers) < len(markers) {
			t.Fatalf("ScanFile indexed %d markers, reader decoded %d", len(sum.Markers), len(markers))
		}
		// Accepted records must be internally coherent and re-writable:
		// replaying them through a fresh sink and reading back yields the
		// same events (the montrace replay path depends on this).
		total := 0
		for _, seg := range segs {
			total += len(seg)
			if len(seg) == 0 {
				t.Fatal("reader returned an empty record")
			}
		}
		if total == 0 {
			return
		}
		redir := t.TempDir()
		w, werr := NewWALSink(redir, WALConfig{})
		if werr != nil {
			t.Fatal(werr)
		}
		for _, seg := range segs {
			if werr := w.WriteSegment(Segment{Monitor: seg[0].Monitor, Events: seg}); werr != nil {
				t.Fatalf("re-write of accepted record failed: %v", werr)
			}
		}
		if werr := w.Close(); werr != nil {
			t.Fatal(werr)
		}
		rep, rerr := ReadDir(redir)
		if rerr != nil {
			t.Fatalf("re-read of re-written records failed: %v", rerr)
		}
		want := event.Merge(segs...)
		if len(rep.Events) != len(want) {
			t.Fatalf("round trip changed event count: %d → %d", len(want), len(rep.Events))
		}
		var a, b bytes.Buffer
		if err := event.WriteBinary(&a, want); err != nil {
			t.Fatal(err)
		}
		if err := event.WriteBinary(&b, rep.Events); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatal("round trip changed event bytes")
		}
		_, _ = torn, markers
	})
}
