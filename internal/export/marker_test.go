package export

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"robustmon/internal/event"
	"robustmon/internal/history"
)

// historyMarkerSeed is the reference marker used by tests and the fuzz
// seed corpus.
func historyMarkerSeed() history.RecoveryMarker {
	return history.RecoveryMarker{
		Monitor: "mon03",
		Horizon: 4217,
		Dropped: 12,
		Rule:    "ST-R",
		Pid:     7,
		At:      time.Date(2001, 7, 1, 12, 30, 0, 250, time.UTC),
	}
}

func TestMarkerPayloadRoundTrip(t *testing.T) {
	t.Parallel()
	cases := []history.RecoveryMarker{
		historyMarkerSeed(),
		{Monitor: "m", Horizon: 1, At: time.Unix(0, 0).UTC()}, // zero dropped, no rule/pid
		{Monitor: "x", Horizon: 1 << 40, Dropped: 1 << 20, Rule: "FD-1a", Pid: -3,
			At: time.Date(2026, 7, 26, 0, 0, 0, 999, time.UTC)},
	}
	for _, want := range cases {
		got, err := decodeMarker(encodeMarker(want))
		if err != nil {
			t.Fatalf("decode(encode(%+v)): %v", want, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("marker round trip changed it:\n got %+v\nwant %+v", got, want)
		}
	}
}

func TestDecodeMarkerRejectsDamage(t *testing.T) {
	t.Parallel()
	good := encodeMarker(historyMarkerSeed())
	if _, err := decodeMarker(good[:len(good)-1]); err == nil {
		t.Fatal("truncated marker payload decoded")
	}
	if _, err := decodeMarker(append(append([]byte{}, good...), 0)); err == nil {
		t.Fatal("marker payload with trailing bytes decoded")
	}
	bad := append([]byte{}, good...)
	bad[0] = 99 // unknown payload version
	if _, err := decodeMarker(bad); err == nil {
		t.Fatal("unknown marker version decoded")
	}
	if _, err := decodeMarker(nil); err == nil {
		t.Fatal("empty marker payload decoded")
	}
}

// TestWALMarkerRoundTrip is the acceptance pin: markers written through
// the WAL come back from ReadDir, interleaved correctly with segment
// records, and do not disturb the event replay.
func TestWALMarkerRoundTrip(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	w, err := NewWALSink(dir, WALConfig{})
	if err != nil {
		t.Fatal(err)
	}
	at := time.Date(2001, 7, 1, 0, 0, 0, 0, time.UTC)
	seg1 := event.Seq{
		{Seq: 1, Monitor: "a", Type: event.Enter, Pid: 1, Proc: "Op", Flag: event.Completed, Time: at},
		{Seq: 2, Monitor: "a", Type: event.SignalExit, Pid: 1, Proc: "Op", Time: at},
	}
	seg2 := event.Seq{
		{Seq: 3, Monitor: "b", Type: event.Enter, Pid: 2, Proc: "Op", Flag: event.Completed, Time: at},
	}
	mk1 := historyMarkerSeed()
	mk2 := history.RecoveryMarker{Monitor: "b", Horizon: 3, Dropped: 0, Rule: "ST-1", At: at}
	if err := w.WriteSegment(Segment{Monitor: "a", Events: seg1}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteMarker(mk1); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteSegment(Segment{Monitor: "b", Events: seg2}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteMarker(mk2); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	rep, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Segments != 2 || len(rep.Events) != 3 {
		t.Fatalf("replay: %d segments, %d events; want 2, 3", rep.Segments, len(rep.Events))
	}
	want := []history.RecoveryMarker{mk1, mk2}
	if !reflect.DeepEqual(rep.Markers, want) {
		t.Fatalf("markers did not round-trip:\n got %+v\nwant %+v", rep.Markers, want)
	}
	if rep.Recovered {
		t.Fatal("clean directory reported a recovered tail")
	}
}

// TestWALMarkerThroughExporter drives a marker through the async
// pipeline: Consume + ConsumeMarker on the exporter, WAL on disk,
// ReadDir back.
func TestWALMarkerThroughExporter(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	sink, err := NewWALSink(dir, WALConfig{})
	if err != nil {
		t.Fatal(err)
	}
	exp := New(sink, Config{Policy: Block})
	at := time.Date(2001, 7, 1, 0, 0, 0, 0, time.UTC)
	exp.Consume("a", event.Seq{{Seq: 1, Monitor: "a", Type: event.Enter, Pid: 1, Proc: "Op", Flag: event.Completed, Time: at}})
	mk := historyMarkerSeed()
	exp.ConsumeMarker(mk)
	if err := exp.Close(); err != nil {
		t.Fatal(err)
	}
	st := exp.Stats()
	if st.Markers != 1 || st.MarkersWritten != 1 {
		t.Fatalf("marker stats: accepted %d written %d, want 1/1", st.Markers, st.MarkersWritten)
	}
	rep, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Markers) != 1 || !reflect.DeepEqual(rep.Markers[0], mk) {
		t.Fatalf("markers = %+v, want [%+v]", rep.Markers, mk)
	}
	// After Close the exporter discards markers instead of blocking.
	exp.ConsumeMarker(mk)
	if got := exp.Stats().Markers; got != 1 {
		t.Fatalf("marker accepted after Close (count %d)", got)
	}
}

// TestMarkerSinkOptional: an exporter over a sink without MarkerSink
// must swallow markers without erroring — the marker is simply not
// persisted.
func TestMarkerSinkOptional(t *testing.T) {
	t.Parallel()
	exp := New(&segmentOnlySink{}, Config{})
	exp.ConsumeMarker(historyMarkerSeed())
	if err := exp.Close(); err != nil {
		t.Fatal(err)
	}
	st := exp.Stats()
	if st.Markers != 1 || st.MarkersWritten != 0 || st.WriteErrors != 0 {
		t.Fatalf("stats = %+v, want 1 accepted, 0 written, 0 errors", st)
	}
}

// segmentOnlySink implements Sink but not MarkerSink.
type segmentOnlySink struct{}

func (segmentOnlySink) WriteSegment(Segment) error { return nil }
func (segmentOnlySink) Flush() error               { return nil }
func (segmentOnlySink) Close() error               { return nil }

// writeV1File hand-writes a format-version-1 WAL file (no record-type
// bytes) holding the given segments — what every pre-marker release of
// the sink produced.
func writeV1File(t *testing.T, name string, segs []Segment) {
	t.Helper()
	var buf bytes.Buffer
	buf.Write(walMagicPrefix[:])
	buf.WriteByte(walVersion1)
	var scratch [8]byte
	for _, seg := range segs {
		var payload bytes.Buffer
		if err := event.WriteBinary(&payload, seg.Events); err != nil {
			t.Fatal(err)
		}
		binary.LittleEndian.PutUint16(scratch[:2], uint16(len(seg.Monitor)))
		buf.Write(scratch[:2])
		buf.WriteString(seg.Monitor)
		binary.LittleEndian.PutUint64(scratch[:], uint64(seg.First()))
		buf.Write(scratch[:8])
		binary.LittleEndian.PutUint64(scratch[:], uint64(seg.Last()))
		buf.Write(scratch[:8])
		binary.LittleEndian.PutUint32(scratch[:4], uint32(len(seg.Events)))
		buf.Write(scratch[:4])
		binary.LittleEndian.PutUint32(scratch[:4], uint32(payload.Len()))
		buf.Write(scratch[:4])
		binary.LittleEndian.PutUint32(scratch[:4], crc32.ChecksumIEEE(payload.Bytes()))
		buf.Write(scratch[:4])
		buf.Write(payload.Bytes())
	}
	if err := os.WriteFile(name, buf.Bytes(), 0o666); err != nil {
		t.Fatal(err)
	}
}

// TestReadDirAcceptsV1Files pins backward compatibility: an export
// directory written before the marker format (version 1, no record-type
// bytes) still replays, marker-free — including mixed directories where
// a resumed append added version-2 files after it.
func TestReadDirAcceptsV1Files(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	at := time.Date(2001, 7, 1, 0, 0, 0, 0, time.UTC)
	seg := event.Seq{
		{Seq: 1, Monitor: "a", Type: event.Enter, Pid: 1, Proc: "Op", Flag: event.Completed, Time: at},
		{Seq: 2, Monitor: "a", Type: event.SignalExit, Pid: 1, Proc: "Op", Time: at},
	}
	writeV1File(t, filepath.Join(dir, "00000001.wal"), []Segment{{Monitor: "a", Events: seg}})

	rep, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Events) != 2 || len(rep.Markers) != 0 {
		t.Fatalf("v1 replay: %d events, %d markers; want 2, 0", len(rep.Events), len(rep.Markers))
	}

	// Resume-append: the current sink numbers itself after the v1 file
	// and writes the current format alongside.
	w, err := NewWALSink(dir, WALConfig{})
	if err != nil {
		t.Fatal(err)
	}
	seg2 := event.Seq{{Seq: 3, Monitor: "b", Type: event.Enter, Pid: 2, Proc: "Op", Flag: event.Completed, Time: at}}
	if err := w.WriteSegment(Segment{Monitor: "b", Events: seg2}); err != nil {
		t.Fatal(err)
	}
	mk := historyMarkerSeed()
	if err := w.WriteMarker(mk); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err = ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Events) != 3 || rep.Files != 2 {
		t.Fatalf("mixed replay: %d events in %d files; want 3 in 2", len(rep.Events), rep.Files)
	}
	if len(rep.Markers) != 1 || !reflect.DeepEqual(rep.Markers[0], mk) {
		t.Fatalf("mixed replay markers = %+v", rep.Markers)
	}
}

// TestTornMarkerTailRecovers: a crash mid-marker behaves exactly like a
// crash mid-segment — the torn tail of the newest file is dropped and
// everything before it survives.
func TestTornMarkerTailRecovers(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	w, err := NewWALSink(dir, WALConfig{})
	if err != nil {
		t.Fatal(err)
	}
	at := time.Date(2001, 7, 1, 0, 0, 0, 0, time.UTC)
	if err := w.WriteSegment(Segment{Monitor: "a", Events: event.Seq{
		{Seq: 1, Monitor: "a", Type: event.Enter, Pid: 1, Proc: "Op", Flag: event.Completed, Time: at},
	}}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteMarker(historyMarkerSeed()); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	names, err := walFiles(dir)
	if err != nil || len(names) != 1 {
		t.Fatalf("wal files: %v, %v", names, err)
	}
	blob, err := os.ReadFile(names[0])
	if err != nil {
		t.Fatal(err)
	}
	// Chop into the marker record's payload.
	if err := os.WriteFile(names[0], blob[:len(blob)-3], 0o666); err != nil {
		t.Fatal(err)
	}
	rep, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Recovered {
		t.Fatal("torn marker tail not reported as recovered")
	}
	if len(rep.Events) != 1 || len(rep.Markers) != 0 {
		t.Fatalf("recovered replay: %d events, %d markers; want 1, 0", len(rep.Events), len(rep.Markers))
	}
}
