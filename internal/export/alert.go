package export

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"time"

	obsrules "robustmon/internal/obs/rules"
)

// Threshold-alert records in the export stream. A detector running an
// obsrules.Engine over its health snapshots (detect.Config.Rules)
// persists every rule transition — fire or clear — as a typed WAL
// record right next to the health timeline that triggered it, and a
// fleet collector does the same for its fleet-level rules (per-origin
// staleness), stamping Alert.Origin. Sinks implementing AlertSink
// store them; ReadDir returns them in Replay.Alerts, so `montrace
// check`/`dump` show the pipeline's own degradation alongside the
// application faults it was recording at the time.

// AlertSink is the optional Sink extension for threshold-alert
// records. A sink without it simply drops them (the exporter counts
// them as accepted either way); both built-in sinks implement it.
type AlertSink interface {
	// WriteAlert persists one rule-transition alert. Like WriteSegment
	// it is driven by the exporter's single writer goroutine.
	WriteAlert(a obsrules.Alert) error
}

// alertVersion versions the alert payload blob.
const alertVersion = 1

// appendAlert serialises an alert into the self-contained payload blob
// of a recAlert WAL record, appended to dst: a version byte, varint
// instant and horizon, the rule/metric/origin strings length-prefixed,
// the observed value and ceiling as IEEE-754 bit patterns, and the
// transition direction as one byte. Deterministic by construction, so
// identical alerts encode to identical bytes — the dedup identity
// (AlertKey) that lets replay collapse compaction overlap, exactly as
// for health records.
func appendAlert(dst []byte, a obsrules.Alert) []byte {
	var scratch [binary.MaxVarintLen64]byte
	putVarint := func(v int64) {
		dst = append(dst, scratch[:binary.PutVarint(scratch[:], v)]...)
	}
	putUvarint := func(v uint64) {
		dst = append(dst, scratch[:binary.PutUvarint(scratch[:], v)]...)
	}
	putString := func(s string) {
		putUvarint(uint64(len(s)))
		dst = append(dst, s...)
	}
	dst = append(dst, alertVersion)
	putVarint(a.At.UnixNano())
	putVarint(a.Seq)
	putString(a.Rule)
	putString(a.Metric)
	putString(a.Origin)
	putUvarint(math.Float64bits(a.Value))
	putUvarint(math.Float64bits(a.Ceiling))
	firing := byte(0)
	if a.Firing {
		firing = 1
	}
	dst = append(dst, firing)
	return dst
}

// encodeAlert is appendAlert into a fresh buffer (tests and non-pooled
// callers).
func encodeAlert(a obsrules.Alert) []byte {
	return appendAlert(nil, a)
}

// decodeAlert reverses encodeAlert.
func decodeAlert(payload []byte) (obsrules.Alert, error) {
	br := bytes.NewReader(payload)
	var a obsrules.Alert
	ver, err := br.ReadByte()
	if err != nil {
		return a, fmt.Errorf("alert version: %w", err)
	}
	if ver != alertVersion {
		return a, fmt.Errorf("unknown alert version %d", ver)
	}
	getString := func(what string) (string, error) {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return "", fmt.Errorf("alert %s length: %w", what, err)
		}
		if n > maxMonitorName {
			return "", fmt.Errorf("implausible alert %s length %d", what, n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", fmt.Errorf("alert %s: %w", what, err)
		}
		return string(buf), nil
	}
	getFloat := func(what string) (float64, error) {
		bits, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, fmt.Errorf("alert %s: %w", what, err)
		}
		return math.Float64frombits(bits), nil
	}
	nanos, err := binary.ReadVarint(br)
	if err != nil {
		return a, fmt.Errorf("alert instant: %w", err)
	}
	a.At = time.Unix(0, nanos).UTC()
	if a.Seq, err = binary.ReadVarint(br); err != nil {
		return a, fmt.Errorf("alert horizon: %w", err)
	}
	if a.Rule, err = getString("rule"); err != nil {
		return a, err
	}
	if a.Metric, err = getString("metric"); err != nil {
		return a, err
	}
	if a.Origin, err = getString("origin"); err != nil {
		return a, err
	}
	if a.Value, err = getFloat("value"); err != nil {
		return a, err
	}
	if a.Ceiling, err = getFloat("ceiling"); err != nil {
		return a, err
	}
	firing, err := br.ReadByte()
	if err != nil {
		return a, fmt.Errorf("alert direction: %w", err)
	}
	if firing > 1 {
		return a, fmt.Errorf("implausible alert direction byte %d", firing)
	}
	a.Firing = firing == 1
	if br.Len() != 0 {
		return a, fmt.Errorf("%d trailing bytes after alert", br.Len())
	}
	return a, nil
}

// AlertKey is the exact-duplicate identity of an alert — its
// deterministic encoding — used by MergeReplay (and the compactor) to
// collapse the duplicates an interrupted compaction leaves behind.
// Alert is Go-comparable, but keying on the encoding keeps the dedup
// semantics identical across all record kinds: two alerts are the same
// record iff their bytes are.
func AlertKey(a obsrules.Alert) string {
	return string(encodeAlert(a))
}
