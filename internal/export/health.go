package export

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"robustmon/internal/obs"
)

// Health-snapshot records in the export stream. A detector configured
// with a health cadence (detect.Config.HealthEvery) periodically
// captures its obs metrics registry as an obs.HealthRecord and sends
// it through the exporter like a recovery marker; sinks implementing
// HealthSink persist it (WALSink as a typed WAL record, MemorySink in
// memory) and ReadDir returns them in Replay.Healths, so any export
// directory carries its own health timeline — `montrace stats`
// renders it, windowed through the trace-store index.

// HealthSink is the optional Sink extension for health-snapshot
// records. A sink without it simply drops them (the exporter counts
// them as accepted either way); both built-in sinks implement it.
type HealthSink interface {
	// WriteHealth persists one health snapshot. Like WriteSegment it is
	// driven by the exporter's single writer goroutine.
	WriteHealth(h obs.HealthRecord) error
}

// healthVersion versions the health payload blob.
const healthVersion = 1

// Decode guards: a corrupted length field must not balloon the
// reader. Metric names share the monitor-name bound; a snapshot
// plausibly holds at most a few hundred metrics.
const (
	maxHealthMetrics = 1 << 16
	maxHealthBuckets = 65
)

// appendHealth serialises a health record into the self-contained
// payload blob of a recHealth WAL record, appended to dst: a version
// byte, varint instant and horizon, then the snapshot's three
// sections, each length-prefixed. Deterministic by construction —
// obs.Snapshot sections are name-sorted — so identical snapshots
// encode to identical bytes, which is what lets replay deduplicate
// compaction overlap and lets the byte-identical-replay invariant
// extend to health records. Appending (rather than returning a fresh
// buffer) lets the WAL sink encode into its pooled payload buffers.
func appendHealth(dst []byte, h obs.HealthRecord) []byte {
	var scratch [binary.MaxVarintLen64]byte
	putVarint := func(v int64) {
		dst = append(dst, scratch[:binary.PutVarint(scratch[:], v)]...)
	}
	putUvarint := func(v uint64) {
		dst = append(dst, scratch[:binary.PutUvarint(scratch[:], v)]...)
	}
	putString := func(s string) {
		putUvarint(uint64(len(s)))
		dst = append(dst, s...)
	}
	putMetrics := func(ms []obs.Metric) {
		putUvarint(uint64(len(ms)))
		for _, m := range ms {
			putString(m.Name)
			putVarint(m.Value)
		}
	}
	dst = append(dst, healthVersion)
	putVarint(h.At.UnixNano())
	putVarint(h.Seq)
	putMetrics(h.Metrics.Counters)
	putMetrics(h.Metrics.Gauges)
	putUvarint(uint64(len(h.Metrics.Histograms)))
	for _, hs := range h.Metrics.Histograms {
		putString(hs.Name)
		putVarint(hs.Count)
		putVarint(hs.Sum)
		putUvarint(uint64(len(hs.Buckets)))
		for _, b := range hs.Buckets {
			putUvarint(uint64(b.Index))
			putVarint(b.Count)
		}
	}
	return dst
}

// encodeHealth is appendHealth into a fresh buffer (tests and
// non-pooled callers).
func encodeHealth(h obs.HealthRecord) []byte {
	return appendHealth(nil, h)
}

// decodeHealth reverses encodeHealth.
func decodeHealth(payload []byte) (obs.HealthRecord, error) {
	br := bytes.NewReader(payload)
	var h obs.HealthRecord
	ver, err := br.ReadByte()
	if err != nil {
		return h, fmt.Errorf("health version: %w", err)
	}
	if ver != healthVersion {
		return h, fmt.Errorf("unknown health version %d", ver)
	}
	getString := func() (string, error) {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return "", err
		}
		if n > maxMonitorName {
			return "", fmt.Errorf("implausible health string length %d", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}
	getLen := func(what string, bound uint64) (int, error) {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, fmt.Errorf("health %s count: %w", what, err)
		}
		if n > bound {
			return 0, fmt.Errorf("implausible health %s count %d", what, n)
		}
		return int(n), nil
	}
	getMetrics := func(what string) ([]obs.Metric, error) {
		n, err := getLen(what, maxHealthMetrics)
		if err != nil || n == 0 {
			return nil, err
		}
		ms := make([]obs.Metric, n)
		for i := range ms {
			if ms[i].Name, err = getString(); err != nil {
				return nil, fmt.Errorf("health %s name: %w", what, err)
			}
			if ms[i].Value, err = binary.ReadVarint(br); err != nil {
				return nil, fmt.Errorf("health %s value: %w", what, err)
			}
		}
		return ms, nil
	}
	nanos, err := binary.ReadVarint(br)
	if err != nil {
		return h, fmt.Errorf("health instant: %w", err)
	}
	h.At = time.Unix(0, nanos).UTC()
	if h.Seq, err = binary.ReadVarint(br); err != nil {
		return h, fmt.Errorf("health horizon: %w", err)
	}
	if h.Metrics.Counters, err = getMetrics("counter"); err != nil {
		return h, err
	}
	if h.Metrics.Gauges, err = getMetrics("gauge"); err != nil {
		return h, err
	}
	nh, err := getLen("histogram", maxHealthMetrics)
	if err != nil {
		return h, err
	}
	for i := 0; i < nh; i++ {
		var hs obs.HistogramSnapshot
		if hs.Name, err = getString(); err != nil {
			return h, fmt.Errorf("health histogram name: %w", err)
		}
		if hs.Count, err = binary.ReadVarint(br); err != nil {
			return h, fmt.Errorf("health histogram count: %w", err)
		}
		if hs.Sum, err = binary.ReadVarint(br); err != nil {
			return h, fmt.Errorf("health histogram sum: %w", err)
		}
		nb, err := getLen("bucket", maxHealthBuckets)
		if err != nil {
			return h, err
		}
		for j := 0; j < nb; j++ {
			idx, err := binary.ReadUvarint(br)
			if err != nil {
				return h, fmt.Errorf("health bucket index: %w", err)
			}
			if idx >= maxHealthBuckets {
				return h, fmt.Errorf("implausible health bucket index %d", idx)
			}
			cnt, err := binary.ReadVarint(br)
			if err != nil {
				return h, fmt.Errorf("health bucket count: %w", err)
			}
			hs.Buckets = append(hs.Buckets, obs.Bucket{Index: int(idx), Count: cnt})
		}
		h.Metrics.Histograms = append(h.Metrics.Histograms, hs)
	}
	if br.Len() != 0 {
		return h, fmt.Errorf("%d trailing bytes after health snapshot", br.Len())
	}
	return h, nil
}

// HealthKey is the exact-duplicate identity of a health record — its
// deterministic encoding — used by MergeReplay (and the compactor) to
// collapse the duplicates an interrupted compaction leaves behind,
// exactly as identical events and markers are collapsed. HealthRecord
// holds slices, so it is not Go-comparable; the encoding is the
// canonical comparable form.
func HealthKey(h obs.HealthRecord) string {
	return string(encodeHealth(h))
}
