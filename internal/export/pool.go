package export

import "sync"

// Pooled payload buffers for WAL record encoding. WriteSegment used to
// allocate a fresh bytes.Buffer (and let it grow in log₂ steps) per
// segment; at drain rhythm on a hot database that is thousands of
// short-lived multi-kilobyte allocations per second, all of the same
// few shapes. The pools below recycle them, size-classed so one
// pathological giant segment cannot pin a huge buffer under every
// small segment that follows it: a buffer re-enters the pool of the
// largest class it still fits, and anything beyond the top class is
// left to the garbage collector.

// payloadClasses are the pooled capacity classes, smallest first. A
// typical drained segment (a few hundred events at tens of bytes
// each) lands in the first two classes; the top class covers the
// biggest segments a batched checkpoint produces before rotation
// would split them anyway.
var payloadClasses = [...]int{4 << 10, 64 << 10, 1 << 20}

// payloadPools holds one pool per class. Entries are *[]byte so
// Put/Get move one pointer, not a copied slice header boxed into a
// fresh interface allocation.
var payloadPools [len(payloadClasses)]sync.Pool

// getPayloadBuf returns a zero-length buffer with capacity at least
// hint, from the smallest pool class that fits. A hint beyond the top
// class is allocated directly (and will not be pooled on return).
func getPayloadBuf(hint int) *[]byte {
	for i, class := range payloadClasses {
		if hint <= class {
			if p, _ := payloadPools[i].Get().(*[]byte); p != nil {
				*p = (*p)[:0]
				return p
			}
			b := make([]byte, 0, class)
			return &b
		}
	}
	b := make([]byte, 0, hint)
	return &b
}

// putPayloadBuf returns a buffer to the pool of the largest class it
// still fits — a buffer that grew past its class is promoted, one
// beyond the top class is dropped, so pooled memory stays bounded by
// class size times pool population.
func putPayloadBuf(p *[]byte) {
	c := cap(*p)
	if c > payloadClasses[len(payloadClasses)-1] || c < payloadClasses[0] {
		return // oversized or undersized: let the GC have it
	}
	for i := len(payloadClasses) - 1; i >= 0; i-- {
		if c >= payloadClasses[i] {
			*p = (*p)[:0]
			payloadPools[i].Put(p)
			return
		}
	}
}
