package export

import (
	"fmt"
	"io"
	"testing"

	"robustmon/internal/history"
)

// The tentpole's proof obligation: at high event counts the streaming
// exporter keeps the database bounded (each drained segment is written
// out and released), while WithFullTrace accumulates the entire run in
// memory and pays a full-trace merge on export. Compare with
//
//	go test -bench 'FullTraceExport|StreamingExport' -benchmem ./internal/export
//
// and watch B/op: full-trace grows linearly with the event count,
// streaming stays flat per drain cycle.

const benchDrainEvery = 1024

// driveDB appends n events round-robin over four monitors, draining
// every benchDrainEvery appends — the checkpoint rhythm.
func driveDB(db *history.DB, n int) {
	names := [4]string{"m0", "m1", "m2", "m3"}
	for i := 0; i < n; i++ {
		db.Append(tev(names[i%len(names)], 0))
		if i%benchDrainEvery == benchDrainEvery-1 {
			db.Drain()
		}
	}
	db.Drain()
}

func BenchmarkFullTraceExport(b *testing.B) {
	for _, events := range []int{10_000, 100_000} {
		b.Run(fmt.Sprintf("events=%d", events), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				db := history.New(history.WithFullTrace())
				driveDB(db, events)
				if err := db.ExportBinary(io.Discard); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkStreamingExport(b *testing.B) {
	for _, events := range []int{10_000, 100_000} {
		b.Run(fmt.Sprintf("events=%d", events), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sink, err := NewWALSink(b.TempDir(), WALConfig{})
				if err != nil {
					b.Fatal(err)
				}
				exp := New(sink, Config{Policy: Block})
				db := history.New(history.WithDrainTee(exp.Consume))
				driveDB(db, events)
				if err := exp.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
