// Package index is the query half of the trace store: a sparse
// per-directory index over the WAL segment files of internal/export,
// and a SeekReader that answers windowed replay queries by opening
// only the files the index admits.
//
// After a long run, an export directory holds hundreds of rotated
// segment files; ReadDir decodes every record of every one even when
// the question is "what happened around sequence 1 234 567 on monitor
// X". The index keeps, per sealed file, exactly what that question
// needs (export.FileSummary): the global and per-monitor sequence
// ranges, the byte offsets of recovery-marker records, and a CRC over
// the file's record-header chain. The detectEr line of work (Cassar &
// Francalanza) makes the point for monitoring generally: the artefact
// must be cheap to consume, not just cheap to produce.
//
// The index is advisory and deliberately sparse. It is maintained
// incrementally by the WAL sink (wire Maintainer.OnRotate into
// export.WALConfig.OnRotate) and covers only sealed files — the active
// segment is never indexed; a SeekReader simply scans whatever the
// index does not cover. Every entry is validated against the file on
// disk (size; optionally the header-chain CRC) before it is trusted,
// so a stale or damaged index degrades to scanning, never to wrong
// results, and Rebuild reconstructs the whole index from any v1/v2
// directory by reading record headers only.
package index

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"robustmon/internal/export"
)

// FileName is the index's file name inside an export directory. It
// does not match the *.wal glob, so replay tooling never mistakes it
// for a segment file.
const FileName = "wal.index"

// indexMagic identifies an index file; the byte that follows it on
// disk is the format version.
var indexMagic = [4]byte{'R', 'M', 'I', 'X'}

// Index format versions. Version 2 added the per-file health-snapshot
// offset table (FileSummary.Healths); version 3 the retention
// tombstone table (FileSummary.Tombstones); version 4 the threshold-
// alert table (FileSummary.Alerts). An older index simply has no such
// section, so decode accepts every version and Write always emits the
// latest. An old index over a directory containing the newer records
// still works — the records live in the WAL files, and a windowed
// reader falls back to opening any file whose entry lacks the offsets
// (the index is advisory either way).
const (
	indexVersion1 = 1
	indexVersion2 = 2
	indexVersion3 = 3
	indexVersion  = 4
)

// ErrNoIndex reports that the directory has no index file.
var ErrNoIndex = errors.New("index: no index file")

// Decode caps, sized far above anything real so a corrupt length field
// cannot balloon the reader (the same posture as the WAL and trace
// decoders).
const (
	maxIndexFiles   = 1 << 20
	maxIndexEntries = 1 << 20
	maxIndexString  = 1 << 10
)

// Index is a directory's file-summary table, sorted by file name
// (which is creation order — names are zero-padded numbers).
type Index struct {
	Files []export.FileSummary
}

// Lookup returns the summary recorded for the named file (base name).
func (x *Index) Lookup(name string) (export.FileSummary, bool) {
	i := sort.Search(len(x.Files), func(i int) bool { return x.Files[i].Name >= name })
	if i < len(x.Files) && x.Files[i].Name == name {
		return x.Files[i], true
	}
	return export.FileSummary{}, false
}

// Add inserts or replaces the summary for its file, keeping the table
// sorted.
func (x *Index) Add(fs export.FileSummary) {
	i := sort.Search(len(x.Files), func(i int) bool { return x.Files[i].Name >= fs.Name })
	if i < len(x.Files) && x.Files[i].Name == fs.Name {
		x.Files[i] = fs
		return
	}
	x.Files = append(x.Files, export.FileSummary{})
	copy(x.Files[i+1:], x.Files[i:])
	x.Files[i] = fs
}

// Remove drops the named file's entry, if present.
func (x *Index) Remove(name string) {
	i := sort.Search(len(x.Files), func(i int) bool { return x.Files[i].Name >= name })
	if i < len(x.Files) && x.Files[i].Name == name {
		x.Files = append(x.Files[:i], x.Files[i+1:]...)
	}
}

// Events sums the indexed event counts across all files.
func (x *Index) Events() int64 {
	var n int64
	for _, f := range x.Files {
		n += f.Events
	}
	return n
}

// encode serialises the index: magic + version, then the body, then a
// CRC-32 (IEEE) over magic+version+body — one torn or flipped byte
// fails the whole file, which is fine because the index is always
// rebuildable.
func (x *Index) encode() []byte {
	var buf bytes.Buffer
	buf.Write(indexMagic[:])
	buf.WriteByte(indexVersion)
	var scratch [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) { buf.Write(scratch[:binary.PutUvarint(scratch[:], v)]) }
	putVarint := func(v int64) { buf.Write(scratch[:binary.PutVarint(scratch[:], v)]) }
	putString := func(s string) {
		putUvarint(uint64(len(s)))
		buf.WriteString(s)
	}
	putUvarint(uint64(len(x.Files)))
	for _, f := range x.Files {
		putString(f.Name)
		buf.WriteByte(f.Version)
		flags := byte(0)
		if f.Torn {
			flags |= 1
		}
		buf.WriteByte(flags)
		putVarint(f.Size)
		putUvarint(uint64(f.Records))
		putVarint(f.Events)
		putVarint(f.MinSeq)
		putVarint(f.MaxSeq)
		putUvarint(uint64(f.HeaderCRC))
		putUvarint(uint64(len(f.Monitors)))
		for _, mr := range f.Monitors {
			putString(mr.Monitor)
			putVarint(mr.MinSeq)
			putVarint(mr.MaxSeq)
			putVarint(mr.Events)
		}
		putUvarint(uint64(len(f.Markers)))
		for _, mk := range f.Markers {
			putString(mk.Monitor)
			putVarint(mk.Horizon)
			putVarint(mk.Offset)
		}
		putUvarint(uint64(len(f.Healths)))
		for _, hi := range f.Healths {
			putVarint(hi.Seq)
			putVarint(hi.Offset)
		}
		putUvarint(uint64(len(f.Tombstones)))
		for _, ti := range f.Tombstones {
			putVarint(ti.Horizon)
			putVarint(ti.Offset)
		}
		putUvarint(uint64(len(f.Alerts)))
		for _, ai := range f.Alerts {
			putVarint(ai.Seq)
			putVarint(ai.Offset)
		}
	}
	sum := crc32.ChecksumIEEE(buf.Bytes())
	binary.LittleEndian.PutUint32(scratch[:4], sum)
	buf.Write(scratch[:4])
	return buf.Bytes()
}

// decode reverses encode. It never panics on hostile input and never
// allocates more than the input backs.
func decode(data []byte) (*Index, error) {
	if len(data) < len(indexMagic)+1+4 {
		return nil, fmt.Errorf("index: file too short (%d bytes)", len(data))
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(tail); got != want {
		return nil, fmt.Errorf("index: checksum mismatch (got %08x, file says %08x)", got, want)
	}
	if [4]byte(body[:4]) != indexMagic {
		return nil, errors.New("index: bad magic")
	}
	version := body[4]
	if version < indexVersion1 || version > indexVersion {
		return nil, fmt.Errorf("index: unknown format version %d", version)
	}
	br := bytes.NewReader(body[5:])
	getUvarint := func() (uint64, error) { return binary.ReadUvarint(br) }
	getVarint := func() (int64, error) { return binary.ReadVarint(br) }
	getString := func() (string, error) {
		n, err := getUvarint()
		if err != nil {
			return "", err
		}
		if n > maxIndexString {
			return "", fmt.Errorf("index: implausible string length %d", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}
	nFiles, err := getUvarint()
	if err != nil {
		return nil, fmt.Errorf("index: file count: %w", err)
	}
	if nFiles > maxIndexFiles {
		return nil, fmt.Errorf("index: implausible file count %d", nFiles)
	}
	x := &Index{}
	for i := uint64(0); i < nFiles; i++ {
		var f export.FileSummary
		if f.Name, err = getString(); err != nil {
			return nil, fmt.Errorf("index: entry %d name: %w", i, err)
		}
		// Entries are joined onto the directory path by readers; a name
		// that escapes the directory is hostile, not just malformed.
		if f.Name == "" || f.Name != filepath.Base(f.Name) || strings.ContainsAny(f.Name, "/\\") {
			return nil, fmt.Errorf("index: entry %d: unsafe file name %q", i, f.Name)
		}
		hdr := make([]byte, 2)
		if _, err := io.ReadFull(br, hdr); err != nil {
			return nil, fmt.Errorf("index: entry %d header: %w", i, err)
		}
		f.Version = hdr[0]
		f.Torn = hdr[1]&1 != 0
		if f.Size, err = getVarint(); err != nil {
			return nil, fmt.Errorf("index: entry %d size: %w", i, err)
		}
		records, err := getUvarint()
		if err != nil {
			return nil, fmt.Errorf("index: entry %d records: %w", i, err)
		}
		if records > maxIndexEntries {
			return nil, fmt.Errorf("index: entry %d: implausible record count %d", i, records)
		}
		f.Records = int(records)
		if f.Events, err = getVarint(); err != nil {
			return nil, fmt.Errorf("index: entry %d events: %w", i, err)
		}
		if f.MinSeq, err = getVarint(); err != nil {
			return nil, fmt.Errorf("index: entry %d minseq: %w", i, err)
		}
		if f.MaxSeq, err = getVarint(); err != nil {
			return nil, fmt.Errorf("index: entry %d maxseq: %w", i, err)
		}
		hcrc, err := getUvarint()
		if err != nil {
			return nil, fmt.Errorf("index: entry %d headercrc: %w", i, err)
		}
		f.HeaderCRC = uint32(hcrc)
		nMons, err := getUvarint()
		if err != nil {
			return nil, fmt.Errorf("index: entry %d monitor count: %w", i, err)
		}
		if nMons > maxIndexEntries {
			return nil, fmt.Errorf("index: entry %d: implausible monitor count %d", i, nMons)
		}
		for j := uint64(0); j < nMons; j++ {
			var mr export.MonitorRange
			if mr.Monitor, err = getString(); err != nil {
				return nil, fmt.Errorf("index: entry %d monitor %d: %w", i, j, err)
			}
			if mr.MinSeq, err = getVarint(); err != nil {
				return nil, fmt.Errorf("index: entry %d monitor %d minseq: %w", i, j, err)
			}
			if mr.MaxSeq, err = getVarint(); err != nil {
				return nil, fmt.Errorf("index: entry %d monitor %d maxseq: %w", i, j, err)
			}
			if mr.Events, err = getVarint(); err != nil {
				return nil, fmt.Errorf("index: entry %d monitor %d events: %w", i, j, err)
			}
			f.Monitors = append(f.Monitors, mr)
		}
		nMarkers, err := getUvarint()
		if err != nil {
			return nil, fmt.Errorf("index: entry %d marker count: %w", i, err)
		}
		if nMarkers > maxIndexEntries {
			return nil, fmt.Errorf("index: entry %d: implausible marker count %d", i, nMarkers)
		}
		for j := uint64(0); j < nMarkers; j++ {
			var mk export.MarkerInfo
			if mk.Monitor, err = getString(); err != nil {
				return nil, fmt.Errorf("index: entry %d marker %d: %w", i, j, err)
			}
			if mk.Horizon, err = getVarint(); err != nil {
				return nil, fmt.Errorf("index: entry %d marker %d horizon: %w", i, j, err)
			}
			if mk.Offset, err = getVarint(); err != nil {
				return nil, fmt.Errorf("index: entry %d marker %d offset: %w", i, j, err)
			}
			f.Markers = append(f.Markers, mk)
		}
		if version >= indexVersion2 {
			nHealths, err := getUvarint()
			if err != nil {
				return nil, fmt.Errorf("index: entry %d health count: %w", i, err)
			}
			if nHealths > maxIndexEntries {
				return nil, fmt.Errorf("index: entry %d: implausible health count %d", i, nHealths)
			}
			for j := uint64(0); j < nHealths; j++ {
				var hi export.HealthInfo
				if hi.Seq, err = getVarint(); err != nil {
					return nil, fmt.Errorf("index: entry %d health %d seq: %w", i, j, err)
				}
				if hi.Offset, err = getVarint(); err != nil {
					return nil, fmt.Errorf("index: entry %d health %d offset: %w", i, j, err)
				}
				f.Healths = append(f.Healths, hi)
			}
		}
		if version >= indexVersion3 {
			nTombs, err := getUvarint()
			if err != nil {
				return nil, fmt.Errorf("index: entry %d tombstone count: %w", i, err)
			}
			if nTombs > maxIndexEntries {
				return nil, fmt.Errorf("index: entry %d: implausible tombstone count %d", i, nTombs)
			}
			for j := uint64(0); j < nTombs; j++ {
				var ti export.TombstoneInfo
				if ti.Horizon, err = getVarint(); err != nil {
					return nil, fmt.Errorf("index: entry %d tombstone %d horizon: %w", i, j, err)
				}
				if ti.Offset, err = getVarint(); err != nil {
					return nil, fmt.Errorf("index: entry %d tombstone %d offset: %w", i, j, err)
				}
				f.Tombstones = append(f.Tombstones, ti)
			}
		}
		if version >= 4 {
			nAlerts, err := getUvarint()
			if err != nil {
				return nil, fmt.Errorf("index: entry %d alert count: %w", i, err)
			}
			if nAlerts > maxIndexEntries {
				return nil, fmt.Errorf("index: entry %d: implausible alert count %d", i, nAlerts)
			}
			for j := uint64(0); j < nAlerts; j++ {
				var ai export.AlertInfo
				if ai.Seq, err = getVarint(); err != nil {
					return nil, fmt.Errorf("index: entry %d alert %d seq: %w", i, j, err)
				}
				if ai.Offset, err = getVarint(); err != nil {
					return nil, fmt.Errorf("index: entry %d alert %d offset: %w", i, j, err)
				}
				f.Alerts = append(f.Alerts, ai)
			}
		}
		x.Files = append(x.Files, f)
	}
	if br.Len() != 0 {
		return nil, fmt.Errorf("index: %d trailing bytes", br.Len())
	}
	sort.Slice(x.Files, func(i, j int) bool { return x.Files[i].Name < x.Files[j].Name })
	return x, nil
}

// Load reads the directory's index file. ErrNoIndex (wrapped) when
// there is none.
func Load(dir string) (*Index, error) {
	data, err := os.ReadFile(filepath.Join(dir, FileName))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("%w in %s", ErrNoIndex, dir)
		}
		return nil, fmt.Errorf("index: read: %w", err)
	}
	x, err := decode(data)
	if err != nil {
		return nil, fmt.Errorf("index: %s: %w", filepath.Join(dir, FileName), err)
	}
	return x, nil
}

// Write persists the index into its directory, atomically: the encoded
// bytes go to a temporary file renamed over FileName, so a concurrent
// reader sees either the old index or the new one, never a torn write.
// Deliberately no fsync: the maintainer calls Write on the exporter's
// writer goroutine at every rotation, and the index is advisory —
// CRC-framed (a crash-mangled one reads as damaged, not as wrong) and
// rebuildable — so durability is not worth stalling the export path
// for.
func (x *Index) Write(dir string) error {
	final := filepath.Join(dir, FileName)
	tmp, err := os.CreateTemp(dir, FileName+".tmp*")
	if err != nil {
		return fmt.Errorf("index: create temp: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(x.encode()); err != nil {
		tmp.Close()
		return fmt.Errorf("index: write temp: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("index: close temp: %w", err)
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		return fmt.Errorf("index: install: %w", err)
	}
	return nil
}

// Rebuild reconstructs an index by scanning every segment file's
// record headers (export.ScanFile) — v1 and v2 files alike, so a
// directory written before the index (or before markers) existed is
// indexable after the fact. A torn tail is tolerated only on the
// newest file, exactly as ReadDir tolerates it; the torn entry is
// recorded (Torn set) so readers know its summary covers a prefix.
// Rebuild only builds; call Write to persist.
func Rebuild(dir string) (*Index, error) {
	names, err := export.WALFiles(dir)
	if err != nil {
		return nil, err
	}
	x := &Index{}
	for i, name := range names {
		fs, err := export.ScanFile(name)
		if err != nil {
			return nil, err
		}
		if fs.Torn && i != len(names)-1 {
			return nil, fmt.Errorf("index: %s is torn but not the newest file — corruption, not a crash tail", name)
		}
		x.Add(fs)
	}
	return x, nil
}

// Verify checks every indexed entry against the directory: the file
// must exist, its size must match, and its record-header chain must
// hash to the recorded HeaderCRC (a header-only scan — payloads are
// not read). It returns one error per disagreement, nil when the
// index is exact. Verification is what turns HeaderCRC into a
// guarantee: same size but different structure — an in-place edit —
// cannot hide.
func (x *Index) Verify(dir string) []error {
	var errs []error
	for _, f := range x.Files {
		path := filepath.Join(dir, f.Name)
		info, err := os.Stat(path)
		if err != nil {
			errs = append(errs, fmt.Errorf("index: %s: %w", f.Name, err))
			continue
		}
		if info.Size() != f.Size {
			errs = append(errs, fmt.Errorf("index: %s: size %d on disk, index says %d", f.Name, info.Size(), f.Size))
			continue
		}
		scanned, err := export.ScanFile(path)
		if err != nil {
			errs = append(errs, fmt.Errorf("index: %s: %w", f.Name, err))
			continue
		}
		if scanned.HeaderCRC != f.HeaderCRC {
			errs = append(errs, fmt.Errorf("index: %s: header chain %08x on disk, index says %08x",
				f.Name, scanned.HeaderCRC, f.HeaderCRC))
		}
	}
	return errs
}

// Maintainer keeps a directory's index file in step with its WAL sink:
// wire it into export.WALConfig.OnSeal (it implements
// export.SealedSink) and every sealed file is appended to the index
// and the index rewritten (atomically). The
// index file is re-read from disk on every rotation — deliberately not
// cached, because the compactor rewrites the same file (dropping
// merged inputs' entries) between rotations, and writing back a cached
// copy would resurrect entries for files the compactor deleted. A
// rotation racing a concurrent compaction can still lose one update to
// last-writer-wins, which the advisory-index rule absorbs: a missing
// entry is scanned, a stale one fails size validation. An unreadable
// index is started over; a missing one is created. Safe for concurrent
// use, though the sink drives it from one goroutine in practice.
type Maintainer struct {
	mu  sync.Mutex
	dir string
	err error
}

// NewMaintainer returns a maintainer for the directory's index.
func NewMaintainer(dir string) *Maintainer {
	return &Maintainer{dir: dir}
}

// OnSeal records one sealed file into the index; it implements
// export.SealedSink. The returned error is also sticky and surfaced
// by Err — the sink's write path never fails because an advisory
// index could not be written, but a seal fan-out that wants to report
// it (WALConfig.OnSealError) can.
func (m *Maintainer) OnSeal(fs export.FileSummary) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	idx, err := Load(m.dir)
	if err != nil {
		// Missing or damaged: start over — the index is rebuildable by
		// construction, and a sink-maintained one regrows as files seal.
		// (A pre-existing backlog is Rebuild's job, not ours.)
		idx = &Index{}
	}
	idx.Add(fs)
	if err := idx.Write(m.dir); err != nil {
		m.err = err
		return err
	}
	return nil
}

// OnRotate records one sealed file into the index.
//
// Deprecated: wire the Maintainer into export.WALConfig.OnSeal
// instead; OnRotate survives for the single-consumer
// WALConfig.OnRotate seam it was built for.
func (m *Maintainer) OnRotate(fs export.FileSummary) {
	_ = m.OnSeal(fs)
}

// Err returns the most recent index-write error, if any.
func (m *Maintainer) Err() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.err
}
