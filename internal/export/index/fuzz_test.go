package index

import (
	"hash/crc32"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"robustmon/internal/export"
)

// FuzzReadIndex throws corrupt, truncated and hostile byte streams at
// the index decoder. The contract mirrors the WAL reader's: decode
// either returns a valid index or an error — it must never panic, a
// lying length field must never balloon the allocator, and whatever it
// accepts must re-encode/decode to the identical index (the compactor
// and maintainer rewrite indexes they loaded).
func FuzzReadIndex(f *testing.F) {
	// Seed with a real maintained index.
	dir := f.TempDir()
	m := NewMaintainer(dir)
	sink, err := export.NewWALSink(dir, export.WALConfig{MaxFileBytes: 1, OnSeal: []export.SealedSink{m}})
	if err != nil {
		f.Fatal(err)
	}
	at := func(mon string, from, to int64) export.Segment {
		var s export.Segment
		s.Monitor = mon
		for i := from; i <= to; i++ {
			s.Events = append(s.Events, tev(mon, i))
		}
		return s
	}
	for i, seg := range []export.Segment{at("a", 1, 4), at("b", 5, 9), at("a", 10, 12)} {
		if err := sink.WriteSegment(seg); err != nil {
			f.Fatalf("segment %d: %v", i, err)
		}
	}
	if err := sink.Close(); err != nil {
		f.Fatal(err)
	}
	idx, err := Load(dir)
	if err != nil {
		f.Fatal(err)
	}
	seed := idx.encode()
	f.Add(seed)
	for _, cut := range []int{0, 4, 5, len(seed) / 2, len(seed) - 5, len(seed) - 1} {
		if cut >= 0 && cut < len(seed) {
			f.Add(seed[:cut])
		}
	}
	// A version-3 index: a retention-truncated store whose files carry
	// tombstone records, so the fuzzer mutates the tombstone table too.
	tdir := f.TempDir()
	tm := NewMaintainer(tdir)
	tsink, err := export.NewWALSink(tdir, export.WALConfig{MaxFileBytes: 1, OnSeal: []export.SealedSink{tm}})
	if err != nil {
		f.Fatal(err)
	}
	if err := tsink.WriteTombstone(export.Tombstone{
		Horizon: 5, Events: 4, Records: 1, Files: 1,
		Monitors: []export.TruncatedRange{{Monitor: "a", MinSeq: 1, MaxSeq: 4, Events: 4}},
	}); err != nil {
		f.Fatal(err)
	}
	if err := tsink.WriteSegment(at("a", 5, 9)); err != nil {
		f.Fatal(err)
	}
	if err := tsink.Close(); err != nil {
		f.Fatal(err)
	}
	tidx, err := Load(tdir)
	if err != nil {
		f.Fatal(err)
	}
	tombs := 0
	for _, fs := range tidx.Files {
		tombs += len(fs.Tombstones)
	}
	if tombs == 0 {
		f.Fatal("v3 seed has no tombstone entries — the seed is vacuous")
	}
	f.Add(tidx.encode())
	// Valid frame, hostile body: a file count claiming the maximum.
	hostile := []byte{'R', 'M', 'I', 'X', 1, 0xff, 0xff, 0x3f}
	f.Add(withCRC(hostile))
	// An entry whose name escapes the directory.
	evil := append([]byte{'R', 'M', 'I', 'X', 1, 1}, byte(11))
	evil = append(evil, []byte("../evil.wal")...)
	f.Add(withCRC(evil))
	f.Add([]byte("not an index"))

	f.Fuzz(func(t *testing.T, data []byte) {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		x, err := decode(data)
		runtime.ReadMemStats(&after)
		if grew := after.TotalAlloc - before.TotalAlloc; grew > uint64(len(data))*64+1<<20 {
			t.Fatalf("decode allocated %d bytes on %d input bytes", grew, len(data))
		}
		if err != nil {
			return
		}
		for _, fs := range x.Files {
			if fs.Name == "" || fs.Name != filepath.Base(fs.Name) || strings.ContainsAny(fs.Name, "/\\") {
				t.Fatalf("decoder accepted unsafe file name %q", fs.Name)
			}
		}
		re, err := decode(x.encode())
		if err != nil {
			t.Fatalf("re-decode of accepted index failed: %v", err)
		}
		if !reflect.DeepEqual(x, re) {
			t.Fatalf("round trip changed the index:\n%+v\nvs\n%+v", x, re)
		}
	})
}

// withCRC frames a hand-built body with the trailing checksum the
// decoder demands, so the fuzz seed exercises the parser, not just the
// CRC gate.
func withCRC(body []byte) []byte {
	sum := crc32.ChecksumIEEE(body)
	return append(append([]byte{}, body...), byte(sum), byte(sum>>8), byte(sum>>16), byte(sum>>24))
}
