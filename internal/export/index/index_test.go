package index

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"robustmon/internal/event"
	"robustmon/internal/export"
	"robustmon/internal/history"
)

// tev builds a test event with the given monitor and seq.
func tev(monitor string, seq int64) event.Event {
	return event.Event{
		Seq:     seq,
		Monitor: monitor,
		Type:    event.Enter,
		Pid:     seq,
		Proc:    "Op",
		Flag:    event.Completed,
		Time:    time.Date(2001, 7, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(seq) * time.Millisecond),
	}
}

// tseq builds a seq-sorted segment for one monitor covering [from, to].
func tseq(monitor string, from, to int64) event.Seq {
	var s event.Seq
	for i := from; i <= to; i++ {
		s = append(s, tev(monitor, i))
	}
	return s
}

// buildDir writes an indexed WAL directory: n per-monitor segments of
// step events each, alternating over monitors, rotating after every
// record (MaxFileBytes 1) so each segment lands in its own file, with
// the index maintained by the sink. Returns the directory.
func buildDir(t *testing.T, monitors []string, segments int, step int64) string {
	t.Helper()
	dir := t.TempDir()
	m := NewMaintainer(dir)
	sink, err := export.NewWALSink(dir, export.WALConfig{
		MaxFileBytes: 1,
		OnSeal:       []export.SealedSink{m},
	})
	if err != nil {
		t.Fatal(err)
	}
	seq := int64(1)
	for i := 0; i < segments; i++ {
		mon := monitors[i%len(monitors)]
		if err := sink.WriteSegment(export.Segment{Monitor: mon, Events: tseq(mon, seq, seq+step-1)}); err != nil {
			t.Fatal(err)
		}
		seq += step
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Err(); err != nil {
		t.Fatalf("maintainer: %v", err)
	}
	return dir
}

func TestIndexCodecRoundTrip(t *testing.T) {
	t.Parallel()
	dir := buildDir(t, []string{"a", "b", "c"}, 9, 10)
	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Files) != 9 {
		t.Fatalf("index holds %d files, want 9", len(loaded.Files))
	}
	re, err := decode(loaded.encode())
	if err != nil {
		t.Fatalf("re-decode: %v", err)
	}
	if !reflect.DeepEqual(loaded, re) {
		t.Fatalf("encode/decode changed the index:\n%+v\nvs\n%+v", loaded, re)
	}
	if errs := loaded.Verify(dir); len(errs) != 0 {
		t.Fatalf("Verify of a sink-maintained index: %v", errs)
	}
}

func TestIndexMatchesRebuild(t *testing.T) {
	t.Parallel()
	// The sink-maintained index and a from-scratch rebuild must agree
	// exactly — two producers of the same truth.
	dir := buildDir(t, []string{"a", "b"}, 6, 5)
	maintained, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := Rebuild(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(maintained, rebuilt) {
		t.Fatalf("maintained index != rebuilt index:\n%+v\nvs\n%+v", maintained, rebuilt)
	}
}

func TestIndexVerifyDetectsEditedFile(t *testing.T) {
	t.Parallel()
	dir := buildDir(t, []string{"a"}, 3, 4)
	idx, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	names, err := export.WALFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(names[1])
	if err != nil {
		t.Fatal(err)
	}
	// Flip a bit inside a record header (just past the 5-byte magic):
	// the size is unchanged, so only the header-chain CRC can notice.
	blob[6] ^= 0x01
	if err := os.WriteFile(names[1], blob, 0o666); err != nil {
		t.Fatal(err)
	}
	errs := idx.Verify(dir)
	if len(errs) != 1 {
		t.Fatalf("Verify found %d problems (%v), want exactly the edited file", len(errs), errs)
	}
}

// writeV1File hand-writes a format-version-1 WAL file (no record-type
// bytes), as every pre-marker release of the sink produced.
func writeV1File(t *testing.T, name string, segs []export.Segment) {
	t.Helper()
	var buf bytes.Buffer
	buf.Write([]byte{'R', 'M', 'W', 'L', 1})
	var scratch [8]byte
	for _, seg := range segs {
		var payload bytes.Buffer
		if err := event.WriteBinary(&payload, seg.Events); err != nil {
			t.Fatal(err)
		}
		binary.LittleEndian.PutUint16(scratch[:2], uint16(len(seg.Monitor)))
		buf.Write(scratch[:2])
		buf.WriteString(seg.Monitor)
		binary.LittleEndian.PutUint64(scratch[:], uint64(seg.First()))
		buf.Write(scratch[:8])
		binary.LittleEndian.PutUint64(scratch[:], uint64(seg.Last()))
		buf.Write(scratch[:8])
		binary.LittleEndian.PutUint32(scratch[:4], uint32(len(seg.Events)))
		buf.Write(scratch[:4])
		binary.LittleEndian.PutUint32(scratch[:4], uint32(payload.Len()))
		buf.Write(scratch[:4])
		binary.LittleEndian.PutUint32(scratch[:4], crc32.ChecksumIEEE(payload.Bytes()))
		buf.Write(scratch[:4])
		buf.Write(payload.Bytes())
	}
	if err := os.WriteFile(name, buf.Bytes(), 0o666); err != nil {
		t.Fatal(err)
	}
}

func TestRebuildOverMixedV1V2Directory(t *testing.T) {
	t.Parallel()
	// A directory that predates both the index and the marker format:
	// one hand-written v1 file, then a resumed v2 sink adding a segment
	// and a marker. Rebuild must index all of it, and the index must
	// answer windowed queries over both formats.
	dir := t.TempDir()
	writeV1File(t, filepath.Join(dir, "00000001.wal"), []export.Segment{
		{Monitor: "old", Events: tseq("old", 1, 4)},
		{Monitor: "older", Events: tseq("older", 5, 6)},
	})
	sink, err := export.NewWALSink(dir, export.WALConfig{MaxFileBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.WriteSegment(export.Segment{Monitor: "new", Events: tseq("new", 7, 9)}); err != nil {
		t.Fatal(err)
	}
	mk := history.RecoveryMarker{Monitor: "new", Horizon: 9, Dropped: 2, Rule: "FD-1", Pid: 3,
		At: time.Date(2001, 7, 2, 0, 0, 0, 0, time.UTC)}
	if err := sink.WriteMarker(mk); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	idx, err := Rebuild(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx.Files) != 3 {
		t.Fatalf("rebuilt index holds %d files, want 3 (one v1, two v2)", len(idx.Files))
	}
	v1, ok := idx.Lookup("00000001.wal")
	if !ok || v1.Version != 1 || v1.Events != 6 || v1.MinSeq != 1 || v1.MaxSeq != 6 || len(v1.Monitors) != 2 {
		t.Fatalf("v1 entry wrong: %+v", v1)
	}
	if err := idx.Write(dir); err != nil {
		t.Fatal(err)
	}
	if errs := idx.Verify(dir); len(errs) != 0 {
		t.Fatalf("rebuilt index fails its own Verify: %v", errs)
	}

	// The windowed reader over the mixed directory: the v1-only window
	// must skip both v2 files yet still surface the marker.
	r, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.ReplayRange(1, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Events) != 6 || rep.Events[0].Seq != 1 || rep.Events[5].Seq != 6 {
		t.Fatalf("windowed replay over v1 file: %d events", len(rep.Events))
	}
	if len(rep.Markers) != 1 || rep.Markers[0] != mk {
		t.Fatalf("windowed replay lost the marker: %+v", rep.Markers)
	}
	st := r.LastStats()
	if st.Opened != 1 || st.Skipped != 2 {
		t.Fatalf("stats = %+v, want 1 opened (the v1 file) and 2 skipped", st)
	}
}

func TestMaintainerExtendsExistingIndex(t *testing.T) {
	t.Parallel()
	dir := buildDir(t, []string{"a"}, 2, 3)
	// A second sink session resumes numbering; its maintainer must
	// extend the session-one index, not clobber it.
	m := NewMaintainer(dir)
	sink, err := export.NewWALSink(dir, export.WALConfig{MaxFileBytes: 1, OnSeal: []export.SealedSink{m}})
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.WriteSegment(export.Segment{Monitor: "a", Events: tseq("a", 7, 9)}); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Err(); err != nil {
		t.Fatal(err)
	}
	idx, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx.Files) != 3 || idx.Events() != 9 {
		t.Fatalf("index holds %d files / %d events after resumed session, want 3 / 9", len(idx.Files), idx.Events())
	}
}
