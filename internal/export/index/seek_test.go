package index

import (
	"path/filepath"
	"testing"
	"time"

	"robustmon/internal/export"
	"robustmon/internal/history"
)

// TestSeekReaderOpensOnlyAdmittedFiles is the subsystem's acceptance
// criterion: a windowed query must fully read exactly the files its
// index admits — counted through the reader's file-read seam, not
// inferred — and still return precisely ReadDir's events for the
// window.
func TestSeekReaderOpensOnlyAdmittedFiles(t *testing.T) {
	t.Parallel()
	// 20 single-segment files, 10 events each, monitors a/b
	// alternating: seqs 1..200, with a's events in files 1,3,5,…
	dir := buildDir(t, []string{"a", "b"}, 20, 10)
	full, err := export.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}

	r, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var opened []string
	inner := r.readFile
	r.readFile = func(name string) (*export.FileReplay, error) {
		opened = append(opened, filepath.Base(name))
		return inner(name)
	}

	// A window spanning seqs 95..125 touches files 10..13 and nothing
	// else.
	rep, err := r.ReplayRange(95, 125)
	if err != nil {
		t.Fatal(err)
	}
	if want := full.Events.SubSeq(95, 125); len(rep.Events) != len(want) {
		t.Fatalf("windowed replay returned %d events, ReadDir's window has %d", len(rep.Events), len(want))
	} else {
		for i := range want {
			if rep.Events[i] != want[i] {
				t.Fatalf("windowed replay event %d = %+v, want %+v", i, rep.Events[i], want[i])
			}
		}
	}
	if len(opened) != 4 {
		t.Fatalf("query opened %d files (%v), the window needs exactly 4", len(opened), opened)
	}
	st := r.LastStats()
	if st.FilesTotal != 20 || st.Opened != 4 || st.Skipped != 16 || st.Unindexed != 0 {
		t.Fatalf("stats = %+v, want 4 of 20 opened, 16 skipped, all indexed", st)
	}

	// Adding a monitor filter must prune further: monitor "a" only
	// lives in the odd files, so 2 of the 4 window files remain.
	opened = nil
	rep, err = r.ReplayRange(95, 125, "a")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range rep.Events {
		if e.Monitor != "a" {
			t.Fatalf("monitor filter leaked event %+v", e)
		}
	}
	if len(opened) != 2 {
		t.Fatalf("filtered query opened %d files (%v), want 2", len(opened), opened)
	}
}

func TestSeekReaderScansUnindexedFiles(t *testing.T) {
	t.Parallel()
	// Build an indexed directory, then append one more (unindexed)
	// sink session: the reader must scan the new file even though the
	// index knows nothing about it — the index can over-admit, never
	// under-admit.
	dir := buildDir(t, []string{"a"}, 3, 10) // seqs 1..30, indexed
	sink, err := export.NewWALSink(dir, export.WALConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.WriteSegment(export.Segment{Monitor: "a", Events: tseq("a", 31, 40)}); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.ReplayRange(35, 38)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Events) != 4 || rep.Events[0].Seq != 35 {
		t.Fatalf("window over the unindexed file returned %d events", len(rep.Events))
	}
	st := r.LastStats()
	if st.Unindexed != 1 || st.Opened != 1 || st.Skipped != 3 {
		t.Fatalf("stats = %+v, want the 1 unindexed file opened and the 3 indexed ones skipped", st)
	}
}

func TestSeekReaderWithoutIndexScansEverything(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	sink, err := export.NewWALSink(dir, export.WALConfig{MaxFileBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 3; i++ {
		if err := sink.WriteSegment(export.Segment{Monitor: "m", Events: tseq("m", i*5+1, i*5+5)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.ReplayRange(6, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Events) != 5 || rep.Events[0].Seq != 6 {
		t.Fatalf("index-less window returned %d events", len(rep.Events))
	}
	if st := r.LastStats(); st.Opened != 3 || st.Unindexed != 3 {
		t.Fatalf("stats = %+v, want every file scanned without an index", st)
	}
}

func TestSeekReaderMarkerPointReads(t *testing.T) {
	t.Parallel()
	// A marker in a file whose segments fall outside the window must
	// still reach the replay — through its indexed offset, without the
	// file being decoded.
	dir := t.TempDir()
	m := NewMaintainer(dir)
	sink, err := export.NewWALSink(dir, export.WALConfig{MaxFileBytes: 1, OnSeal: []export.SealedSink{m}})
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.WriteSegment(export.Segment{Monitor: "a", Events: tseq("a", 1, 10)}); err != nil {
		t.Fatal(err)
	}
	mk := history.RecoveryMarker{Monitor: "a", Horizon: 10, Dropped: 4, Rule: "ST-5", Pid: 2,
		At: time.Date(2001, 7, 3, 0, 0, 0, 0, time.UTC)}
	if err := sink.WriteMarker(mk); err != nil {
		t.Fatal(err)
	}
	if err := sink.WriteSegment(export.Segment{Monitor: "a", Events: tseq("a", 11, 20)}); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Err(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var opened int
	inner := r.readFile
	r.readFile = func(name string) (*export.FileReplay, error) {
		opened++
		return inner(name)
	}
	rep, err := r.ReplayRange(15, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Events) != 6 {
		t.Fatalf("window returned %d events, want 6", len(rep.Events))
	}
	if len(rep.Markers) != 1 || rep.Markers[0] != mk {
		t.Fatalf("marker not point-read into the window replay: %+v", rep.Markers)
	}
	st := r.LastStats()
	if opened != 1 || st.MarkerReads != 1 {
		t.Fatalf("opened=%d stats=%+v, want 1 full read + 1 marker point-read", opened, st)
	}
}
