package index

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"robustmon/internal/export"
	"robustmon/internal/obs"
)

// th builds a test health snapshot at the given sequence horizon, with
// enough registry content (a counter, a gauge, a histogram) that a
// codec slip could not round-trip by accident.
func th(seq int64) obs.HealthRecord {
	return obs.HealthRecord{
		At:  time.Date(2001, 7, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(seq) * time.Second),
		Seq: seq,
		Metrics: obs.Snapshot{
			Counters: []obs.Metric{{Name: "history_append_total", Value: seq * 3}},
			Gauges:   []obs.Metric{{Name: "export_queue_depth", Value: 2}},
			Histograms: []obs.HistogramSnapshot{{
				Name: "detect_check_ns", Count: 8, Sum: 4096,
				Buckets: []obs.Bucket{{Index: 9, Count: 8}},
			}},
		},
	}
}

// buildHealthDir writes an indexed directory interleaving health
// snapshots with segments, one record per file (MaxFileBytes 1):
//
//	file 1: health seq 0   (horizon-0 anchor, before any event)
//	file 2: segment a 1..10
//	file 3: health seq 10
//	file 4: segment a 11..20
//	file 5: health seq 20
//	file 6: segment a 21..30
func buildHealthDir(t *testing.T) (dir string, healths []obs.HealthRecord) {
	t.Helper()
	dir = t.TempDir()
	m := NewMaintainer(dir)
	sink, err := export.NewWALSink(dir, export.WALConfig{MaxFileBytes: 1, OnSeal: []export.SealedSink{m}})
	if err != nil {
		t.Fatal(err)
	}
	healths = []obs.HealthRecord{th(0), th(10), th(20)}
	if err := sink.WriteHealth(healths[0]); err != nil {
		t.Fatal(err)
	}
	if err := sink.WriteSegment(export.Segment{Monitor: "a", Events: tseq("a", 1, 10)}); err != nil {
		t.Fatal(err)
	}
	if err := sink.WriteHealth(healths[1]); err != nil {
		t.Fatal(err)
	}
	if err := sink.WriteSegment(export.Segment{Monitor: "a", Events: tseq("a", 11, 20)}); err != nil {
		t.Fatal(err)
	}
	if err := sink.WriteHealth(healths[2]); err != nil {
		t.Fatal(err)
	}
	if err := sink.WriteSegment(export.Segment{Monitor: "a", Events: tseq("a", 21, 30)}); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Err(); err != nil {
		t.Fatalf("maintainer: %v", err)
	}
	return dir, healths
}

func TestIndexRecordsHealthOffsets(t *testing.T) {
	t.Parallel()
	dir, healths := buildHealthDir(t)
	maintained, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(maintained.Files) != 6 {
		t.Fatalf("index holds %d files, want 6", len(maintained.Files))
	}
	var got []export.HealthInfo
	for _, f := range maintained.Files {
		if len(f.Healths) > 0 && f.Events != 0 {
			t.Fatalf("file %s mixes healths and events in this fixture: %+v", f.Name, f)
		}
		got = append(got, f.Healths...)
	}
	if len(got) != len(healths) {
		t.Fatalf("index records %d health entries, want %d", len(got), len(healths))
	}
	for i, hi := range got {
		if hi.Seq != healths[i].Seq {
			t.Fatalf("health entry %d has seq %d, want %d", i, hi.Seq, healths[i].Seq)
		}
	}

	// The sink-maintained table and a from-scratch rebuild must agree —
	// OnSeal's incremental summary and ScanFile's header scan are two
	// producers of the same truth, health offsets included.
	rebuilt, err := Rebuild(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(maintained, rebuilt) {
		t.Fatalf("maintained index != rebuilt index:\n%+v\nvs\n%+v", maintained, rebuilt)
	}

	// The v2 codec round-trips the health section.
	re, err := decode(maintained.encode())
	if err != nil {
		t.Fatalf("re-decode: %v", err)
	}
	if !reflect.DeepEqual(maintained, re) {
		t.Fatalf("encode/decode changed the index:\n%+v\nvs\n%+v", maintained, re)
	}
	if errs := maintained.Verify(dir); len(errs) != 0 {
		t.Fatalf("Verify: %v", errs)
	}
}

// encodeV1 serialises an index in format version 1 — exactly encode()
// without the per-file health section, as every pre-health release
// wrote.
func encodeV1(x *Index) []byte {
	var buf bytes.Buffer
	buf.Write(indexMagic[:])
	buf.WriteByte(indexVersion1)
	var scratch [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) { buf.Write(scratch[:binary.PutUvarint(scratch[:], v)]) }
	putVarint := func(v int64) { buf.Write(scratch[:binary.PutVarint(scratch[:], v)]) }
	putString := func(s string) {
		putUvarint(uint64(len(s)))
		buf.WriteString(s)
	}
	putUvarint(uint64(len(x.Files)))
	for _, f := range x.Files {
		putString(f.Name)
		buf.WriteByte(f.Version)
		flags := byte(0)
		if f.Torn {
			flags |= 1
		}
		buf.WriteByte(flags)
		putVarint(f.Size)
		putUvarint(uint64(f.Records))
		putVarint(f.Events)
		putVarint(f.MinSeq)
		putVarint(f.MaxSeq)
		putUvarint(uint64(f.HeaderCRC))
		putUvarint(uint64(len(f.Monitors)))
		for _, mr := range f.Monitors {
			putString(mr.Monitor)
			putVarint(mr.MinSeq)
			putVarint(mr.MaxSeq)
			putVarint(mr.Events)
		}
		putUvarint(uint64(len(f.Markers)))
		for _, mk := range f.Markers {
			putString(mk.Monitor)
			putVarint(mk.Horizon)
			putVarint(mk.Offset)
		}
	}
	sum := crc32.ChecksumIEEE(buf.Bytes())
	binary.LittleEndian.PutUint32(scratch[:4], sum)
	buf.Write(scratch[:4])
	return buf.Bytes()
}

func TestIndexDecodeAcceptsVersion1(t *testing.T) {
	t.Parallel()
	// A health-free directory indexed by an old release: its v1 bytes
	// must decode to exactly what the v2 codec holds for the same
	// files — no health section, not a damaged one.
	dir := buildDir(t, []string{"a", "b"}, 4, 5)
	idx, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := decode(encodeV1(idx))
	if err != nil {
		t.Fatalf("decode of a v1 index: %v", err)
	}
	if !reflect.DeepEqual(idx, decoded) {
		t.Fatalf("v1 decode diverged from the v2 index:\n%+v\nvs\n%+v", idx, decoded)
	}
}

func TestSeekReaderHealthPointReads(t *testing.T) {
	t.Parallel()
	dir, healths := buildHealthDir(t)
	r, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var opened []string
	inner := r.readFile
	r.readFile = func(name string) (*export.FileReplay, error) {
		opened = append(opened, filepath.Base(name))
		return inner(name)
	}

	// Full replay: every snapshot, in horizon order.
	rep, err := r.ReplayRange(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep.Healths, healths) {
		t.Fatalf("full replay healths:\n%+v\nwant\n%+v", rep.Healths, healths)
	}
	if len(rep.Events) != 30 {
		t.Fatalf("full replay returned %d events, want 30", len(rep.Events))
	}

	// A mid-trace window admits only the snapshots whose horizon falls
	// inside it, and collects them from skipped files by point read —
	// the health-only file holding seq 10 must not be decoded.
	opened = nil
	rep, err = r.ReplayRange(5, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Healths) != 1 || rep.Healths[0].Seq != 10 {
		t.Fatalf("window [5,12] healths = %+v, want only seq 10", rep.Healths)
	}
	if !reflect.DeepEqual(rep.Healths[0], healths[1]) {
		t.Fatalf("point-read snapshot diverged:\n%+v\nwant\n%+v", rep.Healths[0], healths[1])
	}
	if len(opened) != 2 {
		t.Fatalf("window [5,12] opened %v, want only the two segment files", opened)
	}
	st := r.LastStats()
	if st.HealthReads != 1 {
		t.Fatalf("stats = %+v, want exactly 1 health point-read", st)
	}

	// A from-the-beginning window also admits the horizon-0 anchor —
	// the snapshot captured before the first event belongs to any query
	// that starts at the start.
	rep, err = r.ReplayRange(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Healths) != 1 || rep.Healths[0].Seq != 0 {
		t.Fatalf("window [0,5] healths = %+v, want only the horizon-0 anchor", rep.Healths)
	}
	// …and a window that starts later excludes it.
	rep, err = r.ReplayRange(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Healths) != 0 {
		t.Fatalf("window [2,5] healths = %+v, want none", rep.Healths)
	}

	// Health snapshots are per-process: a monitor filter that matches
	// no events still yields the window's timeline.
	rep, err = r.ReplayRange(5, 12, "no-such-monitor")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Events) != 0 || len(rep.Healths) != 1 || rep.Healths[0].Seq != 10 {
		t.Fatalf("filtered window: events=%d healths=%+v, want 0 events and the seq-10 snapshot",
			len(rep.Events), rep.Healths)
	}
}
