package index

import (
	"fmt"
	"testing"

	"robustmon/internal/export"
)

// The trace store's proof obligation: a windowed query over a large
// export directory must cost a fraction of a full replay, because the
// index prunes the files the window cannot touch. Compare with
//
//	go test -bench 'SeekReplay|FullReadDir' -benchmem ./internal/export/index
//
// SeekReplay's time should track the window size; FullReadDir's tracks
// the whole directory.

// benchDir builds one indexed directory per benchmark: files of ~32
// events across 4 monitors, seqs 1..events.
func benchDir(b *testing.B, events int) string {
	b.Helper()
	dir := b.TempDir()
	m := NewMaintainer(dir)
	sink, err := export.NewWALSink(dir, export.WALConfig{
		MaxFileBytes: 2 << 10,
		OnSeal:       []export.SealedSink{m},
	})
	if err != nil {
		b.Fatal(err)
	}
	names := [4]string{"m0", "m1", "m2", "m3"}
	const step = 8
	for seq := int64(1); seq <= int64(events); {
		mon := names[(seq/step)%4]
		var seg export.Segment
		seg.Monitor = mon
		for i := 0; i < step && seq <= int64(events); i++ {
			seg.Events = append(seg.Events, tev(mon, seq))
			seq++
		}
		if err := sink.WriteSegment(seg); err != nil {
			b.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		b.Fatal(err)
	}
	if err := m.Err(); err != nil {
		b.Fatal(err)
	}
	return dir
}

func BenchmarkFullReadDir(b *testing.B) {
	for _, events := range []int{20_000, 100_000} {
		b.Run(fmt.Sprintf("events=%d", events), func(b *testing.B) {
			dir := benchDir(b, events)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := export.ReadDir(dir)
				if err != nil {
					b.Fatal(err)
				}
				if len(rep.Events) != events {
					b.Fatalf("replayed %d events, want %d", len(rep.Events), events)
				}
			}
		})
	}
}

func BenchmarkSeekReplay(b *testing.B) {
	for _, events := range []int{20_000, 100_000} {
		b.Run(fmt.Sprintf("events=%d", events), func(b *testing.B) {
			dir := benchDir(b, events)
			r, err := OpenDir(dir)
			if err != nil {
				b.Fatal(err)
			}
			// A 5% window in the middle of the run.
			win := int64(events / 20)
			from := int64(events)/2 - win/2
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := r.ReplayRange(from, from+win-1)
				if err != nil {
					b.Fatal(err)
				}
				if len(rep.Events) != int(win) {
					b.Fatalf("window replayed %d events, want %d", len(rep.Events), win)
				}
			}
		})
	}
}
