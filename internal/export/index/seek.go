package index

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"robustmon/internal/event"
	"robustmon/internal/export"
	"robustmon/internal/history"
	"robustmon/internal/obs"
	obsrules "robustmon/internal/obs/rules"
)

// SeekReader answers windowed replay queries over an export directory:
// ReplayRange(minSeq, maxSeq, monitors...) opens only the segment
// files whose indexed ranges can intersect the window, scans the
// (hopefully few) files the index does not cover, and point-reads
// recovery markers (and health, tombstone and alert records) through
// their indexed byte offsets. Construct with OpenDir. Not safe for
// concurrent use.
type SeekReader struct {
	dir   string
	idx   *Index
	stats Stats

	// readFile is the full-file read, swappable so tests can prove
	// which files a query actually opened.
	readFile func(name string) (*export.FileReplay, error)
}

// Stats accounts one ReplayRange call — the proof that the index
// pruned. FilesTotal is the directory's segment-file count; Opened of
// those were fully read (because the index admitted them or did not
// cover them — the Unindexed subset); Skipped were excluded by the
// index without being opened; MarkerReads, HealthReads, TombstoneReads
// and AlertReads count per-kind point-reads into otherwise skipped
// files.
type Stats struct {
	FilesTotal, Opened, Skipped, Unindexed               int
	MarkerReads, HealthReads, TombstoneReads, AlertReads int
}

// OpenDir opens the directory for windowed reads, loading its index.
// A directory with no index still works — every query then scans every
// file, exactly like ReadDir — so OpenDir only fails on a *damaged*
// index or an unreadable directory.
func OpenDir(dir string) (*SeekReader, error) {
	if _, err := export.WALFiles(dir); err != nil {
		return nil, err
	}
	idx, err := Load(dir)
	if err != nil {
		if !errors.Is(err, ErrNoIndex) {
			// "No index" is fine (scan everything); "index present but
			// unreadable" is refused — the operator should rebuild rather
			// than silently pay full scans forever.
			return nil, err
		}
		idx = nil
	}
	return &SeekReader{
		dir:      dir,
		idx:      idx,
		readFile: export.ReadWALFile,
	}, nil
}

// Index returns the loaded index (nil when the directory has none).
func (r *SeekReader) Index() *Index { return r.idx }

// LastStats returns the accounting of the most recent ReplayRange.
func (r *SeekReader) LastStats() Stats { return r.stats }

// ReplayRange replays the window [minSeq, maxSeq] of the directory's
// trace, optionally restricted to the named monitors. minSeq <= 0
// means from the beginning; maxSeq <= 0 means to the end. The result
// is exactly ReadDir's Replay filtered to the window — same merge,
// same duplicate collapsing, same crash-tail tolerance on the newest
// file — except that Replay.Markers carries every marker matching the
// monitor filter regardless of its horizon: a reset before, inside or
// after the window can all make the window's violations artefacts,
// and the caller needs to know. Replay.Healths is windowed by each
// snapshot's sequence horizon (health records are per-process, so the
// monitor filter does not apply to them); a from-the-beginning query
// also admits horizon-0 snapshots captured before the first event.
//
// Admission is per file. An indexed, size-validated file is opened
// only if one of its (per-monitor, when filtering) sequence ranges
// intersects the window; a file whose only relevant content is markers
// has them point-read at their indexed offsets instead of being
// decoded. Files the index does not cover — the active segment, files
// newer than the last index write, files whose on-disk size disagrees
// with their entry (compaction reuses names) — are scanned like ReadDir
// would. The index can only ever over-admit, never under-admit, so the
// replayed window is complete whatever state the index is in.
func (r *SeekReader) ReplayRange(minSeq, maxSeq int64, monitors ...string) (*export.Replay, error) {
	if minSeq <= 0 {
		minSeq = 1
	}
	if maxSeq <= 0 {
		maxSeq = math.MaxInt64
	}
	var monSet map[string]bool
	if len(monitors) > 0 {
		monSet = make(map[string]bool, len(monitors))
		for _, m := range monitors {
			monSet[m] = true
		}
	}
	names, err := export.WALFiles(r.dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("index: no wal files in %s", r.dir)
	}
	r.stats = Stats{FilesTotal: len(names)}
	rep := &export.Replay{Files: len(names)}
	var payloads []event.Seq
	var markers []history.RecoveryMarker
	var healths []obs.HealthRecord
	var tombs []export.Tombstone
	var alerts []obsrules.Alert
	// Health snapshots — and alerts, which carry the same horizon
	// semantics — window on their horizon. A horizon-0 record (captured
	// before the first event) belongs to any query that runs from the
	// beginning.
	admitHealth := func(seq int64) bool {
		return seq <= maxSeq && (seq >= minSeq || minSeq <= 1)
	}
	for i, name := range names {
		newest := i == len(names)-1
		fs, indexed := r.lookup(name)
		if !indexed {
			r.stats.Unindexed++
		}
		if indexed && !fs.Covers(minSeq, maxSeq, monSet) {
			// The segments cannot matter; the markers still might — fetch
			// those through their indexed offsets without decoding the
			// file.
			for _, mk := range fs.Markers {
				if monSet != nil && !monSet[mk.Monitor] {
					continue
				}
				m, err := export.ReadMarkerAt(name, mk.Offset)
				if err != nil {
					return nil, err
				}
				markers = append(markers, m)
				r.stats.MarkerReads++
			}
			for _, hi := range fs.Healths {
				if !admitHealth(hi.Seq) {
					continue
				}
				h, err := export.ReadHealthAt(name, hi.Offset)
				if err != nil {
					return nil, err
				}
				healths = append(healths, h)
				r.stats.HealthReads++
			}
			// Tombstones are always admitted, like markers: whatever the
			// window, the caller must learn that the store was truncated
			// below the retention horizon, or a below-horizon query would
			// silently read as "nothing happened".
			for _, ti := range fs.Tombstones {
				tb, err := export.ReadTombstoneAt(name, ti.Offset)
				if err != nil {
					return nil, err
				}
				tombs = append(tombs, tb)
				r.stats.TombstoneReads++
			}
			for _, ai := range fs.Alerts {
				if !admitHealth(ai.Seq) {
					continue
				}
				a, err := export.ReadAlertAt(name, ai.Offset)
				if err != nil {
					return nil, err
				}
				alerts = append(alerts, a)
				r.stats.AlertReads++
			}
			r.stats.Skipped++
			continue
		}
		fr, err := r.readFile(name)
		if err != nil {
			return nil, err
		}
		r.stats.Opened++
		if fr.Torn {
			if !newest {
				return nil, fmt.Errorf("index: %s: torn record (not the newest file — corruption, not a crash tail)", name)
			}
			rep.Recovered = true
			rep.TruncatedFile = name
		}
		rep.CorruptRecords += fr.CorruptRecords
		for _, seg := range fr.Segments {
			if monSet != nil && !monSet[seg.Monitor] {
				continue
			}
			if win := seg.Events.SubSeq(minSeq, maxSeq); len(win) > 0 {
				payloads = append(payloads, win)
			}
		}
		for _, m := range fr.Markers {
			if monSet != nil && !monSet[m.Monitor] {
				continue
			}
			markers = append(markers, m)
		}
		for _, h := range fr.Healths {
			if admitHealth(h.Seq) {
				healths = append(healths, h)
			}
		}
		tombs = append(tombs, fr.Tombstones...)
		for _, a := range fr.Alerts {
			if admitHealth(a.Seq) {
				alerts = append(alerts, a)
			}
		}
	}
	rep.Segments = len(payloads)
	merged, err := export.MergeReplay(payloads, markers, healths, tombs, alerts)
	if err != nil {
		return nil, err
	}
	rep.Events = merged.Events
	rep.Markers = merged.Markers
	rep.Healths = merged.Healths
	rep.Tombstones = merged.Tombstones
	rep.Alerts = merged.Alerts
	rep.DuplicateEvents = merged.DuplicateEvents
	rep.DuplicateMarkers = merged.DuplicateMarkers
	rep.DuplicateHealths = merged.DuplicateHealths
	rep.DuplicateTombstones = merged.DuplicateTombstones
	rep.DuplicateAlerts = merged.DuplicateAlerts
	return rep, nil
}

// lookup resolves the file's index entry, validating it against the
// file on disk: an entry whose recorded size disagrees describes an
// earlier file of the same name and is not trusted.
func (r *SeekReader) lookup(name string) (export.FileSummary, bool) {
	if r.idx == nil {
		return export.FileSummary{}, false
	}
	fs, ok := r.idx.Lookup(filepath.Base(name))
	if !ok {
		return export.FileSummary{}, false
	}
	info, err := os.Stat(name)
	if err != nil || info.Size() != fs.Size || fs.Torn {
		// Torn entries describe a prefix of an unknown whole; scan.
		return export.FileSummary{}, false
	}
	return fs, true
}
