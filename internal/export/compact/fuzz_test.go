package compact

import (
	"bytes"
	"testing"
	"time"

	"robustmon/internal/event"
	"robustmon/internal/export"
	"robustmon/internal/history"
)

// FuzzCompactRoundTrip drives the compactor over fuzzer-shaped WAL
// directories and holds it to its core invariant: whatever the layout
// — segment sizes, monitor interleavings, markers, file boundaries —
// replaying the compacted directory must be byte-identical to
// replaying the original, and the result must converge (a second
// compaction changes nothing).
//
// The input bytes are a little program: each byte appends one segment
// (monitor = b%3, length = b%7+1) or, every 13th value, a recovery
// marker at the current horizon. The first byte picks the rotation
// threshold, so file boundaries move with the input too.
func FuzzCompactRoundTrip(f *testing.F) {
	f.Add([]byte{8, 1, 2, 3, 13, 4, 5, 26, 6})
	f.Add([]byte{1, 0, 0, 0, 0, 0})
	f.Add([]byte{255, 13, 13, 13})
	f.Add([]byte{4, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 || len(data) > 256 {
			return
		}
		dir := t.TempDir()
		sink, err := export.NewWALSink(dir, export.WALConfig{
			MaxFileBytes: int64(data[0])%512 + 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		at := time.Date(2001, 7, 1, 0, 0, 0, 0, time.UTC)
		mons := [3]string{"a", "b", "c"}
		seq := int64(0)
		wrote := false
		for i, b := range data[1:] {
			mon := mons[int(b)%3]
			if b%13 == 0 {
				if !wrote {
					continue // a marker needs a horizon to point at
				}
				mk := history.RecoveryMarker{
					Monitor: mon, Horizon: seq, Dropped: int(b) % 5,
					Rule: "FD-1", Pid: int64(i), At: at.Add(time.Duration(i) * time.Second),
				}
				if err := sink.WriteMarker(mk); err != nil {
					t.Fatal(err)
				}
				continue
			}
			n := int64(b)%7 + 1
			var seg event.Seq
			for j := int64(0); j < n; j++ {
				seq++
				seg = append(seg, event.Event{
					Seq: seq, Monitor: mon, Type: event.Enter, Pid: int64(i) + 1,
					Proc: "Op", Flag: event.Completed,
					Time: at.Add(time.Duration(seq) * time.Millisecond),
				})
			}
			if err := sink.WriteSegment(export.Segment{Monitor: mon, Events: seg}); err != nil {
				t.Fatal(err)
			}
			wrote = true
		}
		if err := sink.Close(); err != nil {
			t.Fatal(err)
		}
		if !wrote {
			return
		}

		before, err := export.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		var want bytes.Buffer
		if err := event.WriteBinary(&want, before.Events); err != nil {
			t.Fatal(err)
		}

		keep := 1 // alternate protecting the newest file vs compacting all
		if data[0]%2 == 0 {
			keep = -1 // the sink is closed, so compact-everything is legal
		}
		for round := 0; round < 2; round++ {
			if _, err := Dir(dir, Config{KeepNewest: keep, ChunkEvents: int(data[0])%32 + 1}); err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
			after, err := export.ReadDir(dir)
			if err != nil {
				t.Fatalf("round %d: replay: %v", round, err)
			}
			var got bytes.Buffer
			if err := event.WriteBinary(&got, after.Events); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(want.Bytes(), got.Bytes()) {
				t.Fatalf("round %d: compaction changed the stream: %d -> %d events",
					round, len(before.Events), len(after.Events))
			}
			if len(after.Markers) != len(before.Markers) {
				t.Fatalf("round %d: compaction changed the marker count: %d -> %d",
					round, len(before.Markers), len(after.Markers))
			}
			for i := range after.Markers {
				if after.Markers[i] != before.Markers[i] {
					t.Fatalf("round %d: marker %d changed: %+v -> %+v",
						round, i, before.Markers[i], after.Markers[i])
				}
			}
		}
	})
}
