package compact

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"robustmon/internal/event"
	"robustmon/internal/export"
	"robustmon/internal/export/index"
	"robustmon/internal/history"
)

// tev builds a test event with the given monitor and seq.
func tev(monitor string, seq int64) event.Event {
	return event.Event{
		Seq:     seq,
		Monitor: monitor,
		Type:    event.Enter,
		Pid:     seq,
		Proc:    "Op",
		Flag:    event.Completed,
		Time:    time.Date(2001, 7, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(seq) * time.Millisecond),
	}
}

// tseq builds a seq-sorted segment for one monitor covering [from, to].
func tseq(monitor string, from, to int64) event.Seq {
	var s event.Seq
	for i := from; i <= to; i++ {
		s = append(s, tev(monitor, i))
	}
	return s
}

// buildMessyDir writes a directory of many small files interleaving
// three monitors, with two recovery markers, rotating after every
// record. Returns the directory and the markers written.
func buildMessyDir(t *testing.T, indexed bool) (string, []history.RecoveryMarker) {
	t.Helper()
	dir := t.TempDir()
	cfg := export.WALConfig{MaxFileBytes: 1}
	var m *index.Maintainer
	if indexed {
		m = index.NewMaintainer(dir)
		cfg.OnSeal = []export.SealedSink{m}
	}
	sink, err := export.NewWALSink(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	at := time.Date(2001, 7, 2, 0, 0, 0, 0, time.UTC)
	mk1 := history.RecoveryMarker{Monitor: "b", Horizon: 12, Dropped: 3, Rule: "FD-2", Pid: 7, At: at}
	mk2 := history.RecoveryMarker{Monitor: "a", Horizon: 21, Dropped: 1, Rule: "ST-5", Pid: 2, At: at.Add(time.Second)}
	write := func(mon string, from, to int64) {
		t.Helper()
		if err := sink.WriteSegment(export.Segment{Monitor: mon, Events: tseq(mon, from, to)}); err != nil {
			t.Fatal(err)
		}
	}
	write("a", 1, 3)
	write("b", 4, 7)
	write("c", 8, 9)
	write("b", 10, 12)
	if err := sink.WriteMarker(mk1); err != nil {
		t.Fatal(err)
	}
	write("b", 13, 15)
	write("a", 16, 21)
	if err := sink.WriteMarker(mk2); err != nil {
		t.Fatal(err)
	}
	write("a", 22, 24)
	write("c", 25, 30)
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if m != nil {
		if err := m.Err(); err != nil {
			t.Fatal(err)
		}
	}
	return dir, []history.RecoveryMarker{mk1, mk2}
}

// traceBytes renders a replay's event stream through the binary codec
// — the byte-equivalence yardstick the acceptance criterion demands.
func traceBytes(t *testing.T, events event.Seq) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := event.WriteBinary(&buf, events); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCompactionReplayByteIdentical is the subsystem's acceptance
// criterion: replaying a compacted directory yields the identical
// merged event stream (byte for byte through the binary codec) and the
// identical marker list as ReadDir on the uncompacted original —
// including across reset horizons, whose pre-reset events are
// preserved by default.
func TestCompactionReplayByteIdentical(t *testing.T) {
	t.Parallel()
	dir, _ := buildMessyDir(t, false)
	before, err := export.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	wantBytes := traceBytes(t, before.Events)

	res, err := Dir(dir, Config{KeepNewest: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.FilesIn < 2 || res.FilesOut >= res.FilesIn {
		t.Fatalf("compaction did not shrink the directory: %+v", res)
	}
	after, err := export.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantBytes, traceBytes(t, after.Events)) {
		t.Fatalf("compaction changed the replayed stream: %d events before, %d after",
			len(before.Events), len(after.Events))
	}
	if !reflect.DeepEqual(before.Markers, after.Markers) {
		t.Fatalf("compaction changed the markers:\n%+v\nvs\n%+v", before.Markers, after.Markers)
	}
	if after.Files >= before.Files {
		t.Fatalf("file count %d -> %d, want fewer", before.Files, after.Files)
	}
	// Compaction converges: a second run over the already-compacted
	// backlog must be equivalent again.
	if _, err := Dir(dir, Config{KeepNewest: 1}); err != nil {
		t.Fatal(err)
	}
	again, err := export.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantBytes, traceBytes(t, again.Events)) {
		t.Fatal("second compaction changed the replayed stream")
	}
}

func TestCompactionNeverTouchesNewestFile(t *testing.T) {
	t.Parallel()
	dir, _ := buildMessyDir(t, false)
	names, err := export.WALFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	newest := names[len(names)-1]
	blob, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(newest)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Dir(dir, Config{KeepNewest: 1}); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(newest)
	if err != nil {
		t.Fatalf("newest file gone after compaction: %v", err)
	}
	info2, err := os.Stat(newest)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, after) || !info.ModTime().Equal(info2.ModTime()) {
		t.Fatal("compaction touched the active (newest) segment file")
	}
}

func TestCompactionDropBelowResetIsFlagged(t *testing.T) {
	t.Parallel()
	dir, markers := buildMessyDir(t, false)
	res, err := Dir(dir, Config{KeepNewest: -1, DropBelowReset: true})
	if err != nil {
		t.Fatal(err)
	}
	// Monitor b was reset at horizon 12 (7 events at or below it:
	// 4..7, 10..12); monitor a at horizon 21 (9 events: 1..3, 16..21).
	if res.DroppedPreReset != 16 {
		t.Fatalf("DroppedPreReset = %d, want 16 (monitor a's 9 + monitor b's 7)", res.DroppedPreReset)
	}
	rep, err := export.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range rep.Events {
		if e.Monitor == "b" && e.Seq <= 12 {
			t.Fatalf("pre-reset event survived DropBelowReset: %+v", e)
		}
		if e.Monitor == "a" && e.Seq <= 21 {
			t.Fatalf("pre-reset event survived DropBelowReset: %+v", e)
		}
	}
	// The horizons themselves must survive — the markers are the record
	// that something was dropped.
	if !reflect.DeepEqual(rep.Markers, markers) {
		t.Fatalf("markers lost under DropBelowReset: %+v", rep.Markers)
	}
	// Monitor c was never reset: all 8 of its events survive.
	if got := len(rep.Events.ByMonitor("c")); got != 8 {
		t.Fatalf("untouched monitor lost events: %d of 8 left", got)
	}
}

func TestCompactionUpdatesIndex(t *testing.T) {
	t.Parallel()
	dir, _ := buildMessyDir(t, true)
	res, err := Dir(dir, Config{KeepNewest: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.IndexUpdated {
		t.Fatalf("index not updated: %+v", res)
	}
	idx, err := index.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if errs := idx.Verify(dir); len(errs) != 0 {
		t.Fatalf("post-compaction index fails Verify: %v", errs)
	}
	names, err := export.WALFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx.Files) != len(names) {
		t.Fatalf("index describes %d files, directory holds %d", len(idx.Files), len(names))
	}
	// And the windowed reader over the compacted, re-indexed directory
	// still prunes: monitor b lives only in the merged output, so the
	// untouched newest file (all monitor c) must be skipped.
	r, err := index.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.ReplayRange(0, 0, "b")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rep.Events); got != 10 {
		t.Fatalf("monitor-filtered replay returned %d events, want b's 10", got)
	}
	if st := r.LastStats(); st.Opened != 1 || st.FilesTotal != 2 {
		t.Fatalf("index did not prune after compaction: %+v", st)
	}
}

func TestCompactionRecoversFromInterruptedSwap(t *testing.T) {
	t.Parallel()
	// Simulate a crash between installing the merged output and
	// unlinking the inputs it replaced: duplicate the first file's
	// records by re-writing them into a later file. The reader must
	// collapse the duplicates, and a rerun of the compactor must
	// converge to the exact original stream.
	dir := t.TempDir()
	sink, err := export.NewWALSink(dir, export.WALConfig{MaxFileBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	seg := export.Segment{Monitor: "a", Events: tseq("a", 1, 5)}
	if err := sink.WriteSegment(seg); err != nil {
		t.Fatal(err)
	}
	if err := sink.WriteSegment(export.Segment{Monitor: "a", Events: tseq("a", 6, 9)}); err != nil {
		t.Fatal(err)
	}
	if err := sink.WriteSegment(seg); err != nil { // the "leftover input"
		t.Fatal(err)
	}
	if err := sink.WriteSegment(export.Segment{Monitor: "a", Events: tseq("a", 10, 11)}); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := export.ReadDir(dir)
	if err != nil {
		t.Fatalf("reader rejected duplicate records: %v", err)
	}
	if rep.DuplicateEvents != 5 {
		t.Fatalf("DuplicateEvents = %d, want 5", rep.DuplicateEvents)
	}
	if len(rep.Events) != 11 {
		t.Fatalf("deduped replay has %d events, want 11", len(rep.Events))
	}
	res, err := Dir(dir, Config{KeepNewest: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.DuplicatesDropped != 5 {
		t.Fatalf("DuplicatesDropped = %d, want 5", res.DuplicatesDropped)
	}
	after, err := export.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if after.DuplicateEvents != 0 || len(after.Events) != 11 {
		t.Fatalf("compaction did not converge: %d events, %d duplicates left",
			len(after.Events), after.DuplicateEvents)
	}
}

func TestExporterBackgroundCompactionEndToEnd(t *testing.T) {
	t.Parallel()
	// The full production wiring: WALSink with index maintenance,
	// exporter with a segment-count compaction trigger. Drive enough
	// segments through and the directory must end up compacted, indexed
	// and replay-identical.
	dir := filepath.Join(t.TempDir(), "run")
	m := index.NewMaintainer(dir)
	sink, err := export.NewWALSink(dir, export.WALConfig{
		MaxFileBytes: 1, // rotate per record: worst-case backlog
		OnSeal:       []export.SealedSink{m},
	})
	if err != nil {
		t.Fatal(err)
	}
	exp := export.New(sink, export.Config{
		Policy:       export.Block,
		CompactEvery: 8,
		Compact: func() error {
			_, err := Dir(dir, Config{KeepNewest: 1})
			return err
		},
	})
	var want event.Seq
	seq := int64(1)
	for i := 0; i < 32; i++ {
		mon := []string{"a", "b"}[i%2]
		seg := tseq(mon, seq, seq+4)
		seq += 5
		want = append(want, seg...)
		exp.Consume(mon, seg)
	}
	if err := exp.Close(); err != nil {
		t.Fatal(err)
	}
	st := exp.Stats()
	if st.Compactions == 0 {
		t.Fatalf("no background compaction ran: %+v", st)
	}
	if st.CompactErrors != 0 {
		t.Fatalf("background compaction failed: %+v", st)
	}
	names, err := export.WALFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) >= 32 {
		t.Fatalf("directory still holds %d files; the trigger never bounded the backlog", len(names))
	}
	rep, err := export.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(traceBytes(t, want), traceBytes(t, rep.Events)) {
		t.Fatalf("background compaction changed the stream: %d events, want %d", len(rep.Events), len(want))
	}
}

func TestZeroConfigNeverEatsTheActiveSegment(t *testing.T) {
	t.Parallel()
	// The zero-value Config must be safe against a LIVE directory: a
	// sink with an open, half-written active file. Compacting it with
	// Config{} while the sink keeps appending must lose nothing.
	dir := t.TempDir()
	sink, err := export.NewWALSink(dir, export.WALConfig{MaxFileBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 4; i++ {
		if err := sink.WriteSegment(export.Segment{Monitor: "m", Events: tseq("m", i*5+1, i*5+5)}); err != nil {
			t.Fatal(err)
		}
	}
	// Rotate-per-record leaves no open file; reopen one mid-append by
	// using a big threshold for the 5th segment's sink session.
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	live, err := export.NewWALSink(dir, export.WALConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := live.WriteSegment(export.Segment{Monitor: "m", Events: tseq("m", 21, 25)}); err != nil {
		t.Fatal(err)
	}
	if err := live.Flush(); err != nil { // durable but still open/active
		t.Fatal(err)
	}
	if _, err := Dir(dir, Config{}); err != nil {
		t.Fatal(err)
	}
	// The sink keeps writing to its (still linked!) active file.
	if err := live.WriteSegment(export.Segment{Monitor: "m", Events: tseq("m", 26, 30)}); err != nil {
		t.Fatal(err)
	}
	if err := live.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := export.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Events) != 30 {
		t.Fatalf("replayed %d events, want all 30 — zero-value compaction touched the active segment", len(rep.Events))
	}
}

func TestMaintainerDoesNotResurrectCompactedEntries(t *testing.T) {
	t.Parallel()
	// A rotation AFTER a compaction must not write the maintainer's
	// earlier view of the index back over the compactor's: that view
	// still lists the merged-away inputs.
	dir := t.TempDir()
	m := index.NewMaintainer(dir)
	sink, err := export.NewWALSink(dir, export.WALConfig{MaxFileBytes: 1, OnSeal: []export.SealedSink{m}})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 4; i++ {
		if err := sink.WriteSegment(export.Segment{Monitor: "m", Events: tseq("m", i*5+1, i*5+5)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Dir(dir, Config{}); err != nil {
		t.Fatal(err)
	}
	// One more rotation through the SAME maintainer.
	if err := sink.WriteSegment(export.Segment{Monitor: "m", Events: tseq("m", 21, 25)}); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Err(); err != nil {
		t.Fatal(err)
	}
	idx, err := index.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if errs := idx.Verify(dir); len(errs) != 0 {
		t.Fatalf("index disagrees with the directory after compact+rotate: %v", errs)
	}
	names, err := export.WALFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx.Files) != len(names) {
		t.Fatalf("index lists %d files, directory holds %d — stale entries resurrected", len(idx.Files), len(names))
	}
}

func TestSinkResumesCleanlyAfterCompaction(t *testing.T) {
	t.Parallel()
	// Compacted files carry generation-suffixed names; a later sink
	// session must still resume numbering past everything and the mixed
	// directory must replay whole.
	dir, _ := buildMessyDir(t, false)
	if _, err := Dir(dir, Config{KeepNewest: -1}); err != nil {
		t.Fatal(err)
	}
	sink, err := export.NewWALSink(dir, export.WALConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.WriteSegment(export.Segment{Monitor: "d", Events: tseq("d", 31, 35)}); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := export.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Events) != 35 || rep.DuplicateEvents != 0 {
		t.Fatalf("resumed directory replayed %d events (%d duplicates), want 35 clean",
			len(rep.Events), rep.DuplicateEvents)
	}
	// And a second compaction over the mixed generations still works.
	if _, err := Dir(dir, Config{KeepNewest: -1}); err != nil {
		t.Fatal(err)
	}
	rep, err = export.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Events) != 35 {
		t.Fatalf("second-generation compaction lost events: %d of 35", len(rep.Events))
	}
}
