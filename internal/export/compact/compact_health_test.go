package compact

import (
	"reflect"
	"testing"
	"time"

	"robustmon/internal/export"
	"robustmon/internal/obs"
)

// th builds a test health snapshot at the given sequence horizon.
func th(seq int64) obs.HealthRecord {
	return obs.HealthRecord{
		At:  time.Date(2001, 7, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(seq) * time.Second),
		Seq: seq,
		Metrics: obs.Snapshot{
			Counters: []obs.Metric{{Name: "history_append_total", Value: seq * 3}},
			Gauges:   []obs.Metric{{Name: "export_queue_depth", Value: 1}},
			Histograms: []obs.HistogramSnapshot{{
				Name: "detect_check_ns", Count: 4, Sum: 2048,
				Buckets: []obs.Bucket{{Index: 10, Count: 4}},
			}},
		},
	}
}

// healthKeys canonicalises a health list for byte-identity comparison.
func healthKeys(hs []obs.HealthRecord) []string {
	keys := make([]string, len(hs))
	for i, h := range hs {
		keys[i] = export.HealthKey(h)
	}
	return keys
}

// TestCompactionCarriesHealthsByteIdentical: health snapshots must ride
// through a compaction byte for byte — the timeline a post-mortem
// renders is the same before and after the directory is merged.
func TestCompactionCarriesHealthsByteIdentical(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	sink, err := export.NewWALSink(dir, export.WALConfig{MaxFileBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	healths := []obs.HealthRecord{th(0), th(10), th(20)}
	if err := sink.WriteHealth(healths[0]); err != nil {
		t.Fatal(err)
	}
	if err := sink.WriteSegment(export.Segment{Monitor: "a", Events: tseq("a", 1, 10)}); err != nil {
		t.Fatal(err)
	}
	if err := sink.WriteHealth(healths[1]); err != nil {
		t.Fatal(err)
	}
	if err := sink.WriteSegment(export.Segment{Monitor: "b", Events: tseq("b", 11, 20)}); err != nil {
		t.Fatal(err)
	}
	if err := sink.WriteHealth(healths[2]); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	before, err := export.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before.Healths, healths) {
		t.Fatalf("fixture replay healths = %+v", before.Healths)
	}

	reg := obs.NewRegistry()
	res, err := Dir(dir, Config{KeepNewest: -1, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	if res.Healths != 3 {
		t.Fatalf("Result.Healths = %d, want 3: %+v", res.Healths, res)
	}
	if res.BytesReclaimed <= 0 {
		t.Fatalf("BytesReclaimed = %d, want > 0 merging 5 one-record files", res.BytesReclaimed)
	}
	snap := reg.Snapshot()
	if v, _ := snap.Counter("compact_passes_total"); v != 1 {
		t.Fatalf("compact_passes_total = %d, want 1", v)
	}
	if v, _ := snap.Counter("compact_bytes_reclaimed_total"); v != res.BytesReclaimed {
		t.Fatalf("compact_bytes_reclaimed_total = %d, Result says %d", v, res.BytesReclaimed)
	}

	after, err := export.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(healthKeys(before.Healths), healthKeys(after.Healths)) {
		t.Fatalf("compaction changed the health timeline:\n%+v\nvs\n%+v", before.Healths, after.Healths)
	}
	if len(after.Events) != 20 {
		t.Fatalf("compaction lost events: %d of 20", len(after.Events))
	}
}

// TestCompactionDedupsDuplicateHealths: a crash between installing the
// merged output and unlinking its inputs leaves the same health record
// in two files; the reader collapses it and a compaction rerun
// converges to a single copy on disk.
func TestCompactionDedupsDuplicateHealths(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	sink, err := export.NewWALSink(dir, export.WALConfig{MaxFileBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	h := th(5)
	if err := sink.WriteSegment(export.Segment{Monitor: "a", Events: tseq("a", 1, 5)}); err != nil {
		t.Fatal(err)
	}
	if err := sink.WriteHealth(h); err != nil {
		t.Fatal(err)
	}
	if err := sink.WriteHealth(h); err != nil { // the "leftover input"
		t.Fatal(err)
	}
	if err := sink.WriteSegment(export.Segment{Monitor: "a", Events: tseq("a", 6, 9)}); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := export.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DuplicateHealths != 1 || len(rep.Healths) != 1 {
		t.Fatalf("replay = %d healths, %d duplicates; want 1 and 1", len(rep.Healths), rep.DuplicateHealths)
	}
	res, err := Dir(dir, Config{KeepNewest: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Healths != 1 {
		t.Fatalf("Result.Healths = %d, want the single deduped snapshot", res.Healths)
	}
	after, err := export.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if after.DuplicateHealths != 0 || len(after.Healths) != 1 ||
		export.HealthKey(after.Healths[0]) != export.HealthKey(h) {
		t.Fatalf("compaction did not converge the duplicate: %d healths, %d duplicates",
			len(after.Healths), after.DuplicateHealths)
	}
	if len(after.Events) != 9 {
		t.Fatalf("compaction lost events: %d of 9", len(after.Events))
	}
}
