package compact

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"robustmon/internal/event"
	"robustmon/internal/export"
	"robustmon/internal/export/index"
	"robustmon/internal/history"
	"robustmon/internal/obs"
)

// eventKey pins an event's full identity through the binary codec, so
// "survived byte-identically" means exactly that.
func eventKey(t *testing.T, e event.Event) string {
	t.Helper()
	var buf bytes.Buffer
	if err := event.WriteBinary(&buf, event.Seq{e}); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// checkRetentionInvariants verifies the retention contract between a
// before-replay and an after-replay: no event at or above the
// after-replay's retention horizon may be missing, every missing event
// must lie strictly below it, the tombstone's cumulative event count
// must equal the number actually missing, and every marker whose
// horizon is at or above the retention horizon must survive.
func checkRetentionInvariants(t *testing.T, before, after *export.Replay) {
	t.Helper()
	h := after.RetentionHorizon()
	afterSet := make(map[int64]string, len(after.Events))
	for _, e := range after.Events {
		afterSet[e.Seq] = eventKey(t, e)
	}
	var missing int64
	for _, e := range before.Events {
		k, ok := afterSet[e.Seq]
		if !ok {
			missing++
			if e.Seq >= h {
				t.Fatalf("event seq %d missing but at-or-above retention horizon %d", e.Seq, h)
			}
			continue
		}
		if k != eventKey(t, e) {
			t.Fatalf("event seq %d survived but changed", e.Seq)
		}
	}
	if missing > 0 && len(after.Tombstones) == 0 {
		t.Fatalf("%d events missing but no tombstone recorded the truncation", missing)
	}
	if len(after.Tombstones) > 0 {
		tb := after.Tombstones[0]
		for _, other := range after.Tombstones[1:] {
			if other.Horizon > tb.Horizon {
				tb = other
			}
		}
		// The tombstone is cumulative: what the before-replay's own
		// tombstone had already recorded, plus what went missing since.
		var prior int64
		for _, pt := range before.Tombstones {
			if pt.Events > prior {
				prior = pt.Events
			}
		}
		if tb.Events != prior+missing {
			t.Fatalf("tombstone counts %d dropped events, want %d already recorded + %d newly missing", tb.Events, prior, missing)
		}
	}
	afterMarkers := make(map[history.RecoveryMarker]bool, len(after.Markers))
	for _, m := range after.Markers {
		afterMarkers[m] = true
	}
	for _, m := range before.Markers {
		if m.Horizon >= h && !afterMarkers[m] {
			t.Fatalf("marker %+v orphaned: horizon %d is at-or-above retention horizon %d but the marker is gone", m, m.Horizon, h)
		}
	}
}

// TestRetentionDropsBehindTombstone pins the basic retention pass:
// files wholly below the seq floor are dropped, a tombstone records
// the horizon and exactly what vanished, and everything at or above
// the horizon replays byte-identically.
func TestRetentionDropsBehindTombstone(t *testing.T) {
	t.Parallel()
	dir, markers := buildMessyDir(t, false)
	before, err := export.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Dir(dir, Config{KeepNewest: -1, RetainSeq: 10})
	if err != nil {
		t.Fatal(err)
	}
	// buildMessyDir rotates per record: the files holding a[1..3],
	// b[4..7] and c[8..9] sit wholly below seq 10; the next file
	// (b[10..12]) straddles the floor and must survive whole.
	if res.FilesDropped != 3 {
		t.Fatalf("FilesDropped = %d, want 3: %s", res.FilesDropped, res)
	}
	if res.EventsDropped != 9 || res.RecordsDropped != 3 {
		t.Fatalf("dropped %d events / %d records, want 9 / 3", res.EventsDropped, res.RecordsDropped)
	}
	if res.TombstoneHorizon != 10 {
		t.Fatalf("TombstoneHorizon = %d, want 10", res.TombstoneHorizon)
	}
	after, err := export.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := after.RetentionHorizon(); got != 10 {
		t.Fatalf("RetentionHorizon() = %d, want 10", got)
	}
	if len(after.Tombstones) != 1 {
		t.Fatalf("replay carries %d tombstones, want 1", len(after.Tombstones))
	}
	tb := after.Tombstones[0]
	if tb.Files != 3 || tb.Records != 3 || tb.Events != 9 {
		t.Fatalf("tombstone accounts %d files / %d records / %d events, want 3 / 3 / 9", tb.Files, tb.Records, tb.Events)
	}
	wantRanges := map[string][2]int64{"a": {1, 3}, "b": {4, 7}, "c": {8, 9}}
	if len(tb.Monitors) != len(wantRanges) {
		t.Fatalf("tombstone names %d monitors, want %d", len(tb.Monitors), len(wantRanges))
	}
	for _, tr := range tb.Monitors {
		want, ok := wantRanges[tr.Monitor]
		if !ok || tr.MinSeq != want[0] || tr.MaxSeq != want[1] {
			t.Fatalf("tombstone range %+v, want %v", tr, want)
		}
	}
	if len(after.Markers) != len(markers) {
		t.Fatalf("markers: got %d, want %d (both horizons are above the floor)", len(after.Markers), len(markers))
	}
	checkRetentionInvariants(t, before, after)
	// The surviving stream is byte-identical to the original filtered
	// at the horizon.
	want := traceBytes(t, before.Events.SubSeq(10, 1<<62))
	got := traceBytes(t, after.Events)
	if !bytes.Equal(want, got) {
		t.Fatal("surviving events differ from the original stream above the horizon")
	}
}

// TestRetentionPropertyRandomHorizons is the acceptance property test:
// across randomized directories, random retention floors and random
// KeepNewest choices, retention never loses a record at or above the
// tombstone horizon, the tombstone's counters balance, and no marker
// a replay needs is orphaned.
func TestRetentionPropertyRandomHorizons(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(20010707))
	for round := 0; round < 40; round++ {
		dir := t.TempDir()
		sink, err := export.NewWALSink(dir, export.WALConfig{
			MaxFileBytes: int64(1 + rng.Intn(200)),
		})
		if err != nil {
			t.Fatal(err)
		}
		mons := []string{"a", "b", "c", "d"}
		seq := int64(1)
		for rec := 0; rec < 5+rng.Intn(20); rec++ {
			if rng.Intn(7) == 0 {
				m := history.RecoveryMarker{
					Monitor: mons[rng.Intn(len(mons))], Horizon: seq - 1,
					Dropped: rng.Intn(5), Rule: "FD-2", Pid: int64(rec),
					At: time.Date(2001, 7, 1, 0, 0, 0, 0, time.UTC),
				}
				if err := sink.WriteMarker(m); err != nil {
					t.Fatal(err)
				}
				continue
			}
			mon := mons[rng.Intn(len(mons))]
			n := int64(1 + rng.Intn(8))
			if err := sink.WriteSegment(export.Segment{Monitor: mon, Events: tseq(mon, seq, seq+n-1)}); err != nil {
				t.Fatal(err)
			}
			seq += n
		}
		if err := sink.Close(); err != nil {
			t.Fatal(err)
		}
		before, err := export.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{RetainSeq: 1 + rng.Int63n(seq+5), ChunkEvents: 1 + rng.Intn(16)}
		if rng.Intn(2) == 0 {
			cfg.KeepNewest = -1
		}
		if _, err := Dir(dir, cfg); err != nil {
			t.Fatalf("round %d (floor %d): %v", round, cfg.RetainSeq, err)
		}
		after, err := export.ReadDir(dir)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if h := after.RetentionHorizon(); h > cfg.RetainSeq {
			t.Fatalf("round %d: horizon %d above the configured floor %d", round, h, cfg.RetainSeq)
		}
		checkRetentionInvariants(t, before, after)
	}
}

// TestRetentionMarkerAboveFloorKeepsFile pins the marker-orphan rule
// at the file level: a file whose events sit wholly below the floor
// but which carries a marker with a horizon at or above it must not be
// dropped — the marker (and, at file granularity, the events sharing
// its file) survives.
func TestRetentionMarkerAboveFloorKeepsFile(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	sink, err := export.NewWALSink(dir, export.WALConfig{})
	if err != nil {
		t.Fatal(err)
	}
	mk := history.RecoveryMarker{Monitor: "a", Horizon: 100, Dropped: 2, Rule: "ST-5", Pid: 1,
		At: time.Date(2001, 7, 1, 0, 0, 0, 0, time.UTC)}
	if err := sink.WriteSegment(export.Segment{Monitor: "a", Events: tseq("a", 1, 5)}); err != nil {
		t.Fatal(err)
	}
	if err := sink.WriteMarker(mk); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	// A second sink session adds a newer file so the directory has two.
	sink, err = export.NewWALSink(dir, export.WALConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.WriteSegment(export.Segment{Monitor: "b", Events: tseq("b", 101, 110)}); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := Dir(dir, Config{KeepNewest: -1, RetainSeq: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.FilesDropped != 0 {
		t.Fatalf("FilesDropped = %d, want 0: the marker's horizon pins its file", res.FilesDropped)
	}
	after, err := export.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Markers) != 1 || after.Markers[0] != mk {
		t.Fatalf("marker did not survive: %+v", after.Markers)
	}
	if len(after.Events) != 15 {
		t.Fatalf("got %d events, want all 15 (the marker keeps its file whole)", len(after.Events))
	}
	if len(after.Tombstones) != 0 {
		t.Fatal("nothing was dropped, so no tombstone should exist")
	}
}

// TestRetentionFoldsAcrossPasses pins the cumulative tombstone: a
// second pass with a higher floor folds the first pass's tombstone
// into its own — one live tombstone, cumulative counters, advancing
// horizon — and a pass that drops nothing carries it through
// unchanged.
func TestRetentionFoldsAcrossPasses(t *testing.T) {
	t.Parallel()
	dir, _ := buildMessyDir(t, false)
	before, err := export.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Pass 1 drops 1..9 and re-rotates the survivors into tiny files
	// (one record each) so the next pass has whole files to drop below
	// a higher floor.
	if _, err := Dir(dir, Config{KeepNewest: -1, RetainSeq: 10, MaxFileBytes: 1, ChunkEvents: 4}); err != nil {
		t.Fatal(err)
	}
	mid, err := export.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Dir(dir, Config{KeepNewest: -1, RetainSeq: 25, MaxFileBytes: 1, ChunkEvents: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.FilesDropped == 0 {
		t.Fatal("second retention pass dropped nothing; the scenario is vacuous")
	}
	after, err := export.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Tombstones) != 1 {
		t.Fatalf("got %d tombstones, want exactly 1 (folded)", len(after.Tombstones))
	}
	checkRetentionInvariants(t, before, after)
	checkRetentionInvariants(t, mid, after)
	tb := after.Tombstones[0]
	if tb.Horizon <= 10 || tb.Horizon > 25 {
		t.Fatalf("folded horizon %d, want in (10, 25]", tb.Horizon)
	}
	if tb.Events <= 9 {
		t.Fatalf("folded tombstone counts %d events; pass 1's 9 plus pass 2's drops expected", tb.Events)
	}
	// A further pass that drops nothing — it merges the tiny files
	// back together — must carry the tombstone through byte-identically
	// (same At, same counters).
	if _, err := Dir(dir, Config{KeepNewest: -1, RetainSeq: tb.Horizon}); err != nil {
		t.Fatal(err)
	}
	again, err := export.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Tombstones) != 1 || export.TombstoneKey(again.Tombstones[0]) != export.TombstoneKey(tb) {
		t.Fatalf("no-drop pass altered the tombstone:\n  was %+v\n  now %+v", tb, again.Tombstones)
	}
	if !bytes.Equal(traceBytes(t, after.Events), traceBytes(t, again.Events)) {
		t.Fatal("no-drop pass altered the event stream")
	}
}

// TestRetainBeforeDropsOldFiles pins wall-clock retention: files whose
// mtime predates the floor are dropped, and the tombstone horizon
// still derives from the dropped content, so the at-or-above-horizon
// guarantee holds even though the trigger was age.
func TestRetainBeforeDropsOldFiles(t *testing.T) {
	t.Parallel()
	dir, _ := buildMessyDir(t, false)
	before, err := export.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	names, err := export.WALFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-48 * time.Hour)
	for _, name := range names[:2] {
		if err := os.Chtimes(name, old, old); err != nil {
			t.Fatal(err)
		}
	}
	res, err := Dir(dir, Config{KeepNewest: -1, RetainBefore: time.Now().Add(-24 * time.Hour)})
	if err != nil {
		t.Fatal(err)
	}
	if res.FilesDropped != 2 {
		t.Fatalf("FilesDropped = %d, want the 2 aged files", res.FilesDropped)
	}
	after, err := export.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if after.RetentionHorizon() == 0 {
		t.Fatal("age-based drop left no tombstone")
	}
	checkRetentionInvariants(t, before, after)
}

// TestWindowBelowHorizonReportsTombstone pins the reader-facing
// contract: a windowed query wholly below the retention horizon
// returns no events but carries the tombstone, so the caller learns
// "truncated by retention" instead of "nothing happened" — through
// the index fast path and the full-scan path alike.
func TestWindowBelowHorizonReportsTombstone(t *testing.T) {
	t.Parallel()
	dir, _ := buildMessyDir(t, true)
	if _, err := Dir(dir, Config{KeepNewest: -1, RetainSeq: 10}); err != nil {
		t.Fatal(err)
	}
	r, err := index.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r.Index() == nil {
		t.Fatal("directory lost its index")
	}
	rep, err := r.ReplayRange(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Events) != 0 {
		t.Fatalf("window [1,5] is below the horizon; got %d events", len(rep.Events))
	}
	if got := rep.RetentionHorizon(); got != 10 {
		t.Fatalf("window [1,5]: RetentionHorizon() = %d, want 10 (the tombstone must be surfaced)", got)
	}
	// A window above the horizon still gets both its events and the
	// tombstone.
	rep, err = r.ReplayRange(10, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Events) == 0 {
		t.Fatal("window [10,15] is above the horizon; events expected")
	}
	if rep.RetentionHorizon() != 10 {
		t.Fatal("above-horizon window lost the tombstone")
	}
}

// TestCompactErrorsCounterOnEveryFailurePath pins the error
// accounting: a failed pass bumps compact_errors_total and leaves the
// directory retriable (no input removed), whichever phase failed; a
// successful pass does not touch the counter.
func TestCompactErrorsCounterOnEveryFailurePath(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	sink, err := export.NewWALSink(dir, export.WALConfig{MaxFileBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 3; i++ {
		if err := sink.WriteSegment(export.Segment{Monitor: "a", Events: tseq("a", 1+i*10, 5+i*10)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	names, err := export.WALFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) < 3 {
		t.Fatalf("want >= 3 files, got %d", len(names))
	}
	// Tear the middle of a non-newest file: corruption, not a crash
	// tail — the pass must refuse.
	info, err := os.Stat(names[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(names[0], info.Size()-3); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	if _, err := Dir(dir, Config{KeepNewest: -1, Obs: reg}); err == nil {
		t.Fatal("expected the torn rotated file to fail the pass")
	}
	if got := reg.Counter("compact_errors_total").Value(); got != 1 {
		t.Fatalf("compact_errors_total = %d after a failed pass, want 1", got)
	}
	left, err := export.WALFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != len(names) {
		t.Fatalf("failed pass removed inputs: %d files left of %d", len(left), len(names))
	}
	// Repair (remove the damage) and retry: success, and the error
	// counter stays put.
	if err := os.Remove(names[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := Dir(dir, Config{KeepNewest: -1, Obs: reg}); err != nil {
		t.Fatalf("retry after repair: %v", err)
	}
	if got := reg.Counter("compact_errors_total").Value(); got != 1 {
		t.Fatalf("compact_errors_total = %d after a successful retry, want still 1", got)
	}
	if got := reg.Counter("compact_passes_total").Value(); got != 1 {
		t.Fatalf("compact_passes_total = %d, want 1", got)
	}
}

// TestStreamingCompactionBoundedMemory is the bounded-memory pin: the
// live heap while compacting a backlog many times the chunk budget
// must stay far below the size of the decoded backlog. A
// whole-backlog-in-RAM compactor would hold every decoded event live
// at merge time (tens of megabytes here); the streaming merge holds
// one decoded record per input file plus one output chunk.
func TestStreamingCompactionBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("heap measurement is noisy under -short")
	}
	dir := t.TempDir()
	sink, err := export.NewWALSink(dir, export.WALConfig{MaxFileBytes: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	const perRec = 1024
	seq := int64(1)
	for rec := 0; rec < 256; rec++ {
		mon := fmt.Sprintf("m%d", rec%4)
		if err := sink.WriteSegment(export.Segment{Monitor: mon, Events: tseq(mon, seq, seq+perRec-1)}); err != nil {
			t.Fatal(err)
		}
		seq += perRec
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	// ~262k events: decoded whole, the backlog is well over 25 MB of
	// live event structs and strings — the budget below is impossible
	// for a load-everything pass.
	runtime.GC()
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	peak := m0.HeapAlloc
	done := make(chan struct{})
	var sampler sync.WaitGroup
	sampler.Add(1)
	go func() {
		defer sampler.Done()
		var m runtime.MemStats
		for {
			select {
			case <-done:
				return
			default:
			}
			runtime.ReadMemStats(&m)
			if m.HeapAlloc > peak {
				peak = m.HeapAlloc
			}
			time.Sleep(500 * time.Microsecond)
		}
	}()
	res, err := Dir(dir, Config{KeepNewest: -1, ChunkEvents: 256, MaxFileBytes: 64 << 10})
	close(done)
	sampler.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Events != seq-1 {
		t.Fatalf("compacted %d events, want %d", res.Events, seq-1)
	}
	if grew := int64(peak) - int64(m0.HeapAlloc); grew > 16<<20 {
		t.Fatalf("peak heap grew %d bytes compacting %d events; streaming merge should be O(files x record), not O(backlog)", grew, res.Events)
	}
}
