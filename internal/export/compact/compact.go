// Package compact is the storage half of the trace store: it merges a
// directory's rotated WAL segment files into dense, per-monitor v2
// segments, bounding the on-disk footprint and the file count a
// replaying reader must visit, and — when a retention floor is set —
// drops segment files wholly below the floor behind a tombstone record
// of exactly what was truncated.
//
// A long-running detector rotates hundreds of small segment files
// whose records interleave monitors in drain order. The compactor
// rewrites the sealed backlog — never the active segment — so each
// monitor's events sit in few large, seq-contiguous records, which is
// both smaller (one record header amortised over thousands of events)
// and exactly the shape the windowed SeekReader prunes best.
//
// # Streaming merge
//
// Compaction is a streaming per-monitor k-way merge in bounded memory:
// a header-only scan (export.ScanFileRecords) locates every record of
// every input, then one open cursor per input file decodes segment
// records one at a time (export.RecordReader) in merge order. Resident
// state is one decoded record per input file plus one output chunk
// (Config.ChunkEvents) — O(files × record), never O(backlog) — so a
// multi-gigabyte cold backlog compacts in the same footprint as a
// small one.
//
// # Invariants
//
// Replaying a compacted directory yields the identical merged event
// stream, marker list and health timeline as replaying the uncompacted
// original (pinned by TestCompactionReplayByteIdentical): sequence
// numbers are globally unique, so per-monitor re-segmentation never
// changes the k-way merge, and recovery markers and health snapshots
// are carried over in their original record order with their horizons
// intact. Pre-reset records — a reset
// monitor's events at or below its reset horizon — are preserved by
// default; Config.DropBelowReset discards them, counted in
// Result.DroppedPreReset, never silently.
//
// # Retention
//
// Config.RetainSeq (a sequence floor) and Config.RetainBefore (a
// file-age floor) bound the directory in bytes, not just file count:
// an input file is dropped — not merged — when every horizon it
// carries (segment seq ranges, marker horizons, health and alert seqs) lies
// strictly below the seq floor, or its mtime predates the age floor.
// The drop is never silent: a tombstone record (WAL record kind 3)
// lands in the lowest-numbered output, recording the retention horizon
// — every event at or above it is still present, by construction:
// the horizon is one past the highest sequence number actually dropped
// — and the cumulative count of dropped files, records and events,
// per monitor. Each pass folds the prior tombstone into the next, so a
// directory carries one live tombstone however many passes ran; a pass
// that drops nothing carries the tombstone through byte-identically.
// Replay surfaces it (export.Replay.Tombstones), so a windowed query
// below the horizon reports "truncated by retention" instead of
// silently returning less.
//
// # Crash and concurrency safety
//
// Output files are written and fsynced in a temporary subdirectory,
// renamed into the directory under fresh generation-suffixed names
// ("00000001-0001.wal" — never a name an existing file holds, sorting
// just before the inputs they supersede), and only then are the
// inputs unlinked. No step ever overwrites a live file, so every
// intermediate state a crash or concurrent reader can observe is a
// superset of the original records: complete files only, at worst
// with a merged output coexisting with inputs it duplicates, which
// the reader collapses (Replay.DuplicateEvents) back to the identical
// stream. Rerunning the compactor after a crash converges. One
// qualification under retention: a crash between installing outputs
// and unlinking dropped inputs can make the rerun count the same
// dropped file into the tombstone twice — the horizon and per-monitor
// ranges are idempotent (max/min), only the scalar drop counters are
// advisory after a crashed pass.
//
// Every early error return leaves a retriable directory (inputs are
// never removed before outputs are installed) and bumps
// compact_errors_total when Config.Obs is set.
package compact

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"robustmon/internal/event"
	"robustmon/internal/export"
	"robustmon/internal/export/index"
	"robustmon/internal/history"
	"robustmon/internal/obs"
	obsrules "robustmon/internal/obs/rules"
)

// tmpDirName is the staging subdirectory inside the export directory.
// It matches no *.wal glob, and a stale one (a crashed compaction that
// never got to install anything) is discarded on the next run.
const tmpDirName = ".compact"

// DefaultChunkEvents bounds one output segment record when
// Config.ChunkEvents is zero: large enough to amortise the record
// header, small enough that a windowed reader never decodes an
// unbounded payload for a narrow window.
const DefaultChunkEvents = 8192

// Config parameterises a compaction.
type Config struct {
	// KeepNewest excludes that many of the highest-numbered segment
	// files from compaction. Zero means the default of 1 — the
	// possibly-active segment a live sink is appending to, which the
	// compactor must never touch — so the zero-value Config is always
	// safe to run against a live directory. Compacting *everything*
	// (a directory whose sink is closed) takes an explicit negative
	// value: the opt-in is deliberate, because compacting a file mid-
	// append unlinks it under the writer and loses records.
	KeepNewest int
	// MaxFileBytes rotates output files at this size (default
	// export.DefaultMaxFileBytes).
	MaxFileBytes int64
	// ChunkEvents bounds the events per output record (default
	// DefaultChunkEvents). It is also the unit of the streaming
	// merge's memory bound.
	ChunkEvents int
	// DropBelowReset additionally discards a reset monitor's events at
	// or below its highest reset horizon — the monitor's superseded
	// pre-reset life. The drop is flagged (Result.DroppedPreReset), the
	// markers recording the horizons are always preserved, and replay
	// equivalence with the original deliberately no longer holds for
	// the dropped monitor. Off by default.
	DropBelowReset bool
	// RetainSeq, when positive, is the retention floor: an eligible
	// input file whose every horizon (segment ranges, marker horizons,
	// health seqs) lies strictly below it is dropped whole behind the
	// tombstone instead of being merged. Records at or above RetainSeq
	// are never dropped. Zero disables sequence-based retention.
	RetainSeq int64
	// RetainBefore, when set, additionally drops eligible input files
	// whose modification time predates it — wall-clock retention for
	// stores whose sequence horizon is unknown to the operator. The
	// tombstone horizon still derives from the dropped content, so the
	// no-record-at-or-above-the-horizon guarantee holds regardless of
	// which floor triggered the drop.
	RetainBefore time.Time
	// Obs, when set, counts compactions on the registry:
	// compact_passes_total, compact_bytes_reclaimed_total (input
	// bytes minus output bytes; a no-op pass counts neither) and
	// compact_errors_total (every failed pass, whichever phase it
	// failed in). Nil disables at zero cost (see internal/obs).
	Obs *obs.Registry
}

// Result accounts one compaction.
type Result struct {
	// FilesIn inputs were processed — merged or dropped — into
	// FilesOut outputs (both zero for a no-op: fewer than two eligible
	// files and nothing to drop).
	FilesIn, FilesOut int
	// FilesDropped of the inputs were dropped whole by retention.
	FilesDropped int
	// RecordsIn and RecordsOut count the valid records merged (dropped
	// files' records are counted in RecordsDropped instead).
	RecordsIn, RecordsOut int
	// Events is the number of events written out.
	Events int64
	// Markers is the number of recovery markers carried over.
	Markers int
	// Healths is the number of health snapshots carried over.
	Healths int
	// Alerts is the number of threshold alerts carried over.
	Alerts int
	// EventsDropped and RecordsDropped count what retention dropped
	// this pass (the tombstone carries the cumulative totals).
	EventsDropped, RecordsDropped int64
	// TombstoneHorizon is the retention horizon recorded in the
	// directory's tombstone after this pass (0 when the directory has
	// none).
	TombstoneHorizon int64
	// BytesReclaimed is the input bytes minus the output bytes — what
	// the pass actually shrank the directory by.
	BytesReclaimed int64
	// DroppedPreReset counts events discarded under DropBelowReset.
	DroppedPreReset int
	// CorruptDropped counts CRC-corrupt input records left behind —
	// they were unreadable before compaction and stay unreadable; the
	// compactor does not copy damage forward.
	CorruptDropped int
	// DuplicatesDropped counts exact duplicate events collapsed from
	// the inputs — the leftovers of a previously interrupted
	// compaction.
	DuplicatesDropped int
	// IndexUpdated reports that the directory's index file was brought
	// in step (only attempted when one exists).
	IndexUpdated bool

	// outSummaries carries the staged outputs' file summaries from the
	// writer to the index update.
	outSummaries []export.FileSummary
}

// String renders the result for CLI output.
func (r Result) String() string {
	if r.FilesIn == 0 {
		return "compact: nothing to do (fewer than two eligible files)"
	}
	s := fmt.Sprintf("compact: %d files (%d records) -> %d files (%d records), %d events, %d markers",
		r.FilesIn, r.RecordsIn, r.FilesOut, r.RecordsOut, r.Events, r.Markers)
	if r.Healths > 0 {
		s += fmt.Sprintf(", %d health snapshots", r.Healths)
	}
	if r.Alerts > 0 {
		s += fmt.Sprintf(", %d alerts", r.Alerts)
	}
	if r.FilesDropped > 0 {
		s += fmt.Sprintf(", %d files (%d records, %d events) dropped below retention horizon %d",
			r.FilesDropped, r.RecordsDropped, r.EventsDropped, r.TombstoneHorizon)
	}
	if r.DroppedPreReset > 0 {
		s += fmt.Sprintf(", %d pre-reset events dropped", r.DroppedPreReset)
	}
	if r.CorruptDropped > 0 {
		s += fmt.Sprintf(", %d corrupt records dropped", r.CorruptDropped)
	}
	if r.DuplicatesDropped > 0 {
		s += fmt.Sprintf(", %d duplicate events collapsed", r.DuplicatesDropped)
	}
	if r.IndexUpdated {
		s += ", index updated"
	}
	return s
}

// input is one scanned eligible file: its header-only summary plus the
// byte locations of its segment records.
type input struct {
	name string
	fs   export.FileSummary
	locs []export.SegmentLocation
}

// Dir compacts the eligible rotated files of an export directory. It
// is a no-op (nil error, zero Result) when fewer than two files are
// eligible for merging and retention drops nothing. The directory's
// index file, when present, is updated to describe the outputs.
func Dir(dir string, cfg Config) (*Result, error) {
	res, err := run(dir, cfg)
	if err != nil && cfg.Obs != nil {
		// Every failure path counts, whichever phase it died in; the
		// directory is left retriable (inputs are only removed after
		// outputs are installed, and staging is cleared on the next
		// attempt).
		cfg.Obs.Counter("compact_errors_total").Inc()
	}
	return res, err
}

func run(dir string, cfg Config) (*Result, error) {
	switch {
	case cfg.KeepNewest == 0:
		cfg.KeepNewest = 1 // the safe default: never the active segment
	case cfg.KeepNewest < 0:
		cfg.KeepNewest = 0 // explicit opt-in: closed directory, compact all
	}
	if cfg.MaxFileBytes <= 0 {
		cfg.MaxFileBytes = export.DefaultMaxFileBytes
	}
	if cfg.ChunkEvents <= 0 {
		cfg.ChunkEvents = DefaultChunkEvents
	}
	// A crashed previous run may have left a staging dir with outputs
	// it never installed; they were never visible and are rebuilt.
	tmpDir := filepath.Join(dir, tmpDirName)
	if err := os.RemoveAll(tmpDir); err != nil {
		return nil, fmt.Errorf("compact: clear staging dir: %w", err)
	}
	names, err := export.WALFiles(dir)
	if err != nil {
		return nil, err
	}
	eligibleNames := names
	if cfg.KeepNewest > 0 {
		if cfg.KeepNewest >= len(names) {
			return &Result{}, nil
		}
		eligibleNames = names[:len(names)-cfg.KeepNewest]
	}
	if len(eligibleNames) == 0 {
		return &Result{}, nil
	}

	// Phase 1: header-only discovery. No payload is decoded here; the
	// scan yields each file's summary (ranges, marker/health/tombstone
	// offsets) and its segment-record cursor table.
	inputs := make([]input, 0, len(eligibleNames))
	for i, name := range eligibleNames {
		fs, locs, err := export.ScanFileRecords(name)
		if err != nil {
			return nil, err
		}
		if fs.Torn && !(cfg.KeepNewest == 0 && i == len(eligibleNames)-1) {
			return nil, fmt.Errorf("compact: %s: torn record in a rotated file — corruption, not a crash tail", name)
		}
		inputs = append(inputs, input{name: name, fs: fs, locs: locs})
	}

	// Partition into retention-dropped and kept-for-merge.
	var dropped, keep []input
	for _, in := range inputs {
		if droppable(in, cfg) {
			dropped = append(dropped, in)
		} else {
			keep = append(keep, in)
		}
	}
	if len(dropped) == 0 && len(keep) < 2 {
		return &Result{}, nil
	}

	res := &Result{FilesIn: len(inputs), FilesDropped: len(dropped)}
	var bytesIn int64
	for _, in := range inputs {
		if info, err := os.Stat(in.name); err == nil {
			bytesIn += info.Size()
		}
	}

	// Prior tombstones fold forward from every input — including
	// dropped ones, or truncation history would vanish with the file
	// that carried it.
	priors, err := readTombstones(inputs, res)
	if err != nil {
		return nil, err
	}
	tomb := foldTombstone(priors, dropped, res)

	// Side records (markers, health snapshots, alerts) come from kept
	// files only — dropped files' copies are below the retention floor
	// by construction — via point reads at their scanned offsets.
	markers, healths, alerts, horizons, err := readSideRecords(keep, res)
	if err != nil {
		return nil, err
	}
	res.Markers = len(markers)
	res.Healths = len(healths)
	res.Alerts = len(alerts)
	if !cfg.DropBelowReset {
		horizons = nil
	}

	outs, err := writeOutputs(tmpDir, cfg, keep, tomb, markers, healths, alerts, horizons, res)
	if err != nil {
		return nil, err
	}
	// Install under fresh names, delete inputs only afterwards. The
	// j-th output takes the j-th input's number plus a generation
	// suffix no existing file carries, so no rename ever lands on a
	// live file — a crash at any point leaves a superset of the
	// original records (duplicates, which replay collapses), never a
	// subset. A pass re-chunking into smaller records can produce more
	// outputs than inputs; the extras stack further generation
	// suffixes onto the last input's number, which keeps them sorted
	// in creation order and still ahead of every untouched newer file.
	// The tombstone is the first record of the first output, which
	// takes the lowest input number: it sorts ahead of every surviving
	// segment, exactly where every reader starts.
	gen := nextGeneration(names)
	installed := make([]string, 0, len(outs))
	for i, out := range outs {
		base, g := inputs[len(inputs)-1].name, gen+1+(i-len(inputs))
		if i < len(inputs) {
			base, g = inputs[i].name, gen
		}
		target, err := outputName(base, g)
		if err != nil {
			return nil, err
		}
		if err := os.Rename(out, target); err != nil {
			return nil, fmt.Errorf("compact: install output: %w", err)
		}
		installed = append(installed, target)
	}
	for _, in := range inputs {
		if err := os.Remove(in.name); err != nil {
			return nil, fmt.Errorf("compact: remove merged input: %w", err)
		}
	}
	if err := os.RemoveAll(tmpDir); err != nil {
		return nil, fmt.Errorf("compact: clear staging dir: %w", err)
	}
	res.FilesOut = len(outs)
	var bytesOut int64
	for _, name := range installed {
		if info, err := os.Stat(name); err == nil {
			bytesOut += info.Size()
		}
	}
	res.BytesReclaimed = bytesIn - bytesOut
	if cfg.Obs != nil {
		cfg.Obs.Counter("compact_passes_total").Inc()
		cfg.Obs.Counter("compact_bytes_reclaimed_total").Add(res.BytesReclaimed)
	}

	if err := updateIndex(dir, inputs, installed, res); err != nil {
		return nil, err
	}
	return res, nil
}

// droppable reports whether retention may drop the file whole: every
// horizon its summary carries lies strictly below the sequence floor,
// or its mtime predates the age floor. Torn files are never dropped
// (their summary covers an unknown whole), and tombstone records never
// block a drop — they are folded forward, not lost.
func droppable(in input, cfg Config) bool {
	if in.fs.Torn {
		return false
	}
	if cfg.RetainSeq > 0 && belowFloor(in.fs, cfg.RetainSeq) {
		return true
	}
	if !cfg.RetainBefore.IsZero() {
		if info, err := os.Stat(in.name); err == nil && info.ModTime().Before(cfg.RetainBefore) {
			return true
		}
	}
	return false
}

// belowFloor reports whether every content horizon of the summary is
// strictly below the sequence floor.
func belowFloor(fs export.FileSummary, floor int64) bool {
	if fs.Events > 0 && fs.MaxSeq >= floor {
		return false
	}
	for _, mk := range fs.Markers {
		if mk.Horizon >= floor {
			return false
		}
	}
	for _, hi := range fs.Healths {
		if hi.Seq >= floor {
			return false
		}
	}
	for _, ai := range fs.Alerts {
		if ai.Seq >= floor {
			return false
		}
	}
	return true
}

// readTombstones point-reads every tombstone of every input. A
// CRC-corrupt tombstone is skipped and counted like any other corrupt
// record.
func readTombstones(inputs []input, res *Result) ([]export.Tombstone, error) {
	var tombs []export.Tombstone
	for _, in := range inputs {
		for _, ti := range in.fs.Tombstones {
			tb, err := export.ReadTombstoneAt(in.name, ti.Offset)
			if err != nil {
				if errors.Is(err, export.ErrCorruptRecord) {
					res.CorruptDropped++
					continue
				}
				return nil, err
			}
			tombs = append(tombs, tb)
		}
	}
	return tombs, nil
}

// foldTombstone merges the prior tombstones and this pass's drops into
// the single tombstone the outputs will carry (nil when the directory
// has no truncation history and nothing was dropped). Prior tombstones
// are generations of each other — each pass folds its predecessor —
// so the maximal one is the live state; an interrupted install can
// leave two generations visible, and picking the maximal (rather than
// summing) keeps the counters from double-counting. When this pass
// drops nothing the prior tombstone is carried through unchanged, so
// reruns converge byte-identically.
func foldTombstone(priors []export.Tombstone, dropped []input, res *Result) *export.Tombstone {
	var base *export.Tombstone
	for i := range priors {
		if base == nil || newerTombstone(priors[i], *base) {
			base = &priors[i]
		}
	}
	if len(dropped) == 0 {
		if base != nil {
			res.TombstoneHorizon = base.Horizon
		}
		return base
	}
	var t export.Tombstone
	if base != nil {
		t = *base
	}
	orig := t
	mons := make(map[string]*export.TruncatedRange, len(t.Monitors))
	for i := range t.Monitors {
		mons[t.Monitors[i].Monitor] = &t.Monitors[i]
	}
	maxDropSeq := t.Horizon - 1 // keeps the horizon monotonic
	for _, in := range dropped {
		records := int64(in.fs.Records - len(in.fs.Tombstones))
		if records > 0 {
			// A tombstone-only file is infrastructure, not data: removing
			// it folds its record forward rather than dropping anything.
			t.Files++
			t.Records += records
			t.Events += in.fs.Events
			res.RecordsDropped += records
			res.EventsDropped += in.fs.Events
		}
		if in.fs.Events > 0 && in.fs.MaxSeq > maxDropSeq {
			maxDropSeq = in.fs.MaxSeq
		}
		for _, mk := range in.fs.Markers {
			if mk.Horizon > maxDropSeq {
				maxDropSeq = mk.Horizon
			}
		}
		for _, hi := range in.fs.Healths {
			if hi.Seq > maxDropSeq {
				maxDropSeq = hi.Seq
			}
		}
		for _, ai := range in.fs.Alerts {
			if ai.Seq > maxDropSeq {
				maxDropSeq = ai.Seq
			}
		}
		for _, mr := range in.fs.Monitors {
			tr := mons[mr.Monitor]
			if tr == nil {
				t.Monitors = append(t.Monitors, export.TruncatedRange{
					Monitor: mr.Monitor, MinSeq: mr.MinSeq, MaxSeq: mr.MaxSeq, Events: mr.Events,
				})
				// The map must point into the (possibly reallocated) slice.
				mons = make(map[string]*export.TruncatedRange, len(t.Monitors))
				for i := range t.Monitors {
					mons[t.Monitors[i].Monitor] = &t.Monitors[i]
				}
				continue
			}
			tr.MinSeq = min(tr.MinSeq, mr.MinSeq)
			tr.MaxSeq = max(tr.MaxSeq, mr.MaxSeq)
			tr.Events += mr.Events
		}
	}
	if t.Files == orig.Files && t.Records == orig.Records && t.Events == orig.Events &&
		maxDropSeq == orig.Horizon-1 {
		// Only tombstone-carrying infrastructure files were removed —
		// nothing actually truncated — so the prior tombstone is carried
		// through byte-identically (same At), keeping reruns convergent.
		if base != nil {
			res.TombstoneHorizon = base.Horizon
		}
		return base
	}
	t.Horizon = maxDropSeq + 1
	t.At = time.Now().UTC()
	sort.Slice(t.Monitors, func(i, j int) bool {
		return t.Monitors[i].Monitor < t.Monitors[j].Monitor
	})
	res.TombstoneHorizon = t.Horizon
	return &t
}

// newerTombstone reports whether a supersedes b. Generational folding
// makes every field of the successor >= its predecessor's, so any
// lexicographic order over them picks the live generation.
func newerTombstone(a, b export.Tombstone) bool {
	if a.Horizon != b.Horizon {
		return a.Horizon > b.Horizon
	}
	if a.Files != b.Files {
		return a.Files > b.Files
	}
	if a.Records != b.Records {
		return a.Records > b.Records
	}
	if a.Events != b.Events {
		return a.Events > b.Events
	}
	return a.At.After(b.At)
}

// readSideRecords point-reads the kept files' recovery markers, health
// snapshots and threshold alerts at their scanned offsets (no segment
// payload is decoded), collapsing exact duplicates — the leftovers of
// an interrupted earlier compaction — while preserving first-
// occurrence order, and returns each monitor's highest reset horizon
// for DropBelowReset.
func readSideRecords(keep []input, res *Result) ([]history.RecoveryMarker, []obs.HealthRecord, []obsrules.Alert, map[string]int64, error) {
	var markers []history.RecoveryMarker
	var healths []obs.HealthRecord
	var alerts []obsrules.Alert
	horizons := make(map[string]int64)
	seenM := make(map[history.RecoveryMarker]bool)
	seenH := make(map[string]bool)
	seenA := make(map[string]bool)
	for _, in := range keep {
		for _, mk := range in.fs.Markers {
			m, err := export.ReadMarkerAt(in.name, mk.Offset)
			if err != nil {
				if errors.Is(err, export.ErrCorruptRecord) {
					res.CorruptDropped++
					continue
				}
				return nil, nil, nil, nil, err
			}
			res.RecordsIn++
			if m.Horizon > horizons[m.Monitor] {
				horizons[m.Monitor] = m.Horizon
			}
			if seenM[m] {
				continue
			}
			seenM[m] = true
			markers = append(markers, m)
		}
		for _, hi := range in.fs.Healths {
			h, err := export.ReadHealthAt(in.name, hi.Offset)
			if err != nil {
				if errors.Is(err, export.ErrCorruptRecord) {
					res.CorruptDropped++
					continue
				}
				return nil, nil, nil, nil, err
			}
			res.RecordsIn++
			k := export.HealthKey(h)
			if seenH[k] {
				continue
			}
			seenH[k] = true
			healths = append(healths, h)
		}
		for _, ai := range in.fs.Alerts {
			a, err := export.ReadAlertAt(in.name, ai.Offset)
			if err != nil {
				if errors.Is(err, export.ErrCorruptRecord) {
					res.CorruptDropped++
					continue
				}
				return nil, nil, nil, nil, err
			}
			res.RecordsIn++
			k := export.AlertKey(a)
			if seenA[k] {
				continue
			}
			seenA[k] = true
			alerts = append(alerts, a)
		}
	}
	return markers, healths, alerts, horizons, nil
}

// monCursor walks one input file's segment records of one monitor in
// sequence order, decoding one record at a time through the shared
// per-file RecordReader — the unit of the merge's memory bound.
type monCursor struct {
	rr   *export.RecordReader
	locs []export.SegmentLocation
	next int
	buf  event.Seq
	pos  int
}

// peek returns the cursor's current event, decoding the next record
// when the buffered one is exhausted. A CRC-corrupt record is skipped
// and counted; ok=false means the cursor is drained.
func (c *monCursor) peek(res *Result) (e event.Event, ok bool, err error) {
	for {
		if c.pos < len(c.buf) {
			return c.buf[c.pos], true, nil
		}
		if c.next >= len(c.locs) {
			return event.Event{}, false, nil
		}
		loc := c.locs[c.next]
		c.next++
		rec, err := c.rr.ReadAt(loc.Offset)
		if err != nil {
			if errors.Is(err, export.ErrCorruptRecord) {
				res.CorruptDropped++
				continue
			}
			return event.Event{}, false, err
		}
		if rec.Segment == nil {
			return event.Event{}, false, fmt.Errorf("compact: offset %d: expected a segment record", loc.Offset)
		}
		res.RecordsIn++
		c.buf = rec.Segment.Events
		c.pos = 0
	}
}

// writeOutputs streams the merged monitors, the folded tombstone and
// the side records through a WALSink in the staging directory and
// returns the output paths in creation order. The sink fsyncs each
// file as it rotates, so everything returned is durable. Record
// order: tombstone first (the lowest-numbered output must carry it),
// then each monitor's chunked stream in order of first event, then
// markers, then health snapshots, then threshold alerts.
func writeOutputs(tmpDir string, cfg Config, keep []input, tomb *export.Tombstone,
	markers []history.RecoveryMarker, healths []obs.HealthRecord,
	alerts []obsrules.Alert, horizons map[string]int64, res *Result) ([]string, error) {
	var summaries []export.FileSummary
	sink, err := export.NewWALSink(tmpDir, export.WALConfig{
		MaxFileBytes: cfg.MaxFileBytes,
		OnSeal: []export.SealedSink{export.SealedSinkFunc(func(fs export.FileSummary) error {
			summaries = append(summaries, fs)
			return nil
		})},
	})
	if err != nil {
		return nil, err
	}
	if tomb != nil {
		if err := sink.WriteTombstone(*tomb); err != nil {
			return nil, err
		}
		res.RecordsOut++
	}

	// One open cursor table per monitor, one cursor per file that holds
	// the monitor: the per-file location lists come from the header
	// scan, sorted by first sequence number.
	readers := make([]*export.RecordReader, len(keep))
	defer func() {
		for _, rr := range readers {
			if rr != nil {
				rr.Close()
			}
		}
	}()
	type monSource struct {
		file int
		locs []export.SegmentLocation
	}
	byMon := make(map[string][]monSource)
	monMin := make(map[string]int64)
	var monOrder []string
	for fi, in := range keep {
		perMon := make(map[string][]export.SegmentLocation)
		for _, loc := range in.locs {
			perMon[loc.Monitor] = append(perMon[loc.Monitor], loc)
		}
		for mon, locs := range perMon {
			sort.Slice(locs, func(i, j int) bool {
				if locs[i].First != locs[j].First {
					return locs[i].First < locs[j].First
				}
				return locs[i].Offset < locs[j].Offset
			})
			if _, seen := byMon[mon]; !seen {
				monOrder = append(monOrder, mon)
				monMin[mon] = locs[0].First
			} else if locs[0].First < monMin[mon] {
				monMin[mon] = locs[0].First
			}
			byMon[mon] = append(byMon[mon], monSource{file: fi, locs: locs})
		}
	}
	// Write monitors in order of their first event so output files'
	// seq ranges grow roughly with file number — the shape the windowed
	// reader prunes best.
	sort.SliceStable(monOrder, func(i, j int) bool { return monMin[monOrder[i]] < monMin[monOrder[j]] })

	reader := func(fi int) (*export.RecordReader, error) {
		if readers[fi] == nil {
			rr, err := export.OpenRecordReader(keep[fi].name)
			if err != nil {
				return nil, err
			}
			readers[fi] = rr
		}
		return readers[fi], nil
	}

	chunk := make(event.Seq, 0, cfg.ChunkEvents)
	for _, mon := range monOrder {
		cursors := make([]*monCursor, 0, len(byMon[mon]))
		for _, src := range byMon[mon] {
			rr, err := reader(src.file)
			if err != nil {
				return nil, err
			}
			cursors = append(cursors, &monCursor{rr: rr, locs: src.locs})
		}
		flush := func() error {
			if len(chunk) == 0 {
				return nil
			}
			if err := sink.WriteSegment(export.Segment{Monitor: mon, Events: chunk}); err != nil {
				return err
			}
			res.RecordsOut++
			res.Events += int64(len(chunk))
			chunk = chunk[:0]
			return nil
		}
		var last event.Event
		haveLast := false
		for {
			best := -1
			var be event.Event
			for i, c := range cursors {
				e, ok, err := c.peek(res)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
				if best < 0 || e.Seq < be.Seq {
					best, be = i, e
				}
			}
			if best < 0 {
				break
			}
			cursors[best].pos++
			if haveLast && be.Seq == last.Seq {
				// Collapse exact duplicates (an interrupted earlier
				// compaction); a seq collision between different events is
				// corruption.
				if be != last {
					return nil, fmt.Errorf("compact: monitor %q: two different events share sequence number %d", mon, be.Seq)
				}
				res.DuplicatesDropped++
				continue
			}
			last, haveLast = be, true
			if h := horizons[mon]; h > 0 && be.Seq <= h {
				res.DroppedPreReset++
				continue
			}
			chunk = append(chunk, be)
			if len(chunk) >= cfg.ChunkEvents {
				if err := flush(); err != nil {
					return nil, err
				}
			}
		}
		if err := flush(); err != nil {
			return nil, err
		}
	}

	for _, m := range markers {
		if err := sink.WriteMarker(m); err != nil {
			return nil, err
		}
		res.RecordsOut++
	}
	for _, h := range healths {
		if err := sink.WriteHealth(h); err != nil {
			return nil, err
		}
		res.RecordsOut++
	}
	for _, a := range alerts {
		if err := sink.WriteAlert(a); err != nil {
			return nil, err
		}
		res.RecordsOut++
	}
	if err := sink.Close(); err != nil {
		return nil, err
	}
	outs := make([]string, 0, len(summaries))
	for _, fs := range summaries {
		outs = append(outs, filepath.Join(tmpDir, fs.Name))
	}
	res.outSummaries = summaries
	return outs, nil
}

// Compacted files carry a generation suffix: "00000007-0002.wal" is
// the generation-2 compaction output that reused input number 7. The
// '-' sorts before the '.' of a plain "00000007.wal", so an output
// sorts just before the input it supersedes — always ahead of the
// untouched newer files, keeping the directory's only torn-tail
// candidate (the newest file) last. NewWALSink's resume parse reads
// the leading number and ignores the suffix, so appending to a
// compacted directory keeps numbering safely past every name.

// nextGeneration returns one more than the highest generation suffix
// among the given file names (1 when none carry one).
func nextGeneration(names []string) int {
	gen := 0
	for _, name := range names {
		stem := strings.TrimSuffix(filepath.Base(name), ".wal")
		if i := strings.IndexByte(stem, '-'); i >= 0 {
			var g int
			if _, err := fmt.Sscanf(stem[i+1:], "%d", &g); err == nil && g > gen {
				gen = g
			}
		}
	}
	return gen + 1
}

// outputName builds the fresh installed name for an output reusing the
// given input's number at the given generation.
func outputName(input string, gen int) (string, error) {
	stem := strings.TrimSuffix(filepath.Base(input), ".wal")
	if i := strings.IndexByte(stem, '-'); i >= 0 {
		stem = stem[:i] // an input that is itself a compacted file
	}
	var num int
	if _, err := fmt.Sscanf(stem, "%d", &num); err != nil {
		return "", fmt.Errorf("compact: unparseable segment name %q", input)
	}
	return filepath.Join(filepath.Dir(input), fmt.Sprintf("%08d-%04d.wal", num, gen)), nil
}

// updateIndex brings the directory's index (when one exists) in step
// with the swap: entries of all processed inputs are dropped and the
// outputs' summaries added under their installed names.
func updateIndex(dir string, inputs []input, installed []string, res *Result) error {
	idx, err := index.Load(dir)
	if err != nil {
		if !errors.Is(err, index.ErrNoIndex) {
			// A damaged index is simply removed: it is advisory and
			// rebuildable, and leaving it would cost a hard OpenDir error
			// forever.
			_ = os.Remove(filepath.Join(dir, index.FileName))
		}
		return nil
	}
	for _, in := range inputs {
		idx.Remove(filepath.Base(in.name))
	}
	for i, fs := range res.outSummaries {
		fs.Name = filepath.Base(installed[i])
		idx.Add(fs)
	}
	if err := idx.Write(dir); err != nil {
		return fmt.Errorf("compact: update index: %w", err)
	}
	res.IndexUpdated = true
	return nil
}
