// Package compact is the storage half of the trace store: it merges a
// directory's rotated WAL segment files into dense, per-monitor v2
// segments, bounding the on-disk footprint and the file count a
// replaying reader must visit.
//
// A long-running detector rotates hundreds of small segment files
// whose records interleave monitors in drain order. The compactor
// rewrites the sealed backlog — never the active segment — so each
// monitor's events sit in few large, seq-contiguous records, which is
// both smaller (one record header amortised over thousands of events)
// and exactly the shape the windowed SeekReader prunes best.
//
// # Invariants
//
// Replaying a compacted directory yields the identical merged event
// stream, marker list and health timeline as replaying the uncompacted
// original (pinned by TestCompactionReplayByteIdentical): sequence
// numbers are globally unique, so per-monitor re-segmentation never
// changes the k-way merge, and recovery markers and health snapshots
// are carried over in their original record order with their horizons
// intact. Pre-reset records — a reset
// monitor's events at or below its reset horizon — are preserved by
// default; Config.DropBelowReset discards them, counted in
// Result.DroppedPreReset, never silently.
//
// # Crash and concurrency safety
//
// Output files are written and fsynced in a temporary subdirectory,
// renamed into the directory under fresh generation-suffixed names
// ("00000001-0001.wal" — never a name an existing file holds, sorting
// just before the inputs they supersede), and only then are the
// inputs unlinked. No step ever overwrites a live file, so every
// intermediate state a crash or concurrent reader can observe is a
// superset of the original records: complete files only, at worst
// with a merged output coexisting with inputs it duplicates, which
// the reader collapses (Replay.DuplicateEvents) back to the identical
// stream. Rerunning the compactor after a crash converges.
//
// Compaction reads the whole eligible backlog into memory to merge it
// (bounded by the backlog's decoded size, not the run's total
// history once compaction runs periodically); a streaming merge is a
// known follow-up for multi-GB cold backlogs.
package compact

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"robustmon/internal/event"
	"robustmon/internal/export"
	"robustmon/internal/export/index"
	"robustmon/internal/history"
	"robustmon/internal/obs"
)

// tmpDirName is the staging subdirectory inside the export directory.
// It matches no *.wal glob, and a stale one (a crashed compaction that
// never got to install anything) is discarded on the next run.
const tmpDirName = ".compact"

// DefaultChunkEvents bounds one output segment record when
// Config.ChunkEvents is zero: large enough to amortise the record
// header, small enough that a windowed reader never decodes an
// unbounded payload for a narrow window.
const DefaultChunkEvents = 8192

// Config parameterises a compaction.
type Config struct {
	// KeepNewest excludes that many of the highest-numbered segment
	// files from compaction. Zero means the default of 1 — the
	// possibly-active segment a live sink is appending to, which the
	// compactor must never touch — so the zero-value Config is always
	// safe to run against a live directory. Compacting *everything*
	// (a directory whose sink is closed) takes an explicit negative
	// value: the opt-in is deliberate, because compacting a file mid-
	// append unlinks it under the writer and loses records.
	KeepNewest int
	// MaxFileBytes rotates output files at this size (default
	// export.DefaultMaxFileBytes).
	MaxFileBytes int64
	// ChunkEvents bounds the events per output record (default
	// DefaultChunkEvents).
	ChunkEvents int
	// DropBelowReset additionally discards a reset monitor's events at
	// or below its highest reset horizon — the monitor's superseded
	// pre-reset life. The drop is flagged (Result.DroppedPreReset), the
	// markers recording the horizons are always preserved, and replay
	// equivalence with the original deliberately no longer holds for
	// the dropped monitor. Off by default.
	DropBelowReset bool
	// Obs, when set, counts compactions on the registry:
	// compact_passes_total and compact_bytes_reclaimed_total (input
	// bytes minus output bytes; a no-op pass counts neither). Nil
	// disables at zero cost (see internal/obs).
	Obs *obs.Registry
}

// Result accounts one compaction.
type Result struct {
	// FilesIn inputs were merged into FilesOut outputs (both zero for a
	// no-op: fewer than two eligible files).
	FilesIn, FilesOut int
	// RecordsIn and RecordsOut count the records before and after.
	RecordsIn, RecordsOut int
	// Events is the number of events written out.
	Events int64
	// Markers is the number of recovery markers carried over.
	Markers int
	// Healths is the number of health snapshots carried over.
	Healths int
	// BytesReclaimed is the input bytes minus the output bytes — what
	// the pass actually shrank the directory by.
	BytesReclaimed int64
	// DroppedPreReset counts events discarded under DropBelowReset.
	DroppedPreReset int
	// CorruptDropped counts CRC-corrupt input records left behind —
	// they were unreadable before compaction and stay unreadable; the
	// compactor does not copy damage forward.
	CorruptDropped int
	// DuplicatesDropped counts exact duplicate events collapsed from
	// the inputs — the leftovers of a previously interrupted
	// compaction.
	DuplicatesDropped int
	// IndexUpdated reports that the directory's index file was brought
	// in step (only attempted when one exists).
	IndexUpdated bool

	// outSummaries carries the staged outputs' file summaries from the
	// writer to the index update.
	outSummaries []export.FileSummary
}

// String renders the result for CLI output.
func (r Result) String() string {
	if r.FilesIn == 0 {
		return "compact: nothing to do (fewer than two eligible files)"
	}
	s := fmt.Sprintf("compact: %d files (%d records) -> %d files (%d records), %d events, %d markers",
		r.FilesIn, r.RecordsIn, r.FilesOut, r.RecordsOut, r.Events, r.Markers)
	if r.Healths > 0 {
		s += fmt.Sprintf(", %d health snapshots", r.Healths)
	}
	if r.DroppedPreReset > 0 {
		s += fmt.Sprintf(", %d pre-reset events dropped", r.DroppedPreReset)
	}
	if r.CorruptDropped > 0 {
		s += fmt.Sprintf(", %d corrupt records dropped", r.CorruptDropped)
	}
	if r.DuplicatesDropped > 0 {
		s += fmt.Sprintf(", %d duplicate events collapsed", r.DuplicatesDropped)
	}
	if r.IndexUpdated {
		s += ", index updated"
	}
	return s
}

// monStream is one monitor's merged event stream plus its highest
// reset horizon (0 when the monitor was never reset).
type monStream struct {
	monitor string
	events  event.Seq
	horizon int64
}

// Dir compacts the eligible rotated files of an export directory. It
// is a no-op (nil error, zero Result) when fewer than two files are
// eligible. The directory's index file, when present, is updated to
// describe the outputs.
func Dir(dir string, cfg Config) (*Result, error) {
	switch {
	case cfg.KeepNewest == 0:
		cfg.KeepNewest = 1 // the safe default: never the active segment
	case cfg.KeepNewest < 0:
		cfg.KeepNewest = 0 // explicit opt-in: closed directory, compact all
	}
	if cfg.MaxFileBytes <= 0 {
		cfg.MaxFileBytes = export.DefaultMaxFileBytes
	}
	if cfg.ChunkEvents <= 0 {
		cfg.ChunkEvents = DefaultChunkEvents
	}
	// A crashed previous run may have left a staging dir with outputs
	// it never installed; they were never visible and are rebuilt.
	tmpDir := filepath.Join(dir, tmpDirName)
	if err := os.RemoveAll(tmpDir); err != nil {
		return nil, fmt.Errorf("compact: clear staging dir: %w", err)
	}
	names, err := export.WALFiles(dir)
	if err != nil {
		return nil, err
	}
	eligible := names
	if cfg.KeepNewest > 0 {
		if cfg.KeepNewest >= len(names) {
			return &Result{}, nil
		}
		eligible = names[:len(names)-cfg.KeepNewest]
	}
	if len(eligible) < 2 {
		return &Result{}, nil
	}

	res := &Result{FilesIn: len(eligible)}
	var bytesIn int64
	for _, name := range eligible {
		if info, err := os.Stat(name); err == nil {
			bytesIn += info.Size()
		}
	}
	streams, markers, healths, err := readInputs(eligible, cfg.KeepNewest == 0, res)
	if err != nil {
		return nil, err
	}
	res.Markers = len(markers)
	res.Healths = len(healths)
	if cfg.DropBelowReset {
		for _, st := range streams {
			if st.horizon <= 0 {
				continue
			}
			kept := st.events.SubSeq(st.horizon+1, math.MaxInt64)
			res.DroppedPreReset += len(st.events) - len(kept)
			st.events = kept
		}
	}

	outs, err := writeOutputs(tmpDir, cfg, streams, markers, healths, res)
	if err != nil {
		return nil, err
	}
	if len(outs) > len(eligible) {
		// Cannot happen — merging only densifies — but more outputs than
		// inputs would exhaust the fresh-name scheme below, so refuse
		// loudly rather than corrupt the directory.
		return nil, fmt.Errorf("compact: %d outputs for %d inputs", len(outs), len(eligible))
	}

	// Install under fresh names, delete inputs only afterwards. The
	// j-th output takes the j-th input's number plus a generation
	// suffix no existing file carries, so no rename ever lands on a
	// live file — a crash at any point leaves a superset of the
	// original records (duplicates, which replay collapses), never a
	// subset.
	gen := nextGeneration(names)
	installed := make([]string, 0, len(outs))
	for i, out := range outs {
		target, err := outputName(eligible[i], gen)
		if err != nil {
			return nil, err
		}
		if err := os.Rename(out, target); err != nil {
			return nil, fmt.Errorf("compact: install output: %w", err)
		}
		installed = append(installed, target)
	}
	for _, name := range eligible {
		if err := os.Remove(name); err != nil {
			return nil, fmt.Errorf("compact: remove merged input: %w", err)
		}
	}
	if err := os.RemoveAll(tmpDir); err != nil {
		return nil, fmt.Errorf("compact: clear staging dir: %w", err)
	}
	res.FilesOut = len(outs)
	var bytesOut int64
	for _, name := range installed {
		if info, err := os.Stat(name); err == nil {
			bytesOut += info.Size()
		}
	}
	res.BytesReclaimed = bytesIn - bytesOut
	if cfg.Obs != nil {
		cfg.Obs.Counter("compact_passes_total").Inc()
		cfg.Obs.Counter("compact_bytes_reclaimed_total").Add(res.BytesReclaimed)
	}

	if err := updateIndex(dir, eligible, installed, res); err != nil {
		return nil, err
	}
	return res, nil
}

// Compacted files carry a generation suffix: "00000007-0002.wal" is
// the generation-2 compaction output that reused input number 7. The
// '-' sorts before the '.' of a plain "00000007.wal", so an output
// sorts just before the input it supersedes — always ahead of the
// untouched newer files, keeping the directory's only torn-tail
// candidate (the newest file) last. NewWALSink's resume parse reads
// the leading number and ignores the suffix, so appending to a
// compacted directory keeps numbering safely past every name.

// nextGeneration returns one more than the highest generation suffix
// among the given file names (1 when none carry one).
func nextGeneration(names []string) int {
	gen := 0
	for _, name := range names {
		stem := strings.TrimSuffix(filepath.Base(name), ".wal")
		if i := strings.IndexByte(stem, '-'); i >= 0 {
			var g int
			if _, err := fmt.Sscanf(stem[i+1:], "%d", &g); err == nil && g > gen {
				gen = g
			}
		}
	}
	return gen + 1
}

// outputName builds the fresh installed name for an output reusing the
// given input's number at the given generation.
func outputName(input string, gen int) (string, error) {
	stem := strings.TrimSuffix(filepath.Base(input), ".wal")
	if i := strings.IndexByte(stem, '-'); i >= 0 {
		stem = stem[:i] // an input that is itself a compacted file
	}
	var num int
	if _, err := fmt.Sscanf(stem, "%d", &num); err != nil {
		return "", fmt.Errorf("compact: unparseable segment name %q", input)
	}
	return filepath.Join(filepath.Dir(input), fmt.Sprintf("%08d-%04d.wal", num, gen)), nil
}

// readInputs reads the eligible files into per-monitor merged streams
// plus the marker and health-snapshot lists in record order. tornOK
// tolerates a torn tail on the last eligible file (only correct when
// it is the directory's newest, i.e. KeepNewest == 0 on a closed
// directory).
func readInputs(eligible []string, tornOK bool, res *Result) ([]*monStream, []history.RecoveryMarker, []obs.HealthRecord, error) {
	byMon := make(map[string]*monStream, 8)
	var order []*monStream
	var segsByMon = make(map[string][]event.Seq, 8)
	var markers []history.RecoveryMarker
	var healths []obs.HealthRecord
	for i, name := range eligible {
		fr, err := export.ReadWALFile(name)
		if err != nil {
			return nil, nil, nil, err
		}
		if fr.Torn && !(tornOK && i == len(eligible)-1) {
			return nil, nil, nil, fmt.Errorf("compact: %s: torn record in a rotated file — corruption, not a crash tail", name)
		}
		res.CorruptDropped += fr.CorruptRecords
		res.RecordsIn += len(fr.Segments) + len(fr.Markers) + len(fr.Healths)
		healths = append(healths, fr.Healths...)
		for _, seg := range fr.Segments {
			st := byMon[seg.Monitor]
			if st == nil {
				st = &monStream{monitor: seg.Monitor}
				byMon[seg.Monitor] = st
				order = append(order, st)
			}
			segsByMon[seg.Monitor] = append(segsByMon[seg.Monitor], seg.Events)
		}
		for _, m := range fr.Markers {
			st := byMon[m.Monitor]
			if st == nil {
				st = &monStream{monitor: m.Monitor}
				byMon[m.Monitor] = st
				order = append(order, st)
			}
			if m.Horizon > st.horizon {
				st.horizon = m.Horizon
			}
			markers = append(markers, m)
		}
	}
	for _, st := range order {
		merged := event.Merge(segsByMon[st.monitor]...)
		// Collapse exact duplicates (an interrupted earlier compaction);
		// a seq collision between different events is corruption.
		out := merged[:0]
		for _, e := range merged {
			if n := len(out); n > 0 && out[n-1].Seq == e.Seq {
				if out[n-1] != e {
					return nil, nil, nil, fmt.Errorf("compact: monitor %q: two different events share sequence number %d", st.monitor, e.Seq)
				}
				res.DuplicatesDropped++
				continue
			}
			out = append(out, e)
		}
		st.events = out
	}
	// Markers can duplicate the same way; collapse exact repeats,
	// preserving first-occurrence (reset) order.
	if len(markers) > 0 {
		seen := make(map[history.RecoveryMarker]bool, len(markers))
		kept := markers[:0]
		for _, m := range markers {
			if seen[m] {
				continue
			}
			seen[m] = true
			kept = append(kept, m)
		}
		markers = kept
	}
	// Health snapshots too — dedup on the canonical encoding
	// (HealthRecord holds slices, so it is not map-comparable),
	// preserving first-occurrence (capture) order. Without this an
	// interrupted compaction's leftovers would be copied forward on
	// every later pass instead of converging.
	if len(healths) > 0 {
		seen := make(map[string]bool, len(healths))
		kept := healths[:0]
		for _, h := range healths {
			k := export.HealthKey(h)
			if seen[k] {
				continue
			}
			seen[k] = true
			kept = append(kept, h)
		}
		healths = kept
	}
	// Write monitors in order of their first event so output files'
	// seq ranges grow roughly with file number — the shape the windowed
	// reader prunes best.
	sort.SliceStable(order, func(i, j int) bool {
		a, b := order[i].events, order[j].events
		if len(a) == 0 || len(b) == 0 {
			return len(a) > len(b)
		}
		return a[0].Seq < b[0].Seq
	})
	return order, markers, healths, nil
}

// writeOutputs writes the merged streams, markers and health snapshots
// through a WALSink in the staging directory and returns the output
// paths in creation order. The sink fsyncs each file as it rotates, so
// everything returned is durable.
func writeOutputs(tmpDir string, cfg Config, streams []*monStream, markers []history.RecoveryMarker, healths []obs.HealthRecord, res *Result) ([]string, error) {
	var summaries []export.FileSummary
	sink, err := export.NewWALSink(tmpDir, export.WALConfig{
		MaxFileBytes: cfg.MaxFileBytes,
		OnSeal: []export.SealedSink{export.SealedSinkFunc(func(fs export.FileSummary) error {
			summaries = append(summaries, fs)
			return nil
		})},
	})
	if err != nil {
		return nil, err
	}
	for _, st := range streams {
		for off := 0; off < len(st.events); off += cfg.ChunkEvents {
			end := min(off+cfg.ChunkEvents, len(st.events))
			chunk := st.events[off:end:end]
			if err := sink.WriteSegment(export.Segment{Monitor: st.monitor, Events: chunk}); err != nil {
				return nil, err
			}
			res.RecordsOut++
			res.Events += int64(len(chunk))
		}
	}
	for _, m := range markers {
		if err := sink.WriteMarker(m); err != nil {
			return nil, err
		}
		res.RecordsOut++
	}
	for _, h := range healths {
		if err := sink.WriteHealth(h); err != nil {
			return nil, err
		}
		res.RecordsOut++
	}
	if err := sink.Close(); err != nil {
		return nil, err
	}
	outs := make([]string, 0, len(summaries))
	for _, fs := range summaries {
		outs = append(outs, filepath.Join(tmpDir, fs.Name))
	}
	res.outSummaries = summaries
	return outs, nil
}

// updateIndex brings the directory's index (when one exists) in step
// with the swap: entries of all eligible inputs are dropped and the
// outputs' summaries added under their installed names.
func updateIndex(dir string, eligible, installed []string, res *Result) error {
	idx, err := index.Load(dir)
	if err != nil {
		if !errors.Is(err, index.ErrNoIndex) {
			// A damaged index is simply removed: it is advisory and
			// rebuildable, and leaving it would cost a hard OpenDir error
			// forever.
			_ = os.Remove(filepath.Join(dir, index.FileName))
		}
		return nil
	}
	for _, name := range eligible {
		idx.Remove(filepath.Base(name))
	}
	for i, fs := range res.outSummaries {
		fs.Name = filepath.Base(installed[i])
		idx.Add(fs)
	}
	if err := idx.Write(dir); err != nil {
		return fmt.Errorf("compact: update index: %w", err)
	}
	res.IndexUpdated = true
	return nil
}
