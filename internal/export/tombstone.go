package export

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"time"
)

// Retention tombstones in the export stream. Horizon-based retention
// (internal/export/compact with a RetainSeq/RetainBefore floor) drops
// whole segment files from the cold backlog; the tombstone is the
// durable record of that deliberate truncation: which sequence horizon
// the store is complete above, and exactly what was dropped below it.
// It flows like any other record — persisted by sinks implementing
// TombstoneSink (WALSink as a typed WAL record, MemorySink in memory),
// carried by the index (format v3) so windowed readers find it without
// opening files, and surfaced by ReadDir in Replay.Tombstones so a
// query below the horizon reports "truncated by retention" instead of
// silently returning less.

// TombstoneSink is the optional Sink extension for retention
// tombstones. A sink without it cannot replicate a retention-truncated
// store faithfully, so Record.Apply refuses rather than drops.
type TombstoneSink interface {
	// WriteTombstone persists one retention tombstone. Like
	// WriteSegment it is driven by a single goroutine.
	WriteTombstone(t Tombstone) error
}

// TruncatedRange is one monitor's share of a retention truncation: the
// sequence range and event count of that monitor's records dropped
// below the horizon.
type TruncatedRange struct {
	// Monitor names the monitor.
	Monitor string
	// MinSeq and MaxSeq bound the monitor's dropped sequence numbers
	// (inclusive).
	MinSeq, MaxSeq int64
	// Events counts the monitor's dropped events.
	Events int64
}

// Tombstone records one directory's cumulative retention truncation.
// Every retention pass folds the prior tombstone into the new one, so
// a directory carries a single live tombstone whose counters cover
// everything ever dropped.
type Tombstone struct {
	// Horizon is the retention horizon: every event with sequence
	// number >= Horizon is still present in the store; events below it
	// may have been dropped. A windowed query whose window starts below
	// Horizon is incomplete by design, not by damage.
	Horizon int64
	// Events, Records and Files count everything retention has dropped
	// from this store over its lifetime (cumulative across passes).
	Events  int64
	Records int64
	Files   int64
	// Monitors lists the per-monitor dropped ranges, sorted by monitor
	// name. Nil when nothing attributable per-monitor was dropped.
	Monitors []TruncatedRange
	// At is the instant of the most recent retention pass.
	At time.Time
}

// tombstoneVersion versions the tombstone payload blob.
const tombstoneVersion = 1

// maxTombstoneMonitors bounds the per-monitor table a decoder will
// accept — far above anything real, small enough that a lying length
// field cannot balloon the allocator.
const maxTombstoneMonitors = 1 << 16

// saturatingUint32 clamps a non-negative int64 into the record
// header's uint32 count field; the payload carries the exact value.
func saturatingUint32(v int64) uint32 {
	if v < 0 {
		return 0
	}
	if v > math.MaxUint32 {
		return math.MaxUint32
	}
	return uint32(v)
}

// appendTombstone serialises a tombstone into the self-contained
// payload blob of a recTombstone WAL record, appended to dst — the
// same shape as appendMarker: a version byte, varint fields, then the
// length-prefixed per-monitor table. Appending lets the WAL sink
// encode into its pooled payload buffers.
func appendTombstone(dst []byte, t Tombstone) []byte {
	var scratch [binary.MaxVarintLen64]byte
	putVarint := func(v int64) {
		dst = append(dst, scratch[:binary.PutVarint(scratch[:], v)]...)
	}
	putUvarint := func(v uint64) {
		dst = append(dst, scratch[:binary.PutUvarint(scratch[:], v)]...)
	}
	putString := func(s string) {
		putUvarint(uint64(len(s)))
		dst = append(dst, s...)
	}
	dst = append(dst, tombstoneVersion)
	putVarint(t.Horizon)
	putVarint(t.Events)
	putVarint(t.Records)
	putVarint(t.Files)
	putVarint(t.At.UnixNano())
	putUvarint(uint64(len(t.Monitors)))
	for _, tr := range t.Monitors {
		putString(tr.Monitor)
		putVarint(tr.MinSeq)
		putVarint(tr.MaxSeq)
		putVarint(tr.Events)
	}
	return dst
}

// encodeTombstone is appendTombstone into a fresh buffer.
func encodeTombstone(t Tombstone) []byte {
	return appendTombstone(nil, t)
}

// decodeTombstone reverses encodeTombstone.
func decodeTombstone(payload []byte) (Tombstone, error) {
	br := bytes.NewReader(payload)
	var t Tombstone
	ver, err := br.ReadByte()
	if err != nil {
		return t, fmt.Errorf("tombstone version: %w", err)
	}
	if ver != tombstoneVersion {
		return t, fmt.Errorf("unknown tombstone version %d", ver)
	}
	getString := func() (string, error) {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return "", err
		}
		if n > maxMonitorName {
			return "", fmt.Errorf("implausible tombstone string length %d", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}
	if t.Horizon, err = binary.ReadVarint(br); err != nil {
		return t, fmt.Errorf("tombstone horizon: %w", err)
	}
	if t.Events, err = binary.ReadVarint(br); err != nil {
		return t, fmt.Errorf("tombstone events: %w", err)
	}
	if t.Records, err = binary.ReadVarint(br); err != nil {
		return t, fmt.Errorf("tombstone records: %w", err)
	}
	if t.Files, err = binary.ReadVarint(br); err != nil {
		return t, fmt.Errorf("tombstone files: %w", err)
	}
	nanos, err := binary.ReadVarint(br)
	if err != nil {
		return t, fmt.Errorf("tombstone instant: %w", err)
	}
	t.At = time.Unix(0, nanos).UTC()
	nMons, err := binary.ReadUvarint(br)
	if err != nil {
		return t, fmt.Errorf("tombstone monitor count: %w", err)
	}
	if nMons > maxTombstoneMonitors {
		return t, fmt.Errorf("implausible tombstone monitor count %d", nMons)
	}
	for i := uint64(0); i < nMons; i++ {
		var tr TruncatedRange
		if tr.Monitor, err = getString(); err != nil {
			return t, fmt.Errorf("tombstone monitor %d: %w", i, err)
		}
		if tr.MinSeq, err = binary.ReadVarint(br); err != nil {
			return t, fmt.Errorf("tombstone monitor %d minseq: %w", i, err)
		}
		if tr.MaxSeq, err = binary.ReadVarint(br); err != nil {
			return t, fmt.Errorf("tombstone monitor %d maxseq: %w", i, err)
		}
		if tr.Events, err = binary.ReadVarint(br); err != nil {
			return t, fmt.Errorf("tombstone monitor %d events: %w", i, err)
		}
		t.Monitors = append(t.Monitors, tr)
	}
	if br.Len() != 0 {
		return t, fmt.Errorf("%d trailing bytes after tombstone", br.Len())
	}
	return t, nil
}

// TombstoneKey is the exact-duplicate identity of a tombstone — its
// deterministic encoding. Tombstones hold a slice, so Go equality
// cannot be the dedup identity; the codec can (same semantics as
// HealthKey).
func TombstoneKey(t Tombstone) string {
	return string(encodeTombstone(t))
}
