package export

import (
	"bytes"
	"os"
	"reflect"
	"testing"
	"time"

	"robustmon/internal/event"
	"robustmon/internal/obs"
)

// healthRecordSeed is the reference health snapshot used by tests: a
// little of every section, with a histogram whose buckets exercise
// the varint edges.
func healthRecordSeed() obs.HealthRecord {
	return obs.HealthRecord{
		At:  time.Date(2001, 7, 1, 12, 30, 0, 250, time.UTC),
		Seq: 4217,
		Metrics: obs.Snapshot{
			Counters: []obs.Metric{
				{Name: "detect_checks_total", Value: 12},
				{Name: "history_append_total", Value: 4217},
			},
			Gauges: []obs.Metric{
				{Name: "export_queue_depth", Value: 3},
			},
			Histograms: []obs.HistogramSnapshot{
				{Name: "detect_check_ns", Count: 12, Sum: 48_000_000,
					Buckets: []obs.Bucket{{Index: 0, Count: 1}, {Index: 21, Count: 7}, {Index: 23, Count: 4}}},
			},
		},
	}
}

func TestHealthPayloadRoundTrip(t *testing.T) {
	t.Parallel()
	cases := []obs.HealthRecord{
		healthRecordSeed(),
		{At: time.Unix(0, 0).UTC()}, // horizon 0, empty registry — the pre-first-event anchor
		{At: time.Date(2026, 7, 26, 0, 0, 0, 999, time.UTC), Seq: 1 << 40,
			Metrics: obs.Snapshot{Counters: []obs.Metric{{Name: "c", Value: -5}}}},
	}
	for _, want := range cases {
		got, err := decodeHealth(encodeHealth(want))
		if err != nil {
			t.Fatalf("decode(encode(%+v)): %v", want, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("health round trip changed it:\n got %+v\nwant %+v", got, want)
		}
	}
}

// TestHealthEncodingDeterministic pins the property HealthKey (and the
// compactor's dedup) relies on: identical records encode to identical
// bytes, byte for byte.
func TestHealthEncodingDeterministic(t *testing.T) {
	t.Parallel()
	a, b := encodeHealth(healthRecordSeed()), encodeHealth(healthRecordSeed())
	if !bytes.Equal(a, b) {
		t.Fatalf("two encodings of the same record differ:\n%x\n%x", a, b)
	}
	if HealthKey(healthRecordSeed()) != string(a) {
		t.Fatal("HealthKey is not the canonical encoding")
	}
}

func TestDecodeHealthRejectsDamage(t *testing.T) {
	t.Parallel()
	good := encodeHealth(healthRecordSeed())
	if _, err := decodeHealth(good[:len(good)-1]); err == nil {
		t.Fatal("truncated health payload decoded")
	}
	if _, err := decodeHealth(append(append([]byte{}, good...), 0)); err == nil {
		t.Fatal("health payload with trailing bytes decoded")
	}
	bad := append([]byte{}, good...)
	bad[0] = 99 // unknown payload version
	if _, err := decodeHealth(bad); err == nil {
		t.Fatal("unknown health version decoded")
	}
	if _, err := decodeHealth(nil); err == nil {
		t.Fatal("empty health payload decoded")
	}
}

// TestWALHealthRoundTrip is the acceptance pin: health snapshots
// written through the WAL come back from ReadDir byte-identically,
// interleaved with segment and marker records without disturbing
// either.
func TestWALHealthRoundTrip(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	w, err := NewWALSink(dir, WALConfig{})
	if err != nil {
		t.Fatal(err)
	}
	at := time.Date(2001, 7, 1, 0, 0, 0, 0, time.UTC)
	seg := event.Seq{
		{Seq: 1, Monitor: "a", Type: event.Enter, Pid: 1, Proc: "Op", Flag: event.Completed, Time: at},
		{Seq: 2, Monitor: "a", Type: event.SignalExit, Pid: 1, Proc: "Op", Time: at},
	}
	h0 := obs.HealthRecord{At: at} // horizon 0: emitted before the first checkpoint drained anything
	h1 := healthRecordSeed()
	h1.Seq = 2
	if err := w.WriteHealth(h0); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteSegment(Segment{Monitor: "a", Events: seg}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteMarker(historyMarkerSeed()); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteHealth(h1); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	rep, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Events) != 2 || len(rep.Markers) != 1 {
		t.Fatalf("replay: %d events, %d markers; want 2, 1", len(rep.Events), len(rep.Markers))
	}
	want := []obs.HealthRecord{h0, h1}
	if !reflect.DeepEqual(rep.Healths, want) {
		t.Fatalf("healths did not round-trip:\n got %+v\nwant %+v", rep.Healths, want)
	}
	for i, h := range rep.Healths {
		if !bytes.Equal(encodeHealth(h), encodeHealth(want[i])) {
			t.Fatalf("health %d not byte-identical after replay", i)
		}
	}
}

// TestWALHealthThroughExporter drives a health snapshot through the
// async pipeline and checks the Stats accounting on both legs.
func TestWALHealthThroughExporter(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	sink, err := NewWALSink(dir, WALConfig{})
	if err != nil {
		t.Fatal(err)
	}
	exp := New(sink, Config{Policy: Block})
	at := time.Date(2001, 7, 1, 0, 0, 0, 0, time.UTC)
	exp.Consume("a", event.Seq{{Seq: 1, Monitor: "a", Type: event.Enter, Pid: 1, Proc: "Op", Flag: event.Completed, Time: at}})
	h := healthRecordSeed()
	exp.ConsumeHealth(h)
	if err := exp.Close(); err != nil {
		t.Fatal(err)
	}
	st := exp.Stats()
	if st.Healths != 1 || st.HealthsWritten != 1 {
		t.Fatalf("health stats: accepted %d written %d, want 1/1", st.Healths, st.HealthsWritten)
	}
	rep, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Healths) != 1 || !reflect.DeepEqual(rep.Healths[0], h) {
		t.Fatalf("healths = %+v, want [%+v]", rep.Healths, h)
	}
	// After Close the exporter discards health records instead of
	// blocking.
	exp.ConsumeHealth(h)
	if got := exp.Stats().Healths; got != 1 {
		t.Fatalf("health accepted after Close (count %d)", got)
	}
}

// TestHealthSinkOptional: an exporter over a sink without HealthSink
// must swallow health records without erroring.
func TestHealthSinkOptional(t *testing.T) {
	t.Parallel()
	exp := New(&segmentOnlySink{}, Config{})
	exp.ConsumeHealth(healthRecordSeed())
	if err := exp.Close(); err != nil {
		t.Fatal(err)
	}
	st := exp.Stats()
	if st.Healths != 1 || st.HealthsWritten != 0 || st.WriteErrors != 0 {
		t.Fatalf("stats = %+v, want 1 accepted, 0 written, 0 errors", st)
	}
}

// TestTornHealthTailRecovers: a crash mid-health-record behaves like a
// crash mid-segment — the torn tail is dropped, everything before it
// survives.
func TestTornHealthTailRecovers(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	w, err := NewWALSink(dir, WALConfig{})
	if err != nil {
		t.Fatal(err)
	}
	at := time.Date(2001, 7, 1, 0, 0, 0, 0, time.UTC)
	if err := w.WriteSegment(Segment{Monitor: "a", Events: event.Seq{
		{Seq: 1, Monitor: "a", Type: event.Enter, Pid: 1, Proc: "Op", Flag: event.Completed, Time: at},
	}}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteHealth(healthRecordSeed()); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	names, err := walFiles(dir)
	if err != nil || len(names) != 1 {
		t.Fatalf("wal files: %v, %v", names, err)
	}
	blob, err := os.ReadFile(names[0])
	if err != nil {
		t.Fatal(err)
	}
	// Chop into the health record's payload.
	if err := os.WriteFile(names[0], blob[:len(blob)-3], 0o666); err != nil {
		t.Fatal(err)
	}
	rep, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Recovered {
		t.Fatal("torn health tail not reported as recovered")
	}
	if len(rep.Events) != 1 || len(rep.Healths) != 0 {
		t.Fatalf("recovered replay: %d events, %d healths; want 1, 0", len(rep.Events), len(rep.Healths))
	}
}

// TestMergeReplayDedupsHealths: exact duplicates (compaction overlap)
// collapse to the first occurrence and are counted; distinct records
// with equal horizons both survive.
func TestMergeReplayDedupsHealths(t *testing.T) {
	t.Parallel()
	h1 := healthRecordSeed()
	h2 := healthRecordSeed()
	h2.Metrics.Counters[0].Value++ // same horizon, different state
	rep, err := MergeReplay(nil, nil, []obs.HealthRecord{h1, h2, h1}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Healths) != 2 || rep.DuplicateHealths != 1 {
		t.Fatalf("got %d healths, %d duplicates; want 2, 1", len(rep.Healths), rep.DuplicateHealths)
	}
	if !reflect.DeepEqual(rep.Healths, []obs.HealthRecord{h1, h2}) {
		t.Fatalf("dedup broke first-occurrence order: %+v", rep.Healths)
	}
}

// TestScanFileIndexesHealths: ScanFile records each health snapshot's
// horizon and offset, and ReadHealthAt point-reads it back — the
// index's skipped-file path.
func TestScanFileIndexesHealths(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	w, err := NewWALSink(dir, WALConfig{})
	if err != nil {
		t.Fatal(err)
	}
	at := time.Date(2001, 7, 1, 0, 0, 0, 0, time.UTC)
	h0 := obs.HealthRecord{At: at}
	h1 := healthRecordSeed()
	if err := w.WriteHealth(h0); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteSegment(Segment{Monitor: "a", Events: event.Seq{
		{Seq: 1, Monitor: "a", Type: event.Enter, Pid: 1, Proc: "Op", Flag: event.Completed, Time: at},
	}}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteHealth(h1); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteMarker(historyMarkerSeed()); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	names, err := walFiles(dir)
	if err != nil || len(names) != 1 {
		t.Fatalf("wal files: %v, %v", names, err)
	}
	fs, err := ScanFile(names[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(fs.Healths) != 2 {
		t.Fatalf("summary holds %d healths, want 2", len(fs.Healths))
	}
	want := []obs.HealthRecord{h0, h1}
	for i, hi := range fs.Healths {
		if hi.Seq != want[i].Seq {
			t.Fatalf("health %d indexed at seq %d, want %d", i, hi.Seq, want[i].Seq)
		}
		got, err := ReadHealthAt(names[0], hi.Offset)
		if err != nil {
			t.Fatalf("ReadHealthAt(%d): %v", hi.Offset, err)
		}
		if !reflect.DeepEqual(got, want[i]) {
			t.Fatalf("point-read health %d:\n got %+v\nwant %+v", i, got, want[i])
		}
	}
	// A point-read at a non-health record must refuse, not misparse.
	if len(fs.Markers) != 1 {
		t.Fatalf("summary holds %d markers, want 1", len(fs.Markers))
	}
	if _, err := ReadHealthAt(names[0], fs.Markers[0].Offset); err == nil {
		t.Fatal("ReadHealthAt on a marker record succeeded")
	}
}
